// Package alloc implements switch allocators for virtual-channel NoC
// routers, including the paper's Virtual Input Crossbar (VIX) technique.
//
// A switch allocator matches requesting input virtual channels to output
// ports each cycle. The crossbar geometry is captured by Config: a router
// with P ports and k virtual inputs per port has a kP x P crossbar. The
// v VCs of each input port are partitioned into k contiguous sub-groups,
// each feeding one crossbar row (virtual input). With k = 1 this is the
// conventional P x P crossbar; k = 2 is the paper's practical VIX
// configuration; k = v is the ideal VIX where every VC has its own
// crossbar input.
//
// Every allocator must produce a conflict-free grant set:
//
//   - at most one grant per crossbar row (virtual input), and
//   - at most one grant per output port, and
//   - every grant corresponds to an offered request.
//
// Validate checks these invariants and is exercised by property tests.
package alloc

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"

	"vix/internal/arb"
)

// Partition selects how a port's VCs are divided among its virtual
// inputs.
type Partition uint8

// VC partition schemes.
const (
	// Contiguous assigns VCs to sub-groups in blocks: with v = 6, k = 2,
	// VCs 0-2 feed virtual input 0 and VCs 3-5 feed virtual input 1.
	// This matches the paper's Figure 2 (a multiplexer over v/2 adjacent
	// VCs) and is the default.
	Contiguous Partition = iota
	// Interleaved assigns VCs round-robin: VC i feeds virtual input
	// i mod k. An ablation alternative with different wiring locality.
	Interleaved
)

// Config describes the crossbar geometry an allocator serves.
type Config struct {
	// Ports is the router radix P: the number of physical input ports,
	// which equals the number of output ports.
	Ports int
	// VCs is the number of virtual channels per input port.
	VCs int
	// VirtualInputs is the number of crossbar inputs per physical input
	// port (k). 1 models the conventional crossbar, 2 the paper's VIX,
	// and VCs the ideal VIX.
	VirtualInputs int
	// Partition selects the VC-to-sub-group mapping (default Contiguous,
	// the paper's scheme).
	Partition Partition
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Ports <= 0:
		return errors.New("alloc: Ports must be positive")
	case c.VCs <= 0:
		return errors.New("alloc: VCs must be positive")
	case c.VirtualInputs <= 0:
		return errors.New("alloc: VirtualInputs must be positive")
	case c.VirtualInputs > c.VCs:
		return fmt.Errorf("alloc: VirtualInputs (%d) exceeds VCs (%d)", c.VirtualInputs, c.VCs)
	}
	return nil
}

// mustValidate panics when cfg is invalid. Allocator constructors call it
// so that an impossible crossbar geometry fails loudly at construction
// time rather than corrupting an allocation later.
func mustValidate(cfg Config) {
	if err := cfg.Validate(); err != nil {
		panic("alloc: invalid config: " + strings.TrimPrefix(err.Error(), "alloc: "))
	}
}

// Rows returns the number of crossbar inputs (kP).
func (c Config) Rows() int { return c.Ports * c.VirtualInputs }

// GroupSize returns the number of VCs feeding one virtual input. The last
// sub-group of a port may be smaller when VCs is not divisible by
// VirtualInputs.
func (c Config) GroupSize() int {
	return (c.VCs + c.VirtualInputs - 1) / c.VirtualInputs
}

// Subgroup returns the virtual-input sub-group index of vc within its
// port, per the configured Partition.
func (c Config) Subgroup(vc int) int {
	if c.Partition == Interleaved {
		return vc % c.VirtualInputs
	}
	g := vc / c.GroupSize()
	if g >= c.VirtualInputs {
		g = c.VirtualInputs - 1
	}
	return g
}

// Row returns the crossbar row (virtual input index) that carries traffic
// from the given port and VC.
func (c Config) Row(port, vc int) int {
	return port*c.VirtualInputs + c.Subgroup(vc)
}

// Slot returns the index of vc within its sub-group, i.e. the input-arbiter
// request line it drives.
func (c Config) Slot(vc int) int {
	if c.Partition == Interleaved {
		return vc / c.VirtualInputs
	}
	return vc - c.Subgroup(vc)*c.GroupSize()
}

// Request is one input VC asking for one output port this cycle. A VC
// offers at most one request per cycle (its head flit has a single route).
type Request struct {
	Port    int // input port
	VC      int // virtual channel within the port
	OutPort int // requested output port
	// Age is how many cycles the requesting flit has waited at the front
	// of its buffer. Only age-aware allocators (KindSeparableAge) consult
	// it; zero is always safe.
	Age int
}

// Grant records that the flit of one request may traverse the crossbar
// to OutPort this cycle via crossbar row Row. Req indexes the Requests
// slice of the RequestSet the grant answers: the granted input (port,
// VC) is rs.Requests[g.Req].Port/VC. Carrying the index instead of the
// coordinates keeps the grant loop on the arena-backed router a pure
// array walk — the router re-reads the request it built rather than
// re-deriving buffer addresses from coordinates.
type Grant struct {
	Req     int
	OutPort int
	Row     int
}

// Request resolves the request the grant answers within its request set.
func (g Grant) Request(rs *RequestSet) Request { return rs.Requests[g.Req] }

// RequestSet is the per-cycle input to an allocator.
type RequestSet struct {
	Config   Config
	Requests []Request
}

// Allocator matches requests to crossbar resources for one cycle.
// Allocators are stateful (arbiter priorities, chaining history) and are
// not safe for concurrent use; each router owns its own instance.
type Allocator interface {
	// Name returns a short identifier such as "if" or "wavefront".
	Name() string
	// Allocate returns a conflict-free grant set for the request set.
	//
	// The returned slice is allocator-owned scratch: it is valid only
	// until the next Allocate or Reset call on the same allocator, and
	// callers that retain grants across cycles must copy them out. In
	// exchange, a warmed-up allocator performs zero heap allocations per
	// cycle — all working buffers are sized from Config at construction
	// (the contracts/scratch vixlint rule pins this down).
	Allocate(rs *RequestSet) []Grant
	// Reset restores initial arbiter state and clears history.
	Reset()
}

// Validate checks that grants form a legal allocation for rs: every grant
// matches an offered request, no crossbar row is granted twice, and no
// output port is granted twice. It returns nil for a legal allocation.
//
// The marks are flat slices indexed by the Config geometry rather than
// maps, keeping the property tests that call Validate every simulated
// cycle cheap. A grant whose request index falls outside the set, or
// whose output differs from the indexed request's, cannot pair up and is
// rejected as unmatched.
func Validate(rs *RequestSet, grants []Grant) error {
	cfg := rs.Config
	inRange := func(port, vc, out int) bool {
		return port >= 0 && port < cfg.Ports && vc >= 0 && vc < cfg.VCs && out >= 0 && out < cfg.Ports
	}
	rowUsed := make([]bool, cfg.Rows())
	outUsed := make([]bool, cfg.Ports)
	vcUsed := make([]bool, cfg.Ports*cfg.VCs)
	for _, g := range grants {
		if g.Req < 0 || g.Req >= len(rs.Requests) {
			return fmt.Errorf("alloc: grant %+v indexes no request (set has %d)", g, len(rs.Requests))
		}
		req := rs.Requests[g.Req]
		if !inRange(req.Port, req.VC, req.OutPort) || g.OutPort != req.OutPort {
			return fmt.Errorf("alloc: grant %+v does not match its request %+v", g, req)
		}
		if want := cfg.Row(req.Port, req.VC); g.Row != want {
			return fmt.Errorf("alloc: grant %+v has row %d, want %d", g, g.Row, want)
		}
		if rowUsed[g.Row] {
			return fmt.Errorf("alloc: crossbar row %d granted twice", g.Row)
		}
		if outUsed[g.OutPort] {
			return fmt.Errorf("alloc: output port %d granted twice", g.OutPort)
		}
		if vcUsed[req.Port*cfg.VCs+req.VC] {
			return fmt.Errorf("alloc: VC (%d,%d) granted twice", req.Port, req.VC)
		}
		rowUsed[g.Row] = true
		outUsed[g.OutPort] = true
		vcUsed[req.Port*cfg.VCs+req.VC] = true
	}
	return nil
}

// bitset is a packed occupancy-word set over a fixed index space, sized
// at construction. The scratch structures use it to remember which
// entries the previous cycle dirtied, so a cycle clears O(dirty) entries
// instead of sweeping the whole space, and allocators walk only occupied
// entries instead of scanning every slot. Walks iterate set bits in
// ascending index order (word by word, bits.TrailingZeros64 within a
// word), so replacing a dense 0..n loop with a bitset walk visits the
// same indices in the same order — behaviour stays byte-identical.
type bitset []uint64

// newBitset returns an all-clear bitset covering indices [0, n).
func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

// set marks index i.
func (b bitset) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// rowScratch groups request indices by crossbar row without per-cycle
// allocation: the per-row lists are truncated and refilled on every
// group call, so their backing arrays reach steady state and stay there.
// An occupancy bitset tracks which rows the last fill touched; group
// truncates only those, and callers can walk occupied() instead of
// scanning all Rows entries.
type rowScratch struct {
	rows [][]int
	occ  bitset // rows holding requests from the last group call
	// rowOf[port*vcs+vc] precomputes Config.Row, whose sub-group mapping
	// costs two integer divisions per call — too hot for the per-request
	// grouping loop.
	rowOf []int32
	vcs   int
}

// newRowScratch sizes the per-row lists for cfg.
func newRowScratch(cfg Config) rowScratch {
	return rowScratch{
		rows:  make([][]int, cfg.Rows()),
		occ:   newBitset(cfg.Rows()),
		rowOf: rowTable(cfg),
		vcs:   cfg.VCs,
	}
}

// rowTable precomputes Config.Row for every (port, vc), indexed by
// port*VCs+vc.
func rowTable(cfg Config) []int32 {
	t := make([]int32, cfg.Ports*cfg.VCs)
	for p := 0; p < cfg.Ports; p++ {
		for v := 0; v < cfg.VCs; v++ {
			t[p*cfg.VCs+v] = int32(cfg.Row(p, v))
		}
	}
	return t
}

// slotTable precomputes Config.Slot for every vc.
func slotTable(cfg Config) []int32 {
	t := make([]int32, cfg.VCs)
	for v := 0; v < cfg.VCs; v++ {
		t[v] = int32(cfg.Slot(v))
	}
	return t
}

// group refills the per-row request-index lists from rs and returns
// them; the result has Config.Rows() entries and is valid until the
// next group call. Rows absent from occupied() are guaranteed empty.
func (s *rowScratch) group(rs *RequestSet) [][]int {
	for wi, w := range s.occ {
		if w == 0 {
			continue
		}
		for ; w != 0; w &= w - 1 {
			row := wi<<6 + bits.TrailingZeros64(w)
			s.rows[row] = s.rows[row][:0]
		}
		s.occ[wi] = 0
	}
	for i, r := range rs.Requests {
		row := int(s.rowOf[r.Port*s.vcs+r.VC])
		s.occ.set(row)
		s.rows[row] = append(s.rows[row], i)
	}
	return s.rows
}

// occupied returns the occupancy words of the last group call: bit i is
// set exactly when rows[i] is non-empty. Valid until the next group call.
func (s *rowScratch) occupied() bitset { return s.occ }

// cellScratch groups request indices by (crossbar row, output port) cell
// of the request matrix, replacing the per-cycle maps the matrix-style
// allocators (wavefront, augmenting-path, iSLIP) used to build. An
// occupancy bitset remembers the cells the last cycle filled, so clear
// touches O(requests) cells rather than the whole Rows x Ports matrix.
type cellScratch struct {
	outs  int
	cells [][]int // cells[row*outs+out] = request indices, refilled per cycle
	occ   bitset  // cells holding indices since the last clear
}

// newCellScratch sizes the cell lists for cfg.
func newCellScratch(cfg Config) cellScratch {
	return cellScratch{
		outs:  cfg.Ports,
		cells: make([][]int, cfg.Rows()*cfg.Ports),
		occ:   newBitset(cfg.Rows() * cfg.Ports),
	}
}

// clear truncates the cell lists dirtied since the last clear; all other
// cells are empty by induction.
func (s *cellScratch) clear() {
	for wi, w := range s.occ {
		if w == 0 {
			continue
		}
		for ; w != 0; w &= w - 1 {
			c := wi<<6 + bits.TrailingZeros64(w)
			s.cells[c] = s.cells[c][:0]
		}
		s.occ[wi] = 0
	}
}

// add appends a request index to the (row, out) cell.
func (s *cellScratch) add(row, out, idx int) {
	c := row*s.outs + out
	s.occ.set(c)
	s.cells[c] = append(s.cells[c], idx)
}

// at returns the request indices of the (row, out) cell.
func (s *cellScratch) at(row, out int) []int {
	return s.cells[row*s.outs+out]
}

// vcPickScratch is the slot-mapping scratch behind the per-row VC choice
// shared by the matrix-style allocators: it maps each input-arbiter slot
// of a row onto the request index offered by the VC in that slot.
type vcPickScratch struct {
	slotReq   []bool
	slotToReq []int
}

// newVCPickScratch sizes the slot vectors for cfg.
func newVCPickScratch(cfg Config) vcPickScratch {
	return vcPickScratch{
		slotReq:   make([]bool, cfg.GroupSize()),
		slotToReq: make([]int, cfg.GroupSize()),
	}
}

// pick selects which of a row's requests wins via the row's round-robin
// arbiter (advancing it), mirroring the one-VC-per-slot mapping the
// hardware input arbiter sees. len(reqIdxs) must be at least 1.
func (s *vcPickScratch) pick(cfg Config, rs *RequestSet, reqIdxs []int, a arb.Arbiter) int {
	if len(reqIdxs) == 1 {
		return reqIdxs[0]
	}
	for i := range s.slotReq {
		s.slotReq[i] = false
		s.slotToReq[i] = -1
	}
	for _, idx := range reqIdxs {
		slot := cfg.Slot(rs.Requests[idx].VC)
		s.slotReq[slot] = true
		if s.slotToReq[slot] < 0 {
			s.slotToReq[slot] = idx
		}
	}
	slot := a.Arbitrate(s.slotReq)
	a.Ack(slot)
	return s.slotToReq[slot]
}
