package alloc

import "vix/internal/arb"

// ISLIP is the iterative separable allocator of McKeown, cited by the
// paper as the classic approach to the sub-optimal matching problem:
// run request-grant-accept rounds until no more grants can be added (or
// an iteration budget is exhausted). Each extra iteration recovers
// matches a single-pass separable allocator loses to uncoordinated
// decisions, at the cost of delay — which is exactly the trade the paper
// argues VIX avoids by widening the crossbar instead.
//
// Round structure (output-first iSLIP, per the original):
//
//	grant:  every unmatched output offers a grant to one requesting row
//	        (rotating pointer);
//	accept: every unmatched row accepts one of the outputs granting to it
//	        (rotating pointer); accepted pairs leave the pool.
//
// Pointers advance only on accepted grants and only in the first
// iteration, preserving iSLIP's desynchronisation property.
type ISLIP struct {
	cfg        Config
	iterations int
	grantArbs  []arb.Arbiter // per output, over rows
	acceptArbs []arb.Arbiter // per row, over outputs
	vcPick     []arb.Arbiter // per row, over sub-group VC slots

	rowVec []bool
	outVec []bool
}

// NewISLIP returns an iSLIP allocator running the given number of
// iterations (clamped to at least 1). It panics if cfg is invalid.
func NewISLIP(cfg Config, iterations int) *ISLIP {
	mustValidate(cfg)
	if iterations < 1 {
		iterations = 1
	}
	s := &ISLIP{
		cfg:        cfg,
		iterations: iterations,
		rowVec:     make([]bool, cfg.Rows()),
		outVec:     make([]bool, cfg.Ports),
	}
	s.grantArbs = make([]arb.Arbiter, cfg.Ports)
	for i := range s.grantArbs {
		s.grantArbs[i] = arb.NewRoundRobin(cfg.Rows())
	}
	s.acceptArbs = make([]arb.Arbiter, cfg.Rows())
	s.vcPick = make([]arb.Arbiter, cfg.Rows())
	for i := range s.acceptArbs {
		s.acceptArbs[i] = arb.NewRoundRobin(cfg.Ports)
		s.vcPick[i] = arb.NewRoundRobin(cfg.GroupSize())
	}
	return s
}

// Name implements Allocator.
func (s *ISLIP) Name() string { return "islip" }

// Iterations returns the configured iteration count.
func (s *ISLIP) Iterations() int { return s.iterations }

// Reset implements Allocator.
func (s *ISLIP) Reset() {
	for _, a := range s.grantArbs {
		a.Reset()
	}
	for _, a := range s.acceptArbs {
		a.Reset()
	}
	for _, a := range s.vcPick {
		a.Reset()
	}
}

// Allocate implements Allocator.
func (s *ISLIP) Allocate(rs *RequestSet) []Grant {
	rows, outs := s.cfg.Rows(), s.cfg.Ports
	// req[row][out] true if any VC of the row requests out; cells holds
	// the request indices per (row, out) for VC selection.
	req := make([][]bool, rows)
	for i := range req {
		req[i] = make([]bool, outs)
	}
	cells := make(map[[2]int][]int)
	for idx, r := range rs.Requests {
		row := s.cfg.Row(r.Port, r.VC)
		req[row][r.OutPort] = true
		key := [2]int{row, r.OutPort}
		cells[key] = append(cells[key], idx)
	}

	rowDone := make([]bool, rows)
	outDone := make([]bool, outs)
	var grants []Grant

	for iter := 0; iter < s.iterations; iter++ {
		// Grant phase: each unmatched output picks one requesting,
		// unmatched row.
		granted := make([]int, rows) // granted[row] collects outputs as a bitset index list
		grantsTo := make([][]bool, rows)
		any := false
		for out := 0; out < outs; out++ {
			if outDone[out] {
				continue
			}
			for row := 0; row < rows; row++ {
				s.rowVec[row] = !rowDone[row] && req[row][out]
			}
			row := s.grantArbs[out].Arbitrate(s.rowVec)
			if row < 0 {
				continue
			}
			if grantsTo[row] == nil {
				grantsTo[row] = make([]bool, outs)
			}
			grantsTo[row][out] = true
			granted[row]++
			any = true
		}
		if !any {
			break
		}
		// Accept phase: each row with offers accepts one output.
		progress := false
		for row := 0; row < rows; row++ {
			if rowDone[row] || granted[row] == 0 {
				continue
			}
			out := s.acceptArbs[row].Arbitrate(grantsTo[row])
			if out < 0 {
				continue
			}
			idx := s.pickVC(rs, cells[[2]int{row, out}], row)
			r := rs.Requests[idx]
			grants = append(grants, Grant{Port: r.Port, VC: r.VC, OutPort: out, Row: row})
			rowDone[row] = true
			outDone[out] = true
			progress = true
			// iSLIP pointer discipline: update only on first-iteration
			// accepts so pointers desynchronise.
			if iter == 0 {
				s.grantArbs[out].Ack(row)
				s.acceptArbs[row].Ack(out)
			}
		}
		if !progress {
			break
		}
	}
	return grants
}

func (s *ISLIP) pickVC(rs *RequestSet, reqIdxs []int, row int) int {
	if len(reqIdxs) == 1 {
		return reqIdxs[0]
	}
	slotReq := make([]bool, s.cfg.GroupSize())
	slotToReq := make([]int, s.cfg.GroupSize())
	for i := range slotToReq {
		slotToReq[i] = -1
	}
	for _, idx := range reqIdxs {
		slot := s.cfg.Slot(rs.Requests[idx].VC)
		slotReq[slot] = true
		if slotToReq[slot] < 0 {
			slotToReq[slot] = idx
		}
	}
	slot := s.vcPick[row].Arbitrate(slotReq)
	s.vcPick[row].Ack(slot)
	return slotToReq[slot]
}
