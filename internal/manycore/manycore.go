// Package manycore implements the trace-driven 64-core system model of
// the paper's Section 4.7 and Table 2: per-core private L1s (modelled via
// the trace generator's miss stream), a shared L2 distributed over one
// bank per node, eight on-chip memory controllers, and cores whose
// progress is limited by their memory-level parallelism — all
// communicating over the cycle-accurate NoC as a network.Workload.
//
// Memory transactions travel as packets: an L1 miss sends a single-flit
// request from the core's node to an address-interleaved L2 bank; after
// the bank latency, a five-flit reply (64-byte line over the 128-bit
// datapath plus header) returns. L2 misses additionally make the
// bank-to-memory-controller round trip with the DRAM latency in between.
// System performance is the weighted speedup over per-core IPC, the
// metric Table 4 reports as "Speedup".
package manycore

import (
	"fmt"

	"vix/internal/network"
	"vix/internal/sim"
	"vix/internal/trace"
)

// Config mirrors Table 2's processor configuration, reduced to the
// parameters that affect network traffic and timing.
type Config struct {
	// IssueWidth is instructions retired per cycle when not stalled
	// (2-way cores at the network clock).
	IssueWidth float64
	// MLPWindow bounds outstanding misses per core: a 2-way out-of-order
	// core's reorder buffer sustains a handful of overlapped misses, far
	// fewer than its 32 MSHRs.
	MLPWindow int
	// L2Latency is the bank access latency in cycles (Table 2: 6).
	L2Latency int
	// MemLatency is the DRAM access latency in cycles (80 ns at 2 GHz).
	MemLatency int
	// ReqFlits and ReplyFlits size the request and data-reply packets.
	ReqFlits, ReplyFlits int
	// MemControllers lists the nodes hosting memory controllers.
	MemControllers []int
	// MCServiceCycles is the minimum spacing between request starts at
	// one memory controller (Table 2: four DDR channels at 16 GB/s per
	// MC move one 64-byte line every two cycles at 2 GHz). Zero disables
	// the bandwidth limit.
	MCServiceCycles int
	Seed            uint64
}

// DefaultConfig returns the Table 2 parameters: 2-way cores, 6-cycle L2
// banks, 160-cycle memory (80 ns at 2 GHz), single-flit requests and
// 5-flit replies (64 B line + header on a 128-bit datapath), and eight
// memory controllers spread along the top and bottom rows of the 8x8
// logical node grid.
func DefaultConfig() Config {
	return Config{
		IssueWidth: 2,
		MLPWindow:  8,
		L2Latency:  6,
		MemLatency: 160,
		ReqFlits:   1,
		ReplyFlits: 5,
		MemControllers: []int{
			0, 2, 4, 6, // top row
			57, 59, 61, 63, // bottom row
		},
		MCServiceCycles: 2,
		Seed:            1,
	}
}

// txn phases, encoded in the packet Tag alongside the transaction id.
const (
	phaseReqToBank = iota
	phaseBankToMem
	phaseMemToBank
	phaseReplyToCore
)

// tag packs (txn id, phase) into a packet tag.
func tag(id uint64, phase int) uint64 { return id<<2 | uint64(phase) }

func untag(t uint64) (id uint64, phase int) { return t >> 2, int(t & 3) }

// txn tracks one outstanding memory transaction.
type txn struct {
	core   int
	bank   int
	mc     int
	l2Miss bool
	issued int64
}

// core is one trace-driven processor.
type core struct {
	node        int
	gen         *trace.Generator
	outstanding int
	// toNextMiss counts instructions until the next L1 miss.
	toNextMiss float64
	nextL2Miss bool
	retired    float64
}

// event is a deferred packet emission (after a service latency); node < 0
// marks a network-free local completion.
type event struct {
	node int
	spec network.PacketSpec
}

// System is the manycore model; it implements network.Workload and
// network.Ticker.
type System struct {
	cfg   Config
	nodes int
	cores []*core
	rng   *sim.RNG

	txns   map[uint64]*txn
	nextID uint64

	// outbox[n] holds packets node n emits this cycle; events holds
	// future emissions ordered by a simple calendar queue.
	outbox   [][]network.PacketSpec
	calendar map[int64][]event

	// mcNextFree[node] is the earliest cycle the memory controller at
	// node may start its next DRAM access (bandwidth model).
	mcNextFree map[int]int64

	// memory-latency accounting for observability
	memLatSum   float64
	memLatCount int64

	cycle int64
}

// New builds a manycore system for the given per-node application
// assignment (one core per node).
func New(cfg Config, apps []trace.App) (*System, error) {
	if cfg.IssueWidth <= 0 || cfg.MLPWindow <= 0 || cfg.ReqFlits <= 0 || cfg.ReplyFlits <= 0 {
		return nil, fmt.Errorf("manycore: invalid config %+v", cfg)
	}
	if len(cfg.MemControllers) == 0 {
		return nil, fmt.Errorf("manycore: no memory controllers")
	}
	nodes := len(apps)
	for _, mc := range cfg.MemControllers {
		if mc < 0 || mc >= nodes {
			return nil, fmt.Errorf("manycore: memory controller node %d out of range", mc)
		}
	}
	s := &System{
		cfg:        cfg,
		nodes:      nodes,
		rng:        sim.NewRNG(cfg.Seed ^ 0x6d635f73797374), // distinct address-map stream
		txns:       make(map[uint64]*txn),
		outbox:     make([][]network.PacketSpec, nodes),
		calendar:   make(map[int64][]event),
		mcNextFree: make(map[int]int64, len(cfg.MemControllers)),
	}
	root := sim.NewRNG(cfg.Seed)
	s.cores = make([]*core, nodes)
	for i, a := range apps {
		c := &core{node: i, gen: trace.NewGenerator(a, root.Fork(uint64(i)))}
		c.toNextMiss, c.nextL2Miss = c.gen.NextMiss()
		s.cores[i] = c
	}
	return s, nil
}

// Tick implements network.Ticker: advance every core one cycle and move
// due calendar events into outboxes.
func (s *System) Tick(cycle int64) {
	s.cycle = cycle
	for _, ev := range s.calendar[cycle] {
		if ev.node < 0 {
			id, _ := untag(ev.spec.Tag)
			s.complete(id)
			continue
		}
		s.outbox[ev.node] = append(s.outbox[ev.node], ev.spec)
	}
	delete(s.calendar, cycle)
	for _, c := range s.cores {
		s.tickCore(c)
	}
}

// tickCore retires instructions and issues misses until the cycle's issue
// budget is spent or the MLP window fills.
func (s *System) tickCore(c *core) {
	if c.outstanding >= s.cfg.MLPWindow {
		return // stalled on memory
	}
	budget := s.cfg.IssueWidth
	for budget > 0 {
		if c.toNextMiss > budget {
			c.toNextMiss -= budget
			c.retired += budget
			return
		}
		budget -= c.toNextMiss
		c.retired += c.toNextMiss
		s.issueMiss(c)
		c.toNextMiss, c.nextL2Miss = c.gen.NextMiss()
		if c.outstanding >= s.cfg.MLPWindow {
			return
		}
	}
}

// issueMiss starts a memory transaction: request packet to an
// address-interleaved L2 bank.
func (s *System) issueMiss(c *core) {
	id := s.nextID
	s.nextID++
	bank := s.rng.Intn(s.nodes)
	mc := s.cfg.MemControllers[s.rng.Intn(len(s.cfg.MemControllers))]
	s.txns[id] = &txn{core: c.node, bank: bank, mc: mc, l2Miss: c.nextL2Miss, issued: s.cycle}
	c.outstanding++
	if bank == c.node {
		// Local bank: no network request; schedule the bank response
		// directly after the L2 latency.
		s.bankRespond(id, s.cycle)
		return
	}
	s.outbox[c.node] = append(s.outbox[c.node], network.PacketSpec{
		Dst: bank, Size: s.cfg.ReqFlits, Tag: tag(id, phaseReqToBank),
	})
}

// bankRespond handles a request arriving at its L2 bank at the given
// cycle: a hit replies to the core after the bank latency; a miss heads
// to the memory controller.
func (s *System) bankRespond(id uint64, now int64) {
	t := s.txns[id]
	due := now + int64(s.cfg.L2Latency)
	if t.l2Miss {
		if t.mc == t.bank {
			s.memRespond(id, due)
			return
		}
		s.schedule(due, t.bank, network.PacketSpec{
			Dst: t.mc, Size: s.cfg.ReqFlits, Tag: tag(id, phaseBankToMem),
		})
		return
	}
	s.replyToCore(id, due)
}

// memRespond models the DRAM access — queueing for a free channel slot
// under the MC bandwidth limit, then the access latency — and the reply
// back to the bank.
func (s *System) memRespond(id uint64, now int64) {
	t := s.txns[id]
	start := now
	if s.cfg.MCServiceCycles > 0 {
		if free := s.mcNextFree[t.mc]; free > start {
			start = free
		}
		s.mcNextFree[t.mc] = start + int64(s.cfg.MCServiceCycles)
	}
	due := start + int64(s.cfg.MemLatency)
	if t.bank == t.mc {
		s.replyToCore(id, due)
		return
	}
	s.schedule(due, t.mc, network.PacketSpec{
		Dst: t.bank, Size: s.cfg.ReplyFlits, Tag: tag(id, phaseMemToBank),
	})
}

// replyToCore sends the data reply from the bank to the requesting core,
// or completes immediately for a core-local bank.
func (s *System) replyToCore(id uint64, due int64) {
	t := s.txns[id]
	if t.bank == t.core {
		s.completeAt(id, due)
		return
	}
	s.schedule(due, t.bank, network.PacketSpec{
		Dst: t.core, Size: s.cfg.ReplyFlits, Tag: tag(id, phaseReplyToCore),
	})
}

// completeAt finishes a transaction at the given cycle (possibly in the
// future for purely local transactions).
func (s *System) completeAt(id uint64, due int64) {
	if due <= s.cycle {
		s.complete(id)
		return
	}
	s.schedule(due, -1, network.PacketSpec{Tag: tag(id, phaseReplyToCore)})
}

func (s *System) complete(id uint64) {
	t, ok := s.txns[id]
	if !ok {
		panic(fmt.Sprintf("manycore: completing unknown txn %d", id))
	}
	s.cores[t.core].outstanding--
	s.memLatSum += float64(s.cycle - t.issued)
	s.memLatCount++
	delete(s.txns, id)
}

// AvgMemLatency returns the mean end-to-end memory-transaction latency
// (issue to reply) in cycles over the transactions completed so far.
func (s *System) AvgMemLatency() float64 {
	if s.memLatCount == 0 {
		return 0
	}
	return s.memLatSum / float64(s.memLatCount)
}

// schedule queues a packet emission (node >= 0) or a local completion
// (node < 0) at the due cycle.
func (s *System) schedule(due int64, node int, spec network.PacketSpec) {
	if due <= s.cycle {
		due = s.cycle + 1
	}
	s.calendar[due] = append(s.calendar[due], event{node: node, spec: spec})
}

// Generate implements network.Workload: drain the node's outbox.
func (s *System) Generate(node int, cycle int64, _ *sim.RNG) []network.PacketSpec {
	// Local completions are parked on node -1 via the calendar and
	// handled in Tick; here only real packets remain.
	out := s.outbox[node]
	s.outbox[node] = nil
	return out
}

// NodeActive implements network.NodeActivity: Generate is a pure outbox
// drain that consumes no randomness, so a node with an empty outbox can
// be skipped without changing behavior. Drained slots are set to nil and
// refilled only by appends, so a non-nil outbox is always non-empty.
func (s *System) NodeActive(node int, _ int64) bool {
	return len(s.outbox[node]) > 0
}

// Delivered implements network.Workload: advance the transaction state
// machine when its packet arrives.
func (s *System) Delivered(d network.Delivery) {
	id, phase := untag(d.Tag)
	switch phase {
	case phaseReqToBank:
		s.bankRespond(id, d.EjectCycle)
	case phaseBankToMem:
		s.memRespond(id, d.EjectCycle)
	case phaseMemToBank:
		s.replyToCore(id, d.EjectCycle)
	case phaseReplyToCore:
		s.complete(id)
	default:
		panic(fmt.Sprintf("manycore: unknown phase %d", phase))
	}
}

// IPC returns per-core instructions per cycle over the elapsed cycles.
func (s *System) IPC(cycles int64) []float64 {
	out := make([]float64, len(s.cores))
	for i, c := range s.cores {
		out[i] = c.retired / float64(cycles)
	}
	return out
}

// ResetRetired clears per-core instruction counts and latency accounting
// (start of measurement).
func (s *System) ResetRetired() {
	for _, c := range s.cores {
		c.retired = 0
	}
	s.memLatSum, s.memLatCount = 0, 0
}

// Outstanding returns total in-flight memory transactions (for tests).
func (s *System) Outstanding() int { return len(s.txns) }
