// Package store is the content-addressed, cross-run result cache that
// backs both the experiment harness's resumable manifests and the vixd
// simulation service. Every result is keyed by a sha256 content hash of
// the job's name and spec (computed by the harness), so two requests
// describe the same simulation exactly when their keys collide — and
// because every simulation in this repository is deterministic in its
// spec (vixlint-enforced), a key collision means the cached value IS the
// result, byte for byte. That property turns memoization from an
// approximation into an identity: identical specs from any client,
// across suites, across server restarts, are served from the store
// without simulating.
//
// The on-disk format is the harness's JSONL manifest, unchanged: one
// JSON object per line with id/name/value/telemetry fields, appended
// with O_APPEND in a single Write per entry so concurrent writers —
// other Store instances in this process or other processes sharing the
// file — interleave whole lines rather than tearing them. A kill can
// tear at most the final line, which Open discards; duplicate IDs are
// legal (two writers may race to complete the same spec) and resolve
// last-wins, which is safe because determinism makes every value for an
// ID identical.
//
// In-process, a Store adds what the file format cannot: single-flight
// de-duplication. Do coalesces N concurrent requests for one ID into a
// single computation; the leader simulates, appends, and publishes, and
// the other N-1 callers block until the entry lands and then share it.
// Hit, miss, and in-flight-dedup counters make the cache's behaviour
// observable (vixd's /statsz, the harnessbench cache gate, and the
// exactness tests all read them).
//
// A Store never spawns goroutines; it only synchronises callers that
// are already concurrent (the harness worker pool, vixd's runners).
// Concurrency stays confined to the packages vixlint allowlists.
package store

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Telemetry is the wall-clock cost of one job, recorded alongside its
// result. It annotates throughput (stderr logs, BENCH_harness.json,
// vixd result metadata) but never enters a merged artifact: CSVs and
// tables stay byte-identical across machines and worker counts. For a
// cached result it is the cost recorded when the job originally ran.
type Telemetry struct {
	// WallNanos is the job's elapsed wall time in nanoseconds.
	WallNanos int64 `json:"wall_ns"`
	// Cycles is the number of simulated cycles.
	Cycles int64 `json:"cycles,omitempty"`
	// CyclesPerSec is the simulation rate, the harness's headline
	// throughput metric.
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
}

// Duration returns the wall time as a time.Duration.
func (t Telemetry) Duration() time.Duration { return time.Duration(t.WallNanos) }

// Entry is one cached result: a single JSON line of the store file.
type Entry struct {
	// ID is the content hash of the job's name and spec — the cache key.
	ID string `json:"id"`
	// Name is the human-readable job name, e.g. "spec/if:2/0.05".
	Name string `json:"name"`
	// Value is the JSON encoding of the job's result.
	Value json.RawMessage `json:"value"`
	// Telemetry records the cost of the run that produced Value.
	Telemetry Telemetry `json:"telemetry"`
}

// Outcome reports how Do satisfied a request.
type Outcome int

const (
	// Computed: this caller ran the computation (a cache miss).
	Computed Outcome = iota
	// Hit: the entry was already in the store.
	Hit
	// Shared: another in-flight caller was already computing this ID;
	// this caller waited and shares the leader's result.
	Shared
)

// String names the outcome for logs and result metadata.
func (o Outcome) String() string {
	switch o {
	case Computed:
		return "computed"
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	}
	return fmt.Sprintf("store: unknown outcome %d", int(o))
}

// Stats is a snapshot of the store's accounting.
type Stats struct {
	// Entries is the number of distinct IDs currently held.
	Entries int `json:"entries"`
	// Hits counts requests served from an already-stored entry.
	Hits int64 `json:"hits"`
	// Misses counts requests that ran the computation.
	Misses int64 `json:"misses"`
	// InflightDedup counts requests that waited on another caller's
	// in-flight computation instead of starting their own.
	InflightDedup int64 `json:"inflight_dedup"`
}

// Served returns the number of requests answered without computing.
func (s Stats) Served() int64 { return s.Hits + s.InflightDedup }

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	e    Entry
	err  error
}

// Store is a content-addressed result cache safe for concurrent readers
// and writers. The zero value is not usable; construct with Open or
// Memory.
type Store struct {
	mu      sync.Mutex
	f       *os.File // nil for a memory-only store
	path    string
	entries map[string]Entry
	flights map[string]*flight

	hits, misses, dedups atomic.Int64
}

// Memory returns a store with no backing file: a pure in-process
// memoization table. Useful for tests and for serving without persistence.
func Memory() *Store {
	return &Store{
		entries: make(map[string]Entry),
		flights: make(map[string]*flight),
	}
}

// Open loads the store file at path — tolerating a torn final line from
// a killed writer — and opens it for appending. A missing file is an
// empty store, so first runs and resumed runs share one code path. An
// empty path returns a memory-only store.
func Open(path string) (*Store, error) {
	s := Memory()
	if path == "" {
		return s, nil
	}
	s.path = path
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: reading %s: %w", path, err)
	}
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		var e Entry
		// A line that does not parse, or parses without an ID, is a torn
		// tail write from an interrupted run: ignore it and the job will
		// simply be re-run.
		if err := json.Unmarshal(line, &e); err != nil || e.ID == "" {
			continue
		}
		s.entries[e.ID] = e
	}
	s.f, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", path, err)
	}
	return s, nil
}

// Path returns the backing file path ("" for a memory-only store).
func (s *Store) Path() string { return s.path }

// Len returns the number of distinct entries held.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats snapshots the store's accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	n := len(s.entries)
	s.mu.Unlock()
	return Stats{
		Entries:       n,
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		InflightDedup: s.dedups.Load(),
	}
}

// Lookup returns the stored entry for an ID, if any. It does not touch
// the hit/miss counters; accounting belongs to Do, the request path.
func (s *Store) Lookup(id string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	return e, ok
}

// Put stores one completed entry, appending it to the backing file (one
// O_APPEND Write of one full line, so concurrent writers — including
// other processes sharing the file — interleave whole lines and a kill
// can tear at most the final one).
func (s *Store) Put(e Entry) error {
	if e.ID == "" {
		return fmt.Errorf("store: entry %q has no ID", e.Name)
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: encoding entry %s: %w", e.Name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		if _, err := s.f.Write(append(line, '\n')); err != nil {
			return fmt.Errorf("store: writing entry %s: %w", e.Name, err)
		}
	}
	s.entries[e.ID] = e
	return nil
}

// Do returns the entry for id, computing it at most once across all
// concurrent callers: a stored entry is returned immediately (Hit); if
// another caller is already computing id, this caller blocks until that
// flight lands and shares its result (Shared); otherwise compute runs on
// this goroutine and its entry is stored and published (Computed).
//
// compute must return an entry whose ID equals id. Its error is
// propagated to every caller of the flight, and the flight is then
// cleared so a later request retries. A waiter whose ctx ends before the
// flight lands returns ctx's error without disturbing the computation.
func (s *Store) Do(ctx context.Context, id string, compute func() (Entry, error)) (Entry, Outcome, error) {
	s.mu.Lock()
	if e, ok := s.entries[id]; ok {
		s.mu.Unlock()
		s.hits.Add(1)
		return e, Hit, nil
	}
	if fl, ok := s.flights[id]; ok {
		s.mu.Unlock()
		s.dedups.Add(1)
		select {
		case <-fl.done:
			return fl.e, Shared, fl.err
		case <-ctx.Done():
			return Entry{}, Shared, fmt.Errorf("store: waiting for in-flight %s: %w", id, ctx.Err())
		}
	}
	fl := &flight{done: make(chan struct{})}
	s.flights[id] = fl
	s.mu.Unlock()
	s.misses.Add(1)

	// Publish the flight on every exit — including a compute panic, so
	// waiters see an error instead of blocking forever — and clear it so
	// the ID can be retried after a failure.
	finished := false
	defer func() {
		if !finished {
			fl.err = fmt.Errorf("store: computing %s panicked", id)
		}
		s.mu.Lock()
		delete(s.flights, id)
		s.mu.Unlock()
		close(fl.done)
	}()

	e, err := compute()
	if err == nil && e.ID != id {
		err = fmt.Errorf("store: computed entry %q under key %q", e.ID, id)
	}
	if err == nil {
		err = s.Put(e)
	}
	fl.e, fl.err = e, err
	finished = true
	if err != nil {
		return Entry{}, Computed, err
	}
	return e, Computed, nil
}

// Close releases the backing file handle. The in-memory table remains
// readable; further Puts affect only memory.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	f := s.f
	s.f = nil
	return f.Close()
}
