package manycore

import (
	"testing"

	"vix/internal/alloc"
	"vix/internal/network"
	"vix/internal/router"
	"vix/internal/topology"
	"vix/internal/trace"
)

// buildSystem wires a manycore onto a mesh network.
func buildSystem(t *testing.T, cfg Config, apps []trace.App, kind alloc.Kind, k int) (*System, *network.Network) {
	t.Helper()
	topo := topology.NewMesh(8, 8)
	sys, err := New(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	policy := router.PolicyMaxFree
	if k > 1 {
		policy = router.PolicyBalanced
	}
	n, err := network.New(network.Config{
		Topology: topo,
		Router: router.Config{
			Ports: topo.Radix, VCs: 6, VirtualInputs: k, BufDepth: 5,
			AllocKind: kind, Policy: policy,
		},
		Workload: sys,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, n
}

func uniformApps(name string, n int) []trace.App {
	a, err := trace.ByName(name)
	if err != nil {
		panic(err)
	}
	apps := make([]trace.App, n)
	for i := range apps {
		apps[i] = a
	}
	return apps
}

// A chip of compute-bound cores runs at full issue width: the network
// must not throttle nearly miss-free applications.
func TestComputeBoundCoresRunAtIssueWidth(t *testing.T) {
	cfg := DefaultConfig()
	sys, n := buildSystem(t, cfg, uniformApps("povray", 64), alloc.KindSeparableIF, 1)
	n.Run(6000)
	for i, ipc := range sys.IPC(6000) {
		// A rare long miss burst can stall even a near-miss-free core
		// briefly, so demand 90% of issue width rather than all of it.
		if ipc < 0.90*cfg.IssueWidth {
			t.Fatalf("core %d IPC %.3f below issue width on compute-bound app", i, ipc)
		}
	}
}

// Memory-bound cores must be throttled well below issue width by memory
// latency through the MLP window.
func TestMemoryBoundCoresAreThrottled(t *testing.T) {
	cfg := DefaultConfig()
	sys, n := buildSystem(t, cfg, uniformApps("mcf", 64), alloc.KindSeparableIF, 1)
	n.Run(4000)
	total := 0.0
	for _, ipc := range sys.IPC(4000) {
		total += ipc
	}
	if avg := total / 64; avg > 0.9*cfg.IssueWidth {
		t.Fatalf("mcf chip average IPC %.3f, expected heavy memory throttling", avg)
	}
}

// Higher MPKI must not raise IPC; across three apps the ordering of IPC
// is the reverse of MPKI ordering.
func TestIPCOrderedByMPKI(t *testing.T) {
	cfg := DefaultConfig()
	ipcOf := func(app string) float64 {
		sys, n := buildSystem(t, cfg, uniformApps(app, 64), alloc.KindSeparableIF, 1)
		n.Run(3000)
		total := 0.0
		for _, v := range sys.IPC(3000) {
			total += v
		}
		return total / 64
	}
	light := ipcOf("sjeng") // ~1.6 MPKI
	mid := ipcOf("milc")    // ~39 MPKI
	heavy := ipcOf("mcf")   // ~176 MPKI
	if !(light > mid && mid > heavy) {
		t.Fatalf("IPC not ordered by MPKI: sjeng %.3f, milc %.3f, mcf %.3f", light, mid, heavy)
	}
}

// Outstanding transactions never exceed the MLP window per core.
func TestMLPWindowRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MLPWindow = 4
	sys, n := buildSystem(t, cfg, uniformApps("mcf", 64), alloc.KindSeparableIF, 1)
	for i := 0; i < 1000; i++ {
		n.Step()
		for c, core := range sys.cores {
			if core.outstanding > cfg.MLPWindow {
				t.Fatalf("core %d has %d outstanding, window %d", c, core.outstanding, cfg.MLPWindow)
			}
		}
	}
}

// Every transaction eventually completes: run traffic, then let the
// system idle by swapping in a no-miss phase is impossible mid-run, so
// instead check steady state: outstanding stays bounded and transactions
// complete continuously.
func TestTransactionsComplete(t *testing.T) {
	cfg := DefaultConfig()
	sys, n := buildSystem(t, cfg, uniformApps("xalan", 64), alloc.KindSeparableIF, 1)
	n.Run(1000)
	if sys.Outstanding() > 64*cfg.MLPWindow {
		t.Fatalf("outstanding %d exceeds chip-wide bound", sys.Outstanding())
	}
	sys.ResetRetired()
	n.Run(2000)
	total := 0.0
	for _, v := range sys.IPC(2000) {
		total += v
	}
	if total == 0 {
		t.Fatal("no instructions retired in steady state: system deadlocked")
	}
}

// VIX must speed up a memory-intensive chip relative to baseline IF —
// the Table 4 mechanism at component level.
func TestVIXSpeedsUpMemoryBoundChip(t *testing.T) {
	cfg := DefaultConfig()
	run := func(kind alloc.Kind, k int) float64 {
		sys, n := buildSystem(t, cfg, uniformApps("Gems", 64), kind, k)
		n.Run(1500)
		sys.ResetRetired()
		n.Run(4000)
		total := 0.0
		for _, v := range sys.IPC(4000) {
			total += v
		}
		return total
	}
	base := run(alloc.KindSeparableIF, 1)
	vix := run(alloc.KindSeparableIF, 2)
	if vix <= base {
		t.Fatalf("VIX chip IPC %.2f not above baseline %.2f on memory-bound workload", vix, base)
	}
}

func TestConfigValidation(t *testing.T) {
	apps := uniformApps("milc", 64)
	bad := DefaultConfig()
	bad.MLPWindow = 0
	if _, err := New(bad, apps); err == nil {
		t.Error("zero MLP window accepted")
	}
	bad = DefaultConfig()
	bad.MemControllers = nil
	if _, err := New(bad, apps); err == nil {
		t.Error("no memory controllers accepted")
	}
	bad = DefaultConfig()
	bad.MemControllers = []int{99}
	if _, err := New(bad, apps); err == nil {
		t.Error("out-of-range memory controller accepted")
	}
	bad = DefaultConfig()
	bad.ReplyFlits = 0
	if _, err := New(bad, apps); err == nil {
		t.Error("zero reply flits accepted")
	}
}

func TestTagRoundTrip(t *testing.T) {
	for _, id := range []uint64{0, 1, 12345, 1 << 40} {
		for phase := 0; phase < 4; phase++ {
			gotID, gotPhase := untag(tag(id, phase))
			if gotID != id || gotPhase != phase {
				t.Fatalf("tag round trip failed: (%d,%d) -> (%d,%d)", id, phase, gotID, gotPhase)
			}
		}
	}
}

// The manycore workload advertises node activity (Generate is a pure
// outbox drain), letting the gated tick skip generation for idle cores.
var _ network.NodeActivity = (*System)(nil)

// TestActivityGateMatchesDense pins the NodeActivity hint end to end:
// the gated network (default), which consults System.NodeActive and
// skips idle cores' Generate calls entirely, must reproduce the dense
// network's per-core IPC and memory latency exactly.
func TestActivityGateMatchesDense(t *testing.T) {
	cfg := DefaultConfig()
	run := func(disableGate bool) ([]float64, float64) {
		sys, err := New(cfg, uniformApps("Gems", 64))
		if err != nil {
			t.Fatal(err)
		}
		topo := topology.NewMesh(8, 8)
		n, err := network.New(network.Config{
			Topology: topo,
			Router: router.Config{
				Ports: topo.Radix, VCs: 6, VirtualInputs: 2, BufDepth: 5,
				AllocKind: alloc.KindSeparableIF, Policy: router.PolicyBalanced,
			},
			Workload:            sys,
			Seed:                1,
			DisableActivityGate: disableGate,
		})
		if err != nil {
			t.Fatal(err)
		}
		n.Run(4000)
		return sys.IPC(4000), sys.AvgMemLatency()
	}
	gatedIPC, gatedLat := run(false)
	denseIPC, denseLat := run(true)
	if gatedLat != denseLat {
		t.Fatalf("memory latency diverged: gated %v dense %v", gatedLat, denseLat)
	}
	if gatedLat <= 0 {
		t.Fatal("latency accounting empty; workload broken")
	}
	for i := range gatedIPC {
		if gatedIPC[i] != denseIPC[i] {
			t.Fatalf("core %d IPC diverged: gated %v dense %v", i, gatedIPC[i], denseIPC[i])
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	run := func() []float64 {
		sys, n := buildSystem(t, cfg, uniformApps("milc", 64), alloc.KindSeparableIF, 1)
		n.Run(1500)
		return sys.IPC(1500)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("core %d IPC diverged: %v vs %v", i, a[i], b[i])
		}
	}
}

// The MC bandwidth model must add queueing delay under heavy DRAM
// pressure: a chip of high-L2-miss cores retires fewer instructions with
// a tight service interval than with unlimited MC bandwidth.
func TestMCBandwidthThrottles(t *testing.T) {
	chipIPC := func(service int) float64 {
		cfg := DefaultConfig()
		cfg.MCServiceCycles = service
		sys, n := buildSystem(t, cfg, uniformApps("mcf", 64), alloc.KindSeparableIF, 1)
		n.Run(4000)
		total := 0.0
		for _, v := range sys.IPC(4000) {
			total += v
		}
		return total
	}
	unlimited := chipIPC(0)
	tight := chipIPC(20)
	if tight >= unlimited {
		t.Fatalf("tight MC bandwidth (%.1f chip IPC) not below unlimited (%.1f)", tight, unlimited)
	}
}

// The speedup mechanism is visible in the memory-latency metric: VIX
// lowers the average memory-transaction latency on a congested chip.
func TestVIXLowersMemoryLatency(t *testing.T) {
	memLat := func(kind alloc.Kind, k int) float64 {
		sys, n := buildSystem(t, DefaultConfig(), uniformApps("Gems", 64), kind, k)
		n.Run(1500)
		sys.ResetRetired()
		n.Run(4000)
		return sys.AvgMemLatency()
	}
	base := memLat(alloc.KindSeparableIF, 1)
	vix := memLat(alloc.KindSeparableIF, 2)
	if base <= 0 || vix <= 0 {
		t.Fatalf("latency accounting empty: base %.1f vix %.1f", base, vix)
	}
	if vix >= base {
		t.Fatalf("VIX memory latency %.1f not below baseline %.1f", vix, base)
	}
}
