// Package trace provides the application-workload substrate for the
// paper's Section 4.7 study: a catalog of the 35 benchmarks (SPEC
// CPU2006, SPEC2000 and SPLASH codes, and the four commercial traces sap,
// tpcw, sjbb, sjas), the eight multiprogrammed mixes of Table 4, and a
// synthetic memory-reference generator.
//
// The paper drives a trace-driven manycore simulator with proprietary
// application traces; those are not redistributable, so this package
// substitutes a statistical trace model (see DESIGN.md, "Substitutions").
// The only per-benchmark statistic Table 4 reports is the combined
// L1+L2 misses-per-kilo-instruction, which is also the statistic that
// determines how hard an application drives the on-chip network. Each
// catalog entry carries an MPKI calibrated so that every Table 4 mix
// reproduces the paper's published average MPKI exactly; the generator
// emits exponentially spaced misses at that rate.
package trace

import (
	"fmt"
	"sort"

	"vix/internal/sim"
)

// App is one benchmark's traffic-relevant characterisation.
type App struct {
	Name string
	// L1MPKI is misses per kilo-instruction out of the private L1 (these
	// travel to an L2 bank); L2MPKI is the subset that also misses the
	// shared L2 (these travel onward to a memory controller). The paper
	// reports their sum per benchmark; the 70/30 split is a modelling
	// choice documented in DESIGN.md.
	L1MPKI float64
	L2MPKI float64
}

// MPKI returns the combined L1+L2 MPKI, the statistic Table 4 reports.
func (a App) MPKI() float64 { return a.L1MPKI + a.L2MPKI }

// l1Share is the fraction of the combined MPKI attributed to L1 misses
// that hit in the L2.
const l1Share = 0.7

// app constructs a catalog entry from a combined MPKI.
func app(name string, mpki float64) App {
	return App{Name: name, L1MPKI: mpki * l1Share, L2MPKI: mpki * (1 - l1Share)}
}

// Catalog returns the 35-benchmark suite. The 26 benchmarks that appear
// in Table 4's mixes carry MPKI values calibrated (by iterative
// proportional fitting) so each mix's average matches the paper; the
// remaining nine use typical published values.
func Catalog() []App {
	return []App{
		// Mix members, calibrated to Table 4.
		app("milc", 38.94),
		app("applu", 25.10),
		app("astar", 14.60),
		app("sjeng", 1.61),
		app("tonto", 2.48),
		app("hmmer", 6.45),
		app("sjas", 36.62),
		app("gcc", 5.21),
		app("sjbb", 33.14),
		app("gromacs", 2.02),
		app("xalan", 50.01),
		app("libquantum", 50.05),
		app("barnes", 14.50),
		app("tpcw", 79.55),
		app("povray", 0.72),
		app("swim", 50.19),
		app("leslie", 38.34),
		app("omnet", 44.81),
		app("art", 46.41),
		app("lbm", 55.03),
		app("Gems", 69.09),
		app("mcf", 176.26),
		app("ocean", 18.60),
		app("deal", 9.30),
		app("sap", 44.36),
		app("namd", 2.61),
		// Suite members outside the published mixes.
		app("bzip2", 3.10),
		app("perlbench", 1.20),
		app("gobmk", 1.00),
		app("h264ref", 1.50),
		app("soplex", 29.00),
		app("sphinx3", 13.00),
		app("zeusmp", 6.00),
		app("cactus", 5.00),
		app("bwaves", 19.00),
	}
}

// ByName returns the catalog entry for name.
func ByName(name string) (App, error) {
	for _, a := range Catalog() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// MixEntry is one benchmark of a multiprogrammed workload with its
// instance count.
type MixEntry struct {
	App       string
	Instances int
}

// Mix is one Table 4 workload: six unique applications whose instance
// counts sum to the 64 cores.
type Mix struct {
	Name    string
	Entries []MixEntry
	// PaperMPKI and PaperSpeedup are the published Table 4 values
	// (average per-core MPKI; VIX speedup over baseline IF).
	PaperMPKI    float64
	PaperSpeedup float64
}

// Mixes returns the eight multiprogrammed workloads of Table 4.
func Mixes() []Mix {
	return []Mix{
		{"Mix1", []MixEntry{{"milc", 11}, {"applu", 11}, {"astar", 10}, {"sjeng", 11}, {"tonto", 11}, {"hmmer", 10}}, 15.0, 1.03},
		{"Mix2", []MixEntry{{"sjas", 11}, {"gcc", 11}, {"sjbb", 11}, {"gromacs", 11}, {"sjeng", 10}, {"xalan", 10}}, 21.3, 1.03},
		{"Mix3", []MixEntry{{"milc", 11}, {"libquantum", 10}, {"astar", 11}, {"barnes", 11}, {"tpcw", 11}, {"povray", 10}}, 33.3, 1.04},
		{"Mix4", []MixEntry{{"astar", 11}, {"swim", 11}, {"leslie", 10}, {"omnet", 10}, {"sjas", 11}, {"art", 11}}, 38.4, 1.05},
		{"Mix5", []MixEntry{{"applu", 11}, {"lbm", 11}, {"Gems", 11}, {"barnes", 10}, {"xalan", 11}, {"leslie", 10}}, 42.5, 1.05},
		{"Mix6", []MixEntry{{"mcf", 11}, {"ocean", 10}, {"gromacs", 10}, {"lbm", 11}, {"deal", 11}, {"sap", 11}}, 52.2, 1.05},
		{"Mix7", []MixEntry{{"mcf", 10}, {"namd", 11}, {"hmmer", 11}, {"tpcw", 11}, {"omnet", 10}, {"swim", 11}}, 58.4, 1.06},
		// The published Mix8 instance counts sum to 63; sap is listed
		// here with 11 instances instead of 10 to fill all 64 cores
		// (an apparent typo in the paper's Table 4).
		{"Mix8", []MixEntry{{"Gems", 10}, {"sjbb", 11}, {"sjas", 11}, {"mcf", 10}, {"xalan", 11}, {"sap", 11}}, 66.9, 1.07},
	}
}

// Cores returns the total instance count of the mix.
func (m Mix) Cores() int {
	n := 0
	for _, e := range m.Entries {
		n += e.Instances
	}
	return n
}

// AvgMPKI returns the instance-weighted average combined MPKI of the mix,
// the statistic of Table 4's "avg. MPKI" column.
func (m Mix) AvgMPKI() (float64, error) {
	var sum float64
	var n int
	for _, e := range m.Entries {
		a, err := ByName(e.App)
		if err != nil {
			return 0, err
		}
		sum += a.MPKI() * float64(e.Instances)
		n += e.Instances
	}
	return sum / float64(n), nil
}

// Assign maps the mix onto cores: core i runs Assign(i). The assignment
// interleaves applications round-robin so instances of one benchmark
// spread across the chip, as multiprogrammed scheduling would.
func (m Mix) Assign(cores int) ([]App, error) {
	if m.Cores() != cores {
		return nil, fmt.Errorf("trace: mix %s has %d instances for %d cores", m.Name, m.Cores(), cores)
	}
	remaining := make([]int, len(m.Entries))
	apps := make([]App, len(m.Entries))
	for i, e := range m.Entries {
		remaining[i] = e.Instances
		a, err := ByName(e.App)
		if err != nil {
			return nil, err
		}
		apps[i] = a
	}
	out := make([]App, 0, cores)
	for len(out) < cores {
		for i := range m.Entries {
			if remaining[i] > 0 {
				out = append(out, apps[i])
				remaining[i]--
			}
		}
	}
	return out, nil
}

// DefaultBurstiness is the mean number of misses per burst. Cache misses
// cluster (a line of pointer chases, a streaming phase), so synthetic
// traces emit geometric bursts of back-to-back misses separated by long
// exponential gaps; the long-run miss rate still matches the app's MPKI.
const DefaultBurstiness = 4.0

// intraBurstGap is the instruction spacing of misses inside a burst.
const intraBurstGap = 2.0

// Generator produces a synthetic memory-reference stream for one core:
// the instruction distance to each successive L1 miss, and whether that
// miss also misses the L2.
type Generator struct {
	app   App
	rng   *sim.RNG
	burst float64
	// left counts the remaining misses of the current burst.
	left int
}

// NewGenerator returns a trace generator for the app with the default
// burstiness, seeded deterministically from the provided stream.
func NewGenerator(a App, rng *sim.RNG) *Generator {
	return NewGeneratorBurst(a, rng, DefaultBurstiness)
}

// NewGeneratorBurst returns a generator with an explicit mean burst
// length; burst <= 1 yields a plain Poisson miss stream.
func NewGeneratorBurst(a App, rng *sim.RNG, burst float64) *Generator {
	if burst < 1 {
		burst = 1
	}
	return &Generator{app: a, rng: rng, burst: burst}
}

// App returns the generator's benchmark.
func (g *Generator) App() App { return g.app }

// NextMiss returns the number of instructions until the next L1 miss and
// whether it also misses in the shared L2. Misses arrive in geometric
// bursts with mean length Burstiness; the inter-burst gap is sized so the
// long-run rate equals L1MPKI misses per kilo-instruction.
func (g *Generator) NextMiss() (instructions float64, l2Miss bool) {
	if g.app.L1MPKI <= 0 {
		// Effectively no misses: one per hundred million instructions.
		return 1e8, false
	}
	l2 := g.rng.Bernoulli(g.app.L2MPKI / g.app.L1MPKI)
	if g.left > 0 {
		g.left--
		return intraBurstGap, l2
	}
	// Start a new burst: geometric length with mean g.burst.
	n := 1
	for g.rng.Bernoulli(1 - 1/g.burst) {
		n++
	}
	g.left = n - 1
	// Mean instructions per miss must stay 1000/L1MPKI:
	// (interMean + (burst-1)*intraGap) / burst = 1000/L1MPKI.
	interMean := g.burst*(1000/g.app.L1MPKI) - (g.burst-1)*intraBurstGap
	if interMean < 1 {
		interMean = 1
	}
	gap := g.rng.Exp(interMean)
	if gap < 1 {
		gap = 1
	}
	return gap, l2
}

// Names returns all catalog benchmark names, sorted.
func Names() []string {
	cat := Catalog()
	names := make([]string, len(cat))
	for i, a := range cat {
		names[i] = a.Name
	}
	sort.Strings(names)
	return names
}
