// Package net seeds the activity-bitset race the shard-ownership rule
// exists to catch: a phase-A pool job clearing a word of the shared
// activity bitset. Two jobs whose routers share a word would race on the
// read-modify-write; bit clears must happen in the phase-B merge, on the
// stepping goroutine, or the root must be declared (and justified) in
// ShardOwnershipRoots.
package net

import "fix/internal/sim"

// Net is a toy network with packed activity words and per-router ticks.
type Net struct {
	act   []uint64
	ticks []int
}

// New sizes the activity words for n routers.
func New(n int) *Net {
	return &Net{act: make([]uint64, (n+63)/64), ticks: make([]int, n)}
}

// runRouter is the phase-A job: the per-router tick write is fine if
// declared, but clearing the router's activity bit mutates a word shared
// with 63 other routers.
func (n *Net) runRouter(r int) {
	n.ticks[r]++
	n.act[r>>6] &^= 1 << (uint(r) & 63)
}

// Step fans the tick out across the pool.
func (n *Net) Step(p *sim.Pool) {
	p.Do(len(n.ticks), n.runRouter)
}
