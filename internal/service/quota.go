package service

import "sync"

// quotas meters case admission per client with a token bucket: each
// submitted case costs one token, tokens refill at rate per second up
// to burst. A client that drains its bucket gets 429 with a
// Retry-After hint instead of unbounded queue occupancy. Time comes
// from the injected clock only — the service never reads the wall
// clock, so tests drive quotas deterministically.
type quotas struct {
	mu      sync.Mutex
	rate    float64 // tokens per second; <= 0 disables quotas
	burst   float64 // bucket capacity
	now     func() int64
	buckets map[string]*bucket
}

// bucket is one client's admission state.
type bucket struct {
	tokens float64
	last   int64 // nanos of the last refill
}

// newQuotas builds the quota table. Burst defaults to max(rate, 1) so a
// configured rate always admits at least one case from a fresh bucket.
func newQuotas(rate, burst float64, now func() int64) *quotas {
	if burst <= 0 {
		burst = rate
	}
	if burst < 1 {
		burst = 1
	}
	return &quotas{rate: rate, burst: burst, now: now, buckets: make(map[string]*bucket)}
}

// admit charges the client n tokens. It returns ok, or the number of
// seconds after which retrying the same request can succeed. Requests
// larger than the bucket can never succeed; they are rejected with the
// time a full bucket would take to fill, as a signal to split the
// submission.
func (q *quotas) admit(client string, n int) (ok bool, retryAfter float64) {
	if q.rate <= 0 || n <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	nowNs := q.now()
	b := q.buckets[client]
	if b == nil {
		b = &bucket{tokens: q.burst, last: nowNs}
		q.buckets[client] = b
	}
	elapsed := float64(nowNs-b.last) / 1e9
	if elapsed > 0 {
		b.tokens += elapsed * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
	}
	b.last = nowNs
	need := float64(n)
	if b.tokens >= need {
		b.tokens -= need
		return true, 0
	}
	missing := need - b.tokens
	if need > q.burst {
		missing = q.burst
	}
	return false, missing / q.rate
}
