package experiments

import (
	"fmt"
	"math"

	"vix/internal/topology"
)

// Replication summarises a metric over several independent seeds.
type Replication struct {
	Label  string
	Seeds  int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// ReplicateSaturation runs a scheme's saturation-throughput measurement
// under each seed and returns the distribution — the confidence check
// behind every single-seed number the experiment harness reports.
func ReplicateSaturation(topo *topology.Topology, s Scheme, p Params, seeds []uint64) (Replication, error) {
	if len(seeds) == 0 {
		return Replication{}, fmt.Errorf("experiments: no seeds given")
	}
	values := make([]float64, 0, len(seeds))
	for _, seed := range seeds {
		q := p
		q.Seed = seed
		snap, err := SaturationThroughput(topo, s, q)
		if err != nil {
			return Replication{}, err
		}
		values = append(values, snap.ThroughputFlits)
	}
	return summarise(s.Label, values), nil
}

// summarise computes the sample statistics of values.
func summarise(label string, values []float64) Replication {
	r := Replication{Label: label, Seeds: len(values), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, v := range values {
		sum += v
		r.Min = math.Min(r.Min, v)
		r.Max = math.Max(r.Max, v)
	}
	r.Mean = sum / float64(len(values))
	if len(values) > 1 {
		var ss float64
		for _, v := range values {
			d := v - r.Mean
			ss += d * d
		}
		r.StdDev = math.Sqrt(ss / float64(len(values)-1))
	}
	return r
}
