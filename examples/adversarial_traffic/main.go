// Adversarial traffic and VC assignment (Section 2.3 of the paper):
// with VIX, which sub-group of VCs a packet occupies decides which
// virtual input carries it. The dimension-aware, load-balanced assignment
// keeps both virtual inputs supplied with conflict-free requests even
// under adversarial patterns. This example sweeps traffic patterns and
// compares the three policies on a saturated VIX mesh.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"vix"
)

func saturation(pattern vix.TrafficPattern, policy vix.RouterConfig) vix.Snapshot {
	topo := vix.NewMeshTopology(8, 8)
	n, err := vix.NewNetwork(vix.NetworkConfig{
		Topology:     topo,
		Router:       policy,
		Pattern:      pattern,
		MaxInjection: true,
		PacketSize:   4,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	n.Warmup(1500)
	return n.Measure(5000)
}

func main() {
	policies := []struct {
		name string
		cfg  vix.RouterConfig
	}{
		{"maxfree", vix.RouterConfig{Ports: 5, VCs: 6, VirtualInputs: 2, BufDepth: 5, AllocKind: vix.AllocSeparableIF, Policy: vix.PolicyMaxFree}},
		{"dimension", vix.RouterConfig{Ports: 5, VCs: 6, VirtualInputs: 2, BufDepth: 5, AllocKind: vix.AllocSeparableIF, Policy: vix.PolicyDimension}},
		{"balanced", vix.RouterConfig{Ports: 5, VCs: 6, VirtualInputs: 2, BufDepth: 5, AllocKind: vix.AllocSeparableIF, Policy: vix.PolicyBalanced}},
	}
	patterns := []string{"uniform", "transpose", "tornado", "bitcomp", "hotspot"}

	fmt.Println("Saturated 8x8 VIX mesh (k=2): throughput in flits/cycle/node by VC-assignment policy")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "pattern\tmaxfree\tdimension\tbalanced")
	for _, name := range patterns {
		fmt.Fprintf(w, "%s", name)
		for _, p := range policies {
			pat, err := vix.NewTrafficPattern(name, 8, 8)
			if err != nil {
				log.Fatal(err)
			}
			s := saturation(pat, p.cfg)
			fmt.Fprintf(w, "\t%.4f", s.ThroughputFlits)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println("\nThe dimension-aware policies place X-continuing and Y/ejecting packets in")
	fmt.Println("different VC sub-groups, so the two virtual inputs of each port tend to")
	fmt.Println("request different output ports (fewer conflicts during output arbitration).")
}
