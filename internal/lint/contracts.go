package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// contracts runs the allocator-contract family over an alloc registry
// package: every Kind constant must be listed in Kinds(), constructable
// through New, implemented by a type satisfying Allocator, and that
// type's Name() must return the Kind's string.
func (c *checker) contracts() []Finding {
	var fs []Finding
	kinds := c.kindConstants()
	if len(kinds) == 0 {
		return nil
	}
	listed := c.kindsListed()
	cases := c.newSwitchCases()
	for _, k := range kinds {
		if !listed[k.name] {
			c.report(&fs, k.pos, "contracts/registry",
				"allocator kind %s (%q) is not returned by Kinds(); sweeps and the CLI will never see it", k.name, k.value)
		}
		if _, ok := cases[k.name]; !ok {
			c.report(&fs, k.pos, "contracts/registry",
				"allocator kind %s (%q) has no constructor case in New", k.name, k.value)
		}
	}
	c.checkConstructors(&fs, kinds, cases)
	return fs
}

// kindConst is one package-level constant of the named type Kind.
type kindConst struct {
	name  string
	value string
	pos   token.Pos
}

// kindConstants collects the package-level Kind constants via the type
// checker, sorted by name for deterministic reporting.
func (c *checker) kindConstants() []kindConst {
	var ks []kindConst
	scope := c.pkg.Types.Scope()
	names := scope.Names() // already sorted
	for _, n := range names {
		cn, ok := scope.Lookup(n).(*types.Const)
		if !ok {
			continue
		}
		named, ok := cn.Type().(*types.Named)
		if !ok || named.Obj().Name() != "Kind" || named.Obj().Pkg() != c.pkg.Types {
			continue
		}
		if cn.Val().Kind() != constant.String {
			continue
		}
		ks = append(ks, kindConst{name: n, value: constant.StringVal(cn.Val()), pos: cn.Pos()})
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].name < ks[j].name })
	return ks
}

// kindsListed returns the set of Kind constant names appearing in the
// Kinds() function's return values.
func (c *checker) kindsListed() map[string]bool {
	listed := make(map[string]bool)
	fn := c.funcDecl("Kinds")
	if fn == nil {
		return listed
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			listed[id.Name] = true
		}
		return true
	})
	return listed
}

// newSwitchCases maps each Kind constant cased in New's kind switch to
// the case clause handling it.
func (c *checker) newSwitchCases() map[string]*ast.CaseClause {
	cases := make(map[string]*ast.CaseClause)
	fn := c.funcDecl("New")
	if fn == nil {
		return cases
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				if id, ok := e.(*ast.Ident); ok {
					cases[id.Name] = cc
				}
			}
		}
		return true
	})
	return cases
}

// checkConstructors verifies, per cased Kind, that the constructor called
// in the case returns a concrete type implementing Allocator whose Name
// method returns exactly the Kind's string constant.
func (c *checker) checkConstructors(fs *[]Finding, kinds []kindConst, cases map[string]*ast.CaseClause) {
	allocIface := c.allocatorInterface()
	for _, k := range kinds {
		cc, ok := cases[k.name]
		if !ok {
			continue
		}
		ctor, typ := c.constructedType(cc)
		if typ == nil {
			continue // e.g. a case delegating to another registry; nothing to pin down
		}
		if allocIface != nil && !types.Implements(typ, allocIface) &&
			!types.Implements(types.NewPointer(typ), allocIface) {
			c.report(fs, ctor.Pos(), "contracts/impl",
				"constructor for kind %s returns %s, which does not implement Allocator", k.name, typ)
			continue
		}
		c.checkNameMethod(fs, k, typ)
	}
}

// allocatorInterface returns the package's Allocator interface type.
func (c *checker) allocatorInterface() *types.Interface {
	obj, ok := c.pkg.Types.Scope().Lookup("Allocator").(*types.TypeName)
	if !ok {
		return nil
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	return iface
}

// constructedType resolves the concrete allocator type a New case
// constructs by finding the `return NewX(...)` call in the clause body
// and taking the constructor's first result type.
func (c *checker) constructedType(cc *ast.CaseClause) (ast.Node, types.Type) {
	var ctor ast.Node
	var typ types.Type
	ast.Inspect(&ast.BlockStmt{List: cc.Body}, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		call, ok := ret.Results[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := c.pkg.Info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() != c.pkg.Types {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Results().Len() == 0 {
			return true
		}
		res := sig.Results().At(0).Type()
		if ptr, isPtr := res.(*types.Pointer); isPtr {
			res = ptr.Elem()
		}
		if _, isNamed := res.(*types.Named); isNamed {
			ctor, typ = call, res
			return false
		}
		return true
	})
	return ctor, typ
}

// checkNameMethod verifies that typ's Name method consists of returns of
// one string constant equal to the kind's value. A conditional or
// computed Name breaks the Kind <-> Name correspondence experiments key
// their result tables on.
func (c *checker) checkNameMethod(fs *[]Finding, k kindConst, typ types.Type) {
	named, ok := typ.(*types.Named)
	if !ok {
		return
	}
	decl := c.methodDecl(named.Obj().Name(), "Name")
	if decl == nil {
		return // interface satisfaction already checked under contracts/impl
	}
	var rets []*ast.ReturnStmt
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			rets = append(rets, ret)
		}
		return true
	})
	if len(rets) != 1 {
		c.report(fs, decl.Pos(), "contracts/name",
			"%s.Name has %d return statements; it must return the single string constant %q matching its Kind",
			named.Obj().Name(), len(rets), k.value)
		return
	}
	ret := rets[0]
	bad := len(ret.Results) != 1
	var got string
	if !bad {
		tv, ok := c.pkg.Info.Types[ret.Results[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			bad = true
		} else {
			got = constant.StringVal(tv.Value)
		}
	}
	if bad {
		c.report(fs, ret.Pos(), "contracts/name",
			"%s.Name must return a string constant (want %q, matching its Kind)", named.Obj().Name(), k.value)
		return
	}
	if got != k.value {
		c.report(fs, ret.Pos(), "contracts/name",
			"%s.Name returns %q but its Kind %s is %q; the registry name and the reported name must agree",
			named.Obj().Name(), got, k.name, k.value)
	}
}

// funcDecl returns the package-level function declaration with the given
// name, or nil.
func (c *checker) funcDecl(name string) *ast.FuncDecl {
	var out *ast.FuncDecl
	c.eachFunc(func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Recv == nil && fd.Name.Name == name {
			out = fd
		}
	})
	return out
}

// methodDecl returns the declaration of recvType's method with the given
// name, or nil.
func (c *checker) methodDecl(recvType, name string) *ast.FuncDecl {
	var out *ast.FuncDecl
	c.eachFunc(func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Name.Name != name {
			return
		}
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok && id.Name == recvType {
			out = fd
		}
	})
	return out
}

// scratch runs contracts/scratch over an alloc package: Allocate methods
// must not make a fresh []Grant per call. The Allocate contract returns
// allocator-owned scratch sized at construction, so a make of the grants
// slice inside the method body is a per-cycle heap allocation — exactly
// what the zero-allocation steady state forbids. A justified
// //vixlint:alloc comment waives the finding.
func (c *checker) scratch() []Finding {
	var fs []Finding
	c.eachFunc(func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Recv == nil || fd.Name.Name != "Allocate" {
			return
		}
		if len(requestSetParams(c.pkg, fd)) == 0 {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "make" {
				return true
			}
			if _, isBuiltin := c.pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			tv, ok := c.pkg.Info.Types[call]
			if !ok {
				return true
			}
			sl, ok := tv.Type.Underlying().(*types.Slice)
			if !ok {
				return true
			}
			named, ok := sl.Elem().(*types.Named)
			if !ok || named.Obj().Name() != "Grant" || named.Obj().Pkg() != c.pkg.Types {
				return true
			}
			if c.allocWaived(call.Pos()) {
				return true
			}
			c.report(&fs, call.Pos(), "contracts/scratch",
				"%s.Allocate makes a fresh []Grant per call; build the grants buffer in the constructor and truncate it here (returned slices are valid until the next Allocate or Reset)",
				recvTypeName(fd))
			return true
		})
	})
	return fs
}

// recvTypeName returns the name of fd's receiver type, stripping any
// pointer.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "?"
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}

// mutations runs contracts/mutate over every package: any function with a
// *RequestSet parameter (from an internal/alloc package) must treat the
// set as read-only.
func (c *checker) mutations() []Finding {
	var fs []Finding
	c.eachFunc(func(_ *ast.File, fd *ast.FuncDecl) {
		for _, param := range requestSetParams(c.pkg, fd) {
			c.checkReadOnly(&fs, fd, param)
		}
	})
	return fs
}

// requestSetParams returns the objects of fd's parameters whose type is
// *RequestSet from an internal/alloc package.
func requestSetParams(pkg *Package, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			v, ok := pkg.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			ptr, ok := v.Type().(*types.Pointer)
			if !ok {
				continue
			}
			named, ok := ptr.Elem().(*types.Named)
			if !ok || named.Obj().Name() != "RequestSet" || named.Obj().Pkg() == nil ||
				!strings.HasSuffix(named.Obj().Pkg().Path(), "internal/alloc") {
				continue
			}
			out = append(out, v)
		}
	}
	return out
}

// checkReadOnly flags writes to param's Requests (or the set itself)
// inside fd: assignments through the parameter, append on rs.Requests,
// and in-place sorts.
func (c *checker) checkReadOnly(fs *[]Finding, fd *ast.FuncDecl, param *types.Var) {
	reaches := func(e ast.Expr) bool { return c.touchesRequests(e, param) }
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if reaches(lhs) || c.derefsParam(lhs, param) {
					c.report(fs, n.Pos(), "contracts/mutate",
						"%s must not mutate the request set through %s: callers own and reuse it across allocators",
						fd.Name.Name, param.Name())
					return false
				}
			}
		case *ast.IncDecStmt:
			if reaches(n.X) {
				c.report(fs, n.Pos(), "contracts/mutate",
					"%s must not mutate the request set through %s: callers own and reuse it across allocators",
					fd.Name.Name, param.Name())
				return false
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := c.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					for _, arg := range n.Args {
						if reaches(arg) {
							c.report(fs, n.Pos(), "contracts/mutate",
								"%s must not append to %s.Requests: append may write the caller's backing array in place",
								fd.Name.Name, param.Name())
							return false
						}
					}
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := c.pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
					p := fn.Pkg().Path()
					if p == "sort" || p == "slices" {
						for _, arg := range n.Args {
							if reaches(arg) {
								c.report(fs, n.Pos(), "contracts/mutate",
									"%s must not sort %s.Requests in place: allocators observe the caller's request order",
									fd.Name.Name, param.Name())
								return false
							}
						}
					}
				}
			}
		}
		return true
	})
}

// touchesRequests reports whether expr contains a selection of the
// Requests field on the given parameter (rs.Requests, rs.Requests[i],
// rs.Requests[i].Age, &rs.Requests, ...).
func (c *checker) touchesRequests(expr ast.Expr, param *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Requests" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && c.pkg.Info.Uses[id] == param {
			found = true
			return false
		}
		return true
	})
	return found
}

// derefsParam reports whether lhs assigns through the parameter pointer
// itself (*rs = ... or rs.Field = ...).
func (c *checker) derefsParam(lhs ast.Expr, param *types.Var) bool {
	switch x := lhs.(type) {
	case *ast.ParenExpr:
		return c.derefsParam(x.X, param)
	case *ast.StarExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			return c.pkg.Info.Uses[id] == param
		}
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			return c.pkg.Info.Uses[id] == param
		}
	}
	return false
}
