package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vix/internal/sim"
)

// This file implements the shard-ownership rules guarding the two-phase
// parallel tick (DESIGN.md sections 12 and 13). Every sim.Pool job —
// the function value or literal handed to Pool.Do — runs concurrently
// with its siblings, so the byte-identity argument requires that:
//
//   - parallel/sharedwrite: every write reachable from the job targets
//     shard-owned state. The owned roots per package are declared in
//     ShardOwnershipRoots below; anything else a job cone writes is a
//     cross-shard race candidate and is reported with the rendered call
//     path from the job to the writing statement.
//   - parallel/phase: the job (phase A) must not read state that the
//     caller mutates after the Do call returns (phase B, the serial
//     merge). The serial loop interleaves tick and merge per router, so
//     a phase-A read of phase-B state would make workers>1 diverge from
//     workers=1 even without a data race.
//
// A finding site carrying (or immediately preceded by) a
// "//vixlint:shared <justification>" comment is waived; empty
// justifications are reported under parallel/waiver and unused
// directives join the waiver/stale sweep.
//
// Job values are resolved structurally: a *ast.FuncLit argument is the
// job itself; an identifier or selector naming a declared function or a
// bound method value resolves exactly; any other func-typed value falls
// back to the address-taken functions and referenced method values with
// an identical signature (the `n.shardFn` idiom stores a method value in
// a field once so the per-cycle Do performs no allocation).

// OwnershipRoot is one state root a package's pool jobs may write, with
// the justification for why concurrent writes there cannot race or
// reorder results. Root strings match effectDisplay renderings:
// "(*Network).shards", "captured results", "global pkg.Var".
type OwnershipRoot struct {
	Root string
	Why  string
}

// ShardOwnershipRoots declares, per module-relative package path, the
// write roots that are shard-owned for pool jobs whose Do call lives in
// that package. Growing this map is a reviewed act (the selfcheck test
// pins it): every entry needs a why that explains per-index confinement
// or an explicit lock.
var ShardOwnershipRoots = map[string][]OwnershipRoot{
	"internal/network": {
		{Root: "(*Network).shards", Why: "tickShard scratch: runShard(si) writes only shards[si], its own index"},
		{Root: "(*Network).routers", Why: "router blocks are partitioned by shard ranges (dense) or by worklist entries naming distinct routers (gated); Tick and SkipIdle touch only router-local state"},
		{Root: "(*Network).act", Why: "gated worklist scratch: runActive(i) writes only the per-index slots act.ems/creds/delta/quiesced[i], its own index"},
		{Root: "(*Network).lastTick", Why: "runActive(i) writes only lastTick[act.work[i]], and worklist entries are distinct router indices handed out once each by Pool.Do"},
		{Root: "(*Network).flits", Why: "phase-A lookahead writes flits.At(e.Flit).Route for the shard's own emissions; an emitted flit left exactly one router this cycle, so no two shards resolve the same FlitID, and Alloc/Free (the only slab-moving ops) run solely on the stepping goroutine"},
	},
	"internal/harness": {
		{Root: "captured results", Why: "results[i] is the per-job slot; Pool.Do hands out each index exactly once"},
		{Root: "captured st", Why: "store.Store methods guard entries/flights/file with the store mutex and append whole lines; store order is not part of results"},
		{Root: "captured jobErrs", Why: "guarded by mu in the fail closure; error collection order is not part of results"},
	},
}

// ownershipFingerprint folds ShardOwnershipRoots into cache keys:
// changing which roots are owned changes findings everywhere jobs are
// analyzed.
func ownershipFingerprint() string {
	var sb strings.Builder
	for _, pkg := range sim.SortedKeys(ShardOwnershipRoots) {
		sb.WriteString(pkg)
		for _, r := range ShardOwnershipRoots[pkg] {
			sb.WriteString("|" + r.Root + "=" + r.Why)
		}
		sb.WriteString(";")
	}
	return sb.String()
}

// ownedBy reports whether rendered effect disp falls under one of the
// package's ownership roots (exact match or match at a path boundary).
func ownedBy(roots []OwnershipRoot, disp string) bool {
	for _, r := range roots {
		if disp == r.Root {
			return true
		}
		if strings.HasPrefix(disp, r.Root) {
			switch disp[len(r.Root)] {
			case '.', '[', '<':
				return true
			}
		}
	}
	return false
}

// poolJob is one resolved sim.Pool job: the Do call site, the function
// containing it, and the job body (a declared function or a literal).
type poolJob struct {
	caller    *types.Func
	callerPkg *Package
	doCall    *ast.CallExpr
	jobFn     *types.Func  // nil when the job is a literal
	lit       *ast.FuncLit // nil when the job is a declared function
}

// display names the job for findings.
func (j *poolJob) display() string {
	if j.lit != nil {
		return "func literal in " + funcDisplay(j.caller)
	}
	return funcDisplay(j.jobFn)
}

// effectOwner is the function whose receiver a rootRecv effect in the
// job summary refers to: the job itself for declared jobs, the
// enclosing caller for literals.
func (j *poolJob) effectOwner() *types.Func {
	if j.lit != nil {
		return j.caller
	}
	return j.jobFn
}

// isPoolDo reports whether call is `x.Do(n, fn)` on a sim.Pool value.
// The match is structural (type named Pool in a package named sim with
// that shape) so the corpus fixtures' miniature pools count too.
func isPoolDo(pkg *Package, call *ast.CallExpr) (types.Object, bool) {
	sel, ok := stripParens(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Do" || len(call.Args) != 2 {
		return nil, false
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Pool" {
		return nil, false
	}
	if named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "sim" {
		return nil, false
	}
	return named.Obj(), true
}

// findPoolJobs scans every module function for Pool.Do call sites and
// resolves their job values. The pool's own package is exempt: its Do
// is the dispatch mechanism, not a job site.
func findPoolJobs(a *Analysis) []*poolJob {
	var jobs []*poolJob
	g := a.graph
	for _, fn := range g.funcs {
		node := g.nodes[fn]
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			poolObj, ok := isPoolDo(node.pkg, call)
			if !ok || poolObj.Pkg().Path() == node.pkg.Path {
				return true
			}
			jobs = append(jobs, resolveJobArg(a, node, call)...)
			return true
		})
	}
	return jobs
}

// resolveJobArg resolves the func(int) argument of one Do call to the
// jobs it may run.
func resolveJobArg(a *Analysis, node *cgNode, call *ast.CallExpr) []*poolJob {
	base := poolJob{caller: node.fn, callerPkg: node.pkg, doCall: call}
	arg := stripParens(call.Args[1])
	if lit, ok := arg.(*ast.FuncLit); ok {
		j := base
		j.lit = lit
		return []*poolJob{&j}
	}
	// An identifier or selector naming a function or bound method value
	// resolves exactly.
	switch x := arg.(type) {
	case *ast.Ident:
		if fn, ok := node.pkg.Info.Uses[x].(*types.Func); ok && a.graph.nodes[fn] != nil {
			j := base
			j.jobFn = fn
			return []*poolJob{&j}
		}
	case *ast.SelectorExpr:
		if s, ok := node.pkg.Info.Selections[x]; ok && s.Kind() == types.MethodVal {
			if fn, ok := s.Obj().(*types.Func); ok && a.graph.nodes[fn] != nil {
				j := base
				j.jobFn = fn
				return []*poolJob{&j}
			}
		} else if fn, ok := node.pkg.Info.Uses[x.Sel].(*types.Func); ok && a.graph.nodes[fn] != nil {
			j := base
			j.jobFn = fn
			return []*poolJob{&j}
		}
	}
	// A stored func value: every address-taken function and referenced
	// method value with an identical signature is a candidate.
	tv, ok := node.pkg.Info.Types[arg]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*poolJob
	seen := make(map[*types.Func]bool)
	for _, fn := range a.graph.indirectTargets(sig) {
		if !seen[fn] {
			seen[fn] = true
			j := base
			j.jobFn = fn
			out = append(out, &j)
		}
	}
	for _, mv := range a.graph.methodValues() {
		if !seen[mv.fn] && types.Identical(mv.sig, sig) {
			seen[mv.fn] = true
			j := base
			j.jobFn = mv.fn
			out = append(out, &j)
		}
	}
	return out
}

// relPkgPath strips the module path prefix: "vix/internal/network" ->
// "internal/network".
func relPkgPath(mod *Module, pkgPath string) string {
	if pkgPath == mod.Path {
		return "."
	}
	return strings.TrimPrefix(pkgPath, mod.Path+"/")
}

// sharedWaivedAt consults the //vixlint:shared waiver set of the
// package containing pos.
func (a *Analysis) sharedWaivedAt(pkgPath string, pos token.Pos) bool {
	c := a.checkers[pkgPath]
	return c != nil && c.sharedWaivers.covers(c.mod, pos)
}

// analyzeShardOwnership runs both parallel rules over every resolved
// pool job, returning findings keyed by the Do-site package path. It
// runs in the single-threaded source phase (waiver usage marking
// mutates per-package checkers).
func analyzeShardOwnership(a *Analysis) map[string][]Finding {
	out := make(map[string][]Finding)
	w := a.writes
	for _, job := range findPoolJobs(a) {
		fx := w.sums[job.jobFn]
		if job.lit != nil {
			fx = w.litEffects(job.caller, job.lit)
		}
		if fx == nil {
			continue
		}
		pkgPath := job.callerPkg.Path
		roots := ShardOwnershipRoots[relPkgPath(w.mod, pkgPath)]
		out[pkgPath] = append(out[pkgPath], a.sharedWriteFindings(job, fx, roots)...)
		out[pkgPath] = append(out[pkgPath], a.phaseFindings(job, fx)...)
	}
	return out
}

// sharedWriteFindings reports every job-cone write that is neither
// shard-owned nor waived at its site.
func (a *Analysis) sharedWriteFindings(job *poolJob, fx *funcEffects, roots []OwnershipRoot) []Finding {
	var fs []Finding
	w := a.writes
	for _, k := range sim.SortedKeys(fx.writes) {
		e := fx.writes[k]
		if e.kind == rootParam {
			continue // the job's own func(int) argument carries no shared state
		}
		disp := effectDisplay(job.effectOwner(), e)
		if ownedBy(roots, disp) {
			continue
		}
		sitePkg := job.callerPkg.Path
		if e.siteFn != nil && e.siteFn.Pkg() != nil {
			sitePkg = e.siteFn.Pkg().Path()
		}
		if a.sharedWaivedAt(sitePkg, e.site) {
			continue
		}
		fs = append(fs, Finding{
			Pos:  a.mod.Fset.Position(e.site),
			Rule: "parallel/sharedwrite",
			Msg: "pool job " + job.display() + " writes " + disp + " (" + e.what +
				"), which is not a shard-owned root; path: " +
				w.renderEffectPath(job.effectOwner(), fx, e, job.display(), true) +
				" — phase-A code may only write state listed in ShardOwnershipRoots; merge cross-shard effects in phase B, or waive the site with //vixlint:shared <justification> if provably confined",
		})
	}
	return fs
}

// phaseFindings reports phase-A reads of state the caller writes after
// the Do call (the serial phase-B merge).
func (a *Analysis) phaseFindings(job *poolJob, fx *funcEffects) []Finding {
	w := a.writes
	caller, sc := job.caller, w.scopes[job.caller]
	if sc == nil {
		return nil
	}
	after := job.doCall.End()
	// Phase-B writes: the caller's direct writes positioned after the Do
	// call, plus callee write summaries mapped through calls after it.
	phase := newFuncEffects()
	declFx := newFuncEffects()
	w.collectDirect(sc, a.graph.nodes[caller].decl.Body, declFx)
	for _, k := range sim.SortedKeys(declFx.writes) {
		e := declFx.writes[k]
		if e.siteFn == caller && e.site > after {
			phase.add(phase.writes, e)
		}
	}
	for _, lw := range declFx.localWrites {
		if lw.pos > after {
			phase.localWrites = append(phase.localWrites, lw)
		}
	}
	for _, cs := range w.sites[caller] {
		if cs.call.Pos() <= after {
			continue
		}
		for _, callee := range cs.rc.targets {
			cfx := w.sums[callee]
			if cfx == nil {
				continue
			}
			for _, k := range sim.SortedKeys(cfx.writes) {
				if m := w.mapEffect(sc, cs, callee, cfx.writes[k]); m != nil {
					phase.add(phase.writes, m)
				}
			}
		}
	}
	if len(phase.writes) == 0 && len(phase.localWrites) == 0 {
		return nil
	}
	var fs []Finding
	report := func(read *effect, writeWhat string, writeSite token.Pos) {
		if a.sharedWaivedAt(job.callerPkg.Path, job.doCall.Pos()) ||
			a.sharedWaivedAt(job.callerPkg.Path, read.site) {
			return
		}
		fs = append(fs, Finding{
			Pos:  a.mod.Fset.Position(job.doCall.Pos()),
			Rule: "parallel/phase",
			Msg: "phase-A pool job " + job.display() + " reads " + effectDisplay(job.effectOwner(), read) +
				" (via " + w.renderEffectPath(job.effectOwner(), fx, read, job.display(), false) +
				") while phase B writes it after the Do call (" + writeWhat + " at " +
				relPosition(a.mod, writeSite) +
				"); a shard tick must not read state the serial merge mutates, or workers>1 diverges from the serial loop — stage the value into shard scratch before Do, or waive here with //vixlint:shared <justification>",
		})
	}
	for _, rk := range sim.SortedKeys(fx.reads) {
		read := fx.reads[rk]
		if read.kind == rootParam {
			continue
		}
		for _, wk := range sim.SortedKeys(phase.writes) {
			write := phase.writes[wk]
			if !effectRootsEqual(job.effectOwner(), read, caller, write) {
				continue
			}
			if !pathsOverlap(read.segs, write.segs) {
				continue
			}
			report(read, write.what, write.site)
			break // one finding per read
		}
		if read.kind == rootCaptured {
			for _, lw := range phase.localWrites {
				if read.obj == lw.v {
					report(read, "assignment to captured "+lw.v.Name(), lw.pos)
					break
				}
			}
		}
	}
	return fs
}

// effectRootsEqual reports whether two effects (seen from possibly
// different functions) target the same root: identical globals or
// captured variables, or receivers of identical type.
func effectRootsEqual(aFn *types.Func, ae *effect, bFn *types.Func, be *effect) bool {
	if ae.kind != be.kind {
		return false
	}
	switch ae.kind {
	case rootGlobal, rootCaptured:
		return ae.obj == be.obj
	case rootRecv:
		ar, br := recvType(aFn), recvType(bFn)
		return ar != nil && br != nil && types.Identical(ar, br)
	default:
		// rootParam roots bind to different frames per function; the
		// callers filter them out before comparing.
		return false
	}
}

// recvType returns fn's receiver type with any pointer stripped.
func recvType(fn *types.Func) types.Type {
	sig := fn.Type().(*types.Signature)
	r := sig.Recv()
	if r == nil {
		return nil
	}
	t := r.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return t
}

// pathsOverlap reports whether one segment path is a boundary-aligned
// prefix of the other (or they are equal): a read of .shards overlaps a
// write of .shards[].ems and vice versa.
func pathsOverlap(a, b []string) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
