// Package w seeds waiver/stale violations: directives that suppress
// nothing, next to a waiver that earns its keep.
package w

// The directive below covers no violation: flagged stale.
//
//vixlint:ordered nothing on the next line needs waiving
var Version = 3

// Noop carries an alloc waiver with no scratch violation: flagged stale.
//
//vixlint:alloc no Allocate in sight
func Noop() {}

// Sum's waiver suppresses a real map-range violation: used, not stale.
func Sum(m map[string]int) int {
	total := 0
	//vixlint:ordered summation is commutative
	for _, v := range m {
		total += v
	}
	return total
}
