package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// This file implements the transitive determinism pass: every unwaived
// determinism violation site (wall-clock read, global math/rand use, go
// statement outside the concurrency allowlist, order-leaking map range)
// becomes a taint source on its enclosing function, taint propagates
// backwards over the call graph, and every exported entry point of an
// internal package that can reach a source is reported under
// determinism/reach with the shortest call path.
//
// Waivers and the ConcurrencyAllowlist propagate along edges by
// construction: a waived site, or a go statement in an allowlisted
// package, never becomes a source, so neither the function containing it
// nor any caller is tainted through it.

// Taint source kinds.
const (
	taintTime      = "time"
	taintRand      = "rand"
	taintGoroutine = "goroutine"
	taintMapRange  = "maprange"
)

// taintKinds lists the kinds in deterministic reporting order.
var taintKinds = []string{taintGoroutine, taintMapRange, taintRand, taintTime}

// taintSource is one unwaived violation site inside a module function.
type taintSource struct {
	fn   *types.Func
	kind string
	pos  token.Pos
	what string // human description, e.g. "call to time.Now"
}

// taintStep records, for one (function, kind), the next hop on the
// shortest path towards the nearest source of that kind. next is nil
// when the function itself contains the source.
type taintStep struct {
	next *types.Func
	src  *taintSource
	dist int
}

// taintResult maps every reachable function to its per-kind shortest
// step. Read-only after construction.
type taintResult struct {
	reach map[*types.Func]map[string]taintStep
}

// collectTaintSources scans fd's body for unwaived determinism sources.
// The checker's waiver maps are consulted (and their usage recorded)
// exactly as the direct determinism rules do.
func (c *checker) collectTaintSources(fn *types.Func, fd *ast.FuncDecl) []taintSource {
	var out []taintSource
	add := func(kind string, pos token.Pos, what string) {
		out = append(out, taintSource{fn: fn, kind: kind, pos: pos, what: what})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if name, ok := c.timeCall(n); ok && !c.waived(n.Pos()) {
				add(taintTime, n.Pos(), "call to time."+name)
			}
		case *ast.Ident:
			if obj := c.pkg.Info.Uses[n]; obj != nil && obj.Pkg() != nil {
				p := obj.Pkg().Path()
				if (p == "math/rand" || p == "math/rand/v2") && !c.waived(n.Pos()) {
					add(taintRand, n.Pos(), "use of "+p+"."+obj.Name())
				}
			}
		case *ast.GoStmt:
			if !c.concurrencyAllowed() && !c.waived(n.Pos()) {
				add(taintGoroutine, n.Pos(), "go statement")
			}
		case *ast.RangeStmt:
			if write := c.mapRangeViolation(n); write != nil && !c.waived(n.Pos()) {
				add(taintMapRange, n.Pos(), "order-leaking map range")
			}
		}
		return true
	})
	return out
}

// propagateTaint runs, per source kind, a multi-source breadth-first
// search over the reverse call graph, recording for every reached
// function the next hop towards its nearest source. Frontiers are
// processed in deterministic order so tie-breaks are stable.
func propagateTaint(g *callGraph, sources []taintSource) *taintResult {
	res := &taintResult{reach: make(map[*types.Func]map[string]taintStep)}
	set := func(fn *types.Func, kind string, step taintStep) bool {
		m := res.reach[fn]
		if m == nil {
			m = make(map[string]taintStep)
			res.reach[fn] = m
		}
		if _, done := m[kind]; done {
			return false
		}
		m[kind] = step
		return true
	}
	// Sources sorted by position give a deterministic seed order.
	sorted := append([]taintSource(nil), sources...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].pos < sorted[j].pos })
	for _, kind := range taintKinds {
		var frontier []*types.Func
		for i := range sorted {
			s := &sorted[i]
			if s.kind != kind {
				continue
			}
			if set(s.fn, kind, taintStep{src: s}) {
				frontier = append(frontier, s.fn)
			}
		}
		for dist := 1; len(frontier) > 0; dist++ {
			var next []*types.Func
			for _, fn := range frontier {
				callers := append([]*types.Func(nil), g.callers[fn]...)
				sort.Slice(callers, func(i, j int) bool { return callers[i].Pos() < callers[j].Pos() })
				step := res.reach[fn][kind]
				for _, caller := range callers {
					if set(caller, kind, taintStep{next: fn, src: step.src, dist: dist}) {
						next = append(next, caller)
					}
				}
			}
			frontier = next
		}
	}
	return res
}

// taintKindDescription names what reaching a source of the kind means.
var taintKindDescription = map[string]string{
	taintTime:      "a wall-clock read",
	taintRand:      "global math/rand state",
	taintGoroutine: "a go statement",
	taintMapRange:  "an order-leaking map range",
}

// reach reports, for every exported function or method of the package,
// the determinism sources it can transitively reach through calls. Sites
// inside the entry point itself are covered by the direct determinism
// rules and are not re-reported here.
func (c *checker) reach(a *Analysis) []Finding {
	var fs []Finding
	c.eachFunc(func(_ *ast.File, fd *ast.FuncDecl) {
		if !fd.Name.IsExported() {
			return
		}
		fn, ok := c.pkg.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		kinds := a.taint.reach[fn]
		if kinds == nil {
			return
		}
		for _, kind := range taintKinds {
			step, ok := kinds[kind]
			if !ok || step.dist == 0 {
				continue
			}
			c.report(&fs, fd.Name.Pos(), "determinism/reach",
				"exported %s can reach %s (%s, %s at %s) via %s; determinism violations transitively break seed-reproducibility — fix the site, or waive it there if provably harmless",
				funcDisplay(fn), taintKindDescription[kind], step.src.what,
				relPosition(c.mod, step.src.pos), funcDisplay(step.src.fn),
				renderPath(a, fn, kind))
		}
	})
	return fs
}

// renderPath renders the shortest call path from fn to the nearest
// source of kind, e.g. "router.(*Router).Tick -> alloc.helper".
func renderPath(a *Analysis, fn *types.Func, kind string) string {
	var parts []string
	for fn != nil {
		parts = append(parts, funcDisplay(fn))
		step, ok := a.taint.reach[fn][kind]
		if !ok {
			break
		}
		fn = step.next
	}
	return strings.Join(parts, " -> ")
}

// relPosition renders pos as "relpath:line" relative to the module root,
// so messages stay stable across checkouts (and cacheable).
func relPosition(mod *Module, pos token.Pos) string {
	p := mod.Fset.Position(pos)
	name := p.Filename
	if rel, err := filepath.Rel(mod.Root, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
