// Command virtualinputs regenerates Figure 12: the impact of increasing
// the number of virtual inputs, measuring saturation throughput for no
// VIX (k=1), the practical 1:2 VIX (k=2), and ideal VIX (k=v) on mesh,
// flattened butterfly, and concentrated mesh with 4 and 6 VCs per port.
// It also prints the Section 4.6 buffer-reduction result (4 VCs with VIX
// versus 6 VCs without).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"vix/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("virtualinputs: ")
	var (
		warmup  = flag.Int("warmup", 2000, "warmup cycles")
		measure = flag.Int("measure", 6000, "measurement cycles")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	p := experiments.DefaultParams()
	p.Warmup, p.Measure, p.Seed = *warmup, *measure, *seed
	rows, err := experiments.Figure12(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 12: impact of increasing virtual inputs (saturation throughput, flits/cycle/node)")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "topology\tVCs\tconfig\tthroughput\tvs no VIX")
	base := map[string]float64{}
	for _, r := range rows {
		key := fmt.Sprintf("%s/%d", r.Topology, r.VCs)
		if r.Config == "no VIX" {
			base[key] = r.Throughput
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%.4f\t%+.1f%%\n",
			r.Topology, r.VCs, r.Config, r.Throughput, 100*(r.Throughput/base[key]-1))
	}
	w.Flush()

	// Section 4.6 buffer-reduction headline.
	var vix4, no6 float64
	for _, r := range rows {
		if r.Topology == "mesh8x8" && r.VCs == 4 && r.Config == "1:2 VIX" {
			vix4 = r.Throughput
		}
		if r.Topology == "mesh8x8" && r.VCs == 6 && r.Config == "no VIX" {
			no6 = r.Throughput
		}
	}
	fmt.Printf("\nBuffer reduction: mesh 4 VCs + VIX vs 6 VCs baseline: %+.1f%% throughput with 33%% fewer buffers (paper: +10%%).\n",
		100*(vix4/no6-1))
}
