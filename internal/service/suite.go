package service

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"

	"vix/internal/config"
	"vix/internal/harness"
	"vix/internal/network"
	"vix/internal/store"
)

// Case status values, as they appear in status and result payloads.
const (
	statusQueued  = "queued"
	statusRunning = "running"
	statusDone    = "done"
	statusFailed  = "failed"
)

// suite is one client-created collection of cases. Suite IDs ("s1",
// "s2", ...) and case IDs ("c0", "c1", ... within a suite) are
// deterministic counters, so a scripted client sees stable names.
type suite struct {
	id   string
	name string

	mu     sync.Mutex
	cases  []*testCase
	closed bool
	// changed is closed and replaced on every state transition; results
	// streamers wait on it instead of polling. (A sync.Cond cannot be
	// selected against a request context; a broadcast channel can.)
	changed chan struct{}
}

// newSuite constructs an empty open suite.
func newSuite(id, name string) *suite {
	return &suite{id: id, name: name, changed: make(chan struct{})}
}

// bumpLocked signals every waiter that suite state changed. Callers
// hold su.mu.
func (su *suite) bumpLocked() {
	close(su.changed)
	su.changed = make(chan struct{})
}

// addCases appends cases to an open suite, assigning suite-relative IDs,
// and optionally closes it. It returns the new cases or an error if the
// suite is already closed.
func (su *suite) addCases(specs []caseSpec, closeAfter bool) ([]*testCase, error) {
	su.mu.Lock()
	defer su.mu.Unlock()
	if su.closed {
		return nil, fmt.Errorf("service: suite %s is closed", su.id)
	}
	added := make([]*testCase, 0, len(specs))
	for _, cs := range specs {
		tc := &testCase{
			suite:   su,
			id:      "c" + strconv.Itoa(len(su.cases)),
			label:   specLabel(cs.Spec),
			name:    cs.Name,
			spec:    cs.Spec,
			storeID: cs.storeID,
			status:  statusQueued,
		}
		if tc.name == "" {
			tc.name = tc.label
		}
		su.cases = append(su.cases, tc)
		added = append(added, tc)
	}
	if closeAfter {
		su.closed = true
	}
	su.bumpLocked()
	return added, nil
}

// close marks the suite closed; further cases are rejected and results
// streams terminate once every case is terminal.
func (su *suite) close() {
	su.mu.Lock()
	defer su.mu.Unlock()
	if !su.closed {
		su.closed = true
		su.bumpLocked()
	}
}

// snapshot returns the stream lines for terminal cases at index >= from,
// the channel to wait on for more, and whether the stream is complete
// (suite closed and every case terminal).
func (su *suite) snapshot(from int) (lines []resultLine, next int, done bool, changed chan struct{}) {
	su.mu.Lock()
	defer su.mu.Unlock()
	next = from
	for next < len(su.cases) && su.cases[next].terminalLocked() {
		lines = append(lines, su.cases[next].lineLocked())
		next++
	}
	done = su.closed && next == len(su.cases)
	return lines, next, done, su.changed
}

// caseSpec is one validated case submission.
type caseSpec struct {
	Name string
	Spec config.Experiment
	// storeID is the spec's content hash, computed at admission so a
	// malformed-for-hashing spec is the client's 400, not a runner
	// failure.
	storeID string
}

// testCase is one case of a suite: a validated spec and its lifecycle
// from queued to done/failed. Fields after status are written by the
// runner under su.mu.
type testCase struct {
	suite   *suite
	id      string // suite-relative: "c0", "c1", ...
	label   string // spec-derived display label, e.g. "vixd/if:2/0.05"
	name    string // client-chosen display name (defaults to label)
	spec    config.Experiment
	storeID string

	status    string
	value     json.RawMessage
	errMsg    string
	cached    bool
	telemetry store.Telemetry
}

// job converts the case into the harness job that executes it. The
// job's name and spec are derived from the experiment alone — never
// from the suite or client — so identical specs from anywhere share one
// store identity.
func (tc *testCase) job(workers int) harness.Job {
	e := tc.spec
	return harness.Job{
		Name:   tc.label,
		Spec:   e,
		Cycles: int64(e.Warmup + e.Measure),
		Run: func(ctx context.Context) (any, error) {
			cfg, err := e.Build()
			if err != nil {
				return nil, err
			}
			cfg.Workers = workers
			n, err := network.New(cfg)
			if err != nil {
				return nil, err
			}
			defer n.Close()
			n.Warmup(e.Warmup)
			s := n.Measure(e.Measure)
			return caseValue{
				AvgLatency:        s.AvgLatency,
				P50Latency:        s.P50Latency,
				P99Latency:        s.P99Latency,
				MaxLatency:        s.MaxLatency,
				AvgHops:           s.AvgHops,
				ThroughputFlits:   s.ThroughputFlits,
				ThroughputPackets: s.ThroughputPackets,
				Fairness:          fmt.Sprintf("%.3f", s.FairnessRatio),
				PacketsInjected:   s.PacketsInjected,
				PacketsEjected:    s.PacketsEjected,
			}, nil
		},
	}
}

// caseValue is the measured result of one case. Fairness is formatted
// (not a float) because an idle source makes the max/min ratio +Inf,
// which JSON cannot carry.
type caseValue struct {
	AvgLatency        float64 `json:"avg_latency"`
	P50Latency        int64   `json:"p50_latency"`
	P99Latency        int64   `json:"p99_latency"`
	MaxLatency        int64   `json:"max_latency"`
	AvgHops           float64 `json:"avg_hops"`
	ThroughputFlits   float64 `json:"throughput_flits"`
	ThroughputPackets float64 `json:"throughput_packets"`
	Fairness          string  `json:"fairness"`
	PacketsInjected   int64   `json:"packets_injected"`
	PacketsEjected    int64   `json:"packets_ejected"`
}

// specLabel renders the spec's display label. It is derived from the
// spec alone so it is stable across suites and clients.
func specLabel(e config.Experiment) string {
	alloc := e.Allocator
	if alloc == "" {
		alloc = "if"
	}
	k := e.VirtualInputs
	if k == 0 {
		k = 1
	}
	offered := fmt.Sprintf("%g", e.InjectionRate)
	if e.MaxInjection {
		offered = "saturation"
	}
	return fmt.Sprintf("vixd/%s:%d/%s", alloc, k, offered)
}

// setRunning marks the case running.
func (tc *testCase) setRunning() {
	su := tc.suite
	su.mu.Lock()
	tc.status = statusRunning
	su.bumpLocked()
	su.mu.Unlock()
}

// setDone records a completed harness result.
func (tc *testCase) setDone(r harness.Result) {
	su := tc.suite
	su.mu.Lock()
	tc.status = statusDone
	tc.value = r.Value
	tc.cached = r.Cached
	tc.telemetry = r.Telemetry
	su.bumpLocked()
	su.mu.Unlock()
}

// setFailed records a failed run.
func (tc *testCase) setFailed(err error) {
	su := tc.suite
	su.mu.Lock()
	tc.status = statusFailed
	tc.errMsg = err.Error()
	su.bumpLocked()
	su.mu.Unlock()
}

// terminalLocked reports whether the case finished (done or failed).
// Callers hold su.mu.
func (tc *testCase) terminalLocked() bool {
	return tc.status == statusDone || tc.status == statusFailed
}

// resultLine is one streamed result. It deliberately excludes
// telemetry and cache provenance: the line is a pure function of the
// case's position, name, and spec, so two clients streaming identical
// grids read byte-identical bodies whether the results were simulated,
// deduplicated in flight, or served from the store.
type resultLine struct {
	Case   string          `json:"case"`
	Name   string          `json:"name"`
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Value  json.RawMessage `json:"value,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// lineLocked renders the case's stream line. Callers hold su.mu.
func (tc *testCase) lineLocked() resultLine {
	return resultLine{
		Case:   tc.id,
		Name:   tc.name,
		ID:     tc.storeID,
		Status: tc.status,
		Value:  tc.value,
		Error:  tc.errMsg,
	}
}
