package network

import (
	"fmt"
	"runtime"
	"testing"

	"vix/internal/alloc"
	"vix/internal/router"
	"vix/internal/topology"
)

// saturatedMesh builds the workload every Figure 8 sweep spends its
// cycles in: an 8x8 VIX mesh under saturated uniform-random load.
func saturatedMesh(tb testing.TB) *Network {
	return saturatedMeshWorkers(tb, 1)
}

// saturatedMeshWorkers is saturatedMesh with a parallel-tick worker count.
func saturatedMeshWorkers(tb testing.TB, workers int) *Network {
	return perfMesh(tb, workers, false, 0)
}

// perfMesh builds the perf-suite network: an 8x8 VIX mesh, saturated when
// rate is 0 (MaxInjection) or at the given Bernoulli rate otherwise, with
// the requested worker count and activity-gate setting.
func perfMesh(tb testing.TB, workers int, disableGate bool, rate float64) *Network {
	tb.Helper()
	topo := topology.NewMesh(8, 8)
	cfg := meshConfig(topo, alloc.KindSeparableIF, 2, router.PolicyBalanced)
	cfg.InjectionRate = rate
	cfg.MaxInjection = rate == 0
	cfg.Seed = 1
	cfg.Workers = workers
	cfg.DisableActivityGate = disableGate
	n, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return n
}

// TestSteadyStateZeroAllocs pins the headline guarantee of the memory
// discipline work: once the scratch buffers and the flit pool have grown
// to their high-water marks, Network.Step performs zero heap allocations
// per cycle — on the serial loop and on the sharded parallel tick, with
// the activity gate on and off (the worklist rebuild reuses its backing
// array, shards and worklist slots store Tick's slice headers, and the
// pool reuses parked workers, so no phase allocates). The run is fully
// deterministic (fixed seed), so this either always passes or always
// fails for a given code state.
func TestSteadyStateZeroAllocs(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, disableGate := range []bool{false, true} {
			name := fmt.Sprintf("workers%d_gate_on", workers)
			if disableGate {
				name = fmt.Sprintf("workers%d_gate_off", workers)
			}
			t.Run(name, func(t *testing.T) {
				n := perfMesh(t, workers, disableGate, 0)
				defer n.Close()
				n.Run(8000)
				n.Collector().Reset()
				avg := testing.AllocsPerRun(200, func() { n.Step() })
				if avg != 0 {
					t.Fatalf("Network.Step allocates %v times per cycle in steady state; want 0", avg)
				}
				// Malloc count alone would miss a regression that trades
				// few-but-huge allocations (slab churn) for many small
				// ones; pin the byte total to exactly zero as well.
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				for i := 0; i < 200; i++ {
					n.Step()
				}
				runtime.ReadMemStats(&after)
				if d := after.TotalAlloc - before.TotalAlloc; d != 0 {
					t.Fatalf("Network.Step allocated %d bytes over 200 steady-state cycles; want 0", d)
				}
			})
		}
	}
}

// TestSteadyStateZeroAllocsLowLoad repeats the zero-allocation pin at low
// load, where the gated tick runs mostly empty worklists — the regime the
// gate exists for must not pay for its speed with per-cycle garbage.
func TestSteadyStateZeroAllocsLowLoad(t *testing.T) {
	n := perfMesh(t, 1, false, 0.01)
	defer n.Close()
	n.Run(8000)
	n.Collector().Reset()
	avg := testing.AllocsPerRun(200, func() { n.Step() })
	if avg != 0 {
		t.Fatalf("gated low-load Network.Step allocates %v times per cycle in steady state; want 0", avg)
	}
}

// BenchmarkNetworkStep measures the serial cycle loop's cost under the
// saturated VIX workload, gate on and off; the allocation counter must
// stay at 0. At saturation every router is active every cycle, so this
// doubles as the gate's worst-case overhead measurement.
func BenchmarkNetworkStep(b *testing.B) {
	for _, disableGate := range []bool{false, true} {
		name := "gate_on"
		if disableGate {
			name = "gate_off"
		}
		b.Run(name, func(b *testing.B) {
			n := perfMesh(b, 1, disableGate, 0)
			defer n.Close()
			n.Run(3000)
			n.Collector().Reset()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Step()
			}
		})
	}
}

// BenchmarkNetworkStepLowLoad measures the regime the activity gate
// targets: 8x8 at 1% injection, where most routers are idle most cycles.
// The gate_on/gate_off ratio here is the headline speedup.
func BenchmarkNetworkStepLowLoad(b *testing.B) {
	for _, disableGate := range []bool{false, true} {
		name := "gate_on"
		if disableGate {
			name = "gate_off"
		}
		b.Run(name, func(b *testing.B) {
			n := perfMesh(b, 1, disableGate, 0.01)
			defer n.Close()
			n.Run(3000)
			n.Collector().Reset()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Step()
			}
		})
	}
}

// BenchmarkNetworkStepParallel measures the worklist (gate_on) and
// sharded (gate_off) parallel ticks at a spread of worker counts on the
// saturated workload; compare against BenchmarkNetworkStep for parallel
// efficiency. Allocation counters must stay at 0 here too.
func BenchmarkNetworkStepParallel(b *testing.B) {
	for _, workers := range []int{2, 4, 8} {
		for _, disableGate := range []bool{false, true} {
			name := fmt.Sprintf("workers%d_gate_on", workers)
			if disableGate {
				name = fmt.Sprintf("workers%d_gate_off", workers)
			}
			b.Run(name, func(b *testing.B) {
				n := perfMesh(b, workers, disableGate, 0)
				defer n.Close()
				n.Run(3000)
				n.Collector().Reset()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n.Step()
				}
			})
		}
	}
}
