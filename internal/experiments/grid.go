package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"vix/internal/harness"
	"vix/internal/network"
	"vix/internal/sim"
	"vix/internal/stats"
)

// This file is the bridge between the experiment definitions and the
// parallel harness: every figure and ablation study builds its grid as
// GridPoints, and RunGrid fans them out across workers while keeping the
// merged output byte-identical to a serial run. Each point's RNG seed is
// derived from the study root seed and the point's labels, never from
// execution order, so a point replays identically wherever it runs.

// GridPoint is one self-contained simulation of an experiment grid: a
// fully built network configuration plus the labels that name it in a
// harness manifest and derive its RNG sub-seed.
type GridPoint struct {
	// Labels identify the point, e.g. {"fig8", "VIX", "0.05"}. They must
	// be unique within a grid and stable across runs: the manifest keys
	// cached results on them (via the spec hash) and the sub-seed
	// derivation consumes them.
	Labels []string
	// Config is the complete network configuration. Its Seed field is
	// overwritten with the derived sub-seed.
	Config network.Config
	// Warmup and Measure are the simulation windows in cycles.
	Warmup, Measure int
}

// pointSpec is the flat, JSON-serialisable identity of a grid point —
// everything that can change the simulation's result. It is hashed into
// the harness job ID, so adding a knob to network.Config that affects
// results means adding it here too (spec_test.go guards the shape).
type pointSpec struct {
	Labels         []string `json:"labels"`
	Topology       string   `json:"topology"`
	Pattern        string   `json:"pattern,omitempty"`
	Allocator      string   `json:"allocator"`
	K              int      `json:"k"`
	VCs            int      `json:"vcs"`
	BufDepth       int      `json:"buf_depth"`
	Policy         string   `json:"policy,omitempty"`
	Partition      int      `json:"partition"`
	NonSpeculative bool     `json:"non_speculative,omitempty"`
	HopDelay       int      `json:"hop_delay,omitempty"`
	CreditDelay    int      `json:"credit_delay,omitempty"`
	Rate           float64  `json:"rate"`
	MaxInjection   bool     `json:"max_injection,omitempty"`
	PacketSize     int      `json:"packet_size"`
	Warmup         int      `json:"warmup"`
	Measure        int      `json:"measure"`
	Seed           uint64   `json:"seed"`
}

// spec flattens the point (with its derived seed already applied) into
// its canonical identity.
func (g GridPoint) spec(cfg network.Config) pointSpec {
	pattern := ""
	if cfg.Pattern != nil {
		pattern = cfg.Pattern.Name()
	}
	return pointSpec{
		Labels:         g.Labels,
		Topology:       cfg.Topology.Name,
		Pattern:        pattern,
		Allocator:      string(cfg.Router.AllocKind),
		K:              cfg.Router.VirtualInputs,
		VCs:            cfg.Router.VCs,
		BufDepth:       cfg.Router.BufDepth,
		Policy:         string(cfg.Router.Policy),
		Partition:      int(cfg.Router.Partition),
		NonSpeculative: cfg.Router.NonSpeculative,
		HopDelay:       cfg.HopDelay,
		CreditDelay:    cfg.CreditDelay,
		Rate:           cfg.InjectionRate,
		MaxInjection:   cfg.MaxInjection,
		PacketSize:     cfg.PacketSize,
		Warmup:         g.Warmup,
		Measure:        g.Measure,
		Seed:           cfg.Seed,
	}
}

// Job converts the point into a harness job, deriving its RNG sub-seed
// from the study root seed and the point's labels.
func (g GridPoint) Job(root uint64) harness.Job {
	cfg := g.Config
	cfg.Seed = sim.DeriveSeed(root, g.Labels...)
	warmup, measure := g.Warmup, g.Measure
	return harness.Job{
		Name:   strings.Join(g.Labels, "/"),
		Spec:   g.spec(cfg),
		Cycles: int64(warmup + measure),
		Run: func(context.Context) (any, error) {
			n, err := network.New(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", strings.Join(g.Labels, "/"), err)
			}
			defer n.Close()
			n.Warmup(warmup)
			return toRecord(n.Measure(measure)), nil
		},
	}
}

// RunGrid executes the points through the harness and returns one
// snapshot per point, in grid order, regardless of worker count.
func RunGrid(ctx context.Context, root uint64, pts []GridPoint, opt harness.Options) ([]stats.Snapshot, error) {
	jobs := make([]harness.Job, len(pts))
	for i, g := range pts {
		jobs[i] = g.Job(root)
	}
	res, err := harness.Run(ctx, jobs, opt)
	if err != nil {
		return nil, err
	}
	recs, err := harness.DecodeAll[snapshotRecord](res)
	if err != nil {
		return nil, err
	}
	snaps := make([]stats.Snapshot, len(recs))
	for i, r := range recs {
		snaps[i] = r.snapshot()
	}
	return snaps, nil
}

// snapshotRecord is the manifest encoding of a stats.Snapshot. Fairness
// travels separately as a jsonFloat because max/min throughput is +Inf
// when a source starves — legal data that encoding/json rejects for a
// plain float64 field.
type snapshotRecord struct {
	stats.Snapshot
	Fairness jsonFloat `json:"fairness"`
}

func toRecord(s stats.Snapshot) snapshotRecord {
	r := snapshotRecord{Snapshot: s, Fairness: jsonFloat(s.FairnessRatio)}
	// Zero the promoted field: +Inf would poison json.Marshal, and the
	// value already travels via Fairness.
	r.FairnessRatio = 0
	return r
}

func (r snapshotRecord) snapshot() stats.Snapshot {
	s := r.Snapshot
	s.FairnessRatio = float64(r.Fairness)
	return s
}

// jsonFloat round-trips non-finite floats through JSON as strings
// ("+Inf", "NaN"), which strconv.ParseFloat reads back exactly.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return json.Marshal(fmt.Sprint(v))
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	var v float64
	if err := json.Unmarshal(b, &v); err == nil {
		*f = jsonFloat(v)
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("experiments: fairness value %s is neither number nor string", b)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("experiments: parsing fairness %q: %w", s, err)
	}
	*f = jsonFloat(v)
	return nil
}

// rateLabel formats an offered load for use in labels and artifacts:
// "saturation" for max-injection points, the shortest exact decimal
// otherwise.
func rateLabel(rate float64, maxInj bool) string {
	if maxInj {
		return "saturation"
	}
	return strconv.FormatFloat(rate, 'g', -1, 64)
}
