// Package sim mirrors the real scratch pool's Do shape, which the
// parallel rules match structurally.
package sim

// Pool fans a job out over indices (serially here; the shape is what
// the corpus exercises).
type Pool struct{ n int }

// NewPool sizes the pool.
func NewPool(n int) *Pool { return &Pool{n: n} }

// Do runs fn once per index.
func (p *Pool) Do(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
