package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestForkIndependence(t *testing.T) {
	root := NewRNG(7)
	a := root.Fork(0)
	b := root.Fork(1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("forked streams 0 and 1 produced identical first draw")
	}
	// Forking must not disturb the parent.
	p1 := NewRNG(7)
	p1.Fork(3)
	p2 := NewRNG(7)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Fork mutated parent state")
	}
}

func TestForkSameStreamIsReproducible(t *testing.T) {
	a := NewRNG(9).Fork(5)
	b := NewRNG(9).Fork(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same fork diverged at draw %d", i)
		}
	}
}

// TestDeriveSeedPinned pins the exact FNV-1a derivation. These constants
// are load-bearing: harness manifests key cached results on configs whose
// seeds come from DeriveSeed, so any drift silently invalidates every
// recorded experiment. Do not update the expectations without a migration
// story.
func TestDeriveSeedPinned(t *testing.T) {
	cases := []struct {
		root   uint64
		labels []string
		want   uint64
	}{
		{0, nil, 12161962213042174405},
		{1, nil, 9929646806074584996},
		{1, []string{"sweep"}, 17571131006644858884},
		{1, []string{"sweep", "if", "1", "0.05"}, 5781121148146890315},
		{1, []string{"ab", "c"}, 5570201331691886582},
		{1, []string{"a", "bc"}, 16238504304201489198},
		{2, []string{"sweep"}, 1703110861996998371},
		{1, []string{"fig8", "VIX", "saturation"}, 10991343882178022141},
	}
	for _, c := range cases {
		if got := DeriveSeed(c.root, c.labels...); got != c.want {
			t.Errorf("DeriveSeed(%d, %q) = %d, want %d", c.root, c.labels, got, c.want)
		}
	}
}

// TestDeriveSeedSeparatesLabels re-checks the label-boundary property the
// pinned table encodes: concatenations that read the same must not
// collide, and both root and label order matter.
func TestDeriveSeedSeparatesLabels(t *testing.T) {
	if DeriveSeed(1, "ab", "c") == DeriveSeed(1, "a", "bc") {
		t.Error(`("ab","c") and ("a","bc") collided`)
	}
	if DeriveSeed(1, "a", "b") == DeriveSeed(1, "b", "a") {
		t.Error("label order did not reach the derivation")
	}
	if DeriveSeed(1, "x") == DeriveSeed(2, "x") {
		t.Error("root seed did not reach the derivation")
	}
	seen := make(map[uint64]string)
	for _, labels := range [][]string{nil, {""}, {"", ""}, {"a"}, {"a", ""}, {"", "a"}} {
		h := DeriveSeed(7, labels...)
		if prev, dup := seen[h]; dup {
			t.Errorf("labels %q collide with %q", labels, prev)
		}
		seen[h] = "[" + strings.Join(labels, ",") + "]"
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d has %d draws, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	sum := 0.0
	const draws = 50000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := NewRNG(13)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	hits := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if rate := float64(hits) / draws; math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(17)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Exp(25)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-25) > 1 {
		t.Fatalf("Exp(25) mean = %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	check := func(n uint8) bool {
		size := int(n%32) + 1
		p := r.Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
