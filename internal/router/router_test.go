package router

import (
	"testing"

	"vix/internal/alloc"
	"vix/internal/topology"
)

// testRouter builds an isolated radix-5 router: port 0 local, ports 1-4
// links, with a lookahead stub that always reports ejection next hop.
func testRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	ports := make([]PortInfo, cfg.Ports)
	ports[0] = PortInfo{Kind: topology.Local, Dim: topology.DimLocal}
	for p := 1; p < cfg.Ports; p++ {
		dim := topology.DimX
		if p >= 3 {
			dim = topology.DimY
		}
		ports[p] = PortInfo{Kind: topology.Link, Dim: dim}
	}
	a, err := alloc.New(cfg.AllocKind, cfg.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	return New(7, cfg, ports, a, func(outPort, dst int) topology.Dim { return topology.DimLocal }, nil, nil)
}

func baseConfig() Config {
	return Config{
		Ports: 5, VCs: 6, VirtualInputs: 1, BufDepth: 5,
		AllocKind: alloc.KindSeparableIF, Policy: PolicyMaxFree,
	}
}

// deliver copies a packet's flits into the router's arena and pushes the
// ids into (port, vc) with the given route.
func deliver(r *Router, port, vc, route int, flits []*Flit) {
	for _, f := range flits {
		id := r.flits.Alloc()
		g := r.flits.At(id)
		*g = *f
		g.Route = route
		r.DeliverFlit(port, vc, id)
	}
}

func TestSingleFlitTraversal(t *testing.T) {
	r := testRouter(t, baseConfig())
	pkt := NewPacket(1, 0, 9, 1, 0)
	deliver(r, 1, 0, 2, pkt)

	ems, credits, _ := r.Tick()
	if len(ems) != 1 {
		t.Fatalf("got %d emissions, want 1", len(ems))
	}
	if ems[0].OutPort != 2 {
		t.Errorf("emitted through port %d, want 2", ems[0].OutPort)
	}
	if r.flits.At(ems[0].Flit).Hops != 1 {
		t.Errorf("hops = %d, want 1", r.flits.At(ems[0].Flit).Hops)
	}
	if len(credits) != 1 || credits[0] != (CreditMsg{Port: 1, VC: 0}) {
		t.Errorf("credits = %+v, want one for port 1 vc 0", credits)
	}
	// One downstream credit consumed at output 2.
	total := 0
	for v := 0; v < 6; v++ {
		total += r.Credits(2, v)
	}
	if total != 6*5-1 {
		t.Errorf("credits at out 2 sum to %d, want %d", total, 6*5-1)
	}
}

func TestEjectionConsumesNoCreditsAndEmitsUpstreamCredit(t *testing.T) {
	r := testRouter(t, baseConfig())
	pkt := NewPacket(1, 0, 9, 1, 0)
	deliver(r, 3, 2, 0, pkt) // route to local port 0

	ems, credits, _ := r.Tick()
	if len(ems) != 1 || ems[0].OutPort != 0 {
		t.Fatalf("ejection emission wrong: %+v", ems)
	}
	if r.flits.At(ems[0].Flit).Hops != 0 {
		t.Errorf("ejection counted a hop: %d", r.flits.At(ems[0].Flit).Hops)
	}
	if len(credits) != 1 || credits[0] != (CreditMsg{Port: 3, VC: 2}) {
		t.Errorf("credits = %+v", credits)
	}
	for v := 0; v < 6; v++ {
		if r.Credits(0, v) != 5 {
			t.Errorf("local out credits changed: vc %d = %d", v, r.Credits(0, v))
		}
	}
}

func TestLocalInputPortEmitsNoCreditMessage(t *testing.T) {
	r := testRouter(t, baseConfig())
	pkt := NewPacket(1, 0, 9, 1, 0)
	deliver(r, 0, 0, 2, pkt) // injected at local port

	_, credits, _ := r.Tick()
	if len(credits) != 0 {
		t.Fatalf("local input produced credit messages: %+v", credits)
	}
}

func TestMultiFlitWormhole(t *testing.T) {
	r := testRouter(t, baseConfig())
	pkt := NewPacket(1, 0, 9, 4, 0)
	deliver(r, 1, 0, 2, pkt)

	var sent []*Flit
	for cycle := 0; cycle < 4; cycle++ {
		ems, _, _ := r.Tick()
		if len(ems) != 1 {
			t.Fatalf("cycle %d: %d emissions, want 1", cycle, len(ems))
		}
		sent = append(sent, r.flits.At(ems[0].Flit))
	}
	for i, f := range sent {
		if f.Seq != i {
			t.Errorf("flit %d out of order: seq %d", i, f.Seq)
		}
		if f.VC != sent[0].VC {
			t.Errorf("flit %d switched VC mid-packet: %d vs %d", i, f.VC, sent[0].VC)
		}
	}
	if ems, _, _ := r.Tick(); len(ems) != 0 {
		t.Fatalf("empty router still emitting: %+v", ems)
	}
}

// The output VC is held until the tail departs: a second packet wanting
// the same output port must use a different downstream VC.
func TestOutputVCHeldUntilTail(t *testing.T) {
	r := testRouter(t, baseConfig())
	deliver(r, 1, 0, 2, NewPacket(1, 0, 9, 3, 0))
	deliver(r, 3, 0, 2, NewPacket(2, 1, 9, 3, 0))

	vcs := map[uint64]int{}
	for cycle := 0; cycle < 8; cycle++ {
		ems, _, _ := r.Tick()
		for _, e := range ems {
			f := r.flits.At(e.Flit)
			if prev, ok := vcs[f.PacketID]; ok && prev != f.VC {
				t.Fatalf("packet %d changed downstream VC", f.PacketID)
			}
			vcs[f.PacketID] = f.VC
		}
	}
	if len(vcs) != 2 {
		t.Fatalf("expected both packets to progress, saw %v", vcs)
	}
	if vcs[1] == vcs[2] {
		t.Fatal("two concurrent packets shared one downstream VC")
	}
}

// With zero credits a flit must not be granted; it resumes after a credit
// returns.
func TestCreditBlocking(t *testing.T) {
	cfg := baseConfig()
	cfg.BufDepth = 1
	cfg.VCs = 1
	cfg.VirtualInputs = 1
	r := testRouter(t, cfg)

	pkt := NewPacket(1, 0, 9, 2, 0)
	deliver(r, 1, 0, 2, pkt[:1])

	ems, _, _ := r.Tick()
	if len(ems) != 1 {
		t.Fatalf("first flit blocked unexpectedly")
	}
	deliver(r, 1, 0, 2, pkt[1:])
	// The single downstream credit is now consumed.
	if r.Credits(2, 0) != 0 {
		t.Fatalf("credit accounting wrong: %d", r.Credits(2, 0))
	}
	if ems, _, _ := r.Tick(); len(ems) != 0 {
		t.Fatalf("flit advanced without credit: %+v", ems)
	}
	r.DeliverCredit(2, 0)
	if ems, _, _ := r.Tick(); len(ems) != 1 {
		t.Fatal("flit did not advance after credit return")
	}
}

func TestBufferOverflowPanics(t *testing.T) {
	cfg := baseConfig()
	cfg.BufDepth = 2
	r := testRouter(t, cfg)
	pkt := NewPacket(1, 0, 9, 3, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("buffer overflow did not panic")
		}
	}()
	deliver(r, 1, 0, 2, pkt) // 3 flits into depth-2 buffer
}

func TestInvalidRoutePanics(t *testing.T) {
	r := testRouter(t, baseConfig())
	id := r.flits.Alloc()
	r.flits.At(id).Route = 99
	defer func() {
		if recover() == nil {
			t.Fatal("invalid route did not panic")
		}
	}()
	r.DeliverFlit(1, 0, id)
}

func TestCreditOverflowPanics(t *testing.T) {
	r := testRouter(t, baseConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("credit overflow did not panic")
		}
	}()
	r.DeliverCredit(1, 0) // already at BufDepth
}

// Baseline (k=1) can move at most one flit per input port per cycle even
// with traffic in many VCs; VIX (k=2) moves two when they sit in
// different sub-groups.
func TestVIXDatapathParallelism(t *testing.T) {
	base := baseConfig()
	r := testRouter(t, base)
	deliver(r, 1, 0, 2, NewPacket(1, 0, 9, 1, 0))
	deliver(r, 1, 3, 4, NewPacket(2, 0, 8, 1, 0))
	ems, _, _ := r.Tick()
	if len(ems) != 1 {
		t.Fatalf("baseline moved %d flits from one port, want 1", len(ems))
	}

	vixCfg := baseConfig()
	vixCfg.VirtualInputs = 2
	vixCfg.Policy = PolicyBalanced
	r2 := testRouter(t, vixCfg)
	deliver(r2, 1, 0, 2, NewPacket(1, 0, 9, 1, 0)) // sub-group 0
	deliver(r2, 1, 3, 4, NewPacket(2, 0, 8, 1, 0)) // sub-group 1
	ems2, _, _ := r2.Tick()
	if len(ems2) != 2 {
		t.Fatalf("VIX moved %d flits from one port, want 2", len(ems2))
	}
}

// Body flits must never be presented for VC allocation: the head holds
// the output VC for the whole packet.
func TestBodyFlitsInheritOutputVC(t *testing.T) {
	r := testRouter(t, baseConfig())
	pkt := NewPacket(1, 0, 9, 5, 0)
	deliver(r, 2, 1, 3, pkt)
	seen := map[int]bool{}
	for i := 0; i < 5; i++ {
		ems, _, _ := r.Tick()
		if len(ems) != 1 {
			t.Fatalf("cycle %d: emissions %d", i, len(ems))
		}
		seen[r.flits.At(ems[0].Flit).VC] = true
	}
	if len(seen) != 1 {
		t.Fatalf("packet used %d downstream VCs, want 1", len(seen))
	}
}

func TestOccupancyAndBufferSpace(t *testing.T) {
	r := testRouter(t, baseConfig())
	if r.Occupancy() != 0 {
		t.Fatalf("fresh router occupancy %d", r.Occupancy())
	}
	deliver(r, 1, 2, 3, NewPacket(1, 0, 9, 2, 0))
	if r.Occupancy() != 2 {
		t.Fatalf("occupancy %d, want 2", r.Occupancy())
	}
	if got := r.BufferSpace(1, 2); got != 3 {
		t.Fatalf("BufferSpace = %d, want 3", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := baseConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.BufDepth = 0
	if bad.Validate() == nil {
		t.Error("zero BufDepth accepted")
	}
	bad = good
	bad.Policy = ""
	if bad.Validate() == nil {
		t.Error("empty policy accepted")
	}
	bad = good
	bad.VirtualInputs = 9
	if bad.Validate() == nil {
		t.Error("VirtualInputs > VCs accepted")
	}
}

func TestNewPacketShapes(t *testing.T) {
	single := NewPacket(5, 1, 2, 1, 10)
	if len(single) != 1 || single[0].Type != HeadTail {
		t.Fatalf("single-flit packet wrong: %+v", single)
	}
	multi := NewPacket(6, 1, 2, 4, 10)
	wantTypes := []FlitType{Head, Body, Body, Tail}
	for i, f := range multi {
		if f.Type != wantTypes[i] {
			t.Errorf("flit %d type %v, want %v", i, f.Type, wantTypes[i])
		}
		if f.Seq != i || f.PacketSize != 4 || f.CreateCycle != 10 {
			t.Errorf("flit %d metadata wrong: %+v", i, f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("zero-size packet did not panic")
		}
	}()
	NewPacket(7, 1, 2, 0, 0)
}

func TestFlitTypePredicates(t *testing.T) {
	cases := []struct {
		ft         FlitType
		head, tail bool
		str        string
	}{
		{Head, true, false, "head"},
		{Body, false, false, "body"},
		{Tail, false, true, "tail"},
		{HeadTail, true, true, "headtail"},
	}
	for _, c := range cases {
		if c.ft.IsHead() != c.head || c.ft.IsTail() != c.tail {
			t.Errorf("%v predicates wrong", c.ft)
		}
		if c.ft.String() != c.str {
			t.Errorf("%v String() = %q", c.ft, c.ft.String())
		}
	}
}

// Non-speculative switch allocation delays a head flit by one cycle at
// each VA: the flit wins VA in one Tick and SA only in the next.
func TestNonSpeculativeDelaysHeadOneCycle(t *testing.T) {
	cfg := baseConfig()
	cfg.NonSpeculative = true
	r := testRouter(t, cfg)
	deliver(r, 1, 0, 2, NewPacket(1, 0, 9, 1, 0))

	ems, _, _ := r.Tick()
	if len(ems) != 0 {
		t.Fatalf("non-speculative head traversed in its VA cycle")
	}
	ems, _, _ = r.Tick()
	if len(ems) != 1 {
		t.Fatalf("head did not traverse in the cycle after VA: %+v", ems)
	}
}

// Speculative (default) allocation lets the head do VA and SA in the
// same cycle — the Figure 6b pipeline.
func TestSpeculativeHeadSameCycle(t *testing.T) {
	r := testRouter(t, baseConfig())
	deliver(r, 1, 0, 2, NewPacket(1, 0, 9, 1, 0))
	if ems, _, _ := r.Tick(); len(ems) != 1 {
		t.Fatalf("speculative head failed to traverse in VA cycle: %+v", ems)
	}
}

// Body flits are never delayed by the non-speculative rule: only the VA
// cycle itself is affected.
func TestNonSpeculativeBodyFlitsUnaffected(t *testing.T) {
	cfg := baseConfig()
	cfg.NonSpeculative = true
	r := testRouter(t, cfg)
	deliver(r, 1, 0, 2, NewPacket(1, 0, 9, 4, 0))

	var sent int
	for cycle := 0; cycle < 6; cycle++ {
		ems, _, _ := r.Tick()
		sent += len(ems)
	}
	// Cycle 0: VA only. Cycles 1-4: one flit each.
	if sent != 4 {
		t.Fatalf("sent %d flits in 6 cycles, want 4", sent)
	}
}
