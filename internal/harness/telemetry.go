package harness

import "time"

// Telemetry is the wall-clock cost of one job. It is emitted alongside
// results — stderr logs, BENCH_harness.json — and recorded in the
// manifest, but it never enters a merged artifact: the CSVs and tables
// the harness produces stay byte-identical across machines and worker
// counts.
type Telemetry struct {
	// WallNanos is the job's elapsed wall time in nanoseconds.
	WallNanos int64 `json:"wall_ns"`
	// Cycles is the number of simulated cycles (from Job.Cycles).
	Cycles int64 `json:"cycles,omitempty"`
	// CyclesPerSec is the simulation rate, the harness's headline
	// throughput metric.
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
}

// wallClock reads the wall clock for telemetry. This is the only
// sanctioned wall-clock read in internal/: the value annotates harness
// throughput and never reaches a simulation result or merged artifact,
// so reproducibility is unaffected.
func wallClock() time.Time {
	//vixlint:ordered telemetry-only wall-clock read; the value never flows into simulation results or merged artifacts
	return time.Now()
}

// newTelemetry computes a job's telemetry from its start time and
// simulated cycle count.
func newTelemetry(start time.Time, cycles int64) Telemetry {
	elapsed := wallClock().Sub(start)
	t := Telemetry{WallNanos: elapsed.Nanoseconds(), Cycles: cycles}
	if secs := elapsed.Seconds(); secs > 0 && cycles > 0 {
		t.CyclesPerSec = float64(cycles) / secs
	}
	return t
}

// Duration returns the wall time as a time.Duration.
func (t Telemetry) Duration() time.Duration { return time.Duration(t.WallNanos) }
