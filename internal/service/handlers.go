package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"vix/internal/config"
	"vix/internal/harness"
)

// caseRequest is one case submission on the wire. Spec is decoded with
// the same defaulting and validation as a -config file (config.Decode),
// so a spec means the same thing to vixd and to every CLI.
type caseRequest struct {
	Name string          `json:"name,omitempty"`
	Spec json.RawMessage `json:"spec"`
}

// suiteRequest creates a suite, optionally with an inline grid of cases
// and an immediate close — the one-shot "POST a whole grid" form.
type suiteRequest struct {
	Name  string        `json:"name,omitempty"`
	Cases []caseRequest `json:"cases,omitempty"`
	Close bool          `json:"close,omitempty"`
}

// casesRequest adds cases to an open suite: either one caseRequest or a
// {"cases": [...]} batch.
type casesRequest struct {
	Name  string          `json:"name,omitempty"`
	Spec  json.RawMessage `json:"spec,omitempty"`
	Cases []caseRequest   `json:"cases,omitempty"`
	Close bool            `json:"close,omitempty"`
}

// submitResponse acknowledges created suites/cases.
type submitResponse struct {
	Suite  string   `json:"suite"`
	Cases  []string `json:"cases,omitempty"`
	Closed bool     `json:"closed"`
}

// errorResponse is every non-2xx body: a flat message plus, for
// validation failures, the per-field breakdown under JSON paths.
type errorResponse struct {
	Error  string              `json:"error"`
	Fields []config.FieldError `json:"fields,omitempty"`
}

// caseStatus is one case in a suite status payload. Unlike the result
// stream, status includes provenance (cached) and telemetry — these
// legitimately differ between identical grids, which is why they live
// here and not in /results.
type caseStatus struct {
	Case      string `json:"case"`
	Name      string `json:"name"`
	ID        string `json:"id"`
	Status    string `json:"status"`
	Cached    bool   `json:"cached"`
	WallNanos int64  `json:"wall_ns,omitempty"`
	Error     string `json:"error,omitempty"`
}

// suiteStatus is the GET /suites/{id} payload.
type suiteStatus struct {
	Suite  string       `json:"suite"`
	Name   string       `json:"name,omitempty"`
	Closed bool         `json:"closed"`
	Done   bool         `json:"done"`
	Cases  []caseStatus `json:"cases"`
}

// statsResponse is the GET /statsz payload.
type statsResponse struct {
	Suites  int   `json:"suites"`
	Cases   int   `json:"cases"`
	Queued  int   `json:"queued"`
	Entries int   `json:"store_entries"`
	Hits    int64 `json:"store_hits"`
	Misses  int64 `json:"store_misses"`
	Dedup   int64 `json:"store_inflight_dedup"`
	Served  int64 `json:"store_served"`
}

// routes builds the service mux.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /statsz", s.handleStats)
	mux.HandleFunc("POST /suites", s.handleCreateSuite)
	mux.HandleFunc("GET /suites/{id}", s.handleSuiteStatus)
	mux.HandleFunc("POST /suites/{id}/cases", s.handleAddCases)
	mux.HandleFunc("POST /suites/{id}/close", s.handleCloseSuite)
	mux.HandleFunc("GET /suites/{id}/results", s.handleResults)
	return mux
}

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError writes a non-2xx JSON body, splitting validation errors
// into their per-field form.
func writeError(w http.ResponseWriter, code int, err error) {
	resp := errorResponse{Error: err.Error()}
	var ve config.ValidationError
	if errors.As(err, &ve) {
		resp.Fields = ve
	}
	writeJSON(w, code, resp)
}

// clientID keys quota buckets: the X-Vix-Client header when present,
// otherwise the connection's host address.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Vix-Client"); c != "" {
		return c
	}
	host := r.RemoteAddr
	if i := strings.LastIndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	if host == "" {
		return "anonymous"
	}
	return host
}

// parseCases validates raw case submissions into admitted caseSpecs.
// Validation failures come back as one ValidationError naming every bad
// field under its cases[i].spec path.
func parseCases(raw []caseRequest) ([]caseSpec, error) {
	specs := make([]caseSpec, 0, len(raw))
	var errs config.ValidationError
	for i, cr := range raw {
		path := fmt.Sprintf("cases[%d].spec", i)
		if len(cr.Spec) == 0 {
			errs = append(errs, config.FieldError{Field: path, Msg: "missing experiment spec"})
			continue
		}
		e, err := config.Decode(bytes.NewReader(cr.Spec))
		if err != nil {
			var ve config.ValidationError
			if errors.As(err, &ve) {
				for _, fe := range ve {
					errs = append(errs, config.FieldError{Field: path + "." + fe.Field, Msg: fe.Msg})
				}
			} else {
				errs = append(errs, config.FieldError{Field: path, Msg: err.Error()})
			}
			continue
		}
		cs := caseSpec{Name: cr.Name, Spec: e}
		id, err := harness.JobID(harness.Job{Name: specLabel(e), Spec: e})
		if err != nil {
			errs = append(errs, config.FieldError{Field: path, Msg: err.Error()})
			continue
		}
		cs.storeID = id
		specs = append(specs, cs)
	}
	if len(errs) > 0 {
		return nil, errs
	}
	return specs, nil
}

// admit runs quota admission for n cases, writing the 429 itself when
// the client's bucket is dry.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, n int) bool {
	if n < 1 {
		n = 1
	}
	ok, retryAfter := s.quotas.admit(clientID(r), n)
	if ok {
		return true
	}
	secs := int(math.Ceil(retryAfter))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests,
		fmt.Errorf("service: admission quota exhausted for client %q; retry after %ds", clientID(r), secs))
	return false
}

// submit admits parsed cases into a suite and the run queue, rolling
// queued state back to failed if the server begins draining mid-flight.
func (s *Server) submit(su *suite, specs []caseSpec, closeAfter bool) ([]string, error) {
	added, err := su.addCases(specs, closeAfter)
	if err != nil {
		return nil, err
	}
	if err := s.enqueue(added); err != nil {
		for _, tc := range added {
			tc.setFailed(err)
		}
		return nil, err
	}
	ids := make([]string, len(added))
	for i, tc := range added {
		ids[i] = tc.id
	}
	return ids, nil
}

// handleCreateSuite opens a suite, optionally admitting an inline grid
// and closing it immediately (the one-shot form).
func (s *Server) handleCreateSuite(w http.ResponseWriter, r *http.Request) {
	var req suiteRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: parsing suite request: %w", err))
		return
	}
	specs, err := parseCases(req.Cases)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.admit(w, r, len(specs)) {
		return
	}
	su, err := s.createSuite(req.Name)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	ids, err := s.submit(su, specs, req.Close)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	s.logf("%s: created (%q, %d cases, closed=%v)", su.id, su.name, len(ids), req.Close)
	writeJSON(w, http.StatusCreated, submitResponse{Suite: su.id, Cases: ids, Closed: req.Close})
}

// createSuite registers a new suite under the next deterministic ID.
func (s *Server) createSuite(name string) (*suite, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return nil, fmt.Errorf("service: server is shutting down")
	}
	s.nextSuite++
	su := newSuite("s"+strconv.Itoa(s.nextSuite), name)
	s.suites[su.id] = su
	s.order = append(s.order, su)
	return su, nil
}

// suite looks up a suite by ID.
func (s *Server) suite(id string) *suite {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.suites[id]
}

// isClosing reports whether the server is draining.
func (s *Server) isClosing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closing
}

// handleAddCases admits cases into an open suite. The body is either
// one {"name","spec"} case or a {"cases":[...], "close":bool} batch.
func (s *Server) handleAddCases(w http.ResponseWriter, r *http.Request) {
	su := s.suite(r.PathValue("id"))
	if su == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no suite %q", r.PathValue("id")))
		return
	}
	var req casesRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: parsing case request: %w", err))
		return
	}
	raw := req.Cases
	if len(req.Spec) > 0 {
		raw = append([]caseRequest{{Name: req.Name, Spec: req.Spec}}, raw...)
	}
	if len(raw) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: no cases in request; send {\"spec\": {...}} or {\"cases\": [...]}"))
		return
	}
	specs, err := parseCases(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.admit(w, r, len(specs)) {
		return
	}
	ids, err := s.submit(su, specs, req.Close)
	if err != nil {
		code := http.StatusServiceUnavailable
		if strings.Contains(err.Error(), "is closed") {
			code = http.StatusConflict
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusCreated, submitResponse{Suite: su.id, Cases: ids, Closed: req.Close})
}

// handleCloseSuite closes the suite to further cases; its results
// stream completes once every admitted case is terminal.
func (s *Server) handleCloseSuite(w http.ResponseWriter, r *http.Request) {
	su := s.suite(r.PathValue("id"))
	if su == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no suite %q", r.PathValue("id")))
		return
	}
	su.close()
	writeJSON(w, http.StatusOK, submitResponse{Suite: su.id, Closed: true})
}

// handleSuiteStatus reports the suite and every case, including cache
// provenance and wall-clock telemetry.
func (s *Server) handleSuiteStatus(w http.ResponseWriter, r *http.Request) {
	su := s.suite(r.PathValue("id"))
	if su == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no suite %q", r.PathValue("id")))
		return
	}
	su.mu.Lock()
	st := suiteStatus{Suite: su.id, Name: su.name, Closed: su.closed, Done: su.closed, Cases: make([]caseStatus, len(su.cases))}
	for i, tc := range su.cases {
		if !tc.terminalLocked() {
			st.Done = false
		}
		st.Cases[i] = caseStatus{
			Case:      tc.id,
			Name:      tc.name,
			ID:        tc.storeID,
			Status:    tc.status,
			Cached:    tc.cached,
			WallNanos: tc.telemetry.WallNanos,
			Error:     tc.errMsg,
		}
	}
	su.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleResults streams the suite's results in case order — newline-
// delimited JSON by default, server-sent events when the client asks
// for text/event-stream. Lines are emitted as cases finish (a slow case
// holds back later lines so order is canonical), and the stream ends
// when the suite is closed and drained. Because each line is a pure
// function of the case's position and spec, identical grids stream
// byte-identical bodies however their results were obtained.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	su := s.suite(r.PathValue("id"))
	if su == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no suite %q", r.PathValue("id")))
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
	} else {
		w.Header().Set("Content-Type", "application/jsonl")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	i := 0
	for {
		lines, next, done, changed := su.snapshot(i)
		i = next
		for _, ln := range lines {
			data, err := json.Marshal(ln)
			if err != nil {
				return
			}
			if sse {
				if _, err := fmt.Fprintf(w, "event: result\ndata: %s\n\n", data); err != nil {
					return
				}
			} else {
				if _, err := fmt.Fprintf(w, "%s\n", data); err != nil {
					return
				}
			}
		}
		if len(lines) > 0 {
			flush()
		}
		if done {
			if sse {
				_, _ = fmt.Fprintf(w, "event: done\ndata: {\"suite\":%q}\n\n", su.id)
			}
			flush()
			return
		}
		// A draining server admits no new cases and Close runs the queue
		// dry, so once every admitted case has streamed there is nothing
		// left to wait for even if the client never closed the suite.
		if s.isClosing() && su.drained(i) {
			flush()
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// drained reports whether every admitted case below the suite's current
// length is already streamed at position i.
func (su *suite) drained(i int) bool {
	su.mu.Lock()
	defer su.mu.Unlock()
	return i == len(su.cases)
}

// handleHealth is the liveness probe.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// handleStats reports store accounting and queue depth.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.store.Stats()
	s.mu.Lock()
	resp := statsResponse{
		Suites:  len(s.suites),
		Queued:  len(s.queue),
		Entries: st.Entries,
		Hits:    st.Hits,
		Misses:  st.Misses,
		Dedup:   st.InflightDedup,
		Served:  st.Served(),
	}
	for _, su := range s.order {
		resp.Cases += su.caseCount()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// caseCount returns the number of admitted cases.
func (su *suite) caseCount() int {
	su.mu.Lock()
	defer su.mu.Unlock()
	return len(su.cases)
}
