// Package eng calls into allowlisted and waived code: the golden file
// for this fixture is empty, proving the allowlist and waivers suppress
// taint transitively rather than just at the site.
package eng

import "fix/internal/harness"

// Run fans out through the allowlisted harness; no reach finding.
func Run(fns []func()) { harness.FanOut(fns) }

// Total sums a map behind a justified waiver; no reach finding.
func Total(m map[string]int) int {
	total := 0
	//vixlint:ordered summation is order-independent
	for _, v := range m {
		total += v
	}
	return total
}
