package network

import (
	"fmt"
	"reflect"
	"testing"

	"vix/internal/alloc"
	"vix/internal/router"
	"vix/internal/stats"
	"vix/internal/topology"
)

// ejectRecord captures the identity and timing of one ejected flit; the
// byte-identity tests compare full ejection sequences, which pins not
// just counter totals but the exact order every queue append happened in.
type ejectRecord struct {
	packetID    uint64
	seq         int
	src, dst    int
	createCycle int64
	ejectCycle  int64
	hops        int
}

// runRecorded runs a saturated 8x8 VIX mesh for the given cycles with the
// given worker count, recording every ejection, and returns the ejection
// sequence and the final snapshot.
func runRecorded(t *testing.T, kind alloc.Kind, k, workers, cycles int) ([]ejectRecord, stats.Snapshot) {
	t.Helper()
	topo := topology.NewMesh(8, 8)
	policy := router.PolicyMaxFree
	if k > 1 {
		policy = router.PolicyBalanced
	}
	cfg := meshConfig(topo, kind, k, policy)
	cfg.InjectionRate = 0
	cfg.MaxInjection = true
	cfg.Seed = 7
	cfg.Workers = workers
	var ejected []ejectRecord
	cfg.OnEject = func(f *router.Flit) {
		ejected = append(ejected, ejectRecord{
			packetID: f.PacketID, seq: f.Seq, src: f.Src, dst: f.Dst,
			createCycle: f.CreateCycle, ejectCycle: f.EjectCycle, hops: f.Hops,
		})
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Run(cycles)
	return ejected, n.Collector().Snapshot()
}

// TestParallelTickByteIdenticalAcrossWorkers is the tentpole guarantee:
// a saturated 8x8 VIX mesh produces bit-identical statistics and the
// exact same ejection sequence for workers ∈ {1, 2, 8}. Worker count is
// a wall-clock knob, never a physics knob.
func TestParallelTickByteIdenticalAcrossWorkers(t *testing.T) {
	for _, tc := range []struct {
		kind alloc.Kind
		k    int
	}{
		{alloc.KindSeparableIF, 2},
		{alloc.KindWavefront, 1},
	} {
		t.Run(fmt.Sprintf("%s_k%d", tc.kind, tc.k), func(t *testing.T) {
			const cycles = 2500
			refEjects, refSnap := runRecorded(t, tc.kind, tc.k, 1, cycles)
			if len(refEjects) == 0 {
				t.Fatal("reference run ejected nothing; workload broken")
			}
			for _, workers := range []int{2, 8} {
				ejects, snap := runRecorded(t, tc.kind, tc.k, workers, cycles)
				if !reflect.DeepEqual(snap, refSnap) {
					t.Errorf("workers=%d snapshot diverged:\n got %+v\nwant %+v", workers, snap, refSnap)
				}
				if !reflect.DeepEqual(ejects, refEjects) {
					for i := range refEjects {
						if i >= len(ejects) || ejects[i] != refEjects[i] {
							t.Errorf("workers=%d ejection sequence diverged at index %d (of %d)", workers, i, len(refEjects))
							break
						}
					}
					if len(ejects) != len(refEjects) {
						t.Errorf("workers=%d ejected %d flits, want %d", workers, len(ejects), len(refEjects))
					}
				}
			}
		})
	}
}

// TestParallelTickMoreWorkersThanRouters checks the shard partition
// degrades gracefully when the requested width exceeds the router count.
func TestParallelTickMoreWorkersThanRouters(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	cfg := meshConfig(topo, alloc.KindSeparableIF, 2, router.PolicyBalanced)
	cfg.MaxInjection = true
	cfg.InjectionRate = 0
	cfg.Workers = 64
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if got := n.Workers(); got > topo.NumRouters {
		t.Errorf("effective workers = %d for %d routers", got, topo.NumRouters)
	}
	n.Run(1500)
	if n.Collector().Snapshot().FlitsEjected == 0 {
		t.Error("no traffic delivered under clamped worker count")
	}
}

// TestParallelDeadlockWatchdogTrips mirrors the serial watchdog test with
// the parallel tick enabled: the forward-progress check lives in the
// serial tail of Step and must keep firing (on the stepping goroutine)
// when routers tick on a pool.
func TestParallelDeadlockWatchdogTrips(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	w := &singlePacket{src: 0, dst: 15, size: 4, at: 0}
	cfg := meshConfig(topo, alloc.KindSeparableIF, 1, router.PolicyMaxFree)
	cfg.Workload = w
	cfg.DeadlockCycles = 2 // absurdly tight: pipeline latency alone exceeds it
	cfg.Workers = 2
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("watchdog did not trip at threshold 2 with workers=2")
		}
	}()
	n.Run(100)
}

// TestParallelNetworkCloseIdempotent checks Close on serial and parallel
// networks, repeatedly.
func TestParallelNetworkCloseIdempotent(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	for _, workers := range []int{1, 3} {
		cfg := meshConfig(topo, alloc.KindSeparableIF, 2, router.PolicyBalanced)
		cfg.Workers = workers
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Run(200)
		n.Close()
		n.Close()
	}
}
