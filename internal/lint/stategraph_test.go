package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vix/internal/lint"
)

// stateModule is a miniature simulator slice for the state gate: a
// network package whose Step cone rebuilds scratch, carries persistent
// state, and reads config. Root matching is by package name, so the
// fixture's internal/network stands in for the real one.
func stateModule() map[string]string {
	return map[string]string{
		"go.mod": "module fix\n\ngo 1.22\n",
		"internal/network/net.go": `package network

// Network is the fixture's root state struct.
type Network struct {
	cycle int   // persistent: read (incremented) every Step
	queue []int // persistent: drained across cycles
	work  []int // scratch: reset before use every Step
	size  int   // config: never written after construction
}

// New builds a Network.
func New(size int) *Network {
	return &Network{size: size}
}

// Step advances one cycle.
func (n *Network) Step() {
	n.work = n.work[:0]
	for i := 0; i < n.size; i++ {
		n.work = append(n.work, i)
	}
	n.queue = append(n.queue, n.work...)
	n.cycle++
}
`,
	}
}

// checkState is the test harness around lint.CheckState.
func checkState(t *testing.T, root string, opts lint.StateOptions) ([]lint.Finding, lint.StateStats) {
	t.Helper()
	fs, stats, err := lint.CheckState(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	return fs, stats
}

// TestStateGateLifecycle walks the gate through its protocol: missing
// manifest fails, -update-state infers a self-consistent classification,
// the warm-skip state makes reruns free, and both a manifest edit and a
// struct-field edit bust the warm skip.
func TestStateGateLifecycle(t *testing.T) {
	root := writeTree(t, stateModule())
	opts := lint.StateOptions{Cache: true}

	// No committed manifest: the gate must fail, not silently pass.
	fs, _ := checkState(t, root, opts)
	if len(fs) != 1 || fs[0].Rule != "state/golden" {
		t.Fatalf("without manifest: findings = %v; want exactly one state/golden", renderAll(fs))
	}

	// Regenerate: the inferred manifest must be self-consistent (zero
	// findings) and carry all four fields under their expected classes.
	fs, stats := checkState(t, root, lint.StateOptions{Update: true, Cache: true})
	if len(fs) != 0 {
		t.Fatalf("update run reported findings: %v", renderAll(fs))
	}
	if stats.Roots != 1 || stats.Fields != 4 || stats.Entries != 1 {
		t.Errorf("stats = %+v; want 1 root, 4 fields, 1 entry", stats)
	}
	manifestPath := filepath.Join(root, ".vixlint", "stategraph.golden")
	manifest, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"persistent\tnetwork.Network.cycle",
		"persistent\tnetwork.Network.queue",
		"scratch\tnetwork.Network.work",
		"config\tnetwork.Network.size",
	} {
		if !strings.Contains(string(manifest), want) {
			t.Errorf("manifest lacks %q:\n%s", want, manifest)
		}
	}

	// Clean diff, then a warm skip that never loads the module.
	fs, _ = checkState(t, root, opts)
	if len(fs) != 0 {
		t.Fatalf("clean module reported findings: %v", renderAll(fs))
	}
	fs, stats = checkState(t, root, opts)
	if len(fs) != 0 || !stats.Cached || stats.Analyzed != 0 {
		t.Errorf("warm run: findings = %v, stats = %+v; want cached skip with 0 analyzed", renderAll(fs), stats)
	}

	// A manifest edit is part of the verdict and must bust the warm skip:
	// reclassifying the scratch field as config turns its Step write into
	// state/frozen-write.
	edited := strings.Replace(string(manifest),
		"scratch\tnetwork.Network.work", "config\tnetwork.Network.work", 1)
	if edited == string(manifest) {
		t.Fatal("manifest splice found nothing to replace")
	}
	if err := os.WriteFile(manifestPath, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, stats = checkState(t, root, opts)
	if stats.Cached {
		t.Errorf("edited manifest still served from warm-skip state")
	}
	var frozen bool
	for _, f := range fs {
		if f.Rule == "state/frozen-write" && strings.Contains(f.Msg, "network.Network.work") {
			frozen = true
		}
	}
	if !frozen {
		t.Errorf("reclassified field not reported: findings = %v", renderAll(fs))
	}

	// Restore the manifest, rewarm, then grow the struct: the new field
	// must surface as state/unclassified on a busted warm skip.
	if err := os.WriteFile(manifestPath, manifest, 0o644); err != nil {
		t.Fatal(err)
	}
	checkState(t, root, opts)
	netFile := filepath.Join(root, "internal", "network", "net.go")
	src, err := os.ReadFile(netFile)
	if err != nil {
		t.Fatal(err)
	}
	grown := strings.Replace(string(src), "cycle int",
		"cycle int\n\tdrops int", 1)
	if grown == string(src) {
		t.Fatal("field splice found nothing to replace")
	}
	if err := os.WriteFile(netFile, []byte(grown), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, stats = checkState(t, root, opts)
	if stats.Cached {
		t.Errorf("edited struct still served from warm-skip state")
	}
	var unclassified bool
	for _, f := range fs {
		if f.Rule == "state/unclassified" && strings.Contains(f.Msg, "network.Network.drops") &&
			strings.HasSuffix(f.Pos.Filename, "net.go") {
			unclassified = true
		}
	}
	if !unclassified {
		t.Errorf("new field not reported: findings = %v", renderAll(fs))
	}
}

// TestStateManifestErrors: a malformed manifest is a hard error, not a
// finding — a gate that half-reads its own baseline proves nothing.
func TestStateManifestErrors(t *testing.T) {
	root := writeTree(t, stateModule())
	if _, _, err := lint.CheckState(root, lint.StateOptions{Update: true}); err != nil {
		t.Fatal(err)
	}
	manifestPath := filepath.Join(root, ".vixlint", "stategraph.golden")
	manifest, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name, extra, wantErr string
	}{
		{"missing tab", "persistent network.Network.cycle\n", "malformed manifest line"},
		{"unknown class", "volatile\tnetwork.Network.cycle\tnote\n", "unknown state class"},
		{"duplicate", "scratch\tnetwork.Network.cycle\t\npersistent\tnetwork.Network.cycle\t\n", "duplicate manifest entry"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(manifestPath, append([]byte(nil), append(manifest, tc.extra...)...), 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, err := lint.CheckState(root, lint.StateOptions{})
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v; want %q", err, tc.wantErr)
			}
		})
	}
}

// TestStateGateRealTreeManifestDiff runs the gate over the repository
// itself against an edited copy of the committed manifest (via the
// ManifestPath override, so the checkout stays clean): deleting an entry
// must fail with state/unclassified naming the field's rendered path,
// and a fabricated entry must fail with state/stale at its manifest
// line. This is the acceptance property the gate exists for — the
// manifest cannot silently drift from the reachable state surface.
func TestStateGateRealTreeManifestDiff(t *testing.T) {
	root := repoRoot(t)
	committed, err := os.ReadFile(filepath.Join(root, ".vixlint", "stategraph.golden"))
	if err != nil {
		t.Fatalf("no committed state manifest: %v", err)
	}

	const victim = "router.Router.occ"
	var kept []string
	removed := false
	for _, line := range strings.Split(string(committed), "\n") {
		if strings.Contains(line, "\t"+victim+"\t") {
			removed = true
			continue
		}
		kept = append(kept, line)
	}
	if !removed {
		t.Fatalf("committed manifest has no entry for %s; pick a new victim", victim)
	}
	edited := strings.Join(kept, "\n") +
		"persistent\tnetwork.Network.phantomField\tfabricated for the stale test\n"
	editedPath := filepath.Join(t.TempDir(), "stategraph.golden")
	if err := os.WriteFile(editedPath, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}

	fs, _, err := lint.CheckState(root, lint.StateOptions{
		ManifestPath: editedPath,
		CacheDir:     t.TempDir(), // keep the checkout's warm-skip state intact
	})
	if err != nil {
		t.Fatal(err)
	}
	var unclassified, stale bool
	for _, f := range fs {
		if f.Rule == "state/unclassified" && strings.Contains(f.Msg, victim) {
			unclassified = true
		}
		if f.Rule == "state/stale" && strings.Contains(f.Msg, "phantomField") &&
			f.Pos.Filename == editedPath && f.Pos.Line > 0 {
			stale = true
		}
	}
	if !unclassified {
		t.Errorf("deleting %s from the manifest did not fail the gate: %v", victim, renderAll(fs))
	}
	if !stale {
		t.Errorf("fabricated manifest entry not reported stale: %v", renderAll(fs))
	}
	if len(fs) != 2 {
		t.Errorf("expected exactly the two seeded findings, got %v", renderAll(fs))
	}
}
