package routerbench

import (
	"testing"

	"vix/internal/alloc"
)

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	r, err := Run(cfg, 500, 3000)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func baseCfg(radix int, kind alloc.Kind, k int) Config {
	return Config{
		Radix: radix, VCs: 6, VirtualInputs: k,
		AllocKind: kind, PacketSize: 1, Seed: 1,
	}
}

// Figure 7's qualitative claims, per radix: AP provides >30% higher
// throughput than IF, VIX >25% over IF (paper: "above 25% ... for all
// radices evaluated"), and both are close to ideal.
func TestFigure7Shape(t *testing.T) {
	for _, radix := range []int{5, 8, 10} {
		ifr := run(t, baseCfg(radix, alloc.KindSeparableIF, 1)).FlitsPerCycle
		wfr := run(t, baseCfg(radix, alloc.KindWavefront, 1)).FlitsPerCycle
		apr := run(t, baseCfg(radix, alloc.KindAugmentingPath, 1)).FlitsPerCycle
		vix := run(t, baseCfg(radix, alloc.KindSeparableIF, 2)).FlitsPerCycle
		idl := run(t, baseCfg(radix, alloc.KindIdeal, 6)).FlitsPerCycle

		if apr < 1.30*ifr {
			t.Errorf("radix %d: AP %.3f not >=30%% over IF %.3f", radix, apr, ifr)
		}
		if vix < 1.20*ifr {
			t.Errorf("radix %d: VIX %.3f not >=20%% over IF %.3f", radix, vix, ifr)
		}
		if wfr < ifr {
			t.Errorf("radix %d: WF %.3f below IF %.3f", radix, wfr, ifr)
		}
		if apr < 0.90*idl {
			t.Errorf("radix %d: AP %.3f not close to ideal %.3f", radix, apr, idl)
		}
		// The paper notes the VIX-to-ideal gap widens with radix (more
		// allocator headroom at radix 10), so the bound is looser than
		// AP's.
		if vix < 0.80*idl {
			t.Errorf("radix %d: VIX %.3f not close to ideal %.3f", radix, vix, idl)
		}
		if idl > float64(radix) {
			t.Errorf("radix %d: ideal %.3f exceeds physical capacity", radix, idl)
		}
	}
}

// A radix-P router can never move more than P flits per cycle, and with
// saturated inputs must always move at least one.
func TestPhysicalBounds(t *testing.T) {
	for _, kind := range []alloc.Kind{alloc.KindSeparableIF, alloc.KindWavefront, alloc.KindAugmentingPath, alloc.KindPacketChaining} {
		b, err := New(baseCfg(5, kind, 1))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			moved := b.Step()
			if moved < 1 || moved > 5 {
				t.Fatalf("%s: moved %d flits in a cycle", kind, moved)
			}
		}
	}
}

// Multi-flit packets hold their output port: efficiency stays well
// defined and within bounds.
func TestMultiFlitPackets(t *testing.T) {
	cfg := baseCfg(5, alloc.KindSeparableIF, 1)
	cfg.PacketSize = 4
	r := run(t, cfg)
	if r.Efficiency <= 0.3 || r.Efficiency > 1 {
		t.Fatalf("4-flit packet efficiency out of range: %+v", r.Efficiency)
	}
}

// Deterministic across runs with the same seed.
func TestBenchDeterminism(t *testing.T) {
	a := run(t, baseCfg(8, alloc.KindSeparableIF, 2))
	b := run(t, baseCfg(8, alloc.KindSeparableIF, 2))
	if a.Flits != b.Flits {
		t.Fatalf("same seed gave %d and %d flits", a.Flits, b.Flits)
	}
}

func TestFigure7Harness(t *testing.T) {
	res, err := Figure7([]int{5, 8}, 6, 1, 100, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || len(res[0]) != 5 {
		t.Fatalf("harness shape wrong: %dx%d", len(res), len(res[0]))
	}
	for _, row := range res {
		for _, r := range row {
			if r.FlitsPerCycle <= 0 {
				t.Fatalf("scheme produced zero throughput: %+v", r.Config)
			}
		}
	}
}

func TestInvalidConfigs(t *testing.T) {
	if _, err := New(Config{Radix: 5, VCs: 6, VirtualInputs: 1, AllocKind: alloc.KindSeparableIF, PacketSize: 0}); err == nil {
		t.Error("zero packet size accepted")
	}
	if _, err := New(Config{Radix: 0, VCs: 6, VirtualInputs: 1, AllocKind: alloc.KindSeparableIF, PacketSize: 1}); err == nil {
		t.Error("zero radix accepted")
	}
	if _, err := New(baseCfg(5, "bogus", 1)); err == nil {
		t.Error("unknown allocator accepted")
	}
}

// Skewed output distributions are governed by flow balance, not
// allocation: with VCs blocking head-of-line, a fraction h of refills
// targeting output 0 plus a uniform share means the hotspot output
// absorbs h + (1-h)/P of completions, and its 1 flit/cycle service rate
// caps total throughput at 1/(h + (1-h)/P). For h = 0.5, P = 5 that is
// 1/0.6 = 1.667 flits/cycle. Every allocator sits at that ceiling, so
// VIX cannot (and need not) help — switch allocation is not the
// bottleneck under extreme skew.
func TestHotspotOutputSkew(t *testing.T) {
	const bound = 1 / 0.6
	rates := map[string]float64{}
	for _, c := range []struct {
		label string
		kind  alloc.Kind
		k     int
	}{
		{"ideal", alloc.KindIdeal, 6},
		{"if", alloc.KindSeparableIF, 1},
		{"vix", alloc.KindSeparableIF, 2},
	} {
		cfg := baseCfg(5, c.kind, c.k)
		cfg.HotspotFraction = 0.5
		r := run(t, cfg)
		if r.FlitsPerCycle > bound*1.03 {
			t.Fatalf("%s: throughput %.3f exceeds flow-balance bound %.3f", c.label, r.FlitsPerCycle, bound)
		}
		rates[c.label] = r.FlitsPerCycle
	}
	// The ideal allocator reaches the flow-balance ceiling.
	if rates["ideal"] < 0.93*bound {
		t.Fatalf("ideal %.3f far below flow-balance bound %.3f", rates["ideal"], bound)
	}
	// Under extreme skew all schemes converge: VIX ~ IF within 10%.
	if diff := rates["vix"]/rates["if"] - 1; diff < -0.1 || diff > 0.1 {
		t.Fatalf("VIX (%.3f) and IF (%.3f) diverge under skew", rates["vix"], rates["if"])
	}
}
