// Command fairness regenerates Figure 9: the max/min per-source
// throughput ratio of the four allocation schemes on a saturated 8x8
// mesh. The paper's point: greedy maximum matching (AP) is locally
// optimal but globally unfair, while VIX is the fairest scheme studied.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"vix/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fairness: ")
	var (
		warmup  = flag.Int("warmup", 3000, "warmup cycles")
		measure = flag.Int("measure", 15000, "measurement cycles")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	p := experiments.DefaultParams()
	p.Warmup, p.Measure, p.Seed = *warmup, *measure, *seed
	rows, err := experiments.Figure9(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 9: fairness on a saturated 8x8 mesh (max/min per-source throughput; 1.0 is perfectly fair)")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\tmax/min ratio\tthroughput (flits/cyc/node)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\t%.4f\n", r.Scheme, r.MaxMinRatio, r.Throughput)
	}
	w.Flush()
	fmt.Println("\nPaper reports: AP 6.4, VIX 1.99.")
}
