package alloc

import "testing"

// Mesh port conventions used by the paper's figures.
const (
	local = 0
	east  = 1
	west  = 2
	north = 3
	south = 4
)

// Figure 4: a 5-port mesh router with 4 VCs. The West port holds a packet
// in VC0 requesting Local and a packet in VC2 requesting East. Without
// virtual inputs only one flit transfers; with 1:2 VIX (VC0 in sub-group
// 0, VC2 in sub-group 1) both transfer in the same cycle.
func TestFigure4InputPortConstraint(t *testing.T) {
	requests := []Request{
		{Port: west, VC: 0, OutPort: local},
		{Port: west, VC: 2, OutPort: east},
	}

	base := Config{Ports: 5, VCs: 4, VirtualInputs: 1}
	baseline := NewSeparableIF(base)
	got := baseline.Allocate(&RequestSet{Config: base, Requests: requests})
	if len(got) != 1 {
		t.Fatalf("baseline granted %d flits from one port, want exactly 1", len(got))
	}

	vixCfg := Config{Ports: 5, VCs: 4, VirtualInputs: 2}
	vix := NewSeparableIF(vixCfg)
	vixRS := &RequestSet{Config: vixCfg, Requests: requests}
	got = vix.Allocate(vixRS)
	if len(got) != 2 {
		t.Fatalf("VIX granted %d flits, want 2 (both VCs of the West port)", len(got))
	}
	outs := map[int]bool{}
	for _, g := range got {
		if g.Request(vixRS).Port != west {
			t.Fatalf("unexpected grant port %d", g.Request(vixRS).Port)
		}
		outs[g.OutPort] = true
	}
	if !outs[local] || !outs[east] {
		t.Fatalf("VIX grants cover outputs %v, want Local and East", outs)
	}
}

// Figure 5: without virtual inputs, the West and South input arbiters can
// both pick East, so only one flit transfers even though requests for
// North exist at South. With VIX the South port's two virtual inputs
// expose both the East and North requests, enabling three transfers.
//
// The scenario: West VC0 -> East; South VC0 -> East, South VC3 -> North;
// North VC0 -> East (to give East persistent contention). We check grant
// counts, which do not depend on which arbiter pointer positions the
// round-robin state happens to be in: baseline can grant at most one flit
// per input port and one per output, VIX can grant West->East and both
// South rows.
func TestFigure5MatchingEfficiency(t *testing.T) {
	requests := []Request{
		{Port: west, VC: 0, OutPort: east},
		{Port: south, VC: 0, OutPort: east},
		{Port: south, VC: 3, OutPort: north},
	}

	vixCfg := Config{Ports: 5, VCs: 4, VirtualInputs: 2}
	vix := NewSeparableIF(vixCfg)
	got := vix.Allocate(&RequestSet{Config: vixCfg, Requests: requests})
	// VIX exposes South VC3 (sub-group 1) separately, so North is always
	// granted and East goes to one of its two requestors: 2 grants
	// minimum, and on this request set exactly 2 outputs are grantable.
	if len(got) != 2 {
		t.Fatalf("VIX granted %d, want 2 (East plus North)", len(got))
	}
	outs := map[int]bool{}
	for _, g := range got {
		outs[g.OutPort] = true
	}
	if !outs[north] {
		t.Fatal("VIX failed to grant North despite a conflict-free request")
	}
	if !outs[east] {
		t.Fatal("VIX failed to grant East")
	}

	// Baseline: if South's input arbiter picks VC0 (East), North idles and
	// only one flit transfers. Demonstrate that this uncoordinated outcome
	// actually occurs for some arbiter state.
	base := Config{Ports: 5, VCs: 4, VirtualInputs: 1}
	baseline := NewSeparableIF(base)
	sawUncoordinated := false
	for i := 0; i < 8; i++ { // cycle arbiter pointers through all states
		g := baseline.Allocate(&RequestSet{Config: base, Requests: requests})
		if err := Validate(&RequestSet{Config: base, Requests: requests}, g); err != nil {
			t.Fatal(err)
		}
		if len(g) == 1 {
			sawUncoordinated = true
		}
		if len(g) > 2 {
			t.Fatalf("baseline granted %d flits, impossible for this request set", len(g))
		}
	}
	if !sawUncoordinated {
		t.Fatal("baseline separable allocator never exhibited the uncoordinated 1-grant outcome")
	}
}

// The paper: "In one extreme, if we connect all the input VCs of an input
// port to the VIX, we can not only achieve optimal matching but also
// guarantee optimal switch allocation." Verify the ideal allocator serves
// every output with at least one request.
func TestIdealServesEveryRequestedOutput(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 6}
	id := NewIdeal(cfg)
	rs := &RequestSet{Config: cfg, Requests: []Request{
		{Port: 0, VC: 0, OutPort: 0},
		{Port: 0, VC: 1, OutPort: 1},
		{Port: 0, VC: 2, OutPort: 2},
		{Port: 0, VC: 3, OutPort: 3},
		{Port: 0, VC: 4, OutPort: 4},
		{Port: 1, VC: 0, OutPort: 4},
	}}
	grants := id.Allocate(rs)
	if err := Validate(rs, grants); err != nil {
		t.Fatal(err)
	}
	if len(grants) != 5 {
		t.Fatalf("ideal granted %d outputs, want all 5 (one input port feeding all)", len(grants))
	}
}

// The input-port constraint: baseline (k=1) can never grant two VCs of
// the same input port, no matter the allocator.
func TestBaselineInputPortConstraint(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 1}
	rs := &RequestSet{Config: cfg, Requests: []Request{
		{Port: 2, VC: 0, OutPort: 0},
		{Port: 2, VC: 1, OutPort: 1},
		{Port: 2, VC: 2, OutPort: 3},
	}}
	for kind, a := range newAllocatorsFor(cfg) {
		grants := a.Allocate(rs)
		if len(grants) != 1 {
			t.Errorf("%s: granted %d flits from one port with k=1, want 1", kind, len(grants))
		}
	}
}

// With k=2, at most two flits per input port per cycle, and they must
// come from different sub-groups.
func TestVIXTwoFlitsPerPortLimit(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 2}
	rs := &RequestSet{Config: cfg, Requests: []Request{
		{Port: 2, VC: 0, OutPort: 0}, // sub-group 0
		{Port: 2, VC: 1, OutPort: 1}, // sub-group 0
		{Port: 2, VC: 3, OutPort: 3}, // sub-group 1
		{Port: 2, VC: 4, OutPort: 4}, // sub-group 1
	}}
	for kind, a := range newAllocatorsFor(cfg) {
		grants := a.Allocate(rs)
		if len(grants) != 2 {
			t.Errorf("%s: granted %d flits, want exactly 2 (one per virtual input)", kind, len(grants))
			continue
		}
		groups := map[int]bool{}
		for _, g := range grants {
			groups[cfg.Subgroup(g.Request(rs).VC)] = true
		}
		if len(groups) != 2 {
			t.Errorf("%s: both grants from sub-groups %v, want one from each", kind, groups)
		}
	}
}
