package vix

// This file regenerates every table and figure of the paper's evaluation
// under `go test -bench=.`. Each benchmark runs the corresponding
// experiment at a reduced (but shape-preserving) simulation scale, logs
// the regenerated rows, and reports the headline quantity as a custom
// benchmark metric. The cmd/ tools run the same experiments at full
// scale.

import (
	"sync"
	"testing"

	"vix/internal/experiments"
)

// logged ensures each benchmark prints its regenerated rows once, not
// once per b.N calibration round.
var logged sync.Map

// logRows runs fn the first time the named benchmark reaches its
// reporting section.
func logRows(b *testing.B, fn func()) {
	if _, dup := logged.LoadOrStore(b.Name(), true); !dup {
		fn()
	}
}

// benchParams returns simulation windows sized for the benchmark harness.
func benchParams() ExperimentParams {
	p := experiments.DefaultParams()
	p.Warmup = 800
	p.Measure = 2500
	return p
}

// BenchmarkTable1PipelineDelays regenerates Table 1 from the calibrated
// timing models (VA, SA, and crossbar delays per design).
func BenchmarkTable1PipelineDelays(b *testing.B) {
	var rows []StageDelays
	for i := 0; i < b.N; i++ {
		rows = Table1()
	}
	b.StopTimer()
	logRows(b, func() {
		for _, r := range rows {
			b.Logf("%-16s radix %-2d xbar %2dx%-2d VA %3.0f ps  SA %3.0f ps  Xbar %3.0f ps",
				r.Design, r.Radix, r.XbarIn, r.XbarOut, r.VA, r.SA, r.Xbar)
		}
	})
	b.ReportMetric(rows[1].Xbar/rows[0].Xbar, "meshXbarGrowth")
}

// BenchmarkTable3AllocatorDelay regenerates Table 3 (separable 280 ps,
// wavefront 390 ps, augmented path infeasible).
func BenchmarkTable3AllocatorDelay(b *testing.B) {
	var rows []AllocatorDelay
	for i := 0; i < b.N; i++ {
		rows = Table3()
	}
	b.StopTimer()
	logRows(b, func() {
		for _, r := range rows {
			feas := "feasible"
			if !r.Feasible {
				feas = "INFEASIBLE"
			}
			b.Logf("%-15s %5.0f ps  %s", r.Scheme, r.Delay, feas)
		}
	})
	b.ReportMetric(rows[1].Delay/rows[0].Delay, "WFvsIF")
}

// BenchmarkFig7SingleRouter regenerates Figure 7: single-router switch
// allocation efficiency at radices 5, 8, and 10.
func BenchmarkFig7SingleRouter(b *testing.B) {
	p := benchParams()
	var rows []Fig7Row
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = Figure7(p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logRows(b, func() {
		for _, r := range rows {
			b.Logf("radix %-2d %-5s %6.3f flits/cycle (%.0f%% efficiency, %+.0f%% vs IF)",
				r.Radix, r.Scheme, r.FlitsPerCycle, 100*r.Efficiency, 100*(r.GainOverIF-1))
		}
	})
	var vixGain5 float64
	for _, r := range rows {
		if r.Radix == 5 && r.Scheme == "VIX" {
			vixGain5 = r.GainOverIF
		}
	}
	b.ReportMetric(vixGain5, "VIXvsIF@radix5")
}

// BenchmarkFig8MeshLoadSweep regenerates Figure 8: latency and throughput
// versus offered load on the 8x8 mesh, with saturation points.
func BenchmarkFig8MeshLoadSweep(b *testing.B) {
	p := benchParams()
	rates := []float64{0.02, 0.05, 0.08}
	var pts []Fig8Point
	var err error
	for i := 0; i < b.N; i++ {
		if pts, err = Figure8(p, rates); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logRows(b, func() {
		for _, pt := range pts {
			load := "sat"
			if pt.Rate > 0 {
				load = "   "
			}
			b.Logf("%-4s %s %4.2f: latency %7.2f  throughput %.4f", pt.Scheme, load, pt.Rate, pt.AvgLatency, pt.Throughput)
		}
	})
	sat := map[string]Fig8Point{}
	for _, pt := range pts {
		if pt.Rate == 0 {
			sat[pt.Scheme] = pt
		}
	}
	b.ReportMetric(sat["VIX"].Throughput/sat["IF"].Throughput, "VIXvsIFsat")
}

// BenchmarkFig9Fairness regenerates Figure 9: max/min per-source
// throughput at saturation.
func BenchmarkFig9Fairness(b *testing.B) {
	p := benchParams()
	var rows []Fig9Row
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = Figure9(p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logRows(b, func() {
		for _, r := range rows {
			b.Logf("%-4s max/min %.2f (throughput %.4f)", r.Scheme, r.MaxMinRatio, r.Throughput)
		}
	})
	var vixRatio float64
	for _, r := range rows {
		if r.Scheme == "VIX" {
			vixRatio = r.MaxMinRatio
		}
	}
	b.ReportMetric(vixRatio, "VIXmaxmin")
}

// BenchmarkFig10PacketChaining regenerates Figure 10: PC versus VIX on
// single-flit packets at maximum injection.
func BenchmarkFig10PacketChaining(b *testing.B) {
	p := benchParams()
	var rows []Fig10Row
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = Figure10(p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logRows(b, func() {
		for _, r := range rows {
			b.Logf("%-4s %.4f flits/cycle/node (%+.1f%% vs IF)", r.Scheme, r.Throughput, 100*(r.GainOverIF-1))
		}
	})
	var pcGain, vixGain float64
	for _, r := range rows {
		switch r.Scheme {
		case "PC":
			pcGain = r.GainOverIF
		case "VIX":
			vixGain = r.GainOverIF
		}
	}
	b.ReportMetric(pcGain, "PCvsIF")
	b.ReportMetric(vixGain, "VIXvsIF")
}

// BenchmarkFig11EnergyPerBit regenerates Figure 11: per-component network
// energy per bit for baseline and VIX.
func BenchmarkFig11EnergyPerBit(b *testing.B) {
	p := benchParams()
	var rows []Fig11Row
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = Figure11(p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logRows(b, func() {
		for _, r := range rows {
			bd := r.Breakdown
			b.Logf("%-4s buffer %.3f switch %.3f link %.3f clock %.3f leak %.3f total %.3f pJ/bit",
				r.Scheme, bd.Buffer, bd.Switch, bd.Link, bd.Clock, bd.Leakage, bd.Total)
		}
	})
	b.ReportMetric(rows[1].Breakdown.Total/rows[0].Breakdown.Total, "VIXenergyRatio")
}

// BenchmarkFig12VirtualInputs regenerates Figure 12: saturation
// throughput of no VIX, 1:2 VIX, and ideal VIX across topologies and VC
// counts, which also contains the Section 4.6 buffer-reduction result.
func BenchmarkFig12VirtualInputs(b *testing.B) {
	p := benchParams()
	p.Warmup, p.Measure = 500, 1500
	var rows []Fig12Row
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = Figure12(p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logRows(b, func() {
		for _, r := range rows {
			b.Logf("%-10s %d VCs %-9s %.4f flits/cycle/node", r.Topology, r.VCs, r.Config, r.Throughput)
		}
	})
	var vix4, no6 float64
	for _, r := range rows {
		if r.Topology == "mesh8x8" && r.VCs == 4 && r.Config == "1:2 VIX" {
			vix4 = r.Throughput
		}
		if r.Topology == "mesh8x8" && r.VCs == 6 && r.Config == "no VIX" {
			no6 = r.Throughput
		}
	}
	b.ReportMetric(vix4/no6, "bufferReduction")
}

// BenchmarkTable4AppMixes regenerates Table 4: weighted speedup of VIX
// over baseline for the eight multiprogrammed workloads on the 64-core
// trace-driven system.
func BenchmarkTable4AppMixes(b *testing.B) {
	p := benchParams()
	var rows []Table4Row
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = Table4(p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logRows(b, func() {
		for _, r := range rows {
			b.Logf("%-5s MPKI %5.1f (paper %5.1f)  speedup %.3f (paper %.2f)",
				r.Mix, r.AvgMPKI, r.PaperMPKI, r.Speedup, r.PaperSpeedup)
		}
	})
	var sum float64
	for _, r := range rows {
		sum += r.Speedup
	}
	b.ReportMetric(sum/float64(len(rows)), "avgSpeedup")
}
