package traffic

import (
	"testing"
	"testing/quick"

	"vix/internal/sim"
)

func allPatterns() []Pattern {
	return []Pattern{
		NewUniform(64),
		NewTranspose(8, 8),
		NewBitComplement(64),
		NewBitReverse(64),
		NewTornado(8, 8),
		NewShuffle(64),
		NewNeighbor(8, 8),
		NewHotspot(64, []int{0, 9}, 0.3),
	}
}

// Property: no pattern ever self-addresses or leaves the node range.
func TestPatternsNeverSelfAddress(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, p := range allPatterns() {
		prop := func(s uint8) bool {
			src := int(s) % 64
			d := p.Dest(src, rng)
			return d != src && d >= 0 && d < 64
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

func TestUniformCoversAllDestinations(t *testing.T) {
	u := NewUniform(16)
	rng := sim.NewRNG(2)
	seen := make(map[int]bool)
	for i := 0; i < 5000; i++ {
		seen[u.Dest(3, rng)] = true
	}
	if len(seen) != 15 {
		t.Fatalf("uniform from node 3 reached %d destinations, want 15", len(seen))
	}
	if seen[3] {
		t.Fatal("uniform self-addressed")
	}
}

func TestTransposeMapping(t *testing.T) {
	tr := NewTranspose(8, 8)
	// (x=2, y=5) = node 42 -> (x=5, y=2) = node 21.
	if d := tr.Dest(42, nil); d != 21 {
		t.Fatalf("transpose(42) = %d, want 21", d)
	}
	// Diagonal (3,3) = 27 -> complement (4,4) = 36.
	if d := tr.Dest(27, nil); d != 36 {
		t.Fatalf("transpose diagonal(27) = %d, want 36", d)
	}
}

func TestTransposeIsInvolutionOffDiagonal(t *testing.T) {
	tr := NewTranspose(8, 8)
	for src := 0; src < 64; src++ {
		x, y := src%8, src/8
		if x == y {
			continue
		}
		if back := tr.Dest(tr.Dest(src, nil), nil); back != src {
			t.Fatalf("transpose not involutive at %d: %d", src, back)
		}
	}
}

func TestBitComplement(t *testing.T) {
	b := NewBitComplement(64)
	if d := b.Dest(0, nil); d != 63 {
		t.Fatalf("bitcomp(0) = %d, want 63", d)
	}
	if d := b.Dest(21, nil); d != 42 {
		t.Fatalf("bitcomp(21) = %d, want 42", d)
	}
}

func TestBitReverse(t *testing.T) {
	b := NewBitReverse(64)
	// 0b000001 -> 0b100000.
	if d := b.Dest(1, nil); d != 32 {
		t.Fatalf("bitrev(1) = %d, want 32", d)
	}
	// 0b110100 (52) -> 0b001011 (11).
	if d := b.Dest(52, nil); d != 11 {
		t.Fatalf("bitrev(52) = %d, want 11", d)
	}
}

func TestBitReverseRequiresPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bitrev on 48 nodes did not panic")
		}
	}()
	NewBitReverse(48)
}

func TestTornadoStaysInRow(t *testing.T) {
	tn := NewTornado(8, 8)
	for src := 0; src < 64; src++ {
		d := tn.Dest(src, nil)
		if d/8 != src/8 {
			t.Fatalf("tornado left its row: %d -> %d", src, d)
		}
		// Half-way around the row: offset 3 for W=8.
		if wantX := (src%8 + 3) % 8; d%8 != wantX {
			t.Fatalf("tornado(%d) x = %d, want %d", src, d%8, wantX)
		}
	}
}

func TestHotspotConcentration(t *testing.T) {
	h := NewHotspot(64, []int{7}, 0.5)
	rng := sim.NewRNG(3)
	hits := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if h.Dest(0, rng) == 7 {
			hits++
		}
	}
	// About half the traffic plus a sliver of uniform traffic hits node 7.
	frac := float64(hits) / draws
	if frac < 0.45 || frac > 0.58 {
		t.Fatalf("hotspot fraction = %v, want about 0.5", frac)
	}
}

func TestHotspotValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewHotspot(64, nil, 0.5) },
		func() { NewHotspot(64, []int{1}, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid hotspot config did not panic")
				}
			}()
			f()
		}()
	}
}

func TestTransposeRequiresSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-square transpose did not panic")
		}
	}()
	NewTranspose(8, 4)
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"uniform", "transpose", "bitcomp", "bitrev", "tornado", "shuffle", "neighbor", "hotspot"} {
		p, err := New(name, 8, 8)
		if err != nil {
			t.Errorf("New(%q) failed: %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := New("nonsense", 8, 8); err == nil {
		t.Error("New accepted unknown pattern")
	}
}

func TestShuffle(t *testing.T) {
	s := NewShuffle(64)
	// 0b000011 (3) rotates to 0b000110 (6).
	if d := s.Dest(3, nil); d != 6 {
		t.Fatalf("shuffle(3) = %d, want 6", d)
	}
	// 0b100000 (32) rotates to 0b000001 (1).
	if d := s.Dest(32, nil); d != 1 {
		t.Fatalf("shuffle(32) = %d, want 1", d)
	}
	// Fixed points (0 and 63) must redirect.
	if d := s.Dest(0, nil); d == 0 {
		t.Fatal("shuffle(0) self-addressed")
	}
	if d := s.Dest(63, nil); d == 63 {
		t.Fatal("shuffle(63) self-addressed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shuffle on 48 nodes did not panic")
		}
	}()
	NewShuffle(48)
}

func TestNeighbor(t *testing.T) {
	nb := NewNeighbor(8, 8)
	if d := nb.Dest(0, nil); d != 1 {
		t.Fatalf("neighbor(0) = %d, want 1", d)
	}
	// Row wrap: node 7 (end of row 0) goes to node 0.
	if d := nb.Dest(7, nil); d != 0 {
		t.Fatalf("neighbor(7) = %d, want 0", d)
	}
	for src := 0; src < 64; src++ {
		if d := nb.Dest(src, nil); d/8 != src/8 {
			t.Fatalf("neighbor left its row: %d -> %d", src, d)
		}
	}
}
