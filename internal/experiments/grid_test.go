package experiments

import (
	"context"
	"encoding/json"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"vix/internal/harness"
	"vix/internal/stats"
)

// tinyParams keeps grid tests fast: the determinism properties under
// test are window-size independent.
func tinyParams() Params {
	p := DefaultParams()
	p.Warmup = 150
	p.Measure = 400
	return p
}

// TestFigure8GridParallelDeterminism is the experiments-layer half of
// the harness guarantee: the same grid through 1 and 8 workers yields
// identical rows, and a manifest resume splices rather than recomputes.
func TestFigure8GridParallelDeterminism(t *testing.T) {
	p := tinyParams()
	rates := []float64{0.02, 0.05}
	serial, err := Figure8Opt(context.Background(), p, rates, harness.Serial())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Figure8Opt(context.Background(), p, rates, harness.Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel rows differ from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}

	// A rerun against a populated manifest must return the same rows
	// without running a single simulation.
	manifest := filepath.Join(t.TempDir(), "fig8.jsonl")
	if _, err := Figure8Opt(context.Background(), p, rates, harness.Options{Parallel: 4, Manifest: manifest}); err != nil {
		t.Fatal(err)
	}
	ran := 0
	resumed, err := Figure8Opt(context.Background(), p, rates, harness.Options{
		Parallel: 4, Manifest: manifest,
		OnDone: func(r harness.Result) {
			if !r.Cached {
				ran++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Errorf("resume against a complete manifest re-ran %d jobs", ran)
	}
	if !reflect.DeepEqual(serial, resumed) {
		t.Fatal("resumed rows differ from serial rows")
	}
}

// TestGridSeedsAreLabelKeyed: a point's seed must depend on its labels,
// not its position, so inserting a point never re-seeds its neighbours.
func TestGridSeedsAreLabelKeyed(t *testing.T) {
	p := tinyParams()
	short := Figure8Grid(p, []float64{0.05})
	long := Figure8Grid(p, []float64{0.02, 0.05})
	seed := func(g GridPoint) uint64 {
		cfg := g.Config
		var spec pointSpec
		raw, err := json.Marshal(g.Job(p.Seed).Spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(raw, &spec); err != nil {
			t.Fatal(err)
		}
		if spec.Seed == cfg.Seed {
			t.Fatal("job spec carries the root seed; sub-seed derivation missing")
		}
		return spec.Seed
	}
	// The 0.05 point exists in both grids at different indices; its
	// derived seed must be identical.
	if a, b := seed(short[0]), seed(long[1]); a != b {
		t.Fatalf("same labels derived different seeds at different grid positions: %d vs %d", a, b)
	}
	// Distinct points derive distinct seeds.
	if a, b := seed(long[0]), seed(long[1]); a == b {
		t.Fatal("distinct points derived the same seed")
	}
}

// TestSnapshotRecordRoundTripsInfinity: starved sources make the
// fairness ratio +Inf, which must survive the manifest's JSON layer.
func TestSnapshotRecordRoundTripsInfinity(t *testing.T) {
	for _, v := range []float64{1.5, math.Inf(1), math.NaN()} {
		rec := toRecord(snapshotFor(v))
		raw, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("marshal with fairness %v: %v", v, err)
		}
		var back snapshotRecord
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("unmarshal with fairness %v: %v", v, err)
		}
		got := back.snapshot().FairnessRatio
		switch {
		case math.IsNaN(v):
			if !math.IsNaN(got) {
				t.Errorf("NaN fairness round-tripped to %v", got)
			}
		default:
			if got != v {
				t.Errorf("fairness %v round-tripped to %v", v, got)
			}
		}
	}
}

func snapshotFor(fairness float64) stats.Snapshot {
	var s stats.Snapshot
	s.FairnessRatio = fairness
	s.Cycles = 100
	return s
}
