package sim

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// TestPoolCoversIndexSpace checks that every index is executed exactly
// once for a spread of widths and batch sizes, including batches smaller
// than the pool and empty batches.
func TestPoolCoversIndexSpace(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			hits := make([]int32, n)
			p.Do(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times, want 1", workers, n, i, h)
				}
			}
		}
		p.Close()
	}
}

// TestPoolSingleWorkerRunsInline pins the inline path: a one-worker pool
// must execute tasks on the calling goroutine with no goroutines spawned
// — the stack of a task includes the caller's frame, and the process
// goroutine count does not move.
func TestPoolSingleWorkerRunsInline(t *testing.T) {
	p := NewPool(1)
	before := runtime.NumGoroutine()
	var stack string
	p.Do(3, func(i int) {
		if i == 0 {
			buf := make([]byte, 1<<16)
			stack = string(buf[:runtime.Stack(buf, false)])
		}
	})
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine count grew from %d to %d; one-worker Do must not spawn", before, after)
	}
	if !strings.Contains(stack, "TestPoolSingleWorkerRunsInline") {
		t.Errorf("task did not run on the calling goroutine; stack:\n%s", stack)
	}
}

// TestPoolSteadyStateZeroAllocs pins the per-batch cost the network's
// per-cycle fan-out relies on: once workers are started, a Do with a
// pre-built function value performs no heap allocations.
func TestPoolSteadyStateZeroAllocs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sink [16]int64
	fn := func(i int) { sink[i]++ }
	p.Do(len(sink), fn) // warm up: spawn workers
	avg := testing.AllocsPerRun(100, func() { p.Do(len(sink), fn) })
	if avg != 0 {
		t.Fatalf("Do allocates %v times per batch in steady state; want 0", avg)
	}
}

// TestPoolPanicPropagates checks that a task panic re-raises on the
// calling goroutine with a package-prefixed message, that the remaining
// workers drain, and that the pool stays usable afterwards.
func TestPoolPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: Do did not re-panic", workers)
				}
				msg, ok := r.(string)
				if workers > 1 && (!ok || !strings.Contains(msg, "sim: pool task panicked: boom")) {
					t.Fatalf("workers=%d: panic value %v, want sim-prefixed wrapper", workers, r)
				}
			}()
			p.Do(8, func(i int) {
				if i == 5 {
					panic("boom")
				}
			})
		}()
		var ran int32
		p.Do(4, func(int) { atomic.AddInt32(&ran, 1) })
		if ran != 4 {
			t.Fatalf("workers=%d: pool unusable after panic: ran %d of 4", workers, ran)
		}
		p.Close()
	}
}

// TestPoolCloseAndRestart checks Close is idempotent and that a later Do
// restarts workers lazily instead of deadlocking.
func TestPoolCloseAndRestart(t *testing.T) {
	p := NewPool(3)
	var count int32
	p.Do(10, func(int) { atomic.AddInt32(&count, 1) })
	p.Close()
	p.Close()
	p.Do(10, func(int) { atomic.AddInt32(&count, 1) })
	if count != 20 {
		t.Fatalf("ran %d tasks, want 20", count)
	}
	p.Close()
}
