// Package use seeds escape/store violations: every way of extending a
// scratch grants slice's lifetime past the caller's control, plus the
// clean local-consumption pattern.
package use

import "fix/alloc"

// held outlives any cycle: storing grants here escapes the scratch.
var held []alloc.Grant

type keeper struct{ grants []alloc.Grant }

// Keep stores scratch in a struct field.
func (k *keeper) Keep(a *alloc.A) { k.grants = a.Allocate() }

// Stash stores scratch in a package-level variable.
func Stash(a *alloc.A) { held = a.Allocate() }

// Send publishes scratch on a channel.
func Send(a *alloc.A, ch chan []alloc.Grant) { ch <- a.Allocate() }

// Wrap embeds scratch in a composite literal.
func Wrap(a *alloc.A) [][]alloc.Grant { return [][]alloc.Grant{a.Allocate()} }

// Consume uses scratch locally before the next Allocate: the intended
// pattern, reported by nothing.
func Consume(a *alloc.A) int { return len(a.Allocate()) }
