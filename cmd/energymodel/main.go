// Command energymodel regenerates Figure 11: network energy per bit for
// the baseline and VIX mesh at 0.1 packets/cycle/node, broken down into
// buffer, switch, link, clock, and leakage components. Activity factors
// come from the cycle-accurate simulation; per-component energies from
// the 45 nm calibration in internal/energy.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"vix/internal/experiments"
	"vix/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("energymodel: ")
	var (
		warmup   = flag.Int("warmup", 2000, "warmup cycles")
		measure  = flag.Int("measure", 10000, "measurement cycles")
		seed     = flag.Uint64("seed", 1, "random seed")
		topoName = flag.String("topo", "mesh", "topology: mesh (the paper's Figure 11), cmesh, or fbfly")
		rate     = flag.Float64("rate", 0.1, "injection rate in packets/cycle/node")
	)
	flag.Parse()

	p := experiments.DefaultParams()
	p.Warmup, p.Measure, p.Seed = *warmup, *measure, *seed
	var topo *topology.Topology
	switch *topoName {
	case "mesh":
		topo = topology.NewMesh(8, 8)
	case "cmesh":
		topo = topology.NewCMesh(4, 4, 4)
	case "fbfly":
		topo = topology.NewFBfly(4, 4, 4)
	default:
		log.Fatalf("unknown topology %q", *topoName)
	}
	rows, err := experiments.EnergyStudy(topo, p, *rate)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Figure 11: network energy per bit (%s @ %g packets/cycle/node)\n", topo.Name, *rate)
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\tbuffer\tswitch\tlink\tclock\tleakage\ttotal (pJ/bit)")
	for _, r := range rows {
		b := r.Breakdown
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			r.Scheme, b.Buffer, b.Switch, b.Link, b.Clock, b.Leakage, b.Total)
	}
	w.Flush()
	if len(rows) == 2 {
		fmt.Printf("\nVIX total energy per bit: %+.1f%% over baseline (paper: +4%%).\n",
			100*(rows[1].Breakdown.Total/rows[0].Breakdown.Total-1))
	}
}
