package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"vix/internal/config"
	"vix/internal/harness"
)

// testBase shrinks the simulation windows so the real-simulation
// determinism checks stay fast.
func testBase() config.Experiment {
	e := config.Default()
	e.Warmup = 150
	e.Measure = 400
	return e
}

// TestSweepCSVByteIdenticalAcrossWorkers is the acceptance criterion:
// the harness-backed sweep produces byte-identical CSV for -parallel=1
// and -parallel=8 on the same grid.
func TestSweepCSVByteIdenticalAcrossWorkers(t *testing.T) {
	schemes := []scheme{{alloc: "if", k: 1}, {alloc: "if", k: 2}}
	rates := []float64{0.02, 0.05}
	var serial, parallel bytes.Buffer
	if err := sweep(context.Background(), testBase(), schemes, rates, true, 1, harness.Serial(), &serial); err != nil {
		t.Fatal(err)
	}
	if err := sweep(context.Background(), testBase(), schemes, rates, true, 1, harness.Options{Parallel: 8}, &parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("CSV differs between worker counts:\n-parallel=1:\n%s\n-parallel=8:\n%s", serial.String(), parallel.String())
	}
	lines := strings.Split(strings.TrimSpace(serial.String()), "\n")
	wantRows := 1 + len(schemes)*(len(rates)+1) // header + points + saturation per scheme
	if len(lines) != wantRows {
		t.Fatalf("CSV has %d lines, want %d:\n%s", len(lines), wantRows, serial.String())
	}
	if lines[0] != strings.Join(sweepHeader, ",") {
		t.Fatalf("header = %q", lines[0])
	}
}

// TestSweepResumeSplicesManifest: a manifest populated by a partial grid
// is spliced into a later, larger run, and the artifact still equals a
// from-scratch run's byte for byte.
func TestSweepResumeSplicesManifest(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "sweep.jsonl")
	rates := []float64{0.02, 0.05}
	partial := []scheme{{alloc: "if", k: 1}}
	full := []scheme{{alloc: "if", k: 1}, {alloc: "if", k: 2}}

	// First run covers only the first scheme, checkpointing it.
	var firstOut bytes.Buffer
	if err := sweep(context.Background(), testBase(), partial, rates, false, 1, harness.Options{Parallel: 2, Manifest: manifest}, &firstOut); err != nil {
		t.Fatal(err)
	}

	// The full grid resumes: scheme 1's points must come from the
	// manifest, scheme 2's from fresh simulation.
	cached := 0
	var resumedOut bytes.Buffer
	opt := harness.Options{Parallel: 2, Manifest: manifest, OnDone: func(r harness.Result) {
		if r.Cached {
			cached++
		}
	}}
	if err := sweep(context.Background(), testBase(), full, rates, false, 1, opt, &resumedOut); err != nil {
		t.Fatal(err)
	}
	if cached != len(rates) {
		t.Errorf("resume replayed %d cached points, want %d", cached, len(rates))
	}

	var freshOut bytes.Buffer
	if err := sweep(context.Background(), testBase(), full, rates, false, 1, harness.Serial(), &freshOut); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumedOut.Bytes(), freshOut.Bytes()) {
		t.Fatalf("resumed artifact differs from from-scratch run:\nresumed:\n%s\nfresh:\n%s", resumedOut.String(), freshOut.String())
	}
}

// TestSweepPointSeedsDiffer guards the sub-seed satellite: distinct grid
// points must not share an RNG stream, and the same point must keep its
// seed when the grid around it changes.
func TestSweepPointSeedsDiffer(t *testing.T) {
	jobs := buildJobs(testBase(), []scheme{{alloc: "if", k: 1}, {alloc: "if", k: 2}}, []float64{0.02, 0.05}, true, 1)
	seeds := make(map[uint64]string)
	for _, j := range jobs {
		e := j.Spec.(config.Experiment)
		if e.Seed == testBase().Seed {
			t.Errorf("job %s runs on the root seed; derivation missing", j.Name)
		}
		if prev, dup := seeds[e.Seed]; dup {
			t.Errorf("jobs %s and %s share seed %d", prev, j.Name, e.Seed)
		}
		seeds[e.Seed] = j.Name
	}
	// Same point, different grid shape: seed is position-independent.
	solo := buildJobs(testBase(), []scheme{{alloc: "if", k: 2}}, []float64{0.05}, false, 1)
	if a, b := solo[0].Spec.(config.Experiment).Seed, findJob(t, jobs, solo[0].Name).Spec.(config.Experiment).Seed; a != b {
		t.Errorf("point %s changed seed with grid shape: %d vs %d", solo[0].Name, a, b)
	}
}

func findJob(t *testing.T, jobs []harness.Job, name string) harness.Job {
	t.Helper()
	for _, j := range jobs {
		if j.Name == name {
			return j
		}
	}
	t.Fatalf("job %s not found", name)
	return harness.Job{}
}

// TestParseErrors: flag parsing propagates errors instead of calling
// log.Fatal mid-loop.
func TestParseErrors(t *testing.T) {
	if _, err := parseSchemes("if"); err == nil {
		t.Error("bare scheme accepted")
	}
	if _, err := parseSchemes("if:x"); err == nil {
		t.Error("non-numeric k accepted")
	}
	if _, err := parseRates("0.01,zap"); err == nil {
		t.Error("bad rate accepted")
	}
}

// TestSweepPooledVsFreshFlitsByteIdentical is the determinism regression
// test for the flit free-list pool: a pooled run and a fresh-allocation
// run (pool disabled via the test hook) must render byte-identical CSV
// for the same seeds, proving recycled flits are indistinguishable from
// freshly allocated ones.
func TestSweepPooledVsFreshFlitsByteIdentical(t *testing.T) {
	schemes := []scheme{{alloc: "if", k: 2}, {alloc: "wavefront", k: 1}}
	rates := []float64{0.05}
	run := func(disable bool) string {
		t.Helper()
		disableFlitPool = disable
		defer func() { disableFlitPool = false }()
		var out bytes.Buffer
		if err := sweep(context.Background(), testBase(), schemes, rates, true, 1, harness.Serial(), &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	pooled := run(false)
	fresh := run(true)
	if pooled != fresh {
		t.Fatalf("CSV differs between pooled and fresh flit allocation:\npooled:\n%s\nfresh:\n%s", pooled, fresh)
	}
}

// TestSweepGatedVsDenseByteIdentical is the determinism regression test
// for the activity-gated tick: a gated run (the default) and a dense run
// (gate disabled via the test hook) must render byte-identical CSV for
// the same seeds, proving skipped idle routers and fast-forwarded
// allocator state are indistinguishable from densely ticked ones. The
// grid includes a subcritical rate, where the gate actually skips work.
func TestSweepGatedVsDenseByteIdentical(t *testing.T) {
	schemes := []scheme{{alloc: "if", k: 2}, {alloc: "wavefront", k: 1}}
	rates := []float64{0.01, 0.05}
	run := func(disable bool) string {
		t.Helper()
		disableActivityGate = disable
		defer func() { disableActivityGate = false }()
		var out bytes.Buffer
		if err := sweep(context.Background(), testBase(), schemes, rates, true, 1, harness.Serial(), &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	gated := run(false)
	dense := run(true)
	if gated != dense {
		t.Fatalf("CSV differs between gated and dense ticks:\ngated:\n%s\ndense:\n%s", gated, dense)
	}
}

// TestSweepCSVByteIdenticalAcrossTickWorkers covers the other worker
// axis: -workers shards each simulation's router tick across a pool,
// and the CSV must stay byte-identical for any width. The grid is a
// saturated 8x8 VIX mesh — the workload where the parallel tick
// actually reorders work the most — plus a subcritical point.
func TestSweepCSVByteIdenticalAcrossTickWorkers(t *testing.T) {
	schemes := []scheme{{alloc: "if", k: 2}}
	rates := []float64{0.05}
	var ref bytes.Buffer
	if err := sweep(context.Background(), testBase(), schemes, rates, true, 1, harness.Serial(), &ref); err != nil {
		t.Fatal(err)
	}
	for _, tickWorkers := range []int{2, 8} {
		var out bytes.Buffer
		if err := sweep(context.Background(), testBase(), schemes, rates, true, tickWorkers, harness.Serial(), &out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref.Bytes(), out.Bytes()) {
			t.Fatalf("CSV differs between -workers=1 and -workers=%d:\nserial tick:\n%s\nparallel tick:\n%s", tickWorkers, ref.String(), out.String())
		}
	}
}
