// Command cyclebench measures the serial cycle loop's raw throughput:
// cycles/sec of Network.Step on a saturated 8x8 VIX mesh — the inner loop
// every sweep, ablation, and Table 4 run is built from. It also reports
// heap allocations per cycle (runtime.MemStats deltas), the number the
// zero-allocation steady-state work drives to ~0.
//
// The emitted BENCH_cycle.json records a before-vs-after pair: the
// baseline cycles/sec is taken from -baseline, or, when the output file
// already exists, carried over from its baseline_cycles_per_sec field, so
// `make bench-json` refreshes the measurement while preserving the
// pre-optimization reference point.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"vix/internal/alloc"
	"vix/internal/network"
	"vix/internal/router"
	"vix/internal/stats"
	"vix/internal/topology"
	"vix/internal/traffic"
)

// report is the BENCH_cycle.json schema.
type report struct {
	Workload         string  `json:"workload"`
	WarmupCycles     int     `json:"warmup_cycles"`
	MeasureCycles    int     `json:"measure_cycles"`
	CPUs             int     `json:"cpus"`
	BaselineCycSec   float64 `json:"baseline_cycles_per_sec"`
	CycSec           float64 `json:"cycles_per_sec"`
	Speedup          float64 `json:"speedup"`
	MallocsPerCycle  float64 `json:"mallocs_per_cycle"`
	AllocBytesPerCyc float64 `json:"alloc_bytes_per_cycle"`

	LowLoad   *lowLoadReport   `json:"low_load,omitempty"`
	Parallel  *parallelReport  `json:"parallel,omitempty"`
	LargeMesh *largeMeshReport `json:"large_mesh,omitempty"`
}

// largeMeshReport records the arena-scale section: the 32x32 VIX mesh at
// saturation, stepped serially (best of reps — throughput on a loaded
// host is noise-floored, so the max is the honest estimate of the code's
// speed) and with the sharded tick. The serial gate compares against the
// recorded pre-arena baseline carried in the output file, so the section
// is a ratchet: the flattened-arena hot path must stay >= 1.4x over the
// pointer-chasing implementation it replaced, measured on comparable or
// faster hardware.
type largeMeshReport struct {
	Workload       string  `json:"workload"`
	WarmupCycles   int     `json:"warmup_cycles"`
	MeasureCycles  int     `json:"measure_cycles"`
	Reps           int     `json:"reps"`
	BaselineCycSec float64 `json:"baseline_cycles_per_sec"`
	CycSec         float64 `json:"cycles_per_sec"`
	Speedup        float64 `json:"speedup"`
	// MinSpeedup is the enforced serial floor (0: no recorded baseline,
	// gate not applicable).
	MinSpeedup     float64 `json:"min_speedup,omitempty"`
	GateEnforced   bool    `json:"gate_enforced"`
	Workers        int     `json:"workers"`
	ParallelCycSec float64 `json:"parallel_cycles_per_sec,omitempty"`
	// ParallelSpeedup is sharded vs this run's serial best (same host,
	// same binary), gated >= 1.8x on multi-core hosts like the 16x16
	// parallel section.
	ParallelSpeedup  float64 `json:"parallel_speedup,omitempty"`
	ParallelGate     bool    `json:"parallel_gate_enforced"`
	ParallelSkip     string  `json:"parallel_skip_reason,omitempty"`
	StatsIdentical   bool    `json:"stats_identical"`
	MallocsPerCycle  float64 `json:"mallocs_per_cycle"`
	AllocBytesPerCyc float64 `json:"alloc_bytes_per_cycle"`
}

// parallelReport records the sharded-tick section: the same 16x16
// workload stepped serially and with -workers shards, the byte-identity
// verdict, and whether the speedup gate applied on this host. On hosts
// where the worker request resolves to a single worker the section is
// recorded as skipped with a reason instead of timing a "parallel" run
// that would bypass the pool and report a meaningless speedup.
type parallelReport struct {
	Workload       string  `json:"workload"`
	Workers        int     `json:"workers"`
	WarmupCycles   int     `json:"warmup_cycles,omitempty"`
	MeasureCycles  int     `json:"measure_cycles,omitempty"`
	SerialCycSec   float64 `json:"serial_cycles_per_sec,omitempty"`
	ParallelCycSec float64 `json:"parallel_cycles_per_sec,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`
	StatsIdentical bool    `json:"stats_identical,omitempty"`
	// GateEnforced reports whether the >= 1.8x speedup gate applied:
	// it needs at least 4 CPUs and at least 4 effective workers.
	GateEnforced bool   `json:"gate_enforced"`
	Skipped      bool   `json:"skipped,omitempty"`
	SkipReason   string `json:"skip_reason,omitempty"`
}

// lowLoadReport records the activity-gate section: the 16x16 workload at
// fractions of its measured saturation throughput, stepped serially with
// the gate on (the default) and off (DisableActivityGate), with the
// byte-identity verdict per point. The gate's win shrinks as load rises:
// a flit occupies a router for roughly one tick per flit per hop, so at
// load l the gated tick still executes ~4*hops*l of the dense tick's
// router work and the dense/gated ratio is bounded by the reciprocal —
// ~4x at 10% load, ~1.3x at 30% (DESIGN.md section 15). The >= 5x gate
// is therefore enforced at the deep-low-load point every sweep's tail
// spends most of its wall clock in.
type lowLoadReport struct {
	Workload      string `json:"workload"`
	WarmupCycles  int    `json:"warmup_cycles"`
	MeasureCycles int    `json:"measure_cycles"`
	// SaturationPkt is the measured saturation throughput of this
	// workload (packets/node/cycle, MaxInjection, seed 1) that the
	// points' load percentages refer to.
	SaturationPkt float64        `json:"saturation_pkt_per_node_cycle"`
	Points        []lowLoadPoint `json:"points"`
}

// lowLoadPoint is one load point of the low_load section.
type lowLoadPoint struct {
	LoadPct        float64 `json:"load_pct"`
	Rate           float64 `json:"rate_pkt_per_node_cycle"`
	GatedCycSec    float64 `json:"gated_cycles_per_sec"`
	DenseCycSec    float64 `json:"dense_cycles_per_sec"`
	Speedup        float64 `json:"speedup"`
	StatsIdentical bool    `json:"stats_identical"`
	// MinSpeedup is the enforced floor at this point (0: not gated).
	MinSpeedup float64 `json:"min_speedup,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cyclebench: ")
	var (
		out         = flag.String("o", "BENCH_cycle.json", "output file (\"-\" for stdout)")
		warmup      = flag.Int("warmup", 3000, "warmup cycles (also grows pools/scratch to steady state)")
		measure     = flag.Int("measure", 20000, "measurement cycles")
		baseline    = flag.Float64("baseline", 0, "pre-change cycles/sec reference (0: carry over from existing output file)")
		workers     = flag.Int("workers", -1, "parallel-tick workers for the 16x16 section (<0 GOMAXPROCS)")
		injectRate  = flag.Float64("inject-rate", 0, "bench the low_load section at this single rate (packets/node/cycle) instead of the standard load points; the custom point carries no speedup gate")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the measurement window to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile taken after the measurement to this file")
		requireGate = flag.Bool("require-gate", false, "fail unless the parallel and low-load speedup gates actually applied (CI multicore job: a host or flag set that cannot enforce them must not pass silently)")

		largeWarmup      = flag.Int("large-warmup", 1500, "large_mesh section warmup cycles")
		largeMeasure     = flag.Int("large-measure", 3000, "large_mesh section measurement cycles")
		largeReps        = flag.Int("large-reps", 3, "large_mesh serial repetitions (best is reported)")
		largeBaseline    = flag.Float64("large-baseline", 0, "recorded pre-arena 32x32 serial cycles/sec (0: carry over from existing output file)")
		requireLargeGate = flag.Bool("require-large-gate", false, "fail unless the large_mesh serial (>= 1.4x vs recorded pre-arena baseline) and parallel (>= 1.8x) gates actually applied")

		topoName = flag.String("topo", "mesh", "main-section topology: mesh or torus (8x8; gates and the recorded baseline assume mesh)")
	)
	flag.Parse()

	var topo *topology.Topology
	switch *topoName {
	case "mesh":
		topo = topology.NewMesh(8, 8)
	case "torus":
		topo = topology.NewTorus(8, 8)
	default:
		log.Fatalf("unknown -topo %q; want mesh or torus", *topoName)
	}
	workload := fmt.Sprintf("8x8 %s, if:2 (VIX), 6 VCs, uniform random, max injection, seed 1", *topoName)
	cfg := network.Config{
		Topology: topo,
		Router: router.Config{
			Ports: topo.Radix, VCs: 6, VirtualInputs: 2, BufDepth: 5,
			AllocKind: alloc.KindSeparableIF, Policy: router.PolicyBalanced,
		},
		Pattern:      traffic.NewUniform(topo.NumNodes),
		MaxInjection: true,
		Seed:         1,
	}
	n, err := network.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer n.Close()
	n.Run(*warmup)

	// Pre-size the latency sample array for the measurement window:
	// sample recording is measurement bookkeeping, and letting its
	// backing array double mid-window would dominate the allocation
	// counters this benchmark exists to read. The warmup ejection rate
	// predicts the window's packet count; 2x headroom absorbs drift.
	if *warmup > 0 {
		ejected := int(n.Collector().Snapshot().PacketsEjected)
		n.Collector().Reserve(ejected + 2*ejected*(*measure)/(*warmup))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	n.Run(*measure)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}

	r := report{
		Workload:         workload,
		WarmupCycles:     *warmup,
		MeasureCycles:    *measure,
		CPUs:             runtime.NumCPU(),
		CycSec:           float64(*measure) / elapsed.Seconds(),
		MallocsPerCycle:  float64(after.Mallocs-before.Mallocs) / float64(*measure),
		AllocBytesPerCyc: float64(after.TotalAlloc-before.TotalAlloc) / float64(*measure),
	}
	r.BaselineCycSec = resolveBaseline(*baseline, *out, r.CycSec)
	r.Speedup = r.CycSec / r.BaselineCycSec
	r.LowLoad = benchLowLoad(*injectRate, *warmup, *measure/4, *requireGate)
	r.Parallel = benchParallel(*workers, *warmup, *measure/4)
	r.LargeMesh = benchLargeMesh(*workers, *largeWarmup, *largeMeasure, *largeReps, *largeBaseline, *out, *requireLargeGate)

	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("%d cycles in %v: %.0f cycles/sec (baseline %.0f, speedup %.2fx), %.1f mallocs/cycle",
		*measure, elapsed.Round(time.Millisecond), r.CycSec, r.BaselineCycSec, r.Speedup, r.MallocsPerCycle)
	for _, pt := range r.LowLoad.Points {
		log.Printf("low_load: %.0f%% load (rate %.5f): dense %.0f -> gated %.0f cycles/sec (%.2fx, floor %.1fx)",
			pt.LoadPct, pt.Rate, pt.DenseCycSec, pt.GatedCycSec, pt.Speedup, pt.MinSpeedup)
	}
	if p := r.Parallel; p != nil {
		if p.Skipped {
			log.Printf("parallel: skipped: %s", p.SkipReason)
		} else {
			log.Printf("parallel: %d workers on %s: %.0f -> %.0f cycles/sec (%.2fx, gate %v)",
				p.Workers, p.Workload, p.SerialCycSec, p.ParallelCycSec, p.Speedup, p.GateEnforced)
		}
		if *requireGate && !p.GateEnforced {
			log.Fatalf("-require-gate: parallel speedup gate did not apply (%d CPUs, %d effective workers; need >= 4 of each)",
				runtime.NumCPU(), p.Workers)
		}
	}
	if lm := r.LargeMesh; lm != nil {
		log.Printf("large_mesh: serial %.0f cycles/sec (pre-arena baseline %.0f, %.2fx, gate %v); parallel %s",
			lm.CycSec, lm.BaselineCycSec, lm.Speedup, lm.GateEnforced, largeMeshParallelSummary(lm))
		if *requireLargeGate {
			if !lm.GateEnforced {
				log.Fatal("-require-large-gate: no recorded pre-arena baseline to gate against (pass -large-baseline or point -o at a file carrying large_mesh.baseline_cycles_per_sec)")
			}
			if !lm.ParallelGate {
				log.Fatalf("-require-large-gate: large-mesh parallel gate did not apply (%d CPUs, %d effective workers; need >= 4 of each)",
					runtime.NumCPU(), lm.Workers)
			}
		}
	}
}

// largeMeshParallelSummary formats the sharded half of the large_mesh log
// line.
func largeMeshParallelSummary(lm *largeMeshReport) string {
	if lm.ParallelSkip != "" {
		return "skipped: " + lm.ParallelSkip
	}
	return fmt.Sprintf("%d workers %.0f cycles/sec (%.2fx, gate %v)",
		lm.Workers, lm.ParallelCycSec, lm.ParallelSpeedup, lm.ParallelGate)
}

// mesh16Config is the 16x16 VIX mesh configuration shared by the
// low-load and parallel sections.
func mesh16Config() network.Config {
	topo := topology.NewMesh(16, 16)
	return network.Config{
		Topology: topo,
		Router: router.Config{
			Ports: topo.Radix, VCs: 6, VirtualInputs: 2, BufDepth: 5,
			AllocKind: alloc.KindSeparableIF, Policy: router.PolicyBalanced,
		},
		Pattern: traffic.NewUniform(topo.NumNodes),
		Seed:    1,
	}
}

// mesh16Saturation is the measured saturation throughput of the
// mesh16Config workload under MaxInjection (packets/node/cycle, 5000
// measured cycles after 3000 warmup): the reference the low_load
// section's load percentages are fractions of. Remeasure with
// MaxInjection if the router pipeline changes.
const mesh16Saturation = 0.0558

// benchLowLoad times the 16x16 mesh serially at fractions of its
// measured saturation throughput, with the activity gate on and off,
// and verifies the two produce identical statistics at every point.
// The >= 5x floor is enforced at the deepest point; the 10% and 30%
// points are recorded for the physics-bounded ratios the section's doc
// comment derives. A custom -inject-rate point carries no floor, so
// -require-gate refuses it: CI must bench the gated points.
func benchLowLoad(injectRate float64, warmup, measure int, requireGate bool) *lowLoadReport {
	const workload = "16x16 mesh, if:2 (VIX), 6 VCs, uniform random, seed 1, serial"
	rep := &lowLoadReport{
		Workload:      workload,
		WarmupCycles:  warmup,
		MeasureCycles: measure,
		SaturationPkt: mesh16Saturation,
	}
	// The 2% floor was 5x against the pre-arena dense loop; the arena
	// pass made idle routers nearly free in the dense path too (the
	// vaPending early-exit skips VC allocation outright when nothing is
	// pending), so the gated/dense ratio legitimately shrank while both
	// absolute numbers improved. 3x still pins a real worklist benefit.
	points := []lowLoadPoint{
		{LoadPct: 2, MinSpeedup: 3},
		{LoadPct: 10},
		{LoadPct: 30},
	}
	if injectRate > 0 {
		if requireGate {
			log.Fatalf("-require-gate: a custom -inject-rate %v point carries no speedup floor; drop one of the flags", injectRate)
		}
		points = []lowLoadPoint{{LoadPct: 100 * injectRate / mesh16Saturation, Rate: injectRate}}
	}
	run := func(rate float64, disableGate bool) (float64, stats.Snapshot) {
		cfg := mesh16Config()
		cfg.InjectionRate = rate
		cfg.DisableActivityGate = disableGate
		n, err := network.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer n.Close()
		n.Warmup(warmup)
		start := time.Now()
		s := n.Measure(measure)
		return float64(measure) / time.Since(start).Seconds(), s
	}
	for _, pt := range points {
		if pt.Rate == 0 {
			pt.Rate = mesh16Saturation * pt.LoadPct / 100
		}
		var gatedSnap, denseSnap stats.Snapshot
		pt.GatedCycSec, gatedSnap = run(pt.Rate, false)
		pt.DenseCycSec, denseSnap = run(pt.Rate, true)
		pt.Speedup = pt.GatedCycSec / pt.DenseCycSec
		pt.StatsIdentical = gatedSnap == denseSnap
		if !pt.StatsIdentical {
			log.Fatalf("activity gate diverged at %.0f%% load (rate %.5f): gated stats differ from dense\ngated: %+v\ndense: %+v",
				pt.LoadPct, pt.Rate, gatedSnap, denseSnap)
		}
		if pt.MinSpeedup > 0 && pt.Speedup < pt.MinSpeedup {
			log.Fatalf("low-load speedup gate failed at %.0f%% load: %.2fx gated vs dense (want >= %.1fx)",
				pt.LoadPct, pt.Speedup, pt.MinSpeedup)
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep
}

// benchParallel times the 16x16 saturated VIX mesh serially and with the
// sharded tick, verifies the two produce identical statistics, and
// enforces the parallel speedup gate on hosts with enough CPUs. A worker
// request that resolves to 1 (e.g. GOMAXPROCS on a single-CPU machine)
// records the section as skipped with the reason instead of timing a
// pool-bypassing run whose speedup would be meaningless.
func benchParallel(workers, warmup, measure int) *parallelReport {
	const workload = "16x16 mesh, if:2 (VIX), 6 VCs, uniform random, max injection, seed 1"
	build := func(w int) *network.Network {
		cfg := mesh16Config()
		cfg.MaxInjection = true
		cfg.Workers = w
		n, err := network.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	run := func(w int) (float64, stats.Snapshot, int) {
		n := build(w)
		defer n.Close()
		n.Warmup(warmup)
		start := time.Now()
		s := n.Measure(measure)
		return float64(measure) / time.Since(start).Seconds(), s, n.Workers()
	}

	probe := build(workers)
	eff := probe.Workers()
	probe.Close()
	if eff < 2 {
		return &parallelReport{
			Workload: workload,
			Workers:  eff,
			Skipped:  true,
			SkipReason: fmt.Sprintf("worker request %d resolves to %d effective worker on a %d-CPU host; the pool is bypassed and a \"parallel\" timing would be meaningless",
				workers, eff, runtime.NumCPU()),
		}
	}

	serialCycSec, serialSnap, _ := run(1)
	parallelCycSec, parallelSnap, eff := run(workers)
	p := &parallelReport{
		Workload:       workload,
		Workers:        eff,
		WarmupCycles:   warmup,
		MeasureCycles:  measure,
		SerialCycSec:   serialCycSec,
		ParallelCycSec: parallelCycSec,
		Speedup:        parallelCycSec / serialCycSec,
		StatsIdentical: serialSnap == parallelSnap,
		GateEnforced:   runtime.NumCPU() >= 4 && eff >= 4,
	}
	if !p.StatsIdentical {
		log.Fatalf("parallel tick diverged: workers=%d stats differ from serial\nserial:   %+v\nparallel: %+v",
			p.Workers, serialSnap, parallelSnap)
	}
	if p.GateEnforced && p.Speedup < 1.8 {
		log.Fatalf("parallel speedup gate failed: %.2fx with %d workers on %d CPUs (want >= 1.8x)",
			p.Speedup, p.Workers, runtime.NumCPU())
	}
	return p
}

// benchLargeMesh times the 32x32 saturated VIX mesh — the scale the
// arena/SoA hot-path work targets — serially (best of reps) and with the
// sharded tick, verifying byte-identical statistics between the two. The
// serial result gates >= 1.4x against the recorded pre-arena baseline
// when one is available (flag or carry-over); the sharded result gates
// >= 1.8x against this run's serial best on multi-core hosts.
func benchLargeMesh(workers, warmup, measure, reps int, baseline float64, out string, requireGate bool) *largeMeshReport {
	const workload = "32x32 mesh, if:2 (VIX), 6 VCs, uniform random, max injection, seed 1"
	build := func(w int) *network.Network {
		topo := topology.NewMesh(32, 32)
		cfg := network.Config{
			Topology: topo,
			Router: router.Config{
				Ports: topo.Radix, VCs: 6, VirtualInputs: 2, BufDepth: 5,
				AllocKind: alloc.KindSeparableIF, Policy: router.PolicyBalanced,
			},
			Pattern:      traffic.NewUniform(topo.NumNodes),
			MaxInjection: true,
			Seed:         1,
			Workers:      w,
		}
		n, err := network.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	run := func(w int) (float64, stats.Snapshot, int, runtime.MemStats, runtime.MemStats) {
		n := build(w)
		defer n.Close()
		n.Run(warmup)
		// Pre-size the latency sample array for the window (see the main
		// section): the warmup ejection rate predicts the window's packet
		// count, and sample bookkeeping must not pollute the allocation
		// counters this section gates on.
		ejected := int(n.Collector().Snapshot().PacketsEjected)
		n.Collector().Reset()
		if warmup > 0 {
			n.Collector().Reserve(2 * ejected * measure / warmup)
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		s := n.Measure(measure)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		return float64(measure) / elapsed.Seconds(), s, n.Workers(), before, after
	}

	lm := &largeMeshReport{
		Workload:      workload,
		WarmupCycles:  warmup,
		MeasureCycles: measure,
		Reps:          reps,
	}
	var serialSnap stats.Snapshot
	for i := 0; i < reps; i++ {
		c, s, _, before, after := run(1)
		if i == 0 {
			serialSnap = s
			lm.MallocsPerCycle = float64(after.Mallocs-before.Mallocs) / float64(measure)
			lm.AllocBytesPerCyc = float64(after.TotalAlloc-before.TotalAlloc) / float64(measure)
		} else if s != serialSnap {
			log.Fatalf("large_mesh: serial rep %d stats differ from rep 0 — determinism broken\nrep 0: %+v\nrep %d: %+v", i, serialSnap, i, s)
		}
		if c > lm.CycSec {
			lm.CycSec = c
		}
	}
	lm.BaselineCycSec, lm.GateEnforced = resolveLargeBaseline(baseline, out, lm.CycSec)
	lm.Speedup = lm.CycSec / lm.BaselineCycSec
	if lm.GateEnforced {
		lm.MinSpeedup = 1.4
		if lm.Speedup < lm.MinSpeedup {
			log.Fatalf("large_mesh serial gate failed: %.0f cycles/sec is %.2fx the recorded pre-arena baseline %.0f (want >= %.1fx)",
				lm.CycSec, lm.Speedup, lm.BaselineCycSec, lm.MinSpeedup)
		}
	}

	probe := build(workers)
	eff := probe.Workers()
	probe.Close()
	if eff < 2 {
		lm.Workers = eff
		lm.ParallelSkip = fmt.Sprintf("worker request %d resolves to %d effective worker on a %d-CPU host; the pool is bypassed and a \"parallel\" timing would be meaningless",
			workers, eff, runtime.NumCPU())
		lm.StatsIdentical = true // reps cross-checked above
		return lm
	}
	parallelCycSec, parallelSnap, eff, _, _ := run(workers)
	lm.Workers = eff
	lm.ParallelCycSec = parallelCycSec
	lm.ParallelSpeedup = parallelCycSec / lm.CycSec
	lm.StatsIdentical = parallelSnap == serialSnap
	lm.ParallelGate = runtime.NumCPU() >= 4 && eff >= 4
	if !lm.StatsIdentical {
		log.Fatalf("large_mesh: sharded tick diverged: workers=%d stats differ from serial\nserial:   %+v\nparallel: %+v",
			eff, serialSnap, parallelSnap)
	}
	if lm.ParallelGate && lm.ParallelSpeedup < 1.8 {
		log.Fatalf("large_mesh parallel speedup gate failed: %.2fx with %d workers on %d CPUs (want >= 1.8x)",
			lm.ParallelSpeedup, eff, runtime.NumCPU())
	}
	return lm
}

// resolveLargeBaseline picks the pre-arena reference for the large_mesh
// section and reports whether the >= 1.4x gate applies: an explicit flag
// wins; otherwise the existing output file's recorded baseline is carried
// over; with neither, the section records speedup 1.0 ungated.
func resolveLargeBaseline(flagVal float64, out string, measured float64) (float64, bool) {
	if flagVal > 0 {
		return flagVal, true
	}
	if out != "-" {
		if data, err := os.ReadFile(out); err == nil {
			var prev report
			if json.Unmarshal(data, &prev) == nil && prev.LargeMesh != nil && prev.LargeMesh.BaselineCycSec > 0 {
				return prev.LargeMesh.BaselineCycSec, true
			}
		}
	}
	return measured, false
}

// resolveBaseline picks the before-change reference: an explicit flag
// wins; otherwise the existing output file's baseline is carried over;
// a fresh file starts with the current measurement (speedup 1.0).
func resolveBaseline(flagVal float64, out string, measured float64) float64 {
	if flagVal > 0 {
		return flagVal
	}
	if out != "-" {
		if data, err := os.ReadFile(out); err == nil {
			var prev report
			if json.Unmarshal(data, &prev) == nil && prev.BaselineCycSec > 0 {
				return prev.BaselineCycSec
			}
		}
	}
	return measured
}
