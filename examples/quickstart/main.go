// Quickstart: simulate an 8x8 mesh twice — once with the conventional
// separable input-first allocator and once with VIX (two virtual inputs
// per port) — and print the latency and throughput of both under the same
// near-saturation load.
package main

import (
	"fmt"
	"log"

	"vix"
)

func run(virtualInputs int, policy vix.RouterConfig) vix.Snapshot {
	topo := vix.NewMeshTopology(8, 8)
	n, err := vix.NewNetwork(vix.NetworkConfig{
		Topology:      topo,
		Router:        policy,
		Pattern:       vix.NewUniformTraffic(topo.NumNodes),
		InjectionRate: 0.09, // packets/cycle/node, near mesh saturation
		PacketSize:    4,    // 512-bit packets over a 128-bit datapath
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	n.Warmup(2000)
	return n.Measure(6000)
}

func main() {
	baseline := vix.RouterConfig{
		Ports: 5, VCs: 6, VirtualInputs: 1, BufDepth: 5,
		AllocKind: vix.AllocSeparableIF, Policy: vix.PolicyMaxFree,
	}
	withVIX := baseline
	withVIX.VirtualInputs = 2
	withVIX.Policy = vix.PolicyBalanced // dimension-aware + load-balanced VC assignment

	base := run(1, baseline)
	vixRes := run(2, withVIX)

	fmt.Println("8x8 mesh, uniform random, 0.09 packets/cycle/node, 6 VCs x 5 flits")
	fmt.Printf("%-22s %12s %12s\n", "", "baseline IF", "VIX (k=2)")
	fmt.Printf("%-22s %12.2f %12.2f\n", "avg latency (cycles)", base.AvgLatency, vixRes.AvgLatency)
	fmt.Printf("%-22s %12.4f %12.4f\n", "flits/cycle/node", base.ThroughputFlits, vixRes.ThroughputFlits)
	fmt.Printf("%-22s %12.2f %12.2f\n", "fairness (max/min)", base.FairnessRatio, vixRes.FairnessRatio)
	fmt.Printf("\nVIX latency change at this load: %+.1f%%\n",
		100*(vixRes.AvgLatency/base.AvgLatency-1))
}
