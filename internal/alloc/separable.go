package alloc

import (
	"math/bits"

	"vix/internal/arb"
)

// SeparableIF is the input-first separable allocator. It allocates in two
// phases: one input arbiter per crossbar row selects a candidate VC among
// the row's sub-group, then one output arbiter per output port selects a
// winning row among the candidates requesting it.
//
// With Config.VirtualInputs = 1 this is the conventional baseline
// allocator (one winner per input port); with VirtualInputs = 2 it is the
// paper's VIX allocator, where two VCs of one port can win in the same
// cycle through different crossbar rows; with VirtualInputs = VCs it
// degenerates to the ideal VIX with per-VC crossbar inputs.
//
// Arbiter pointers follow iSLIP semantics: an input arbiter advances its
// pointer only when its candidate also wins output arbitration, so a VC
// that loses in phase two keeps priority the next cycle.
type SeparableIF struct {
	cfg        Config
	inputArbs  []arb.Arbiter // one per crossbar row, over GroupSize slots
	outputArbs []arb.Arbiter // one per output port, over Rows rows

	// scratch buffers reused across cycles to avoid per-cycle allocation.
	slotOf    []int32 // per vc: precomputed Config.Slot
	slotReq   []bool
	rowReq    []bool   // all-false between phase-two output arbitrations
	candidate []int    // per row: winning request index; stale for rows absent from outMask
	slotToReq []int    // per slot: offered request index, -1 if none
	outMask   []bitset // per output port: rows whose phase-one candidate requests it
	rowReqs   rowScratch
	grants    []Grant
}

// NewSeparableIF returns a separable input-first allocator for cfg.
// It panics if cfg is invalid.
func NewSeparableIF(cfg Config) *SeparableIF {
	mustValidate(cfg)
	s := &SeparableIF{
		cfg:       cfg,
		slotOf:    slotTable(cfg),
		slotReq:   make([]bool, cfg.GroupSize()),
		rowReq:    make([]bool, cfg.Rows()),
		candidate: make([]int, cfg.Rows()),
		slotToReq: make([]int, cfg.GroupSize()),
		outMask:   make([]bitset, cfg.Ports),
		rowReqs:   newRowScratch(cfg),
		grants:    make([]Grant, 0, cfg.Ports),
	}
	for i := range s.outMask {
		s.outMask[i] = newBitset(cfg.Rows())
	}
	s.inputArbs = make([]arb.Arbiter, cfg.Rows())
	for i := range s.inputArbs {
		s.inputArbs[i] = arb.NewRoundRobin(cfg.GroupSize())
	}
	s.outputArbs = make([]arb.Arbiter, cfg.Ports)
	for i := range s.outputArbs {
		s.outputArbs[i] = arb.NewRoundRobin(cfg.Rows())
	}
	return s
}

// Name implements Allocator. The name is the registry Kind ("if")
// regardless of geometry; whether the crossbar is a VIX one is carried by
// Config.VirtualInputs, not by the allocator's identity.
func (s *SeparableIF) Name() string { return "if" }

// Reset implements Allocator.
func (s *SeparableIF) Reset() {
	for _, a := range s.inputArbs {
		a.Reset()
	}
	for _, a := range s.outputArbs {
		a.Reset()
	}
}

// Allocate implements Allocator. The returned slice is scratch, valid
// until the next Allocate or Reset call.
//
//vixlint:hot
func (s *SeparableIF) Allocate(rs *RequestSet) []Grant {
	rows := s.rowReqs.group(rs)

	// Phase one: each occupied crossbar row's input arbiter picks one VC.
	// The occupancy walk visits rows in ascending order — exactly the
	// rows the dense 0..Rows loop would have worked on — and sorts each
	// candidate into its output's packed row mask as it is chosen.
	// Candidate entries of skipped rows go stale, which is safe: phase
	// two reads candidate[row] only for rows present in a mask.
	for wi, w := range s.rowReqs.occupied() {
		for ; w != 0; w &= w - 1 {
			row := wi<<6 + bits.TrailingZeros64(w)
			for i := range s.slotReq {
				s.slotReq[i] = false
			}
			// Map request indices onto arbiter slots.
			slotToReq := s.fillSlots(rows[row], rs)
			for slot, reqIdx := range slotToReq {
				s.slotReq[slot] = reqIdx >= 0
			}
			if slot := s.inputArbs[row].Arbitrate(s.slotReq); slot >= 0 {
				reqIdx := slotToReq[slot]
				s.candidate[row] = reqIdx
				s.outMask[rs.Requests[reqIdx].OutPort].set(row)
			}
		}
	}

	// Phase two: each output arbiter picks one row among the candidates
	// requesting it. The packed mask replaces the old scan of every
	// row's candidate per output — O(candidates) total instead of
	// O(Ports x Rows) — and the expanded rowReq bits presented to the
	// arbiter are identical to the dense scan's, so arbitration (and the
	// grant sequence) is unchanged.
	s.grants = s.grants[:0]
	for out := 0; out < s.cfg.Ports; out++ {
		mask := s.outMask[out]
		any := false
		for wi, w := range mask {
			for ; w != 0; w &= w - 1 {
				s.rowReq[wi<<6+bits.TrailingZeros64(w)] = true
				any = true
			}
		}
		if !any {
			continue
		}
		row := s.outputArbs[out].Arbitrate(s.rowReq)
		req := rs.Requests[s.candidate[row]]
		s.grants = append(s.grants, Grant{Req: s.candidate[row], OutPort: out, Row: row})
		// iSLIP pointer update: both arbiters advance only on a grant.
		s.outputArbs[out].Ack(row)
		s.inputArbs[row].Ack(int(s.slotOf[req.VC]))
		// Restore the all-false rowReq invariant and drain the mask for
		// the next cycle.
		for wi, w := range mask {
			if w == 0 {
				continue
			}
			for ; w != 0; w &= w - 1 {
				s.rowReq[wi<<6+bits.TrailingZeros64(w)] = false
			}
			mask[wi] = 0
		}
	}
	return s.grants
}

// fillSlots maps each input-arbiter slot of a row to the index of the
// request offered by the VC in that slot, or -1. At most one request per
// VC is assumed (callers offer one request per head flit). The returned
// slice is the allocator's scratch, valid until the next call.
func (s *SeparableIF) fillSlots(reqIdxs []int, rs *RequestSet) []int {
	for i := range s.slotToReq {
		s.slotToReq[i] = -1
	}
	for _, idx := range reqIdxs {
		slot := int(s.slotOf[rs.Requests[idx].VC])
		if s.slotToReq[slot] < 0 {
			s.slotToReq[slot] = idx
		}
	}
	return s.slotToReq
}
