// Command routerbench regenerates Figure 7: switch allocation efficiency
// of a single router in isolation, for radices 5, 8, and 10 under
// separable input-first (IF), wavefront (WF), augmenting-path (AP), VIX,
// and ideal allocation, with every VC injected at maximum rate.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"text/tabwriter"

	"vix/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("routerbench: ")
	var (
		warmup     = flag.Int("warmup", 2000, "warmup cycles")
		measure    = flag.Int("measure", 20000, "measurement cycles")
		seed       = flag.Uint64("seed", 1, "random seed")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the benchmark to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	p := experiments.DefaultParams()
	p.Warmup, p.Measure, p.Seed = *warmup, *measure, *seed
	rows, err := experiments.Figure7(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 7: switch allocation efficiency for a single router")
	fmt.Println("(6 VCs/port, single-flit packets, uniform outputs, max injection)")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "radix\tscheme\tflits/cycle\tefficiency\tvs IF")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%s\t%.3f\t%.1f%%\t%+.1f%%\n",
			r.Radix, r.Scheme, r.FlitsPerCycle, 100*r.Efficiency, 100*(r.GainOverIF-1))
	}
	w.Flush()
}
