package network

import (
	"fmt"
	"testing"

	"vix/internal/alloc"
	"vix/internal/router"
	"vix/internal/topology"
)

// saturatedMesh builds the workload every Figure 8 sweep spends its
// cycles in: an 8x8 VIX mesh under saturated uniform-random load.
func saturatedMesh(tb testing.TB) *Network {
	return saturatedMeshWorkers(tb, 1)
}

// saturatedMeshWorkers is saturatedMesh with a parallel-tick worker count.
func saturatedMeshWorkers(tb testing.TB, workers int) *Network {
	tb.Helper()
	topo := topology.NewMesh(8, 8)
	cfg := meshConfig(topo, alloc.KindSeparableIF, 2, router.PolicyBalanced)
	cfg.InjectionRate = 0
	cfg.MaxInjection = true
	cfg.Seed = 1
	cfg.Workers = workers
	n, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return n
}

// TestSteadyStateZeroAllocs pins the headline guarantee of the memory
// discipline work: once the scratch buffers and the flit pool have grown
// to their high-water marks, Network.Step performs zero heap allocations
// per cycle — on the serial loop and on the sharded parallel tick alike
// (shards store Tick's slice headers and the pool reuses parked workers,
// so neither phase allocates). The run is fully deterministic (fixed
// seed), so this either always passes or always fails for a given code
// state.
func TestSteadyStateZeroAllocs(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			n := saturatedMeshWorkers(t, workers)
			defer n.Close()
			n.Run(8000)
			n.Collector().Reset()
			avg := testing.AllocsPerRun(200, func() { n.Step() })
			if avg != 0 {
				t.Fatalf("Network.Step allocates %v times per cycle in steady state; want 0", avg)
			}
		})
	}
}

// BenchmarkNetworkStep measures the serial cycle loop's cost under the
// saturated VIX workload; the allocation counter must stay at 0.
func BenchmarkNetworkStep(b *testing.B) {
	n := saturatedMesh(b)
	n.Run(3000)
	n.Collector().Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
}

// BenchmarkNetworkStepParallel measures the sharded tick at a spread of
// worker counts on the same workload; compare against BenchmarkNetworkStep
// for parallel efficiency. Allocation counters must stay at 0 here too.
func BenchmarkNetworkStepParallel(b *testing.B) {
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			n := saturatedMeshWorkers(b, workers)
			defer n.Close()
			n.Run(3000)
			n.Collector().Reset()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Step()
			}
		})
	}
}
