package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"vix/internal/sim"
)

// This file implements the compiler escape gate behind `vixlint
// -escapes`. The zero-allocation cycle loop (DESIGN.md section 12)
// depends on the compiler keeping hot-path values on the stack; a
// refactor that makes a scratch slice or closure escape re-introduces
// per-cycle garbage without failing any test. The gate makes that
// regression loud:
//
//  1. Function declarations on the hot path carry a "//vixlint:hot"
//     marker (Network.Step, the shard job, Router.Tick, every
//     Allocate implementation). The gate expands each marked function
//     into its forward call-graph cone, so a helper extracted out of
//     Tick is covered without moving the marker.
//  2. `go build -gcflags=-m ./...` is run and its diagnostics parsed;
//     "escapes to heap" / "moved to heap" lines landing inside a
//     hot-cone function body are collected as (function, message)
//     entries with occurrence counts. Go replays -m diagnostics from
//     the build cache, so warm runs cost a cache probe, not a build.
//  3. The entries are diffed against the committed golden at
//     .vixlint/escapes.golden: a new or multiplied escape fails the
//     run with rule escape/new at the exact file:line and compiler
//     reason; an entry that no longer occurs fails with escape/gone so
//     the golden cannot rot. `vixlint -escapes -update-escapes`
//     regenerates the golden after a human audits the change.
//
// The golden records the go toolchain's major.minor version; escape
// analysis verdicts shift between releases, so under a different
// toolchain the diff is skipped (reported in EscapeStats.GoSkew)
// rather than failing on compiler drift nobody caused. Like the
// finding cache, the gate keys a warm-skip state file on the module
// content (every package's chained hash), the golden bytes and the
// toolchain version, so `make lint-bench`'s warm invocation analyzes
// nothing.

// hotDirective marks a function declaration whose forward call cone
// the escape gate watches. It sits in the declaration's doc comment or
// on the line immediately above it.
const hotDirective = "//vixlint:hot"

// escapeGoldenName is the committed golden file under .vixlint/.
const escapeGoldenName = "escapes.golden"

// escapeStateName is the warm-skip state file under the cache dir.
const escapeStateName = "escapes-state.json"

// escapeCacheVersion invalidates the warm-skip state when the gate's
// parsing or diffing changes behaviour.
const escapeCacheVersion = "vixlint-escapes-1"

// EscapeOptions configures CheckEscapes.
type EscapeOptions struct {
	// Update regenerates the golden from the current compiler output
	// instead of diffing against it.
	Update bool
	// Cache enables the warm-skip state keyed on module content, golden
	// bytes and toolchain version.
	Cache bool
	// CacheDir overrides the state location; default <root>/.vixlint.
	CacheDir string
}

// EscapeStats reports how much work a CheckEscapes call performed.
type EscapeStats struct {
	// Packages is the number of module packages discovered.
	Packages int
	// Analyzed is 1 when the compiler was consulted and the diff ran,
	// 0 on a warm-skip hit (the module is never built or type-checked).
	Analyzed int
	// HotFuncs is the number of //vixlint:hot-marked declarations.
	HotFuncs int
	// ConeFuncs is the size of the expanded hot cone (markers plus
	// everything they transitively call inside the module).
	ConeFuncs int
	// Diags is how many escape diagnostics landed inside the hot cone.
	Diags int
	// Cached reports a warm-skip hit.
	Cached bool
	// GoSkew is non-empty when the golden was recorded under a
	// different toolchain major.minor and the diff was skipped.
	GoSkew string
}

// CheckEscapes runs the compiler escape gate over the module at root.
func CheckEscapes(root string, opts EscapeOptions) ([]Finding, EscapeStats, error) {
	var stats EscapeStats
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, stats, err
	}
	cacheDir := opts.CacheDir
	if cacheDir == "" {
		cacheDir = filepath.Join(absRoot, cacheDirName)
	}
	goldenPath := filepath.Join(absRoot, cacheDirName, escapeGoldenName)
	goldenBytes, goldenErr := os.ReadFile(goldenPath)

	idx, err := indexModule(absRoot)
	if err != nil {
		return nil, stats, err
	}
	stats.Packages = len(idx.packages)
	stateKey := escapeStateKey(idx, goldenBytes)
	if opts.Cache && !opts.Update {
		if st, ok := loadEscapeState(cacheDir, stateKey); ok {
			stats.Cached = true
			stats.GoSkew = st.GoSkew
			return st.resolve(absRoot), stats, nil
		}
	}
	stats.Analyzed = 1

	if goldenErr != nil && !opts.Update {
		fs := []Finding{{
			Pos:  token.Position{Filename: goldenPath, Line: 1},
			Rule: "escape/golden",
			Msg:  "no committed escape golden; run `vixlint -escapes -update-escapes` and commit " + filepath.Join(cacheDirName, escapeGoldenName),
		}}
		return fs, stats, nil
	}

	mod, err := Load(absRoot)
	if err != nil {
		return nil, stats, err
	}
	graph := buildCallGraph(mod)
	hot, markerFindings := collectHotFuncs(mod, graph)
	stats.HotFuncs = len(hot)
	cone := hotCone(graph, hot)
	stats.ConeFuncs = len(cone)
	spans := coneSpans(mod, graph, cone)

	diags, err := buildEscapeDiags(absRoot)
	if err != nil {
		return nil, stats, err
	}
	live := make(map[string]int)
	firstPos := make(map[string]token.Position)
	for _, d := range diags {
		fn := spans.enclosing(d.pos.Filename, d.pos.Line)
		if fn == nil {
			continue
		}
		stats.Diags++
		k := funcDisplay(fn) + "\t" + d.msg
		if live[k] == 0 {
			firstPos[k] = d.pos
		}
		live[k]++
	}

	fs := append([]Finding(nil), markerFindings...)
	if opts.Update {
		if err := writeEscapeGolden(goldenPath, live); err != nil {
			return nil, stats, err
		}
		goldenBytes, _ = os.ReadFile(goldenPath)
		stateKey = escapeStateKey(idx, goldenBytes)
	} else {
		golden, err := parseEscapeGolden(goldenPath, goldenBytes)
		if err != nil {
			return nil, stats, err
		}
		if golden.goVersion != goMinorVersion() {
			stats.GoSkew = fmt.Sprintf("golden recorded under %s, running %s; escape diff skipped",
				golden.goVersion, goMinorVersion())
		} else {
			fs = append(fs, diffEscapes(goldenPath, golden, live, firstPos)...)
		}
	}
	sortFindings(fs)
	if opts.Cache {
		storeEscapeState(cacheDir, absRoot, stateKey, stats.GoSkew, fs)
	}
	return fs, stats, nil
}

// goMinorVersion reduces the running toolchain version to major.minor
// ("go1.24"), the granularity at which escape-analysis verdicts drift.
func goMinorVersion() string {
	v := runtime.Version()
	if !strings.HasPrefix(v, "go") {
		return v // development toolchain; recorded verbatim
	}
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return v
	}
	return parts[0] + "." + parts[1]
}

// collectHotFuncs finds every //vixlint:hot-marked declaration. A
// marker that fails to attach to a function is reported (rule
// escape/marker) rather than silently watching nothing.
func collectHotFuncs(mod *Module, g *callGraph) ([]*types.Func, []Finding) {
	type marker struct {
		pos  token.Position
		used bool
	}
	byFile := make(map[string][]*marker)
	for _, pkg := range mod.Packages() {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, cm := range cg.List {
					if name, _, ok := classifyDirective(cm.Text); !ok || name != "hot" {
						continue
					}
					p := mod.Fset.Position(cm.Pos())
					byFile[p.Filename] = append(byFile[p.Filename], &marker{pos: p})
				}
			}
		}
	}
	var hot []*types.Func
	for _, fn := range g.funcs {
		node := g.nodes[fn]
		decl := node.decl
		start := mod.Fset.Position(decl.Pos())
		lo, hi := start.Line-1, start.Line-1
		if decl.Doc != nil {
			lo = mod.Fset.Position(decl.Doc.Pos()).Line
		}
		for _, m := range byFile[start.Filename] {
			if m.pos.Line >= lo && m.pos.Line <= hi {
				m.used = true
				hot = append(hot, fn)
			}
		}
	}
	var fs []Finding
	for _, file := range sim.SortedKeys(byFile) {
		for _, m := range byFile[file] {
			if !m.used {
				fs = append(fs, Finding{
					Pos:  m.pos,
					Rule: "escape/marker",
					Msg:  "vixlint:hot marker is not attached to a function declaration (put it in the doc comment or directly above the func line)",
				})
			}
		}
	}
	return hot, fs
}

// hotCone expands the marked functions into their forward call cone:
// everything a hot function can transitively call inside the module is
// hot too, so extracting a helper never silently leaves the gate.
func hotCone(g *callGraph, hot []*types.Func) map[*types.Func]bool {
	cone := make(map[*types.Func]bool)
	queue := append([]*types.Func(nil), hot...)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if cone[fn] {
			continue
		}
		cone[fn] = true
		if node := g.nodes[fn]; node != nil {
			queue = append(queue, node.callees...)
		}
	}
	return cone
}

// fnSpan is one cone function's body line range in its file.
type fnSpan struct {
	start, end int
	fn         *types.Func
}

// fnSpans indexes cone functions by file for diagnostic attribution.
type fnSpans map[string][]fnSpan

// coneSpans builds the file -> body-range index for the cone.
func coneSpans(mod *Module, g *callGraph, cone map[*types.Func]bool) fnSpans {
	spans := make(fnSpans)
	for _, fn := range g.funcs {
		if !cone[fn] {
			continue
		}
		decl := g.nodes[fn].decl
		start := mod.Fset.Position(decl.Pos())
		end := mod.Fset.Position(decl.End())
		spans[start.Filename] = append(spans[start.Filename], fnSpan{start.Line, end.Line, fn})
	}
	for _, ss := range spans {
		sort.Slice(ss, func(i, j int) bool { return ss[i].start < ss[j].start })
	}
	return spans
}

// enclosing returns the cone function whose body contains file:line,
// or nil. Nested func literals belong to their enclosing declaration,
// matching how the write-effect pass folds literals into their decl.
func (s fnSpans) enclosing(file string, line int) *types.Func {
	var best *types.Func
	for _, sp := range s[file] {
		if sp.start <= line && line <= sp.end {
			best = sp.fn // innermost declaration wins; decls never nest, so last match is it
		}
		if sp.start > line {
			break
		}
	}
	return best
}

// escapeDiag is one parsed compiler diagnostic.
type escapeDiag struct {
	pos token.Position
	msg string
}

// buildEscapeDiags runs `go build -gcflags=-m ./...` at root and
// returns the heap-escape diagnostics. The build writes diagnostics to
// stderr and exits 0; a non-zero exit means the module does not
// compile, which is a hard error, not a finding.
func buildEscapeDiags(root string) ([]escapeDiag, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		tail := string(out)
		if len(tail) > 2048 {
			tail = tail[len(tail)-2048:]
		}
		return nil, fmt.Errorf("lint: go build -gcflags=-m failed: %v\n%s", err, tail)
	}
	var diags []escapeDiag
	for _, line := range strings.Split(string(out), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		msgIdx := strings.Index(line, ": ")
		if msgIdx < 0 {
			continue
		}
		msg := line[msgIdx+2:]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		parts := strings.SplitN(line[:msgIdx], ":", 3)
		if len(parts) < 2 {
			continue
		}
		ln, err1 := strconv.Atoi(parts[1])
		col := 0
		if len(parts) == 3 {
			col, _ = strconv.Atoi(parts[2])
		}
		if err1 != nil {
			continue
		}
		file := parts[0]
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, filepath.FromSlash(file))
		}
		diags = append(diags, escapeDiag{
			pos: token.Position{Filename: file, Line: ln, Column: col},
			msg: msg,
		})
	}
	return diags, nil
}

// escapeGolden is the parsed committed golden.
type escapeGolden struct {
	goVersion string
	counts    map[string]int // "funcDisplay\tmsg" -> occurrence count
	lineOf    map[string]int // entry -> golden file line, for gone reports
}

// parseEscapeGolden reads the golden format: '#' comments, one
// "go <major.minor>" header, then "count<TAB>function<TAB>message"
// lines.
func parseEscapeGolden(path string, data []byte) (*escapeGolden, error) {
	g := &escapeGolden{counts: make(map[string]int), lineOf: make(map[string]int)}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if v, ok := strings.CutPrefix(line, "go "); ok {
			g.goVersion = strings.TrimSpace(v)
			continue
		}
		fields := strings.SplitN(line, "\t", 3)
		if len(fields) != 3 {
			return nil, fmt.Errorf("lint: %s:%d: malformed golden line %q", path, i+1, line)
		}
		n, err := strconv.Atoi(fields[0])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("lint: %s:%d: bad escape count %q", path, i+1, fields[0])
		}
		key := fields[1] + "\t" + fields[2]
		g.counts[key] = n
		g.lineOf[key] = i + 1
	}
	if g.goVersion == "" {
		return nil, fmt.Errorf("lint: %s: golden is missing its `go <version>` header", path)
	}
	return g, nil
}

// writeEscapeGolden renders and writes the golden for the current
// compiler output.
func writeEscapeGolden(path string, live map[string]int) error {
	var b strings.Builder
	b.WriteString("# vixlint escape-gate golden: heap escapes inside //vixlint:hot call cones.\n")
	b.WriteString("# Each line is count<TAB>function<TAB>compiler message. Audit any diff, then\n")
	b.WriteString("# regenerate with `vixlint -escapes -update-escapes`.\n")
	b.WriteString("go " + goMinorVersion() + "\n")
	for _, k := range sim.SortedKeys(live) {
		fmt.Fprintf(&b, "%d\t%s\n", live[k], k)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// diffEscapes compares live compiler output against the golden.
func diffEscapes(goldenPath string, golden *escapeGolden, live map[string]int, firstPos map[string]token.Position) []Finding {
	var fs []Finding
	for _, k := range sim.SortedKeys(live) {
		if live[k] <= golden.counts[k] {
			continue
		}
		fn, msg, _ := strings.Cut(k, "\t")
		detail := fmt.Sprintf("%d now vs %d in golden", live[k], golden.counts[k])
		fs = append(fs, Finding{
			Pos:  firstPos[k],
			Rule: "escape/new",
			Msg: fmt.Sprintf("new heap escape on the hot path: %s: %s (%s); the zero-alloc cycle loop depends on this staying on the stack — fix it or audit and regenerate the golden with -update-escapes",
				fn, msg, detail),
		})
	}
	for _, k := range sim.SortedKeys(golden.counts) {
		if live[k] >= golden.counts[k] {
			continue
		}
		fn, msg, _ := strings.Cut(k, "\t")
		fs = append(fs, Finding{
			Pos:  token.Position{Filename: goldenPath, Line: golden.lineOf[k]},
			Rule: "escape/gone",
			Msg: fmt.Sprintf("golden records a hot-path escape that no longer occurs: %s: %s (%d in golden, %d now); regenerate with -update-escapes so the baseline cannot rot",
				fn, msg, golden.counts[k], live[k]),
		})
	}
	return fs
}

// escapeState is the stored warm-skip state.
type escapeState struct {
	Key      string          `json:"key"`
	GoSkew   string          `json:"go_skew,omitempty"`
	Findings []cachedFinding `json:"findings"`
}

// resolve converts stored findings back to absolute positions.
func (st *escapeState) resolve(root string) []Finding {
	e := cacheEntry{Findings: st.Findings}
	return e.resolve(root)
}

// escapeStateKey chains everything the gate's verdict depends on: the
// gate version, the toolchain, the golden bytes, and every package's
// content-hash key (which already covers hot markers, since markers
// live in file content).
func escapeStateKey(idx *moduleIndex, golden []byte) string {
	h := sha256.New()
	io.WriteString(h, escapeCacheVersion+"\n")
	io.WriteString(h, goMinorVersion()+"\n")
	gsum := sha256.Sum256(golden)
	io.WriteString(h, hex.EncodeToString(gsum[:])+"\n")
	for _, p := range idx.packages {
		fmt.Fprintf(h, "%s %s\n", p.path, p.key)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// loadEscapeState returns the stored state if its key matches.
func loadEscapeState(dir, key string) (*escapeState, bool) {
	data, err := os.ReadFile(filepath.Join(dir, escapeStateName))
	if err != nil {
		return nil, false
	}
	var st escapeState
	if json.Unmarshal(data, &st) != nil || st.Key != key {
		return nil, false
	}
	return &st, true
}

// storeEscapeState writes the warm-skip state. Like the finding cache,
// failures are ignored: a read-only checkout must not fail the gate.
func storeEscapeState(dir, root, key, goSkew string, fs []Finding) {
	st := escapeState{Key: key, GoSkew: goSkew, Findings: []cachedFinding{}}
	for _, f := range fs {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
		st.Findings = append(st.Findings, cachedFinding{
			File:   name,
			Line:   f.Pos.Line,
			Column: f.Pos.Column,
			Rule:   f.Rule,
			Msg:    f.Msg,
		})
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	data, err := json.MarshalIndent(&st, "", "\t")
	if err != nil {
		return
	}
	os.WriteFile(filepath.Join(dir, escapeStateName), data, 0o644)
}
