// Package harness turns a grid of independent experiment points into a
// deterministic parallel job engine. Every evaluation in EXPERIMENTS.md
// is a fan-out of self-contained simulations — one (scheme, rate,
// topology) point per run — and the harness is the one place in the
// repository where those runs are allowed to execute concurrently.
//
// The contract that keeps parallelism compatible with the simulator's
// reproducibility story has three parts:
//
//   - Self-contained jobs. A Job owns everything its simulation needs,
//     including its RNG seed (derived up front via sim.DeriveSeed from
//     the job's labels, never from run order). Jobs share no mutable
//     state, so scheduling cannot reach results.
//
//   - Canonical merge. Run returns results in job order regardless of
//     worker count or completion order, so an artifact rendered from the
//     returned slice is byte-identical for -parallel=1 and -parallel=N.
//
//   - Resumable manifest. With Options.Manifest set, every completed
//     job's result is appended to a JSONL checkpoint keyed by a content
//     hash of the job's spec. A rerun skips completed points and splices
//     their cached values into the merged output, so an interrupted grid
//     finishes exactly where an uninterrupted one would have.
//
// Jobs execute on a sim.Pool, the shared bounded worker pool that also
// powers the network's sharded parallel tick. When the effective worker
// count is one — an explicit -parallel=1, a one-job grid, or a
// single-CPU host — the pool runs every job inline on the calling
// goroutine, so serial grid runs pay no channel or goroutine overhead
// over the old one-point-at-a-time loops. Concurrency remains confined
// to the packages vixlint's determinism pass allowlists (see
// internal/lint); simulation packages stay goroutine-free.
package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"vix/internal/sim"
)

// Job is one self-contained experiment point of a grid.
type Job struct {
	// Name identifies the job in telemetry and error messages, e.g.
	// "sweep/if:2/0.05". Names need not be unique; IDs are.
	Name string

	// Spec is the canonical, JSON-serialisable description of the point.
	// Its encoding is content-hashed into the job's manifest ID, so it
	// must capture everything that can change the result — allocator,
	// k, rate, topology, simulation windows, and the derived sub-seed.
	Spec any

	// Cycles is the number of simulated cycles the job will run
	// (warmup + measurement), used for cycles/sec telemetry. Zero is
	// fine for non-simulation jobs.
	Cycles int64

	// Run executes the point and returns a JSON-serialisable result.
	// It must be deterministic in Spec alone: no shared state, no
	// wall-clock reads, no dependence on scheduling. The context is
	// cancelled when the run is being abandoned; long jobs may honour
	// it, short ones may ignore it.
	Run func(ctx context.Context) (any, error)
}

// Result is one job's outcome, in the canonical (input) order.
type Result struct {
	// Index is the job's position in the input slice.
	Index int
	// ID is the content hash of the job's spec — its manifest key.
	ID string
	// Name echoes Job.Name.
	Name string
	// Value is the JSON encoding of Run's return value. It is nil when
	// the run failed or was interrupted before the job started.
	Value json.RawMessage
	// Cached reports that Value was spliced from the manifest instead
	// of being recomputed.
	Cached bool
	// Telemetry records the job's wall-clock cost. For cached results
	// it is the cost recorded when the job originally ran.
	Telemetry Telemetry
}

// Options configure a Run.
type Options struct {
	// Parallel is the worker count. Values <= 0 mean GOMAXPROCS.
	Parallel int

	// Manifest, when non-empty, is the path of the JSONL checkpoint.
	// Jobs whose IDs appear in it are skipped and their recorded values
	// spliced into the results; newly completed jobs are appended as
	// they finish, so an interrupted run can resume.
	Manifest string

	// OnDone, when non-nil, observes every result as it completes
	// (cached results are reported too, in job order, before any work
	// starts). It may be invoked concurrently from worker goroutines
	// and must not block for long; completion order is scheduling-
	// dependent and must never be used to build artifacts.
	OnDone func(Result)
}

// Serial returns the options for a single-worker, checkpoint-free run —
// the drop-in replacement for the old one-point-at-a-time loops.
func Serial() Options { return Options{Parallel: 1} }

// Decode unmarshals a result's value into T.
func Decode[T any](r Result) (T, error) {
	var v T
	if r.Value == nil {
		return v, fmt.Errorf("harness: job %s has no recorded value", r.Name)
	}
	if err := json.Unmarshal(r.Value, &v); err != nil {
		return v, fmt.Errorf("harness: decoding job %s: %w", r.Name, err)
	}
	return v, nil
}

// DecodeAll unmarshals every result's value, preserving order.
func DecodeAll[T any](rs []Result) ([]T, error) {
	out := make([]T, len(rs))
	for i, r := range rs {
		v, err := Decode[T](r)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Run executes the grid and returns results in job order. The returned
// slice always has len(jobs) entries; on error, entries whose jobs never
// ran have a nil Value. Completed jobs are checkpointed to the manifest
// (if configured) even when the run as a whole fails or is cancelled, so
// a rerun resumes rather than restarts.
func Run(ctx context.Context, jobs []Job, opt Options) ([]Result, error) {
	ids, err := jobIDs(jobs)
	if err != nil {
		return nil, err
	}
	var man *manifest
	if opt.Manifest != "" {
		man, err = openManifest(opt.Manifest)
		if err != nil {
			return nil, err
		}
		defer man.close()
	}

	results := make([]Result, len(jobs))
	var todo []int
	for i := range jobs {
		results[i] = Result{Index: i, ID: ids[i], Name: jobs[i].Name}
		if man != nil {
			if e, ok := man.lookup(ids[i]); ok {
				results[i].Value = e.Value
				results[i].Cached = true
				results[i].Telemetry = e.Telemetry
				if opt.OnDone != nil {
					opt.OnDone(results[i])
				}
				continue
			}
		}
		todo = append(todo, i)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu      sync.Mutex
		jobErrs []error
	)
	fail := func(err error) {
		mu.Lock()
		jobErrs = append(jobErrs, err)
		mu.Unlock()
		cancel() // fail fast: stop handing out new jobs
	}

	workers := opt.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers < 1 {
		workers = 1
	}

	// The pool runs jobs by their position in todo. With one effective
	// worker — explicit -parallel=1, a one-job grid, or a single-CPU host
	// — Pool.Do executes every job inline on this goroutine: no feed
	// channel, no worker spawn, no handoff overhead, so a serial grid run
	// costs what the old one-point-at-a-time loop cost.
	pool := sim.NewPool(workers)
	defer pool.Close()
	pool.Do(len(todo), func(k int) {
		i := todo[k]
		if runCtx.Err() != nil {
			return
		}
		res, err := runJob(runCtx, jobs[i], results[i])
		if err != nil {
			fail(err)
			return
		}
		if man != nil {
			if err := man.append(entry{ID: res.ID, Name: res.Name, Value: res.Value, Telemetry: res.Telemetry}); err != nil {
				fail(err)
				return
			}
		}
		results[i] = res
		if opt.OnDone != nil {
			opt.OnDone(res)
		}
	})

	if len(jobErrs) > 0 {
		return results, errors.Join(jobErrs...)
	}
	if err := ctx.Err(); err != nil {
		return results, fmt.Errorf("harness: run interrupted: %w", err)
	}
	return results, nil
}

// runJob executes one job and encodes its value and telemetry.
func runJob(ctx context.Context, job Job, res Result) (Result, error) {
	start := wallClock()
	v, err := job.Run(ctx)
	if err != nil {
		return res, fmt.Errorf("harness: job %s: %w", job.Name, err)
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return res, fmt.Errorf("harness: job %s: result not serialisable: %w", job.Name, err)
	}
	res.Value = raw
	res.Telemetry = newTelemetry(start, job.Cycles)
	return res, nil
}

// jobIDs hashes every job's spec, rejecting grids with duplicate points:
// two jobs with the same ID would alias one manifest entry and silently
// drop half the work on resume.
func jobIDs(jobs []Job) ([]string, error) {
	ids := make([]string, len(jobs))
	seen := make(map[string]int, len(jobs))
	for i, job := range jobs {
		id, err := jobID(job)
		if err != nil {
			return nil, err
		}
		if j, dup := seen[id]; dup {
			return nil, fmt.Errorf("harness: jobs %d (%s) and %d (%s) have identical specs; every grid point must be unique",
				j, jobs[j].Name, i, job.Name)
		}
		seen[id] = i
		ids[i] = id
	}
	return ids, nil
}
