// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a function that runs the necessary
// simulations and returns structured rows; the cmd/ tools print them and
// the root benchmark suite regenerates them under `go test -bench`.
//
// Experiment parameters default to the paper's configuration (Section 3:
// 64 nodes, 6 VCs x 5-flit buffers, 128-bit datapath, 4-flit packets,
// uniform random traffic) with simulation windows sized for a laptop.
package experiments

import (
	"fmt"

	"vix/internal/alloc"
	"vix/internal/network"
	"vix/internal/router"
	"vix/internal/stats"
	"vix/internal/topology"
	"vix/internal/traffic"
)

// Scheme is a network-level switch-allocation configuration under test.
type Scheme struct {
	Label  string
	Kind   alloc.Kind
	K      int // virtual inputs per port; 0 means "equal to VCs"
	Policy router.PolicyKind
}

// NetworkSchemes returns the four schemes of Section 4.1 in evaluation
// order: separable input-first, wavefront, augmented path, and VIX.
func NetworkSchemes() []Scheme {
	return []Scheme{
		{Label: "IF", Kind: alloc.KindSeparableIF, K: 1, Policy: router.PolicyMaxFree},
		{Label: "WF", Kind: alloc.KindWavefront, K: 1, Policy: router.PolicyMaxFree},
		{Label: "AP", Kind: alloc.KindAugmentingPath, K: 1, Policy: router.PolicyMaxFree},
		{Label: "VIX", Kind: alloc.KindSeparableIF, K: 2, Policy: router.PolicyBalanced},
	}
}

// Params are the common simulation knobs.
type Params struct {
	VCs        int
	BufDepth   int
	PacketSize int
	Warmup     int
	Measure    int
	Seed       uint64
	// TickWorkers is each simulation's parallel-tick width
	// (network.Config.Workers): 0 or 1 serial, negative GOMAXPROCS. A
	// wall-clock knob with byte-identical output, so it stays out of
	// every point's spec and never invalidates a manifest.
	TickWorkers int
}

// DefaultParams returns the paper's configuration with laptop-scale
// windows.
func DefaultParams() Params {
	return Params{VCs: 6, BufDepth: 5, PacketSize: 4, Warmup: 2000, Measure: 6000, Seed: 1}
}

// Scaled returns a copy with the simulation windows multiplied by f
// (benchmarks use f < 1 for quick runs).
func (p Params) Scaled(f float64) Params {
	q := p
	q.Warmup = int(float64(p.Warmup) * f)
	q.Measure = int(float64(p.Measure) * f)
	if q.Warmup < 100 {
		q.Warmup = 100
	}
	if q.Measure < 200 {
		q.Measure = 200
	}
	return q
}

// Topologies returns the paper's three 64-node topologies.
func Topologies() []*topology.Topology {
	return []*topology.Topology{
		topology.NewMesh(8, 8),
		topology.NewCMesh(4, 4, 4),
		topology.NewFBfly(4, 4, 4),
	}
}

// buildConfig assembles a network config for a scheme.
func buildConfig(topo *topology.Topology, s Scheme, p Params, rate float64, maxInj bool) network.Config {
	k := s.K
	if k == 0 {
		k = p.VCs
	}
	return network.Config{
		Topology: topo,
		Router: router.Config{
			Ports: topo.Radix, VCs: p.VCs, VirtualInputs: k, BufDepth: p.BufDepth,
			AllocKind: s.Kind, Policy: s.Policy,
		},
		Pattern:       traffic.NewUniform(topo.NumNodes),
		InjectionRate: rate,
		MaxInjection:  maxInj,
		PacketSize:    p.PacketSize,
		Seed:          p.Seed,
		Workers:       p.TickWorkers,
	}
}

// runOne builds, warms up, and measures one configuration.
func runOne(topo *topology.Topology, s Scheme, p Params, rate float64, maxInj bool) (stats.Snapshot, error) {
	n, err := network.New(buildConfig(topo, s, p, rate, maxInj))
	if err != nil {
		return stats.Snapshot{}, fmt.Errorf("experiments: %s on %s: %w", s.Label, topo.Name, err)
	}
	defer n.Close()
	n.Warmup(p.Warmup)
	return n.Measure(p.Measure), nil
}

// SaturationThroughput measures accepted flits/cycle/node at maximum
// injection for the scheme on the topology.
func SaturationThroughput(topo *topology.Topology, s Scheme, p Params) (stats.Snapshot, error) {
	return runOne(topo, s, p, 0, true)
}
