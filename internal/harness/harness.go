// Package harness turns a grid of independent experiment points into a
// deterministic parallel job engine. Every evaluation in EXPERIMENTS.md
// is a fan-out of self-contained simulations — one (scheme, rate,
// topology) point per run — and the harness is the one place in the
// repository where those runs are allowed to execute concurrently.
//
// The contract that keeps parallelism compatible with the simulator's
// reproducibility story has three parts:
//
//   - Self-contained jobs. A Job owns everything its simulation needs,
//     including its RNG seed (derived up front via sim.DeriveSeed from
//     the job's labels, never from run order). Jobs share no mutable
//     state, so scheduling cannot reach results.
//
//   - Canonical merge. Run returns results in job order regardless of
//     worker count or completion order, so an artifact rendered from the
//     returned slice is byte-identical for -parallel=1 and -parallel=N.
//
//   - Content-addressed result store. With Options.Manifest (a file
//     path) or Options.Store (a shared *store.Store) set, every
//     completed job's result is appended to the store keyed by a content
//     hash of the job's name and spec (JobID). A rerun skips completed
//     points and splices their cached values into the merged output, so
//     an interrupted grid finishes exactly where an uninterrupted one
//     would have — and because the store is content-addressed rather
//     than run-scoped, any later grid, any other CLI, or the vixd
//     service can reuse the same entries: identical specs are served
//     without simulating. Concurrent Runs sharing one Store single-
//     flight: N in-flight requests for one spec simulate once.
//
// Jobs execute on a sim.Pool, the shared bounded worker pool that also
// powers the network's sharded parallel tick. When the effective worker
// count is one — an explicit -parallel=1, a one-job grid, or a
// single-CPU host — the pool runs every job inline on the calling
// goroutine, so serial grid runs pay no channel or goroutine overhead
// over the old one-point-at-a-time loops. Concurrency remains confined
// to the packages vixlint's determinism pass allowlists (see
// internal/lint); simulation packages stay goroutine-free.
package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"vix/internal/sim"
	"vix/internal/store"
)

// Job is one self-contained experiment point of a grid.
type Job struct {
	// Name identifies the job in telemetry and error messages, e.g.
	// "sweep/if:2/0.05". Names need not be unique; IDs are.
	Name string

	// Spec is the canonical, JSON-serialisable description of the point.
	// Its encoding is content-hashed into the job's manifest ID, so it
	// must capture everything that can change the result — allocator,
	// k, rate, topology, simulation windows, and the derived sub-seed.
	Spec any

	// Cycles is the number of simulated cycles the job will run
	// (warmup + measurement), used for cycles/sec telemetry. Zero is
	// fine for non-simulation jobs.
	Cycles int64

	// Run executes the point and returns a JSON-serialisable result.
	// It must be deterministic in Spec alone: no shared state, no
	// wall-clock reads, no dependence on scheduling. The context is
	// cancelled when the run is being abandoned; long jobs may honour
	// it, short ones may ignore it.
	Run func(ctx context.Context) (any, error)
}

// Result is one job's outcome, in the canonical (input) order.
type Result struct {
	// Index is the job's position in the input slice.
	Index int
	// ID is the content hash of the job's name and spec — its store key.
	ID string
	// Name echoes Job.Name.
	Name string
	// Value is the JSON encoding of Run's return value. It is nil when
	// the run failed or was interrupted before the job started.
	Value json.RawMessage
	// Cached reports that Value was served from the result store — an
	// entry recorded by an earlier run, or another in-flight request for
	// the same spec — instead of being simulated by this job.
	Cached bool
	// Telemetry records the job's wall-clock cost. For cached results
	// it is the cost recorded when the job originally ran.
	Telemetry Telemetry
}

// Options configure a Run.
type Options struct {
	// Parallel is the worker count. Values <= 0 mean GOMAXPROCS.
	Parallel int

	// Manifest, when non-empty, is the path of the JSONL result store.
	// Jobs whose IDs appear in it are served from it instead of
	// simulating; newly completed jobs are appended as they finish, so
	// an interrupted run resumes and a later run — this CLI, another
	// CLI, or vixd pointed at the same file — reuses the entries.
	Manifest string

	// Store, when non-nil, is an already-open result store shared with
	// other Runs (the vixd service holds one store across every suite).
	// It takes precedence over Manifest and is not closed by Run.
	// Concurrent Runs sharing a Store single-flight identical specs.
	Store *store.Store

	// OnDone, when non-nil, observes every result as it completes
	// (cached results are reported too, as their jobs are claimed). It
	// may be invoked concurrently from worker goroutines and must not
	// block for long; completion order is scheduling-dependent and must
	// never be used to build artifacts.
	OnDone func(Result)
}

// Serial returns the options for a single-worker, checkpoint-free run —
// the drop-in replacement for the old one-point-at-a-time loops.
func Serial() Options { return Options{Parallel: 1} }

// Decode unmarshals a result's value into T.
func Decode[T any](r Result) (T, error) {
	var v T
	if r.Value == nil {
		return v, fmt.Errorf("harness: job %s has no recorded value", r.Name)
	}
	if err := json.Unmarshal(r.Value, &v); err != nil {
		return v, fmt.Errorf("harness: decoding job %s: %w", r.Name, err)
	}
	return v, nil
}

// DecodeAll unmarshals every result's value, preserving order.
func DecodeAll[T any](rs []Result) ([]T, error) {
	out := make([]T, len(rs))
	for i, r := range rs {
		v, err := Decode[T](r)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Run executes the grid and returns results in job order. The returned
// slice always has len(jobs) entries; on error, entries whose jobs never
// ran have a nil Value. Completed jobs are appended to the result store
// (if configured) even when the run as a whole fails or is cancelled, so
// a rerun resumes rather than restarts.
func Run(ctx context.Context, jobs []Job, opt Options) ([]Result, error) {
	ids, err := jobIDs(jobs)
	if err != nil {
		return nil, err
	}
	// Every run executes against a store: the caller's shared one, the
	// manifest file, or — with neither configured — a throwaway in-memory
	// table, so the job path is identical in all three modes.
	st := opt.Store
	if st == nil {
		st, err = store.Open(opt.Manifest)
		if err != nil {
			return nil, err
		}
		defer st.Close()
	}

	results := make([]Result, len(jobs))
	for i := range jobs {
		results[i] = Result{Index: i, ID: ids[i], Name: jobs[i].Name}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu      sync.Mutex
		jobErrs []error
	)
	fail := func(err error) {
		mu.Lock()
		jobErrs = append(jobErrs, err)
		mu.Unlock()
		cancel() // fail fast: stop handing out new jobs
	}

	workers := opt.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	// The pool hands out job indices. With one effective worker — an
	// explicit -parallel=1, a one-job grid, or a single-CPU host —
	// Pool.Do executes every job inline on this goroutine: no feed
	// channel, no worker spawn, no handoff overhead, so a serial grid run
	// costs what the old one-point-at-a-time loop cost. Each job resolves
	// through the store's single-flight gate: a stored entry (this run's
	// manifest, an earlier run, another CLI, a vixd suite) is served
	// without simulating, an identical spec already in flight anywhere in
	// the process is waited on and shared, and only a genuine miss
	// simulates — then appends its entry for every future run.
	pool := sim.NewPool(workers)
	defer pool.Close()
	pool.Do(len(jobs), func(i int) {
		if runCtx.Err() != nil {
			return
		}
		e, outcome, err := st.Do(runCtx, ids[i], func() (store.Entry, error) {
			res, err := runJob(runCtx, jobs[i], results[i])
			if err != nil {
				return store.Entry{}, err
			}
			return store.Entry{ID: res.ID, Name: res.Name, Value: res.Value, Telemetry: res.Telemetry}, nil
		})
		if err != nil {
			fail(err)
			return
		}
		results[i].Value = e.Value
		results[i].Telemetry = e.Telemetry
		results[i].Cached = outcome != store.Computed
		if opt.OnDone != nil {
			opt.OnDone(results[i])
		}
	})

	if len(jobErrs) > 0 {
		return results, errors.Join(jobErrs...)
	}
	if err := ctx.Err(); err != nil {
		return results, fmt.Errorf("harness: run interrupted: %w", err)
	}
	return results, nil
}

// runJob executes one job and encodes its value and telemetry.
func runJob(ctx context.Context, job Job, res Result) (Result, error) {
	start := wallClock()
	v, err := job.Run(ctx)
	if err != nil {
		return res, fmt.Errorf("harness: job %s: %w", job.Name, err)
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return res, fmt.Errorf("harness: job %s: result not serialisable: %w", job.Name, err)
	}
	res.Value = raw
	res.Telemetry = newTelemetry(start, job.Cycles)
	return res, nil
}

// jobIDs hashes every job's spec, rejecting grids with duplicate points:
// two jobs with the same ID would alias one manifest entry and silently
// drop half the work on resume.
func jobIDs(jobs []Job) ([]string, error) {
	ids := make([]string, len(jobs))
	seen := make(map[string]int, len(jobs))
	for i, job := range jobs {
		id, err := JobID(job)
		if err != nil {
			return nil, err
		}
		if j, dup := seen[id]; dup {
			return nil, fmt.Errorf("harness: jobs %d (%s) and %d (%s) have identical specs; every grid point must be unique",
				j, jobs[j].Name, i, job.Name)
		}
		seen[id] = i
		ids[i] = id
	}
	return ids, nil
}
