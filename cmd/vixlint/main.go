// Command vixlint runs the simulator's static-analysis pass over the
// whole module: determinism rules (no wall clock, no global rand, no
// goroutines, no order-leaking map iteration in internal/, and no
// exported entry point transitively reaching any of those), allocator
// contracts (registry completeness, read-only RequestSets, Kind/Name
// agreement, scratch ownership), scratch-escape rules (Allocate results
// must not be stored or used across a later Allocate/Reset),
// exhaustiveness of enum switches, and hygiene rules (no printing or
// anonymous panics in library code). See internal/lint for the rule
// catalogue and the //vixlint:ordered waiver syntax.
//
// Usage:
//
//	vixlint [flags] [./...]
//
// The analysis is always module-wide; a "./..." argument is accepted for
// familiarity. Flags:
//
//	-root dir    module root to analyse (default: the module containing
//	             the working directory)
//	-json        emit findings as a JSON array on stdout instead of text
//	-v           print engine statistics (packages, cache hits, workers,
//	             wall time) to stderr
//	-no-cache    disable the .vixlint/ finding cache and re-analyse every
//	             package
//	-workers n   bound the analysis worker pool (default GOMAXPROCS)
//	-escapes     run the compiler escape gate instead of the analyzers:
//	             diff heap escapes inside //vixlint:hot call cones
//	             (from `go build -gcflags=-m`) against the committed
//	             golden at .vixlint/escapes.golden
//	-update-escapes  with -escapes, regenerate the golden from the
//	             current compiler output instead of diffing
//	-state       run the state-graph gate instead of the analyzers:
//	             walk every mutable field reachable from the simulation
//	             state roots and require the committed manifest at
//	             .vixlint/stategraph.golden to classify each one as
//	             persistent, scratch or config (rules state/unclassified,
//	             state/scratch-read, state/frozen-write, state/stale)
//	-update-state  with -state, regenerate the manifest: audited
//	             classifications are preserved, stale entries dropped,
//	             new fields classified automatically
//
// Exit status: 0 when the module is clean, 1 when findings are
// reported, 2 when the analysis itself fails (unloadable module,
// unreadable root, malformed state manifest).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"vix/internal/lint"
)

func main() {
	root := flag.String("root", "", "module root to analyse (default: the module containing the working directory)")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	verbose := flag.Bool("v", false, "print engine statistics to stderr")
	noCache := flag.Bool("no-cache", false, "disable the .vixlint/ finding cache")
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
	escapes := flag.Bool("escapes", false, "run the compiler escape gate (diff //vixlint:hot cone escapes against .vixlint/escapes.golden)")
	updateEscapes := flag.Bool("update-escapes", false, "with -escapes, regenerate the golden from current compiler output")
	state := flag.Bool("state", false, "run the state-graph gate (diff reachable simulation state against .vixlint/stategraph.golden)")
	updateState := flag.Bool("update-state", false, "with -state, regenerate the manifest (preserving audited classifications)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vixlint [-root dir] [-json] [-v] [-no-cache] [-workers n] [-escapes [-update-escapes]] [-state [-update-state]] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "vixlint: unsupported argument %q (the analysis is always module-wide)\n", arg)
			os.Exit(2)
		}
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "vixlint: %v\n", err)
			os.Exit(2)
		}
	}
	if *updateEscapes && !*escapes {
		fmt.Fprintf(os.Stderr, "vixlint: -update-escapes requires -escapes\n")
		os.Exit(2)
	}
	if *updateState && !*state {
		fmt.Fprintf(os.Stderr, "vixlint: -update-state requires -state\n")
		os.Exit(2)
	}
	if *state && *escapes {
		fmt.Fprintf(os.Stderr, "vixlint: -state and -escapes are separate gates; run them one at a time\n")
		os.Exit(2)
	}
	start := time.Now()
	var findings []lint.Finding
	if *state {
		var sstats lint.StateStats
		var err error
		findings, sstats, err = lint.CheckState(dir, lint.StateOptions{
			Update: *updateState,
			Cache:  !*noCache,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vixlint: %v\n", err)
			os.Exit(2)
		}
		if *verbose {
			cached := 0
			if sstats.Cached {
				cached = 1
			}
			fmt.Fprintf(os.Stderr, "vixlint: state: %d packages, %d cached, %d analyzed, %d roots, %d fields, %d entries, %s\n",
				sstats.Packages, cached, sstats.Analyzed, sstats.Roots, sstats.Fields,
				sstats.Entries, time.Since(start).Round(time.Millisecond))
		}
	} else if *escapes {
		var estats lint.EscapeStats
		var err error
		findings, estats, err = lint.CheckEscapes(dir, lint.EscapeOptions{
			Update: *updateEscapes,
			Cache:  !*noCache,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vixlint: %v\n", err)
			os.Exit(2)
		}
		if estats.GoSkew != "" {
			fmt.Fprintf(os.Stderr, "vixlint: escapes: %s\n", estats.GoSkew)
		}
		if *verbose {
			cached := 0
			if estats.Cached {
				cached = 1
			}
			fmt.Fprintf(os.Stderr, "vixlint: escapes: %d packages, %d cached, %d analyzed, %d hot, %d cone, %d diags, %s\n",
				estats.Packages, cached, estats.Analyzed, estats.HotFuncs, estats.ConeFuncs,
				estats.Diags, time.Since(start).Round(time.Millisecond))
		}
	} else {
		var stats lint.Stats
		var err error
		findings, stats, err = lint.CheckWithOptions(dir, lint.Options{
			Workers: *workers,
			Cache:   !*noCache,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vixlint: %v\n", err)
			os.Exit(2)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "vixlint: %d packages, %d cached, %d analyzed, %d workers, %s\n",
				stats.Packages, stats.Cached, stats.Analyzed, stats.Workers,
				time.Since(start).Round(time.Millisecond))
		}
	}
	if *asJSON {
		if err := writeJSON(os.Stdout, findings); err != nil {
			fmt.Fprintf(os.Stderr, "vixlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vixlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column,omitempty"`
	Rule   string `json:"rule"`
	Msg    string `json:"msg"`
}

// writeJSON emits the findings as one indented JSON array. An empty
// result is the empty array, not null, so consumers can always range.
func writeJSON(w *os.File, findings []lint.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:   f.Pos.Filename,
			Line:   f.Pos.Line,
			Column: f.Pos.Column,
			Rule:   f.Rule,
			Msg:    f.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// findModuleRoot walks up from the working directory to the nearest
// directory containing go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
