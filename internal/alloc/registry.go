package alloc

import (
	"fmt"
	"strings"
)

// Kind names a switch-allocation scheme from the paper's evaluation.
type Kind string

// The allocation schemes of Section 4.1 plus the packet-chaining
// comparison point of Section 4.4.
const (
	// KindSeparableIF is the separable input-first allocator (IF). With
	// Config.VirtualInputs = 2 it is the paper's VIX configuration.
	KindSeparableIF Kind = "if"
	// KindWavefront is the wavefront allocator (WF).
	KindWavefront Kind = "wavefront"
	// KindAugmentingPath is maximum matching via augmenting paths (AP).
	KindAugmentingPath Kind = "ap"
	// KindPacketChaining is SameInput/anyVC packet chaining (PC).
	KindPacketChaining Kind = "pc"
	// KindIdeal serves every requested output port each cycle; it models
	// a crossbar with one virtual input per VC.
	KindIdeal Kind = "ideal"
	// KindISLIP is the iterative separable allocator of McKeown with two
	// grant/accept iterations (use NewISLIP for other iteration counts).
	KindISLIP Kind = "islip"
	// KindSparoflo approximates the SPAROFLO allocator of Kumar et al.:
	// two requests per port exposed to output arbitration, conflicts
	// resolved after the fact on a conventional crossbar.
	KindSparoflo Kind = "sparoflo"
	// KindSeparableAge is the separable input-first allocator with
	// oldest-first prioritisation in both phases (the SPAROFLO-style
	// optimisation the paper suggests integrating with VIX).
	KindSeparableAge Kind = "if-age"
)

// Kinds lists all supported built-in allocator kinds in evaluation order.
func Kinds() []Kind {
	return []Kind{KindSeparableIF, KindWavefront, KindAugmentingPath, KindPacketChaining, KindIdeal, KindISLIP, KindSparoflo, KindSeparableAge}
}

// Known reports whether kind names a built-in or registered allocator.
// It is the validation predicate spec checkers use to reject typos
// before a configuration ever reaches New.
func Known(kind Kind) bool {
	if _, ok := custom[kind]; ok {
		return true
	}
	for _, k := range Kinds() {
		if k == kind {
			return true
		}
	}
	return false
}

// custom holds user-registered allocator factories (see Register).
var custom = map[Kind]func(Config) (Allocator, error){}

// Register installs a custom allocator factory under kind, making it
// usable anywhere a built-in Kind is accepted (router configs, the
// vixsim CLI). Registering a built-in kind or registering the same kind
// twice is an error. Register is not safe for concurrent use; call it
// during program initialisation.
func Register(kind Kind, factory func(Config) (Allocator, error)) error {
	if factory == nil {
		return fmt.Errorf("alloc: nil factory for %q", kind)
	}
	for _, k := range Kinds() {
		if k == kind {
			return fmt.Errorf("alloc: cannot override built-in kind %q", kind)
		}
	}
	if _, dup := custom[kind]; dup {
		return fmt.Errorf("alloc: kind %q already registered", kind)
	}
	custom[kind] = factory
	return nil
}

// New constructs an allocator of the given kind for cfg.
func New(kind Kind, cfg Config) (Allocator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if factory, ok := custom[kind]; ok {
		return factory(cfg)
	}
	switch kind {
	case KindSeparableIF:
		return NewSeparableIF(cfg), nil
	case KindWavefront:
		return NewWavefront(cfg), nil
	case KindAugmentingPath:
		return NewAugmentingPath(cfg), nil
	case KindPacketChaining:
		return NewPacketChaining(cfg), nil
	case KindIdeal:
		if cfg.VirtualInputs != cfg.VCs {
			return nil, fmt.Errorf("alloc: ideal allocator needs VirtualInputs == VCs (per-VC crossbar rows), got %d != %d", cfg.VirtualInputs, cfg.VCs)
		}
		return NewIdeal(cfg), nil
	case KindISLIP:
		return NewISLIP(cfg, 2), nil
	case KindSeparableAge:
		return NewSeparableAge(cfg), nil
	case KindSparoflo:
		if cfg.VirtualInputs != 1 {
			return nil, fmt.Errorf("alloc: sparoflo is defined on the conventional crossbar (VirtualInputs == 1), got %d", cfg.VirtualInputs)
		}
		return NewSparoflo(cfg), nil
	default:
		return nil, fmt.Errorf("alloc: unknown allocator kind %q", kind)
	}
}

// MustNew is New but panics on error; for tests and examples.
func MustNew(kind Kind, cfg Config) Allocator {
	a, err := New(kind, cfg)
	if err != nil {
		panic("alloc: MustNew: " + strings.TrimPrefix(err.Error(), "alloc: "))
	}
	return a
}
