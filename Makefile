# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet lint lint-escapes lint-state lint-bench race test bench bench-json profile sweep experiments examples clean

all: build vet lint test

build:
	go build ./...

vet:
	go vet ./...

# The full static-analysis gate: vet, gofmt cleanliness, the repo's own
# vixlint pass (determinism including transitive reach, allocator
# contracts, scratch escape, enum exhaustiveness, hygiene, and the
# parallel/* shard-ownership rules — see internal/lint), the compiler
# escape gate (lint-escapes), and the state-graph gate (lint-state).
# vixlint keeps a content-hash finding cache under .vixlint/, so reruns
# only re-analyze packages whose hash chain changed. The lint
# self-check tests enforce the same rules under plain `go test ./...`.
lint: vet lint-escapes lint-state
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi
	go run ./cmd/vixlint -v ./...

# The compiler escape gate: diff heap escapes inside //vixlint:hot call
# cones (from `go build -gcflags=-m`, replayed from the build cache on
# warm runs) against the committed golden at .vixlint/escapes.golden.
# A new escape on the hot path fails with its exact file:line and the
# compiler's reason; regenerate the golden after an audited change with
# `go run ./cmd/vixlint -escapes -update-escapes ./...`.
lint-escapes:
	go run ./cmd/vixlint -escapes -v ./...

# The state-graph gate: every mutable field reachable from the
# simulation state roots must be classified persistent, scratch or
# config in the committed manifest at .vixlint/stategraph.golden — the
# normative field list for checkpoint/restore. Regenerate after an
# audited change with `go run ./cmd/vixlint -state -update-state ./...`.
lint-state:
	go run ./cmd/vixlint -state -v ./...

# Demonstrate the incremental engine: a cold run (cache cleared) versus
# a warm rerun, which must type-check and analyze zero packages. The
# escape and state gates get the same treatment: their warm-skip states
# are keyed on the module content hash plus their golden/manifest (and,
# for escapes, the toolchain), so the warm invocations must analyze
# nothing. Only cache entries are cleared — .vixlint/escapes.golden and
# .vixlint/stategraph.golden are committed baselines, not cache. The
# binary builds into a per-invocation temp dir so concurrent checkouts
# (CI shards, worktrees) cannot clobber each other's binary.
lint-bench:
	@bin="$$(mktemp -d)/vixlint"; \
	trap 'rm -rf "$$(dirname "$$bin")"' EXIT; \
	set -e; \
	go build -o "$$bin" ./cmd/vixlint; \
	rm -f .vixlint/*.json; \
	echo "== cold (empty cache)"; \
	"$$bin" -v ./...; \
	echo "== warm (unchanged tree)"; \
	warm="$$("$$bin" -v ./... 2>&1)"; \
	echo "$$warm"; \
	case "$$warm" in \
	*" 0 analyzed"*) ;; \
	*) echo "lint-bench: warm run re-analyzed packages; cache is broken"; exit 1 ;; \
	esac; \
	echo "== escapes cold (no warm-skip state)"; \
	"$$bin" -escapes -v ./...; \
	echo "== escapes warm (unchanged tree)"; \
	warm="$$("$$bin" -escapes -v ./... 2>&1)"; \
	echo "$$warm"; \
	case "$$warm" in \
	*" 0 analyzed"*) ;; \
	*) echo "lint-bench: warm escape gate re-ran the compiler diff; warm-skip state is broken"; exit 1 ;; \
	esac; \
	echo "== state cold (no warm-skip state)"; \
	"$$bin" -state -v ./...; \
	echo "== state warm (unchanged tree)"; \
	warm="$$("$$bin" -state -v ./... 2>&1)"; \
	echo "$$warm"; \
	case "$$warm" in \
	*" 0 analyzed"*) ;; \
	*) echo "lint-bench: warm state gate re-ran the graph walk; warm-skip state is broken"; exit 1 ;; \
	esac

# Run the test suite under the race detector. Allocators and routers are
# documented as not concurrency-safe; this verifies nothing shares them
# across goroutines by accident. The explicit network run drives the
# sharded parallel tick (workers >= 2) under -race even on hosts where
# GOMAXPROCS would otherwise keep the pool on its inline path.
race:
	go test -race ./...
	go test -race -run 'TestParallelTick|TestSteadyStateZeroAllocs|TestActivityGate' ./internal/network/

test:
	go test ./...

# Regenerate every table and figure at benchmark scale.
bench:
	go test -bench=. -benchmem .

# A small harness-backed sweep grid under the race detector: exercises
# the parallel fan-out, manifest resume, and canonical merge end to end.
sweep:
	go run -race ./cmd/sweep -schemes if:1,if:2 -rates 0.02,0.05 \
		-parallel 4 -v -o /tmp/vix_sweep.csv
	@echo "wrote /tmp/vix_sweep.csv"

# Benchmark the harness itself: serial vs parallel wall time over the
# Figure 8 grid, recorded to BENCH_harness.json for the perf trajectory.
# Then benchmark the cycle loop: cycles/sec of Network.Step on a
# saturated 8x8 VIX mesh (serial), the low-load activity-gate section
# (gated vs dense cycles/sec at 2/10/30% of 16x16 saturation, stats
# identity checked per point), plus the 16x16 parallel-tick section —
# serial and sharded cycles/sec, the effective worker count, and the
# host CPU count — recorded to BENCH_cycle.json. cyclebench carries the
# pre-optimization baseline over from the existing file, so the speedup
# column keeps comparing against the same reference point, and it exits
# non-zero if any section's statistics diverge from its reference loop
# (or a speedup gate fails where it applies: >= 1.8x parallel on a
# >= 4-CPU host, >= 5x gated at the 2%-load point).
bench-json:
	go run ./cmd/harnessbench -o BENCH_harness.json
	@cat BENCH_harness.json
	go run ./cmd/cyclebench -o BENCH_cycle.json
	@cat BENCH_cycle.json

# Profile a short Figure 8 sweep point (cpu + heap) into ./profiles/.
# Inspect with: go tool pprof profiles/sweep_cpu.pprof
profile:
	mkdir -p profiles
	go run ./cmd/sweep -schemes if:2 -rates 0.05 \
		-cpuprofile profiles/sweep_cpu.pprof \
		-memprofile profiles/sweep_mem.pprof \
		-o /tmp/vix_profile_sweep.csv
	@echo "wrote profiles/sweep_cpu.pprof profiles/sweep_mem.pprof"

# Regenerate every table and figure at full scale (minutes).
experiments:
	go run ./cmd/delaymodel -scaling
	go run ./cmd/routerbench
	go run ./cmd/loadsweep
	go run ./cmd/fairness
	go run ./cmd/chaining
	go run ./cmd/energymodel
	go run ./cmd/virtualinputs
	go run ./cmd/appsim
	go run ./cmd/ablation

examples:
	go run ./examples/quickstart
	go run ./examples/buffer_reduction
	go run ./examples/custom_allocator
	go run ./examples/adversarial_traffic
	go run ./examples/saturation_search

clean:
	go clean ./...
