// Package harness matches the ConcurrencyAllowlist entry
// internal/harness: its go statements are legal and must not taint
// callers in other packages.
package harness

// FanOut runs every function on its own goroutine and waits.
func FanOut(fns []func()) {
	done := make(chan struct{})
	for _, fn := range fns {
		fn := fn
		go func() {
			fn()
			done <- struct{}{}
		}()
	}
	for range fns {
		<-done
	}
}
