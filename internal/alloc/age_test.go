package alloc

import (
	"testing"

	"vix/internal/sim"
)

// ageRequestSet builds a request set with explicit per-request ages.
func ageRequestSet(cfg Config, reqs ...Request) *RequestSet {
	return &RequestSet{Config: cfg, Requests: reqs}
}

func TestAgeAllocatorValidGrants(t *testing.T) {
	rng := sim.NewRNG(61)
	for _, cfg := range allConfigs() {
		a := NewSeparableAge(cfg)
		for cycle := 0; cycle < 150; cycle++ {
			rs := randomRequestSet(rng, cfg, 0.5)
			for i := range rs.Requests {
				rs.Requests[i].Age = rng.Intn(20)
			}
			if err := Validate(rs, a.Allocate(rs)); err != nil {
				t.Fatalf("%+v: %v", cfg, err)
			}
		}
	}
}

// The oldest request at an output port always wins output arbitration.
func TestAgeOldestWinsOutput(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 1}
	a := NewSeparableAge(cfg)
	for trial := 0; trial < 10; trial++ { // arbiter state must not matter
		rs := ageRequestSet(cfg,
			Request{Port: 0, VC: 0, OutPort: 2, Age: 3},
			Request{Port: 1, VC: 0, OutPort: 2, Age: 9},
			Request{Port: 3, VC: 0, OutPort: 2, Age: 1},
		)
		grants := a.Allocate(rs)
		if len(grants) != 1 || grants[0].Request(rs).Port != 1 {
			t.Fatalf("trial %d: oldest requestor lost: %+v", trial, grants)
		}
	}
}

// The oldest VC within a sub-group wins input arbitration.
func TestAgeOldestWinsInput(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 1}
	a := NewSeparableAge(cfg)
	rs := ageRequestSet(cfg,
		Request{Port: 0, VC: 0, OutPort: 2, Age: 1},
		Request{Port: 0, VC: 3, OutPort: 4, Age: 8},
	)
	grants := a.Allocate(rs)
	if len(grants) != 1 {
		t.Fatalf("grants = %+v", grants)
	}
	if grants[0].Request(rs).VC != 3 || grants[0].OutPort != 4 {
		t.Fatalf("older VC lost input arbitration: %+v", grants[0])
	}
}

// With all ages equal, the allocator must remain fair (rotating
// tie-break): under persistent contention each port is served equally.
func TestAgeTieBreakIsFair(t *testing.T) {
	cfg := Config{Ports: 4, VCs: 2, VirtualInputs: 1}
	a := NewSeparableAge(cfg)
	counts := map[int]int{}
	for cycle := 0; cycle < 400; cycle++ {
		rs := ageRequestSet(cfg,
			Request{Port: 0, VC: 0, OutPort: 1},
			Request{Port: 1, VC: 0, OutPort: 1},
			Request{Port: 2, VC: 0, OutPort: 1},
		)
		for _, g := range a.Allocate(rs) {
			counts[g.Request(rs).Port]++
		}
	}
	for p := 0; p < 3; p++ {
		if c := counts[p]; c < 100 || c > 170 {
			t.Fatalf("port %d served %d of 400, unfair tie-break: %v", p, c, counts)
		}
	}
}

// Age-aware allocation composes with VIX: two VCs of a port in different
// sub-groups still transmit together.
func TestAgeWithVIX(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 2}
	a := NewSeparableAge(cfg)
	rs := ageRequestSet(cfg,
		Request{Port: 2, VC: 0, OutPort: 0, Age: 5},
		Request{Port: 2, VC: 4, OutPort: 3, Age: 2},
	)
	if grants := a.Allocate(rs); len(grants) != 2 {
		t.Fatalf("age+VIX granted %d, want 2", len(grants))
	}
}

// Matching efficiency does not collapse versus the rotating separable
// allocator on uniform traffic with random ages.
func TestAgeEfficiencyComparable(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 1}
	age := NewSeparableAge(cfg)
	base := NewSeparableIF(cfg)
	rngA, rngB := sim.NewRNG(62), sim.NewRNG(62)
	var totAge, totBase int
	for i := 0; i < 2000; i++ {
		rsA := randomRequestSet(rngA, cfg, 0.5)
		for j := range rsA.Requests {
			rsA.Requests[j].Age = rngA.Intn(10)
		}
		totAge += len(age.Allocate(rsA))
		totBase += len(base.Allocate(randomRequestSet(rngB, cfg, 0.5)))
	}
	if float64(totAge) < 0.93*float64(totBase) {
		t.Fatalf("age allocator efficiency collapsed: %d vs %d", totAge, totBase)
	}
}

func TestAgeRegistered(t *testing.T) {
	a, err := New(KindSeparableAge, Config{Ports: 5, VCs: 6, VirtualInputs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "if-age" {
		t.Fatalf("name = %q", a.Name())
	}
}
