package lint_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vix/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the corpus golden files")

// TestCorpus runs the full analysis over every seeded-violation module
// under testdata/corpus and compares the findings — rendered with
// fixture-relative paths — against the golden file next to the module
// directory. Regenerate goldens with:
//
//	go test ./internal/lint -run TestCorpus -update
//
// Each inter-procedural rule family must be exercised by at least one
// fixture; the test fails if the corpus stops covering one.
func TestCorpus(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join("testdata", "corpus", "*"))
	if err != nil {
		t.Fatal(err)
	}
	seenRules := make(map[string]bool)
	fixtures := 0
	for _, dir := range dirs {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err != nil {
			continue // golden files and strays
		}
		fixtures++
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			findings, err := lint.Check(dir)
			if err != nil {
				t.Fatalf("lint.Check(%s): %v", dir, err)
			}
			// Fixtures that commit a state manifest also run the state
			// gate; its findings land after the main analysis's.
			if _, err := os.Stat(filepath.Join(dir, ".vixlint", "stategraph.golden")); err == nil {
				sfs, _, err := lint.CheckState(dir, lint.StateOptions{})
				if err != nil {
					t.Fatalf("lint.CheckState(%s): %v", dir, err)
				}
				findings = append(findings, sfs...)
			}
			abs, err := filepath.Abs(dir)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			for _, f := range findings {
				seenRules[f.Rule] = true
				file := f.Pos.Filename
				if rel, err := filepath.Rel(abs, file); err == nil {
					file = filepath.ToSlash(rel)
				}
				fmt.Fprintf(&b, "%s:%d: %s: %s\n", file, f.Pos.Line, f.Rule, f.Msg)
			}
			golden := dir + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden: %v (regenerate with -update)", err)
			}
			if b.String() != string(want) {
				t.Errorf("findings diverge from %s\ngot:\n%s\nwant:\n%s", golden, b.String(), want)
			}
		})
	}
	if fixtures == 0 {
		t.Fatal("no corpus fixtures found under testdata/corpus")
	}
	if *update {
		return
	}
	for _, rule := range []string{
		"determinism/reach", "escape/store", "escape/retain",
		"exhaustive/switch", "waiver/stale",
		"parallel/sharedwrite", "parallel/phase", "hygiene/close",
		"directive/unknown", "state/unclassified", "state/stale",
		"state/scratch-read", "state/frozen-write", "state/waiver",
	} {
		if !seenRules[rule] {
			t.Errorf("no corpus fixture triggers %s; every inter-procedural rule needs a failing fixture", rule)
		}
	}
}
