// Package topology builds the interconnect topologies of the paper's
// evaluation: the 2-D mesh (radix-5 routers), the concentrated mesh
// (radix-8 routers, four terminals per router), and the flattened
// butterfly (radix-10 routers, four terminals per router with full
// intra-row and intra-column connectivity).
//
// A Topology is a static port-level wiring description: every router has
// Radix ports, each either attached to a terminal node (Local), wired to
// a peer router's port (Link), or Unused (mesh edge ports). Routing and
// simulation layers consume this description without topology-specific
// logic beyond the routing function itself.
package topology

import "fmt"

// Kind identifies a topology family.
type Kind string

// Topology families of the paper's evaluation (Table 1).
const (
	KindMesh  Kind = "mesh"
	KindCMesh Kind = "cmesh"
	KindFBfly Kind = "fbfly"
	KindTorus Kind = "torus"
)

// PortKind classifies what a router port is wired to.
type PortKind uint8

// Port wiring classes.
const (
	Unused PortKind = iota // edge port with no channel attached
	Local                  // injection/ejection port of a terminal node
	Link                   // inter-router channel
)

// Dim classifies a port's direction for the paper's dimension-aware VC
// assignment (Section 2.3).
type Dim uint8

// Port direction classes.
const (
	DimLocal Dim = iota // terminal ports
	DimX                // ports moving in the X dimension
	DimY                // ports moving in the Y dimension
)

// PortConn describes one router port's wiring.
type PortConn struct {
	Kind PortKind
	// PeerRouter and PeerPort identify the other end of a Link.
	PeerRouter, PeerPort int
	// Node is the attached terminal for a Local port.
	Node int
	// Dim is the port's direction class.
	Dim Dim
}

// Topology is a static description of routers, terminals, and channels.
type Topology struct {
	Name string
	Kind Kind
	// W and H are the router-grid dimensions; Conc is the number of
	// terminal nodes per router.
	W, H, Conc int
	NumRouters int
	NumNodes   int
	// Radix is the number of ports per router (Table 1's "Radix").
	Radix int
	// Conn[r][p] is the wiring of router r's port p.
	Conn [][]PortConn
	// NodeRouter[n] and NodePort[n] locate terminal n's local port.
	NodeRouter []int
	NodePort   []int
}

// RouterXY returns the grid coordinates of router r.
func (t *Topology) RouterXY(r int) (x, y int) { return r % t.W, r / t.W }

// RouterAt returns the router index at grid coordinates (x, y).
func (t *Topology) RouterAt(x, y int) int { return y*t.W + x }

// LocalPort returns the local port index on node n's router.
func (t *Topology) LocalPort(n int) int { return t.NodePort[n] }

// validate checks structural invariants; it panics on violation because a
// malformed topology is a programming error, not an input error.
func (t *Topology) validate() {
	for r := 0; r < t.NumRouters; r++ {
		if len(t.Conn[r]) != t.Radix {
			panic(fmt.Sprintf("topology: router %d has %d ports, want %d", r, len(t.Conn[r]), t.Radix))
		}
		for p, c := range t.Conn[r] {
			if c.Kind != Link {
				continue
			}
			peer := t.Conn[c.PeerRouter][c.PeerPort]
			if peer.Kind != Link || peer.PeerRouter != r || peer.PeerPort != p {
				panic(fmt.Sprintf("topology: asymmetric link %d.%d -> %d.%d", r, p, c.PeerRouter, c.PeerPort))
			}
		}
	}
	for n := 0; n < t.NumNodes; n++ {
		c := t.Conn[t.NodeRouter[n]][t.NodePort[n]]
		if c.Kind != Local || c.Node != n {
			panic(fmt.Sprintf("topology: node %d local port mismatch", n))
		}
	}
}

// Mesh direction port offsets relative to the first non-local port:
// East (+x), West (-x), North (-y), South (+y).
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
)

// NewMesh returns a w x h mesh with one terminal per router and radix-5
// routers (the paper's 8x8, 64-node configuration uses w = h = 8).
func NewMesh(w, h int) *Topology {
	return newMeshLike(KindMesh, fmt.Sprintf("mesh%dx%d", w, h), w, h, 1)
}

// NewCMesh returns a w x h concentrated mesh with conc terminals per
// router. The paper's 64-node CMesh is 4x4 with conc = 4 (radix 8).
func NewCMesh(w, h, conc int) *Topology {
	return newMeshLike(KindCMesh, fmt.Sprintf("cmesh%dx%dc%d", w, h, conc), w, h, conc)
}

// NewTorus returns a w x h 2-D torus: the mesh wiring plus wraparound
// links closing each row and column into a ring. Rings of fewer than
// three routers get no wrap link — it would duplicate the existing
// direct channel — so a torus with w, h <= 2 is wired identically to
// the same-size mesh (the lockstep-equivalence tests rely on this).
func NewTorus(w, h int) *Topology {
	return newMeshLike(KindTorus, fmt.Sprintf("torus%dx%d", w, h), w, h, 1)
}

func newMeshLike(kind Kind, name string, w, h, conc int) *Topology {
	if w <= 0 || h <= 0 || conc <= 0 {
		panic("topology: dimensions must be positive")
	}
	t := &Topology{
		Name: name, Kind: kind,
		W: w, H: h, Conc: conc,
		NumRouters: w * h,
		NumNodes:   w * h * conc,
		Radix:      conc + 4,
	}
	t.Conn = make([][]PortConn, t.NumRouters)
	t.NodeRouter = make([]int, t.NumNodes)
	t.NodePort = make([]int, t.NumNodes)
	for r := 0; r < t.NumRouters; r++ {
		t.Conn[r] = make([]PortConn, t.Radix)
		x, y := t.RouterXY(r)
		for c := 0; c < conc; c++ {
			n := r*conc + c
			t.Conn[r][c] = PortConn{Kind: Local, Node: n, Dim: DimLocal}
			t.NodeRouter[n] = r
			t.NodePort[n] = c
		}
		dir := func(d int) int { return conc + d }
		if x+1 < w {
			t.Conn[r][dir(dirEast)] = PortConn{Kind: Link, PeerRouter: t.RouterAt(x+1, y), PeerPort: dir(dirWest), Dim: DimX}
		}
		if x-1 >= 0 {
			t.Conn[r][dir(dirWest)] = PortConn{Kind: Link, PeerRouter: t.RouterAt(x-1, y), PeerPort: dir(dirEast), Dim: DimX}
		}
		if y-1 >= 0 {
			t.Conn[r][dir(dirNorth)] = PortConn{Kind: Link, PeerRouter: t.RouterAt(x, y-1), PeerPort: dir(dirSouth), Dim: DimY}
		}
		if y+1 < h {
			t.Conn[r][dir(dirSouth)] = PortConn{Kind: Link, PeerRouter: t.RouterAt(x, y+1), PeerPort: dir(dirNorth), Dim: DimY}
		}
		if kind == KindTorus {
			if w >= 3 {
				if x == w-1 {
					t.Conn[r][dir(dirEast)] = PortConn{Kind: Link, PeerRouter: t.RouterAt(0, y), PeerPort: dir(dirWest), Dim: DimX}
				}
				if x == 0 {
					t.Conn[r][dir(dirWest)] = PortConn{Kind: Link, PeerRouter: t.RouterAt(w-1, y), PeerPort: dir(dirEast), Dim: DimX}
				}
			}
			if h >= 3 {
				if y == 0 {
					t.Conn[r][dir(dirNorth)] = PortConn{Kind: Link, PeerRouter: t.RouterAt(x, h-1), PeerPort: dir(dirSouth), Dim: DimY}
				}
				if y == h-1 {
					t.Conn[r][dir(dirSouth)] = PortConn{Kind: Link, PeerRouter: t.RouterAt(x, 0), PeerPort: dir(dirNorth), Dim: DimY}
				}
			}
		}
	}
	t.validate()
	return t
}

// NewFBfly returns a w x h flattened butterfly with conc terminals per
// router: every router links directly to every other router in its row
// and in its column. The paper's 64-node FBfly is 4x4 with conc = 4
// (radix 4 + 3 + 3 = 10).
func NewFBfly(w, h, conc int) *Topology {
	if w <= 0 || h <= 0 || conc <= 0 {
		panic("topology: dimensions must be positive")
	}
	t := &Topology{
		Name: fmt.Sprintf("fbfly%dx%dc%d", w, h, conc),
		Kind: KindFBfly,
		W:    w, H: h, Conc: conc,
		NumRouters: w * h,
		NumNodes:   w * h * conc,
		Radix:      conc + (w - 1) + (h - 1),
	}
	t.Conn = make([][]PortConn, t.NumRouters)
	t.NodeRouter = make([]int, t.NumNodes)
	t.NodePort = make([]int, t.NumNodes)
	for r := 0; r < t.NumRouters; r++ {
		t.Conn[r] = make([]PortConn, t.Radix)
		x, y := t.RouterXY(r)
		for c := 0; c < conc; c++ {
			n := r*conc + c
			t.Conn[r][c] = PortConn{Kind: Local, Node: n, Dim: DimLocal}
			t.NodeRouter[n] = r
			t.NodePort[n] = c
		}
		for tx := 0; tx < w; tx++ {
			if tx == x {
				continue
			}
			p := t.XPort(x, tx)
			peer := t.RouterAt(tx, y)
			t.Conn[r][p] = PortConn{Kind: Link, PeerRouter: peer, PeerPort: t.XPort(tx, x), Dim: DimX}
		}
		for ty := 0; ty < h; ty++ {
			if ty == y {
				continue
			}
			p := t.YPort(y, ty)
			peer := t.RouterAt(x, ty)
			t.Conn[r][p] = PortConn{Kind: Link, PeerRouter: peer, PeerPort: t.YPort(ty, y), Dim: DimY}
		}
	}
	t.validate()
	return t
}

// XPort returns the port index a flattened-butterfly router at column
// from uses to reach column to directly.
func (t *Topology) XPort(from, to int) int {
	if to < from {
		return t.Conc + to
	}
	return t.Conc + to - 1
}

// YPort returns the port index a flattened-butterfly router at row from
// uses to reach row to directly.
func (t *Topology) YPort(from, to int) int {
	base := t.Conc + t.W - 1
	if to < from {
		return base + to
	}
	return base + to - 1
}

// MeshDirPort returns the port index for the given mesh direction
// (dirEast..dirSouth constants are internal; this helper serves routing).
func (t *Topology) meshDirPort(d int) int { return t.Conc + d }

// EastPort, WestPort, NorthPort and SouthPort name the mesh direction
// ports for mesh-like topologies.
func (t *Topology) EastPort() int  { return t.meshDirPort(dirEast) }
func (t *Topology) WestPort() int  { return t.meshDirPort(dirWest) }
func (t *Topology) NorthPort() int { return t.meshDirPort(dirNorth) }
func (t *Topology) SouthPort() int { return t.meshDirPort(dirSouth) }
