package alloc

import "vix/internal/arb"

// ISLIP is the iterative separable allocator of McKeown, cited by the
// paper as the classic approach to the sub-optimal matching problem:
// run request-grant-accept rounds until no more grants can be added (or
// an iteration budget is exhausted). Each extra iteration recovers
// matches a single-pass separable allocator loses to uncoordinated
// decisions, at the cost of delay — which is exactly the trade the paper
// argues VIX avoids by widening the crossbar instead.
//
// Round structure (output-first iSLIP, per the original):
//
//	grant:  every unmatched output offers a grant to one requesting row
//	        (rotating pointer);
//	accept: every unmatched row accepts one of the outputs granting to it
//	        (rotating pointer); accepted pairs leave the pool.
//
// Pointers advance only on accepted grants and only in the first
// iteration, preserving iSLIP's desynchronisation property.
type ISLIP struct {
	cfg        Config
	iterations int
	grantArbs  []arb.Arbiter // per output, over rows
	acceptArbs []arb.Arbiter // per row, over outputs
	vcPick     []arb.Arbiter // per row, over sub-group VC slots

	// scratch
	rowVec   []bool
	outVec   []bool
	req      [][]bool // req[row][out]: any VC of the row requests out
	cellReqs cellScratch
	rowDone  []bool
	outDone  []bool
	granted  []int    // per row: number of outputs granting to it this iteration
	grantsTo [][]bool // grantsTo[row][out]: out granted to row this iteration
	slots    vcPickScratch
	grants   []Grant
}

// NewISLIP returns an iSLIP allocator running the given number of
// iterations (clamped to at least 1). It panics if cfg is invalid.
func NewISLIP(cfg Config, iterations int) *ISLIP {
	mustValidate(cfg)
	if iterations < 1 {
		iterations = 1
	}
	s := &ISLIP{
		cfg:        cfg,
		iterations: iterations,
		rowVec:     make([]bool, cfg.Rows()),
		outVec:     make([]bool, cfg.Ports),
		req:        make([][]bool, cfg.Rows()),
		cellReqs:   newCellScratch(cfg),
		rowDone:    make([]bool, cfg.Rows()),
		outDone:    make([]bool, cfg.Ports),
		granted:    make([]int, cfg.Rows()),
		grantsTo:   make([][]bool, cfg.Rows()),
		slots:      newVCPickScratch(cfg),
		grants:     make([]Grant, 0, cfg.Ports),
	}
	for i := range s.req {
		s.req[i] = make([]bool, cfg.Ports)
		s.grantsTo[i] = make([]bool, cfg.Ports)
	}
	s.grantArbs = make([]arb.Arbiter, cfg.Ports)
	for i := range s.grantArbs {
		s.grantArbs[i] = arb.NewRoundRobin(cfg.Rows())
	}
	s.acceptArbs = make([]arb.Arbiter, cfg.Rows())
	s.vcPick = make([]arb.Arbiter, cfg.Rows())
	for i := range s.acceptArbs {
		s.acceptArbs[i] = arb.NewRoundRobin(cfg.Ports)
		s.vcPick[i] = arb.NewRoundRobin(cfg.GroupSize())
	}
	return s
}

// Name implements Allocator.
func (s *ISLIP) Name() string { return "islip" }

// Iterations returns the configured iteration count.
func (s *ISLIP) Iterations() int { return s.iterations }

// Reset implements Allocator.
func (s *ISLIP) Reset() {
	for _, a := range s.grantArbs {
		a.Reset()
	}
	for _, a := range s.acceptArbs {
		a.Reset()
	}
	for _, a := range s.vcPick {
		a.Reset()
	}
}

// Allocate implements Allocator. The returned slice is scratch, valid
// until the next Allocate or Reset call.
//
//vixlint:hot
func (s *ISLIP) Allocate(rs *RequestSet) []Grant {
	rows, outs := s.cfg.Rows(), s.cfg.Ports
	// req[row][out] true if any VC of the row requests out; the cell
	// scratch holds the request indices per (row, out) for VC selection.
	for i := range s.req {
		for j := range s.req[i] {
			s.req[i][j] = false
		}
	}
	s.cellReqs.clear()
	for idx, r := range rs.Requests {
		row := s.cfg.Row(r.Port, r.VC)
		s.req[row][r.OutPort] = true
		s.cellReqs.add(row, r.OutPort, idx)
	}

	for i := range s.rowDone {
		s.rowDone[i] = false
	}
	for i := range s.outDone {
		s.outDone[i] = false
	}
	s.grants = s.grants[:0]

	for iter := 0; iter < s.iterations; iter++ {
		// Grant phase: each unmatched output picks one requesting,
		// unmatched row.
		for row := 0; row < rows; row++ {
			s.granted[row] = 0
			for j := range s.grantsTo[row] {
				s.grantsTo[row][j] = false
			}
		}
		any := false
		for out := 0; out < outs; out++ {
			if s.outDone[out] {
				continue
			}
			for row := 0; row < rows; row++ {
				s.rowVec[row] = !s.rowDone[row] && s.req[row][out]
			}
			row := s.grantArbs[out].Arbitrate(s.rowVec)
			if row < 0 {
				continue
			}
			s.grantsTo[row][out] = true
			s.granted[row]++
			any = true
		}
		if !any {
			break
		}
		// Accept phase: each row with offers accepts one output.
		progress := false
		for row := 0; row < rows; row++ {
			if s.rowDone[row] || s.granted[row] == 0 {
				continue
			}
			out := s.acceptArbs[row].Arbitrate(s.grantsTo[row])
			if out < 0 {
				continue
			}
			idx := s.slots.pick(s.cfg, rs, s.cellReqs.at(row, out), s.vcPick[row])
			s.grants = append(s.grants, Grant{Req: idx, OutPort: out, Row: row})
			s.rowDone[row] = true
			s.outDone[out] = true
			progress = true
			// iSLIP pointer discipline: update only on first-iteration
			// accepts so pointers desynchronise.
			if iter == 0 {
				s.grantArbs[out].Ack(row)
				s.acceptArbs[row].Ack(out)
			}
		}
		if !progress {
			break
		}
	}
	return s.grants
}
