package topology

import (
	"reflect"
	"testing"
)

// Every torus router has all four direction ports wired (no edges), and
// the boundary routers' wrap links land on the opposite side of the ring
// with matching reverse ports.
func TestTorusWrapWiring(t *testing.T) {
	topo := NewTorus(4, 4)
	for r := 0; r < topo.NumRouters; r++ {
		for _, p := range []int{topo.EastPort(), topo.WestPort(), topo.NorthPort(), topo.SouthPort()} {
			if topo.Conn[r][p].Kind != Link {
				t.Fatalf("torus router %d port %d is %v, want Link", r, p, topo.Conn[r][p].Kind)
			}
		}
	}
	for y := 0; y < topo.H; y++ {
		east := topo.RouterAt(topo.W-1, y)
		if got := topo.Conn[east][topo.EastPort()].PeerRouter; got != topo.RouterAt(0, y) {
			t.Fatalf("row %d east wrap lands on router %d, want %d", y, got, topo.RouterAt(0, y))
		}
		west := topo.RouterAt(0, y)
		if got := topo.Conn[west][topo.WestPort()].PeerRouter; got != topo.RouterAt(topo.W-1, y) {
			t.Fatalf("row %d west wrap lands on router %d, want %d", y, got, topo.RouterAt(topo.W-1, y))
		}
	}
	for x := 0; x < topo.W; x++ {
		north := topo.RouterAt(x, 0)
		if got := topo.Conn[north][topo.NorthPort()].PeerRouter; got != topo.RouterAt(x, topo.H-1) {
			t.Fatalf("col %d north wrap lands on router %d, want %d", x, got, topo.RouterAt(x, topo.H-1))
		}
		south := topo.RouterAt(x, topo.H-1)
		if got := topo.Conn[south][topo.SouthPort()].PeerRouter; got != topo.RouterAt(x, 0) {
			t.Fatalf("col %d south wrap lands on router %d, want %d", x, got, topo.RouterAt(x, 0))
		}
	}
}

// Rings of fewer than three routers get no wraparound (it would duplicate
// the existing bidirectional link), so a 2x2 torus is wired exactly like
// the 2x2 mesh.
func TestTorus2x2EqualsMesh(t *testing.T) {
	torus := NewTorus(2, 2)
	mesh := NewMesh(2, 2)
	if !reflect.DeepEqual(torus.Conn, mesh.Conn) {
		t.Fatalf("2x2 torus wiring differs from 2x2 mesh:\ntorus: %+v\nmesh:  %+v", torus.Conn, mesh.Conn)
	}
	// A 3x2 torus wraps only the width-3 rows, never the height-2 columns.
	mixed := NewTorus(3, 2)
	if mixed.Conn[mixed.RouterAt(2, 0)][mixed.EastPort()].Kind != Link {
		t.Fatal("3x2 torus: width-3 row should wrap east")
	}
	if mixed.Conn[mixed.RouterAt(0, 0)][mixed.NorthPort()].Kind == Link {
		t.Fatal("3x2 torus: height-2 column must not wrap north")
	}
}
