// Command sweep runs a grid of (scheme, injection rate) simulations and
// emits one CSV row per point — the raw data behind Figure 8-style plots,
// ready for any plotting tool.
//
// Schemes are comma-separated allocator:k pairs, e.g.
//
//	sweep -schemes if:1,wavefront:1,ap:1,if:2 -rates 0.02,0.04,0.06,0.08
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"vix/internal/config"
	"vix/internal/network"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		configPath = flag.String("config", "", "JSON experiment file used as the base configuration")
		schemesStr = flag.String("schemes", "if:1,wavefront:1,ap:1,if:2", "comma-separated allocator:k pairs")
		ratesStr   = flag.String("rates", "0.01,0.03,0.05,0.07,0.09", "comma-separated injection rates (packets/cycle/node)")
		saturate   = flag.Bool("sat", true, "append a saturation point per scheme")
		out        = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	base := config.Default()
	if *configPath != "" {
		var err error
		if base, err = config.Load(*configPath); err != nil {
			log.Fatal(err)
		}
	}

	type scheme struct {
		alloc string
		k     int
	}
	var schemes []scheme
	for _, s := range strings.Split(*schemesStr, ",") {
		name, kStr, ok := strings.Cut(strings.TrimSpace(s), ":")
		if !ok {
			log.Fatalf("bad scheme %q: want allocator:k", s)
		}
		k, err := strconv.Atoi(kStr)
		if err != nil {
			log.Fatalf("bad virtual-input count in %q: %v", s, err)
		}
		schemes = append(schemes, scheme{alloc: name, k: k})
	}
	var rates []float64
	for _, r := range strings.Split(*ratesStr, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(r), 64)
		if err != nil {
			log.Fatalf("bad rate %q: %v", r, err)
		}
		rates = append(rates, v)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()
	header := []string{"allocator", "k", "offered_rate", "avg_latency", "p50_latency", "p99_latency", "throughput_flits", "throughput_packets", "fairness"}
	if err := cw.Write(header); err != nil {
		log.Fatal(err)
	}

	run := func(sc scheme, rate float64, max bool) {
		e := base
		e.Allocator = sc.alloc
		e.VirtualInputs = sc.k
		e.Policy = "" // re-derive from k
		e.InjectionRate = rate
		e.MaxInjection = max
		cfg, err := e.Build()
		if err != nil {
			log.Fatal(err)
		}
		n, err := network.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		n.Warmup(e.Warmup)
		s := n.Measure(e.Measure)
		offered := fmt.Sprintf("%g", rate)
		if max {
			offered = "saturation"
		}
		rec := []string{
			sc.alloc, strconv.Itoa(sc.k), offered,
			fmt.Sprintf("%.3f", s.AvgLatency),
			strconv.FormatInt(s.P50Latency, 10),
			strconv.FormatInt(s.P99Latency, 10),
			fmt.Sprintf("%.5f", s.ThroughputFlits),
			fmt.Sprintf("%.5f", s.ThroughputPackets),
			fmt.Sprintf("%.3f", s.FairnessRatio),
		}
		if err := cw.Write(rec); err != nil {
			log.Fatal(err)
		}
	}
	for _, sc := range schemes {
		for _, rate := range rates {
			run(sc, rate, false)
		}
		if *saturate {
			run(sc, 0, true)
		}
	}
}
