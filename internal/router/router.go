package router

import (
	"fmt"
	"strings"

	"vix/internal/alloc"
	"vix/internal/topology"
)

// Config holds the per-router microarchitecture parameters of the paper's
// methodology (Section 3): buffering of v VCs per port with a fixed
// buffer depth, a crossbar with k virtual inputs per port, a switch
// allocation scheme, and an output-VC assignment policy.
type Config struct {
	Ports         int             // router radix P
	VCs           int             // virtual channels per input port
	VirtualInputs int             // crossbar virtual inputs per port (1 = baseline, 2 = VIX)
	BufDepth      int             // flit buffers per VC
	AllocKind     alloc.Kind      // switch allocation scheme
	Policy        PolicyKind      // output-VC assignment policy
	Partition     alloc.Partition // VC-to-sub-group mapping (default contiguous)

	// NonSpeculative disables speculative switch allocation: a head flit
	// that wins VC allocation this cycle may only compete in switch
	// allocation from the next cycle. The default (false) models the
	// paper's optimised pipeline (Figure 6b, citing Peh & Dally), where
	// heads speculatively bid for the switch in parallel with VA.
	NonSpeculative bool
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.BufDepth <= 0 {
		return fmt.Errorf("router: BufDepth must be positive, got %d", c.BufDepth)
	}
	if c.Policy == "" {
		return fmt.Errorf("router: Policy must be set")
	}
	return c.Alloc().Validate()
}

// Alloc returns the allocator geometry implied by the config.
func (c Config) Alloc() alloc.Config {
	return alloc.Config{Ports: c.Ports, VCs: c.VCs, VirtualInputs: c.VirtualInputs, Partition: c.Partition}
}

// PortInfo describes one (bidirectional) router port's wiring class and
// dimension, taken from the topology.
type PortInfo struct {
	Kind topology.PortKind
	Dim  topology.Dim
}

// Emission is a flit leaving through an output port this cycle; the
// network layer schedules its arrival downstream (or its ejection) after
// switch and link traversal.
type Emission struct {
	OutPort int
	Flit    FlitID
}

// CreditMsg is a credit freed by a flit departing input (Port, VC),
// to be returned to the upstream router.
type CreditMsg struct {
	Port, VC int
}

// NextDimFunc returns the dimension class of the output port a packet
// destined to dst will request at the downstream router reached through
// outPort (lookahead information for the Section 2.3 policies).
type NextDimFunc func(outPort, dst int) topology.Dim

// VCRangeFunc returns the downstream-VC index range [lo, hi) a packet
// destined to dst may be assigned when leaving through outPort. The
// network uses it to impose topology-level VC restrictions — the torus
// dateline classes — on top of the Section 2.3 assignment policy: the
// policy chooses freely among the VCs the range admits. A nil func (the
// default) admits every VC.
type VCRangeFunc func(outPort, dst int) (lo, hi int)

// Cache-line padding granularity for arena segments: per-router strides
// are rounded so no two routers' hot state shares a 64-byte line, which
// keeps the sharded phase-A workers from false-sharing during the
// parallel tick. int32 slots pad to 16 elements, bool slots to 64.
const (
	padI32  = 16
	padBool = 64
)

func padTo(n, m int) int { return (n + m - 1) / m * m }

// Arena holds the hot per-router state of every router in one network as
// contiguous structure-of-arrays slabs. Each router owns one cache-line-
// aligned segment of each slab (sliced out at construction), so a full
// network tick walks linear memory in router order and the sharded
// phase-A workers touch disjoint line-aligned ranges.
//
// Layout per router segment, indexed by ivc = port*VCs + vc:
//
//	bufs    [ivc*BufDepth : ...]  VC buffer ring storage (FlitIDs)
//	head    [ivc]                 ring head slot
//	count   [ivc]                 buffered flits in the ring
//	ovc     [ivc]                 allocated downstream VC (-1 = none)
//	outPort [ivc]                 route of the current packet
//	wait    [ivc]                 cycles the front flit has waited
//	frontRoute, frontDst, frontHead [ivc]
//	                              cached Route/Dst/IsHead of the ring's
//	                              front flit (immutable while buffered),
//	                              so VC allocation never touches the slab
//	credits [out*VCs + v]         downstream credits per output VC
//	busy    [out*VCs + v]         downstream VC held by an input VC here
type Arena struct {
	flits *FlitArena
	cfg   Config
	n     int

	bufStride  int // FlitID slots per router (padded)
	i32Stride  int // int32 slots per router (padded)
	boolStride int // bool slots per router (padded)

	bufs       []FlitID
	head       []int32
	count      []int32
	ovc        []int32
	outPort    []int32
	wait       []int32
	frontRoute []int32
	frontDst   []int32
	credits    []int32
	busy       []bool
	frontHead  []bool
}

// NewArena builds the shared state slabs for numRouters routers of
// identical cfg geometry, all resolving flits through the given arena.
func NewArena(numRouters int, cfg Config, flits *FlitArena) *Arena {
	if err := cfg.Validate(); err != nil {
		panic("router: invalid config: " + strings.TrimPrefix(err.Error(), "router: "))
	}
	if numRouters <= 0 {
		panic(fmt.Sprintf("router: arena for %d routers", numRouters))
	}
	pv := cfg.Ports * cfg.VCs
	a := &Arena{
		flits:      flits,
		cfg:        cfg,
		n:          numRouters,
		bufStride:  padTo(pv*cfg.BufDepth, padI32),
		i32Stride:  padTo(pv, padI32),
		boolStride: padTo(pv, padBool),
	}
	a.bufs = make([]FlitID, numRouters*a.bufStride)
	for i := range a.bufs {
		a.bufs[i] = NoFlit
	}
	a.head = make([]int32, numRouters*a.i32Stride)
	a.count = make([]int32, numRouters*a.i32Stride)
	a.ovc = make([]int32, numRouters*a.i32Stride)
	a.outPort = make([]int32, numRouters*a.i32Stride)
	a.wait = make([]int32, numRouters*a.i32Stride)
	a.frontRoute = make([]int32, numRouters*a.i32Stride)
	a.frontDst = make([]int32, numRouters*a.i32Stride)
	a.credits = make([]int32, numRouters*a.i32Stride)
	a.busy = make([]bool, numRouters*a.boolStride)
	a.frontHead = make([]bool, numRouters*a.boolStride)
	for i := range a.ovc {
		a.ovc[i] = -1
	}
	for rtr := 0; rtr < numRouters; rtr++ {
		seg := a.credits[rtr*a.i32Stride:]
		for v := 0; v < pv; v++ {
			seg[v] = int32(cfg.BufDepth)
		}
	}
	return a
}

// Flits returns the flit arena the routers resolve FlitIDs through.
func (a *Arena) Flits() *FlitArena { return a.flits }

// Router is a cycle-accurate virtual-channel router. Its hot state lives
// in its network's Arena; the struct itself holds slice views into that
// router's segment of each slab, plus cold configuration and scratch.
type Router struct {
	id      int
	cfg     Config
	acfg    alloc.Config
	alloc   alloc.Allocator
	nextDim NextDimFunc
	vcRange VCRangeFunc
	flits   *FlitArena

	ports []PortInfo

	// Arena segment views (see Arena layout).
	buf        []FlitID
	head       []int32
	count      []int32
	ovc        []int32
	outPort    []int32
	wait       []int32
	frontRoute []int32
	frontDst   []int32
	credits    []int32
	busy       []bool
	frontHead  []bool

	// occ counts buffered flits across all input VCs, maintained
	// incrementally (DeliverFlit adds, grant departures subtract) so the
	// activity-gated tick can test quiescence in O(1).
	occ int

	vaOffset int // rotating VC-allocation priority

	// vaPending counts input VCs whose front flit awaits VC allocation
	// (count > 0 with no output VC), maintained incrementally like occ, so
	// allocateVCs can stop scanning once every pending VC has been
	// visited. The visit order over pending VCs is unchanged, so results
	// are identical to the full scan.
	vaPending int

	// justAllocated marks input VCs whose output VC was granted in the
	// current Tick; with NonSpeculative set they sit out this cycle's
	// switch allocation.
	justAllocated []bool

	// subgroupOf[v] precomputes acfg.Subgroup — two integer divisions —
	// for the chooseOVC scan over all VCs.
	subgroupOf []int32

	// scratch
	reqs        alloc.RequestSet
	busyInGroup []int
	freeScratch []bool
	ems         []Emission
	creds       []CreditMsg
}

// New builds a router. ports describes the wiring class of each port
// (symmetric in/out). The allocator must match cfg.Alloc() geometry.
// vcRange optionally restricts output-VC assignment per (outPort, dst)
// (nil: no restriction). arena is the shared per-network state arena;
// the router occupies slot id. A nil arena gives the router a private
// single-slot arena with its own flit slab (standalone/test use).
func New(id int, cfg Config, ports []PortInfo, allocator alloc.Allocator, nextDim NextDimFunc, vcRange VCRangeFunc, arena *Arena) *Router {
	if err := cfg.Validate(); err != nil {
		panic("router: invalid config: " + strings.TrimPrefix(err.Error(), "router: "))
	}
	if len(ports) != cfg.Ports {
		panic(fmt.Sprintf("router: %d port infos for %d ports", len(ports), cfg.Ports))
	}
	slot := id
	if arena == nil {
		arena = NewArena(1, cfg, NewFlitArena(cfg.Ports*cfg.VCs*cfg.BufDepth, false))
		slot = 0
	}
	if arena.cfg.Ports != cfg.Ports || arena.cfg.VCs != cfg.VCs || arena.cfg.BufDepth != cfg.BufDepth {
		panic(fmt.Sprintf("router %d: arena geometry %d/%d/%d does not match config %d/%d/%d",
			id, arena.cfg.Ports, arena.cfg.VCs, arena.cfg.BufDepth, cfg.Ports, cfg.VCs, cfg.BufDepth))
	}
	if slot < 0 || slot >= arena.n {
		panic(fmt.Sprintf("router %d: arena holds %d slots", id, arena.n))
	}
	pv := cfg.Ports * cfg.VCs
	r := &Router{
		id:      id,
		cfg:     cfg,
		acfg:    cfg.Alloc(),
		alloc:   allocator,
		nextDim: nextDim,
		vcRange: vcRange,
		flits:   arena.flits,
		ports:   append([]PortInfo(nil), ports...),

		buf:        arena.bufs[slot*arena.bufStride:][:pv*cfg.BufDepth],
		head:       arena.head[slot*arena.i32Stride:][:pv],
		count:      arena.count[slot*arena.i32Stride:][:pv],
		ovc:        arena.ovc[slot*arena.i32Stride:][:pv],
		outPort:    arena.outPort[slot*arena.i32Stride:][:pv],
		wait:       arena.wait[slot*arena.i32Stride:][:pv],
		frontRoute: arena.frontRoute[slot*arena.i32Stride:][:pv],
		frontDst:   arena.frontDst[slot*arena.i32Stride:][:pv],
		credits:    arena.credits[slot*arena.i32Stride:][:pv],
		busy:       arena.busy[slot*arena.boolStride:][:pv],
		frontHead:  arena.frontHead[slot*arena.boolStride:][:pv],

		justAllocated: make([]bool, pv),
		subgroupOf:    make([]int32, cfg.VCs),
		busyInGroup:   make([]int, cfg.VirtualInputs),
		freeScratch:   make([]bool, cfg.VCs),
		ems:           make([]Emission, 0, cfg.Ports),
		creds:         make([]CreditMsg, 0, cfg.Ports),
	}
	for v := 0; v < cfg.VCs; v++ {
		r.subgroupOf[v] = int32(r.acfg.Subgroup(v))
	}
	r.reqs.Config = r.acfg
	return r
}

// ID returns the router's index in its network.
func (r *Router) ID() int { return r.id }

// Config returns the router's configuration.
func (r *Router) Config() Config { return r.cfg }

// Flits returns the flit arena the router resolves FlitIDs through.
func (r *Router) Flits() *FlitArena { return r.flits }

// DeliverFlit places an arriving flit into input (port, vc). The caller
// must have set the flit's Route for this router. It panics on buffer
// overflow, which would indicate a flow-control bug.
func (r *Router) DeliverFlit(port, vc int, id FlitID) {
	ivc := port*r.cfg.VCs + vc
	if int(r.count[ivc]) >= r.cfg.BufDepth {
		panic(fmt.Sprintf("router %d: buffer overflow at port %d vc %d", r.id, port, vc))
	}
	f := r.flits.At(id)
	if f.Route < 0 || f.Route >= r.cfg.Ports {
		panic(fmt.Sprintf("router %d: flit delivered with invalid route %d", r.id, f.Route))
	}
	f.VC = vc
	if r.count[ivc] == 0 {
		r.frontRoute[ivc] = int32(f.Route)
		r.frontDst[ivc] = int32(f.Dst)
		r.frontHead[ivc] = f.Type.IsHead()
		if r.ovc[ivc] < 0 {
			r.vaPending++
		}
	}
	slot := int(r.head[ivc]) + int(r.count[ivc])
	if slot >= r.cfg.BufDepth {
		slot -= r.cfg.BufDepth
	}
	r.buf[ivc*r.cfg.BufDepth+slot] = id
	r.count[ivc]++
	r.occ++
}

// DeliverCredit returns one credit for downstream VC vc of outPort.
func (r *Router) DeliverCredit(outPort, vc int) {
	cvi := outPort*r.cfg.VCs + vc
	if int(r.credits[cvi]) >= r.cfg.BufDepth {
		panic(fmt.Sprintf("router %d: credit overflow at port %d vc %d", r.id, outPort, vc))
	}
	r.credits[cvi]++
}

// Busy reports whether the router holds any buffered flits. An idle
// router's Tick is exactly the empty tick SkipIdle replays — no
// emissions, no credits, no requests to the allocator — so the network's
// activity gate only needs to wake a router on a credit when Busy is
// true: credits are applied eagerly above, and a credit at an empty
// router cannot create work until a flit arrives (which sets the bit).
func (r *Router) Busy() bool { return r.occ > 0 }

// BufferSpace returns the free flit slots of input (port, vc); the
// network interface uses it to gate injection at local ports.
func (r *Router) BufferSpace(port, vc int) int {
	return r.cfg.BufDepth - int(r.count[port*r.cfg.VCs+vc])
}

// Occupancy returns the number of buffered flits across all input VCs.
// It recounts from the per-VC ring counters rather than trusting the
// incremental counter; tests use the pair to cross-check each other.
func (r *Router) Occupancy() int {
	n := 0
	for _, c := range r.count {
		n += int(c)
	}
	if n != r.occ {
		panic(fmt.Sprintf("router %d: occupancy counter %d but %d flits buffered", r.id, r.occ, n))
	}
	return n
}

// Credits exposes the credit count for (outPort, vc); used by tests.
func (r *Router) Credits(outPort, vc int) int { return int(r.credits[outPort*r.cfg.VCs+vc]) }

// Tick advances the router one cycle: VC allocation, then switch
// allocation, then switch traversal of the winners. It returns the flits
// leaving through output ports, the credits freed at input ports, and
// whether the router quiesced — no flits remain buffered, so until the
// next delivery every further tick would be the idle no-op SkipIdle can
// replay. The activity-gated network tick clears a quiesced router's
// activity bit and stops ticking it.
//
// Both returned slices are router-owned scratch, valid only until the
// next Tick call; callers must consume (or copy) them within the cycle.
//
//vixlint:hot
func (r *Router) Tick() (ems []Emission, credits []CreditMsg, quiesced bool) {
	r.ems = r.ems[:0]
	r.creds = r.creds[:0]
	if r.cfg.NonSpeculative {
		for i := range r.justAllocated {
			r.justAllocated[i] = false
		}
	}
	r.allocateVCs()
	grants := r.alloc.Allocate(r.buildRequests())
	for _, g := range grants {
		req := g.Request(&r.reqs)
		ivc := req.Port*r.cfg.VCs + req.VC
		r.wait[ivc] = 0
		h := int(r.head[ivc])
		id := r.buf[ivc*r.cfg.BufDepth+h]
		h++
		if h == r.cfg.BufDepth {
			h = 0
		}
		r.head[ivc] = int32(h)
		r.count[ivc]--
		r.occ--
		if r.count[ivc] > 0 {
			nf := r.flits.At(r.buf[ivc*r.cfg.BufDepth+h])
			r.frontRoute[ivc] = int32(nf.Route)
			r.frontDst[ivc] = int32(nf.Dst)
			r.frontHead[ivc] = nf.Type.IsHead()
		}
		f := r.flits.At(id)
		ovc := int(r.ovc[ivc])
		cvi := g.OutPort*r.cfg.VCs + ovc
		if r.ports[g.OutPort].Kind == topology.Link {
			r.credits[cvi]--
			if r.credits[cvi] < 0 {
				panic(fmt.Sprintf("router %d: credit underflow at port %d vc %d", r.id, g.OutPort, ovc))
			}
			f.Hops++
			if f.Type.IsTail() {
				r.busy[cvi] = false
			}
		}
		f.VC = ovc
		if f.Type.IsTail() {
			r.ovc[ivc] = -1
			if r.count[ivc] > 0 {
				r.vaPending++ // next packet's head now fronts the ring
			}
		}
		r.ems = append(r.ems, Emission{OutPort: g.OutPort, Flit: id})
		if r.ports[req.Port].Kind == topology.Link {
			r.creds = append(r.creds, CreditMsg{Port: req.Port, VC: req.VC})
		}
	}
	return r.ems, r.creds, r.occ == 0
}

// SkipIdle fast-forwards the router across cycles consecutive ticks
// during which it held no buffered flits. An idle Tick emits nothing and
// frees no credits; its only persistent effects are the VC-allocation
// priority rotation, the clearing of the NonSpeculative just-allocated
// marks, and whatever the allocator does with an empty request set —
// which built-in allocators compress to O(1) via alloc.IdleSkipper. A
// custom allocator without SkipIdle gets the literal empty Allocate
// calls, so gated and dense runs stay byte-identical for any allocator.
//
// The caller asserts the router was empty for the skipped span; current
// buffer contents are irrelevant (the activity-gated tick calls SkipIdle
// at reactivation, after the cycle's deliveries have already landed) —
// an idle tick's effects touch nothing the buffers feed.
func (r *Router) SkipIdle(cycles int) {
	r.vaOffset += cycles
	if r.cfg.NonSpeculative {
		for i := range r.justAllocated {
			r.justAllocated[i] = false
		}
	}
	if s, ok := r.alloc.(alloc.IdleSkipper); ok {
		s.SkipIdle(cycles)
		return
	}
	r.reqs.Requests = r.reqs.Requests[:0]
	for i := 0; i < cycles; i++ {
		r.alloc.Allocate(&r.reqs)
	}
}

// allocateVCs performs the VC allocation stage: head flits at the front
// of their buffers acquire an output VC at the downstream router. Input
// VCs are visited in a rotating order for long-run fairness; the start
// index takes the single modulo, then wraps by comparison.
func (r *Router) allocateVCs() {
	pending := r.vaPending
	if pending == 0 {
		r.vaOffset++
		return
	}
	total := r.cfg.Ports * r.cfg.VCs
	idx := r.vaOffset % total
	for i := 0; i < total && pending > 0; i++ {
		ivc := idx
		idx++
		if idx == total {
			idx = 0
		}
		if r.count[ivc] == 0 || r.ovc[ivc] >= 0 {
			continue
		}
		pending--
		if !r.frontHead[ivc] {
			// A body flit without a valid output VC cannot occur: the VC
			// is held from head grant to tail departure.
			panic(fmt.Sprintf("router %d: body flit at front of unallocated VC", r.id))
		}
		out := int(r.frontRoute[ivc])
		if r.ports[out].Kind == topology.Local {
			// Ejection needs no downstream VC: the sink absorbs at link
			// bandwidth, serialised per output port by switch allocation.
			r.ovc[ivc], r.outPort[ivc] = 0, int32(out)
			r.justAllocated[ivc] = true
			r.vaPending--
			continue
		}
		v := r.chooseOVC(out, int(r.frontDst[ivc]))
		if v < 0 {
			continue // all suitable downstream VCs busy; retry next cycle
		}
		r.ovc[ivc], r.outPort[ivc] = int32(v), int32(out)
		r.busy[out*r.cfg.VCs+v] = true
		r.justAllocated[ivc] = true
		r.vaPending--
	}
	r.vaOffset++
}

// chooseOVC applies the configured Section 2.3 policy to output port out.
func (r *Router) chooseOVC(out, dst int) int {
	for g := range r.busyInGroup {
		r.busyInGroup[g] = 0
	}
	groupSize := r.acfg.GroupSize()
	vcs := r.cfg.VCs
	lo, hi := 0, vcs
	if r.vcRange != nil {
		lo, hi = r.vcRange(out, dst)
	}
	busy := r.busy[out*vcs : out*vcs+vcs]
	anyFree := false
	for v := 0; v < vcs; v++ {
		r.freeScratch[v] = !busy[v] && v >= lo && v < hi
		if busy[v] {
			r.busyInGroup[r.subgroupOf[v]]++
		} else if r.freeScratch[v] {
			anyFree = true
		}
	}
	if !anyFree {
		return -1
	}
	ctx := vaContext{
		free:        r.freeScratch,
		credits:     r.credits[out*vcs : out*vcs+vcs],
		busyInGroup: r.busyInGroup,
		nextDim:     r.nextDim(out, dst),
		groups:      r.cfg.VirtualInputs,
		groupSize:   groupSize,
	}
	return r.cfg.Policy.choose(&ctx)
}

// buildRequests assembles this cycle's switch-allocation request set:
// every input VC whose front flit has an output VC and a downstream
// credit requests its packet's output port.
func (r *Router) buildRequests() *alloc.RequestSet {
	r.reqs.Requests = r.reqs.Requests[:0]
	vcs := r.cfg.VCs
	for port := 0; port < r.cfg.Ports; port++ {
		for vc := 0; vc < vcs; vc++ {
			ivc := port*vcs + vc
			if r.count[ivc] == 0 || r.ovc[ivc] < 0 {
				continue
			}
			if r.cfg.NonSpeculative && r.justAllocated[ivc] {
				continue // VA and SA may not overlap in the same cycle
			}
			out := int(r.outPort[ivc])
			if r.ports[out].Kind == topology.Link && r.credits[out*vcs+int(r.ovc[ivc])] == 0 {
				continue
			}
			r.reqs.Requests = append(r.reqs.Requests, alloc.Request{
				Port: port, VC: vc, OutPort: out, Age: int(r.wait[ivc]),
			})
			r.wait[ivc]++
		}
	}
	return &r.reqs
}
