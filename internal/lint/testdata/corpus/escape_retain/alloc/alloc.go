// Package alloc is a minimal allocator with the scratch-returning
// Allocate contract the escape rules police.
package alloc

// Grant is one allocator decision.
type Grant struct{ In, Out int }

// A owns a scratch slice reused across Allocate calls.
type A struct{ scratch []Grant }

// New sizes the scratch once.
func New(n int) *A { return &A{scratch: make([]Grant, 0, n)} }

// Allocate returns the reused scratch slice, valid until the next
// Allocate or Reset call.
func (a *A) Allocate() []Grant { return a.scratch[:0] }

// Reset clears allocator state and invalidates outstanding grants.
func (a *A) Reset() {}
