package config

import (
	"os"
	"path/filepath"
	"testing"

	"vix/internal/network"
)

func TestDefaultBuilds(t *testing.T) {
	cfg, err := Default().Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := network.New(cfg); err != nil {
		t.Fatalf("default experiment does not build a network: %v", err)
	}
	if cfg.Topology.Radix != 5 || cfg.Topology.NumNodes != 64 {
		t.Fatalf("default topology wrong: %+v", cfg.Topology.Name)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e := Default()
	e.Topology = "fbfly"
	e.VirtualInputs = 2
	e.Allocator = "wavefront"
	e.Partition = "interleaved"
	e.Pattern = "transpose"
	e.MaxInjection = true
	e.Seed = 99

	path := filepath.Join(t.TempDir(), "exp.json")
	if err := e.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
	cfg, err := got.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology.Radix != 10 {
		t.Fatalf("fbfly radix = %d", cfg.Topology.Radix)
	}
	if _, err := network.New(cfg); err != nil {
		t.Fatalf("loaded experiment does not build: %v", err)
	}
}

func TestLoadAppliesDefaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "partial.json")
	if err := os.WriteFile(path, []byte(`{"virtual_inputs": 2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if e.VCs != 6 || e.BufDepth != 5 || e.VirtualInputs != 2 {
		t.Fatalf("defaults not applied: %+v", e)
	}
	cfg, err := e.Build()
	if err != nil {
		t.Fatal(err)
	}
	// k > 1 without explicit policy selects the balanced policy.
	if cfg.Router.Policy != "balanced" {
		t.Fatalf("implied policy = %q, want balanced", cfg.Router.Policy)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "typo.json")
	if err := os.WriteFile(path, []byte(`{"virtual_inpts": 2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("typo field accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/exp.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []func(*Experiment){
		func(e *Experiment) { e.Topology = "ring" },
		func(e *Experiment) { e.Partition = "diagonal" },
		func(e *Experiment) { e.Pattern = "chaos" },
	}
	for i, mutate := range cases {
		e := Default()
		mutate(&e)
		if _, err := e.Build(); err == nil {
			t.Errorf("case %d: invalid experiment built", i)
		}
	}
}

func TestCustomDimensions(t *testing.T) {
	e := Default()
	e.Topology = "mesh"
	e.Width, e.Height = 4, 4
	cfg, err := e.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology.NumNodes != 16 {
		t.Fatalf("4x4 mesh nodes = %d", cfg.Topology.NumNodes)
	}
	// Square default for height.
	e = Default()
	e.Width = 6
	cfg, err = e.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology.NumNodes != 36 {
		t.Fatalf("6-wide mesh nodes = %d, want 36", cfg.Topology.NumNodes)
	}
}

func TestNodeGrid(t *testing.T) {
	cases := [][3]int{{64, 8, 8}, {16, 4, 4}, {36, 6, 6}, {12, 4, 3}, {7, 7, 1}}
	for _, c := range cases {
		w, h := nodeGrid(c[0])
		if w != c[1] || h != c[2] {
			t.Errorf("nodeGrid(%d) = (%d,%d), want (%d,%d)", c[0], w, h, c[1], c[2])
		}
	}
}

func TestSaveRejectsBadPath(t *testing.T) {
	if err := Default().Save("/nonexistent-dir/x/y.json"); err == nil {
		t.Fatal("Save to bad path accepted")
	}
}

func TestCMeshAndFBflyDefaults(t *testing.T) {
	for _, name := range []string{"cmesh", "fbfly"} {
		e := Default()
		e.Topology = name
		cfg, err := e.Build()
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Topology.NumNodes != 64 {
			t.Fatalf("%s default nodes = %d", name, cfg.Topology.NumNodes)
		}
		// Square default when only width given.
		e.Width = 2
		e.Conc = 2
		cfg, err = e.Build()
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Topology.NumNodes != 2*2*2 {
			t.Fatalf("%s 2x2c2 nodes = %d", name, cfg.Topology.NumNodes)
		}
	}
}

func TestNonSpeculativeAndPartitionPlumbing(t *testing.T) {
	e := Default()
	e.NonSpeculative = true
	e.Partition = "interleaved"
	cfg, err := e.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Router.NonSpeculative {
		t.Error("NonSpeculative not plumbed")
	}
	if cfg.Router.Partition != 1 {
		t.Error("Partition not plumbed")
	}
	if e.PartitionName() != "interleaved" {
		t.Error("PartitionName wrong")
	}
	if (Experiment{}).PartitionName() != "contiguous" {
		t.Error("default PartitionName wrong")
	}
}

// Every shipped configs/*.json file must load and build, so the example
// configurations cannot rot.
func TestShippedConfigsBuild(t *testing.T) {
	matches, err := filepath.Glob("../../configs/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) < 5 {
		t.Fatalf("expected shipped config files, found %d", len(matches))
	}
	for _, path := range matches {
		e, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		cfg, err := e.Build()
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if _, err := network.New(cfg); err != nil {
			t.Errorf("%s: network rejects config: %v", path, err)
		}
	}
}
