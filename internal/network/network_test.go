package network

import (
	"math"
	"testing"

	"vix/internal/alloc"
	"vix/internal/router"
	"vix/internal/routing"
	"vix/internal/sim"
	"vix/internal/topology"
	"vix/internal/traffic"
)

func meshConfig(topo *topology.Topology, kind alloc.Kind, k int, policy router.PolicyKind) Config {
	return Config{
		Topology: topo,
		Router: router.Config{
			Ports: topo.Radix, VCs: 6, VirtualInputs: k, BufDepth: 5,
			AllocKind: kind, Policy: policy,
		},
		Pattern:       traffic.NewUniform(topo.NumNodes),
		InjectionRate: 0.05,
		PacketSize:    4,
		Seed:          42,
	}
}

// burstWorkload injects Bernoulli traffic until a cutoff cycle, then goes
// silent, letting tests drain the network completely.
type burstWorkload struct {
	until     int64
	rate      float64
	pattern   traffic.Pattern
	size      int
	generated int
	delivered int
}

func (w *burstWorkload) Generate(node int, cycle int64, rng *sim.RNG) []PacketSpec {
	if cycle >= w.until || !rng.Bernoulli(w.rate) {
		return nil
	}
	w.generated++
	return []PacketSpec{{Dst: w.pattern.Dest(node, rng), Size: w.size}}
}

func (w *burstWorkload) Delivered(d Delivery) { w.delivered++ }

// Every injected packet must be delivered, the network must drain to
// empty, and all credits must return to their initial values — on all
// three paper topologies.
func TestConservationAndDrain(t *testing.T) {
	topos := []*topology.Topology{
		topology.NewMesh(4, 4),
		topology.NewCMesh(2, 2, 4),
		topology.NewFBfly(2, 2, 4),
	}
	for _, topo := range topos {
		for _, k := range []int{1, 2} {
			w := &burstWorkload{until: 500, rate: 0.08, pattern: traffic.NewUniform(topo.NumNodes), size: 4}
			cfg := meshConfig(topo, alloc.KindSeparableIF, k, router.PolicyBalanced)
			cfg.Workload = w
			n, err := New(cfg)
			if err != nil {
				t.Fatalf("%s k=%d: %v", topo.Name, k, err)
			}
			n.Run(500)
			for i := 0; i < 20000 && (n.InFlight() > 0 || n.QueuedAtSources() > 0); i++ {
				n.Step()
			}
			if n.InFlight() != 0 || n.QueuedAtSources() != 0 {
				t.Fatalf("%s k=%d: network did not drain: inflight=%d queued=%d",
					topo.Name, k, n.InFlight(), n.QueuedAtSources())
			}
			if w.delivered != w.generated {
				t.Fatalf("%s k=%d: generated %d packets, delivered %d",
					topo.Name, k, w.generated, w.delivered)
			}
			// All credits restored and all buffers empty.
			for _, rt := range n.Routers() {
				if rt.Occupancy() != 0 {
					t.Fatalf("%s k=%d: router %d still holds flits", topo.Name, k, rt.ID())
				}
				for p := 0; p < topo.Radix; p++ {
					if topo.Conn[rt.ID()][p].Kind != topology.Link {
						continue
					}
					for v := 0; v < 6; v++ {
						if got := rt.Credits(p, v); got != 5 {
							t.Fatalf("%s k=%d: router %d port %d vc %d credits %d, want 5",
								topo.Name, k, rt.ID(), p, v, got)
						}
					}
				}
			}
		}
	}
}

// singlePacket injects exactly one packet at a chosen cycle.
type singlePacket struct {
	src, dst, size int
	at             int64
	done           bool
	delivery       *Delivery
}

func (w *singlePacket) Generate(node int, cycle int64, rng *sim.RNG) []PacketSpec {
	if w.done || node != w.src || cycle < w.at {
		return nil
	}
	w.done = true
	return []PacketSpec{{Dst: w.dst, Size: w.size}}
}

func (w *singlePacket) Delivered(d Delivery) { w.delivery = &d }

// Zero-load latency must match the pipeline model exactly:
// HopDelay*(hops+1) + (size-1) cycles from generation to tail ejection.
func TestZeroLoadLatencyFormula(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	route := routing.DOR(topo)
	cases := []struct{ src, dst, size int }{
		{0, 63, 4},  // corner to corner: 14 hops
		{0, 1, 1},   // neighbour single flit
		{9, 36, 4},  // mid-distance
		{5, 40, 16}, // long packet
	}
	for _, c := range cases {
		w := &singlePacket{src: c.src, dst: c.dst, size: c.size, at: 10}
		cfg := meshConfig(topo, alloc.KindSeparableIF, 1, router.PolicyMaxFree)
		cfg.Workload = w
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Run(300 + 3*c.size)
		if w.delivery == nil {
			t.Fatalf("%d->%d packet not delivered", c.src, c.dst)
		}
		hops := routing.Hops(topo, route, c.src, c.dst)
		want := int64(DefaultHopDelay*(hops+1) + c.size - 1)
		got := w.delivery.EjectCycle - w.delivery.CreateCycle
		if got != want {
			t.Errorf("%d->%d size %d: latency %d, want %d", c.src, c.dst, c.size, got, want)
		}
		if w.delivery.Hops != hops {
			t.Errorf("%d->%d: recorded hops %d, want %d", c.src, c.dst, w.delivery.Hops, hops)
		}
	}
}

// Flits of each packet must eject in sequence order (wormhole integrity),
// even under heavy congested traffic with VIX enabled.
func TestFlitOrderingUnderLoad(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	cfg := meshConfig(topo, alloc.KindSeparableIF, 2, router.PolicyBalanced)
	cfg.MaxInjection = true
	cfg.InjectionRate = 0
	lastSeq := map[uint64]int{}
	cfg.OnEject = func(f *router.Flit) {
		if prev, ok := lastSeq[f.PacketID]; ok && f.Seq != prev+1 {
			t.Fatalf("packet %d flit %d ejected after %d", f.PacketID, f.Seq, prev)
		}
		lastSeq[f.PacketID] = f.Seq
		if f.Type.IsTail() {
			if f.Seq != f.PacketSize-1 {
				t.Fatalf("packet %d tail has seq %d of %d", f.PacketID, f.Seq, f.PacketSize)
			}
			delete(lastSeq, f.PacketID)
		}
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(3000)
	s := n.Collector().Snapshot()
	if s.FlitsEjected == 0 {
		t.Fatal("no traffic flowed")
	}
}

// Same seed, same configuration: identical results.
func TestNetworkDeterminism(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	run := func() (int64, float64) {
		n, err := New(meshConfig(topo, alloc.KindSeparableIF, 2, router.PolicyBalanced))
		if err != nil {
			t.Fatal(err)
		}
		n.Warmup(500)
		s := n.Measure(1000)
		return s.FlitsEjected, s.AvgLatency
	}
	f1, l1 := run()
	f2, l2 := run()
	if f1 != f2 || l1 != l2 {
		t.Fatalf("same seed diverged: (%d, %v) vs (%d, %v)", f1, l1, f2, l2)
	}
}

// Different seeds should give (slightly) different results — the RNG is
// actually being used.
func TestSeedMatters(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	cfg := meshConfig(topo, alloc.KindSeparableIF, 1, router.PolicyMaxFree)
	n1, _ := New(cfg)
	cfg.Seed = 43
	n2, _ := New(cfg)
	n1.Warmup(200)
	n2.Warmup(200)
	s1 := n1.Measure(800)
	s2 := n2.Measure(800)
	if s1.AvgLatency == s2.AvgLatency && s1.FlitsEjected == s2.FlitsEjected {
		t.Fatal("different seeds produced identical statistics")
	}
}

// The headline network-level claim on a small mesh: VIX saturation
// throughput exceeds baseline IF by a clear margin.
func TestVIXThroughputGainAtSaturation(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	run := func(k int, policy router.PolicyKind) float64 {
		cfg := meshConfig(topo, alloc.KindSeparableIF, k, policy)
		cfg.MaxInjection = true
		cfg.InjectionRate = 0
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Warmup(1000)
		return n.Measure(3000).ThroughputFlits
	}
	base := run(1, router.PolicyMaxFree)
	vix := run(2, router.PolicyBalanced)
	if vix < 1.08*base {
		t.Fatalf("VIX throughput %.4f not at least 8%% over baseline %.4f", vix, base)
	}
}

// At low load all allocation schemes perform nearly identically (the
// paper's observation about Figure 8).
func TestLowLoadLatencyInsensitiveToAllocator(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	var lats []float64
	for _, kind := range []alloc.Kind{alloc.KindSeparableIF, alloc.KindWavefront, alloc.KindAugmentingPath} {
		cfg := meshConfig(topo, kind, 1, router.PolicyMaxFree)
		cfg.InjectionRate = 0.02
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Warmup(500)
		lats = append(lats, n.Measure(2000).AvgLatency)
	}
	for _, l := range lats[1:] {
		if math.Abs(l-lats[0])/lats[0] > 0.05 {
			t.Fatalf("low-load latencies diverge: %v", lats)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	good := meshConfig(topo, alloc.KindSeparableIF, 1, router.PolicyMaxFree)
	if _, err := New(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(c *Config){
		func(c *Config) { c.Topology = nil },
		func(c *Config) { c.Pattern = nil },
		func(c *Config) { c.Router.Ports = 3 },
		func(c *Config) { c.InjectionRate = -1 },
		func(c *Config) { c.InjectionRate = 0 },
		func(c *Config) { c.Router.BufDepth = 0 },
		func(c *Config) { c.Router.AllocKind = "bogus" },
		func(c *Config) { c.PacketSize = -2 },
	}
	for i, mutate := range cases {
		cfg := meshConfig(topo, alloc.KindSeparableIF, 1, router.PolicyMaxFree)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// Defaults are applied: zero HopDelay/CreditDelay/PacketSize pick the
// paper's three-stage pipeline values.
func TestDefaults(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	cfg := meshConfig(topo, alloc.KindSeparableIF, 1, router.PolicyMaxFree)
	cfg.PacketSize = 0
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(200)
	if n.Cycle() != 200 {
		t.Fatalf("cycle = %d", n.Cycle())
	}
}

// Wavefront and AP also run end-to-end on the full stack and deliver
// comparable traffic (sanity integration of every allocator kind).
func TestAllAllocatorsEndToEnd(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	for _, kind := range []alloc.Kind{alloc.KindSeparableIF, alloc.KindWavefront, alloc.KindAugmentingPath, alloc.KindPacketChaining} {
		cfg := meshConfig(topo, kind, 1, router.PolicyMaxFree)
		n, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		n.Warmup(300)
		s := n.Measure(700)
		// Offered load 0.05*4 = 0.2 flits/node/cycle, well below
		// saturation: all schemes must accept nearly all of it.
		if s.ThroughputFlits < 0.17 {
			t.Errorf("%s: accepted %.4f flits/node/cycle at offered 0.2", kind, s.ThroughputFlits)
		}
	}
	// Ideal allocator needs per-VC geometry.
	cfg := meshConfig(topo, alloc.KindIdeal, 6, router.PolicyMaxFree)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Warmup(300)
	if s := n.Measure(700); s.ThroughputFlits < 0.17 {
		t.Errorf("ideal: accepted %.4f flits/node/cycle at offered 0.2", s.ThroughputFlits)
	}
}

// The forward-progress watchdog trips when flits sit in flight with no
// ejection. An artificially tiny threshold makes ordinary pipeline
// latency look like a stall, which exercises the mechanism without
// needing a genuinely deadlocked configuration (DOR cannot deadlock).
func TestDeadlockWatchdogTrips(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	w := &singlePacket{src: 0, dst: 15, size: 4, at: 0}
	cfg := meshConfig(topo, alloc.KindSeparableIF, 1, router.PolicyMaxFree)
	cfg.Workload = w
	cfg.DeadlockCycles = 2 // absurdly tight: pipeline latency alone exceeds it
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("watchdog did not trip at threshold 2")
		}
	}()
	n.Run(100)
}

// With the default threshold the watchdog never trips on healthy
// saturated traffic.
func TestDeadlockWatchdogQuietOnHealthyTraffic(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	cfg := meshConfig(topo, alloc.KindSeparableIF, 2, router.PolicyBalanced)
	cfg.MaxInjection = true
	cfg.InjectionRate = 0
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(3000) // panics on watchdog failure
}

// A negative DeadlockCycles disables the watchdog entirely.
func TestDeadlockWatchdogDisabled(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	w := &singlePacket{src: 0, dst: 15, size: 4, at: 0}
	cfg := meshConfig(topo, alloc.KindSeparableIF, 1, router.PolicyMaxFree)
	cfg.Workload = w
	cfg.DeadlockCycles = -1
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(500) // must not panic even though long idle stretches occur
}

// The interleaved VC partition runs end-to-end and still shows the VIX
// throughput gain.
func TestInterleavedPartitionEndToEnd(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	cfg := meshConfig(topo, alloc.KindSeparableIF, 2, router.PolicyBalanced)
	cfg.Router.Partition = alloc.Interleaved
	cfg.MaxInjection = true
	cfg.InjectionRate = 0
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Warmup(800)
	s := n.Measure(2000)
	if s.ThroughputFlits < 0.3 {
		t.Fatalf("interleaved VIX throughput %.4f suspiciously low", s.ThroughputFlits)
	}
}

// Oldest-first (age-aware) allocation must improve the latency tail
// relative to plain rotating arbitration at identical load: p99 and max
// latency shrink, average stays comparable.
func TestAgeAllocationImprovesTail(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	run := func(kind alloc.Kind) (avg float64, p99, max int64) {
		cfg := meshConfig(topo, kind, 1, router.PolicyMaxFree)
		cfg.InjectionRate = 0.085 // near saturation, where queueing tails form
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Warmup(1500)
		s := n.Measure(5000)
		return s.AvgLatency, s.P99Latency, s.MaxLatency
	}
	avgIF, p99IF, maxIF := run(alloc.KindSeparableIF)
	avgAge, p99Age, maxAge := run(alloc.KindSeparableAge)
	if p99Age >= p99IF && maxAge >= maxIF {
		t.Fatalf("age allocation did not improve the tail: p99 %d->%d, max %d->%d",
			p99IF, p99Age, maxIF, maxAge)
	}
	if avgAge > 1.15*avgIF {
		t.Fatalf("age allocation hurt average latency: %.2f vs %.2f", avgAge, avgIF)
	}
}

// Property: conservation holds for arbitrary legal configurations —
// random topology sizes, VC counts, virtual inputs, buffer depths,
// allocators, packet sizes, and loads. Every generated packet is
// delivered and the network drains clean.
func TestConservationProperty(t *testing.T) {
	rng := sim.NewRNG(777)
	kinds := []alloc.Kind{
		alloc.KindSeparableIF, alloc.KindWavefront, alloc.KindAugmentingPath,
		alloc.KindPacketChaining, alloc.KindISLIP, alloc.KindSeparableAge,
	}
	for trial := 0; trial < 25; trial++ {
		w := 2 + rng.Intn(3)
		h := 2 + rng.Intn(3)
		var topo *topology.Topology
		switch rng.Intn(3) {
		case 0:
			topo = topology.NewMesh(w, h)
		case 1:
			topo = topology.NewCMesh(w, h, 1+rng.Intn(3))
		default:
			topo = topology.NewFBfly(w, h, 1+rng.Intn(3))
		}
		vcs := 2 + rng.Intn(5)
		k := 1 + rng.Intn(2)
		if k > vcs {
			k = vcs
		}
		kind := kinds[rng.Intn(len(kinds))]
		part := alloc.Partition(rng.Intn(2))
		policy := []router.PolicyKind{router.PolicyMaxFree, router.PolicyDimension, router.PolicyBalanced}[rng.Intn(3)]
		wl := &burstWorkload{
			until:   300,
			rate:    0.02 + 0.06*rng.Float64(),
			pattern: traffic.NewUniform(topo.NumNodes),
			size:    1 + rng.Intn(6),
		}
		cfg := Config{
			Topology: topo,
			Router: router.Config{
				Ports: topo.Radix, VCs: vcs, VirtualInputs: k,
				BufDepth: 2 + rng.Intn(6), AllocKind: kind, Policy: policy,
				Partition:      part,
				NonSpeculative: rng.Intn(2) == 0,
			},
			Workload: wl,
			Seed:     rng.Uint64(),
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatalf("trial %d (%s on %s): %v", trial, kind, topo.Name, err)
		}
		n.Run(300)
		for i := 0; i < 30000 && (n.InFlight() > 0 || n.QueuedAtSources() > 0); i++ {
			n.Step()
		}
		if n.InFlight() != 0 || n.QueuedAtSources() != 0 {
			t.Fatalf("trial %d (%s, %s, vcs=%d k=%d): stuck with %d in flight",
				trial, kind, topo.Name, vcs, k, n.InFlight())
		}
		if wl.delivered != wl.generated {
			t.Fatalf("trial %d (%s, %s): generated %d, delivered %d",
				trial, kind, topo.Name, wl.generated, wl.delivered)
		}
	}
}

// Concentrated topologies eject through multiple local ports: one CMesh
// router can deliver up to conc flits per cycle (one per local port),
// while a single local port never exceeds one flit per cycle.
func TestConcentratedEjectionBandwidth(t *testing.T) {
	topo := topology.NewCMesh(2, 2, 4)
	perCycle := map[int64]map[int]int{} // cycle -> node -> flits
	cfg := meshConfig(topo, alloc.KindSeparableIF, 2, router.PolicyBalanced)
	cfg.MaxInjection = true
	cfg.InjectionRate = 0
	var n *Network
	cfg.OnEject = func(f *router.Flit) {
		c := n.Cycle()
		if perCycle[c] == nil {
			perCycle[c] = map[int]int{}
		}
		perCycle[c][f.Dst]++
	}
	var err error
	n, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(2000)

	maxPerRouter := 0
	for _, nodes := range perCycle {
		perRouter := map[int]int{}
		for node, count := range nodes {
			if count > 1 {
				t.Fatalf("node %d received %d flits in one cycle", node, count)
			}
			perRouter[topo.NodeRouter[node]] += count
		}
		for _, c := range perRouter {
			if c > maxPerRouter {
				maxPerRouter = c
			}
		}
	}
	if maxPerRouter > topo.Conc {
		t.Fatalf("router ejected %d flits in one cycle, conc is %d", maxPerRouter, topo.Conc)
	}
	if maxPerRouter < 2 {
		t.Fatalf("saturated CMesh never used parallel ejection (max %d/cycle)", maxPerRouter)
	}
}

// Adaptive warmup converges on a steady workload and the subsequent
// measurement matches a long fixed warmup within a few percent.
func TestRunToSteadyState(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	cfg := meshConfig(topo, alloc.KindSeparableIF, 2, router.PolicyBalanced)
	cfg.MaxInjection = true
	cfg.InjectionRate = 0
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cycles, converged := n.RunToSteadyState(400, 0.03, 20000)
	if !converged {
		t.Fatalf("did not converge in %d cycles", cycles)
	}
	adaptive := n.Measure(2000).ThroughputFlits

	n2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n2.Warmup(5000)
	fixed := n2.Measure(2000).ThroughputFlits
	if math.Abs(adaptive-fixed)/fixed > 0.06 {
		t.Fatalf("adaptive warmup measurement %.4f far from fixed-warmup %.4f", adaptive, fixed)
	}
}

// The steady-state helper gives up (converged=false) when maxCycles is
// too small to see two windows.
func TestRunToSteadyStateBudget(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	n, err := New(meshConfig(topo, alloc.KindSeparableIF, 1, router.PolicyMaxFree))
	if err != nil {
		t.Fatal(err)
	}
	if cycles, converged := n.RunToSteadyState(400, 0.0001, 400); converged {
		t.Fatalf("claimed convergence after %d cycles with one window", cycles)
	}
	// Defaults kick in for nonsense arguments.
	if cycles, _ := n.RunToSteadyState(-1, -1, 1000); cycles == 0 {
		t.Fatal("defaulted window ran zero cycles")
	}
}
