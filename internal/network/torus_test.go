package network

import (
	"fmt"
	"testing"

	"vix/internal/alloc"
	"vix/internal/router"
	"vix/internal/topology"
)

// TestTorusCoincidesWithMeshAt2x2 pins the wrap-free equivalence the
// torus construction promises: rings of fewer than three routers carry
// no wraparound link, so a 2x2 torus is wired identically to the 2x2
// mesh and torus DOR's tie-break picks the mesh direction — the two
// simulations must be byte-identical, not merely statistically close.
func TestTorusCoincidesWithMeshAt2x2(t *testing.T) {
	run := func(topo *topology.Topology) interface{} {
		cfg := meshConfig(topo, alloc.KindSeparableIF, 2, router.PolicyBalanced)
		cfg.MaxInjection = true
		cfg.InjectionRate = 0
		cfg.Seed = 9
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		n.Warmup(300)
		return n.Measure(900)
	}
	mesh := run(topology.NewMesh(2, 2))
	torus := run(topology.NewTorus(2, 2))
	if mesh != torus {
		t.Fatalf("2x2 torus diverged from 2x2 mesh\nmesh:  %+v\ntorus: %+v", mesh, torus)
	}
}

// TestTorusSaturationDeadlockFree drives tori with real wraparound rings
// (even and odd sizes) at maximum injection — the regime that closes the
// ring dependency cycles if the dateline classes fail — under a tight
// forward-progress watchdog. A wedged network panics; a healthy one
// keeps ejecting.
func TestTorusSaturationDeadlockFree(t *testing.T) {
	for _, size := range []int{4, 5} {
		t.Run(fmt.Sprintf("%dx%d", size, size), func(t *testing.T) {
			topo := topology.NewTorus(size, size)
			cfg := meshConfig(topo, alloc.KindSeparableIF, 2, router.PolicyBalanced)
			cfg.MaxInjection = true
			cfg.InjectionRate = 0
			cfg.Seed = 3
			cfg.DeadlockCycles = 2500
			n, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer n.Close()
			n.Warmup(500)
			s := n.Measure(5000)
			if s.PacketsEjected <= 0 {
				t.Fatalf("saturated %dx%d torus ejected nothing", size, size)
			}
		})
	}
}

// TestTorusParallelAndGateLockstep runs the full workers x activity-gate
// matrix on a torus with live wrap links: the sharded phase-A workers
// and the gated worklist must reproduce the serial dense tick exactly on
// the wraparound geometry too (wrap links connect routers in different
// shards by construction).
func TestTorusParallelAndGateLockstep(t *testing.T) {
	run := func(workers int, disableGate bool) interface{} {
		topo := topology.NewTorus(6, 6)
		cfg := meshConfig(topo, alloc.KindSeparableIF, 2, router.PolicyBalanced)
		cfg.InjectionRate = 0.04
		cfg.Seed = 5
		cfg.Workers = workers
		cfg.DisableActivityGate = disableGate
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		n.Warmup(400)
		return n.Measure(1600)
	}
	ref := run(1, true)
	for _, workers := range []int{1, 4} {
		for _, disableGate := range []bool{false, true} {
			if workers == 1 && disableGate {
				continue // the reference itself
			}
			if got := run(workers, disableGate); got != ref {
				t.Fatalf("torus lockstep diverged at workers=%d gateOff=%v\nref: %+v\ngot: %+v",
					workers, disableGate, ref, got)
			}
		}
	}
}

// TestTorusNeedsTwoVCs: a torus with wraparound rings must be rejected
// when the router has fewer than two VCs — the dateline scheme has
// nothing to split. The wrap-free 2x2 torus stays legal with one VC.
func TestTorusNeedsTwoVCs(t *testing.T) {
	cfg := meshConfig(topology.NewTorus(4, 4), alloc.KindSeparableIF, 1, router.PolicyMaxFree)
	cfg.Router.VCs = 1
	if _, err := New(cfg); err == nil {
		t.Fatal("4x4 torus with 1 VC was accepted; the dateline classes need at least 2")
	}
	cfg = meshConfig(topology.NewTorus(2, 2), alloc.KindSeparableIF, 1, router.PolicyMaxFree)
	cfg.Router.VCs = 1
	n, err := New(cfg)
	if err != nil {
		t.Fatalf("wrap-free 2x2 torus with 1 VC rejected: %v", err)
	}
	n.Close()
}
