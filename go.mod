module vix

go 1.22
