package experiments

import (
	"context"

	"vix/internal/energy"
	"vix/internal/harness"
	"vix/internal/router"
	"vix/internal/routerbench"
	"vix/internal/timing"
	"vix/internal/topology"
)

// --- Figure 7: single-router switch allocation efficiency ---

// Fig7Row is one (radix, scheme) point of Figure 7.
type Fig7Row struct {
	Radix         int
	Scheme        string
	FlitsPerCycle float64
	Efficiency    float64
	GainOverIF    float64 // throughput relative to IF at the same radix
}

// Figure7 runs the single-router testbench for radices 5, 8, and 10 with
// 6 VCs, single-flit packets, for IF, WF, AP, VIX, and ideal.
func Figure7(p Params) ([]Fig7Row, error) {
	radices := []int{5, 8, 10}
	res, err := routerbench.Figure7(radices, p.VCs, 1, p.Warmup, p.Measure, p.Seed)
	if err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for i, radix := range radices {
		ifRate := res[i][0].FlitsPerCycle
		for j, s := range routerbench.Figure7Schemes() {
			r := res[i][j]
			rows = append(rows, Fig7Row{
				Radix:         radix,
				Scheme:        s.Label,
				FlitsPerCycle: r.FlitsPerCycle,
				Efficiency:    r.Efficiency,
				GainOverIF:    r.FlitsPerCycle / ifRate,
			})
		}
	}
	return rows, nil
}

// --- Figure 8: mesh latency and throughput versus offered load ---

// Fig8Point is one (scheme, injection-rate) sample.
type Fig8Point struct {
	Scheme     string
	Rate       float64 // offered packets/cycle/node; 0 marks saturation
	AvgLatency float64
	Throughput float64 // accepted flits/cycle/node
}

// Figure8Rates returns the default offered-load sweep (packets per cycle
// per node) for the 8x8 mesh with 4-flit packets.
func Figure8Rates() []float64 {
	return []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09}
}

// Figure8 sweeps offered load on the 8x8 mesh for the four network
// schemes and appends a saturation point (MaxInjection) per scheme. It
// is the serial form of Figure8Opt.
func Figure8(p Params, rates []float64) ([]Fig8Point, error) {
	return Figure8Opt(context.Background(), p, rates, harness.Serial())
}

// Figure8Grid builds the figure's simulation points: every scheme at
// every rate, plus a saturation point per scheme, in canonical order.
func Figure8Grid(p Params, rates []float64) []GridPoint {
	topo := topology.NewMesh(8, 8)
	if rates == nil {
		rates = Figure8Rates()
	}
	var pts []GridPoint
	for _, s := range NetworkSchemes() {
		for _, rate := range rates {
			pts = append(pts, GridPoint{
				Labels: []string{"fig8", s.Label, rateLabel(rate, false)},
				Config: buildConfig(topo, s, p, rate, false),
				Warmup: p.Warmup, Measure: p.Measure,
			})
		}
		pts = append(pts, GridPoint{
			Labels: []string{"fig8", s.Label, rateLabel(0, true)},
			Config: buildConfig(topo, s, p, 0, true),
			Warmup: p.Warmup, Measure: p.Measure,
		})
	}
	return pts
}

// Figure8Opt runs the Figure 8 grid through the harness — points fan out
// across opt.Parallel workers and the returned rows are in canonical
// order whatever the completion order.
func Figure8Opt(ctx context.Context, p Params, rates []float64, opt harness.Options) ([]Fig8Point, error) {
	if rates == nil {
		rates = Figure8Rates()
	}
	grid := Figure8Grid(p, rates)
	snaps, err := RunGrid(ctx, p.Seed, grid, opt)
	if err != nil {
		return nil, err
	}
	perScheme := len(rates) + 1
	pts := make([]Fig8Point, len(grid))
	for i, snap := range snaps {
		rate := 0.0
		if r := i % perScheme; r < len(rates) {
			rate = rates[r]
		}
		pts[i] = Fig8Point{
			Scheme:     NetworkSchemes()[i/perScheme].Label,
			Rate:       rate,
			AvgLatency: snap.AvgLatency,
			Throughput: snap.ThroughputFlits,
		}
	}
	return pts, nil
}

// --- Figure 9: fairness on the mesh ---

// Fig9Row is one scheme's fairness at saturation.
type Fig9Row struct {
	Scheme      string
	MaxMinRatio float64
	Throughput  float64
}

// Figure9 measures the max/min per-source throughput ratio on the 8x8
// mesh at maximum injection for all four schemes.
func Figure9(p Params) ([]Fig9Row, error) {
	topo := topology.NewMesh(8, 8)
	var rows []Fig9Row
	for _, s := range NetworkSchemes() {
		snap, err := SaturationThroughput(topo, s, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig9Row{Scheme: s.Label, MaxMinRatio: snap.FairnessRatio, Throughput: snap.ThroughputFlits})
	}
	return rows, nil
}

// --- Figure 10: packet chaining comparison ---

// Fig10Row is one scheme's saturation throughput on single-flit packets.
type Fig10Row struct {
	Scheme     string
	Throughput float64 // flits/cycle/node
	GainOverIF float64
}

// Figure10 compares IF, WF, AP, PC, and VIX on the 8x8 mesh with
// single-flit uniform traffic at maximum injection (Section 4.4).
func Figure10(p Params) ([]Fig10Row, error) {
	p.PacketSize = 1
	topo := topology.NewMesh(8, 8)
	schemes := NetworkSchemes()
	// Insert packet chaining before VIX, matching the figure's ordering.
	schemes = append(schemes[:3:3], Scheme{Label: "PC", Kind: "pc", Policy: "maxfree", K: 1}, schemes[3])
	var rows []Fig10Row
	var ifThr float64
	for _, s := range schemes {
		snap, err := SaturationThroughput(topo, s, p)
		if err != nil {
			return nil, err
		}
		if s.Label == "IF" {
			ifThr = snap.ThroughputFlits
		}
		rows = append(rows, Fig10Row{Scheme: s.Label, Throughput: snap.ThroughputFlits})
	}
	for i := range rows {
		rows[i].GainOverIF = rows[i].Throughput / ifThr
	}
	return rows, nil
}

// --- Figure 11: network energy per bit ---

// Fig11Row is the energy breakdown for one configuration.
type Fig11Row struct {
	Scheme    string
	Breakdown energy.Breakdown
}

// Figure11 measures energy per bit for the baseline and VIX mesh at the
// paper's 0.1 packets/cycle/node operating point.
func Figure11(p Params) ([]Fig11Row, error) {
	return EnergyStudy(topology.NewMesh(8, 8), p, 0.1)
}

// EnergyStudy runs the Figure 11 methodology on any topology and load:
// the paper evaluates the mesh, but the same activity-driven model covers
// the higher-radix topologies (cmd/energymodel -topo).
func EnergyStudy(topo *topology.Topology, p Params, rate float64) ([]Fig11Row, error) {
	params := energy.DefaultParams()
	schemes := []Scheme{NetworkSchemes()[0], NetworkSchemes()[3]} // IF, VIX
	var rows []Fig11Row
	for _, s := range schemes {
		snap, err := runOne(topo, s, p, rate, false)
		if err != nil {
			return nil, err
		}
		k := s.K
		b, err := energy.PerBit(params, snap, energy.Network{
			Routers: topo.NumRouters,
			XbarIn:  k * topo.Radix, XbarOut: topo.Radix,
			K: k, FlitBits: 128,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig11Row{Scheme: s.Label, Breakdown: b})
	}
	return rows, nil
}

// --- Figure 12: impact of increasing virtual inputs ---

// Fig12Row is one (topology, VCs, configuration) saturation throughput.
type Fig12Row struct {
	Topology   string
	VCs        int
	Config     string // "no VIX", "1:2 VIX", "ideal VIX"
	K          int
	Throughput float64
}

// Figure12 measures saturation throughput for no VIX (k=1), 1:2 VIX
// (k=2), and ideal VIX (k=v) on all three topologies with 4 and 6 VCs.
func Figure12(p Params) ([]Fig12Row, error) {
	var rows []Fig12Row
	for _, topo := range Topologies() {
		for _, vcs := range []int{4, 6} {
			q := p
			q.VCs = vcs
			cfgs := []struct {
				name string
				k    int
			}{
				{"no VIX", 1},
				{"1:2 VIX", 2},
				{"ideal VIX", vcs},
			}
			for _, c := range cfgs {
				s := Scheme{Label: c.name, Kind: "if", K: c.k, Policy: router12Policy(c.k)}
				snap, err := SaturationThroughput(topo, s, q)
				if err != nil {
					return nil, err
				}
				rows = append(rows, Fig12Row{
					Topology: topo.Name, VCs: vcs, Config: c.name, K: c.k,
					Throughput: snap.ThroughputFlits,
				})
			}
		}
	}
	return rows, nil
}

// router12Policy picks the VC-assignment policy for a Figure 12 point:
// sub-group aware once there is more than one virtual input.
func router12Policy(k int) router.PolicyKind {
	if k > 1 {
		return router.PolicyBalanced
	}
	return router.PolicyMaxFree
}

// --- Tables 1 and 3 re-exported for uniform access ---

// Table1 returns the router pipeline stage delays.
func Table1() []timing.StageDelays { return timing.Table1() }

// Table3 returns the switch-allocator delays.
func Table3() []timing.AllocatorDelay { return timing.Table3() }
