package network

import (
	"crypto/sha256"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"vix/internal/alloc"
	"vix/internal/router"
	"vix/internal/stats"
	"vix/internal/topology"
)

// The arena baseline goldens were generated from the pointer-per-flit
// layout that predates the arena/SoA refactor (regenerate only after an
// audited physics change with -update-arena-baseline). Every run mode —
// workers ∈ {1, 4} × activity gate on/off — must reproduce the committed
// snapshot and the exact ejection sequence digest, so the refactored hot
// path is pinned byte-for-byte against the layout it replaced, not just
// against itself.
var updateArenaBaseline = flag.Bool("update-arena-baseline", false,
	"rewrite internal/network/testdata/arena_baseline goldens from the current implementation")

type arenaBaselineCase struct {
	name   string
	warmup int
	cycles int
	build  func() Config
}

func arenaBaselineCases() []arenaBaselineCase {
	return []arenaBaselineCase{
		{
			// Saturated VIX mesh: the allocator-heavy regime where every
			// router ticks every cycle.
			name: "mesh8x8_if2_sat", warmup: 400, cycles: 1200,
			build: func() Config {
				cfg := meshConfig(topology.NewMesh(8, 8), alloc.KindSeparableIF, 2, router.PolicyBalanced)
				cfg.InjectionRate = 0
				cfg.MaxInjection = true
				cfg.Seed = 7
				return cfg
			},
		},
		{
			// Moderate load on a 16x16 mesh: exercises the activity gate's
			// mixed busy/idle regime.
			name: "mesh16x16_if2_low", warmup: 500, cycles: 1500,
			build: func() Config {
				return meshConfig(topology.NewMesh(16, 16), alloc.KindSeparableIF, 2, router.PolicyBalanced)
			},
		},
		{
			// Concentrated mesh with the wavefront allocator: radix-8
			// routers, four nodes per router.
			name: "cmesh4x4c4_wavefront", warmup: 400, cycles: 1200,
			build: func() Config {
				return meshConfig(topology.NewCMesh(4, 4, 4), alloc.KindWavefront, 1, router.PolicyMaxFree)
			},
		},
		{
			// Flattened butterfly with packet chaining: the long-radix
			// geometry plus the stateful chaining allocator.
			name: "fbfly4x4c4_pc", warmup: 400, cycles: 1200,
			build: func() Config {
				return meshConfig(topology.NewFBfly(4, 4, 4), alloc.KindPacketChaining, 2, router.PolicyBalanced)
			},
		},
		{
			// The scale target itself at light load: 1024 routers, kept
			// short so the 4-mode matrix stays tractable under -race.
			name: "mesh32x32_if2_low", warmup: 200, cycles: 600,
			build: func() Config {
				cfg := meshConfig(topology.NewMesh(32, 32), alloc.KindSeparableIF, 2, router.PolicyBalanced)
				cfg.InjectionRate = 0.02
				return cfg
			},
		},
	}
}

// runArenaBaseline executes one case in the given mode and returns the
// measurement snapshot plus a digest over the full ejection sequence
// (warmup included), which pins the order of every queue append.
func runArenaBaseline(t *testing.T, tc arenaBaselineCase, workers int, gateOff bool) (stats.Snapshot, string, int) {
	t.Helper()
	cfg := tc.build()
	cfg.Workers = workers
	cfg.DisableActivityGate = gateOff
	h := sha256.New()
	count := 0
	var buf [7 * 8]byte
	cfg.OnEject = func(f *router.Flit) {
		count++
		binary.LittleEndian.PutUint64(buf[0:], f.PacketID)
		binary.LittleEndian.PutUint64(buf[8:], uint64(f.Seq))
		binary.LittleEndian.PutUint64(buf[16:], uint64(f.Src))
		binary.LittleEndian.PutUint64(buf[24:], uint64(f.Dst))
		binary.LittleEndian.PutUint64(buf[32:], uint64(f.CreateCycle))
		binary.LittleEndian.PutUint64(buf[40:], uint64(f.EjectCycle))
		binary.LittleEndian.PutUint64(buf[48:], uint64(f.Hops))
		h.Write(buf[:])
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Warmup(tc.warmup)
	snap := n.Measure(tc.cycles)
	return snap, fmt.Sprintf("%x", h.Sum(nil)), count
}

// formatArenaBaseline renders a run to the golden text format. %v of a
// Snapshot round-trips every field (including a +Inf fairness ratio,
// which JSON cannot carry), and the digest line compresses the ejection
// sequence without storing thousands of records.
func formatArenaBaseline(snap stats.Snapshot, digest string, count int) string {
	return fmt.Sprintf("snapshot: %+v\nejections: %d\ndigest: %s\n", snap, count, digest)
}

func arenaBaselinePath(name string) string {
	return filepath.Join("testdata", "arena_baseline", name+".golden")
}

func TestArenaLockstepWithCommittedBaseline(t *testing.T) {
	for _, tc := range arenaBaselineCases() {
		t.Run(tc.name, func(t *testing.T) {
			path := arenaBaselinePath(tc.name)
			if *updateArenaBaseline {
				// The canonical reference is the dense serial loop:
				// workers=1, activity gate off.
				snap, digest, count := runArenaBaseline(t, tc, 1, true)
				if count == 0 {
					t.Fatalf("update: case %s ejected nothing; workload broken", tc.name)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(formatArenaBaseline(snap, digest, count)), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d ejections)", path, count)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-arena-baseline at the pre-arena revision): %v", err)
			}
			for _, workers := range []int{1, 4} {
				for _, gateOff := range []bool{false, true} {
					snap, digest, count := runArenaBaseline(t, tc, workers, gateOff)
					got := formatArenaBaseline(snap, digest, count)
					if got != string(want) {
						t.Errorf("workers=%d gateOff=%v diverged from committed baseline:\n got %swant %s",
							workers, gateOff, got, want)
					}
				}
			}
		})
	}
}
