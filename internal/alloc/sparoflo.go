package alloc

import "vix/internal/arb"

// Sparoflo approximates the SPAROFLO switch allocator of Kumar et al.
// (ICCD 2007), discussed in the paper's related work: more than one
// request per input port is presented to the output arbiters, but the
// crossbar remains a conventional P x P — only one request per physical
// input port can ultimately be granted. Conflicts where two output
// arbiters select different VCs of the same input port are therefore
// detected *after* output arbitration and resolved by priority, losing
// the extra grants.
//
// This is the paper's sharpest contrast with VIX: both expose more
// requests to the outputs, but without virtual inputs the exposed
// parallelism cannot be cashed in. The expected ordering — IF <=
// SPAROFLO <= VIX — is asserted by the test suite and measurable with
// the ablation benchmarks.
type Sparoflo struct {
	cfg Config
	// exposed is how many VC requests per input port are presented to
	// output arbitration (SPAROFLO varies this with load; the model
	// exposes up to two, matching its low/medium-load behaviour).
	exposed    int
	inputArbs  []arb.Arbiter // per port, over VCs: picks exposure order
	outputArbs []arb.Arbiter // per output, over Ports*exposed candidates
	portPick   []arb.Arbiter // per port, over outputs: resolves conflicts

	// scratch
	perPort   [][]int // request indices by port
	vcOf      [][]bool
	vcReq     [][]int
	avail     []bool
	cands     []sparofloCand
	outWinner []int // candidate index per output, -1 none
	reqVec    []bool
	byLine    []int
	winsOf    [][]bool // per port: which outputs won it
	hasWin    []bool
	grants    []Grant
}

// sparofloCand is one VC request exposed to output arbitration.
type sparofloCand struct {
	reqIdx int
	port   int
	lane   int // exposure lane within the port
}

// NewSparoflo returns a SPAROFLO-style allocator exposing up to two
// requests per input port. It panics if cfg is invalid. SPAROFLO is
// defined on the conventional crossbar; VirtualInputs is ignored for
// grant geometry (grants always report the k=1 row mapping of cfg).
func NewSparoflo(cfg Config) *Sparoflo {
	mustValidate(cfg)
	s := &Sparoflo{cfg: cfg, exposed: 2}
	if cfg.VCs < 2 {
		s.exposed = 1
	}
	s.inputArbs = make([]arb.Arbiter, cfg.Ports)
	s.portPick = make([]arb.Arbiter, cfg.Ports)
	for i := range s.inputArbs {
		s.inputArbs[i] = arb.NewRoundRobin(cfg.VCs)
		s.portPick[i] = arb.NewRoundRobin(cfg.Ports)
	}
	s.outputArbs = make([]arb.Arbiter, cfg.Ports)
	for i := range s.outputArbs {
		s.outputArbs[i] = arb.NewRoundRobin(cfg.Ports * s.exposed)
	}
	s.perPort = make([][]int, cfg.Ports)
	s.vcOf = make([][]bool, cfg.Ports)
	s.vcReq = make([][]int, cfg.Ports)
	s.winsOf = make([][]bool, cfg.Ports)
	for p := 0; p < cfg.Ports; p++ {
		s.vcOf[p] = make([]bool, cfg.VCs)
		s.vcReq[p] = make([]int, cfg.VCs)
		s.winsOf[p] = make([]bool, cfg.Ports)
	}
	s.avail = make([]bool, cfg.VCs)
	s.cands = make([]sparofloCand, 0, cfg.Ports*s.exposed)
	s.outWinner = make([]int, cfg.Ports)
	s.reqVec = make([]bool, cfg.Ports*s.exposed)
	s.byLine = make([]int, cfg.Ports*s.exposed)
	s.hasWin = make([]bool, cfg.Ports)
	s.grants = make([]Grant, 0, cfg.Ports)
	return s
}

// Name implements Allocator.
func (s *Sparoflo) Name() string { return "sparoflo" }

// Reset implements Allocator.
func (s *Sparoflo) Reset() {
	for _, a := range s.inputArbs {
		a.Reset()
	}
	for _, a := range s.outputArbs {
		a.Reset()
	}
	for _, a := range s.portPick {
		a.Reset()
	}
}

// Allocate implements Allocator. The returned slice is scratch, valid
// until the next Allocate or Reset call.
//
//vixlint:hot
func (s *Sparoflo) Allocate(rs *RequestSet) []Grant {
	ports := s.cfg.Ports
	// Per port, select up to `exposed` candidate requests with the input
	// arbiter (rotating priority across VCs).
	for p := 0; p < ports; p++ {
		s.perPort[p] = s.perPort[p][:0]
		for v := 0; v < s.cfg.VCs; v++ {
			s.vcOf[p][v] = false
			s.vcReq[p][v] = -1
		}
	}
	for idx, r := range rs.Requests {
		if s.vcReq[r.Port][r.VC] < 0 {
			s.vcOf[r.Port][r.VC] = true
			s.vcReq[r.Port][r.VC] = idx
			s.perPort[r.Port] = append(s.perPort[r.Port], idx)
		}
	}
	s.cands = s.cands[:0]
	for p := 0; p < ports; p++ {
		copy(s.avail, s.vcOf[p])
		for lane := 0; lane < s.exposed; lane++ {
			vc := s.inputArbs[p].Arbitrate(s.avail)
			if vc < 0 {
				break
			}
			s.avail[vc] = false
			s.cands = append(s.cands, sparofloCand{reqIdx: s.vcReq[p][vc], port: p, lane: lane})
			if lane == 0 {
				s.inputArbs[p].Ack(vc)
			}
		}
	}

	// Output arbitration over the exposed candidates.
	line := func(c sparofloCand) int { return c.port*s.exposed + c.lane }
	for out := range s.outWinner {
		s.outWinner[out] = -1
	}
	for out := 0; out < ports; out++ {
		for i := range s.reqVec {
			s.reqVec[i] = false
			s.byLine[i] = -1
		}
		any := false
		for ci, c := range s.cands {
			if rs.Requests[c.reqIdx].OutPort != out {
				continue
			}
			s.reqVec[line(c)] = true
			s.byLine[line(c)] = ci
			any = true
		}
		if !any {
			continue
		}
		l := s.outputArbs[out].Arbitrate(s.reqVec)
		s.outWinner[out] = s.byLine[l]
		s.outputArbs[out].Ack(l)
	}

	// Conflict detection: multiple outputs may have picked VCs of the
	// same input port; only one can use the port's single crossbar
	// input. The port's rotating priority chooses which grant survives.
	for p := 0; p < ports; p++ {
		s.hasWin[p] = false
		for out := range s.winsOf[p] {
			s.winsOf[p][out] = false
		}
	}
	for out, ci := range s.outWinner {
		if ci < 0 {
			continue
		}
		p := s.cands[ci].port
		s.winsOf[p][out] = true
		s.hasWin[p] = true
	}
	s.grants = s.grants[:0]
	for p := 0; p < ports; p++ {
		if !s.hasWin[p] {
			continue
		}
		out := s.portPick[p].Arbitrate(s.winsOf[p])
		s.portPick[p].Ack(out)
		idx := s.cands[s.outWinner[out]].reqIdx
		r := rs.Requests[idx]
		s.grants = append(s.grants, Grant{Req: idx, OutPort: out, Row: rs.Config.Row(r.Port, r.VC)})
	}
	return s.grants
}
