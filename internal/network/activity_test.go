package network

import (
	"reflect"
	"testing"

	"vix/internal/alloc"
	"vix/internal/router"
	"vix/internal/stats"
	"vix/internal/topology"
	"vix/internal/traffic"
)

// hintedBurst is burstWorkload plus a NodeActivity hint: past the cutoff
// cycle Generate returns nil without touching the RNG, so NodeActive may
// legally report false and let the gated tick skip generation entirely
// during the drain phase — the hint path's sharpest test, because any
// skipped side effect would desynchronize the drain.
type hintedBurst struct {
	burstWorkload
}

func (w *hintedBurst) NodeActive(node int, cycle int64) bool {
	return cycle < w.until
}

// activityCase is one gated-vs-dense lockstep scenario.
type activityCase struct {
	name     string
	topo     func() *topology.Topology
	kind     alloc.Kind
	k        int
	saturate bool // MaxInjection instead of a low Bernoulli rate
	hinted   bool // drive a NodeActivity-hinted burst workload
}

// runActivity runs one scenario for the given worker count with the gate
// on or off and returns the full ejection sequence plus the snapshot.
func runActivity(t *testing.T, tc activityCase, workers int, disableGate bool, cycles int) ([]ejectRecord, stats.Snapshot) {
	t.Helper()
	topo := tc.topo()
	policy := router.PolicyMaxFree
	if tc.k > 1 {
		policy = router.PolicyBalanced
	}
	cfg := meshConfig(topo, tc.kind, tc.k, policy)
	cfg.Seed = 11
	cfg.Workers = workers
	cfg.DisableActivityGate = disableGate
	switch {
	case tc.hinted:
		cfg.Pattern, cfg.InjectionRate = nil, 0
		cfg.Workload = &hintedBurst{burstWorkload{
			until: int64(cycles) / 4, rate: 0.1,
			pattern: traffic.NewUniform(topo.NumNodes), size: 4,
		}}
	case tc.saturate:
		cfg.InjectionRate, cfg.MaxInjection = 0, true
	default:
		cfg.InjectionRate = 0.01 // low load: most routers idle most cycles
	}
	var ejected []ejectRecord
	cfg.OnEject = func(f *router.Flit) {
		ejected = append(ejected, ejectRecord{
			packetID: f.PacketID, seq: f.Seq, src: f.Src, dst: f.Dst,
			createCycle: f.CreateCycle, ejectCycle: f.EjectCycle, hops: f.Hops,
		})
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Run(cycles)
	return ejected, n.Collector().Snapshot()
}

// TestActivityGateLockstepWithDense is the tentpole guarantee of the
// activity-gated tick: for every topology, allocator, load point, and
// worker count, the gated network produces bit-identical statistics and
// the exact same ejection sequence as the dense loop. Gating is a
// wall-clock knob, never a physics knob — exactly the standard the
// parallel tick is held to.
func TestActivityGateLockstepWithDense(t *testing.T) {
	cases := []activityCase{
		{name: "mesh8x8_if_low", topo: func() *topology.Topology { return topology.NewMesh(8, 8) },
			kind: alloc.KindSeparableIF, k: 2},
		{name: "mesh8x8_wavefront_sat", topo: func() *topology.Topology { return topology.NewMesh(8, 8) },
			kind: alloc.KindWavefront, k: 1, saturate: true},
		{name: "mesh8x8_pc_low", topo: func() *topology.Topology { return topology.NewMesh(8, 8) },
			kind: alloc.KindPacketChaining, k: 2},
		{name: "fbfly2x2c4_if_low", topo: func() *topology.Topology { return topology.NewFBfly(2, 2, 4) },
			kind: alloc.KindSeparableIF, k: 2},
		{name: "cmesh2x2c4_wavefront_hinted", topo: func() *topology.Topology { return topology.NewCMesh(2, 2, 4) },
			kind: alloc.KindWavefront, k: 2, hinted: true},
	}
	const cycles = 2000
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The reference is the dense serial loop — the physics the
			// repo's goldens were recorded against.
			refEjects, refSnap := runActivity(t, tc, 1, true, cycles)
			if len(refEjects) == 0 {
				t.Fatal("dense reference run ejected nothing; workload broken")
			}
			for _, workers := range []int{1, 4} {
				ejects, snap := runActivity(t, tc, workers, false, cycles)
				if !reflect.DeepEqual(snap, refSnap) {
					t.Errorf("gated workers=%d snapshot diverged:\n got %+v\nwant %+v", workers, snap, refSnap)
				}
				if !reflect.DeepEqual(ejects, refEjects) {
					for i := range refEjects {
						if i >= len(ejects) || ejects[i] != refEjects[i] {
							t.Errorf("gated workers=%d ejection sequence diverged at index %d (of %d):\n got %+v\nwant %+v",
								workers, i, len(refEjects), ejects[i], refEjects[i])
							break
						}
					}
					if len(ejects) != len(refEjects) {
						t.Errorf("gated workers=%d ejected %d flits, want %d", workers, len(ejects), len(refEjects))
					}
				}
			}
		})
	}
}

// TestActivityGateSkipsIdleRouters checks the gate actually gates: at low
// load on a 16x16 mesh, the number of router ticks executed must be far
// below routers x cycles, or the worklist is pure overhead.
func TestActivityGateSkipsIdleRouters(t *testing.T) {
	topo := topology.NewMesh(16, 16)
	cfg := meshConfig(topo, alloc.KindSeparableIF, 2, router.PolicyBalanced)
	cfg.InjectionRate = 0.005
	cfg.Seed = 3
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	const cycles = 1000
	n.Run(cycles)
	dense := int64(topo.NumRouters) * cycles
	got := n.RouterTicks()
	if got == 0 {
		t.Fatal("no router ticks recorded; counter broken")
	}
	if got > dense/2 {
		t.Errorf("gated run executed %d router ticks of %d dense; the gate is not skipping idle routers", got, dense)
	}
}
