package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ConcurrencyAllowlist names the packages — by import path relative to
// the module root — where go statements are legal. Orchestration code
// that fans out fully self-contained simulations may use goroutines;
// simulation packages may not, because goroutine interleaving is a
// scheduler decision, not a seed decision. Growing this list is a
// reviewed act: the lint self-check pins its exact contents.
var ConcurrencyAllowlist = map[string]bool{
	"internal/harness": true,
	// internal/lint's analysis engine fans per-package passes out on a
	// bounded worker pool. Lint findings are merged in canonical package
	// order and sorted before reporting, so worker scheduling cannot
	// reach the output; and lint never touches simulation state.
	"internal/lint": true,
	// internal/sim hosts the shared bounded worker pool (sim.Pool) that
	// the harness and the network's parallel tick both run on; it is the
	// one place goroutines are spawned on their behalf.
	"internal/sim": true,
	// internal/network's Step ticks routers on shards of a sim.Pool and
	// merges the results in router-index order on the stepping
	// goroutine, so output is byte-identical for any worker count; the
	// network package itself contains no go statements.
	"internal/network": true,
	// internal/service is the vixd serving layer: runner goroutines
	// executing queued cases and per-suite watcher channels. Scheduling
	// cannot reach results — a case's value is a pure function of its
	// spec (it executes through the harness over the content-addressed
	// store), and result streams are emitted in case order, not
	// completion order.
	"internal/service": true,
}

// concurrencyAllowed reports whether the package under analysis may use
// go statements.
func (c *checker) concurrencyAllowed() bool {
	return ConcurrencyAllowlist[strings.TrimPrefix(c.pkg.Path, c.mod.Path+"/")]
}

// determinism runs the determinism family over an internal package:
// wall-clock reads, global randomness, goroutines, and order-leaking map
// iteration are all ways for a run to differ from its seed.
func (c *checker) determinism() []Finding {
	var fs []Finding
	for _, file := range c.pkg.Files {
		c.checkRandImports(&fs, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				c.checkTimeCall(&fs, file, n)
			case *ast.GoStmt:
				if !c.concurrencyAllowed() && !c.waived(n.Pos()) {
					c.report(&fs, n.Pos(), "determinism/goroutine",
						"go statement in simulation code: goroutine interleaving is not reproducible from a seed; fan-out belongs in an allowlisted orchestration package (internal/harness)")
				}
			case *ast.RangeStmt:
				c.checkMapRange(&fs, n)
			}
			return true
		})
	}
	return fs
}

// checkRandImports flags imports of the math/rand packages.
func (c *checker) checkRandImports(fs *[]Finding, file *ast.File) {
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if path == "math/rand" || path == "math/rand/v2" {
			if !c.waived(imp.Pos()) {
				c.report(fs, imp.Pos(), "determinism/rand",
					"import of %s: all randomness must flow through sim.RNG so experiments replay from a seed", path)
			}
		}
	}
}

// timeFuncs are the wall-clock reads the determinism family forbids.
var timeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// checkTimeCall flags selector references to time.Now / time.Since /
// time.Until. The violation is established before the waiver is
// consulted, so waiver usage tracking (the stale-waiver sweep) stays
// accurate.
func (c *checker) checkTimeCall(fs *[]Finding, file *ast.File, sel *ast.SelectorExpr) {
	name, ok := c.timeCall(sel)
	if !ok {
		// AST-only fallback when type information is missing.
		if _, typed := c.pkg.Info.Uses[sel.Sel]; typed || !timeFuncs[sel.Sel.Name] ||
			!selectsPackage(c.pkg, file, sel, "time") {
			return
		}
		name = sel.Sel.Name
	}
	if c.waived(sel.Pos()) {
		return
	}
	c.report(fs, sel.Pos(), "determinism/time",
		"call to time.%s: simulation code must use cycle counts, not the wall clock", name)
}

// timeCall reports whether sel is a reference to one of the forbidden
// wall-clock reads, using type information only (the inter-procedural
// passes have no per-file context for the AST fallback).
func (c *checker) timeCall(sel *ast.SelectorExpr) (string, bool) {
	if !timeFuncs[sel.Sel.Name] {
		return "", false
	}
	fn, ok := c.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return "", false
	}
	return sel.Sel.Name, true
}

// selectsPackage reports whether sel's receiver is an identifier bound to
// an import of the given path — the AST-only fallback used when type
// information is unavailable.
func selectsPackage(pkg *Package, file *ast.File, sel *ast.SelectorExpr, path string) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		name := p
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if id.Name == name {
			return true
		}
	}
	return false
}

// checkMapRange flags for-range loops over maps whose bodies write to
// state declared outside the loop. Iterating a map is fine when the loop
// only reads or fills loop-local scratch; it is a reproducibility bug the
// moment visit order can reach results.
func (c *checker) checkMapRange(fs *[]Finding, rng *ast.RangeStmt) {
	write := c.mapRangeViolation(rng)
	if write == nil || c.waived(rng.Pos()) {
		return
	}
	c.report(fs, rng.Pos(), "determinism/maprange",
		"map iteration order is randomised but the loop body writes to non-local state (line %d); sort the keys first or add a //vixlint:ordered waiver",
		c.mod.Fset.Position(write.Pos()).Line)
}

// mapRangeViolation returns the first order-leaking write of a map range
// (a write to state declared outside the loop), or nil when rng is not a
// map range or only touches loop-local state. The waiver is deliberately
// not consulted here.
func (c *checker) mapRangeViolation(rng *ast.RangeStmt) ast.Node {
	tv, ok := c.pkg.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return nil // no type info; cannot tell maps from slices
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return nil
	}
	return c.findNonLocalWrite(rng)
}

// findNonLocalWrite returns the first statement in the range body that
// writes to a variable declared outside the range statement, or nil.
func (c *checker) findNonLocalWrite(rng *ast.RangeStmt) ast.Node {
	var found ast.Node
	local := func(e ast.Expr) bool { return c.declaredWithin(e, rng) }
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				// ":=" defines new (local) variables; only plain
				// assignments can reach pre-existing state. But a
				// redefinition like `x, err := f()` may still assign an
				// outer x, so check declaration sites either way.
				if !local(lhs) {
					found = n
					return false
				}
			}
		case *ast.IncDecStmt:
			if !local(n.X) {
				found = n
				return false
			}
		case *ast.SendStmt:
			// A channel send publishes in iteration order by definition.
			found = n
			return false
		}
		return true
	})
	return found
}

// declaredWithin reports whether the root variable of the assignable
// expression e is declared inside the range statement (the key/value
// variables or body locals). Unresolvable roots — calls, type assertions
// — are conservatively treated as non-local.
func (c *checker) declaredWithin(e ast.Expr, rng *ast.RangeStmt) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := c.pkg.Info.Uses[x]
			if obj == nil {
				obj = c.pkg.Info.Defs[x]
			}
			if obj == nil {
				return false
			}
			return obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
		default:
			return false
		}
	}
}
