package alloc_test

import (
	"fmt"
	"testing"

	"vix/internal/alloc"
	"vix/internal/sim"
)

// FuzzAllocate drives every registered allocator kind with randomized,
// seeded request streams and asserts the three contracts the simulator's
// results rest on:
//
//  1. legality — every grant set passes alloc.Validate;
//  2. determinism — two runs from Reset() with identical inputs produce
//     byte-identical grant sequences;
//  3. purity — Allocate never mutates the caller's RequestSet (the
//     runtime twin of the static contracts/mutate rule in vixlint).
//
// All randomness flows through sim.RNG, so any failing input is exactly
// reproducible from the fuzz corpus entry.
func FuzzAllocate(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(4), uint8(2), uint8(8))
	f.Add(uint64(2), uint8(5), uint8(6), uint8(2), uint8(12))
	f.Add(uint64(3), uint8(2), uint8(1), uint8(1), uint8(4))
	f.Add(uint64(4), uint8(8), uint8(6), uint8(3), uint8(6))
	f.Add(uint64(0xdeadbeef), uint8(3), uint8(5), uint8(5), uint8(10))
	f.Fuzz(func(t *testing.T, seed uint64, ports, vcs, virtuals, cycles uint8) {
		cfg := alloc.Config{
			Ports:         int(ports)%7 + 2, // 2..8
			VCs:           int(vcs)%8 + 1,   // 1..8
			VirtualInputs: 1,                // adjusted per kind below
			Partition:     alloc.Partition(virtuals) % 2,
		}
		cfg.VirtualInputs = int(virtuals)%cfg.VCs + 1 // 1..VCs
		nCycles := int(cycles)%16 + 1
		if err := cfg.Validate(); err != nil {
			t.Fatalf("generated config %+v should be valid: %v", cfg, err)
		}
		for _, kind := range alloc.Kinds() {
			c := cfg
			// Respect the geometries the registry enforces.
			switch kind {
			case alloc.KindIdeal:
				c.VirtualInputs = c.VCs
			case alloc.KindSparoflo:
				c.VirtualInputs = 1
			}
			a, err := alloc.New(kind, c)
			if err != nil {
				t.Fatalf("New(%q, %+v): %v", kind, c, err)
			}
			first := grantTranscript(t, a, kind, c, seed, nCycles)
			second := grantTranscript(t, a, kind, c, seed, nCycles)
			if first != second {
				t.Errorf("%q is nondeterministic: two runs from Reset() with seed %d diverged\nrun 1: %s\nrun 2: %s",
					kind, seed, first, second)
			}
		}
	})
}

// grantTranscript resets a, replays nCycles of seeded random request sets
// through it, and returns the concatenated grant sequence rendered to
// bytes. It fails the test on an illegal grant set or a mutated input.
func grantTranscript(t *testing.T, a alloc.Allocator, kind alloc.Kind, cfg alloc.Config, seed uint64, nCycles int) string {
	t.Helper()
	a.Reset()
	rng := sim.NewRNG(seed)
	out := ""
	for cycle := 0; cycle < nCycles; cycle++ {
		rs := randomRequestSet(cfg, rng)
		snapshot := append([]alloc.Request(nil), rs.Requests...)
		grants := a.Allocate(&rs)
		if err := alloc.Validate(&rs, grants); err != nil {
			t.Fatalf("%q cycle %d: illegal grants: %v\nrequests: %+v", kind, cycle, err, rs.Requests)
		}
		if len(rs.Requests) != len(snapshot) {
			t.Fatalf("%q cycle %d: Allocate resized the caller's request slice (%d -> %d)",
				kind, cycle, len(snapshot), len(rs.Requests))
		}
		for i := range snapshot {
			if rs.Requests[i] != snapshot[i] {
				t.Fatalf("%q cycle %d: Allocate mutated request %d: %+v -> %+v",
					kind, cycle, i, snapshot[i], rs.Requests[i])
			}
		}
		out += fmt.Sprintf("%v", grants)
	}
	return out
}

// randomRequestSet offers, per input VC, at most one request to a random
// output with a small random age — the "one route per head flit" shape
// routers present.
func randomRequestSet(cfg alloc.Config, rng *sim.RNG) alloc.RequestSet {
	rs := alloc.RequestSet{Config: cfg}
	for p := 0; p < cfg.Ports; p++ {
		for v := 0; v < cfg.VCs; v++ {
			if !rng.Bernoulli(0.6) {
				continue
			}
			rs.Requests = append(rs.Requests, alloc.Request{
				Port:    p,
				VC:      v,
				OutPort: rng.Intn(cfg.Ports),
				Age:     rng.Intn(32),
			})
		}
	}
	return rs
}
