package sim

import (
	"math/bits"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130) // three words, last one partial
	if len(b) != 3 {
		t.Fatalf("NewBitset(130) has %d words, want 3", len(b))
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Test(i) {
			t.Errorf("fresh bitset has bit %d set", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Errorf("Set(%d) then Test(%d) = false", i, i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Test(64) {
		t.Error("Clear(64) left the bit set")
	}
	if !b.Test(63) || !b.Test(65) {
		t.Error("Clear(64) disturbed neighbouring bits")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count after Clear = %d, want 7", got)
	}
}

// TestBitsetWalkOrder pins the property the gated tick rests on: the
// documented word walk visits set indices in strictly ascending order,
// exactly the order a dense 0..n loop visits them.
func TestBitsetWalkOrder(t *testing.T) {
	b := NewBitset(200)
	want := []int{0, 3, 63, 64, 100, 128, 199}
	// Set in scrambled order; the walk must still come out ascending.
	for _, i := range []int{100, 0, 199, 64, 3, 128, 63} {
		b.Set(i)
	}
	var got []int
	for wi, w := range b {
		for ; w != 0; w &= w - 1 {
			got = append(got, wi<<6+bits.TrailingZeros64(w))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("walk visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk visited %v, want %v", got, want)
		}
	}
}
