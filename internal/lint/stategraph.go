package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vix/internal/sim"
)

// This file implements the state-graph analysis behind `vixlint -state`.
// Byte-exact checkpoint/restore (ROADMAP item 2) is only safe if the
// snapshot codec enumerates every mutable field of the simulation —
// a missed field means a resumed run silently diverges from an
// uninterrupted one. Hand-maintained field lists rot as the state
// surface grows, so the inventory is a compiler-checked contract:
//
//  1. Starting from the roots in StateGraphRoots (network.Network, the
//     NI injection queues, router.Router, every alloc.Allocator
//     implementation, stats.Collector, the sim.RNG stream), the
//     analysis walks the reachable struct-field graph through
//     pointers, slices, arrays, maps, channels and embedded types.
//  2. Every reachable field must appear in the committed manifest at
//     .vixlint/stategraph.golden as exactly one of:
//       persistent — must be serialized in a snapshot (VC buffers,
//                    in-flight flits, RNG stream position, stats);
//       scratch    — reconstructible: verified written-before-read
//                    inside every Step/Tick/Allocate call cone, so a
//                    restore can leave it zero;
//       config     — immutable after construction: verified never
//                    written inside the simulation cone (the analysis
//                    is instance-insensitive, so construction-time
//                    writes — a CLI filling in a Config literal — are
//                    indistinguishable from mutating the live value
//                    and deliberately allowed; mid-run mutation is the
//                    hazard the rule polices).
//  3. The verdicts are enforced by four rule families:
//       state/unclassified — a reachable field missing from the
//           manifest (the gate that keeps the inventory exhaustive);
//       state/scratch-read — a scratch field whose first access in
//           some Step/Tick/Allocate cone is a read: it secretly
//           carries cross-cycle state, reported with the rendered
//           call path from entry to the reading statement;
//       state/frozen-write — a config field written inside the
//           simulation cone;
//       state/stale — a manifest entry naming no reachable field.
//
// The first-access analysis reuses the call graph: each function gets
// a source-ordered event list (field reads, field writes, call sites),
// and call sites merge the callee's first-access summary with
// read-beats-write pessimism across dispatch targets. Writes are
// recognised through assignments (including `*p = T{...}`, which
// writes every field of T), compound assignment and ++/-- (which read
// first), element writes `x.f[i] = v`, `copy`/`clear` builtins, and
// the `x.f = x.f[:0]` / `append(x.f[:0], ...)` reset idiom (which does
// not read). Writes through a local alias of a field
// (`p := c.perSrcFlits; p[i] = 0`) are not attributed to the field —
// the documented approximation; such fields classify as persistent.
//
// A finding site carrying a "//vixlint:state <justification>" comment
// is waived (rule state/waiver polices empty justifications, the
// waiver/stale sweep polices unused ones). Like the escape gate, a
// warm-skip state file keys the whole verdict on the module content
// hash, the manifest bytes and the root table, so `make lint-bench`'s
// warm invocation analyzes nothing — and editing the manifest (or any
// struct field) re-runs the analysis. `vixlint -state -update-state`
// regenerates the manifest: existing classifications are preserved,
// stale entries dropped, and new fields are classified automatically
// (config when never written outside construction, scratch when
// provably rebuilt before every cone read and never read outside the
// simulation cone, persistent otherwise — the conservative default,
// since snapshotting too much is slow but snapshotting too little is
// wrong).

// stateDirective waives a state/scratch-read or state/frozen-write
// finding on its line (or the line below), with a justification.
const stateDirective = "//vixlint:state"

// stateGoldenName is the committed manifest under .vixlint/.
const stateGoldenName = "stategraph.golden"

// stateStateName is the warm-skip state file under the cache dir.
const stateStateName = "state-state.json"

// stateCacheVersion invalidates the warm-skip state when the analysis
// changes behaviour.
const stateCacheVersion = "vixlint-state-1"

// StateRoot declares one root of the simulation state graph. Roots are
// matched structurally — by package name, not import path — so the
// corpus fixtures exercise the analysis with miniature network/router
// packages of their own.
type StateRoot struct {
	// Pkg is the package name declaring the root.
	Pkg string
	// Type names a root struct type directly. Empty when Iface is set.
	Type string
	// Iface names an interface; every module struct implementing it is
	// a root (the allocators, whose receivers carry rotating priority
	// and scratch state).
	Iface string
	// Why documents what simulation state the root anchors.
	Why string
}

// StateGraphRoots pins where the state walk starts. The selfcheck test
// asserts this table stays in sync with the simulator's architecture;
// extend it when a new subsystem owns mutable simulation state.
var StateGraphRoots = []StateRoot{
	{Pkg: "network", Type: "Network", Why: "top-level simulation state: cycle counter, routers, queues, activity bitsets, flit pool"},
	{Pkg: "network", Type: "ni", Why: "per-node network interface: injection deque, backlog, per-node RNG"},
	{Pkg: "router", Type: "Router", Why: "per-router state: input VCs, output ports, occupancy, allocator scratch"},
	{Pkg: "stats", Type: "Collector", Why: "measurement state: counters and latency records that must survive a restore"},
	{Pkg: "sim", Type: "RNG", Why: "the deterministic random stream; its position is simulation state"},
	{Pkg: "alloc", Iface: "Allocator", Why: "every allocator implementation: rotating priorities persist, request matrices are scratch"},
}

// stateClass is one manifest classification.
type stateClass string

const (
	classPersistent stateClass = "persistent"
	classScratch    stateClass = "scratch"
	classConfig     stateClass = "config"
)

// validStateClass reports whether s is one of the three classes.
func validStateClass(s stateClass) bool {
	return s == classPersistent || s == classScratch || s == classConfig
}

// StateOptions configures CheckState.
type StateOptions struct {
	// Update regenerates the manifest from the current tree instead of
	// diffing against it.
	Update bool
	// Cache enables the warm-skip state keyed on module content,
	// manifest bytes and the root table.
	Cache bool
	// CacheDir overrides the state location; default <root>/.vixlint.
	CacheDir string
	// ManifestPath overrides the manifest location; default
	// <root>/.vixlint/stategraph.golden. Tests use it to diff the real
	// tree against an edited manifest without touching the checkout.
	ManifestPath string
}

// StateStats reports how much work a CheckState call performed.
type StateStats struct {
	// Packages is the number of module packages discovered.
	Packages int
	// Analyzed is 1 when the graph walk and first-access analysis ran,
	// 0 on a warm-skip hit.
	Analyzed int
	// Cached reports a warm-skip hit.
	Cached bool
	// Roots is the number of resolved root struct types.
	Roots int
	// Fields is the number of reachable mutable fields.
	Fields int
	// Entries is the number of Step/Tick/Allocate cone entry points.
	Entries int
}

// CheckState runs the state-graph analysis over the module at root.
func CheckState(root string, opts StateOptions) ([]Finding, StateStats, error) {
	var stats StateStats
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, stats, err
	}
	cacheDir := opts.CacheDir
	if cacheDir == "" {
		cacheDir = filepath.Join(absRoot, cacheDirName)
	}
	manifestPath := opts.ManifestPath
	if manifestPath == "" {
		manifestPath = filepath.Join(absRoot, cacheDirName, stateGoldenName)
	}
	manifestBytes, manifestErr := os.ReadFile(manifestPath)

	idx, err := indexModule(absRoot)
	if err != nil {
		return nil, stats, err
	}
	stats.Packages = len(idx.packages)
	stateKey := stateGraphKey(idx, manifestBytes)
	if opts.Cache && !opts.Update {
		if st, ok := loadStateState(cacheDir, stateKey); ok {
			stats.Cached = true
			return st.resolve(absRoot), stats, nil
		}
	}
	stats.Analyzed = 1

	if manifestErr != nil && !opts.Update {
		fs := []Finding{{
			Pos:  token.Position{Filename: manifestPath, Line: 1},
			Rule: "state/golden",
			Msg:  "no committed state manifest; run `vixlint -state -update-state`, audit the classifications, and commit " + filepath.Join(cacheDirName, stateGoldenName),
		}}
		return fs, stats, nil
	}

	mod, err := Load(absRoot)
	if err != nil {
		return nil, stats, err
	}
	graph := buildCallGraph(mod)
	a := newStateAnalysis(mod, graph)
	stats.Roots = len(a.roots)
	stats.Fields = len(a.fields.order)
	stats.Entries = len(a.entries)

	var manifest *stateManifest
	if opts.Update {
		var prev *stateManifest
		if manifestErr == nil {
			// Best effort: a malformed old manifest is regenerated from
			// scratch rather than blocking the update.
			prev, _ = parseStateManifest(manifestPath, manifestBytes)
		}
		manifest = a.regenerate(prev)
		if err := writeStateManifest(manifestPath, manifest); err != nil {
			return nil, stats, err
		}
		manifestBytes, _ = os.ReadFile(manifestPath)
		stateKey = stateGraphKey(idx, manifestBytes)
	} else {
		manifest, err = parseStateManifest(manifestPath, manifestBytes)
		if err != nil {
			return nil, stats, err
		}
	}

	fs := a.check(manifest)
	sortFindings(fs)
	if opts.Cache {
		storeStateState(cacheDir, absRoot, stateKey, fs)
	}
	return fs, stats, nil
}

// stateRootsFingerprint hashes the root table so editing it invalidates
// the warm-skip state, mirroring ownershipFingerprint.
func stateRootsFingerprint() string {
	h := sha256.New()
	for _, r := range StateGraphRoots {
		fmt.Fprintf(h, "%s %s %s %s\n", r.Pkg, r.Type, r.Iface, r.Why)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// stateGraphKey chains everything the verdict depends on: the analysis
// version, the root table, the manifest bytes, and every package's
// content-hash key. The manifest fingerprint joining the chain is what
// makes a manifest edit re-run the analysis on an otherwise warm tree.
func stateGraphKey(idx *moduleIndex, manifest []byte) string {
	h := sha256.New()
	io.WriteString(h, stateCacheVersion+"\n")
	io.WriteString(h, stateRootsFingerprint()+"\n")
	msum := sha256.Sum256(manifest)
	io.WriteString(h, hex.EncodeToString(msum[:])+"\n")
	for _, p := range idx.packages {
		fmt.Fprintf(h, "%s %s\n", p.path, p.key)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// --- reachable field graph ---

// stateField is one reachable mutable field.
type stateField struct {
	obj *types.Var
	// key is the manifest key, "pkgname.Type.Field" (full import path
	// substituted on the rare package-name collision).
	key string
	// path is an example rendered access path from a root, e.g.
	// "network.Network.routers[].in[][].buf[]".
	path string
}

// fieldGraph is the walked set of reachable fields and struct types.
type fieldGraph struct {
	modPkgs map[*types.Package]bool
	fields  map[*types.Var]*stateField
	byKey   map[string]*stateField
	order   []*stateField
	structs map[*types.Named]bool
	// owner maps each field to the struct type declaring it, and edges
	// records struct-to-struct reachability through field types; both
	// scope the per-entry checks (a Step entry checks everything the
	// Network reaches, an Allocate entry only the allocator's own
	// state — not the RequestSet the router hands it).
	owner map[*types.Var]*types.Named
	edges map[*types.Named][]*types.Named
}

// walkStruct registers every field of named and recurses into field
// types. path is the example access path that reached the struct.
func (fg *fieldGraph) walkStruct(named *types.Named, path string) {
	if fg.structs[named] {
		return
	}
	fg.structs[named] = true
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	tn := named.Obj()
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if fg.fields[f] == nil {
			key := tn.Pkg().Name() + "." + tn.Name() + "." + f.Name()
			if dup, ok := fg.byKey[key]; ok && dup.obj != f {
				key = tn.Pkg().Path() + "." + tn.Name() + "." + f.Name()
			}
			sf := &stateField{obj: f, key: key, path: path + "." + f.Name()}
			fg.fields[f] = sf
			fg.byKey[key] = sf
			fg.order = append(fg.order, sf)
			fg.owner[f] = named
		}
		fg.walkType(f.Type(), path+"."+f.Name(), named)
	}
}

// reaches returns the set of structs reachable from `from` through the
// field graph, including itself.
func (fg *fieldGraph) reaches(from *types.Named) map[*types.Named]bool {
	out := map[*types.Named]bool{from: true}
	queue := []*types.Named{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, next := range fg.edges[n] {
			if !out[next] {
				out[next] = true
				queue = append(queue, next)
			}
		}
	}
	return out
}

// walkType unwraps containers and recurses into module-declared named
// structs, recording a reachability edge from the declaring struct.
// Interfaces are terminal: the field holding the interface is
// classified, and interface implementations that carry simulation
// state (the allocators) are roots of their own.
func (fg *fieldGraph) walkType(t types.Type, path string, from *types.Named) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t, path = u.Elem(), path+"[]"
			continue
		case *types.Array:
			t, path = u.Elem(), path+"[]"
			continue
		case *types.Map:
			fg.walkType(u.Key(), path+"[key]", from)
			t, path = u.Elem(), path+"[]"
			continue
		case *types.Chan:
			t, path = u.Elem(), path+"<-"
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok && fg.modPkgs[named.Obj().Pkg()] {
		if _, isStruct := named.Underlying().(*types.Struct); isStruct {
			if from != nil {
				fg.edges[from] = append(fg.edges[from], named)
			}
			fg.walkStruct(named, path)
		}
	}
}

// resolveStateRoots matches StateGraphRoots against the module. Missing
// roots are fine — corpus fixtures model only a slice of the simulator.
func resolveStateRoots(mod *Module, g *callGraph) []*types.Named {
	var roots []*types.Named
	seen := make(map[*types.Named]bool)
	add := func(n *types.Named) {
		if n != nil && !seen[n] {
			seen[n] = true
			roots = append(roots, n)
		}
	}
	for _, r := range StateGraphRoots {
		for _, pkg := range mod.Packages() {
			if pkg.Name != r.Pkg || pkg.Types == nil {
				continue
			}
			if r.Type != "" {
				if tn, ok := pkg.Types.Scope().Lookup(r.Type).(*types.TypeName); ok {
					if named, ok := tn.Type().(*types.Named); ok {
						add(named)
					}
				}
				continue
			}
			tn, ok := pkg.Types.Scope().Lookup(r.Iface).(*types.TypeName)
			if !ok {
				continue
			}
			iface, ok := tn.Type().Underlying().(*types.Interface)
			if !ok {
				continue
			}
			for _, named := range g.resolver.moduleNamedTypes() {
				if !isInternal(named.Obj().Pkg().Path()) {
					// Example binaries may implement Allocator too, but
					// they are not snapshot targets.
					continue
				}
				if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
					add(named)
				}
			}
		}
	}
	return roots
}

// --- manifest ---

// stateManifest is the parsed classification manifest.
type stateManifest struct {
	path   string
	class  map[string]stateClass
	note   map[string]string
	lineOf map[string]int
	keys   []string // declaration order, for deterministic iteration
}

// parseStateManifest reads the manifest format: '#' comments and blank
// lines, then "class<TAB>field<TAB>note" entries (the note may be
// empty). Malformed lines are hard errors, not findings: a gate that
// half-reads its own baseline proves nothing.
func parseStateManifest(path string, data []byte) (*stateManifest, error) {
	m := &stateManifest{
		path:   path,
		class:  make(map[string]stateClass),
		note:   make(map[string]string),
		lineOf: make(map[string]int),
	}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, "\t", 3)
		if len(fields) < 2 {
			return nil, fmt.Errorf("lint: %s:%d: malformed manifest line %q (want class<TAB>field<TAB>note)", path, i+1, line)
		}
		class, key := stateClass(fields[0]), fields[1]
		if !validStateClass(class) {
			return nil, fmt.Errorf("lint: %s:%d: unknown state class %q (want persistent, scratch or config)", path, i+1, fields[0])
		}
		if _, dup := m.class[key]; dup {
			return nil, fmt.Errorf("lint: %s:%d: duplicate manifest entry for %s", path, i+1, key)
		}
		m.class[key] = class
		if len(fields) == 3 {
			m.note[key] = fields[2]
		}
		m.lineOf[key] = i + 1
		m.keys = append(m.keys, key)
	}
	return m, nil
}

// writeStateManifest renders the manifest grouped by class, each group
// sorted by field key.
func writeStateManifest(path string, m *stateManifest) error {
	var b strings.Builder
	b.WriteString("# vixlint state-graph manifest: every mutable field reachable from\n")
	b.WriteString("# StateGraphRoots, classified for checkpoint/restore (DESIGN.md sec. 16).\n")
	b.WriteString("#   persistent — must be serialized in a snapshot (includes the RNG stream position)\n")
	b.WriteString("#   scratch    — reconstructible; verified written-before-read in every Step/Tick/Allocate cone\n")
	b.WriteString("#   config     — immutable; verified never written inside the simulation cone\n")
	b.WriteString("# Each line is class<TAB>field<TAB>note. Audit any diff, then regenerate\n")
	b.WriteString("# with `vixlint -state -update-state`.\n")
	byClass := make(map[stateClass][]string)
	for _, key := range sim.SortedKeys(m.class) {
		byClass[m.class[key]] = append(byClass[m.class[key]], key)
	}
	for _, class := range []stateClass{classPersistent, classScratch, classConfig} {
		keys := byClass[class]
		if len(keys) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n# --- %s (%d) ---\n", class, len(keys))
		for _, key := range keys {
			fmt.Fprintf(&b, "%s\t%s\t%s\n", class, key, m.note[key])
		}
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// --- first-access analysis ---

// stateEvent is one entry in a function's source-ordered event list:
// either a field access or a call site with its dispatch targets.
type stateEvent struct {
	field   *types.Var // nil for call events
	write   bool
	pos     token.Pos
	callees []*types.Func
}

// firstAccess records how a field is first touched within a function's
// forward cone: directly (via == nil) or through a callee.
type firstAccess struct {
	read bool
	pos  token.Pos
	via  *types.Func
}

// accessSite is one direct field access, for the frozen-write and
// outside-read checks.
type accessSite struct {
	fn  *types.Func
	pos token.Pos
}

// stateAnalysis holds the per-module analysis state.
type stateAnalysis struct {
	mod    *Module
	graph  *callGraph
	fields *fieldGraph
	roots  []*types.Named

	events     map[*types.Func][]stateEvent
	writeSites map[*types.Var][]accessSite
	readSites  map[*types.Var][]accessSite

	entries []*types.Func // Step/Tick/Allocate methods on reachable structs
	simCone map[*types.Func]bool
	// reach memoises, per entry receiver type, which structs that
	// entry's checks cover.
	reach map[*types.Named]map[*types.Named]bool

	first    map[*types.Func]map[*types.Var]*firstAccess
	visiting map[*types.Func]bool

	waivers *waiverSet
}

// newStateAnalysis walks the field graph, collects per-function event
// lists and computes the simulation and constructor cones.
func newStateAnalysis(mod *Module, graph *callGraph) *stateAnalysis {
	a := &stateAnalysis{
		mod:   mod,
		graph: graph,
		fields: &fieldGraph{
			modPkgs: make(map[*types.Package]bool),
			fields:  make(map[*types.Var]*stateField),
			byKey:   make(map[string]*stateField),
			structs: make(map[*types.Named]bool),
			owner:   make(map[*types.Var]*types.Named),
			edges:   make(map[*types.Named][]*types.Named),
		},
		events:     make(map[*types.Func][]stateEvent),
		writeSites: make(map[*types.Var][]accessSite),
		readSites:  make(map[*types.Var][]accessSite),
		reach:      make(map[*types.Named]map[*types.Named]bool),
		first:      make(map[*types.Func]map[*types.Var]*firstAccess),
		visiting:   make(map[*types.Func]bool),
		waivers:    collectStateWaivers(mod),
	}
	for _, pkg := range mod.Packages() {
		if pkg.Types != nil {
			a.fields.modPkgs[pkg.Types] = true
		}
	}
	a.roots = resolveStateRoots(mod, graph)
	for _, root := range a.roots {
		tn := root.Obj()
		a.fields.walkStruct(root, tn.Pkg().Name()+"."+tn.Name())
	}
	for _, fn := range graph.funcs {
		node := graph.nodes[fn]
		a.events[fn] = a.collectEvents(node)
		for _, ev := range a.events[fn] {
			if ev.field == nil {
				continue
			}
			site := accessSite{fn: fn, pos: ev.pos}
			if ev.write {
				a.writeSites[ev.field] = append(a.writeSites[ev.field], site)
			} else {
				a.readSites[ev.field] = append(a.readSites[ev.field], site)
			}
		}
	}
	a.entries = a.coneEntries()
	a.simCone = a.eventCone(a.entries)
	return a
}

// eventCone expands entry points into their forward call cone using the
// event lists' call targets — unlike hotCone's raw graph edges, these
// include bound-method-value dispatch, so the pool jobs handed to
// sim.Pool.Do are inside the simulation cone.
func (a *stateAnalysis) eventCone(entries []*types.Func) map[*types.Func]bool {
	cone := make(map[*types.Func]bool)
	queue := append([]*types.Func(nil), entries...)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if cone[fn] {
			continue
		}
		cone[fn] = true
		for _, ev := range a.events[fn] {
			queue = append(queue, ev.callees...)
		}
	}
	return cone
}

// covers reports whether entry's checks extend to sf: the field's
// owning struct must be reachable from the entry's receiver type. The
// Step entry covers everything the Network owns; an Allocate entry
// covers only the allocator's own state, not the RequestSet the router
// hands it — from the router's cone that set is provably rebuilt first.
func (a *stateAnalysis) covers(entry *types.Func, sf *stateField) bool {
	recv := recvNamed(entry)
	if recv == nil {
		return false
	}
	r, ok := a.reach[recv]
	if !ok {
		r = a.fields.reaches(recv)
		a.reach[recv] = r
	}
	return r[a.fields.owner[sf.obj]]
}

// collectStateWaivers merges //vixlint:state waivers across every
// package: the state pass is module-wide, and file names are unique, so
// one merged set tracks justification and usage for all of them.
func collectStateWaivers(mod *Module) *waiverSet {
	merged := &waiverSet{
		directive: stateDirective,
		lines:     make(map[string]map[int]string),
		used:      make(map[string]map[int]bool),
	}
	for _, pkg := range mod.Packages() {
		ws := collectWaivers(mod, pkg, stateDirective)
		for _, file := range sim.SortedKeys(ws.lines) {
			merged.lines[file] = ws.lines[file]
			merged.used[file] = ws.used[file]
		}
	}
	return merged
}

// coneEntries finds the simulation entry points: methods named Step,
// Tick or Allocate whose receiver is a reachable state struct.
func (a *stateAnalysis) coneEntries() []*types.Func {
	var entries []*types.Func
	for _, fn := range a.graph.funcs {
		switch fn.Name() {
		case "Step", "Tick", "Allocate":
		default:
			continue
		}
		if named := recvNamed(fn); named != nil && a.fields.structs[named] {
			entries = append(entries, fn)
		}
	}
	return entries
}

// recvNamed returns the named type of fn's receiver (pointer stripped),
// or nil for plain functions.
func recvNamed(fn *types.Func) *types.Named {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// firstMap computes fn's first-access summary: for every reachable
// field its cone touches, whether the first touch in source order is a
// read or a write. Call sites merge callee summaries with read-beats-
// write pessimism across dispatch targets; recursion is cut by
// treating an in-progress callee as access-free.
func (a *stateAnalysis) firstMap(fn *types.Func) map[*types.Var]*firstAccess {
	if m, ok := a.first[fn]; ok {
		return m
	}
	if a.visiting[fn] {
		return nil
	}
	a.visiting[fn] = true
	m := make(map[*types.Var]*firstAccess)
	for _, ev := range a.events[fn] {
		if ev.field != nil {
			if _, seen := m[ev.field]; !seen {
				m[ev.field] = &firstAccess{read: !ev.write, pos: ev.pos}
			}
			continue
		}
		for _, callee := range ev.callees {
			cm := a.firstMap(callee)
			if len(cm) == 0 {
				continue
			}
			for _, sf := range a.fields.order {
				v := sf.obj
				fa, touched := cm[v]
				if !touched {
					continue
				}
				cur, seen := m[v]
				if !seen {
					m[v] = &firstAccess{read: fa.read, pos: ev.pos, via: callee}
				} else if cur.via != nil && cur.pos == ev.pos && fa.read && !cur.read {
					// Another target of the same call site reads the
					// field first: across dispatch targets the read
					// wins — any target may execute.
					m[v] = &firstAccess{read: true, pos: ev.pos, via: callee}
				}
			}
		}
	}
	a.visiting[fn] = false
	a.first[fn] = m
	return m
}

// chase follows a firstAccess via-chain to the direct access site,
// returning the rendered call path (entry excluded) and the site.
func (a *stateAnalysis) chase(fn *types.Func, v *types.Var) ([]string, token.Pos) {
	var path []string
	fa := a.first[fn][v]
	for depth := 0; fa != nil && fa.via != nil && depth < 64; depth++ {
		path = append(path, funcDisplay(fa.via))
		next := a.first[fa.via][v]
		if next == nil {
			break
		}
		fa = next
	}
	if fa == nil {
		return path, token.NoPos
	}
	return path, fa.pos
}

// --- checks ---

// check runs the four rule families against the manifest.
func (a *stateAnalysis) check(m *stateManifest) []Finding {
	var fs []Finding
	pos := func(p token.Pos) token.Position { return a.mod.Fset.Position(p) }

	// state/unclassified + field-key reverse index.
	classOf := make(map[*types.Var]stateClass)
	for _, sf := range a.fields.order {
		class, ok := m.class[sf.key]
		if !ok {
			inferred, _ := a.inferClass(sf)
			fs = append(fs, Finding{
				Pos:  pos(sf.obj.Pos()),
				Rule: "state/unclassified",
				Msg: fmt.Sprintf("field %s (reachable as %s) is simulation state but missing from %s; classify it as persistent, scratch or config — `vixlint -state -update-state` infers %s, audit it before committing",
					sf.key, sf.path, filepath.Join(cacheDirName, stateGoldenName), inferred),
			})
			continue
		}
		classOf[sf.obj] = class
	}

	// state/stale: manifest entries naming no reachable field.
	for _, key := range m.keys {
		if _, ok := a.fields.byKey[key]; !ok {
			fs = append(fs, Finding{
				Pos:  token.Position{Filename: m.path, Line: m.lineOf[key]},
				Rule: "state/stale",
				Msg:  fmt.Sprintf("manifest entry %s names no reachable field (deleted, renamed, or unreachable from StateGraphRoots); remove it with -update-state so the manifest cannot rot", key),
			})
		}
	}

	// state/scratch-read: for every cone entry, a scratch field whose
	// first access is a read carries cross-cycle state.
	seenScratch := make(map[string]bool)
	for _, entry := range a.sortedEntries() {
		em := a.firstMap(entry)
		for _, sf := range a.fields.order {
			if classOf[sf.obj] != classScratch || !a.covers(entry, sf) {
				continue
			}
			fa := em[sf.obj]
			if fa == nil || !fa.read {
				continue
			}
			callPath, site := a.chase(entry, sf.obj)
			if site == token.NoPos {
				site = fa.pos
			}
			dedup := sf.key + "\t" + pos(site).Filename + fmt.Sprint(pos(site).Line)
			if seenScratch[dedup] {
				continue
			}
			seenScratch[dedup] = true
			if a.waivers.covers(a.mod, site) {
				continue
			}
			trace := funcDisplay(entry)
			if len(callPath) > 0 {
				trace += " -> " + strings.Join(callPath, " -> ")
			}
			fs = append(fs, Finding{
				Pos:  pos(site),
				Rule: "state/scratch-read",
				Msg: fmt.Sprintf("scratch field %s is read before any write in the %s cone; path: %s — a scratch field consumed before it is rebuilt carries cross-cycle state: fix the read order, or reclassify it persistent in the manifest",
					sf.key, funcDisplay(entry), trace),
			})
		}
	}

	// state/frozen-write: config fields written inside the simulation
	// cone. The analysis is instance-insensitive — it cannot tell a CLI
	// building a fresh Config value from a mutation of the live one —
	// so construction-time writes outside the cone are allowed, and the
	// mid-run mutation hazard is what the rule polices.
	for _, sf := range a.fields.order {
		if classOf[sf.obj] != classConfig {
			continue
		}
		for _, site := range a.writeSites[sf.obj] {
			if !a.simCone[site.fn] {
				continue
			}
			if a.waivers.covers(a.mod, site.pos) {
				continue
			}
			fs = append(fs, Finding{
				Pos:  pos(site.pos),
				Rule: "state/frozen-write",
				Msg: fmt.Sprintf("config field %s is written in %s, inside the simulation cone — config state is immutable once the network is constructed; move the write out of the Step/Tick/Allocate path, or reclassify the field persistent in the manifest",
					sf.key, funcDisplay(site.fn)),
			})
		}
	}

	fs = append(fs, a.waiverSweep()...)
	return fs
}

// waiverSweep reports empty-justification and unused state waivers.
// The state pass polices its own directive: the main analysis never
// consults //vixlint:state, so its stale sweep would misfire here.
func (a *stateAnalysis) waiverSweep() []Finding {
	var fs []Finding
	for _, file := range sim.SortedKeys(a.waivers.lines) {
		for _, line := range sim.SortedKeys(a.waivers.lines[file]) {
			if a.waivers.lines[file][line] == "" {
				fs = append(fs, Finding{
					Pos:  token.Position{Filename: file, Line: line},
					Rule: "state/waiver",
					Msg:  "vixlint:state waiver needs a justification explaining why the access does not break the field's classification",
				})
			}
			if !a.waivers.used[file][line] {
				fs = append(fs, Finding{
					Pos:  token.Position{Filename: file, Line: line},
					Rule: "waiver/stale",
					Msg:  fmt.Sprintf("%s waiver suppresses nothing; remove it (stale waivers hide the audit trail)", stateDirective),
				})
			}
		}
	}
	return fs
}

// sortedEntries returns the cone entries in deterministic display
// order.
func (a *stateAnalysis) sortedEntries() []*types.Func {
	entries := append([]*types.Func(nil), a.entries...)
	sort.Slice(entries, func(i, j int) bool { return funcDisplay(entries[i]) < funcDisplay(entries[j]) })
	return entries
}

// inferClass classifies a field from the analysis alone: config when
// never written inside the simulation cone, scratch when provably
// rebuilt before every cone read and never read outside the simulation
// cone, persistent otherwise. Persistent is the conservative default —
// a snapshot that carries too much is slow, one that carries too
// little is wrong.
func (a *stateAnalysis) inferClass(sf *stateField) (stateClass, string) {
	mutated := false
	for _, site := range a.writeSites[sf.obj] {
		if a.simCone[site.fn] {
			mutated = true
			break
		}
	}
	if !mutated {
		return classConfig, "auto: never written inside the simulation cone"
	}
	for _, entry := range a.sortedEntries() {
		if !a.covers(entry, sf) {
			continue
		}
		if fa := a.firstMap(entry)[sf.obj]; fa != nil && fa.read {
			return classPersistent, "auto: read before write in the " + funcDisplay(entry) + " cone"
		}
	}
	// A read outside the simulation cone (Measure, Snapshot, a CLI)
	// consumes the accumulated value: the field must survive a restore
	// even if every cone rebuilds it first.
	for _, site := range a.readSites[sf.obj] {
		if !a.simCone[site.fn] {
			return classPersistent, "auto: read outside the simulation cone (" + funcDisplay(site.fn) + ")"
		}
	}
	return classScratch, "auto: rebuilt before any read in every Step/Tick/Allocate cone"
}

// regenerate builds the manifest for -update-state: classifications of
// still-reachable entries are preserved (they are audited decisions),
// stale entries are dropped, new fields are auto-classified.
func (a *stateAnalysis) regenerate(prev *stateManifest) *stateManifest {
	m := &stateManifest{
		class:  make(map[string]stateClass),
		note:   make(map[string]string),
		lineOf: make(map[string]int),
	}
	for _, sf := range a.fields.order {
		if prev != nil {
			if class, ok := prev.class[sf.key]; ok {
				m.class[sf.key] = class
				m.note[sf.key] = prev.note[sf.key]
				m.keys = append(m.keys, sf.key)
				continue
			}
		}
		class, note := a.inferClass(sf)
		m.class[sf.key] = class
		m.note[sf.key] = note
		m.keys = append(m.keys, sf.key)
	}
	return m
}

// --- event collection ---

// collectEvents walks one declaration body and returns its
// source-ordered event list. The walk mirrors evaluation order where it
// matters for first-access verdicts: assignment right-hand sides before
// left-hand writes, call arguments before the call event, `x.f[:0]`
// slice resets and value-less `for range` clears do not read.
func (a *stateAnalysis) collectEvents(node *cgNode) []stateEvent {
	pkg := node.pkg
	info := pkg.Info
	var evs []stateEvent

	fieldOf := func(e ast.Expr) *types.Var {
		sel, ok := stripParens(e).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return nil
		}
		v, ok := s.Obj().(*types.Var)
		if !ok || a.fields.fields[v] == nil {
			return nil
		}
		return v
	}
	emit := func(v *types.Var, write bool, pos token.Pos) {
		if v != nil {
			evs = append(evs, stateEvent{field: v, write: write, pos: pos})
		}
	}

	var walkExpr func(e ast.Expr)
	var walkStmt func(s ast.Stmt)

	// isZeroReset recognises x.f[:0] (and x.f[0:0]): the reset idiom
	// reads only the slice header's capacity, not prior contents.
	isZeroReset := func(sl *ast.SliceExpr) bool {
		zero := func(e ast.Expr) bool {
			if e == nil {
				return true
			}
			lit, ok := stripParens(e).(*ast.BasicLit)
			return ok && lit.Kind == token.INT && lit.Value == "0"
		}
		return sl.High != nil && zero(sl.High) && zero(sl.Low) && sl.Max == nil
	}

	// emitTarget walks an assignment target: chain reads below the
	// final field, a read of the field itself for compound targets,
	// then the write.
	var emitTarget func(e ast.Expr, compound bool)
	emitTarget = func(e ast.Expr, compound bool) {
		switch t := stripParens(e).(type) {
		case *ast.SelectorExpr:
			if v := fieldOf(t); v != nil {
				walkExpr(t.X)
				if compound {
					emit(v, false, t.Sel.Pos())
				}
				emit(v, true, t.Sel.Pos())
				return
			}
			walkExpr(t.X)
		case *ast.IndexExpr:
			// x.f[i] = v writes f's element: the index chain and the
			// path below f are reads, f itself is written.
			walkExpr(t.Index)
			if v := fieldOf(t.X); v != nil {
				if sel, ok := stripParens(t.X).(*ast.SelectorExpr); ok {
					walkExpr(sel.X)
				}
				if compound {
					emit(v, false, t.Pos())
				}
				emit(v, true, t.Pos())
				return
			}
			emitTarget(t.X, compound)
		case *ast.StarExpr:
			// *p = v writes every field of the pointed-to struct.
			walkExpr(t.X)
			if tv, ok := info.Types[t.X]; ok && tv.Type != nil {
				if ptr, ok := tv.Type.Underlying().(*types.Pointer); ok {
					if named, ok := ptr.Elem().(*types.Named); ok {
						if st, ok := named.Underlying().(*types.Struct); ok && a.fields.structs[named] {
							for i := 0; i < st.NumFields(); i++ {
								f := st.Field(i)
								if a.fields.fields[f] != nil {
									if compound {
										emit(f, false, t.Pos())
									}
									emit(f, true, t.Pos())
								}
							}
						}
					}
				}
			}
		default:
			// Local identifiers and blank targets carry no field state.
		}
	}

	walkExprs := func(es []ast.Expr) {
		for _, e := range es {
			walkExpr(e)
		}
	}

	walkExpr = func(e ast.Expr) {
		if e == nil {
			return
		}
		switch t := e.(type) {
		case *ast.ParenExpr:
			walkExpr(t.X)
		case *ast.SelectorExpr:
			walkExpr(t.X)
			emit(fieldOf(t), false, t.Sel.Pos())
		case *ast.SliceExpr:
			if isZeroReset(t) {
				if sel, ok := stripParens(t.X).(*ast.SelectorExpr); ok && fieldOf(sel) != nil {
					walkExpr(sel.X)
				} else {
					walkExpr(t.X)
				}
			} else {
				walkExpr(t.X)
			}
			walkExpr(t.Low)
			walkExpr(t.High)
			walkExpr(t.Max)
		case *ast.IndexExpr:
			walkExpr(t.X)
			walkExpr(t.Index)
		case *ast.IndexListExpr:
			walkExpr(t.X)
			walkExprs(t.Indices)
		case *ast.StarExpr:
			walkExpr(t.X)
		case *ast.UnaryExpr:
			walkExpr(t.X)
		case *ast.BinaryExpr:
			walkExpr(t.X)
			walkExpr(t.Y)
		case *ast.KeyValueExpr:
			walkExpr(t.Key)
			walkExpr(t.Value)
		case *ast.CompositeLit:
			walkExprs(t.Elts)
		case *ast.TypeAssertExpr:
			walkExpr(t.X)
		case *ast.FuncLit:
			// Literals fold into the enclosing declaration, matching
			// the call graph's treatment.
			walkStmt(t.Body)
		case *ast.CallExpr:
			fun := stripParens(t.Fun)
			if tv, ok := info.Types[fun]; ok {
				if tv.IsType() { // conversion
					walkExprs(t.Args)
					return
				}
				if tv.IsBuiltin() {
					name := ""
					switch f := fun.(type) {
					case *ast.Ident:
						name = f.Name
					case *ast.SelectorExpr:
						name = f.Sel.Name // unsafe.X
					}
					switch name {
					case "copy":
						if len(t.Args) == 2 {
							walkExpr(t.Args[1])
							emitTarget(t.Args[0], false)
							return
						}
					case "clear":
						if len(t.Args) == 1 {
							emitTarget(t.Args[0], false)
							return
						}
					case "delete":
						if len(t.Args) == 2 {
							walkExpr(t.Args[1])
							emitTarget(t.Args[0], false)
							return
						}
					}
					walkExprs(t.Args)
					return
				}
			}
			walkExpr(t.Fun)
			walkExprs(t.Args)
			rc := a.graph.resolveCallSite(pkg, t)
			targets := rc.targets
			if rc.indirect {
				targets = append(targets, a.methodValueTargets(pkg, fun)...)
			}
			if len(targets) > 0 {
				evs = append(evs, stateEvent{pos: t.Rparen, callees: dedupeFuncs(targets)})
			}
		case *ast.Ellipsis:
			walkExpr(t.Elt)
		}
	}

	walkStmtList := func(ss []ast.Stmt) {
		for _, s := range ss {
			walkStmt(s)
		}
	}

	walkStmt = func(s ast.Stmt) {
		if s == nil {
			return
		}
		switch t := s.(type) {
		case *ast.BlockStmt:
			walkStmtList(t.List)
		case *ast.ExprStmt:
			walkExpr(t.X)
		case *ast.AssignStmt:
			walkExprs(t.Rhs)
			if t.Tok == token.DEFINE {
				return // := targets are fresh locals
			}
			compound := t.Tok != token.ASSIGN
			for _, lhs := range t.Lhs {
				emitTarget(lhs, compound)
			}
		case *ast.IncDecStmt:
			emitTarget(t.X, true)
		case *ast.SendStmt:
			walkExpr(t.Value)
			emitTarget(t.Chan, false)
		case *ast.IfStmt:
			walkStmt(t.Init)
			walkExpr(t.Cond)
			walkStmt(t.Body)
			walkStmt(t.Else)
		case *ast.ForStmt:
			walkStmt(t.Init)
			walkExpr(t.Cond)
			walkStmt(t.Body)
			walkStmt(t.Post)
		case *ast.RangeStmt:
			// `for i := range x.f { x.f[i] = zero }` is the idiomatic
			// clear: a value-less range reads only the length, so it is
			// not a field read — the element writes in the body decide.
			base := stripParens(t.X)
			if sel, ok := base.(*ast.SelectorExpr); ok && t.Value == nil && fieldOf(sel) != nil {
				walkExpr(sel.X)
			} else {
				walkExpr(t.X)
			}
			if t.Tok == token.ASSIGN {
				emitTarget(t.Key, false)
				emitTarget(t.Value, false)
			}
			walkStmt(t.Body)
		case *ast.SwitchStmt:
			walkStmt(t.Init)
			walkExpr(t.Tag)
			walkStmt(t.Body)
		case *ast.TypeSwitchStmt:
			walkStmt(t.Init)
			walkStmt(t.Assign)
			walkStmt(t.Body)
		case *ast.SelectStmt:
			walkStmt(t.Body)
		case *ast.CaseClause:
			walkExprs(t.List)
			walkStmtList(t.Body)
		case *ast.CommClause:
			walkStmt(t.Comm)
			walkStmtList(t.Body)
		case *ast.ReturnStmt:
			walkExprs(t.Results)
		case *ast.DeferStmt:
			walkExpr(t.Call)
		case *ast.GoStmt:
			walkExpr(t.Call)
		case *ast.DeclStmt:
			if gd, ok := t.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						walkExprs(vs.Values)
					}
				}
			}
		case *ast.LabeledStmt:
			walkStmt(t.Stmt)
		}
	}

	walkStmt(node.decl.Body)
	return evs
}

// methodValueTargets resolves an indirect call through a func-typed
// value to the bound method values with an identical signature — the
// zero-alloc idiom stores n.runShard in a field once and hands it to
// sim.Pool.Do every cycle, and the state analysis must see through that
// dispatch or every shard-scratch write would look unreachable.
func (a *stateAnalysis) methodValueTargets(pkg *Package, fun ast.Expr) []*types.Func {
	tv, ok := pkg.Info.Types[fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, mv := range a.graph.methodValues() {
		if types.Identical(mv.sig, sig) {
			out = append(out, mv.fn)
		}
	}
	return out
}

// --- warm-skip state ---

// stateState is the stored warm-skip state for the state gate.
type stateState struct {
	Key      string          `json:"key"`
	Findings []cachedFinding `json:"findings"`
}

// resolve converts stored findings back to absolute positions.
func (st *stateState) resolve(root string) []Finding {
	e := cacheEntry{Findings: st.Findings}
	return e.resolve(root)
}

// loadStateState returns the stored state if its key matches.
func loadStateState(dir, key string) (*stateState, bool) {
	data, err := os.ReadFile(filepath.Join(dir, stateStateName))
	if err != nil {
		return nil, false
	}
	var st stateState
	if json.Unmarshal(data, &st) != nil || st.Key != key {
		return nil, false
	}
	return &st, true
}

// storeStateState writes the warm-skip state; failures are ignored so a
// read-only checkout cannot fail the gate.
func storeStateState(dir, root, key string, fs []Finding) {
	st := stateState{Key: key, Findings: []cachedFinding{}}
	for _, f := range fs {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
		st.Findings = append(st.Findings, cachedFinding{
			File:   name,
			Line:   f.Pos.Line,
			Column: f.Pos.Column,
			Rule:   f.Rule,
			Msg:    f.Msg,
		})
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	data, err := json.MarshalIndent(&st, "", "\t")
	if err != nil {
		return
	}
	os.WriteFile(filepath.Join(dir, stateStateName), data, 0o644)
}
