package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"vix/internal/lint"
)

// repoRoot locates the module root above this package's directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test's working directory")
		}
		dir = parent
	}
}

// TestRepoIsLintClean runs every vixlint analyzer over the repository's
// own source, so `go test ./...` — the tier-1 gate — fails the moment a
// change reintroduces wall-clock reads, global randomness, order-leaking
// map iteration, allocator-contract violations, or library-code printing.
// This is the same analysis `make lint` (cmd/vixlint) runs.
func TestRepoIsLintClean(t *testing.T) {
	findings, err := lint.Check(repoRoot(t))
	if err != nil {
		t.Fatalf("lint.Check: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("fix the findings or, for provably order-independent map iteration, add a justified //vixlint:ordered waiver (see package lint docs)")
	}
}

// TestRepoTypeChecks asserts the analysis ran with full type information:
// analyzer fallbacks exist for broken code, but the repo itself must
// type-check cleanly or rules like determinism/maprange lose their teeth.
func TestRepoTypeChecks(t *testing.T) {
	mod, err := lint.Load(repoRoot(t))
	if err != nil {
		t.Fatalf("lint.Load: %v", err)
	}
	if len(mod.Pkgs) < 20 {
		t.Errorf("loaded only %d packages; expected the full module (loader discovery broke?)", len(mod.Pkgs))
	}
	for _, pkg := range mod.Packages() {
		for _, e := range pkg.TypeErrs {
			t.Errorf("%s: type error: %v", pkg.Path, e)
		}
	}
}
