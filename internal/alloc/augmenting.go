package alloc

import "vix/internal/arb"

// AugmentingPath computes a maximum bipartite matching between crossbar
// rows and output ports each cycle using Kuhn's augmenting-path algorithm
// (the Ford-Fulkerson construction the paper cites). It is the "AP"
// scheme of the evaluation: the best matching a single cycle can achieve
// on the offered request matrix.
//
// The paper deems AP infeasible to implement within a router cycle
// (Table 3) and observes that, despite its per-router optimality, greedy
// maximum matching is locally optimal but globally unfair at the network
// level (Figure 9). The implementation is deliberately deterministic in
// its search order — exactly the behaviour a hardware realisation would
// have — which is what produces that unfairness.
type AugmentingPath struct {
	cfg    Config
	vcPick []arb.Arbiter // per row, selects the transmitting VC

	// scratch for matching
	adj      [][]int // adj[row] = outputs requested
	matchTo  []int   // matchTo[out] = row, -1 if free
	visited  []bool
	cellReqs cellScratch
	slots    vcPickScratch
	grants   []Grant
}

// NewAugmentingPath returns a maximum-matching allocator for cfg. It
// panics if cfg is invalid.
func NewAugmentingPath(cfg Config) *AugmentingPath {
	mustValidate(cfg)
	a := &AugmentingPath{
		cfg:      cfg,
		adj:      make([][]int, cfg.Rows()),
		matchTo:  make([]int, cfg.Ports),
		visited:  make([]bool, cfg.Ports),
		cellReqs: newCellScratch(cfg),
		slots:    newVCPickScratch(cfg),
		grants:   make([]Grant, 0, cfg.Ports),
	}
	a.vcPick = make([]arb.Arbiter, cfg.Rows())
	for i := range a.vcPick {
		a.vcPick[i] = arb.NewRoundRobin(cfg.GroupSize())
	}
	return a
}

// Name implements Allocator.
func (a *AugmentingPath) Name() string { return "ap" }

// Reset implements Allocator.
func (a *AugmentingPath) Reset() {
	for _, p := range a.vcPick {
		p.Reset()
	}
}

// Allocate implements Allocator. The returned slice is scratch, valid
// until the next Allocate or Reset call.
//
//vixlint:hot
func (a *AugmentingPath) Allocate(rs *RequestSet) []Grant {
	rows := a.cfg.Rows()
	for i := 0; i < rows; i++ {
		a.adj[i] = a.adj[i][:0]
	}
	// Representative request per (row, out); VC choice refined afterwards.
	a.cellReqs.clear()
	for idx, r := range rs.Requests {
		row := a.cfg.Row(r.Port, r.VC)
		if len(a.cellReqs.at(row, r.OutPort)) == 0 {
			a.adj[row] = append(a.adj[row], r.OutPort)
		}
		a.cellReqs.add(row, r.OutPort, idx)
	}
	for i := range a.matchTo {
		a.matchTo[i] = -1
	}
	for row := 0; row < rows; row++ {
		if len(a.adj[row]) == 0 {
			continue
		}
		for i := range a.visited {
			a.visited[i] = false
		}
		a.augment(row)
	}

	a.grants = a.grants[:0]
	for out, row := range a.matchTo {
		if row < 0 {
			continue
		}
		idx := a.slots.pick(a.cfg, rs, a.cellReqs.at(row, out), a.vcPick[row])
		a.grants = append(a.grants, Grant{Req: idx, OutPort: out, Row: row})
	}
	return a.grants
}

// augment tries to find an augmenting path from row; it returns true and
// updates the matching if one exists.
func (a *AugmentingPath) augment(row int) bool {
	for _, out := range a.adj[row] {
		if a.visited[out] {
			continue
		}
		a.visited[out] = true
		if a.matchTo[out] < 0 || a.augment(a.matchTo[out]) {
			a.matchTo[out] = row
			return true
		}
	}
	return false
}
