// Package drive reaches the clock package's violation indirectly:
// through interface dispatch and through an address-taken func value.
package drive

import "fix/internal/clock"

// Ticker is resolved by class-hierarchy analysis; clock.Ticker
// implements it.
type Ticker interface{ Tick() int64 }

// Drive dispatches through the interface: two hops from the wall clock.
func Drive(t Ticker) int64 { return t.Tick() }

// Run calls through a func value, which the graph resolves to every
// address-taken module function with an identical signature.
func Run(f func() int64) int64 { return f() }

// Default passes the tainted clock.Stamp as the func value.
func Default() int64 { return Run(clock.Stamp) }
