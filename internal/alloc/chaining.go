package alloc

// PacketChaining implements the SameInput/anyVC packet-chaining scheme of
// Michelogiannakis et al. (MICRO-44), the comparison point of the paper's
// Figure 10. A connection granted in the previous cycle is preserved in
// the current cycle if any VC of the same input port requests the same
// output port; chained pairs bypass allocation entirely, and the
// underlying separable input-first allocator runs on the remaining
// requests with the chained rows and outputs masked out.
//
// Chaining works by elimination: preserved connections remove requests
// from the matrix, reducing the chance of uncoordinated input/output
// arbiter decisions. VIX instead works by exposure — more conflict-free
// requests reach output arbitration — which is the contrast Figure 10
// quantifies (PC +9% vs VIX +16% over IF on single-flit uniform traffic).
type PacketChaining struct {
	cfg   Config
	inner *SeparableIF

	// prevOut[row] = output port granted to the row last cycle, -1 if none.
	prevOut []int

	// scratch
	chainVC    []arb2 // per row: rotating pick among VCs eligible to chain
	rest       RequestSet
	restIdx    []int // rest position -> index in the outer request set
	rowReqs    rowScratch
	rowChained []bool
	outChained []bool
	grants     []Grant
}

// arb2 is a tiny rotating pointer used for chained-VC selection; a full
// arbiter is unnecessary because the candidate set is already filtered to
// one output port.
type arb2 struct{ ptr int }

func (a *arb2) pick(n int, ok func(i int) bool) int {
	for i := 0; i < n; i++ {
		idx := (a.ptr + i) % n
		if ok(idx) {
			a.ptr = (idx + 1) % n
			return idx
		}
	}
	return -1
}

// NewPacketChaining returns a packet-chaining allocator for cfg. The paper
// evaluates chaining on the baseline crossbar (VirtualInputs = 1), but the
// implementation supports any geometry. It panics if cfg is invalid.
func NewPacketChaining(cfg Config) *PacketChaining {
	mustValidate(cfg)
	p := &PacketChaining{
		cfg:        cfg,
		inner:      NewSeparableIF(cfg),
		prevOut:    make([]int, cfg.Rows()),
		chainVC:    make([]arb2, cfg.Rows()),
		restIdx:    make([]int, 0, cfg.Ports*cfg.VCs),
		rowReqs:    newRowScratch(cfg),
		rowChained: make([]bool, cfg.Rows()),
		outChained: make([]bool, cfg.Ports),
		grants:     make([]Grant, 0, cfg.Ports),
	}
	for i := range p.prevOut {
		p.prevOut[i] = -1
	}
	return p
}

// Name implements Allocator.
func (p *PacketChaining) Name() string { return "pc" }

// Reset implements Allocator.
func (p *PacketChaining) Reset() {
	p.inner.Reset()
	for i := range p.prevOut {
		p.prevOut[i] = -1
	}
	for i := range p.chainVC {
		p.chainVC[i] = arb2{}
	}
}

// Allocate implements Allocator. The returned slice is scratch, valid
// until the next Allocate or Reset call.
//
//vixlint:hot
func (p *PacketChaining) Allocate(rs *RequestSet) []Grant {
	rows := p.rowReqs.group(rs)
	for i := range p.rowChained {
		p.rowChained[i] = false
	}
	for i := range p.outChained {
		p.outChained[i] = false
	}
	p.grants = p.grants[:0]

	// Phase zero: preserve last cycle's connections where any VC of the
	// row requests the same output (SameInput, anyVC).
	for row, out := range p.prevOut {
		if out < 0 || p.outChained[out] {
			continue
		}
		idxs := rows[row]
		if len(idxs) == 0 {
			continue
		}
		pick := p.chainVC[row].pick(len(idxs), func(i int) bool {
			return rs.Requests[idxs[i]].OutPort == out
		})
		if pick < 0 {
			continue
		}
		p.grants = append(p.grants, Grant{Req: idxs[pick], OutPort: out, Row: row})
		p.rowChained[row] = true
		p.outChained[out] = true
	}

	// Run the separable allocator on the unchained remainder. The inner
	// allocator returns its own scratch; appending copies the grant values
	// out before they can be invalidated. Inner grants index the filtered
	// request set, so restIdx maps them back onto the caller's indices.
	p.rest.Config = rs.Config
	p.rest.Requests = p.rest.Requests[:0]
	p.restIdx = p.restIdx[:0]
	for i, r := range rs.Requests {
		row := p.cfg.Row(r.Port, r.VC)
		if p.rowChained[row] || p.outChained[r.OutPort] {
			continue
		}
		p.rest.Requests = append(p.rest.Requests, r)
		p.restIdx = append(p.restIdx, i)
	}
	for _, g := range p.inner.Allocate(&p.rest) {
		g.Req = p.restIdx[g.Req]
		p.grants = append(p.grants, g)
	}

	// Record this cycle's connections for chaining next cycle.
	for i := range p.prevOut {
		p.prevOut[i] = -1
	}
	for _, g := range p.grants {
		p.prevOut[g.Row] = g.OutPort
	}
	return p.grants
}
