package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func entry(id string, v int) Entry {
	return Entry{ID: id, Name: "test/" + id, Value: json.RawMessage(fmt.Sprintf(`{"v":%d}`, v))}
}

// TestPersistenceAcrossReopen pins the core cross-run property: entries
// put by one Store are served by a fresh Store on the same path.
func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(entry(fmt.Sprintf("id%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 5 {
		t.Fatalf("reopened store holds %d entries, want 5", r.Len())
	}
	e, ok := r.Lookup("id3")
	if !ok {
		t.Fatal("id3 missing after reopen")
	}
	if string(e.Value) != `{"v":3}` {
		t.Fatalf("id3 value = %s", e.Value)
	}
}

// TestTornTailDiscarded: a kill mid-append tears at most the final line,
// which Open must discard while keeping every whole line.
func TestTornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(entry(fmt.Sprintf("id%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("store with torn tail holds %d entries, want 2", r.Len())
	}
	if _, ok := r.Lookup("id2"); ok {
		t.Fatal("torn entry id2 survived")
	}
}

// TestDuplicateIDsResolveLastWins: two writers may race to complete the
// same spec; the loader must accept the file and keep one entry.
func TestDuplicateIDsResolveLastWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(entry("dup", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(entry("dup", 2)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 1 {
		t.Fatalf("store holds %d entries, want 1", r.Len())
	}
	e, _ := r.Lookup("dup")
	if string(e.Value) != `{"v":2}` {
		t.Fatalf("duplicate did not resolve last-wins: %s", e.Value)
	}
}

// TestDoSingleFlight is the in-flight dedup contract: N concurrent
// requests for one ID run the computation exactly once, everyone gets
// the same entry, and the counters record 1 miss and N-1 dedups.
func TestDoSingleFlight(t *testing.T) {
	s := Memory()
	const waiters = 8
	release := make(chan struct{})
	started := make(chan struct{})
	var computes int
	var mu sync.Mutex

	var wg sync.WaitGroup
	results := make([]Entry, waiters)
	outcomes := make([]Outcome, waiters)
	// Leader: blocks in compute until released.
	wg.Add(1)
	go func() {
		defer wg.Done()
		e, o, err := s.Do(context.Background(), "job", func() (Entry, error) {
			close(started)
			<-release
			mu.Lock()
			computes++
			mu.Unlock()
			return entry("job", 42), nil
		})
		if err != nil {
			t.Error(err)
		}
		results[0], outcomes[0] = e, o
	}()
	<-started
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, o, err := s.Do(context.Background(), "job", func() (Entry, error) {
				mu.Lock()
				computes++
				mu.Unlock()
				return entry("job", 42), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], outcomes[i] = e, o
		}(i)
	}
	// Give the waiters a chance to park on the flight, then release the
	// leader. (A waiter that arrives after the flight lands is a Hit —
	// equally correct, just not what this test measures — so the dedup
	// assertion below accepts hits too, but at least one path must run.)
	close(release)
	wg.Wait()

	if computes != 1 {
		t.Fatalf("computation ran %d times, want exactly 1", computes)
	}
	for i, e := range results {
		if string(e.Value) != `{"v":42}` {
			t.Fatalf("caller %d got value %s", i, e.Value)
		}
	}
	if outcomes[0] != Computed {
		t.Fatalf("leader outcome = %v, want Computed", outcomes[0])
	}
	st := s.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Served() != waiters-1 {
		t.Fatalf("served (hits+dedup) = %d, want %d", st.Served(), waiters-1)
	}
}

// TestDoHit: a stored entry is returned without running compute.
func TestDoHit(t *testing.T) {
	s := Memory()
	if err := s.Put(entry("job", 7)); err != nil {
		t.Fatal(err)
	}
	e, o, err := s.Do(context.Background(), "job", func() (Entry, error) {
		t.Fatal("compute ran despite a stored entry")
		return Entry{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if o != Hit {
		t.Fatalf("outcome = %v, want Hit", o)
	}
	if string(e.Value) != `{"v":7}` {
		t.Fatalf("value = %s", e.Value)
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 1 hit, 0 misses", st)
	}
}

// TestDoErrorPropagatesAndClears: a failed computation reaches every
// waiter, and a later request retries instead of caching the failure.
func TestDoErrorPropagatesAndClears(t *testing.T) {
	s := Memory()
	boom := errors.New("boom")
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	var leaderErr, waiterErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, leaderErr = s.Do(context.Background(), "job", func() (Entry, error) {
			close(started)
			<-release
			return Entry{}, boom
		})
	}()
	<-started
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, waiterErr = s.Do(context.Background(), "job", func() (Entry, error) {
			<-release
			return Entry{}, boom
		})
	}()
	close(release)
	wg.Wait()
	if !errors.Is(leaderErr, boom) {
		t.Fatalf("leader error = %v, want boom", leaderErr)
	}
	// The waiter either shared the failed flight (boom) or, arriving
	// after it cleared, retried and failed itself (also boom).
	if !errors.Is(waiterErr, boom) {
		t.Fatalf("waiter error = %v, want boom", waiterErr)
	}
	// The failure is not cached: the next request runs compute again.
	e, o, err := s.Do(context.Background(), "job", func() (Entry, error) {
		return entry("job", 1), nil
	})
	if err != nil || o != Computed || string(e.Value) != `{"v":1}` {
		t.Fatalf("retry after failure: e=%s o=%v err=%v", e.Value, o, err)
	}
}

// TestDoWaiterHonoursContext: a waiter whose context ends returns
// promptly without disturbing the leader's computation.
func TestDoWaiterHonoursContext(t *testing.T) {
	s := Memory()
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := s.Do(context.Background(), "job", func() (Entry, error) {
			close(started)
			<-release
			return entry("job", 1), nil
		}); err != nil {
			t.Error(err)
		}
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := s.Do(ctx, "job", func() (Entry, error) {
		t.Error("cancelled waiter ran compute")
		return Entry{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter error = %v, want context.Canceled", err)
	}
	close(release)
	wg.Wait()
	if _, ok := s.Lookup("job"); !ok {
		t.Fatal("leader's entry missing; waiter cancellation disturbed the flight")
	}
}

// TestDoRejectsMismatchedID: compute must return the entry it was asked
// for; anything else would poison the cache under the wrong key.
func TestDoRejectsMismatchedID(t *testing.T) {
	s := Memory()
	_, _, err := s.Do(context.Background(), "want", func() (Entry, error) {
		return entry("other", 1), nil
	})
	if err == nil || !strings.Contains(err.Error(), "under key") {
		t.Fatalf("mismatched ID not rejected: %v", err)
	}
	if s.Len() != 0 {
		t.Fatal("mismatched entry was stored")
	}
}

// TestConcurrentWritersInterleaveWholeLines: two Store instances on one
// path (the two-process model) append concurrently; the file must stay
// line-parseable with every entry intact.
func TestConcurrentWritersInterleaveWholeLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const per = 200
	var wg sync.WaitGroup
	write := func(s *Store, prefix string) {
		defer wg.Done()
		for i := 0; i < per; i++ {
			if err := s.Put(entry(fmt.Sprintf("%s%d", prefix, i), i)); err != nil {
				t.Error(err)
				return
			}
		}
	}
	wg.Add(2)
	go write(a, "a")
	go write(b, "b")
	wg.Wait()
	a.Close()
	b.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte{'\n'}), []byte{'\n'})
	if len(lines) != 2*per {
		t.Fatalf("file has %d lines, want %d", len(lines), 2*per)
	}
	for _, line := range lines {
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("torn line %q: %v", line, err)
		}
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 2*per {
		t.Fatalf("reopened store holds %d entries, want %d", r.Len(), 2*per)
	}
}

// TestMemoryStore: an empty path is a memory-only store; Puts succeed
// and nothing touches the filesystem.
func TestMemoryStore(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if s.Path() != "" {
		t.Fatalf("memory store has path %q", s.Path())
	}
	if err := s.Put(entry("x", 1)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatal("memory store dropped the entry")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPutRejectsEmptyID: an entry without an ID would be unreachable and
// silently discarded on reload.
func TestPutRejectsEmptyID(t *testing.T) {
	s := Memory()
	if err := s.Put(Entry{Name: "anon"}); err == nil {
		t.Fatal("empty-ID entry accepted")
	}
}
