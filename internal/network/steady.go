package network

import "math"

// RunToSteadyState warms the network up adaptively instead of with a
// fixed cycle count: it runs successive windows of the given length and
// stops once the accepted flit throughput of two consecutive windows
// agrees within tol (fractional), or maxCycles have elapsed. Statistics
// are reset afterwards, leaving the network ready for measurement.
//
// It returns the number of warmup cycles consumed and whether convergence
// was reached. Zero-traffic configurations converge trivially.
func (n *Network) RunToSteadyState(window int, tol float64, maxCycles int) (cycles int, converged bool) {
	if window <= 0 {
		window = 500
	}
	if tol <= 0 {
		tol = 0.02
	}
	prev := math.NaN()
	for cycles < maxCycles {
		n.col.Reset()
		n.Run(window)
		cycles += window
		cur := n.col.Snapshot().ThroughputFlits
		if !math.IsNaN(prev) {
			if prev == 0 && cur == 0 {
				converged = true
				break
			}
			if prev > 0 && math.Abs(cur-prev)/prev <= tol {
				converged = true
				break
			}
		}
		prev = cur
	}
	n.col.Reset()
	return cycles, converged
}
