package harness

import (
	"time"

	"vix/internal/store"
)

// Telemetry is the wall-clock cost of one job. The type lives in
// internal/store — it is recorded in every store entry — and is aliased
// here so harness callers keep reading results the way they always have.
// Telemetry is emitted alongside results (stderr logs,
// BENCH_harness.json) but never enters a merged artifact: the CSVs and
// tables the harness produces stay byte-identical across machines and
// worker counts.
type Telemetry = store.Telemetry

// wallClock reads the wall clock for telemetry. This is the only
// sanctioned wall-clock read in internal/: the value annotates harness
// throughput and never reaches a simulation result or merged artifact,
// so reproducibility is unaffected.
func wallClock() time.Time {
	//vixlint:ordered telemetry-only wall-clock read; the value never flows into simulation results or merged artifacts
	return time.Now()
}

// newTelemetry computes a job's telemetry from its start time and
// simulated cycle count.
func newTelemetry(start time.Time, cycles int64) Telemetry {
	elapsed := wallClock().Sub(start)
	t := Telemetry{WallNanos: elapsed.Nanoseconds(), Cycles: cycles}
	if secs := elapsed.Seconds(); secs > 0 && cycles > 0 {
		t.CyclesPerSec = float64(cycles) / secs
	}
	return t
}
