package network

import (
	"testing"

	"vix/internal/alloc"
	"vix/internal/router"
	"vix/internal/topology"
)

// saturatedMesh builds the workload every Figure 8 sweep spends its
// cycles in: an 8x8 VIX mesh under saturated uniform-random load.
func saturatedMesh(tb testing.TB) *Network {
	tb.Helper()
	topo := topology.NewMesh(8, 8)
	cfg := meshConfig(topo, alloc.KindSeparableIF, 2, router.PolicyBalanced)
	cfg.InjectionRate = 0
	cfg.MaxInjection = true
	cfg.Seed = 1
	n, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return n
}

// TestSteadyStateZeroAllocs pins the headline guarantee of the memory
// discipline work: once the scratch buffers and the flit pool have grown
// to their high-water marks, Network.Step performs zero heap allocations
// per cycle. The run is fully deterministic (fixed seed), so this either
// always passes or always fails for a given code state.
func TestSteadyStateZeroAllocs(t *testing.T) {
	n := saturatedMesh(t)
	n.Run(8000)
	n.Collector().Reset()
	avg := testing.AllocsPerRun(200, func() { n.Step() })
	if avg != 0 {
		t.Fatalf("Network.Step allocates %v times per cycle in steady state; want 0", avg)
	}
}

// BenchmarkNetworkStep measures the serial cycle loop's cost under the
// saturated VIX workload; the allocation counter must stay at 0.
func BenchmarkNetworkStep(b *testing.B) {
	n := saturatedMesh(b)
	n.Run(3000)
	n.Collector().Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
}
