package config

import (
	"fmt"
	"strings"

	"vix/internal/alloc"
	"vix/internal/traffic"
)

// FieldError is one structured validation failure, naming the offending
// field by its JSON path so API clients and CLI users can point the
// message back at their input.
type FieldError struct {
	// Field is the JSON field path, e.g. "injection_rate".
	Field string `json:"field"`
	// Msg explains the constraint the value violates.
	Msg string `json:"msg"`
}

// Error implements error.
func (e FieldError) Error() string { return e.Field + ": " + e.Msg }

// ValidationError aggregates every failed field of a spec, in field
// order, so one round trip reports all problems instead of the first.
// vixd serialises it into 400 responses; the CLIs print it line per
// field.
type ValidationError []FieldError

// Error implements error.
func (e ValidationError) Error() string {
	msgs := make([]string, len(e))
	for i, fe := range e {
		msgs[i] = fe.Error()
	}
	return "config: invalid experiment: " + strings.Join(msgs, "; ")
}

// Validate checks the experiment for semantic errors — unknown enum
// values, out-of-range numbers, impossible crossbar geometry — and
// returns a ValidationError naming every offending field by its JSON
// path, or nil. Zero values are legal everywhere a documented default
// exists, so Validate accepts exactly the specs Build can resolve;
// callers that reject a spec on Validate's word never hand the
// simulator a config it would refuse (or, worse, misread).
func (e Experiment) Validate() error {
	var errs ValidationError
	bad := func(field, format string, args ...any) {
		errs = append(errs, FieldError{Field: field, Msg: fmt.Sprintf(format, args...)})
	}

	switch e.Topology {
	case "", "mesh", "torus", "cmesh", "fbfly":
	default:
		bad("topology", "unknown topology %q; want mesh, torus, cmesh, or fbfly", e.Topology)
	}
	if e.Width < 0 {
		bad("width", "must be non-negative, got %d", e.Width)
	}
	if e.Height < 0 {
		bad("height", "must be non-negative, got %d", e.Height)
	}
	if e.Conc < 0 {
		bad("conc", "must be non-negative, got %d", e.Conc)
	}
	if e.VCs < 0 {
		bad("vcs", "must be non-negative, got %d", e.VCs)
	}
	if e.BufDepth < 0 {
		bad("buf_depth", "must be non-negative, got %d", e.BufDepth)
	}
	if e.VirtualInputs < 0 {
		bad("virtual_inputs", "must be non-negative, got %d", e.VirtualInputs)
	}
	// Effective crossbar geometry, after the documented defaults.
	vcs, k := e.VCs, e.VirtualInputs
	if vcs == 0 {
		vcs = 6
	}
	if k == 0 {
		k = 1
	}
	if k > 0 && vcs > 0 && k > vcs {
		bad("virtual_inputs", "virtual inputs per port (%d) cannot exceed VCs per port (%d)", k, vcs)
	}
	if e.Topology == "torus" && vcs < 2 && (e.Width >= 3 || e.Height >= 3 || e.Width == 0) {
		bad("vcs", "a torus with wraparound rings needs at least 2 VCs for the dateline classes, got %d", vcs)
	}
	if e.Allocator != "" && !alloc.Known(alloc.Kind(e.Allocator)) {
		bad("allocator", "unknown allocator %q; want one of %v", e.Allocator, alloc.Kinds())
	}
	switch e.Policy {
	case "", "maxfree", "dimension", "balanced":
	default:
		bad("policy", "unknown policy %q; want maxfree, dimension, or balanced", e.Policy)
	}
	switch e.Partition {
	case "", "contiguous", "interleaved":
	default:
		bad("partition", "unknown partition %q; want contiguous or interleaved", e.Partition)
	}

	if e.Pattern != "" && !traffic.Known(e.Pattern) {
		bad("pattern", "unknown traffic pattern %q; want one of %v", e.Pattern, traffic.Names())
	}
	if e.InjectionRate < 0 || e.InjectionRate > 1 {
		bad("injection_rate", "must be in [0, 1] packets/cycle/node, got %g", e.InjectionRate)
	}
	if e.PacketSize < 0 {
		bad("packet_size", "must be non-negative, got %d", e.PacketSize)
	}

	if e.Warmup < 0 {
		bad("warmup", "must be non-negative, got %d", e.Warmup)
	}
	if e.Measure < 0 {
		bad("measure", "must be non-negative, got %d", e.Measure)
	}
	if e.HopDelay < 0 {
		bad("hop_delay", "must be non-negative, got %d", e.HopDelay)
	}
	if e.CreditDelay < 0 {
		bad("credit_delay", "must be non-negative, got %d", e.CreditDelay)
	}

	if len(errs) == 0 {
		return nil
	}
	return errs
}
