package routing

import (
	"testing"
	"testing/quick"

	"vix/internal/topology"
)

func topologies() []*topology.Topology {
	return []*topology.Topology{
		topology.NewMesh(8, 8),
		topology.NewCMesh(4, 4, 4),
		topology.NewFBfly(4, 4, 4),
	}
}

// Every route from every router to every destination must select a port
// that is actually wired (link or correct local port), and following the
// route must reach the destination.
func TestRoutesConvergeEverywhere(t *testing.T) {
	for _, topo := range topologies() {
		route := DOR(topo)
		for src := 0; src < topo.NumNodes; src++ {
			for dst := 0; dst < topo.NumNodes; dst++ {
				r := topo.NodeRouter[src]
				steps := 0
				for {
					p := route(topo, r, dst)
					c := topo.Conn[r][p]
					if r == topo.NodeRouter[dst] {
						if c.Kind != topology.Local || c.Node != dst {
							t.Fatalf("%s: at dst router %d, route gave port %d (%+v), want local port of node %d", topo.Name, r, p, c, dst)
						}
						break
					}
					if c.Kind != topology.Link {
						t.Fatalf("%s: router %d -> node %d chose unwired port %d", topo.Name, r, dst, p)
					}
					r = c.PeerRouter
					if steps++; steps > topo.NumRouters {
						t.Fatalf("%s: route %d -> %d did not converge", topo.Name, src, dst)
					}
				}
			}
		}
	}
}

// Mesh DOR is minimal: hop count equals Manhattan distance.
func TestMeshDORMinimal(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	route := DOR(topo)
	for src := 0; src < topo.NumNodes; src += 3 {
		for dst := 0; dst < topo.NumNodes; dst += 5 {
			sx, sy := topo.RouterXY(topo.NodeRouter[src])
			dx, dy := topo.RouterXY(topo.NodeRouter[dst])
			want := abs(sx-dx) + abs(sy-dy)
			if got := Hops(topo, route, src, dst); got != want {
				t.Fatalf("mesh hops %d->%d = %d, want %d", src, dst, got, want)
			}
		}
	}
}

// FBfly DOR is at most 2 hops (one per dimension).
func TestFBflyDORAtMostTwoHops(t *testing.T) {
	topo := topology.NewFBfly(4, 4, 4)
	route := DOR(topo)
	prop := func(s, d uint8) bool {
		src := int(s) % topo.NumNodes
		dst := int(d) % topo.NumNodes
		return Hops(topo, route, src, dst) <= 2
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Dimension order: once a mesh route moves in Y it never moves in X
// again — the invariant that makes X-then-Y deadlock-free.
func TestMeshDORDimensionOrder(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	route := DOR(topo)
	for src := 0; src < topo.NumNodes; src += 7 {
		for dst := 0; dst < topo.NumNodes; dst += 3 {
			r := topo.NodeRouter[src]
			inY := false
			for r != topo.NodeRouter[dst] {
				p := route(topo, r, dst)
				c := topo.Conn[r][p]
				switch c.Dim {
				case topology.DimX:
					if inY {
						t.Fatalf("route %d->%d moved X after Y", src, dst)
					}
				case topology.DimY:
					inY = true
				}
				r = c.PeerRouter
			}
		}
	}
}

// CMesh: nodes sharing a router route directly via the local port with
// zero hops.
func TestCMeshIntraRouterDelivery(t *testing.T) {
	topo := topology.NewCMesh(4, 4, 4)
	route := DOR(topo)
	for n := 0; n < topo.NumNodes; n++ {
		r := topo.NodeRouter[n]
		sibling := (n/topo.Conc)*topo.Conc + (n+1)%topo.Conc
		if topo.NodeRouter[sibling] != r {
			continue
		}
		p := route(topo, r, sibling)
		c := topo.Conn[r][p]
		if c.Kind != topology.Local || c.Node != sibling {
			t.Fatalf("intra-router route from router %d to node %d wrong: %+v", r, sibling, c)
		}
	}
}

// Average hop count on an 8x8 mesh under uniform traffic should be close
// to the analytic (w+h)/3 ≈ 5.33 for w=h=8.
func TestMeshAverageHops(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	route := DOR(topo)
	total, pairs := 0, 0
	for src := 0; src < topo.NumNodes; src++ {
		for dst := 0; dst < topo.NumNodes; dst++ {
			if src == dst {
				continue
			}
			total += Hops(topo, route, src, dst)
			pairs++
		}
	}
	avg := float64(total) / float64(pairs)
	// Exact uniform mean distance for 8x8 Manhattan grid excluding
	// self-pairs is 2*(64/3)*(8 - 1/8)/ ... use loose bounds.
	if avg < 5.0 || avg > 5.7 {
		t.Fatalf("mesh average hops = %.3f, expected about 5.33", avg)
	}
}

func TestDORUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DOR on unknown kind did not panic")
		}
	}()
	bad := &topology.Topology{Kind: "ring"}
	DOR(bad)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
