package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"vix/internal/sim"
	"vix/internal/store"
)

// gridSpec is the test stand-in for an experiment point spec.
type gridSpec struct {
	Study string `json:"study"`
	Point int    `json:"point"`
	Seed  uint64 `json:"seed"`
}

// fakeGrid builds n deterministic jobs whose results depend only on
// their spec (a short pseudo-random walk from the derived seed), just
// like a real simulation point.
func fakeGrid(n int) []Job {
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		spec := gridSpec{Study: "test", Point: i, Seed: sim.DeriveSeed(99, "test", fmt.Sprint(i))}
		jobs[i] = Job{
			Name:   fmt.Sprintf("test/%d", i),
			Spec:   spec,
			Cycles: 1000,
			Run: func(context.Context) (any, error) {
				r := sim.NewRNG(spec.Seed)
				sum := uint64(0)
				for k := 0; k < 1000; k++ {
					sum += r.Uint64() % 1000
				}
				return map[string]uint64{"point": uint64(spec.Point), "sum": sum}, nil
			},
		}
	}
	return jobs
}

// render flattens results into the byte artifact a CLI would emit.
func render(t *testing.T, rs []Result) []byte {
	t.Helper()
	var b bytes.Buffer
	for _, r := range rs {
		b.WriteString(r.Name)
		b.WriteByte('\t')
		b.Write(r.Value)
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// TestParallelMergeIsByteIdentical is the harness's core guarantee: the
// merged artifact for -parallel=1 and -parallel=8 is byte-identical on
// the same grid.
func TestParallelMergeIsByteIdentical(t *testing.T) {
	jobs := fakeGrid(32)
	serial, err := Run(context.Background(), jobs, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), jobs, Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := render(t, serial), render(t, parallel); !bytes.Equal(a, b) {
		t.Fatalf("parallel=8 artifact differs from parallel=1:\nserial:\n%s\nparallel:\n%s", a, b)
	}
	for i, r := range parallel {
		if r.Index != i {
			t.Fatalf("result %d carries index %d; merge order broken", i, r.Index)
		}
		if r.Telemetry.Cycles != 1000 {
			t.Fatalf("result %d telemetry cycles = %d, want 1000", i, r.Telemetry.Cycles)
		}
	}
}

// TestResumeAfterInterruption kills a run mid-grid via context
// cancellation, reruns against the manifest, and asserts the final
// artifact equals an uninterrupted run's.
func TestResumeAfterInterruption(t *testing.T) {
	jobs := fakeGrid(24)
	manifest := filepath.Join(t.TempDir(), "manifest.jsonl")

	// Interrupted first attempt: cancel after 5 completions.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	first, err := Run(ctx, jobs, Options{
		Parallel: 4,
		Manifest: manifest,
		OnDone: func(Result) {
			if done.Add(1) == 5 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("interrupted run reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run error = %v, want context.Canceled", err)
	}
	completed := 0
	for _, r := range first {
		if r.Value != nil {
			completed++
		}
	}
	if completed == 0 || completed == len(jobs) {
		t.Fatalf("interruption completed %d/%d jobs; test needs a partial grid", completed, len(jobs))
	}

	// Resume: same grid, same manifest, no interruption.
	var cached atomic.Int64
	resumed, err := Run(context.Background(), jobs, Options{
		Parallel: 4,
		Manifest: manifest,
		OnDone: func(r Result) {
			if r.Cached {
				cached.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if int(cached.Load()) < completed {
		t.Errorf("resume recomputed checkpointed jobs: %d cached < %d completed", cached.Load(), completed)
	}

	// Reference: an uninterrupted, manifest-free run.
	fresh, err := Run(context.Background(), jobs, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := render(t, resumed), render(t, fresh); !bytes.Equal(a, b) {
		t.Fatalf("resumed artifact differs from uninterrupted run:\nresumed:\n%s\nfresh:\n%s", a, b)
	}
}

// TestManifestToleratesTornTail simulates a kill that tears the last
// manifest line: the torn entry is discarded and its job re-run.
func TestManifestToleratesTornTail(t *testing.T) {
	jobs := fakeGrid(6)
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	if _, err := Run(context.Background(), jobs, Options{Parallel: 2, Manifest: path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(data, []byte{'\n'}); lines != len(jobs) {
		t.Fatalf("manifest has %d lines, want %d", lines, len(jobs))
	}
	// Tear the final line mid-JSON.
	torn := data[:len(data)-10]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	var cached, ran int
	res, err := Run(context.Background(), jobs, Options{Parallel: 1, Manifest: path, OnDone: func(r Result) {
		if r.Cached {
			cached++
		} else {
			ran++
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if cached != len(jobs)-1 || ran != 1 {
		t.Fatalf("after torn tail: %d cached, %d re-run; want %d cached, 1 re-run", cached, ran, len(jobs)-1)
	}
	fresh, err := Run(context.Background(), jobs, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render(t, res), render(t, fresh)) {
		t.Fatal("artifact after torn-tail recovery differs from a fresh run")
	}
}

// TestJobIDStability pins that IDs depend on name and spec content, not
// on position, worker count, or map iteration order.
func TestJobIDStability(t *testing.T) {
	a := Job{Name: "x", Spec: gridSpec{Study: "s", Point: 1, Seed: 7}}
	b := Job{Name: "x", Spec: gridSpec{Study: "s", Point: 1, Seed: 7}}
	idA, err := JobID(a)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := JobID(b)
	if err != nil {
		t.Fatal(err)
	}
	if idA != idB {
		t.Fatalf("equal jobs hashed unequally: %s vs %s", idA, idB)
	}
	c := Job{Name: "x", Spec: gridSpec{Study: "s", Point: 2, Seed: 7}}
	idC, err := JobID(c)
	if err != nil {
		t.Fatal(err)
	}
	if idC == idA {
		t.Fatal("distinct specs hashed equally")
	}
	d := Job{Name: "y", Spec: a.Spec}
	idD, err := JobID(d)
	if err != nil {
		t.Fatal(err)
	}
	if idD == idA {
		t.Fatal("distinct names hashed equally")
	}
}

// TestDuplicateSpecsRejected: duplicate grid points would alias one
// manifest entry, so Run refuses them up front.
func TestDuplicateSpecsRejected(t *testing.T) {
	jobs := fakeGrid(3)
	jobs[2] = jobs[0]
	_, err := Run(context.Background(), jobs, Serial())
	if err == nil || !strings.Contains(err.Error(), "identical specs") {
		t.Fatalf("duplicate specs not rejected: %v", err)
	}
}

// TestJobErrorFailsFast: a failing job surfaces its error, and jobs that
// never started carry no value.
func TestJobErrorFailsFast(t *testing.T) {
	jobs := fakeGrid(8)
	boom := errors.New("boom")
	jobs[3].Run = func(context.Context) (any, error) { return nil, boom }
	res, err := Run(context.Background(), jobs, Options{Parallel: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), jobs[3].Name) {
		t.Fatalf("error %q does not name the failing job", err)
	}
	if res[3].Value != nil {
		t.Fatal("failed job recorded a value")
	}
}

// TestUnserialisableResultIsAnError, not a corrupt manifest line.
func TestUnserialisableResultIsAnError(t *testing.T) {
	jobs := fakeGrid(2)
	jobs[1].Run = func(context.Context) (any, error) { return func() {}, nil }
	_, err := Run(context.Background(), jobs, Serial())
	if err == nil || !strings.Contains(err.Error(), "not serialisable") {
		t.Fatalf("unserialisable result not rejected: %v", err)
	}
}

// TestDecodeAll round-trips typed values through the JSON layer.
func TestDecodeAll(t *testing.T) {
	type row struct {
		Point uint64 `json:"point"`
		Sum   uint64 `json:"sum"`
	}
	jobs := fakeGrid(5)
	res, err := Run(context.Background(), jobs, Options{Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := DecodeAll[row](res)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.Point != uint64(i) {
			t.Fatalf("row %d decoded point %d", i, r.Point)
		}
	}
	if _, err := Decode[row](Result{Name: "missing"}); err == nil {
		t.Fatal("Decode of nil value did not error")
	}
}

// TestOnDoneSeesEveryJobExactlyOnce under concurrency.
func TestOnDoneSeesEveryJobExactlyOnce(t *testing.T) {
	jobs := fakeGrid(20)
	var mu sync.Mutex
	seen := make(map[string]int)
	_, err := Run(context.Background(), jobs, Options{Parallel: 8, OnDone: func(r Result) {
		mu.Lock()
		seen[r.Name]++
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if seen[j.Name] != 1 {
			t.Fatalf("job %s observed %d times", j.Name, seen[j.Name])
		}
	}
}

// TestManifestEntriesAreCanonicalJSON guards the checkpoint format: one
// object per line with id/name/value/telemetry fields.
func TestManifestEntriesAreCanonicalJSON(t *testing.T) {
	jobs := fakeGrid(3)
	path := filepath.Join(t.TempDir(), "m.jsonl")
	if _, err := Run(context.Background(), jobs, Options{Parallel: 1, Manifest: path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range bytes.Split(bytes.TrimSuffix(data, []byte{'\n'}), []byte{'\n'}) {
		var e struct {
			ID        string          `json:"id"`
			Name      string          `json:"name"`
			Value     json.RawMessage `json:"value"`
			Telemetry Telemetry       `json:"telemetry"`
		}
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("manifest line %q: %v", line, err)
		}
		if e.ID == "" || e.Name == "" || e.Value == nil {
			t.Fatalf("manifest line missing fields: %q", line)
		}
		if e.Telemetry.Cycles != 1000 || e.Telemetry.WallNanos < 0 {
			t.Fatalf("manifest telemetry implausible: %+v", e.Telemetry)
		}
	}
}

// TestSerialRunExecutesInline pins the single-worker fast path: with
// Parallel=1 every job must run on the calling goroutine with no worker
// goroutines or feed channels in between — the regression that cost a
// serial sweep 4% on a single-CPU host. A job's stack must contain this
// test's frame, and the process goroutine count must not move.
func TestSerialRunExecutesInline(t *testing.T) {
	var stack string
	jobs := fakeGrid(4)
	jobs[2].Run = func(context.Context) (any, error) {
		buf := make([]byte, 1<<16)
		stack = string(buf[:runtime.Stack(buf, false)])
		return map[string]uint64{"point": 2}, nil
	}
	before := runtime.NumGoroutine()
	if _, err := Run(context.Background(), jobs, Options{Parallel: 1}); err != nil {
		t.Fatal(err)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine count grew from %d to %d; serial Run must not spawn", before, after)
	}
	if !strings.Contains(stack, "TestSerialRunExecutesInline") {
		t.Errorf("job did not run on the calling goroutine; stack:\n%s", stack)
	}
}

// TestConcurrentRunsShareStoreSingleFlight is the multi-writer contract
// for one shared Store: two harness.Runs executing the same grid
// concurrently must produce byte-identical artifacts while simulating
// each point exactly once — whichever Run reaches a point first computes
// it, and the other is served from the store (a hit) or waits on the
// in-flight computation (a dedup).
func TestConcurrentRunsShareStoreSingleFlight(t *testing.T) {
	jobs := fakeGrid(16)
	st, err := store.Open(filepath.Join(t.TempDir(), "shared.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var wg sync.WaitGroup
	outs := make([][]Result, 2)
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			outs[r], errs[r] = Run(context.Background(), jobs, Options{Parallel: 4, Store: st})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", r, err)
		}
	}
	if a, b := render(t, outs[0]), render(t, outs[1]); !bytes.Equal(a, b) {
		t.Fatalf("concurrent runs diverged:\nA:\n%s\nB:\n%s", a, b)
	}
	stats := st.Stats()
	if stats.Misses != int64(len(jobs)) {
		t.Fatalf("store computed %d points for %d-job grid run twice; single-flight must simulate each exactly once (stats %+v)",
			stats.Misses, len(jobs), stats)
	}
	if got := stats.Served(); got != int64(len(jobs)) {
		t.Fatalf("served %d results from the store, want %d (stats %+v)", got, len(jobs), stats)
	}
	if st.Len() != len(jobs) {
		t.Fatalf("store holds %d entries, want %d", st.Len(), len(jobs))
	}
}

// TestConcurrentRunsSharingOnePath is the two-process model: separate
// Store instances appending to one file concurrently. There is no
// cross-instance single-flight (each may simulate every point), but the
// O_APPEND whole-line discipline must keep the file intact: both runs
// succeed, artifacts are byte-identical, and a fresh Store loads every
// entry from the shared file.
func TestConcurrentRunsSharingOnePath(t *testing.T) {
	jobs := fakeGrid(12)
	path := filepath.Join(t.TempDir(), "shared.jsonl")

	var wg sync.WaitGroup
	outs := make([][]Result, 2)
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			outs[r], errs[r] = Run(context.Background(), jobs, Options{Parallel: 3, Manifest: path})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", r, err)
		}
	}
	if a, b := render(t, outs[0]), render(t, outs[1]); !bytes.Equal(a, b) {
		t.Fatalf("runs sharing one path diverged:\nA:\n%s\nB:\n%s", a, b)
	}

	// Every line in the shared file must be whole (no interleaved tears),
	// and the union must cover the grid.
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != len(jobs) {
		t.Fatalf("shared file resolves to %d entries, want %d", st.Len(), len(jobs))
	}
	for _, r := range outs[0] {
		e, ok := st.Lookup(r.ID)
		if !ok {
			t.Fatalf("job %s missing from shared store", r.Name)
		}
		if !bytes.Equal(e.Value, r.Value) {
			t.Fatalf("job %s: stored value %s differs from result %s", r.Name, e.Value, r.Value)
		}
	}

	// A third run over the same path must be served entirely from the
	// store: zero simulations.
	var ran int
	res, err := Run(context.Background(), jobs, Options{Parallel: 2, Manifest: path, OnDone: func(r Result) {
		if !r.Cached {
			ran++
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Fatalf("rerun over a complete store simulated %d points, want 0", ran)
	}
	if !bytes.Equal(render(t, res), render(t, outs[0])) {
		t.Fatal("rerun served from store differs from the original artifact")
	}
}
