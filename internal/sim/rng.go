// Package sim provides deterministic simulation primitives shared by the
// VIX network simulator: a fast, reproducible random number generator and
// small numeric helpers.
//
// All stochastic behaviour in the simulator (traffic generation, arbiter
// tie-breaking randomisation in testbenches, trace synthesis) flows through
// RNG so that every experiment is exactly reproducible from a seed.
package sim

import "math"

// RNG is a splitmix64-based pseudo random number generator.
//
// splitmix64 passes BigCrush, has a 2^64 period, and is trivially seedable,
// which makes it well suited for reproducible simulation. RNG is not safe
// for concurrent use; give each concurrent component its own stream via
// Fork.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators constructed
// with the same seed produce identical sequences.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent stream from the generator's seed and the
// given stream identifier. Forking with distinct stream values yields
// statistically independent sequences, so per-node or per-core generators
// can be created without correlating their draws.
func (r *RNG) Fork(stream uint64) *RNG {
	// Mix the stream id through one splitmix64 round with a distinct
	// odd constant so Fork(0) differs from the parent.
	z := r.state + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &RNG{state: z ^ (z >> 31)}
}

// DeriveSeed derives a stable sub-seed from a root seed and a label path
// using the 64-bit FNV-1a construction. It is the seeding counterpart to
// Fork: where Fork splits a live generator, DeriveSeed names a stream up
// front — the experiment harness keys each job's RNG on the job's labels
// so every grid point replays identically whether it runs first, last,
// serial, or on any of N workers.
//
// The derivation is pure stdlib arithmetic and pinned by unit tests;
// changing it would silently re-seed every manifest, so it must never
// drift.
func DeriveSeed(root uint64, labels ...string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		mix(byte(root >> (8 * i)))
	}
	for _, l := range labels {
		for i := 0; i < len(l); i++ {
			mix(l[i])
		}
		// Terminate each label so ("ab","c") and ("a","bc") derive
		// different streams.
		mix(0)
	}
	return h
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniformly distributed float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p. Values of p outside [0, 1]
// are clamped.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
// It is used to space synthetic-trace cache misses.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(u)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
