package alloc

import (
	"fmt"
	"testing"
)

// skipIdleGeometry returns a valid crossbar geometry for the kind
// (sparoflo requires the conventional crossbar; ideal requires per-VC
// rows).
func skipIdleGeometry(kind Kind) Config {
	cfg := Config{Ports: 5, VCs: 4, VirtualInputs: 2}
	switch kind {
	case KindSparoflo:
		cfg.VirtualInputs = 1
	case KindIdeal:
		cfg.VirtualInputs = cfg.VCs
	}
	return cfg
}

// skipIdleTraffic deterministically fills rs with a pseudo-random but
// valid request set (at most one request per input VC) using a tiny LCG,
// returning the advanced LCG state.
func skipIdleTraffic(rs *RequestSet, state uint64) uint64 {
	rs.Requests = rs.Requests[:0]
	for port := 0; port < rs.Config.Ports; port++ {
		for vc := 0; vc < rs.Config.VCs; vc++ {
			state = state*6364136223846793005 + 1442695040888963407
			if state>>62 == 0 { // ~25% of VCs request each busy cycle
				continue
			}
			rs.Requests = append(rs.Requests, Request{
				Port:    port,
				VC:      vc,
				OutPort: int((state >> 33) % uint64(rs.Config.Ports)),
				Age:     int((state >> 20) % 7),
			})
		}
	}
	return state
}

// TestSkipIdleMatchesEmptyAllocates pins the IdleSkipper contract for
// every built-in allocator: SkipIdle(k) must leave the allocator in the
// exact state k consecutive empty Allocate calls would. Two instances of
// each kind run the same request workload; one sits out idle spans as
// literal empty Allocates, the other fast-forwards with SkipIdle, and
// every grant sequence on the shared busy cycles must match.
func TestSkipIdleMatchesEmptyAllocates(t *testing.T) {
	// Spans cross every interesting boundary: single cycles, spans longer
	// than the wavefront diagonal period, spans longer than a bitset word.
	idleSpans := []int{1, 2, 3, 5, 7, 13, 64, 130, 1}
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			cfg := skipIdleGeometry(kind)
			dense := MustNew(kind, cfg)
			skip := MustNew(kind, cfg)
			skipper, ok := skip.(IdleSkipper)
			if !ok {
				t.Fatalf("%s does not implement IdleSkipper; every built-in allocator must", kind)
			}
			rsDense := &RequestSet{Config: cfg}
			rsSkip := &RequestSet{Config: cfg}
			empty := &RequestSet{Config: cfg}
			stateDense, stateSkip := uint64(1), uint64(1)
			for round, span := range idleSpans {
				// A few busy cycles with identical traffic on both copies.
				for busy := 0; busy < 4; busy++ {
					stateDense = skipIdleTraffic(rsDense, stateDense)
					stateSkip = skipIdleTraffic(rsSkip, stateSkip)
					gd := dense.Allocate(rsDense)
					gs := skip.Allocate(rsSkip)
					if fmt.Sprint(gd) != fmt.Sprint(gs) {
						t.Fatalf("round %d busy cycle %d: grants diverged after SkipIdle\n dense: %v\n skip:  %v",
							round, busy, gd, gs)
					}
				}
				// The idle span: literal empty Allocates vs one SkipIdle.
				for i := 0; i < span; i++ {
					if g := dense.Allocate(empty); len(g) != 0 {
						t.Fatalf("empty Allocate returned grants: %v", g)
					}
				}
				skipper.SkipIdle(span)
			}
		})
	}
}
