// Package routing implements the deterministic dimension-order routing of
// the paper's methodology for all three evaluated topologies, plus the
// lookahead helper that lets the three-stage pipeline overlap route
// computation with allocation.
//
// Dimension-order routing resolves the X dimension completely before the
// Y dimension. On the mesh and concentrated mesh that means hop-by-hop
// east/west then north/south; on the flattened butterfly a single direct
// hop per dimension. X-before-Y with one VC pool is deadlock-free on all
// three.
package routing

import (
	"fmt"

	"vix/internal/topology"
)

// Func computes the output port a packet destined to node dst must take
// at the given router.
type Func func(t *topology.Topology, router, dst int) int

// DOR returns the dimension-order routing function for t's kind.
func DOR(t *topology.Topology) Func {
	switch t.Kind {
	case topology.KindMesh, topology.KindCMesh:
		return meshDOR
	case topology.KindFBfly:
		return fbflyDOR
	default:
		panic(fmt.Sprintf("routing: no DOR for topology kind %q", t.Kind))
	}
}

// meshDOR routes X first, then Y, then ejects at the destination's local
// port.
func meshDOR(t *topology.Topology, router, dst int) int {
	dr := t.NodeRouter[dst]
	if dr == router {
		return t.LocalPort(dst)
	}
	x, y := t.RouterXY(router)
	dx, dy := t.RouterXY(dr)
	switch {
	case dx > x:
		return t.EastPort()
	case dx < x:
		return t.WestPort()
	case dy < y:
		return t.NorthPort()
	default:
		return t.SouthPort()
	}
}

// fbflyDOR takes one direct hop to the destination column, then one to
// the destination row, then ejects.
func fbflyDOR(t *topology.Topology, router, dst int) int {
	dr := t.NodeRouter[dst]
	if dr == router {
		return t.LocalPort(dst)
	}
	x, y := t.RouterXY(router)
	dx, dy := t.RouterXY(dr)
	if dx != x {
		return t.XPort(x, dx)
	}
	return t.YPort(y, dy)
}

// Hops returns the number of router-to-router hops a packet from src to
// dst traverses under route (not counting injection/ejection). It panics
// if the route does not converge within NumRouters steps, which would
// indicate a routing bug.
func Hops(t *topology.Topology, route Func, src, dst int) int {
	r := t.NodeRouter[src]
	hops := 0
	for r != t.NodeRouter[dst] {
		p := route(t, r, dst)
		c := t.Conn[r][p]
		if c.Kind != topology.Link {
			panic(fmt.Sprintf("routing: route from router %d to node %d chose non-link port %d", r, dst, p))
		}
		r = c.PeerRouter
		hops++
		if hops > t.NumRouters {
			panic("routing: route did not converge")
		}
	}
	return hops
}
