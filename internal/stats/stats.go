// Package stats collects the network-level metrics the paper reports:
// average packet latency (cycles), accepted throughput (flits or packets
// per cycle per node), and the per-source fairness ratio of Figure 9.
package stats

import (
	"math"
	"sort"
)

// Collector accumulates metrics over a measurement window. The usual
// protocol is warm up, Reset, measure, Snapshot.
type Collector struct {
	nodes int

	cycles          int64
	packetsInjected int64
	flitsInjected   int64
	packetsEjected  int64
	flitsEjected    int64

	latencySum   float64
	latencyCount int64
	latencyMax   int64
	latencies    []int64

	hopSum   int64
	hopCount int64

	perSrcFlits []int64

	// activity counters for the energy model
	bufferReads, bufferWrites int64
	xbarTraversals            int64
	linkTraversals            int64
}

// NewCollector returns a collector for a network with the given number of
// terminal nodes.
func NewCollector(nodes int) *Collector {
	return &Collector{nodes: nodes, perSrcFlits: make([]int64, nodes)}
}

// Reset clears all accumulated metrics (start of a measurement window).
// The latency and per-source backing arrays are retained so windowed
// protocols (warm up, Reset, measure) do not reallocate them.
func (c *Collector) Reset() {
	lat := c.latencies[:0]
	per := c.perSrcFlits
	for i := range per {
		per[i] = 0
	}
	*c = Collector{nodes: c.nodes, latencies: lat, perSrcFlits: per}
}

// Reserve grows the latency sample array's capacity to hold at least n
// samples without reallocating. Long measurement windows (benchmarks
// measuring allocation churn, in particular) call it after warmup with
// an estimate of the window's packet count, so that sample recording —
// measurement bookkeeping, not simulation state — does not dominate the
// byte counters it is there to read.
func (c *Collector) Reserve(n int) {
	if n <= cap(c.latencies) {
		return
	}
	grown := make([]int64, len(c.latencies), n)
	copy(grown, c.latencies)
	c.latencies = grown
}

// Tick advances the measured cycle count.
func (c *Collector) Tick() { c.cycles++ }

// PacketInjected records a packet of the given flit count entering the
// network.
func (c *Collector) PacketInjected(flits int) {
	c.packetsInjected++
	c.flitsInjected += int64(flits)
}

// FlitEjected records one flit leaving at its destination, attributed to
// its source for fairness accounting.
func (c *Collector) FlitEjected(src int) {
	c.flitsEjected++
	if src >= 0 && src < c.nodes {
		c.perSrcFlits[src]++
	}
}

// PacketEjected records a completed packet with its end-to-end latency
// (generation to tail ejection) and hop count.
func (c *Collector) PacketEjected(latency int64, hops int) {
	c.packetsEjected++
	c.latencySum += float64(latency)
	c.latencyCount++
	c.latencies = append(c.latencies, latency)
	if latency > c.latencyMax {
		c.latencyMax = latency
	}
	c.hopSum += int64(hops)
	c.hopCount++
}

// BufferRead, BufferWrite, XbarTraversal and LinkTraversal record datapath
// activity for the energy model.
func (c *Collector) BufferRead()    { c.bufferReads++ }
func (c *Collector) BufferWrite()   { c.bufferWrites++ }
func (c *Collector) XbarTraversal() { c.xbarTraversals++ }
func (c *Collector) LinkTraversal() { c.linkTraversals++ }

// Delta is a mergeable batch of activity counters. The parallel tick
// accumulates one Delta per router shard while routers tick concurrently
// and folds them into the collector on the stepping goroutine; integer
// addition is associative and commutative, so the merged totals are
// identical to the serial loop's for any worker count and any merge
// order. Order-sensitive metrics — the latency accumulation is a float
// sum, whose value depends on addition order — deliberately have no
// Delta fields: they are only ever updated on the stepping goroutine.
type Delta struct {
	BufferReads    int64
	BufferWrites   int64
	XbarTraversals int64
	LinkTraversals int64
}

// Merge folds a shard's activity delta into the collector.
func (c *Collector) Merge(d Delta) {
	c.bufferReads += d.BufferReads
	c.bufferWrites += d.BufferWrites
	c.xbarTraversals += d.XbarTraversals
	c.linkTraversals += d.LinkTraversals
}

// Snapshot is an immutable summary of a measurement window.
type Snapshot struct {
	Cycles int64
	Nodes  int

	PacketsInjected, PacketsEjected int64
	FlitsInjected, FlitsEjected     int64

	// AvgLatency is the mean packet latency in cycles from generation
	// (including source queueing) to tail ejection. P50/P90/P99Latency
	// are the corresponding percentiles of the same distribution.
	AvgLatency float64
	P50Latency int64
	P90Latency int64
	P99Latency int64
	MaxLatency int64
	AvgHops    float64

	// ThroughputFlits is accepted flits/cycle/node; ThroughputPackets is
	// accepted packets/cycle/node.
	ThroughputFlits   float64
	ThroughputPackets float64

	// FairnessRatio is max/min per-source accepted flit throughput
	// (Figure 9); sources that received nothing make it +Inf.
	FairnessRatio float64

	// Activity counters for the energy model.
	BufferReads, BufferWrites, XbarTraversals, LinkTraversals int64
}

// Snapshot summarises the current window.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		Cycles:          c.cycles,
		Nodes:           c.nodes,
		PacketsInjected: c.packetsInjected,
		PacketsEjected:  c.packetsEjected,
		FlitsInjected:   c.flitsInjected,
		FlitsEjected:    c.flitsEjected,
		MaxLatency:      c.latencyMax,
		BufferReads:     c.bufferReads,
		BufferWrites:    c.bufferWrites,
		XbarTraversals:  c.xbarTraversals,
		LinkTraversals:  c.linkTraversals,
	}
	if c.latencyCount > 0 {
		s.AvgLatency = c.latencySum / float64(c.latencyCount)
		sorted := append([]int64(nil), c.latencies...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.P50Latency = percentile(sorted, 50)
		s.P90Latency = percentile(sorted, 90)
		s.P99Latency = percentile(sorted, 99)
	}
	if c.hopCount > 0 {
		s.AvgHops = float64(c.hopSum) / float64(c.hopCount)
	}
	if c.cycles > 0 && c.nodes > 0 {
		denom := float64(c.cycles) * float64(c.nodes)
		s.ThroughputFlits = float64(c.flitsEjected) / denom
		s.ThroughputPackets = float64(c.packetsEjected) / denom
	}
	s.FairnessRatio = fairness(c.perSrcFlits)
	return s
}

// percentile returns the nearest-rank p-th percentile of sorted values.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}

// fairness returns max/min of the per-source counts; +Inf if any source
// was starved entirely while another progressed, and 1 when idle.
func fairness(counts []int64) float64 {
	if len(counts) == 0 {
		return 1
	}
	min, max := counts[0], counts[0]
	for _, v := range counts[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return 1
	}
	if min == 0 {
		return math.Inf(1)
	}
	return float64(max) / float64(min)
}
