package experiments

import (
	"math"
	"testing"
)

// quickParams shrinks simulation windows so the whole experiment suite
// stays fast while preserving qualitative shapes.
func quickParams() Params {
	p := DefaultParams()
	p.Warmup = 800
	p.Measure = 2500
	return p
}

func find7(rows []Fig7Row, radix int, scheme string) Fig7Row {
	for _, r := range rows {
		if r.Radix == radix && r.Scheme == scheme {
			return r
		}
	}
	panic("row not found")
}

func TestFigure7QualitativeShape(t *testing.T) {
	rows, err := Figure7(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("Figure7 produced %d rows, want 15", len(rows))
	}
	for _, radix := range []int{5, 8, 10} {
		ap := find7(rows, radix, "AP")
		vix := find7(rows, radix, "VIX")
		ideal := find7(rows, radix, "Ideal")
		if ap.GainOverIF < 1.30 {
			t.Errorf("radix %d: AP gain %.3f < 1.30", radix, ap.GainOverIF)
		}
		if vix.GainOverIF < 1.20 {
			t.Errorf("radix %d: VIX gain %.3f < 1.20", radix, vix.GainOverIF)
		}
		if ideal.Efficiency > 1 {
			t.Errorf("radix %d: ideal efficiency %.3f > 1", radix, ideal.Efficiency)
		}
	}
}

func TestFigure8QualitativeShape(t *testing.T) {
	p := quickParams()
	rows, err := Figure8(p, []float64{0.02, 0.06})
	if err != nil {
		t.Fatal(err)
	}
	sat := map[string]Fig8Point{}
	low := map[string]Fig8Point{}
	for _, pt := range rows {
		switch pt.Rate {
		case 0:
			sat[pt.Scheme] = pt
		case 0.02:
			low[pt.Scheme] = pt
		}
	}
	// Low-load latencies are nearly identical across schemes.
	for s, pt := range low {
		if math.Abs(pt.AvgLatency-low["IF"].AvgLatency) > 0.05*low["IF"].AvgLatency {
			t.Errorf("low-load latency of %s (%.2f) deviates from IF (%.2f)", s, pt.AvgLatency, low["IF"].AvgLatency)
		}
	}
	// At saturation VIX beats IF and AP in throughput.
	if sat["VIX"].Throughput < 1.08*sat["IF"].Throughput {
		t.Errorf("VIX saturation throughput %.4f not >=8%% over IF %.4f", sat["VIX"].Throughput, sat["IF"].Throughput)
	}
	if sat["VIX"].Throughput <= sat["AP"].Throughput {
		t.Errorf("VIX %.4f did not beat AP %.4f at network level", sat["VIX"].Throughput, sat["AP"].Throughput)
	}
	// And VIX has lower latency at saturation.
	if sat["VIX"].AvgLatency >= sat["IF"].AvgLatency {
		t.Errorf("VIX saturation latency %.1f not below IF %.1f", sat["VIX"].AvgLatency, sat["IF"].AvgLatency)
	}
}

func TestFigure9Fairness(t *testing.T) {
	rows, err := Figure9(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	ratio := map[string]float64{}
	for _, r := range rows {
		ratio[r.Scheme] = r.MaxMinRatio
	}
	// VIX achieves the best (lowest) max/min ratio of all schemes.
	for s, v := range ratio {
		if s == "VIX" {
			continue
		}
		if ratio["VIX"] > v {
			t.Errorf("VIX fairness %.2f worse than %s %.2f", ratio["VIX"], s, v)
		}
	}
	if math.IsInf(ratio["VIX"], 1) {
		t.Error("VIX starved a source entirely")
	}
}

func TestFigure10PacketChaining(t *testing.T) {
	rows, err := Figure10(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	gain := map[string]float64{}
	for _, r := range rows {
		gain[r.Scheme] = r.GainOverIF
	}
	if len(rows) != 5 {
		t.Fatalf("Figure10 has %d schemes, want 5", len(rows))
	}
	if gain["PC"] <= 1.0 {
		t.Errorf("PC gain %.3f not above IF", gain["PC"])
	}
	if gain["VIX"] <= gain["PC"] {
		t.Errorf("VIX gain %.3f not above PC gain %.3f (the Section 4.4 conclusion)", gain["VIX"], gain["PC"])
	}
}

func TestFigure11Energy(t *testing.T) {
	p := quickParams()
	rows, err := Figure11(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("Figure11 has %d rows, want 2", len(rows))
	}
	base, vix := rows[0].Breakdown, rows[1].Breakdown
	ratio := vix.Total / base.Total
	if ratio < 1.005 || ratio > 1.10 {
		t.Errorf("VIX energy overhead ratio %.4f outside (1.005, 1.10); paper ~1.04", ratio)
	}
	if vix.Switch <= base.Switch {
		t.Error("switch energy did not grow with VIX")
	}
}

func TestFigure12VirtualInputs(t *testing.T) {
	p := quickParams()
	p.Warmup = 500
	p.Measure = 1500
	rows, err := Figure12(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 { // 3 topologies x 2 VC counts x 3 configs
		t.Fatalf("Figure12 has %d rows, want 18", len(rows))
	}
	get := func(topo string, vcs int, cfg string) float64 {
		for _, r := range rows {
			if r.Topology == topo && r.VCs == vcs && r.Config == cfg {
				return r.Throughput
			}
		}
		t.Fatalf("missing row %s/%d/%s", topo, vcs, cfg)
		return 0
	}
	for _, topo := range []string{"mesh8x8", "cmesh4x4c4", "fbfly4x4c4"} {
		for _, vcs := range []int{4, 6} {
			no := get(topo, vcs, "no VIX")
			vix := get(topo, vcs, "1:2 VIX")
			if vix < 1.05*no {
				t.Errorf("%s %dVC: 1:2 VIX %.4f not >=5%% over no VIX %.4f", topo, vcs, vix, no)
			}
		}
	}
	// Buffer-reduction claim: 4 VCs with VIX beats 6 VCs without, on the
	// mesh, by a clear margin.
	if v4, n6 := get("mesh8x8", 4, "1:2 VIX"), get("mesh8x8", 6, "no VIX"); v4 < 1.05*n6 {
		t.Errorf("mesh: 4VC VIX %.4f not >=5%% over 6VC baseline %.4f", v4, n6)
	}
}

func TestParamsScaled(t *testing.T) {
	p := DefaultParams()
	q := p.Scaled(0.5)
	if q.Warmup != p.Warmup/2 || q.Measure != p.Measure/2 {
		t.Fatalf("Scaled(0.5) gave %+v", q)
	}
	tiny := p.Scaled(0.0001)
	if tiny.Warmup < 100 || tiny.Measure < 200 {
		t.Fatalf("Scaled floor violated: %+v", tiny)
	}
}

func TestTablesReexported(t *testing.T) {
	if len(Table1()) != 6 {
		t.Error("Table1 rows != 6")
	}
	if len(Table3()) != 3 {
		t.Error("Table3 rows != 3")
	}
}

func TestNetworkSchemes(t *testing.T) {
	s := NetworkSchemes()
	if len(s) != 4 {
		t.Fatalf("schemes = %d, want 4", len(s))
	}
	if s[3].Label != "VIX" || s[3].K != 2 {
		t.Fatalf("VIX scheme misconfigured: %+v", s[3])
	}
}
