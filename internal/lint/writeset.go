package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"vix/internal/sim"
)

// This file implements the write-effect analysis behind the
// parallel/sharedwrite and parallel/phase rules (shardown.go): for every
// module function it computes the set of memory locations outside the
// function's own frame that the function may write or read — receiver
// and parameter fields reached through pointers, package globals,
// variables captured by closures, and channel sends — and propagates
// those sets over the call graph, through the same direct, interface
// (CHA) and func-value dispatch resolveEdges uses.
//
// An effect is a (root, path) pair: the root names whose memory is
// touched (the receiver, the i-th parameter, a package-level variable,
// or a captured outer variable) and the path is a bounded chain of field
// selections and index steps, e.g. ".shards[].ems". Mapping an effect
// across a call edge rewrites the callee's root through the call's
// actual receiver/argument expressions; when the actual cannot be
// resolved to a root (an unresolvable local, a call result, or a
// receiver-less indirect call) the effect is dropped rather than
// over-approximated — the pass exists to prove shard code touches only
// owned state, and an effect it cannot name is an effect it also could
// not check against the ownership roots. Two deliberate consequences:
//
//   - sim.Pool's internal dispatch (`p.fn(i)`) does not fold job effects
//     into Pool.Do's callers, which is what lets parallel/phase compare
//     a job's reads against only the caller's own phase-B writes; and
//   - writes that stay behind an unresolvable local (for example a flit
//     pointer pulled out of a buffer) are invisible. The ownership model
//     in DESIGN.md section 13 spells out why that is acceptable.
//
// Frame-local writes never produce effects: writing a field of a value
// (non-pointer) receiver or a struct copy mutates the frame, not shared
// state, so a write only counts when the chain from the root to the
// written location passes through pointer, slice, map or channel memory.
// Local variables that provably alias rooted state (`s := &n.shards[si]`)
// are followed via a per-function derivation map; a local with
// conflicting or unresolvable reference sources is conservatively
// treated as unknown.

// rootKind classifies what an effect's root refers to.
type rootKind uint8

const (
	rootRecv     rootKind = iota // the enclosing method's receiver
	rootParam                    // the i-th parameter
	rootGlobal                   // a package-level variable
	rootCaptured                 // a variable captured from the enclosing function
)

// maxEffectSegs bounds effect paths so interprocedural composition over
// recursive structures terminates with a finite key space.
const maxEffectSegs = 5

// effect is one write or read a function may perform on state outside
// its own frame, with provenance for rendering the call path to the
// originating site.
type effect struct {
	kind  rootKind
	obj   types.Object // rootGlobal / rootCaptured: the variable
	param int          // rootParam: parameter index
	segs  []string     // ".field", "[]" and "<-" steps from the root

	site   token.Pos   // the direct site the effect originates from
	siteFn *types.Func // function containing the direct site
	what   string      // e.g. `assignment to n.cycle`

	// next / calleeKey walk towards the site: the effect entered this
	// function's summary through a call to next, where it is recorded
	// under calleeKey. nil next means the site is in this function.
	next      *types.Func
	calleeKey string
	dist      int
}

// key canonically identifies the effect's location within one summary.
func (e *effect) key() string {
	path := strings.Join(e.segs, "")
	switch e.kind {
	case rootRecv:
		return "recv|" + path
	case rootParam:
		return "param" + strconv.Itoa(e.param) + "|" + path
	case rootGlobal:
		return "global|" + e.obj.Pkg().Path() + "." + e.obj.Name() + "|" + path
	default:
		return "captured|" + e.obj.Name() + "@" + strconv.Itoa(int(e.obj.Pos())) + "|" + path
	}
}

// localWrite records a direct write to a plain local (no rooted alias);
// the phase rule consults these for overlap with variables a job
// literal captures.
type localWrite struct {
	v   *types.Var
	pos token.Pos
}

// funcEffects is one function's effect summary.
type funcEffects struct {
	writes map[string]*effect
	reads  map[string]*effect
	// localWrites keeps first write sites in source order (a slice, not
	// a map, so iteration is deterministic); localSeen dedupes.
	localWrites []localWrite
	localSeen   map[*types.Var]bool
}

func newFuncEffects() *funcEffects {
	return &funcEffects{
		writes:    make(map[string]*effect),
		reads:     make(map[string]*effect),
		localSeen: make(map[*types.Var]bool),
	}
}

// add inserts e into m if its key is new, reporting growth.
func (fx *funcEffects) add(m map[string]*effect, e *effect) bool {
	k := e.key()
	if _, ok := m[k]; ok {
		return false
	}
	m[k] = e
	return true
}

// derivation records that a local variable aliases rooted memory.
type derivation struct {
	kind  rootKind
	obj   types.Object
	param int
	segs  []string
}

// effectScope is the per-function context chain resolution runs in. For
// a pool-job literal, lit is set and variables declared in the enclosing
// declaration (but outside the literal) classify as rootCaptured.
type effectScope struct {
	pkg     *Package
	fn      *types.Func
	recvVar *types.Var
	params  map[*types.Var]int
	derived map[*types.Var]*derivation
	// localLits maps local variables bound to exactly one function
	// literal in this declaration; calls through them are inlined when
	// collecting a job literal's summary (the harness `fail` idiom).
	localLits map[*types.Var]*ast.FuncLit
	lit       *ast.FuncLit
}

// chainRef is the outcome of resolving an expression chain to a root.
type chainRef struct {
	kind   rootKind
	obj    types.Object
	param  int
	segs   []string
	hasRef bool // chain passes through pointer/slice/map/chan memory
	// baseObj is the plain local the chain bottomed out at when
	// resolution failed; the phase rule uses it for captured-variable
	// overlap.
	baseObj *types.Var
}

// isRefType reports whether values of t share memory when copied.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// exprIsRef reports whether e's static type is reference-like.
func (sc *effectScope) exprIsRef(e ast.Expr) bool {
	tv, ok := sc.pkg.Info.Types[e]
	return ok && isRefType(tv.Type)
}

// resolveChain unwraps a selector/index/deref chain to its root. Path
// segments come back root-outwards, capped at maxEffectSegs.
func (sc *effectScope) resolveChain(e ast.Expr) (chainRef, bool) {
	var ref chainRef
	var rev []string // collected outside-in
	cur := e
	for steps := 0; steps < 32; steps++ {
		cur = stripParens(cur)
		switch x := cur.(type) {
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := sc.pkg.Info.Uses[id].(*types.PkgName); isPkg {
					// Qualified reference to another package's global.
					v, ok := sc.pkg.Info.Uses[x.Sel].(*types.Var)
					if !ok {
						return ref, false
					}
					ref.kind, ref.obj, ref.hasRef = rootGlobal, v, true
					ref.segs = capSegs(reverseSegs(rev))
					return ref, true
				}
			}
			rev = append(rev, "."+x.Sel.Name)
			if sc.exprIsRef(x.X) {
				ref.hasRef = true
			}
			cur = x.X
		case *ast.IndexExpr:
			rev = append(rev, "[]")
			if sc.exprIsRef(x.X) {
				ref.hasRef = true
			}
			cur = x.X
		case *ast.StarExpr:
			ref.hasRef = true
			cur = x.X
		case *ast.Ident:
			return sc.classifyBase(x, rev, ref)
		default:
			return ref, false
		}
	}
	return ref, false
}

// classifyBase resolves the base identifier of a chain to a root kind.
func (sc *effectScope) classifyBase(id *ast.Ident, rev []string, ref chainRef) (chainRef, bool) {
	obj, _ := sc.pkg.Info.Uses[id].(*types.Var)
	if obj == nil {
		obj, _ = sc.pkg.Info.Defs[id].(*types.Var)
	}
	if obj == nil || obj.IsField() {
		return ref, false
	}
	if d := sc.derived[obj]; d != nil {
		ref.kind, ref.obj, ref.param = d.kind, d.obj, d.param
		ref.segs = capSegs(append(append([]string(nil), d.segs...), reverseSegs(rev)...))
		ref.hasRef = true // derivations only exist for reference sources
		return ref, true
	}
	if isRefType(obj.Type()) {
		ref.hasRef = true
	}
	ref.segs = capSegs(reverseSegs(rev))
	switch {
	case sc.recvVar != nil && obj == sc.recvVar:
		ref.kind = rootRecv
	default:
		if i, ok := sc.params[obj]; ok {
			ref.kind, ref.param = rootParam, i
			break
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			ref.kind, ref.obj, ref.hasRef = rootGlobal, obj, true
			break
		}
		if sc.lit != nil && (obj.Pos() < sc.lit.Pos() || obj.Pos() > sc.lit.End()) {
			// Declared in the enclosing function: the literal captures
			// it by reference, so even scalar accesses are shared.
			ref.kind, ref.obj, ref.hasRef = rootCaptured, obj, true
			break
		}
		ref.baseObj = obj
		return ref, false
	}
	return ref, true
}

func reverseSegs(rev []string) []string {
	out := make([]string, len(rev))
	for i, s := range rev {
		out[len(rev)-1-i] = s
	}
	return out
}

func capSegs(segs []string) []string {
	if len(segs) > maxEffectSegs {
		return segs[:maxEffectSegs]
	}
	return segs
}

// callSiteInfo is one resolved call expression inside a function body.
type callSiteInfo struct {
	call *ast.CallExpr
	rc   resolvedCall
}

// writeAnalysis is the module-wide effect state, frozen after
// computeWriteEffects returns.
type writeAnalysis struct {
	mod    *Module
	g      *callGraph
	sums   map[*types.Func]*funcEffects
	scopes map[*types.Func]*effectScope
	sites  map[*types.Func][]callSiteInfo
}

// computeWriteEffects builds direct per-function summaries and runs the
// interprocedural fixpoint. Iteration follows g.funcs and sorted effect
// keys throughout, so the result is deterministic.
func computeWriteEffects(mod *Module, g *callGraph) *writeAnalysis {
	w := &writeAnalysis{
		mod:    mod,
		g:      g,
		sums:   make(map[*types.Func]*funcEffects),
		scopes: make(map[*types.Func]*effectScope),
		sites:  make(map[*types.Func][]callSiteInfo),
	}
	for _, fn := range g.funcs {
		node := g.nodes[fn]
		sc := w.declScope(node)
		fx := newFuncEffects()
		w.collectDirect(sc, node.decl.Body, fx)
		w.sums[fn] = fx
		w.scopes[fn] = sc
		w.sites[fn] = w.collectSites(node.pkg, node.decl.Body)
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.funcs {
			if w.flowInto(fn, w.sums[fn], w.scopes[fn], w.sites[fn]) {
				changed = true
			}
		}
	}
	return w
}

// flowInto maps every callee summary through fn's call sites into fx,
// reporting whether fx grew.
func (w *writeAnalysis) flowInto(fn *types.Func, fx *funcEffects, sc *effectScope, sites []callSiteInfo) bool {
	grew := false
	for _, cs := range sites {
		for _, callee := range cs.rc.targets {
			if callee == fn {
				continue
			}
			cfx := w.sums[callee]
			if cfx == nil {
				continue
			}
			for _, k := range sim.SortedKeys(cfx.writes) {
				if m := w.mapEffect(sc, cs, callee, cfx.writes[k]); m != nil && fx.add(fx.writes, m) {
					grew = true
				}
			}
			for _, k := range sim.SortedKeys(cfx.reads) {
				if m := w.mapEffect(sc, cs, callee, cfx.reads[k]); m != nil && fx.add(fx.reads, m) {
					grew = true
				}
			}
		}
	}
	return grew
}

// mapEffect rewrites callee effect ce into the caller's frame at call
// site cs, or returns nil when the effect cannot be named there.
func (w *writeAnalysis) mapEffect(sc *effectScope, cs callSiteInfo, callee *types.Func, ce *effect) *effect {
	out := &effect{
		site: ce.site, siteFn: ce.siteFn, what: ce.what,
		next: callee, calleeKey: ce.key(), dist: ce.dist + 1,
	}
	switch ce.kind {
	case rootGlobal, rootCaptured:
		out.kind, out.obj, out.segs = ce.kind, ce.obj, ce.segs
		return out
	case rootRecv:
		if cs.rc.recv == nil {
			return nil
		}
		ref, ok := sc.resolveChain(cs.rc.recv)
		if !ok {
			return nil
		}
		out.kind, out.obj, out.param = ref.kind, ref.obj, ref.param
		out.segs = capSegs(append(append([]string(nil), ref.segs...), ce.segs...))
		return out
	default: // rootParam
		sig, _ := callee.Type().(*types.Signature)
		if sig == nil || ce.param >= len(cs.call.Args) {
			return nil
		}
		if sig.Variadic() && ce.param >= sig.Params().Len()-1 {
			return nil
		}
		ref, ok := sc.resolveChain(cs.call.Args[ce.param])
		if !ok {
			return nil
		}
		out.kind, out.obj, out.param = ref.kind, ref.obj, ref.param
		out.segs = capSegs(append(append([]string(nil), ref.segs...), ce.segs...))
		return out
	}
}

// collectSites records every call expression under body with its
// resolved targets, in source order.
func (w *writeAnalysis) collectSites(pkg *Package, body ast.Node) []callSiteInfo {
	var out []callSiteInfo
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			rc := w.g.resolveCallSite(pkg, call)
			if len(rc.targets) > 0 {
				out = append(out, callSiteInfo{call: call, rc: rc})
			}
		}
		return true
	})
	return out
}

// declScope builds the resolution context for one declaration: receiver
// and parameter objects, the local-literal bindings, and the fixpointed
// alias derivations.
func (w *writeAnalysis) declScope(node *cgNode) *effectScope {
	sc := &effectScope{
		pkg:       node.pkg,
		fn:        node.fn,
		params:    make(map[*types.Var]int),
		derived:   make(map[*types.Var]*derivation),
		localLits: make(map[*types.Var]*ast.FuncLit),
	}
	sig := node.fn.Type().(*types.Signature)
	if r := sig.Recv(); r != nil {
		sc.recvVar = r
		// The body's uses resolve to the declared receiver object, which
		// for methods is found through the declaration's receiver field.
		if fl := node.decl.Recv; fl != nil && len(fl.List) == 1 && len(fl.List[0].Names) == 1 {
			if v, ok := node.pkg.Info.Defs[fl.List[0].Names[0]].(*types.Var); ok {
				sc.recvVar = v
			}
		}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		sc.params[sig.Params().At(i)] = i
	}
	if fl := node.decl.Type.Params; fl != nil {
		i := 0
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := node.pkg.Info.Defs[name].(*types.Var); ok {
					sc.params[v] = i
				}
				i++
			}
			if len(f.Names) == 0 {
				i++
			}
		}
	}
	w.buildDerivations(sc, node.decl.Body)
	return sc
}

// derivSource is one reference-typed value assigned to a local.
type derivSource struct {
	expr    ast.Expr
	indexed bool // range-over source: derive through an extra "[]" step
}

// buildDerivations computes sc.derived and sc.localLits from the
// declaration body. A local earns a derivation when every reference-
// typed value ever assigned to it resolves to the same root and path;
// fresh allocations (make, new, composite literals and their addresses)
// and non-reference copies are neutral, and any unresolvable reference
// source (a call result, an unknown alias) poisons the variable.
func (w *writeAnalysis) buildDerivations(sc *effectScope, body ast.Node) {
	cands := make(map[*types.Var][]derivSource)
	poison := make(map[*types.Var]bool)
	var order []*types.Var
	record := func(id *ast.Ident, src derivSource, fresh bool) {
		v, ok := varOf(sc.pkg, id)
		if !ok {
			return
		}
		if _, isParam := sc.params[v]; isParam || v == sc.recvVar {
			return
		}
		if fresh {
			return
		}
		if _, seen := cands[v]; !seen && !poison[v] {
			order = append(order, v)
		}
		cands[v] = append(cands[v], src)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				// Tuple from a call: reference-typed results are unknown
				// aliases.
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						if v, ok2 := varOf(sc.pkg, id); ok2 && sc.exprIsRef(id) {
							poison[v] = true
						}
					}
				}
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				rhs := stripParens(st.Rhs[i])
				if lit, isLit := rhs.(*ast.FuncLit); isLit {
					if v, ok2 := varOf(sc.pkg, id); ok2 {
						if _, dup := sc.localLits[v]; dup {
							delete(sc.localLits, v)
						} else {
							sc.localLits[v] = lit
						}
					}
					continue
				}
				if !sc.exprIsRef(rhs) {
					continue
				}
				switch w.sourceKind(sc, rhs) {
				case srcFresh:
					// neutral
				case srcChain:
					record(id, derivSource{expr: rhs}, false)
				default:
					if v, ok2 := varOf(sc.pkg, id); ok2 {
						poison[v] = true
					}
				}
			}
		case *ast.RangeStmt:
			if st.Value == nil {
				return true
			}
			id, ok := st.Value.(*ast.Ident)
			if !ok || id.Name == "_" || !sc.exprIsRef(id) {
				return true
			}
			record(id, derivSource{expr: st.X, indexed: true}, false)
		}
		return true
	})
	// Fixpoint: a derivation may depend on another derived local.
	for pass := 0; pass < 8; pass++ {
		changed := false
		for _, v := range order {
			if poison[v] || sc.derived[v] != nil {
				continue
			}
			var d *derivation
			ok := true
			for _, src := range cands[v] {
				ref, resolved := sc.resolveDerivSource(src)
				if !resolved {
					ok = false
					break
				}
				cur := &derivation{kind: ref.kind, obj: ref.obj, param: ref.param, segs: ref.segs}
				if d == nil {
					d = cur
				} else if !sameDerivation(d, cur) {
					ok = false
					break
				}
			}
			if ok && d != nil {
				sc.derived[v] = d
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// varOf resolves id to its variable object.
func varOf(pkg *Package, id *ast.Ident) (*types.Var, bool) {
	if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
		return v, true
	}
	v, ok := pkg.Info.Uses[id].(*types.Var)
	return v, ok
}

type srcClass uint8

const (
	srcFresh srcClass = iota // make/new/composite literal: fresh memory
	srcChain                 // a resolvable-looking chain or its address
	srcOther                 // call result or other unknown alias
)

// sourceKind classifies a reference-typed RHS for derivation purposes.
func (w *writeAnalysis) sourceKind(sc *effectScope, rhs ast.Expr) srcClass {
	switch x := rhs.(type) {
	case *ast.UnaryExpr:
		if x.Op != token.AND {
			return srcOther
		}
		if _, isComposite := stripParens(x.X).(*ast.CompositeLit); isComposite {
			return srcFresh
		}
		return srcChain
	case *ast.CompositeLit:
		return srcFresh
	case *ast.CallExpr:
		if id, ok := stripParens(x.Fun).(*ast.Ident); ok {
			if b, ok := sc.pkg.Info.Uses[id].(*types.Builtin); ok && (b.Name() == "make" || b.Name() == "new") {
				return srcFresh
			}
		}
		return srcOther
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.Ident, *ast.StarExpr:
		return srcChain
	}
	return srcOther
}

// resolveDerivSource resolves one derivation source to its root.
func (sc *effectScope) resolveDerivSource(src derivSource) (chainRef, bool) {
	e := stripParens(src.expr)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X
	}
	ref, ok := sc.resolveChain(e)
	if !ok {
		return ref, false
	}
	if src.indexed {
		ref.segs = capSegs(append(append([]string(nil), ref.segs...), "[]"))
	}
	return ref, true
}

func sameDerivation(a, b *derivation) bool {
	return a.kind == b.kind && a.obj == b.obj && a.param == b.param &&
		strings.Join(a.segs, "") == strings.Join(b.segs, "")
}

// collectDirect walks body recording fx's direct effects under scope sc.
func (w *writeAnalysis) collectDirect(sc *effectScope, body ast.Node, fx *funcEffects) {
	writeExprs := make(map[ast.Expr]bool)
	addWrite := func(target ast.Expr, extraSeg, what string) {
		writeExprs[stripParens(target)] = true
		ref, ok := sc.resolveChain(target)
		if !ok {
			if ref.baseObj != nil && !fx.localSeen[ref.baseObj] {
				fx.localSeen[ref.baseObj] = true
				fx.localWrites = append(fx.localWrites, localWrite{v: ref.baseObj, pos: target.Pos()})
			}
			return
		}
		segs := ref.segs
		if extraSeg != "" {
			segs = capSegs(append(append([]string(nil), segs...), extraSeg))
		}
		if ref.kind == rootRecv || ref.kind == rootParam {
			if !ref.hasRef {
				return // mutates a frame-local copy
			}
		}
		fx.add(fx.writes, &effect{
			kind: ref.kind, obj: ref.obj, param: ref.param, segs: segs,
			site: target.Pos(), siteFn: sc.fn,
			what: what + " " + types.ExprString(target),
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				addWrite(lhs, "", "assignment to")
			}
		case *ast.IncDecStmt:
			addWrite(st.X, "", "update of")
		case *ast.SendStmt:
			addWrite(st.Chan, "<-", "channel send on")
		case *ast.CallExpr:
			if id, ok := stripParens(st.Fun).(*ast.Ident); ok {
				if b, ok := sc.pkg.Info.Uses[id].(*types.Builtin); ok && len(st.Args) > 0 {
					switch b.Name() {
					case "copy":
						addWrite(st.Args[0], "[]", "copy into")
					case "clear":
						addWrite(st.Args[0], "", "clear of")
					case "delete":
						addWrite(st.Args[0], "[]", "delete from")
					}
				}
			}
		case *ast.SelectorExpr:
			if sel, ok := sc.pkg.Info.Selections[st]; ok && sel.Kind() == types.MethodVal {
				// Method selections are dispatch, not data paths; the
				// receiver chain is read when its subtree is visited.
				return true
			}
			w.addRead(sc, fx, st, writeExprs)
		case *ast.Ident, *ast.IndexExpr:
			w.addRead(sc, fx, n.(ast.Expr), writeExprs)
		}
		return true
	})
}

// addRead records e as a read effect when it resolves to a root and is
// not itself a write target.
func (w *writeAnalysis) addRead(sc *effectScope, fx *funcEffects, e ast.Expr, writeExprs map[ast.Expr]bool) {
	if writeExprs[e] {
		return
	}
	ref, ok := sc.resolveChain(e)
	if !ok {
		return
	}
	if ref.kind == rootRecv && len(ref.segs) == 0 {
		// A bare receiver mention is dispatch plumbing, not a data read;
		// real reads surface as longer chains or mapped callee effects.
		return
	}
	fx.add(fx.reads, &effect{
		kind: ref.kind, obj: ref.obj, param: ref.param, segs: ref.segs,
		site: e.Pos(), siteFn: sc.fn,
		what: "read of " + types.ExprString(e),
	})
}

// litScope derives a job-literal scope from the enclosing declaration's.
func litScope(base *effectScope, lit *ast.FuncLit) *effectScope {
	sc := *base
	sc.lit = lit
	return &sc
}

// litEffects computes the summary of a pool-job function literal:
// direct effects of the literal body (plus any sibling literals it
// calls, like the harness's fail closure), then one mapping pass over
// its call sites against the finished module summaries.
func (w *writeAnalysis) litEffects(fn *types.Func, lit *ast.FuncLit) *funcEffects {
	base := w.scopes[fn]
	if base == nil {
		return newFuncEffects()
	}
	sc := litScope(base, lit)
	fx := newFuncEffects()
	bodies := w.expandLitBodies(sc, lit)
	var sites []callSiteInfo
	for _, b := range bodies {
		w.collectDirect(sc, b, fx)
		sites = append(sites, w.collectSites(sc.pkg, b)...)
	}
	// Callee summaries are already fixpointed; the literal feeds nobody,
	// so one pass converges (repeated until stable for safety: a mapped
	// effect never enables further mapping here, but it is cheap).
	w.flowInto(fn, fx, sc, sites)
	return fx
}

// expandLitBodies returns lit's body plus the bodies of enclosing-
// function literals it (transitively) calls through single-assignment
// local bindings.
func (w *writeAnalysis) expandLitBodies(sc *effectScope, lit *ast.FuncLit) []ast.Node {
	seen := map[*ast.FuncLit]bool{lit: true}
	bodies := []ast.Node{lit.Body}
	for i := 0; i < len(bodies); i++ {
		ast.Inspect(bodies[i], func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := stripParens(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := varOf(sc.pkg, id)
			if !ok {
				return true
			}
			if sib := sc.localLits[v]; sib != nil && !seen[sib] {
				seen[sib] = true
				bodies = append(bodies, sib.Body)
			}
			return true
		})
	}
	return bodies
}

// recvDisplay renders fn's receiver type for effect display, e.g.
// "(*Network)"; empty for non-methods.
func recvDisplay(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	r := sig.Recv()
	if r == nil {
		return ""
	}
	t := r.Type()
	ptr := ""
	if p, ok := t.(*types.Pointer); ok {
		t, ptr = p.Elem(), "*"
	}
	name := "?"
	if named, ok := t.(*types.Named); ok {
		name = named.Obj().Name()
	}
	return "(" + ptr + name + ")"
}

// effectDisplay renders e as seen from job function fn, in the form the
// ownership roots match against: "(*Network).shards[].ems",
// "captured results[]", "global network.Debug", "param 0 .field".
func effectDisplay(fn *types.Func, e *effect) string {
	path := strings.Join(e.segs, "")
	switch e.kind {
	case rootRecv:
		return recvDisplay(fn) + path
	case rootParam:
		return "param " + strconv.Itoa(e.param) + path
	case rootGlobal:
		pkg := ""
		if e.obj.Pkg() != nil {
			pkg = e.obj.Pkg().Name() + "."
		}
		return "global " + pkg + e.obj.Name() + path
	default:
		return "captured " + e.obj.Name() + path
	}
}

// renderEffectPath renders the call chain from fn to e's direct site,
// e.g. "network.(*Network).runShard -> router.(*Router).Tick".
func (w *writeAnalysis) renderEffectPath(fn *types.Func, fx *funcEffects, e *effect, head string, writes bool) string {
	parts := []string{head}
	cur := e
	for cur != nil && cur.next != nil {
		parts = append(parts, funcDisplay(cur.next))
		nfx := w.sums[cur.next]
		if nfx == nil {
			break
		}
		if writes {
			cur = nfx.writes[cur.calleeKey]
		} else {
			cur = nfx.reads[cur.calleeKey]
		}
	}
	return strings.Join(parts, " -> ")
}
