// Package alloc implements switch allocators for virtual-channel NoC
// routers, including the paper's Virtual Input Crossbar (VIX) technique.
//
// A switch allocator matches requesting input virtual channels to output
// ports each cycle. The crossbar geometry is captured by Config: a router
// with P ports and k virtual inputs per port has a kP x P crossbar. The
// v VCs of each input port are partitioned into k contiguous sub-groups,
// each feeding one crossbar row (virtual input). With k = 1 this is the
// conventional P x P crossbar; k = 2 is the paper's practical VIX
// configuration; k = v is the ideal VIX where every VC has its own
// crossbar input.
//
// Every allocator must produce a conflict-free grant set:
//
//   - at most one grant per crossbar row (virtual input), and
//   - at most one grant per output port, and
//   - every grant corresponds to an offered request.
//
// Validate checks these invariants and is exercised by property tests.
package alloc

import (
	"errors"
	"fmt"
	"strings"
)

// Partition selects how a port's VCs are divided among its virtual
// inputs.
type Partition uint8

// VC partition schemes.
const (
	// Contiguous assigns VCs to sub-groups in blocks: with v = 6, k = 2,
	// VCs 0-2 feed virtual input 0 and VCs 3-5 feed virtual input 1.
	// This matches the paper's Figure 2 (a multiplexer over v/2 adjacent
	// VCs) and is the default.
	Contiguous Partition = iota
	// Interleaved assigns VCs round-robin: VC i feeds virtual input
	// i mod k. An ablation alternative with different wiring locality.
	Interleaved
)

// Config describes the crossbar geometry an allocator serves.
type Config struct {
	// Ports is the router radix P: the number of physical input ports,
	// which equals the number of output ports.
	Ports int
	// VCs is the number of virtual channels per input port.
	VCs int
	// VirtualInputs is the number of crossbar inputs per physical input
	// port (k). 1 models the conventional crossbar, 2 the paper's VIX,
	// and VCs the ideal VIX.
	VirtualInputs int
	// Partition selects the VC-to-sub-group mapping (default Contiguous,
	// the paper's scheme).
	Partition Partition
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Ports <= 0:
		return errors.New("alloc: Ports must be positive")
	case c.VCs <= 0:
		return errors.New("alloc: VCs must be positive")
	case c.VirtualInputs <= 0:
		return errors.New("alloc: VirtualInputs must be positive")
	case c.VirtualInputs > c.VCs:
		return fmt.Errorf("alloc: VirtualInputs (%d) exceeds VCs (%d)", c.VirtualInputs, c.VCs)
	}
	return nil
}

// mustValidate panics when cfg is invalid. Allocator constructors call it
// so that an impossible crossbar geometry fails loudly at construction
// time rather than corrupting an allocation later.
func mustValidate(cfg Config) {
	if err := cfg.Validate(); err != nil {
		panic("alloc: invalid config: " + strings.TrimPrefix(err.Error(), "alloc: "))
	}
}

// Rows returns the number of crossbar inputs (kP).
func (c Config) Rows() int { return c.Ports * c.VirtualInputs }

// GroupSize returns the number of VCs feeding one virtual input. The last
// sub-group of a port may be smaller when VCs is not divisible by
// VirtualInputs.
func (c Config) GroupSize() int {
	return (c.VCs + c.VirtualInputs - 1) / c.VirtualInputs
}

// Subgroup returns the virtual-input sub-group index of vc within its
// port, per the configured Partition.
func (c Config) Subgroup(vc int) int {
	if c.Partition == Interleaved {
		return vc % c.VirtualInputs
	}
	g := vc / c.GroupSize()
	if g >= c.VirtualInputs {
		g = c.VirtualInputs - 1
	}
	return g
}

// Row returns the crossbar row (virtual input index) that carries traffic
// from the given port and VC.
func (c Config) Row(port, vc int) int {
	return port*c.VirtualInputs + c.Subgroup(vc)
}

// Slot returns the index of vc within its sub-group, i.e. the input-arbiter
// request line it drives.
func (c Config) Slot(vc int) int {
	if c.Partition == Interleaved {
		return vc / c.VirtualInputs
	}
	return vc - c.Subgroup(vc)*c.GroupSize()
}

// Request is one input VC asking for one output port this cycle. A VC
// offers at most one request per cycle (its head flit has a single route).
type Request struct {
	Port    int // input port
	VC      int // virtual channel within the port
	OutPort int // requested output port
	// Age is how many cycles the requesting flit has waited at the front
	// of its buffer. Only age-aware allocators (KindSeparableAge) consult
	// it; zero is always safe.
	Age int
}

// Grant records that the flit at (Port, VC) may traverse the crossbar to
// OutPort this cycle via crossbar row Row.
type Grant struct {
	Port    int
	VC      int
	OutPort int
	Row     int
}

// RequestSet is the per-cycle input to an allocator.
type RequestSet struct {
	Config   Config
	Requests []Request
}

// Allocator matches requests to crossbar resources for one cycle.
// Allocators are stateful (arbiter priorities, chaining history) and are
// not safe for concurrent use; each router owns its own instance.
type Allocator interface {
	// Name returns a short identifier such as "if" or "wavefront".
	Name() string
	// Allocate returns a conflict-free grant set for the request set.
	Allocate(rs *RequestSet) []Grant
	// Reset restores initial arbiter state and clears history.
	Reset()
}

// Validate checks that grants form a legal allocation for rs: every grant
// matches an offered request, no crossbar row is granted twice, and no
// output port is granted twice. It returns nil for a legal allocation.
func Validate(rs *RequestSet, grants []Grant) error {
	offered := make(map[[3]int]bool, len(rs.Requests))
	for _, r := range rs.Requests {
		offered[[3]int{r.Port, r.VC, r.OutPort}] = true
	}
	rowUsed := make(map[int]bool)
	outUsed := make(map[int]bool)
	vcUsed := make(map[[2]int]bool)
	for _, g := range grants {
		if !offered[[3]int{g.Port, g.VC, g.OutPort}] {
			return fmt.Errorf("alloc: grant %+v has no matching request", g)
		}
		if want := rs.Config.Row(g.Port, g.VC); g.Row != want {
			return fmt.Errorf("alloc: grant %+v has row %d, want %d", g, g.Row, want)
		}
		if rowUsed[g.Row] {
			return fmt.Errorf("alloc: crossbar row %d granted twice", g.Row)
		}
		if outUsed[g.OutPort] {
			return fmt.Errorf("alloc: output port %d granted twice", g.OutPort)
		}
		if vcUsed[[2]int{g.Port, g.VC}] {
			return fmt.Errorf("alloc: VC (%d,%d) granted twice", g.Port, g.VC)
		}
		rowUsed[g.Row] = true
		outUsed[g.OutPort] = true
		vcUsed[[2]int{g.Port, g.VC}] = true
	}
	return nil
}

// rowRequests groups the request indices of rs by crossbar row.
// The returned slice has Config.Rows() entries.
func rowRequests(rs *RequestSet) [][]int {
	rows := make([][]int, rs.Config.Rows())
	for i, r := range rs.Requests {
		row := rs.Config.Row(r.Port, r.VC)
		rows[row] = append(rows[row], i)
	}
	return rows
}
