package alloc

import "vix/internal/arb"

// Ideal is the paper's optimal switch allocator: every output port with at
// least one requesting input VC transmits a flit each cycle. It models a
// crossbar with one virtual input per VC (k = v), where the only physical
// constraint left is the output link itself, so per-output arbitration
// alone achieves optimal allocation. Each output uses a round-robin
// arbiter over all P*v input VCs for long-run fairness.
//
// Ideal ignores Config.VirtualInputs: it behaves as if VirtualInputs were
// VCs, and reports crossbar rows accordingly (its grants are validated
// against a per-VC-row geometry only when the configured geometry already
// is per-VC). It is the reference curve of Figures 7 and 12.
type Ideal struct {
	cfg     Config
	outArbs []arb.Arbiter // per output, over Ports*VCs request lines
	reqVec  []bool
	reqIdx  []int
	byOut   [][]int // scratch: request indices grouped by output
	grants  []Grant
}

// NewIdeal returns an ideal allocator for cfg. It panics if cfg is
// invalid.
func NewIdeal(cfg Config) *Ideal {
	mustValidate(cfg)
	n := cfg.Ports * cfg.VCs
	id := &Ideal{
		cfg:    cfg,
		reqVec: make([]bool, n),
		reqIdx: make([]int, n),
		byOut:  make([][]int, cfg.Ports),
		grants: make([]Grant, 0, cfg.Ports),
	}
	id.outArbs = make([]arb.Arbiter, cfg.Ports)
	for i := range id.outArbs {
		id.outArbs[i] = arb.NewRoundRobin(n)
	}
	return id
}

// Name implements Allocator.
func (id *Ideal) Name() string { return "ideal" }

// Reset implements Allocator.
func (id *Ideal) Reset() {
	for _, a := range id.outArbs {
		a.Reset()
	}
}

// Allocate implements Allocator. The returned slice is scratch, valid
// until the next Allocate or Reset call.
//
//vixlint:hot
func (id *Ideal) Allocate(rs *RequestSet) []Grant {
	// Group requests by output.
	for i := range id.byOut {
		id.byOut[i] = id.byOut[i][:0]
	}
	for idx, r := range rs.Requests {
		id.byOut[r.OutPort] = append(id.byOut[r.OutPort], idx)
	}
	id.grants = id.grants[:0]
	for out, idxs := range id.byOut {
		if len(idxs) == 0 {
			continue
		}
		for i := range id.reqVec {
			id.reqVec[i] = false
			id.reqIdx[i] = -1
		}
		for _, idx := range idxs {
			r := rs.Requests[idx]
			line := r.Port*id.cfg.VCs + r.VC
			id.reqVec[line] = true
			id.reqIdx[line] = idx
		}
		line := id.outArbs[out].Arbitrate(id.reqVec)
		id.outArbs[out].Ack(line)
		req := rs.Requests[id.reqIdx[line]]
		id.grants = append(id.grants, Grant{
			Req:     id.reqIdx[line],
			OutPort: out,
			Row:     rs.Config.Row(req.Port, req.VC),
		})
	}
	return id.grants
}
