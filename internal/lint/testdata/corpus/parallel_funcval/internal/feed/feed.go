// Package feed seeds a cross-shard write reached through a stored
// func value: the Do argument is a package variable, so the job must
// resolve via the address-taken-function fallback.
package feed

import "fix/internal/sim"

// Total is the shared accumulator no pool job may write.
var Total int

// add is address-taken below, making it an indirect-call target.
func add(i int) { Total += i }

// job stores the func value handed to Do.
var job = add

// Run dispatches through the stored func value.
func Run(p *sim.Pool) {
	p.Do(4, job)
}
