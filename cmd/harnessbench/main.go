// Command harnessbench measures the experiment harness's wall-clock
// throughput: it runs the same simulation grid serially and with a full
// worker pool, then emits a JSON record (BENCH_harness.json) with wall
// times, aggregate cycles/sec, and the speedup — the seed of the repo's
// performance trajectory. The merged results of the two runs are also
// compared, re-asserting the byte-identical-across-workers guarantee on
// every benchmark run.
//
// The parallel run executes over a content-addressed result store, and
// a third pass replays the identical grid against that warm store: it
// must simulate nothing, return byte-identical output, and beat
// simulating by >= 100x (the cache_speedup section; -require-cache-gate
// makes the factor a hard failure, as CI does). This is the number that
// makes vixd's memoization worth its complexity: a repeated spec costs
// a hash lookup, not a simulation.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"vix/internal/experiments"
	"vix/internal/harness"
	"vix/internal/store"
)

// report is the BENCH_harness.json schema.
type report struct {
	Grid           string  `json:"grid"`
	Jobs           int     `json:"jobs"`
	CyclesPerJob   int64   `json:"cycles_per_job"`
	CPUs           int     `json:"cpus"`
	Workers        int     `json:"workers"`
	SerialNanos    int64   `json:"serial_wall_ns"`
	ParallelNanos  int64   `json:"parallel_wall_ns"`
	Speedup        float64 `json:"speedup"`
	SerialCycSec   float64 `json:"serial_cycles_per_sec"`
	ParallelCycSec float64 `json:"parallel_cycles_per_sec"`
	Identical      bool    `json:"merged_output_identical"`

	// Cache section: the same grid replayed against the warm store.
	WarmStoreNanos int64   `json:"warm_store_wall_ns"`
	CacheSpeedup   float64 `json:"cache_speedup"` // simulate / served-from-store
	CacheServed    int64   `json:"cache_served"`
	CacheIdentical bool    `json:"cache_output_identical"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("harnessbench: ")
	var (
		out       = flag.String("o", "BENCH_harness.json", "output file (\"-\" for stdout)")
		warmup    = flag.Int("warmup", 1000, "warmup cycles per point")
		measure   = flag.Int("measure", 3000, "measurement cycles per point")
		workers   = flag.Int("parallel", 0, "parallel worker count (default GOMAXPROCS)")
		cacheGate = flag.Bool("require-cache-gate", false, "fail unless served-from-store beats simulating by >= 100x")
	)
	flag.Parse()

	p := experiments.DefaultParams()
	p.Warmup, p.Measure = *warmup, *measure
	rates := []float64{0.02, 0.04, 0.06, 0.08}
	grid := experiments.Figure8Grid(p, rates)

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	serialOut, serialNs, err := timedRun(p, grid, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	// The parallel run doubles as the cache's cold pass: it simulates
	// every point and appends it to a shared store.
	st := store.Memory()
	parallelOut, parallelNs, err := timedRun(p, grid, *workers, st)
	if err != nil {
		log.Fatal(err)
	}
	// Warm pass: the identical grid over the warm store must be served
	// entirely from it — zero simulations.
	warmOut, warmNs, err := timedRun(p, grid, *workers, st)
	if err != nil {
		log.Fatal(err)
	}
	stats := st.Stats()
	if stats.Misses != int64(len(grid)) {
		log.Fatalf("warm pass simulated %d points; every one of the %d must be served from the store",
			stats.Misses-int64(len(grid)), len(grid))
	}

	totalCycles := int64(len(grid)) * int64(p.Warmup+p.Measure)
	r := report{
		Grid:           fmt.Sprintf("fig8: %d schemes x (%d rates + saturation), 8x8 mesh", len(experiments.NetworkSchemes()), len(rates)),
		Jobs:           len(grid),
		CyclesPerJob:   int64(p.Warmup + p.Measure),
		CPUs:           runtime.NumCPU(),
		Workers:        *workers,
		SerialNanos:    serialNs,
		ParallelNanos:  parallelNs,
		Speedup:        float64(serialNs) / float64(parallelNs),
		SerialCycSec:   float64(totalCycles) / (float64(serialNs) / 1e9),
		ParallelCycSec: float64(totalCycles) / (float64(parallelNs) / 1e9),
		Identical:      bytes.Equal(serialOut, parallelOut),
		WarmStoreNanos: warmNs,
		CacheSpeedup:   float64(parallelNs) / float64(warmNs),
		CacheServed:    stats.Served(),
		CacheIdentical: bytes.Equal(serialOut, warmOut),
	}
	if !r.Identical {
		log.Fatal("merged output differs between serial and parallel runs — determinism regression")
	}
	if !r.CacheIdentical {
		log.Fatal("served-from-store output differs from simulated output — the cache is not an exact identity")
	}
	if *cacheGate && r.CacheSpeedup < 100 {
		log.Fatalf("cache gate: served-from-store is only %.1fx faster than simulating, want >= 100x", r.CacheSpeedup)
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("%d jobs: serial %v, parallel(%d) %v, speedup %.2fx on %d CPU(s)",
		r.Jobs, time.Duration(serialNs).Round(time.Millisecond),
		r.Workers, time.Duration(parallelNs).Round(time.Millisecond), r.Speedup, r.CPUs)
	log.Printf("warm store: %v for %d served points, %.0fx faster than simulating",
		time.Duration(warmNs).Round(time.Microsecond), r.CacheServed, r.CacheSpeedup)
}

// timedRun executes the grid with the given worker count and returns the
// merged results as canonical bytes plus the wall time. A non-nil store
// memoizes the run's points.
func timedRun(p experiments.Params, grid []experiments.GridPoint, workers int, st *store.Store) ([]byte, int64, error) {
	start := time.Now()
	snaps, err := experiments.RunGrid(context.Background(), p.Seed, grid, harness.Options{Parallel: workers, Store: st})
	if err != nil {
		return nil, 0, err
	}
	elapsed := time.Since(start)
	data, err := json.Marshal(snaps)
	if err != nil {
		return nil, 0, err
	}
	return data, elapsed.Nanoseconds(), nil
}
