package experiments

import (
	"fmt"

	"vix/internal/alloc"
	"vix/internal/network"
	"vix/internal/router"
	"vix/internal/stats"
	"vix/internal/topology"
	"vix/internal/traffic"
)

// The ablation studies isolate the design choices DESIGN.md calls out:
// the Section 2.3 VC-assignment policy, the VC-to-sub-group partition,
// the pipeline depth, the number of virtual inputs, and the choice of
// allocation scheme (including iSLIP and SPAROFLO from the paper's
// citations and related work).

// PolicyAblationRow is the saturation throughput of one (pattern,
// policy) pair on the VIX mesh.
type PolicyAblationRow struct {
	Pattern    string
	Policy     router.PolicyKind
	Throughput float64
}

// AblatePolicies measures the Section 2.3 VC-assignment policies on a
// saturated 8x8 VIX mesh across traffic patterns, including the
// adversarial ones the paper's Section 2.3 targets.
func AblatePolicies(p Params, patterns []string) ([]PolicyAblationRow, error) {
	if patterns == nil {
		patterns = []string{"uniform", "transpose", "tornado", "bitcomp"}
	}
	topo := topology.NewMesh(8, 8)
	var rows []PolicyAblationRow
	for _, name := range patterns {
		pat, err := traffic.New(name, 8, 8)
		if err != nil {
			return nil, err
		}
		for _, pol := range []router.PolicyKind{router.PolicyMaxFree, router.PolicyDimension, router.PolicyBalanced} {
			cfg := buildConfig(topo, Scheme{Label: "VIX", Kind: alloc.KindSeparableIF, K: 2, Policy: pol}, p, 0, true)
			cfg.Pattern = pat
			snap, err := measure(cfg, p)
			if err != nil {
				return nil, err
			}
			rows = append(rows, PolicyAblationRow{Pattern: name, Policy: pol, Throughput: snap.ThroughputFlits})
		}
	}
	return rows, nil
}

// PartitionAblationRow compares VC partitions for one topology.
type PartitionAblationRow struct {
	Topology   string
	Partition  alloc.Partition
	Throughput float64
}

// AblatePartition compares the paper's contiguous VC sub-grouping with
// an interleaved assignment on saturated VIX networks.
func AblatePartition(p Params) ([]PartitionAblationRow, error) {
	var rows []PartitionAblationRow
	for _, topo := range Topologies() {
		for _, part := range []alloc.Partition{alloc.Contiguous, alloc.Interleaved} {
			cfg := buildConfig(topo, Scheme{Label: "VIX", Kind: alloc.KindSeparableIF, K: 2, Policy: router.PolicyBalanced}, p, 0, true)
			cfg.Router.Partition = part
			snap, err := measure(cfg, p)
			if err != nil {
				return nil, err
			}
			rows = append(rows, PartitionAblationRow{Topology: topo.Name, Partition: part, Throughput: snap.ThroughputFlits})
		}
	}
	return rows, nil
}

// PipelineAblationRow compares router pipeline depths.
type PipelineAblationRow struct {
	Scheme     string
	HopDelay   int
	AvgLatency float64 // at the probe rate
	Throughput float64 // at saturation
}

// AblatePipeline compares the paper's optimised 3-stage pipeline (Figure
// 6b) against the conventional 5-stage pipeline (Figure 6a) for baseline
// and VIX: latency at a moderate load and saturation throughput.
func AblatePipeline(p Params, probeRate float64) ([]PipelineAblationRow, error) {
	topo := topology.NewMesh(8, 8)
	schemes := []Scheme{NetworkSchemes()[0], NetworkSchemes()[3]}
	var rows []PipelineAblationRow
	for _, s := range schemes {
		for _, hop := range []int{3, 5} {
			cfg := buildConfig(topo, s, p, probeRate, false)
			cfg.HopDelay = hop
			lat, err := measure(cfg, p)
			if err != nil {
				return nil, err
			}
			cfg = buildConfig(topo, s, p, 0, true)
			cfg.HopDelay = hop
			sat, err := measure(cfg, p)
			if err != nil {
				return nil, err
			}
			rows = append(rows, PipelineAblationRow{
				Scheme: s.Label, HopDelay: hop,
				AvgLatency: lat.AvgLatency, Throughput: sat.ThroughputFlits,
			})
		}
	}
	return rows, nil
}

// SpeculationAblationRow compares speculative and non-speculative switch
// allocation.
type SpeculationAblationRow struct {
	Scheme         string
	NonSpeculative bool
	AvgLatency     float64 // at the probe rate
	Throughput     float64 // at saturation
}

// AblateSpeculation compares the Figure 6b speculative pipeline (heads
// bid for the switch in the same cycle they win a VC) against a
// non-speculative variant that serialises VA before SA, for baseline and
// VIX on the mesh.
func AblateSpeculation(p Params, probeRate float64) ([]SpeculationAblationRow, error) {
	topo := topology.NewMesh(8, 8)
	schemes := []Scheme{NetworkSchemes()[0], NetworkSchemes()[3]}
	var rows []SpeculationAblationRow
	for _, s := range schemes {
		for _, nonSpec := range []bool{false, true} {
			cfg := buildConfig(topo, s, p, probeRate, false)
			cfg.Router.NonSpeculative = nonSpec
			lat, err := measure(cfg, p)
			if err != nil {
				return nil, err
			}
			cfg = buildConfig(topo, s, p, 0, true)
			cfg.Router.NonSpeculative = nonSpec
			sat, err := measure(cfg, p)
			if err != nil {
				return nil, err
			}
			rows = append(rows, SpeculationAblationRow{
				Scheme: s.Label, NonSpeculative: nonSpec,
				AvgLatency: lat.AvgLatency, Throughput: sat.ThroughputFlits,
			})
		}
	}
	return rows, nil
}

// KSweepRow is the saturation throughput at one virtual-input count.
type KSweepRow struct {
	K          int
	Throughput float64
}

// AblateVirtualInputs sweeps the virtual-input factor k from 1 to VCs on
// the mesh — a finer-grained version of Figure 12 that locates where the
// returns diminish.
func AblateVirtualInputs(p Params) ([]KSweepRow, error) {
	topo := topology.NewMesh(8, 8)
	var rows []KSweepRow
	for k := 1; k <= p.VCs; k++ {
		if p.VCs%k != 0 && k != p.VCs {
			continue // only even partitions keep sub-groups comparable
		}
		s := Scheme{Label: fmt.Sprintf("k=%d", k), Kind: alloc.KindSeparableIF, K: k, Policy: router12Policy(k)}
		snap, err := SaturationThroughput(topo, s, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, KSweepRow{K: k, Throughput: snap.ThroughputFlits})
	}
	return rows, nil
}

// AllocAblationRow is the saturation throughput of one allocation scheme
// from the extended set.
type AllocAblationRow struct {
	Scheme     string
	Throughput float64
}

// AblateAllocators races the full allocator set — including iSLIP (the
// iterative allocator the paper cites) and SPAROFLO (related work) — on
// a saturated mesh.
func AblateAllocators(p Params) ([]AllocAblationRow, error) {
	topo := topology.NewMesh(8, 8)
	schemes := []Scheme{
		{Label: "IF", Kind: alloc.KindSeparableIF, K: 1, Policy: router.PolicyMaxFree},
		{Label: "iSLIP-2", Kind: alloc.KindISLIP, K: 1, Policy: router.PolicyMaxFree},
		{Label: "SPAROFLO", Kind: alloc.KindSparoflo, K: 1, Policy: router.PolicyMaxFree},
		{Label: "WF", Kind: alloc.KindWavefront, K: 1, Policy: router.PolicyMaxFree},
		{Label: "AP", Kind: alloc.KindAugmentingPath, K: 1, Policy: router.PolicyMaxFree},
		{Label: "VIX", Kind: alloc.KindSeparableIF, K: 2, Policy: router.PolicyBalanced},
		{Label: "VIX-WF", Kind: alloc.KindWavefront, K: 2, Policy: router.PolicyBalanced},
		{Label: "VIX-age", Kind: alloc.KindSeparableAge, K: 2, Policy: router.PolicyBalanced},
	}
	var rows []AllocAblationRow
	for _, s := range schemes {
		snap, err := SaturationThroughput(topo, s, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AllocAblationRow{Scheme: s.Label, Throughput: snap.ThroughputFlits})
	}
	return rows, nil
}

// measure builds and runs one configured network.
func measure(cfg network.Config, p Params) (stats.Snapshot, error) {
	n, err := network.New(cfg)
	if err != nil {
		return stats.Snapshot{}, err
	}
	n.Warmup(p.Warmup)
	return n.Measure(p.Measure), nil
}
