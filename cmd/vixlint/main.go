// Command vixlint runs the simulator's static-analysis pass over the
// whole module: determinism rules (no wall clock, no global rand, no
// goroutines, no order-leaking map iteration in internal/), allocator
// contracts (registry completeness, read-only RequestSets, Kind/Name
// agreement), and hygiene rules (no printing or anonymous panics in
// library code). See internal/lint for the rule catalogue and the
// //vixlint:ordered waiver syntax.
//
// Usage:
//
//	vixlint [./...]
//	vixlint -root <module-dir>
//
// The analysis is always module-wide; a "./..." argument is accepted for
// familiarity. vixlint exits 1 when it finds violations, 2 when the
// module cannot be loaded.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vix/internal/lint"
)

func main() {
	root := flag.String("root", "", "module root to analyse (default: the module containing the working directory)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vixlint [-root dir] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "vixlint: unsupported argument %q (the analysis is always module-wide)\n", arg)
			os.Exit(2)
		}
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "vixlint: %v\n", err)
			os.Exit(2)
		}
	}
	findings, err := lint.Check(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vixlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vixlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// directory containing go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
