package vix_test

import (
	"fmt"

	"vix"
)

// Example demonstrates the basic simulation flow: build a topology,
// configure routers with two virtual inputs (VIX), run, and read the
// measured statistics. Simulations are deterministic for a given seed.
func Example() {
	topo := vix.NewMeshTopology(8, 8)
	n, err := vix.NewNetwork(vix.NetworkConfig{
		Topology: topo,
		Router: vix.RouterConfig{
			Ports: topo.Radix, VCs: 6, VirtualInputs: 2, BufDepth: 5,
			AllocKind: vix.AllocSeparableIF, Policy: vix.PolicyBalanced,
		},
		Pattern:       vix.NewUniformTraffic(topo.NumNodes),
		InjectionRate: 0.05,
		PacketSize:    4,
		Seed:          1,
	})
	if err != nil {
		panic(err)
	}
	n.Warmup(1000)
	s := n.Measure(3000)
	fmt.Printf("accepted %.2f flits/cycle/node at offered 0.20\n", s.ThroughputFlits)
	fmt.Printf("latency within zero-load ballpark: %v\n", s.AvgLatency > 20 && s.AvgLatency < 40)
	// Output:
	// accepted 0.20 flits/cycle/node at offered 0.20
	// latency within zero-load ballpark: true
}

// ExampleTable1 regenerates the paper's router pipeline-delay table from
// the calibrated 45 nm timing model.
func ExampleTable1() {
	for _, r := range vix.Table1()[:2] {
		fmt.Printf("%s: VA %.0f ps, SA %.0f ps, crossbar %.0f ps\n", r.Design, r.VA, r.SA, r.Xbar)
	}
	// Output:
	// Mesh: VA 300 ps, SA 280 ps, crossbar 167 ps
	// Mesh with VIX: VA 300 ps, SA 290 ps, crossbar 206 ps
}

// ExampleVIXFeasibilityFrontier shows the Section 2.4 scaling limit: the
// largest router radix whose doubled crossbar still fits the cycle.
func ExampleVIXFeasibilityFrontier() {
	fmt.Println(vix.VIXFeasibilityFrontier(6))
	// Output:
	// 10
}

// ExampleRunRouterBench measures single-router allocation efficiency in
// isolation (the Figure 7 testbench).
func ExampleRunRouterBench() {
	base, _ := vix.RunRouterBench(vix.RouterBenchConfig{
		Radix: 5, VCs: 6, VirtualInputs: 1,
		AllocKind: vix.AllocSeparableIF, PacketSize: 1, Seed: 1,
	}, 1000, 10000)
	withVIX, _ := vix.RunRouterBench(vix.RouterBenchConfig{
		Radix: 5, VCs: 6, VirtualInputs: 2,
		AllocKind: vix.AllocSeparableIF, PacketSize: 1, Seed: 1,
	}, 1000, 10000)
	fmt.Printf("VIX gains over 20%%: %v\n", withVIX.FlitsPerCycle > 1.2*base.FlitsPerCycle)
	// Output:
	// VIX gains over 20%: true
}

// ExampleDORHops computes dimension-order route lengths.
func ExampleDORHops() {
	topo := vix.NewMeshTopology(8, 8)
	fmt.Println(vix.DORHops(topo, 0, 63))
	fbfly := vix.NewFBflyTopology(4, 4, 4)
	fmt.Println(vix.DORHops(fbfly, 0, 63))
	// Output:
	// 14
	// 2
}
