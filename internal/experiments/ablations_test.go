package experiments

import (
	"testing"

	"vix/internal/alloc"
	"vix/internal/router"
	"vix/internal/topology"
)

func ablationParams() Params {
	p := DefaultParams()
	p.Warmup = 500
	p.Measure = 1500
	return p
}

func TestAblatePolicies(t *testing.T) {
	rows, err := AblatePolicies(ablationParams(), []string{"uniform", "bitcomp"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	get := func(pattern string, pol router.PolicyKind) float64 {
		for _, r := range rows {
			if r.Pattern == pattern && r.Policy == pol {
				return r.Throughput
			}
		}
		t.Fatalf("missing %s/%s", pattern, pol)
		return 0
	}
	// On the adversarial bit-complement pattern the dimension-aware
	// policies must not lose to blind maxfree (they exist to win there).
	if get("bitcomp", router.PolicyDimension) < 0.98*get("bitcomp", router.PolicyMaxFree) {
		t.Errorf("dimension policy lost to maxfree on bitcomp: %.4f vs %.4f",
			get("bitcomp", router.PolicyDimension), get("bitcomp", router.PolicyMaxFree))
	}
	for _, r := range rows {
		if r.Throughput <= 0 {
			t.Errorf("%s/%s produced no throughput", r.Pattern, r.Policy)
		}
	}
}

func TestAblatePartition(t *testing.T) {
	rows, err := AblatePartition(ablationParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 topologies x 2 partitions
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	// Both partitions must be functional and within 15% of each other:
	// the partition choice is a wiring detail, not a performance cliff.
	byTopo := map[string]map[alloc.Partition]float64{}
	for _, r := range rows {
		if byTopo[r.Topology] == nil {
			byTopo[r.Topology] = map[alloc.Partition]float64{}
		}
		byTopo[r.Topology][r.Partition] = r.Throughput
	}
	for topo, m := range byTopo {
		c, i := m[alloc.Contiguous], m[alloc.Interleaved]
		if c <= 0 || i <= 0 {
			t.Fatalf("%s: zero throughput (contiguous %.4f, interleaved %.4f)", topo, c, i)
		}
		ratio := c / i
		if ratio < 0.85 || ratio > 1.18 {
			t.Errorf("%s: partitions diverge: contiguous %.4f vs interleaved %.4f", topo, c, i)
		}
	}
}

func TestAblatePipeline(t *testing.T) {
	rows, err := AblatePipeline(ablationParams(), 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	get := func(scheme string, hop int) PipelineAblationRow {
		for _, r := range rows {
			if r.Scheme == scheme && r.HopDelay == hop {
				return r
			}
		}
		t.Fatalf("missing %s/%d", scheme, hop)
		return PipelineAblationRow{}
	}
	// The 3-stage pipeline must have lower latency than 5-stage at equal
	// load; saturation throughput is pipeline-depth insensitive (the
	// bottleneck is allocation, not depth).
	for _, s := range []string{"IF", "VIX"} {
		if get(s, 3).AvgLatency >= get(s, 5).AvgLatency {
			t.Errorf("%s: 3-stage latency %.2f not below 5-stage %.2f",
				s, get(s, 3).AvgLatency, get(s, 5).AvgLatency)
		}
	}
	if vix, base := get("VIX", 5).Throughput, get("IF", 5).Throughput; vix < 1.05*base {
		t.Errorf("VIX gain vanished on 5-stage pipeline: %.4f vs %.4f", vix, base)
	}
}

func TestAblateVirtualInputs(t *testing.T) {
	p := ablationParams()
	rows, err := AblateVirtualInputs(p)
	if err != nil {
		t.Fatal(err)
	}
	// 6 VCs: k = 1, 2, 3, 6 divide evenly.
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (k=1,2,3,6)", len(rows))
	}
	if rows[0].K != 1 || rows[len(rows)-1].K != 6 {
		t.Fatalf("k sweep endpoints wrong: %+v", rows)
	}
	// k=2 captures most of the ideal (k=6) gain — the paper's practical
	// argument for stopping at two virtual inputs.
	gain2 := rows[1].Throughput - rows[0].Throughput
	gain6 := rows[len(rows)-1].Throughput - rows[0].Throughput
	if gain6 <= 0 || gain2 < 0.6*gain6 {
		t.Errorf("k=2 captured %.0f%% of ideal gain, expected most of it (k1 %.4f, k2 %.4f, k6 %.4f)",
			100*gain2/gain6, rows[0].Throughput, rows[1].Throughput, rows[len(rows)-1].Throughput)
	}
}

func TestAblateAllocators(t *testing.T) {
	rows, err := AblateAllocators(ablationParams())
	if err != nil {
		t.Fatal(err)
	}
	thr := map[string]float64{}
	for _, r := range rows {
		thr[r.Scheme] = r.Throughput
		if r.Throughput <= 0 {
			t.Fatalf("%s produced no throughput", r.Scheme)
		}
	}
	if thr["iSLIP-2"] < thr["IF"] {
		t.Errorf("2-iteration iSLIP (%.4f) below single-pass IF (%.4f)", thr["iSLIP-2"], thr["IF"])
	}
	if thr["SPAROFLO"] < 0.98*thr["IF"] {
		t.Errorf("SPAROFLO (%.4f) clearly below IF (%.4f)", thr["SPAROFLO"], thr["IF"])
	}
	if thr["VIX"] < thr["SPAROFLO"] {
		t.Errorf("VIX (%.4f) below SPAROFLO (%.4f): virtual inputs should cash in exposed requests", thr["VIX"], thr["SPAROFLO"])
	}
}

func TestFindSaturation(t *testing.T) {
	p := ablationParams()
	topo := topology.NewMesh(4, 4)
	base, err := FindSaturation(topo, NetworkSchemes()[0], p, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	vix, err := FindSaturation(topo, NetworkSchemes()[3], p, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if base.Rate <= 0 || base.Rate >= 0.25 {
		t.Fatalf("baseline saturation rate %.4f implausible for 4x4 mesh with 4-flit packets", base.Rate)
	}
	if vix.Rate <= base.Rate {
		t.Errorf("VIX saturation rate %.4f not above baseline %.4f", vix.Rate, base.Rate)
	}
	if base.Throughput <= 0 || base.Latency <= 0 {
		t.Fatalf("empty saturation result: %+v", base)
	}
}

func TestAblateSpeculation(t *testing.T) {
	rows, err := AblateSpeculation(ablationParams(), 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	get := func(scheme string, nonSpec bool) SpeculationAblationRow {
		for _, r := range rows {
			if r.Scheme == scheme && r.NonSpeculative == nonSpec {
				return r
			}
		}
		t.Fatalf("missing %s/%v", scheme, nonSpec)
		return SpeculationAblationRow{}
	}
	// Speculation reduces latency (heads skip a cycle per hop) and must
	// not reduce throughput.
	for _, s := range []string{"IF", "VIX"} {
		spec, nonSpec := get(s, false), get(s, true)
		if spec.AvgLatency >= nonSpec.AvgLatency {
			t.Errorf("%s: speculative latency %.2f not below non-speculative %.2f",
				s, spec.AvgLatency, nonSpec.AvgLatency)
		}
		if spec.Throughput < 0.95*nonSpec.Throughput {
			t.Errorf("%s: speculation lost throughput: %.4f vs %.4f", s, spec.Throughput, nonSpec.Throughput)
		}
	}
	// VIX gain survives without speculation.
	if vix, base := get("VIX", true).Throughput, get("IF", true).Throughput; vix < 1.05*base {
		t.Errorf("VIX gain vanished non-speculatively: %.4f vs %.4f", vix, base)
	}
}

func TestReplicateSaturation(t *testing.T) {
	p := ablationParams()
	topo := topology.NewMesh(4, 4)
	seeds := []uint64{1, 2, 3, 4}
	base, err := ReplicateSaturation(topo, NetworkSchemes()[0], p, seeds)
	if err != nil {
		t.Fatal(err)
	}
	vix, err := ReplicateSaturation(topo, NetworkSchemes()[3], p, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if base.Seeds != 4 || vix.Seeds != 4 {
		t.Fatalf("seed counts wrong: %+v %+v", base, vix)
	}
	if base.Min > base.Mean || base.Mean > base.Max {
		t.Fatalf("summary inconsistent: %+v", base)
	}
	// The VIX gain is not a single-seed fluke: the distributions are
	// separated by far more than their spread.
	if vix.Mean-base.Mean < 2*(base.StdDev+vix.StdDev) {
		t.Fatalf("VIX gain within noise: base %.4f±%.4f vs vix %.4f±%.4f",
			base.Mean, base.StdDev, vix.Mean, vix.StdDev)
	}
	if _, err := ReplicateSaturation(topo, NetworkSchemes()[0], p, nil); err == nil {
		t.Error("empty seed list accepted")
	}
}
