package sim

import "math/bits"

// Bitset is a packed occupancy-word set over a fixed index space, sized
// at construction. It is the exported sibling of the allocator-internal
// occupancy words: the network's activity-gated tick uses one word set
// for dirty routers and one for network interfaces with queued flits.
//
// Walks iterate set bits in ascending index order — word by word,
// bits.TrailingZeros64 within a word — so replacing a dense 0..n loop
// with a bitset walk visits the same indices in the same order, which is
// what keeps the gated tick byte-identical to the dense one. Callers
// range over the words directly:
//
//	for wi, w := range b {
//		for ; w != 0; w &= w - 1 {
//			i := wi<<6 + bits.TrailingZeros64(w)
//			...
//		}
//	}
//
// Iterating a copied word w is stable under concurrent Clear calls for
// indices already visited; bits set during a walk are observed only if
// they land in a word not yet reached.
type Bitset []uint64

// NewBitset returns an all-clear bitset covering indices [0, n).
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set marks index i.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear unmarks index i.
func (b Bitset) Clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether index i is set.
func (b Bitset) Test(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}
