package network

// Network models the root state struct with one classified field, one
// the manifest misses (drops), and a typoed directive the parser must
// report instead of silently ignoring.
type Network struct {
	cycle int
	drops int
}

// Step advances one cycle.
func (n *Network) Step() {
	n.cycle++
	//vixlint:sate drops is rebuilt every cycle
	n.drops = 0
}
