// Package config defines a declarative, JSON-serialisable description of
// a network experiment and resolves it into the runtime configuration
// objects. The vixsim CLI accepts such files via -config, which makes
// sweeps scriptable and experiment setups reviewable.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"vix/internal/alloc"
	"vix/internal/network"
	"vix/internal/router"
	"vix/internal/topology"
	"vix/internal/traffic"
)

// Experiment is a complete, self-contained experiment description.
// Zero-valued fields take the documented defaults.
type Experiment struct {
	// Topology: "mesh" or "torus" (WxH), "cmesh" or "fbfly" (WxH with
	// Conc terminals per router). Defaults: mesh,torus 8x8 /
	// cmesh,fbfly 4x4 c4.
	Topology string `json:"topology"`
	Width    int    `json:"width,omitempty"`
	Height   int    `json:"height,omitempty"`
	Conc     int    `json:"conc,omitempty"`

	// Router microarchitecture.
	VCs           int    `json:"vcs,omitempty"`            // default 6
	BufDepth      int    `json:"buf_depth,omitempty"`      // default 5
	VirtualInputs int    `json:"virtual_inputs,omitempty"` // default 1; 2 = VIX
	Allocator     string `json:"allocator,omitempty"`      // default "if"
	Policy        string `json:"policy,omitempty"`         // default by k
	Partition     string `json:"partition,omitempty"`      // "contiguous" | "interleaved"
	// NonSpeculative disables the speculative VA/SA overlap of the
	// three-stage pipeline.
	NonSpeculative bool `json:"non_speculative,omitempty"`

	// Workload.
	Pattern       string  `json:"pattern,omitempty"` // default "uniform"
	InjectionRate float64 `json:"injection_rate,omitempty"`
	MaxInjection  bool    `json:"max_injection,omitempty"`
	PacketSize    int     `json:"packet_size,omitempty"` // default 4

	// Simulation control.
	Warmup      int    `json:"warmup,omitempty"`  // default 2000
	Measure     int    `json:"measure,omitempty"` // default 6000
	Seed        uint64 `json:"seed,omitempty"`
	HopDelay    int    `json:"hop_delay,omitempty"`
	CreditDelay int    `json:"credit_delay,omitempty"`
}

// Default returns the paper's standard configuration: an 8x8 mesh with
// 6 VCs x 5-flit buffers, separable input-first allocation, uniform
// random 4-flit packets at 0.05 packets/cycle/node.
func Default() Experiment {
	return Experiment{
		Topology:      "mesh",
		VCs:           6,
		BufDepth:      5,
		VirtualInputs: 1,
		Allocator:     "if",
		Pattern:       "uniform",
		InjectionRate: 0.05,
		PacketSize:    4,
		Warmup:        2000,
		Measure:       6000,
		Seed:          1,
	}
}

// Decode reads one experiment description from JSON, applying the
// documented defaults for absent fields. Unknown fields are rejected to
// catch typos, and the result is validated: a spec Decode accepts is a
// spec Build can resolve. This is the single ingestion path for
// experiment specs — config files (Load) and vixd request bodies both
// go through it, so a field that defaults here defaults identically
// everywhere, and identical specs hash to identical store IDs however
// they arrived.
func Decode(r io.Reader) (Experiment, error) {
	e := Default()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return Experiment{}, fmt.Errorf("config: parsing experiment: %w", err)
	}
	if err := e.Validate(); err != nil {
		return Experiment{}, err
	}
	return e, nil
}

// Load reads an experiment description from a JSON file via Decode,
// naming the file in any error.
func Load(path string) (Experiment, error) {
	f, err := os.Open(path)
	if err != nil {
		return Experiment{}, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	e, err := Decode(f)
	if err != nil {
		return Experiment{}, fmt.Errorf("%s: %w", path, err)
	}
	return e, nil
}

// Save writes the experiment as indented JSON.
func (e Experiment) Save(path string) error {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BuildTopology resolves the topology description.
func (e Experiment) BuildTopology() (*topology.Topology, error) {
	w, h, c := e.Width, e.Height, e.Conc
	switch e.Topology {
	case "", "mesh":
		if w == 0 {
			w, h = 8, 8
		}
		if h == 0 {
			h = w
		}
		return topology.NewMesh(w, h), nil
	case "torus":
		if w == 0 {
			w, h = 8, 8
		}
		if h == 0 {
			h = w
		}
		return topology.NewTorus(w, h), nil
	case "cmesh":
		if w == 0 {
			w, h = 4, 4
		}
		if h == 0 {
			h = w
		}
		if c == 0 {
			c = 4
		}
		return topology.NewCMesh(w, h, c), nil
	case "fbfly":
		if w == 0 {
			w, h = 4, 4
		}
		if h == 0 {
			h = w
		}
		if c == 0 {
			c = 4
		}
		return topology.NewFBfly(w, h, c), nil
	default:
		return nil, fmt.Errorf("config: unknown topology %q", e.Topology)
	}
}

// Build resolves the full network configuration.
func (e Experiment) Build() (network.Config, error) {
	topo, err := e.BuildTopology()
	if err != nil {
		return network.Config{}, err
	}
	// The logical node grid for coordinate-based patterns is the square
	// grid of terminals (8x8 for all 64-node configurations).
	gw, gh := nodeGrid(topo.NumNodes)
	patName := e.Pattern
	if patName == "" {
		patName = "uniform"
	}
	pat, err := traffic.New(patName, gw, gh)
	if err != nil {
		return network.Config{}, err
	}
	pol := router.PolicyKind(e.Policy)
	if pol == "" {
		pol = router.PolicyMaxFree
		if e.VirtualInputs > 1 {
			pol = router.PolicyBalanced
		}
	}
	var part alloc.Partition
	switch e.Partition {
	case "", "contiguous":
		part = alloc.Contiguous
	case "interleaved":
		part = alloc.Interleaved
	default:
		return network.Config{}, fmt.Errorf("config: unknown partition %q", e.Partition)
	}
	allocKind := e.Allocator
	if allocKind == "" {
		allocKind = "if"
	}
	k := e.VirtualInputs
	if k == 0 {
		k = 1
	}
	return network.Config{
		Topology: topo,
		Router: router.Config{
			Ports:          topo.Radix,
			VCs:            e.VCs,
			VirtualInputs:  k,
			BufDepth:       e.BufDepth,
			AllocKind:      alloc.Kind(allocKind),
			Policy:         pol,
			Partition:      part,
			NonSpeculative: e.NonSpeculative,
		},
		Pattern:       pat,
		InjectionRate: e.InjectionRate,
		MaxInjection:  e.MaxInjection,
		PacketSize:    e.PacketSize,
		Seed:          e.Seed,
		HopDelay:      e.HopDelay,
		CreditDelay:   e.CreditDelay,
	}, nil
}

// nodeGrid returns the squarest w x h factorisation of n for pattern
// coordinates (64 -> 8x8).
func nodeGrid(n int) (int, int) {
	best := 1
	for w := 1; w*w <= n; w++ {
		if n%w == 0 {
			best = w
		}
	}
	return n / best, best
}

// PartitionName returns the partition's display name.
func (e Experiment) PartitionName() string {
	if e.Partition == "" {
		return "contiguous"
	}
	return e.Partition
}
