package alloc

import "vix/internal/arb"

// SeparableAge is the separable input-first allocator with oldest-first
// prioritisation — the SPAROFLO-style optimisation the paper's related
// work says "can be easily integrated with VIX". In both phases, the
// request (or candidate) with the largest Age wins; the rotating arbiter
// breaks ties so fairness is preserved when ages are equal.
//
// Oldest-first arbitration bounds worst-case waiting and improves the
// tail of the latency distribution, at the hardware cost of age counters
// and comparators; the ablation benchmarks quantify the trade on top of
// both the baseline and the VIX crossbar.
type SeparableAge struct {
	cfg        Config
	inputArbs  []arb.Arbiter
	outputArbs []arb.Arbiter

	// scratch
	rowReqs    rowScratch
	candidate  []int
	contenders []int
	rowTies    []bool
	slotTies   []bool
	slotToIdx  []int
	grants     []Grant
}

// NewSeparableAge returns an oldest-first separable allocator for cfg.
// It panics if cfg is invalid.
func NewSeparableAge(cfg Config) *SeparableAge {
	mustValidate(cfg)
	s := &SeparableAge{
		cfg:        cfg,
		rowReqs:    newRowScratch(cfg),
		candidate:  make([]int, cfg.Rows()),
		contenders: make([]int, 0, cfg.Rows()),
		rowTies:    make([]bool, cfg.Rows()),
		slotTies:   make([]bool, cfg.GroupSize()),
		slotToIdx:  make([]int, cfg.GroupSize()),
		grants:     make([]Grant, 0, cfg.Ports),
	}
	s.inputArbs = make([]arb.Arbiter, cfg.Rows())
	for i := range s.inputArbs {
		s.inputArbs[i] = arb.NewRoundRobin(cfg.GroupSize())
	}
	s.outputArbs = make([]arb.Arbiter, cfg.Ports)
	for i := range s.outputArbs {
		s.outputArbs[i] = arb.NewRoundRobin(cfg.Rows())
	}
	return s
}

// Name implements Allocator.
func (s *SeparableAge) Name() string { return "if-age" }

// Reset implements Allocator.
func (s *SeparableAge) Reset() {
	for _, a := range s.inputArbs {
		a.Reset()
	}
	for _, a := range s.outputArbs {
		a.Reset()
	}
}

// Allocate implements Allocator. The returned slice is scratch, valid
// until the next Allocate or Reset call.
//
//vixlint:hot
func (s *SeparableAge) Allocate(rs *RequestSet) []Grant {
	rows := s.rowReqs.group(rs)

	// Phase one: per crossbar row, the oldest request wins; the rotating
	// arbiter decides among equally old ones.
	for row := range s.candidate {
		s.candidate[row] = s.pickOldest(rs, rows[row], s.inputArbs[row])
	}

	// Phase two: per output port, the oldest candidate wins.
	s.grants = s.grants[:0]
	for out := 0; out < s.cfg.Ports; out++ {
		s.contenders = s.contenders[:0]
		for row, idx := range s.candidate {
			if idx >= 0 && rs.Requests[idx].OutPort == out {
				s.contenders = append(s.contenders, row)
			}
		}
		if len(s.contenders) == 0 {
			continue
		}
		rowIdxOf := func(i int) int { return s.candidate[s.contenders[i]] }
		best := 0
		for i := 1; i < len(s.contenders); i++ {
			if rs.Requests[rowIdxOf(i)].Age > rs.Requests[rowIdxOf(best)].Age {
				best = i
			}
		}
		// Tie-break equally old contenders with the output's rotating
		// arbiter for long-run fairness.
		for i := range s.rowTies {
			s.rowTies[i] = false
		}
		anyTie := false
		for i := range s.contenders {
			if rs.Requests[rowIdxOf(i)].Age == rs.Requests[rowIdxOf(best)].Age {
				s.rowTies[s.contenders[i]] = true
				anyTie = true
			}
		}
		row := s.contenders[best]
		if anyTie {
			row = s.outputArbs[out].Arbitrate(s.rowTies)
		}
		req := rs.Requests[s.candidate[row]]
		s.grants = append(s.grants, Grant{Req: s.candidate[row], OutPort: out, Row: row})
		s.outputArbs[out].Ack(row)
		s.inputArbs[row].Ack(s.cfg.Slot(req.VC))
	}
	return s.grants
}

// pickOldest returns the request index with the greatest age among idxs,
// using the arbiter to break ties by VC slot; -1 if idxs is empty.
func (s *SeparableAge) pickOldest(rs *RequestSet, idxs []int, a arb.Arbiter) int {
	if len(idxs) == 0 {
		return -1
	}
	best := idxs[0]
	for _, idx := range idxs[1:] {
		if rs.Requests[idx].Age > rs.Requests[best].Age {
			best = idx
		}
	}
	for i := range s.slotTies {
		s.slotTies[i] = false
		s.slotToIdx[i] = -1
	}
	count := 0
	for _, idx := range idxs {
		if rs.Requests[idx].Age == rs.Requests[best].Age {
			slot := s.cfg.Slot(rs.Requests[idx].VC)
			if s.slotToIdx[slot] < 0 {
				s.slotTies[slot] = true
				s.slotToIdx[slot] = idx
				count++
			}
		}
	}
	if count <= 1 {
		return best
	}
	return s.slotToIdx[a.Arbitrate(s.slotTies)]
}
