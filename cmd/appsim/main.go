// Command appsim regenerates Table 4: application-level performance of
// the eight multiprogrammed workloads on the trace-driven 64-core system,
// reporting each mix's average MPKI and the weighted speedup of VIX over
// the baseline separable allocator.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"vix/internal/experiments"
	"vix/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("appsim: ")
	var (
		warmup  = flag.Int("warmup", 1500, "warmup cycles")
		measure = flag.Int("measure", 10000, "measurement cycles")
		seed    = flag.Uint64("seed", 1, "random seed")
		list    = flag.Bool("list", false, "list the benchmark catalog and exit")
	)
	flag.Parse()

	if *list {
		w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
		fmt.Fprintln(w, "benchmark\tL1 MPKI\tL2 MPKI\tcombined")
		for _, name := range trace.Names() {
			a, err := trace.ByName(name)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\n", a.Name, a.L1MPKI, a.L2MPKI, a.MPKI())
		}
		w.Flush()
		return
	}

	p := experiments.DefaultParams()
	p.Warmup, p.Measure, p.Seed = *warmup, *measure, *seed
	rows, err := experiments.Table4(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Table 4: application-level performance (64-core trace-driven system, 8x8 mesh)")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "mix\tavg MPKI\tpaper MPKI\tchip IPC (IF)\tchip IPC (VIX)\tmem lat (IF)\tmem lat (VIX)\tspeedup\tpaper speedup")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.3f\t%.2f\n",
			r.Mix, r.AvgMPKI, r.PaperMPKI, r.IPCBase, r.IPCVIX, r.MemLatBase, r.MemLatVIX, r.Speedup, r.PaperSpeedup)
		sum += r.Speedup
	}
	w.Flush()
	fmt.Printf("\nAverage speedup: %.3f (paper: 1.05 average, 1.07 maximum).\n", sum/float64(len(rows)))
}
