// Package timing models the router pipeline-stage delays of the paper's
// Tables 1 and 3. The paper obtained these numbers from Synopsys Design
// Compiler synthesis of open-source router RTL and SPICE simulation of
// matrix crossbars in a commercial 45 nm SOI technology; this package
// substitutes closed-form models calibrated to the published data points
// (see DESIGN.md, "Substitutions").
//
// Arbitration delays follow a logical-effort form, a + b*log2(fan-in),
// per arbitration stage; the crossbar follows an RC wire model where the
// input wire spans the outputs and the output wire spans the inputs, plus
// a bilinear loading term. All six published (design, stage) points of
// Table 1 are reproduced within 2%.
package timing

import "math"

// Delay-model coefficients, calibrated to Table 1/3 of the paper
// (picoseconds; 45 nm SOI, 1.0 V, 25C).
const (
	// VA delay = vaBase + vaLog * log2(P*v): a VC allocator arbitrates
	// among P*v candidates per output VC.
	vaBase = 5.6
	vaLog  = 60.0

	// SA delay = saBase + saInLog*log2(ceil(v/k)) + saOutLog*log2(k*P):
	// input arbiters shrink with VIX (v/k requestors) while output
	// arbiters grow (k*P requestors).
	saBase   = 11.4
	saInLog  = 50.0
	saOutLog = 60.0

	// Crossbar delay = xbBase + xbIn*in + xbOut*out + xbBilin*in*out:
	// empirical fit to the six SPICE points of Table 1 (128-bit matrix
	// crossbar, M3/M4 wires, 2x spacing).
	xbBase  = 141.0
	xbIn    = 3.2
	xbOut   = -2.5
	xbBilin = 0.9

	// Wavefront delay = wfBase + wfDiag*max(rows, cols): the wavefront
	// sweeps one priority diagonal per gate level. Calibrated to the
	// 390 ps of Table 3 at P = 5.
	wfBase = 140.0
	wfDiag = 50.0
)

// VADelay returns the virtual-channel allocation stage delay in ps for a
// router with the given ports and VCs per port. VA is unaffected by VIX.
func VADelay(ports, vcs int) float64 {
	return vaBase + vaLog*math.Log2(float64(ports*vcs))
}

// SADelay returns the switch allocation stage delay in ps for a separable
// input-first allocator with k virtual inputs per port.
func SADelay(ports, vcs, k int) float64 {
	group := (vcs + k - 1) / k
	return saBase + saInLog*math.Log2(float64(group)) + saOutLog*math.Log2(float64(k*ports))
}

// XbarDelay returns the crossbar traversal delay in ps for an in x out
// matrix crossbar with a 128-bit datapath.
func XbarDelay(in, out int) float64 {
	fi, fo := float64(in), float64(out)
	return xbBase + xbIn*fi + xbOut*fo + xbBilin*fi*fo
}

// WavefrontDelay returns the delay in ps of a wavefront allocator over a
// (k*ports) x ports request matrix.
func WavefrontDelay(ports, k int) float64 {
	n := k * ports
	if ports > n {
		n = ports
	}
	return wfBase + wfDiag*float64(n)
}

// APDelay returns a delay estimate in ps for an augmenting-path maximum
// matching allocator: up to k*P sequential augmentation phases, each
// costing roughly one separable allocation. The paper (Table 3, citing
// Becker & Dally) deems this infeasible within a router cycle; the
// estimate quantifies by how much.
func APDelay(ports, vcs, k int) float64 {
	return float64(k*ports) * SADelay(ports, vcs, k)
}

// APFeasible reports whether the AP estimate fits the router cycle time;
// it never does for the paper's configurations.
func APFeasible(ports, vcs, k int) bool {
	return APDelay(ports, vcs, k) <= CycleTime(ports, vcs)
}

// CycleTime returns the router cycle time in ps: the slowest of the
// allocation stages (VA or SA), which several cited studies place on the
// critical path. The crossbar is deliberately excluded — verifying it has
// slack is the point of Table 1.
func CycleTime(ports, vcs int) float64 {
	va, sa := VADelay(ports, vcs), SADelay(ports, vcs, 1)
	if sa > va {
		return sa
	}
	return va
}

// StageDelays is one row of Table 1.
type StageDelays struct {
	Design  string
	Radix   int
	XbarIn  int
	XbarOut int
	VA      float64 // ps
	SA      float64 // ps
	Xbar    float64 // ps
}

// Table1 reproduces the paper's Table 1: VA, SA, and crossbar delays for
// mesh (radix 5), CMesh (radix 8), and FBfly (radix 10) routers, with and
// without two virtual inputs per port, at 6 VCs per port.
func Table1() []StageDelays {
	type design struct {
		name  string
		radix int
		k     int
	}
	designs := []design{
		{"Mesh", 5, 1},
		{"Mesh with VIX", 5, 2},
		{"CMesh", 8, 1},
		{"CMesh with VIX", 8, 2},
		{"FBfly", 10, 1},
		{"FBfly with VIX", 10, 2},
	}
	const vcs = 6
	rows := make([]StageDelays, len(designs))
	for i, d := range designs {
		rows[i] = StageDelays{
			Design:  d.name,
			Radix:   d.radix,
			XbarIn:  d.k * d.radix,
			XbarOut: d.radix,
			VA:      VADelay(d.radix, vcs),
			SA:      SADelay(d.radix, vcs, d.k),
			Xbar:    XbarDelay(d.k*d.radix, d.radix),
		}
	}
	return rows
}

// AllocatorDelay is one column of Table 3.
type AllocatorDelay struct {
	Scheme   string
	Delay    float64 // ps; meaningful only when Feasible
	Feasible bool
}

// Table3 reproduces the paper's Table 3: the delay of separable,
// wavefront, and augmented-path switch allocation for the radix-5 mesh
// router with 6 VCs.
func Table3() []AllocatorDelay {
	const ports, vcs = 5, 6
	return []AllocatorDelay{
		{Scheme: "Separable", Delay: SADelay(ports, vcs, 1), Feasible: true},
		{Scheme: "Wavefront", Delay: WavefrontDelay(ports, 1), Feasible: true},
		{Scheme: "Augmented Path", Delay: APDelay(ports, vcs, 1), Feasible: APFeasible(ports, vcs, 1)},
	}
}
