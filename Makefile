# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test bench experiments examples clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Regenerate every table and figure at benchmark scale.
bench:
	go test -bench=. -benchmem .

# Regenerate every table and figure at full scale (minutes).
experiments:
	go run ./cmd/delaymodel -scaling
	go run ./cmd/routerbench
	go run ./cmd/loadsweep
	go run ./cmd/fairness
	go run ./cmd/chaining
	go run ./cmd/energymodel
	go run ./cmd/virtualinputs
	go run ./cmd/appsim
	go run ./cmd/ablation

examples:
	go run ./examples/quickstart
	go run ./examples/buffer_reduction
	go run ./examples/custom_allocator
	go run ./examples/adversarial_traffic
	go run ./examples/saturation_search

clean:
	go clean ./...
