// Package traffic provides the statistical traffic patterns used in the
// paper's evaluation (uniform random) plus the standard adversarial
// patterns (transpose, bit complement, bit reverse, tornado, hotspot)
// that exercise the Section 2.3 dimension-aware VC assignment.
//
// Patterns map a source terminal to a destination terminal over a logical
// node grid. The 64-node configurations of the paper use an 8x8 logical
// node grid regardless of topology (the concentrated topologies pack four
// logical nodes per router).
package traffic

import (
	"fmt"

	"vix/internal/sim"
)

// Pattern produces a destination node for each generated packet.
type Pattern interface {
	// Name returns a short identifier such as "uniform".
	Name() string
	// Dest returns the destination node for a packet from src. It must
	// not return src for patterns that would self-address; such patterns
	// redirect deterministically.
	Dest(src int, rng *sim.RNG) int
}

// Uniform sends each packet to a destination chosen uniformly at random
// among all other nodes — the paper's primary statistical workload.
type Uniform struct{ N int }

// NewUniform returns a uniform-random pattern over n nodes.
func NewUniform(n int) Uniform { return Uniform{N: n} }

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (u Uniform) Dest(src int, rng *sim.RNG) int {
	d := rng.Intn(u.N - 1)
	if d >= src {
		d++
	}
	return d
}

// grid describes the logical node grid used by coordinate-based patterns.
type grid struct{ W, H int }

func (g grid) xy(n int) (int, int) { return n % g.W, n / g.W }
func (g grid) node(x, y int) int   { return y*g.W + x }
func (g grid) size() int           { return g.W * g.H }

// Transpose sends (x, y) to (y, x) on the logical node grid: adversarial
// for dimension-order routing because all traffic crosses the diagonal.
type Transpose struct{ g grid }

// NewTranspose returns a transpose pattern over a w x h node grid; w and
// h must be equal.
func NewTranspose(w, h int) Transpose {
	if w != h {
		panic(fmt.Sprintf("traffic: transpose needs a square grid, got %dx%d", w, h))
	}
	return Transpose{g: grid{W: w, H: h}}
}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// Dest implements Pattern. Diagonal nodes (x == y) would self-address;
// they fall back to the grid-complement destination.
func (t Transpose) Dest(src int, _ *sim.RNG) int {
	x, y := t.g.xy(src)
	if x == y {
		return t.g.node(t.g.W-1-x, t.g.H-1-y)
	}
	return t.g.node(y, x)
}

// BitComplement sends node i to node (N-1-i): every packet crosses the
// network centre.
type BitComplement struct{ N int }

// NewBitComplement returns a bit-complement pattern over n nodes (n must
// be a power of two for the name to be literal; any n works as the
// (N-1-i) complement).
func NewBitComplement(n int) BitComplement { return BitComplement{N: n} }

// Name implements Pattern.
func (BitComplement) Name() string { return "bitcomp" }

// Dest implements Pattern.
func (b BitComplement) Dest(src int, _ *sim.RNG) int {
	d := b.N - 1 - src
	if d == src { // odd N midpoint
		return (src + 1) % b.N
	}
	return d
}

// BitReverse sends node i to the bit-reversal of i over log2(N) bits.
type BitReverse struct {
	N    int
	bits int
}

// NewBitReverse returns a bit-reverse pattern over n nodes; n must be a
// power of two.
func NewBitReverse(n int) BitReverse {
	bits := 0
	for 1<<bits < n {
		bits++
	}
	if 1<<bits != n {
		panic(fmt.Sprintf("traffic: bit reverse needs power-of-two nodes, got %d", n))
	}
	return BitReverse{N: n, bits: bits}
}

// Name implements Pattern.
func (BitReverse) Name() string { return "bitrev" }

// Dest implements Pattern.
func (b BitReverse) Dest(src int, _ *sim.RNG) int {
	d := 0
	for i := 0; i < b.bits; i++ {
		if src&(1<<i) != 0 {
			d |= 1 << (b.bits - 1 - i)
		}
	}
	if d == src {
		return (src + b.N/2) % b.N
	}
	return d
}

// Tornado sends each node halfway around its row, concentrating load on
// row channels: (x, y) -> ((x + ceil(W/2) - 1) mod W, y).
type Tornado struct{ g grid }

// NewTornado returns a tornado pattern over a w x h node grid.
func NewTornado(w, h int) Tornado { return Tornado{g: grid{W: w, H: h}} }

// Name implements Pattern.
func (Tornado) Name() string { return "tornado" }

// Dest implements Pattern.
func (t Tornado) Dest(src int, _ *sim.RNG) int {
	x, y := t.g.xy(src)
	dx := (x + (t.g.W+1)/2 - 1) % t.g.W
	if dx == x {
		dx = (x + 1) % t.g.W
	}
	return t.g.node(dx, y)
}

// Shuffle sends node i to the left bit-rotation of i over log2(N) bits —
// the classic perfect-shuffle permutation.
type Shuffle struct {
	N    int
	bits int
}

// NewShuffle returns a shuffle pattern over n nodes; n must be a power of
// two.
func NewShuffle(n int) Shuffle {
	bits := 0
	for 1<<bits < n {
		bits++
	}
	if 1<<bits != n {
		panic(fmt.Sprintf("traffic: shuffle needs power-of-two nodes, got %d", n))
	}
	return Shuffle{N: n, bits: bits}
}

// Name implements Pattern.
func (Shuffle) Name() string { return "shuffle" }

// Dest implements Pattern.
func (s Shuffle) Dest(src int, _ *sim.RNG) int {
	d := ((src << 1) | (src >> (s.bits - 1))) & (s.N - 1)
	if d == src { // all-zero and all-one fixed points
		return (src + s.N/2) % s.N
	}
	return d
}

// Neighbor sends each node to its east neighbour on the logical grid
// (wrapping): maximal locality, the benign counterpart of the adversarial
// patterns.
type Neighbor struct{ g grid }

// NewNeighbor returns a nearest-neighbour pattern over a w x h node grid.
func NewNeighbor(w, h int) Neighbor { return Neighbor{g: grid{W: w, H: h}} }

// Name implements Pattern.
func (Neighbor) Name() string { return "neighbor" }

// Dest implements Pattern.
func (nb Neighbor) Dest(src int, _ *sim.RNG) int {
	x, y := nb.g.xy(src)
	return nb.g.node((x+1)%nb.g.W, y)
}

// Hotspot sends a fraction of traffic to a fixed set of hotspot nodes and
// the remainder uniformly.
type Hotspot struct {
	uniform  Uniform
	hotspots []int
	fraction float64
}

// NewHotspot returns a pattern over n nodes where fraction of packets
// target one of the hotspot nodes (chosen uniformly among them).
func NewHotspot(n int, hotspots []int, fraction float64) Hotspot {
	if len(hotspots) == 0 {
		panic("traffic: hotspot pattern needs at least one hotspot")
	}
	if fraction < 0 || fraction > 1 {
		panic(fmt.Sprintf("traffic: hotspot fraction %v out of [0,1]", fraction))
	}
	return Hotspot{uniform: NewUniform(n), hotspots: hotspots, fraction: fraction}
}

// Name implements Pattern.
func (Hotspot) Name() string { return "hotspot" }

// Dest implements Pattern.
func (h Hotspot) Dest(src int, rng *sim.RNG) int {
	if rng.Bernoulli(h.fraction) {
		d := h.hotspots[rng.Intn(len(h.hotspots))]
		if d != src {
			return d
		}
	}
	return h.uniform.Dest(src, rng)
}

// Names lists the pattern names New recognises, in documentation order.
func Names() []string {
	return []string{"uniform", "transpose", "bitcomp", "bitrev", "tornado", "shuffle", "neighbor", "hotspot"}
}

// Known reports whether name is a pattern New recognises — the
// validation predicate spec checkers use to reject typos up front.
func Known(name string) bool {
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// New constructs a pattern by name over an w x h logical node grid.
// Recognised names: uniform, transpose, bitcomp, bitrev, tornado,
// hotspot (hotspot uses node 0 with fraction 0.2).
func New(name string, w, h int) (Pattern, error) {
	n := w * h
	switch name {
	case "uniform":
		return NewUniform(n), nil
	case "transpose":
		return NewTranspose(w, h), nil
	case "bitcomp":
		return NewBitComplement(n), nil
	case "bitrev":
		return NewBitReverse(n), nil
	case "tornado":
		return NewTornado(w, h), nil
	case "shuffle":
		return NewShuffle(n), nil
	case "neighbor":
		return NewNeighbor(w, h), nil
	case "hotspot":
		return NewHotspot(n, []int{0}, 0.2), nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", name)
	}
}
