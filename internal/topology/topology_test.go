package topology

import (
	"testing"
	"testing/quick"
)

func paperTopologies() map[string]*Topology {
	return map[string]*Topology{
		"mesh8x8":    NewMesh(8, 8),
		"cmesh4x4c4": NewCMesh(4, 4, 4),
		"fbfly4x4c4": NewFBfly(4, 4, 4),
	}
}

// Table 1's radices: mesh 5, CMesh 8, FBfly 10; all with 64 nodes.
func TestPaperConfigurations(t *testing.T) {
	cases := []struct {
		topo    *Topology
		radix   int
		routers int
		nodes   int
	}{
		{NewMesh(8, 8), 5, 64, 64},
		{NewCMesh(4, 4, 4), 8, 16, 64},
		{NewFBfly(4, 4, 4), 10, 16, 64},
	}
	for _, c := range cases {
		if c.topo.Radix != c.radix {
			t.Errorf("%s: radix %d, want %d", c.topo.Name, c.topo.Radix, c.radix)
		}
		if c.topo.NumRouters != c.routers {
			t.Errorf("%s: %d routers, want %d", c.topo.Name, c.topo.NumRouters, c.routers)
		}
		if c.topo.NumNodes != c.nodes {
			t.Errorf("%s: %d nodes, want %d", c.topo.Name, c.topo.NumNodes, c.nodes)
		}
	}
}

// Every Link port must be wired symmetrically (validate() already panics
// on violation at construction; this test makes the property explicit and
// guards against validate() being weakened).
func TestLinkSymmetry(t *testing.T) {
	for name, topo := range paperTopologies() {
		for r := 0; r < topo.NumRouters; r++ {
			for p, c := range topo.Conn[r] {
				if c.Kind != Link {
					continue
				}
				back := topo.Conn[c.PeerRouter][c.PeerPort]
				if back.Kind != Link || back.PeerRouter != r || back.PeerPort != p {
					t.Fatalf("%s: link %d.%d not symmetric", name, r, p)
				}
			}
		}
	}
}

// Node to (router, port) mapping is a bijection onto Local ports.
func TestNodeMappingBijective(t *testing.T) {
	for name, topo := range paperTopologies() {
		seen := make(map[[2]int]bool)
		for n := 0; n < topo.NumNodes; n++ {
			key := [2]int{topo.NodeRouter[n], topo.NodePort[n]}
			if seen[key] {
				t.Fatalf("%s: two nodes share local port %v", name, key)
			}
			seen[key] = true
			c := topo.Conn[key[0]][key[1]]
			if c.Kind != Local || c.Node != n {
				t.Fatalf("%s: node %d local port wiring wrong: %+v", name, n, c)
			}
		}
		// Count local ports equals node count.
		locals := 0
		for r := 0; r < topo.NumRouters; r++ {
			for _, c := range topo.Conn[r] {
				if c.Kind == Local {
					locals++
				}
			}
		}
		if locals != topo.NumNodes {
			t.Fatalf("%s: %d local ports for %d nodes", name, locals, topo.NumNodes)
		}
	}
}

// Mesh corner and edge routers have the correct unused ports.
func TestMeshEdgePorts(t *testing.T) {
	m := NewMesh(8, 8)
	nw := m.RouterAt(0, 0)
	if m.Conn[nw][m.WestPort()].Kind != Unused || m.Conn[nw][m.NorthPort()].Kind != Unused {
		t.Error("NW corner should have unused west and north ports")
	}
	if m.Conn[nw][m.EastPort()].Kind != Link || m.Conn[nw][m.SouthPort()].Kind != Link {
		t.Error("NW corner should have east and south links")
	}
	se := m.RouterAt(7, 7)
	if m.Conn[se][m.EastPort()].Kind != Unused || m.Conn[se][m.SouthPort()].Kind != Unused {
		t.Error("SE corner should have unused east and south ports")
	}
	center := m.RouterAt(4, 4)
	for _, p := range []int{m.EastPort(), m.WestPort(), m.NorthPort(), m.SouthPort()} {
		if m.Conn[center][p].Kind != Link {
			t.Errorf("center router port %d should be a link", p)
		}
	}
}

// Mesh link count: 2*w*h - w - h bidirectional channels per dimension pair.
func TestMeshLinkCount(t *testing.T) {
	m := NewMesh(8, 8)
	links := 0
	for r := 0; r < m.NumRouters; r++ {
		for _, c := range m.Conn[r] {
			if c.Kind == Link {
				links++
			}
		}
	}
	// 8x8 mesh: 7*8 horizontal + 8*7 vertical bidirectional channels,
	// each contributing two directed ports.
	if want := 2 * (7*8 + 8*7); links != want {
		t.Errorf("mesh directed link ports = %d, want %d", links, want)
	}
}

// FBfly: every router reaches every other router in its row and column
// directly, and has no unused ports.
func TestFBflyFullRowColumnConnectivity(t *testing.T) {
	f := NewFBfly(4, 4, 4)
	for r := 0; r < f.NumRouters; r++ {
		x, y := f.RouterXY(r)
		for _, c := range f.Conn[r] {
			if c.Kind == Unused {
				t.Fatalf("fbfly router %d has unused port", r)
			}
		}
		for tx := 0; tx < 4; tx++ {
			if tx == x {
				continue
			}
			c := f.Conn[r][f.XPort(x, tx)]
			if c.Kind != Link || c.PeerRouter != f.RouterAt(tx, y) {
				t.Fatalf("router %d x-port to column %d miswired: %+v", r, tx, c)
			}
			if c.Dim != DimX {
				t.Fatalf("x link misclassified as dim %d", c.Dim)
			}
		}
		for ty := 0; ty < 4; ty++ {
			if ty == y {
				continue
			}
			c := f.Conn[r][f.YPort(y, ty)]
			if c.Kind != Link || c.PeerRouter != f.RouterAt(x, ty) {
				t.Fatalf("router %d y-port to row %d miswired: %+v", r, ty, c)
			}
			if c.Dim != DimY {
				t.Fatalf("y link misclassified as dim %d", c.Dim)
			}
		}
	}
}

// RouterXY and RouterAt are inverses (property test).
func TestCoordinateRoundTrip(t *testing.T) {
	for name, topo := range paperTopologies() {
		prop := func(r uint8) bool {
			router := int(r) % topo.NumRouters
			x, y := topo.RouterXY(router)
			return topo.RouterAt(x, y) == router && x >= 0 && x < topo.W && y >= 0 && y < topo.H
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Dim classification: mesh E/W are X, N/S are Y, locals are Local.
func TestMeshPortDims(t *testing.T) {
	m := NewMesh(3, 3)
	center := m.RouterAt(1, 1)
	if d := m.Conn[center][0].Dim; d != DimLocal {
		t.Errorf("local port dim = %d", d)
	}
	for _, p := range []int{m.EastPort(), m.WestPort()} {
		if d := m.Conn[center][p].Dim; d != DimX {
			t.Errorf("port %d dim = %d, want DimX", p, d)
		}
	}
	for _, p := range []int{m.NorthPort(), m.SouthPort()} {
		if d := m.Conn[center][p].Dim; d != DimY {
			t.Errorf("port %d dim = %d, want DimY", p, d)
		}
	}
}

// FBfly port index helpers must be self-consistent: XPort(a,b) on the
// router at column a connects back via XPort(b,a).
func TestFBflyPortHelpers(t *testing.T) {
	f := NewFBfly(4, 4, 4)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if a == b {
				continue
			}
			pa, pb := f.XPort(a, b), f.XPort(b, a)
			if pa < f.Conc || pa >= f.Conc+3 || pb < f.Conc || pb >= f.Conc+3 {
				t.Fatalf("XPort(%d,%d)=%d or XPort(%d,%d)=%d out of x-port range", a, b, pa, b, a, pb)
			}
		}
	}
	// Distinct destination columns map to distinct ports.
	seen := map[int]bool{}
	for b := 0; b < 4; b++ {
		if b == 2 {
			continue
		}
		p := f.XPort(2, b)
		if seen[p] {
			t.Fatalf("XPort(2,%d) reuses port %d", b, p)
		}
		seen[p] = true
	}
}

func TestConstructorPanicsOnBadDims(t *testing.T) {
	for _, f := range []func(){
		func() { NewMesh(0, 8) },
		func() { NewCMesh(4, -1, 4) },
		func() { NewFBfly(4, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad dimensions did not panic")
				}
			}()
			f()
		}()
	}
}
