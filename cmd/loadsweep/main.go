// Command loadsweep regenerates Figure 8: average packet latency and
// accepted throughput versus offered load for the 8x8 mesh under the four
// switch allocation schemes (IF, WF, AP, VIX), plus a saturation point
// per scheme. The 40-point grid fans out across -parallel workers via
// internal/harness; -resume checkpoints completed points to a JSONL
// manifest so an interrupted sweep picks up where it stopped.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"vix/internal/experiments"
	"vix/internal/harness"
	"vix/internal/plot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadsweep: ")
	var (
		warmup   = flag.Int("warmup", 2000, "warmup cycles")
		measure  = flag.Int("measure", 8000, "measurement cycles")
		seed     = flag.Uint64("seed", 1, "random seed")
		showPlot = flag.Bool("plot", false, "render ASCII latency and throughput charts")
		parallel = flag.Int("parallel", 0, "worker count (default GOMAXPROCS)")
		workers  = flag.Int("workers", 1, "parallel-tick workers per simulation (1 serial, <0 GOMAXPROCS); output is byte-identical for any value")
		resume   = flag.String("resume", "", "JSONL manifest: checkpoint completed points and skip them on rerun")
		verbose  = flag.Bool("v", false, "log per-point telemetry (wall time, cycles/sec) to stderr")
	)
	flag.Parse()

	p := experiments.DefaultParams()
	p.Warmup, p.Measure, p.Seed = *warmup, *measure, *seed
	p.TickWorkers = *workers
	opt := harness.Options{Parallel: *parallel, Manifest: *resume}
	if *verbose {
		opt.OnDone = func(r harness.Result) {
			if r.Cached {
				log.Printf("%s: cached (manifest)", r.Name)
				return
			}
			log.Printf("%s: %v (%.0f cycles/sec)", r.Name, r.Telemetry.Duration().Round(time.Millisecond), r.Telemetry.CyclesPerSec)
		}
	}
	pts, err := experiments.Figure8Opt(context.Background(), p, nil, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 8: 8x8 mesh, uniform random, 4-flit packets, 6 VCs")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\toffered (pkts/cyc/node)\tavg latency (cycles)\taccepted (flits/cyc/node)")
	for _, pt := range pts {
		load := fmt.Sprintf("%.2f", pt.Rate)
		if pt.Rate == 0 {
			load = "saturation"
		}
		fmt.Fprintf(w, "%s\t%s\t%.2f\t%.4f\n", pt.Scheme, load, pt.AvgLatency, pt.Throughput)
	}
	w.Flush()

	// Headline ratios at saturation.
	sat := map[string]experiments.Fig8Point{}
	for _, pt := range pts {
		if pt.Rate == 0 {
			sat[pt.Scheme] = pt
		}
	}

	if *showPlot {
		byScheme := map[string]*plot.Series{}
		var order []string
		for _, pt := range pts {
			if pt.Rate == 0 {
				continue // saturation points have no offered-load x
			}
			s, ok := byScheme[pt.Scheme]
			if !ok {
				s = &plot.Series{Label: pt.Scheme}
				byScheme[pt.Scheme] = s
				order = append(order, pt.Scheme)
			}
			s.X = append(s.X, pt.Rate)
			s.Y = append(s.Y, pt.AvgLatency)
		}
		var latSeries, thrSeries []plot.Series
		for _, name := range order {
			latSeries = append(latSeries, *byScheme[name])
		}
		for _, name := range order {
			s := plot.Series{Label: name}
			for _, pt := range pts {
				if pt.Scheme == name && pt.Rate > 0 {
					s.X = append(s.X, pt.Rate)
					s.Y = append(s.Y, pt.Throughput)
				}
			}
			thrSeries = append(thrSeries, s)
		}
		fmt.Println()
		fmt.Print(plot.Render("avg latency (cycles) vs offered load (pkts/cyc/node)", latSeries, 60, 14))
		fmt.Println()
		fmt.Print(plot.Render("accepted throughput (flits/cyc/node) vs offered load", thrSeries, 60, 14))
	}
	fmt.Printf("\nVIX over IF at saturation: throughput %+.1f%% (paper +16.2%%), latency %+.1f%% (paper -36%%)\n",
		100*(sat["VIX"].Throughput/sat["IF"].Throughput-1),
		100*(sat["VIX"].AvgLatency/sat["IF"].AvgLatency-1))
	fmt.Printf("VIX over AP at saturation: throughput %+.1f%% (paper +15.9%%)\n",
		100*(sat["VIX"].Throughput/sat["AP"].Throughput-1))
	fmt.Printf("AP over IF at saturation:  throughput %+.1f%% (paper +0.3%%)\n",
		100*(sat["AP"].Throughput/sat["IF"].Throughput-1))
}
