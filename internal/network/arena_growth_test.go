package network

import (
	"testing"

	"vix/internal/alloc"
	"vix/internal/router"
	"vix/internal/topology"
)

// TestArenaGrowthByteIdentical pins the claim in FlitArena's contract
// that slab growth is unobservable: a saturated run that starts at the
// minimum slab size and doubles repeatedly mid-measurement must produce
// exactly the same statistics as the same run with the slab pre-sized so
// it never grows. Which slot a flit lands in, and when the slab happens
// to grow, must have no effect on simulation behaviour.
func TestArenaGrowthByteIdentical(t *testing.T) {
	run := func(capacity int) (interface{}, int, int) {
		topo := topology.NewMesh(6, 6)
		cfg := meshConfig(topo, alloc.KindSeparableIF, 2, router.PolicyBalanced)
		cfg.MaxInjection = true
		cfg.InjectionRate = 0
		cfg.Seed = 11
		cfg.FlitArenaCapacity = capacity
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		initial := n.flits.Cap()
		s := n.Measure(2500)
		return s, initial, n.flits.Cap()
	}

	grown, grownInitial, grownFinal := run(0)
	if grownFinal <= grownInitial {
		t.Fatalf("growth run never grew its slab (cap %d -> %d); the test is not exercising growth", grownInitial, grownFinal)
	}

	sized, sizedInitial, sizedFinal := run(2 * grownFinal)
	if sizedFinal != sizedInitial {
		t.Fatalf("pre-sized run still grew (cap %d -> %d); increase the pre-size", sizedInitial, sizedFinal)
	}

	if grown != sized {
		t.Fatalf("slab growth perturbed the simulation\ngrown (cap %d->%d):    %+v\npre-sized (cap %d): %+v",
			grownInitial, grownFinal, grown, sizedInitial, sized)
	}
}
