package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// JobID content-hashes a job's name and spec into its store key. The
// spec's canonical JSON encoding is hashed (encoding/json serialises
// struct fields in declaration order and map keys sorted, so equal specs
// always hash equally). Everything that can change the result must be in
// the name or the spec; nothing else may be, or identical work stops
// deduplicating. The ID is what makes the result store content-addressed:
// any client, any process, any run that derives the same ID is asking for
// the same simulation.
func JobID(job Job) (string, error) {
	spec, err := json.Marshal(job.Spec)
	if err != nil {
		return "", fmt.Errorf("harness: job %s: spec not serialisable: %w", job.Name, err)
	}
	h := sha256.New()
	h.Write([]byte(job.Name))
	h.Write([]byte{0})
	h.Write(spec)
	return hex.EncodeToString(h.Sum(nil)[:12]), nil
}
