// Package merge seeds a phase overlap: the job (phase A) reads a field
// the caller rewrites after the Do call (phase B), so workers>1 would
// diverge from the serial loop even without a data race. The job's own
// per-index write carries a //vixlint:shared waiver, exercising the
// waiver path alongside the finding.
package merge

import "fix/internal/sim"

// Grid carries per-index slots plus a merged total.
type Grid struct {
	slots []int
	total int
}

// step is phase A: it reads g.total, which phase B mutates.
func (g *Grid) step(i int) {
	v := g.total + i
	//vixlint:shared slots[i] is the job's own index; Do hands each index out exactly once
	g.slots[i] = v
}

// Run fans out phase A, then merges in phase B.
func (g *Grid) Run(p *sim.Pool) {
	p.Do(len(g.slots), g.step)
	for i := range g.slots {
		g.total += g.slots[i]
	}
}
