package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vix/internal/lint"
)

// writeTree materialises a module under a temp dir from path -> source.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		full := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// renderAll formats findings the way cmd/vixlint prints them.
func renderAll(findings []lint.Finding) []string {
	out := make([]string, len(findings))
	for i, f := range findings {
		out[i] = f.String()
	}
	return out
}

// cachedModule is a three-package module with one violation, used by
// every cache test: pkg c imports a, pkg b stands alone.
func cachedModule() map[string]string {
	return map[string]string{
		"go.mod": "module fix\n\ngo 1.22\n",
		"internal/a/a.go": `package a

// V is read by package c.
var V = 1
`,
		"internal/b/b.go": `package b

import "time"

// Stamp violates determinism/time.
func Stamp() int64 { return time.Now().Unix() }
`,
		"internal/c/c.go": `package c

import "fix/internal/a"

// Get depends on package a.
func Get() int { return a.V }
`,
	}
}

// TestCacheWarmRunDoesNoWork: the second run over an unchanged module
// serves every package from the cache, analyzes nothing, and reports
// byte-identical findings.
func TestCacheWarmRunDoesNoWork(t *testing.T) {
	root := writeTree(t, cachedModule())
	opts := lint.Options{Cache: true}

	cold, coldStats, err := lint.CheckWithOptions(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.Cached != 0 || coldStats.Analyzed != coldStats.Packages {
		t.Errorf("cold stats = %+v; want zero cached, all analyzed", coldStats)
	}
	if len(cold) != 1 || cold[0].Rule != "determinism/time" {
		t.Fatalf("cold findings = %v; want exactly the seeded determinism/time", renderAll(cold))
	}

	warm, warmStats, err := lint.CheckWithOptions(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.Analyzed != 0 || warmStats.Cached != warmStats.Packages {
		t.Errorf("warm stats = %+v; want everything cached, nothing analyzed", warmStats)
	}
	got, want := renderAll(warm), renderAll(cold)
	if len(got) != len(want) {
		t.Fatalf("warm findings %v != cold findings %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("warm finding %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestCacheEditInvalidatesOnlyTouchedPackage: editing a leaf package
// re-analyzes just that package; editing a dependency re-analyzes it and
// its reverse dependencies, but not unrelated packages.
func TestCacheEditInvalidatesOnlyTouchedPackage(t *testing.T) {
	root := writeTree(t, cachedModule())
	opts := lint.Options{Cache: true}
	if _, _, err := lint.CheckWithOptions(root, opts); err != nil {
		t.Fatal(err)
	}

	// Edit the standalone package b: only b misses.
	bFile := filepath.Join(root, "internal", "b", "b.go")
	src, err := os.ReadFile(bFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bFile, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stats, err := lint.CheckWithOptions(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Analyzed != 1 || stats.Cached != stats.Packages-1 {
		t.Errorf("after editing b: stats = %+v; want exactly 1 analyzed", stats)
	}

	// Edit dependency a: both a and its importer c miss; b stays cached.
	aFile := filepath.Join(root, "internal", "a", "a.go")
	src, err = os.ReadFile(aFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(aFile, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stats, err = lint.CheckWithOptions(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Analyzed != 2 || stats.Cached != stats.Packages-2 {
		t.Errorf("after editing a: stats = %+v; want a and c analyzed, b cached", stats)
	}
}

// TestCacheDisabled: with Cache off every run analyzes everything and
// no cache directory appears.
func TestCacheDisabled(t *testing.T) {
	root := writeTree(t, cachedModule())
	for i := 0; i < 2; i++ {
		_, stats, err := lint.CheckWithOptions(root, lint.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Cached != 0 || stats.Analyzed != stats.Packages {
			t.Errorf("run %d stats = %+v; want no caching", i, stats)
		}
	}
	if _, err := os.Stat(filepath.Join(root, ".vixlint")); !os.IsNotExist(err) {
		t.Errorf(".vixlint directory exists despite Cache: false (stat err = %v)", err)
	}
}

// TestCacheCustomDirAndWorkers: CacheDir relocates the cache, and an
// explicit worker bound is reported back in Stats.
func TestCacheCustomDirAndWorkers(t *testing.T) {
	root := writeTree(t, cachedModule())
	dir := filepath.Join(t.TempDir(), "cachehome")
	opts := lint.Options{Cache: true, CacheDir: dir, Workers: 2}
	_, stats, err := lint.CheckWithOptions(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 2 {
		t.Errorf("stats.Workers = %d, want 2", stats.Workers)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("custom cache dir has no entries (err = %v)", err)
	}
	if _, err := os.Stat(filepath.Join(root, ".vixlint")); !os.IsNotExist(err) {
		t.Errorf("default .vixlint created despite CacheDir override (stat err = %v)", err)
	}
	_, stats, err = lint.CheckWithOptions(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Analyzed != 0 {
		t.Errorf("warm run with custom dir analyzed %d packages, want 0", stats.Analyzed)
	}
}

// TestCacheHotMarkerEditInvalidates: a //vixlint:hot marker is plain
// file content, so adding one re-keys exactly the package it touches —
// the escape gate's warm-skip state chains the same package keys, so
// markers reach it through file hashes without a separate fingerprint.
func TestCacheHotMarkerEditInvalidates(t *testing.T) {
	root := writeTree(t, cachedModule())
	opts := lint.Options{Cache: true}
	if _, _, err := lint.CheckWithOptions(root, opts); err != nil {
		t.Fatal(err)
	}
	aFile := filepath.Join(root, "internal", "a", "a.go")
	src, err := os.ReadFile(aFile)
	if err != nil {
		t.Fatal(err)
	}
	marked := strings.Replace(string(src), "var V = 1", "//vixlint:hot\nvar V = 1", 1)
	if marked == string(src) {
		t.Fatal("marker splice found nothing to replace")
	}
	if err := os.WriteFile(aFile, []byte(marked), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stats, err := lint.CheckWithOptions(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	// a changed, and c chains a's key; standalone b must stay cached.
	if stats.Analyzed != 2 || stats.Cached != stats.Packages-2 {
		t.Errorf("after hot-marker edit: stats = %+v; want a and c analyzed, b cached", stats)
	}
}

// TestCacheOwnershipRootsInvalidate: editing ShardOwnershipRoots
// changes parallel/* verdicts without touching any source file; the
// ownership fingerprint in the key chain must flush every entry.
func TestCacheOwnershipRootsInvalidate(t *testing.T) {
	root := writeTree(t, cachedModule())
	opts := lint.Options{Cache: true}
	if _, _, err := lint.CheckWithOptions(root, opts); err != nil {
		t.Fatal(err)
	}
	lint.ShardOwnershipRoots["internal/zz"] = []lint.OwnershipRoot{
		{Root: "captured zz", Why: "cache-test entry"},
	}
	defer delete(lint.ShardOwnershipRoots, "internal/zz")
	_, stats, err := lint.CheckWithOptions(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cached != 0 || stats.Analyzed != stats.Packages {
		t.Errorf("after ownership-root edit: stats = %+v; want every entry flushed", stats)
	}
}
