// Package service exposes the simulator as a long-running HTTP API —
// the serving layer behind cmd/vixd. The data model is hive-style:
// clients open a *suite* (POST /suites, optionally with a whole grid of
// inline cases), add *cases* to it (POST /suites/{id}/cases, one
// validated experiment spec each), and stream per-case results as they
// complete (GET /suites/{id}/results, JSONL or SSE) — before the suite
// closes, not after.
//
// Every case executes through internal/harness on the server's shared
// content-addressed result store, which is what makes the service
// tractable under repeated load: the simulator is deterministic
// (vixlint-enforced), so a spec's content hash is an exact identity for
// its result. Identical specs — from any client, across suites, across
// server restarts — are served from the store without simulating, and N
// identical specs in flight at once simulate exactly once
// (single-flight). Admission is metered per client by a token bucket;
// exhausted clients get 429 with a Retry-After hint rather than a queue
// slot.
//
// Concurrency lives in exactly two places, both fed by plain state
// under the server mutex: a fixed pool of runner goroutines executing
// queued cases, and one watcher channel per suite that streaming
// handlers wait on. Results never depend on scheduling — a case's value
// is determined by its spec alone, and result streams are emitted in
// case order, so two clients posting the same grid read byte-identical
// streams regardless of runner interleaving. The package is on
// vixlint's concurrency allowlist for these goroutines; it contains no
// wall-clock reads (the quota clock is injected by cmd/vixd).
package service

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sync"

	"vix/internal/harness"
	"vix/internal/store"
)

// Config configures a Server.
type Config struct {
	// StorePath is the JSONL result-store file shared by every suite.
	// Empty means an in-memory store (results do not survive restarts).
	StorePath string

	// Store, when non-nil, is an already-open store to use instead of
	// StorePath. The server does not close it. Tests use this to share
	// one store between a server and direct assertions.
	Store *store.Store

	// Runners is the number of cases executing concurrently. Values
	// <= 0 mean GOMAXPROCS.
	Runners int

	// Workers is the parallel-tick width of each simulation (see
	// network.Config.Workers): 1 serial, <0 GOMAXPROCS. Output is
	// byte-identical for any value, so it is a wall-clock knob only and
	// never part of a case's identity.
	Workers int

	// QuotaRate is the per-client admission rate in cases per second;
	// QuotaBurst is the bucket capacity (defaults to QuotaRate when
	// zero). A zero QuotaRate disables quotas.
	QuotaRate  float64
	QuotaBurst float64

	// Now returns the current time in nanoseconds for quota refill. The
	// service itself never reads the wall clock — cmd/vixd injects the
	// real one, tests inject fakes. Required when QuotaRate > 0.
	Now func() int64

	// Log receives operational messages. Nil means silent.
	Log *log.Logger
}

// Server is the vixd service: suite registry, case queue, runner pool,
// quotas, and the shared result store behind one http.Handler.
type Server struct {
	workers int
	store   *store.Store
	// ownStore records that the server opened the store itself and must
	// close it on Close.
	ownStore bool
	quotas   *quotas
	log      *log.Logger

	mu        sync.Mutex
	cond      *sync.Cond // signals runners: queue grew or server closing
	queue     []*testCase
	suites    map[string]*suite
	order     []*suite // creation order, for deterministic accounting
	nextSuite int
	closing   bool
	wg        sync.WaitGroup // runner goroutines

	handler http.Handler
}

// New starts a server: opens (or adopts) the result store and launches
// the runner pool. The caller must Close it.
func New(cfg Config) (*Server, error) {
	if cfg.QuotaRate > 0 && cfg.Now == nil {
		return nil, fmt.Errorf("service: Config.Now is required when QuotaRate > 0 (the service never reads the wall clock itself)")
	}
	st := cfg.Store
	own := false
	if st == nil {
		var err error
		if st, err = store.Open(cfg.StorePath); err != nil {
			return nil, err
		}
		own = true
	}
	runners := cfg.Runners
	if runners <= 0 {
		runners = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		workers:  cfg.Workers,
		store:    st,
		ownStore: own,
		quotas:   newQuotas(cfg.QuotaRate, cfg.QuotaBurst, cfg.Now),
		log:      cfg.Log,
		suites:   make(map[string]*suite),
	}
	s.cond = sync.NewCond(&s.mu)
	s.handler = s.routes()
	for i := 0; i < runners; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	s.logf("serving with %d runners, store %q (%d entries)", runners, st.Path(), st.Len())
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Close drains and stops the server: queued cases run to completion,
// runners exit, and the store is closed if the server opened it. New
// case submissions racing Close are either executed before Close
// returns or rejected with 503.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closing = true
	s.cond.Broadcast()
	// Wake every results streamer so open streams observe the shutdown
	// instead of waiting on suites that will never close.
	for _, su := range s.order {
		su.mu.Lock()
		su.bumpLocked()
		su.mu.Unlock()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	n := len(s.suites)
	s.mu.Unlock()
	s.logf("drained: %d suites, store %d entries", n, s.store.Len())
	if s.ownStore {
		return s.store.Close()
	}
	return nil
}

// StoreStats exposes the result store's hit/miss/dedup accounting
// (also served as /statsz).
func (s *Server) StoreStats() store.Stats { return s.store.Stats() }

// logf writes one operational log line if a logger is configured.
func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		s.log.Printf(format, args...)
	}
}

// enqueue admits cases into the run queue. It fails when the server is
// draining.
func (s *Server) enqueue(cases []*testCase) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return fmt.Errorf("service: server is shutting down")
	}
	s.queue = append(s.queue, cases...)
	s.cond.Broadcast()
	return nil
}

// runner is one worker goroutine: it pops queued cases and executes
// them until the server is closing and the queue is empty, so a drain
// finishes all admitted work.
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closing {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		tc := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		s.runCase(tc)
	}
}

// runCase executes one case through the harness over the shared store.
// Identical specs already stored are served without simulating;
// identical specs in flight are waited on and shared (single-flight).
func (s *Server) runCase(tc *testCase) {
	tc.setRunning()
	res, err := harness.Run(context.Background(), []harness.Job{tc.job(s.workers)}, harness.Options{
		Parallel: 1,
		Store:    s.store,
	})
	if err != nil {
		s.logf("%s/%s (%s): failed: %v", tc.suite.id, tc.id, tc.label, err)
		tc.setFailed(err)
		return
	}
	r := res[0]
	how := "simulated"
	if r.Cached {
		how = "served from store"
	}
	s.logf("%s/%s (%s): %s", tc.suite.id, tc.id, tc.label, how)
	tc.setDone(r)
}
