// Package lint implements vixlint, the simulator's own static-analysis
// pass. It is built from scratch on the standard library's go/parser,
// go/ast, go/token and go/types packages (no golang.org/x/tools) and
// enforces the invariants the simulator's reproducibility story depends
// on. Three analyzer families run over every non-test package of the
// module:
//
// Determinism (internal/* only). Every experiment must be exactly
// reproducible from a seed, with all randomness flowing through sim.RNG:
//
//   - determinism/time: no calls to time.Now or time.Since; simulated
//     time is the only clock.
//   - determinism/rand: no imports of math/rand or math/rand/v2; the
//     global generator is seeded per-process, not per-experiment.
//   - determinism/goroutine: no go statements; goroutine interleaving is
//     a scheduler decision, not a seed decision. The sole exception is
//     the ConcurrencyAllowlist (internal/harness), the orchestration
//     layer that fans out self-contained simulations and merges their
//     results in canonical order.
//   - determinism/maprange: no for-range over a map whose body writes to
//     state declared outside the loop; Go randomises map iteration order
//     per run, so such writes leak nondeterminism into results.
//
// A determinism finding on a line carrying (or immediately preceded by) a
// "//vixlint:ordered <justification>" comment is waived; the
// justification text is mandatory (rule determinism/waiver).
//
// Allocator contracts (packages named alloc under internal/):
//
//   - contracts/registry: every Kind constant must appear in the Kinds()
//     list and have a constructor case in New.
//   - contracts/impl: the concrete type New constructs for a Kind must
//     implement Allocator.
//   - contracts/name: that type's Name method must return a single string
//     constant equal to the Kind's value.
//   - contracts/mutate: no function taking a *RequestSet parameter may
//     mutate the set through it — no assigning to rs.Requests or its
//     elements, no append(rs.Requests, ...), no sorting it in place.
//     RequestSets are owned by the caller and reused across allocators;
//     mutation corrupts every comparison downstream.
//   - contracts/scratch: Allocate implementations must not make a fresh
//     []Grant inside the method body. The Allocate contract returns
//     allocator-owned scratch (valid until the next Allocate or Reset
//     call), sized from Config at construction, so the steady-state
//     cycle loop performs zero heap allocations. A justified
//     "//vixlint:alloc <justification>" comment waives the rule
//     (rule contracts/waiver polices empty justifications).
//
// Hygiene (internal/* only; cmd/ and examples/ may print):
//
//   - hygiene/print: no fmt.Print/Printf/Println, no references to
//     os.Stdout or os.Stderr, no builtin print/println. Library code
//     returns values; commands do the talking.
//   - hygiene/panic: panic arguments must carry a constant message
//     prefixed with the package name ("alloc: ...", "router %d: ...") so
//     a crash names its origin; panic(err) and other opaque values are
//     rejected.
//
// Findings are reported as "file:line: rule: message". The pass is run by
// cmd/vixlint and by the self-check test in this package, which makes
// `go test ./...` fail on any new violation.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"vix/internal/sim"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos  token.Position // file, line, column
	Rule string         // e.g. "determinism/time"
	Msg  string
}

// String formats the finding as "file:line: rule: message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Check loads the module rooted at root and runs every analyzer family,
// returning findings sorted by file and line.
func Check(root string) ([]Finding, error) {
	mod, err := Load(root)
	if err != nil {
		return nil, err
	}
	return CheckModule(mod), nil
}

// CheckModule runs every analyzer family over an already-loaded module.
func CheckModule(mod *Module) []Finding {
	var fs []Finding
	for _, pkg := range mod.Packages() {
		c := &checker{
			mod:          mod,
			pkg:          pkg,
			waivers:      collectWaivers(mod, pkg, waiverDirective),
			allocWaivers: collectWaivers(mod, pkg, allocWaiverDirective),
		}
		if isInternal(pkg.Path) {
			fs = append(fs, c.determinism()...)
			fs = append(fs, c.hygiene()...)
		}
		if isAllocPackage(pkg) {
			fs = append(fs, c.contracts()...)
			fs = append(fs, c.scratch()...)
		}
		fs = append(fs, c.mutations()...)
		fs = append(fs, c.waiverHygiene()...)
	}
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return fs
}

// isInternal reports whether the import path is an internal library
// package (subject to the determinism and hygiene families).
func isInternal(path string) bool {
	return strings.Contains(path, "/internal/") || strings.HasSuffix(path, "/internal")
}

// isAllocPackage reports whether pkg is an allocator-registry package
// (subject to the contracts family).
func isAllocPackage(pkg *Package) bool {
	return pkg.Name == "alloc" && strings.HasSuffix(pkg.Path, "internal/alloc")
}

// checker carries per-package analysis state.
type checker struct {
	mod          *Module
	pkg          *Package
	waivers      map[string]map[int]string // file -> line -> justification ("" = missing)
	allocWaivers map[string]map[int]string // same, for contracts/scratch waivers
}

// report appends a finding at pos.
func (c *checker) report(fs *[]Finding, pos token.Pos, rule, format string, args ...any) {
	*fs = append(*fs, Finding{
		Pos:  c.mod.Fset.Position(pos),
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// waiverDirective is the comment marker that suppresses determinism
// findings on its line (or the line directly below the comment).
const waiverDirective = "//vixlint:ordered"

// allocWaiverDirective suppresses contracts/scratch findings the same
// way: an Allocate method that deliberately allocates its grants slice
// per call carries the directive with a justification.
const allocWaiverDirective = "//vixlint:alloc"

// collectWaivers scans a package's comments for the given waiver
// directive.
func collectWaivers(mod *Module, pkg *Package, directive string) map[string]map[int]string {
	ws := make(map[string]map[int]string)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, cm := range cg.List {
				rest, ok := strings.CutPrefix(cm.Text, directive)
				if !ok {
					continue
				}
				pos := mod.Fset.Position(cm.Pos())
				if ws[pos.Filename] == nil {
					ws[pos.Filename] = make(map[int]string)
				}
				ws[pos.Filename][pos.Line] = strings.TrimSpace(rest)
			}
		}
	}
	return ws
}

// waived reports whether a determinism finding at pos is covered by a
// waiver on the same line or the line immediately above.
func (c *checker) waived(pos token.Pos) bool {
	return waivedIn(c.mod, c.waivers, pos)
}

// allocWaived is the contracts/scratch analogue of waived.
func (c *checker) allocWaived(pos token.Pos) bool {
	return waivedIn(c.mod, c.allocWaivers, pos)
}

// waivedIn reports whether ws has a directive on pos's line or the line
// immediately above.
func waivedIn(mod *Module, ws map[string]map[int]string, pos token.Pos) bool {
	p := mod.Fset.Position(pos)
	lines := ws[p.Filename]
	if lines == nil {
		return false
	}
	_, same := lines[p.Line]
	_, above := lines[p.Line-1]
	return same || above
}

// waiverHygiene reports waiver directives that lack a justification.
// A waiver is an auditable exception; "because" is not an audit trail.
func (c *checker) waiverHygiene() []Finding {
	var fs []Finding
	for _, file := range c.pkg.Files {
		name := c.mod.Fset.Position(file.Pos()).Filename
		for _, line := range sim.SortedKeys(c.waivers[name]) {
			if c.waivers[name][line] == "" {
				fs = append(fs, Finding{
					Pos:  token.Position{Filename: name, Line: line},
					Rule: "determinism/waiver",
					Msg:  "vixlint:ordered waiver needs a justification explaining why iteration order cannot leak into results",
				})
			}
		}
		for _, line := range sim.SortedKeys(c.allocWaivers[name]) {
			if c.allocWaivers[name][line] == "" {
				fs = append(fs, Finding{
					Pos:  token.Position{Filename: name, Line: line},
					Rule: "contracts/waiver",
					Msg:  "vixlint:alloc waiver needs a justification for allocating a fresh grants slice per call",
				})
			}
		}
	}
	return fs
}

// eachFunc invokes fn for every function and method declaration with a
// body in the package.
func (c *checker) eachFunc(fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, file := range c.pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(file, fd)
			}
		}
	}
}
