// Package lint implements vixlint, the simulator's own static-analysis
// pass. It is built from scratch on the standard library's go/parser,
// go/ast, go/token and go/types packages (no golang.org/x/tools) and
// enforces the invariants the simulator's reproducibility story depends
// on. Analysis is inter-procedural: a module-wide call graph (direct
// calls, interface dispatch via method sets, indirect calls through
// address-taken func values) carries determinism taint from violation
// sites to the entry points that can reach them. Five analyzer families
// run over every non-test package of the module:
//
// Determinism (internal/* only). Every experiment must be exactly
// reproducible from a seed, with all randomness flowing through sim.RNG:
//
//   - determinism/time: no calls to time.Now or time.Since; simulated
//     time is the only clock.
//   - determinism/rand: no imports of math/rand or math/rand/v2; the
//     global generator is seeded per-process, not per-experiment.
//   - determinism/goroutine: no go statements; goroutine interleaving is
//     a scheduler decision, not a seed decision. The exceptions are the
//     ConcurrencyAllowlist packages (internal/harness, the orchestration
//     layer, and internal/lint's own analysis engine).
//   - determinism/maprange: no for-range over a map whose body writes to
//     state declared outside the loop; Go randomises map iteration order
//     per run, so such writes leak nondeterminism into results.
//   - determinism/reach: no exported function or method of an internal
//     package may transitively reach an unwaived violation site of the
//     kinds above through any chain of calls (see taint.go). Waivers and
//     the ConcurrencyAllowlist propagate along call edges: a waived site
//     taints nobody.
//
// A determinism finding on a line carrying (or immediately preceded by) a
// "//vixlint:ordered <justification>" comment is waived; the
// justification text is mandatory (rule determinism/waiver).
//
// Allocator contracts (packages named alloc under internal/):
//
//   - contracts/registry: every Kind constant must appear in the Kinds()
//     list and have a constructor case in New.
//   - contracts/impl: the concrete type New constructs for a Kind must
//     implement Allocator.
//   - contracts/name: that type's Name method must return a single string
//     constant equal to the Kind's value.
//   - contracts/mutate: no function taking a *RequestSet parameter may
//     mutate the set through it — no assigning to rs.Requests or its
//     elements, no append(rs.Requests, ...), no sorting it in place.
//     RequestSets are owned by the caller and reused across allocators;
//     mutation corrupts every comparison downstream.
//   - contracts/scratch: Allocate implementations must not make a fresh
//     []Grant inside the method body. The Allocate contract returns
//     allocator-owned scratch (valid until the next Allocate or Reset
//     call), sized from Config at construction, so the steady-state
//     cycle loop performs zero heap allocations. A justified
//     "//vixlint:alloc <justification>" comment waives the rule
//     (rule contracts/waiver polices empty justifications).
//
// Scratch escape (all packages except the alloc registries; see
// escape.go): the []Grant returned by Allocate is allocator-owned
// scratch.
//
//   - escape/store: grants must not be stored into struct fields,
//     package-level variables, composite literals, or channels.
//   - escape/retain: grants bound before a later Allocate or Reset call
//     on the same allocator must not be used after it.
//
// Exhaustiveness (internal/* only; see exhaustive.go):
//
//   - exhaustive/switch: a switch over a module-declared enum type
//     (alloc.Kind, router.FlitType, ...) must cover every declared
//     constant or carry an explicit default.
//
// Hygiene (internal/* only; cmd/ and examples/ may print):
//
//   - hygiene/print: no fmt.Print/Printf/Println, no references to
//     os.Stdout or os.Stderr, no builtin print/println. Library code
//     returns values; commands do the talking.
//   - hygiene/panic: panic arguments must carry a constant message
//     prefixed with the package name ("alloc: ...", "router %d: ...") so
//     a crash names its origin; panic(err) and other opaque values are
//     rejected.
//   - hygiene/close (cmd/ only): a binary that binds a *network.Network
//     must Close it in the same function — a Workers>1 network parks
//     pool goroutines between cycles. Handles returned to a caller are
//     the caller's problem (and matched there by the same rule).
//
// Shard ownership (every sim.Pool.Do site; see writeset.go and
// shardown.go): a write-effect analysis summarises what each function
// writes through references — (root, path) pairs like
// "(*Network).shards[].ems" — and propagates the summaries over the
// call graph, interface dispatch included.
//
//   - parallel/sharedwrite: everything a pool job's cone writes must
//     fall under a shard-owned root declared in ShardOwnershipRoots;
//     anything else is a cross-shard race candidate, reported with the
//     rendered call path from job to writing statement.
//   - parallel/phase: the job (phase A) must not read state the
//     enclosing function mutates after the Do call (phase B, the serial
//     merge), or workers>1 diverges from the serial loop without any
//     data race.
//   - A finding site carrying a "//vixlint:shared <justification>"
//     comment is waived; parallel/waiver polices empty justifications.
//
// Escape gate (vixlint -escapes; see escapegate.go): heap escapes from
// `go build -gcflags=-m` landing inside the forward call cones of
// //vixlint:hot-marked functions are diffed against the committed
// baseline .vixlint/escapes.golden — escape/new fails on a new or
// multiplied escape with the compiler's file:line and reason,
// escape/gone fails when the baseline rots, and escape/marker flags
// hot markers attached to nothing. Regenerate with -update-escapes.
//
// Waiver hygiene (all packages): rule waiver/stale flags any
// //vixlint:ordered, //vixlint:alloc or //vixlint:shared directive that
// suppresses nothing; waivers are auditable exceptions and dead ones
// rot.
//
// Findings are reported as "file:line: rule: message". The engine
// (engine.go) fans per-package analysis out on a bounded worker pool
// with deterministic merged output, and cmd/vixlint adds a content-hash
// finding cache under .vixlint/ so warm reruns skip unchanged packages.
// The self-check test in this package runs the same analysis, which
// makes `go test ./...` fail on any new violation.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"vix/internal/sim"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos  token.Position // file, line, column
	Rule string         // e.g. "determinism/time"
	Msg  string
}

// String formats the finding as "file:line: rule: message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Check loads the module rooted at root and runs every analyzer family,
// returning findings sorted by file and line. It is the uncached
// entry point used by tests; cmd/vixlint uses CheckWithOptions.
func Check(root string) ([]Finding, error) {
	mod, err := Load(root)
	if err != nil {
		return nil, err
	}
	return CheckModule(mod), nil
}

// isInternal reports whether the import path is an internal library
// package (subject to the determinism and hygiene families).
func isInternal(path string) bool {
	return strings.Contains(path, "/internal/") || strings.HasSuffix(path, "/internal")
}

// isCmdPath reports whether the import path is a command binary
// (subject to hygiene/close).
func isCmdPath(path string) bool {
	return strings.Contains(path, "/cmd/") || strings.HasSuffix(path, "/cmd")
}

// isAllocPackage reports whether pkg is an allocator-registry package
// (subject to the contracts family).
func isAllocPackage(pkg *Package) bool {
	return pkg.Name == "alloc" && strings.HasSuffix(pkg.Path, "internal/alloc")
}

// checker carries per-package analysis state. A checker is only ever
// touched by one goroutine at a time: the single-threaded source phase
// first, then exactly one pool worker.
type checker struct {
	mod           *Module
	pkg           *Package
	waivers       *waiverSet
	allocWaivers  *waiverSet
	sharedWaivers *waiverSet
	// early holds the findings of the determinism family, which runs in
	// the single-threaded source-collection phase (its checks double as
	// taint-source detection).
	early []Finding
}

// newChecker builds the checker for one package.
func newChecker(mod *Module, pkg *Package) *checker {
	return &checker{
		mod:           mod,
		pkg:           pkg,
		waivers:       collectWaivers(mod, pkg, waiverDirective),
		allocWaivers:  collectWaivers(mod, pkg, allocWaiverDirective),
		sharedWaivers: collectWaivers(mod, pkg, sharedWaiverDirective),
	}
}

// report appends a finding at pos.
func (c *checker) report(fs *[]Finding, pos token.Pos, rule, format string, args ...any) {
	*fs = append(*fs, Finding{
		Pos:  c.mod.Fset.Position(pos),
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// waiverDirective is the comment marker that suppresses determinism
// findings on its line (or the line directly below the comment).
const waiverDirective = "//vixlint:ordered"

// allocWaiverDirective suppresses contracts/scratch findings the same
// way: an Allocate method that deliberately allocates its grants slice
// per call carries the directive with a justification.
const allocWaiverDirective = "//vixlint:alloc"

// sharedWaiverDirective suppresses parallel/sharedwrite and
// parallel/phase findings (shardown.go): a write or read inside a pool
// job's cone that is provably confined — per-index, mutex-guarded with
// order-independent results — carries the directive with the proof
// sketch as justification.
const sharedWaiverDirective = "//vixlint:shared"

// waiverSet holds one directive's occurrences in a package, and tracks
// which of them actually suppressed a violation — the rest are stale.
type waiverSet struct {
	directive string
	// lines maps file -> directive line -> justification ("" = missing).
	lines map[string]map[int]string
	// used maps file -> directive line -> whether it suppressed anything.
	used map[string]map[int]bool
}

// collectWaivers scans a package's comments for the given waiver
// directive. Matching goes through classifyDirective, so only an exact,
// whitespace-delimited directive name counts — //vixlint:orderedjunk is
// an unknown directive (reported by directive/unknown), not a waiver
// with justification "junk".
func collectWaivers(mod *Module, pkg *Package, directive string) *waiverSet {
	want := strings.TrimPrefix(directive, directivePrefix)
	ws := &waiverSet{
		directive: directive,
		lines:     make(map[string]map[int]string),
		used:      make(map[string]map[int]bool),
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, cm := range cg.List {
				name, rest, ok := classifyDirective(cm.Text)
				if !ok || name != want {
					continue
				}
				pos := mod.Fset.Position(cm.Pos())
				if ws.lines[pos.Filename] == nil {
					ws.lines[pos.Filename] = make(map[int]string)
					ws.used[pos.Filename] = make(map[int]bool)
				}
				ws.lines[pos.Filename][pos.Line] = rest
			}
		}
	}
	return ws
}

// covers reports whether a directive sits on pos's line or the line
// immediately above, marking the directive as used when it does.
func (ws *waiverSet) covers(mod *Module, pos token.Pos) bool {
	p := mod.Fset.Position(pos)
	lines := ws.lines[p.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, l := range []int{p.Line, p.Line - 1} {
		if _, ok := lines[l]; ok {
			ws.used[p.Filename][l] = true
			hit = true
		}
	}
	return hit
}

// waived reports whether a determinism finding at pos is covered by a
// waiver on the same line or the line immediately above.
func (c *checker) waived(pos token.Pos) bool {
	return c.waivers.covers(c.mod, pos)
}

// allocWaived is the contracts/scratch analogue of waived.
func (c *checker) allocWaived(pos token.Pos) bool {
	return c.allocWaivers.covers(c.mod, pos)
}

// waiverFindings reports waiver directives that lack a justification —
// a waiver is an auditable exception; "because" is not an audit trail —
// and directives that suppressed nothing across every pass (stale).
func (c *checker) waiverFindings() []Finding {
	var fs []Finding
	for _, file := range c.pkg.Files {
		name := c.mod.Fset.Position(file.Pos()).Filename
		for _, set := range []*waiverSet{c.waivers, c.allocWaivers, c.sharedWaivers} {
			for _, line := range sim.SortedKeys(set.lines[name]) {
				if set.lines[name][line] == "" {
					rule, msg := "determinism/waiver",
						"vixlint:ordered waiver needs a justification explaining why iteration order cannot leak into results"
					switch set.directive {
					case allocWaiverDirective:
						rule, msg = "contracts/waiver",
							"vixlint:alloc waiver needs a justification for allocating a fresh grants slice per call"
					case sharedWaiverDirective:
						rule, msg = "parallel/waiver",
							"vixlint:shared waiver needs a justification proving the shared access is confined (per-index, or locked with order-independent results)"
					}
					fs = append(fs, Finding{
						Pos:  token.Position{Filename: name, Line: line},
						Rule: rule,
						Msg:  msg,
					})
				}
				if !set.used[name][line] {
					fs = append(fs, Finding{
						Pos:  token.Position{Filename: name, Line: line},
						Rule: "waiver/stale",
						Msg: fmt.Sprintf("%s waiver suppresses nothing; remove it (stale waivers hide the audit trail)",
							set.directive),
					})
				}
			}
		}
	}
	return fs
}

// eachFunc invokes fn for every function and method declaration with a
// body in the package.
func (c *checker) eachFunc(fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, file := range c.pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(file, fd)
			}
		}
	}
}
