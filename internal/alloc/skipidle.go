package alloc

// This file implements idle fast-forwarding for every built-in
// allocator. The activity-gated network tick (internal/network) skips
// Router.Tick entirely while a router holds no flits, but a dense tick
// is not a pure no-op for every allocator: some advance rotating
// priority state on every Allocate call even when the request set is
// empty. SkipIdle compresses k consecutive empty Allocate calls into
// O(1) state change so a reactivating router can catch its allocator up
// exactly.
//
// What an empty request set touches, per allocator:
//
//   - Round-robin arbiter pointers (arb.RoundRobin) move only on Ack,
//     and no allocator Acks without a grant, so every purely
//     arbiter-backed allocator (if, if-age, islip, sparoflo, ideal, ap)
//     is untouched by an idle cycle: SkipIdle is a no-op.
//   - Wavefront rotates its priority diagonal unconditionally at the
//     end of every Allocate: k idle cycles advance prio by k (mod n).
//   - PacketChaining re-records "this cycle's connections" at the end of
//     every Allocate, so the first idle cycle clears prevOut to -1 for
//     all rows; further idle cycles change nothing (its chainVC pointers
//     move only when a chain is taken, and its inner separable allocator
//     is a no-op as above).
//
// TestSkipIdleMatchesEmptyAllocates pins SkipIdle(k) against k literal
// empty Allocate calls for every registered kind, interleaved with real
// traffic, so a future allocator change that breaks this equivalence
// fails the suite rather than silently breaking gated byte-identity.

// IdleSkipper is an optional Allocator extension consumed by the
// activity-gated tick: SkipIdle(cycles) must leave the allocator in
// exactly the state `cycles` consecutive Allocate calls with an empty
// request set would have. Callers guarantee cycles >= 1.
//
// Custom allocators (Register) need not implement it; the router falls
// back to issuing the empty Allocate calls one by one, which is always
// correct, just not O(1).
type IdleSkipper interface {
	SkipIdle(cycles int)
}

// SkipIdle implements IdleSkipper: an idle cycle drives no arbitration
// and no Ack, so it leaves no trace.
func (s *SeparableIF) SkipIdle(int) {}

// SkipIdle implements IdleSkipper: age comparison and tie-break
// arbitration only run over offered requests.
func (s *SeparableAge) SkipIdle(int) {}

// SkipIdle implements IdleSkipper: all three arbiter banks Ack only on
// accepted grants.
func (s *ISLIP) SkipIdle(int) {}

// SkipIdle implements IdleSkipper: input, output, and port-conflict
// arbiters all Ack only along the grant path.
func (s *Sparoflo) SkipIdle(int) {}

// SkipIdle implements IdleSkipper: the output arbiters Ack only on
// grants.
func (id *Ideal) SkipIdle(int) {}

// SkipIdle implements IdleSkipper: the matching search visits only
// offered requests and the VC arbiters Ack only on grants.
func (a *AugmentingPath) SkipIdle(int) {}

// SkipIdle implements IdleSkipper. Allocate rotates the priority
// diagonal once per call whether or not anything was requested, so k
// idle cycles advance it by k.
func (w *Wavefront) SkipIdle(cycles int) {
	n := w.cfg.Rows()
	if w.cfg.Ports > n {
		n = w.cfg.Ports
	}
	w.prio = (w.prio + cycles%n) % n
}

// SkipIdle implements IdleSkipper. The first empty Allocate records an
// empty connection set (prevOut all -1) and every subsequent one keeps
// it; chainVC pointers and the inner separable allocator are untouched
// by idle cycles.
func (p *PacketChaining) SkipIdle(cycles int) {
	for i := range p.prevOut {
		p.prevOut[i] = -1
	}
	p.inner.SkipIdle(cycles)
}
