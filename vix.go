// Package vix is a cycle-accurate network-on-chip simulation library
// built around the Virtual Input Crossbar (VIX) switch-allocation
// technique of Rao et al., "VIX: Virtual Input Crossbar for Efficient
// Switch Allocation" (DAC 2014).
//
// A conventional virtual-channel router connects each input port to its
// crossbar through a single multiplexer, so only one VC per port can
// transmit per cycle and the separable allocator's two arbitration phases
// frequently make uncoordinated decisions. VIX widens the crossbar to k
// virtual inputs per port (k = 2 in practice), partitioning the port's
// VCs into k sub-groups. Set RouterConfig.VirtualInputs = 2 to enable it.
//
// The package is a facade over the implementation packages: it re-exports
// the types needed to build topologies, configure routers, generate
// traffic, run simulations, and reproduce every table and figure of the
// paper. A minimal simulation:
//
//	topo := vix.NewMeshTopology(8, 8)
//	n, err := vix.NewNetwork(vix.NetworkConfig{
//		Topology: topo,
//		Router: vix.RouterConfig{
//			Ports: topo.Radix, VCs: 6, VirtualInputs: 2, BufDepth: 5,
//			AllocKind: vix.AllocSeparableIF, Policy: vix.PolicyBalanced,
//		},
//		Pattern:       vix.NewUniformTraffic(topo.NumNodes),
//		InjectionRate: 0.05,
//		Seed:          1,
//	})
//	if err != nil { ... }
//	n.Warmup(2000)
//	snapshot := n.Measure(6000)
package vix

import (
	"vix/internal/alloc"
	"vix/internal/config"
	"vix/internal/energy"
	"vix/internal/experiments"
	"vix/internal/manycore"
	"vix/internal/network"
	"vix/internal/router"
	"vix/internal/routerbench"
	"vix/internal/routing"
	"vix/internal/sim"
	"vix/internal/stats"
	"vix/internal/timing"
	"vix/internal/topology"
	"vix/internal/trace"
	"vix/internal/traffic"
)

// Core simulation types.
type (
	// Network is a running cycle-accurate NoC simulation.
	Network = network.Network
	// NetworkConfig configures a simulation: topology, router
	// microarchitecture, and workload.
	NetworkConfig = network.Config
	// RouterConfig is the per-router microarchitecture: radix, VCs,
	// virtual inputs (VIX), buffer depth, allocator, and VC policy.
	RouterConfig = router.Config
	// Topology is a static description of routers, terminals and links.
	Topology = topology.Topology
	// Snapshot summarises a measurement window: latency, throughput,
	// fairness, and datapath activity.
	Snapshot = stats.Snapshot
	// TrafficPattern maps packet sources to destinations.
	TrafficPattern = traffic.Pattern
	// Workload drives packet generation for closed-loop models.
	Workload = network.Workload
	// PacketSpec and Delivery are the Workload exchange types.
	PacketSpec = network.PacketSpec
	Delivery   = network.Delivery
	// RNG is the deterministic generator used across the simulator.
	RNG = sim.RNG
)

// Allocator extension types: implement Allocator and install it with
// RegisterAllocator to plug a custom switch-allocation scheme into the
// router.
type (
	Allocator       = alloc.Allocator
	AllocatorKind   = alloc.Kind
	AllocatorConfig = alloc.Config
	RequestSet      = alloc.RequestSet
	SwitchRequest   = alloc.Request
	SwitchGrant     = alloc.Grant
)

// Built-in switch allocation schemes.
const (
	// AllocSeparableIF is the separable input-first allocator; with
	// RouterConfig.VirtualInputs = 2 it is the paper's VIX configuration.
	AllocSeparableIF = alloc.KindSeparableIF
	// AllocWavefront is the wavefront allocator of Tamir and Chi.
	AllocWavefront = alloc.KindWavefront
	// AllocAugmentingPath is maximum matching via augmenting paths.
	AllocAugmentingPath = alloc.KindAugmentingPath
	// AllocPacketChaining is SameInput/anyVC packet chaining.
	AllocPacketChaining = alloc.KindPacketChaining
	// AllocIdeal serves every requested output; requires per-VC rows.
	AllocIdeal = alloc.KindIdeal
	// AllocISLIP is the two-iteration iSLIP allocator of McKeown.
	AllocISLIP = alloc.KindISLIP
	// AllocSparoflo approximates the SPAROFLO allocator of Kumar et al.
	AllocSparoflo = alloc.KindSparoflo
)

// VC-to-sub-group partition schemes for the VIX crossbar.
const (
	// PartitionContiguous is the paper's block partition (default).
	PartitionContiguous = alloc.Contiguous
	// PartitionInterleaved assigns VC i to virtual input i mod k.
	PartitionInterleaved = alloc.Interleaved
)

// Output-VC assignment policies (Section 2.3 of the paper).
const (
	PolicyMaxFree   = router.PolicyMaxFree
	PolicyDimension = router.PolicyDimension
	PolicyBalanced  = router.PolicyBalanced
)

// NewNetwork builds a simulation from cfg.
func NewNetwork(cfg NetworkConfig) (*Network, error) { return network.New(cfg) }

// NewRNG returns a deterministic random number generator.
func NewRNG(seed uint64) *RNG { return sim.NewRNG(seed) }

// RegisterAllocator installs a custom allocator factory under kind; the
// kind is then usable in RouterConfig.AllocKind.
func RegisterAllocator(kind AllocatorKind, factory func(AllocatorConfig) (Allocator, error)) error {
	return alloc.Register(kind, factory)
}

// ValidateGrants checks a grant set against the allocator contract: at
// most one grant per crossbar row and per output port, all grants backed
// by requests. Custom allocators can use it in their own tests.
func ValidateGrants(rs *RequestSet, grants []SwitchGrant) error { return alloc.Validate(rs, grants) }

// Topology constructors for the paper's three 64-node networks (any
// dimensions are accepted).
func NewMeshTopology(w, h int) *Topology     { return topology.NewMesh(w, h) }
func NewCMeshTopology(w, h, c int) *Topology { return topology.NewCMesh(w, h, c) }
func NewFBflyTopology(w, h, c int) *Topology { return topology.NewFBfly(w, h, c) }

// Traffic pattern constructors.
func NewUniformTraffic(n int) TrafficPattern       { return traffic.NewUniform(n) }
func NewTransposeTraffic(w, h int) TrafficPattern  { return traffic.NewTranspose(w, h) }
func NewBitComplementTraffic(n int) TrafficPattern { return traffic.NewBitComplement(n) }
func NewBitReverseTraffic(n int) TrafficPattern    { return traffic.NewBitReverse(n) }
func NewTornadoTraffic(w, h int) TrafficPattern    { return traffic.NewTornado(w, h) }
func NewHotspotTraffic(n int, hs []int, f float64) TrafficPattern {
	return traffic.NewHotspot(n, hs, f)
}

// NewTrafficPattern constructs a pattern by name ("uniform", "transpose",
// "bitcomp", "bitrev", "tornado", "hotspot") over a w x h node grid.
func NewTrafficPattern(name string, w, h int) (TrafficPattern, error) {
	return traffic.New(name, w, h)
}

// Experiment harness: reproduce the paper's tables and figures.
type (
	ExperimentParams = experiments.Params
	Fig7Row          = experiments.Fig7Row
	Fig8Point        = experiments.Fig8Point
	Fig9Row          = experiments.Fig9Row
	Fig10Row         = experiments.Fig10Row
	Fig11Row         = experiments.Fig11Row
	Fig12Row         = experiments.Fig12Row
	Table4Row        = experiments.Table4Row
	StageDelays      = timing.StageDelays
	AllocatorDelay   = timing.AllocatorDelay
	RadixScalingRow  = timing.RadixScalingRow
	Replication      = experiments.Replication
)

// DefaultExperimentParams returns the paper's configuration with
// laptop-scale simulation windows.
func DefaultExperimentParams() ExperimentParams { return experiments.DefaultParams() }

// The paper's evaluation, one function per table or figure.
func Figure7(p ExperimentParams) ([]Fig7Row, error) { return experiments.Figure7(p) }
func Figure8(p ExperimentParams, rates []float64) ([]Fig8Point, error) {
	return experiments.Figure8(p, rates)
}
func Figure9(p ExperimentParams) ([]Fig9Row, error)   { return experiments.Figure9(p) }
func Figure10(p ExperimentParams) ([]Fig10Row, error) { return experiments.Figure10(p) }
func Figure11(p ExperimentParams) ([]Fig11Row, error) { return experiments.Figure11(p) }
func Figure12(p ExperimentParams) ([]Fig12Row, error) { return experiments.Figure12(p) }
func Table1() []StageDelays                           { return timing.Table1() }
func Table3() []AllocatorDelay                        { return timing.Table3() }
func Table4(p ExperimentParams) ([]Table4Row, error)  { return experiments.Table4(p) }

// Single-router allocation-efficiency testbench (Figure 7 substrate).
type (
	RouterBenchConfig = routerbench.Config
	RouterBenchResult = routerbench.Result
)

// RunRouterBench measures a single isolated router's allocation
// efficiency at maximum injection.
func RunRouterBench(cfg RouterBenchConfig, warmup, measure int) (RouterBenchResult, error) {
	return routerbench.Run(cfg, warmup, measure)
}

// RadixScaling sweeps router radices for the Section 2.4 high-radix
// feasibility study; VIXFeasibilityFrontier locates the largest radix
// whose 2PxP crossbar still fits the router cycle.
func RadixScaling(radices []int, vcs int) []RadixScalingRow { return timing.RadixScaling(radices, vcs) }
func VIXFeasibilityFrontier(vcs int) int                    { return timing.VIXFeasibilityFrontier(vcs) }

// ReplicateSaturation re-runs a saturation measurement over several
// seeds and summarises the distribution.
func ReplicateSaturation(t *Topology, label string, kind AllocatorKind, k int, p ExperimentParams, seeds []uint64) (Replication, error) {
	pol := router.PolicyMaxFree
	if k > 1 {
		pol = router.PolicyBalanced
	}
	return experiments.ReplicateSaturation(t, experiments.Scheme{Label: label, Kind: kind, K: k, Policy: pol}, p, seeds)
}

// Timing models (Tables 1 and 3 substrate).
func VADelay(ports, vcs int) float64         { return timing.VADelay(ports, vcs) }
func SADelay(ports, vcs, k int) float64      { return timing.SADelay(ports, vcs, k) }
func XbarDelay(in, out int) float64          { return timing.XbarDelay(in, out) }
func RouterCycleTime(ports, vcs int) float64 { return timing.CycleTime(ports, vcs) }

// Energy model (Figure 11 substrate).
type (
	EnergyParams    = energy.Params
	EnergyBreakdown = energy.Breakdown
	EnergyNetwork   = energy.Network
)

// DefaultEnergyParams returns the 45 nm energy calibration.
func DefaultEnergyParams() EnergyParams { return energy.DefaultParams() }

// EnergyPerBit converts a measurement snapshot into pJ/bit by component.
func EnergyPerBit(p EnergyParams, s Snapshot, nw EnergyNetwork) (EnergyBreakdown, error) {
	return energy.PerBit(p, s, nw)
}

// Application-level substrate (Table 4): benchmark traces and the
// trace-driven 64-core system model.
type (
	Benchmark      = trace.App
	BenchmarkMix   = trace.Mix
	ManycoreConfig = manycore.Config
	ManycoreSystem = manycore.System
)

// BenchmarkCatalog returns the 35-benchmark suite.
func BenchmarkCatalog() []Benchmark { return trace.Catalog() }

// BenchmarkMixes returns the eight Table 4 workloads.
func BenchmarkMixes() []BenchmarkMix { return trace.Mixes() }

// DefaultManycoreConfig returns the Table 2 processor configuration.
func DefaultManycoreConfig() ManycoreConfig { return manycore.DefaultConfig() }

// NewManycore builds the trace-driven system for a per-node application
// assignment; install it as NetworkConfig.Workload.
func NewManycore(cfg ManycoreConfig, apps []Benchmark) (*ManycoreSystem, error) {
	return manycore.New(cfg, apps)
}

// DORHops returns the dimension-order hop count between two terminals.
func DORHops(t *Topology, src, dst int) int {
	return routing.Hops(t, routing.DOR(t), src, dst)
}

// Declarative experiment configuration (JSON) — see the vixsim CLI's
// -config flag.
type Experiment = config.Experiment

// DefaultExperiment returns the paper's standard configuration.
func DefaultExperiment() Experiment { return config.Default() }

// LoadExperiment reads a JSON experiment description with defaults
// applied.
func LoadExperiment(path string) (Experiment, error) { return config.Load(path) }

// Ablation studies of the design choices (see cmd/ablation).
type (
	PolicyAblationRow      = experiments.PolicyAblationRow
	PartitionAblationRow   = experiments.PartitionAblationRow
	PipelineAblationRow    = experiments.PipelineAblationRow
	SpeculationAblationRow = experiments.SpeculationAblationRow
	KSweepRow              = experiments.KSweepRow
	AllocAblationRow       = experiments.AllocAblationRow
	SaturationResult       = experiments.SaturationResult
)

// AblatePolicies compares the Section 2.3 VC-assignment policies across
// traffic patterns on a saturated VIX mesh.
func AblatePolicies(p ExperimentParams, patterns []string) ([]PolicyAblationRow, error) {
	return experiments.AblatePolicies(p, patterns)
}

// AblatePartition compares contiguous and interleaved VC sub-grouping.
func AblatePartition(p ExperimentParams) ([]PartitionAblationRow, error) {
	return experiments.AblatePartition(p)
}

// AblatePipeline compares the 3-stage and 5-stage router pipelines.
func AblatePipeline(p ExperimentParams, probeRate float64) ([]PipelineAblationRow, error) {
	return experiments.AblatePipeline(p, probeRate)
}

// AblateSpeculation compares speculative and non-speculative switch
// allocation.
func AblateSpeculation(p ExperimentParams, probeRate float64) ([]SpeculationAblationRow, error) {
	return experiments.AblateSpeculation(p, probeRate)
}

// AblateVirtualInputs sweeps the virtual-input factor k on the mesh.
func AblateVirtualInputs(p ExperimentParams) ([]KSweepRow, error) {
	return experiments.AblateVirtualInputs(p)
}

// AblateAllocators races the extended allocator set (IF, iSLIP,
// SPAROFLO, WF, AP, VIX, VIX-WF) at saturation.
func AblateAllocators(p ExperimentParams) ([]AllocAblationRow, error) {
	return experiments.AblateAllocators(p)
}

// FindSaturation binary-searches a scheme's saturation injection rate on
// a topology.
func FindSaturation(t *Topology, label string, kind AllocatorKind, k int, p ExperimentParams, accept float64) (SaturationResult, error) {
	pol := router.PolicyMaxFree
	if k > 1 {
		pol = router.PolicyBalanced
	}
	return experiments.FindSaturation(t, experiments.Scheme{Label: label, Kind: kind, K: k, Policy: pol}, p, accept)
}
