package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file implements exhaustive/switch: a switch statement in an
// internal package whose tag is a module-declared enum type — a named
// type with two or more package-level constants, like alloc.Kind or
// router.FlitType — must either cover every declared constant or carry
// an explicit default clause. A silent fall-through on an unknown
// allocator kind or flit type is how a newly registered variant
// produces wrong results instead of a loud failure.
//
// Coverage is computed over constant values, not names, so aliased
// constants (two names for one value) count as covering each other. A
// switch with any non-constant case expression is skipped: coverage
// cannot be proven either way.

// enumInfo describes one module enum type: its constants by value.
type enumInfo struct {
	names  []string          // constant names, declaration-scope order
	values map[string]string // constant name -> exact value string
}

// moduleEnum returns the enum description for a named type declared in
// the module, or nil if the type does not qualify (fewer than two
// constants, non-basic underlying type, or declared outside the module).
func (c *checker) moduleEnum(t types.Type) (*types.Named, *enumInfo) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil, nil // builtin (e.g. error)
	}
	declPkg := c.mod.Pkgs[obj.Pkg().Path()]
	if declPkg == nil || declPkg.Types == nil {
		return nil, nil // declared outside the module
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsBoolean != 0 {
		return nil, nil
	}
	info := &enumInfo{values: make(map[string]string)}
	scope := declPkg.Types.Scope()
	for _, name := range scope.Names() { // Names() is sorted
		cn, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(cn.Type(), named) {
			continue
		}
		info.names = append(info.names, name)
		info.values[name] = cn.Val().ExactString()
	}
	if len(info.names) < 2 {
		return nil, nil
	}
	return named, info
}

// exhaustive runs exhaustive/switch over the package.
func (c *checker) exhaustive() []Finding {
	var fs []Finding
	for _, file := range c.pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			c.checkEnumSwitch(&fs, sw)
			return true
		})
	}
	return fs
}

// checkEnumSwitch verifies one tag switch.
func (c *checker) checkEnumSwitch(fs *[]Finding, sw *ast.SwitchStmt) {
	tv, ok := c.pkg.Info.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}
	named, enum := c.moduleEnum(tv.Type)
	if named == nil {
		return
	}
	covered := make(map[string]bool) // exact value strings
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: the switch handles unknowns
		}
		for _, e := range cc.List {
			etv, ok := c.pkg.Info.Types[e]
			if !ok || etv.Value == nil {
				return // non-constant case: coverage unprovable, skip
			}
			covered[etv.Value.ExactString()] = true
		}
	}
	var missing []string
	seen := make(map[string]bool)
	for _, name := range enum.names {
		v := enum.values[name]
		if covered[v] || seen[v] {
			continue
		}
		seen[v] = true
		missing = append(missing, name)
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	typeName := named.Obj().Name()
	if named.Obj().Pkg() != nil && named.Obj().Pkg() != c.pkg.Types {
		typeName = named.Obj().Pkg().Name() + "." + typeName
	}
	c.report(fs, sw.Pos(), "exhaustive/switch",
		"switch over %s covers %d of %d variants; missing %s — add the cases or an explicit default so unknown variants fail loudly",
		typeName, len(enum.names)-len(missing), len(enum.names), strings.Join(missing, ", "))
}
