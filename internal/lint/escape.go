package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file implements the flow-insensitive scratch-escape pass for the
// Allocate contract of PR 3: Allocate returns allocator-owned scratch,
// valid only until the next Allocate or Reset call on the same
// allocator. Two rules police the callers:
//
//   - escape/store: a grants slice obtained from Allocate must not be
//     stored into a struct field, a package-level variable, a composite
//     literal, or sent on a channel. Any of those extends the slice's
//     lifetime past the callers' control and aliases scratch the
//     allocator will overwrite next cycle.
//   - escape/retain: within one function, a grants slice bound before a
//     later Allocate or Reset call on the same allocator must not be
//     used after that call; the backing array has been invalidated.
//
// The pass runs over every module package except the alloc registry
// packages themselves, which own the scratch and legitimately manage it
// through struct fields. Analysis is flow-insensitive within a function:
// statement order is approximated by source position, so a use textually
// after an invalidating call inside a loop body is flagged even though
// one interleaving is safe — copy the data out instead. Passing a grants
// slice to another function (borrowing) and ranging over it are fine.

// escape runs both escape rules over the package.
func (c *checker) escape() []Finding {
	var fs []Finding
	c.eachFunc(func(_ *ast.File, fd *ast.FuncDecl) {
		c.escapeFunc(&fs, fd)
	})
	return fs
}

// grantBinding is one variable bound to an Allocate result.
type grantBinding struct {
	obj      types.Object // the bound variable
	pos      token.Pos    // position of the binding assignment
	allocKey string       // receiver chain of the Allocate call ("" = unknown)
}

// escapeFunc analyses one function body.
func (c *checker) escapeFunc(fs *[]Finding, fd *ast.FuncDecl) {
	// Pass 1: collect grant bindings, iterating to a fixed point so
	// second-order bindings (h := g) are tracked too.
	bindings := c.grantBindings(fd)
	if len(bindings) == 0 && !c.hasGrantCall(fd) {
		return
	}
	tracked := func(e ast.Expr) *grantBinding { return c.trackedGrant(e, bindings) }

	// Pass 2: stores that extend the slice's lifetime.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.checkGrantStore(fs, fd, n, tracked)
		case *ast.SendStmt:
			if b := tracked(n.Value); b != nil || c.isGrantCall(n.Value) {
				c.report(fs, n.Pos(), "escape/store",
					"%s sends allocator-owned grants on a channel; the slice is scratch valid only until the next Allocate/Reset — copy the grants instead",
					fd.Name.Name)
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if b := tracked(v); b != nil || c.isGrantCall(v) {
					c.report(fs, v.Pos(), "escape/store",
						"%s stores allocator-owned grants in a composite literal; the slice is scratch valid only until the next Allocate/Reset — copy the grants instead",
						fd.Name.Name)
				}
			}
		}
		return true
	})

	// Pass 3: uses after invalidation.
	c.checkGrantRetention(fs, fd, bindings)
}

// grantBindings collects the variables bound (directly or transitively)
// to Allocate results in fd, to a fixed point.
func (c *checker) grantBindings(fd *ast.FuncDecl) []grantBinding {
	var bindings []grantBinding
	// Keyed by (object, assignment position): the same variable re-bound
	// by a later assignment is a second binding, and retention checking
	// needs every binding site to find the one governing each use.
	type bindingSite struct {
		obj types.Object
		pos token.Pos
	}
	seen := make(map[bindingSite]bool)
	for {
		grew := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				// g := a.Allocate() is always 1:1; tuple forms with a
				// grants slice on the right do not occur.
				return true
			}
			for i, rhs := range as.Rhs {
				rhs = stripAliases(rhs)
				var key string
				if call, ok := rhs.(*ast.CallExpr); ok && c.isGrantCall(call) {
					key = c.receiverKey(call)
				} else if b := c.trackedGrant(rhs, bindings); b != nil {
					key = b.allocKey
				} else {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := c.pkg.Info.Defs[id]
				if obj == nil {
					obj = c.pkg.Info.Uses[id]
				}
				if obj == nil || seen[bindingSite{obj, as.End()}] {
					continue
				}
				seen[bindingSite{obj, as.End()}] = true
				// The binding takes effect after the right-hand side has
				// evaluated, so it is positioned at the assignment's end:
				// the Allocate call producing the value must not count as
				// a later invalidation of it.
				bindings = append(bindings, grantBinding{obj: obj, pos: as.End(), allocKey: key})
				grew = true
			}
			return true
		})
		if !grew {
			return bindings
		}
	}
}

// hasGrantCall reports whether fd contains any Allocate call at all
// (used to skip pass 2 cheaply when nothing is tracked).
func (c *checker) hasGrantCall(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && c.isGrantCall(call) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// isGrantCall reports whether e is a call of a method named Allocate
// returning a slice of an alloc-package Grant type — the allocator
// contract's scratch-returning entry point, matched structurally so
// custom allocators outside internal/alloc are covered too.
func (c *checker) isGrantCall(e ast.Expr) bool {
	call, ok := stripAliases(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := stripParens(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Allocate" {
		return false
	}
	tv, ok := c.pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	return isGrantSlice(tv.Type)
}

// isGrantSlice reports whether t is []Grant for a Grant declared in an
// alloc package.
func isGrantSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	named, ok := sl.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Grant" || named.Obj().Pkg() == nil {
		return false
	}
	return isAllocPath(named.Obj().Pkg().Path())
}

// isAllocPath reports whether path names an allocator registry package
// (its final path element is "alloc").
func isAllocPath(path string) bool {
	return path == "alloc" || strings.HasSuffix(path, "/alloc")
}

// stripAliases unwraps parentheses and slice expressions: g[:n] and
// (g) alias the same backing array as g.
func stripAliases(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return e
		}
	}
}

// trackedGrant returns the binding e refers to, or nil. Only direct
// references (modulo parens and re-slicing) count: element reads like
// g[i] copy a Grant value and are safe.
func (c *checker) trackedGrant(e ast.Expr, bindings []grantBinding) *grantBinding {
	id, ok := stripAliases(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pkg.Info.Uses[id]
	if obj == nil {
		obj = c.pkg.Info.Defs[id]
	}
	if obj == nil {
		return nil
	}
	for i := range bindings {
		if bindings[i].obj == obj {
			return &bindings[i]
		}
	}
	return nil
}

// checkGrantStore flags assignments whose right-hand side is a tracked
// grants slice (or a fresh Allocate call) and whose left-hand side
// outlives the cycle: a struct field or a package-level variable.
func (c *checker) checkGrantStore(fs *[]Finding, fd *ast.FuncDecl, as *ast.AssignStmt, tracked func(ast.Expr) *grantBinding) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		if tracked(rhs) == nil && !c.isGrantCall(rhs) {
			continue
		}
		lhs := stripParens(as.Lhs[i])
		switch target := c.storeTarget(lhs); target {
		case storeLocal:
			// Rebinding a local is how scratch is meant to be used.
		case storeField:
			c.report(fs, as.Pos(), "escape/store",
				"%s stores allocator-owned grants in a struct field; the slice is scratch valid only until the next Allocate/Reset — copy the grants instead",
				fd.Name.Name)
		case storeGlobal:
			c.report(fs, as.Pos(), "escape/store",
				"%s stores allocator-owned grants in a package-level variable; the slice is scratch valid only until the next Allocate/Reset — copy the grants instead",
				fd.Name.Name)
		}
	}
}

// storeTarget classifies an assignment destination.
type storeTarget int

const (
	storeLocal storeTarget = iota
	storeField
	storeGlobal
)

// storeTarget classifies lhs: a bare identifier is local unless it names
// a package-level variable; a selector is a field store unless its base
// is a package name (then it is a foreign global); an index expression
// classifies by its base.
func (c *checker) storeTarget(lhs ast.Expr) storeTarget {
	switch x := stripParens(lhs).(type) {
	case *ast.Ident:
		obj := c.pkg.Info.Uses[x]
		if obj == nil {
			obj = c.pkg.Info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok && v.Parent() != nil && c.pkg.Types != nil &&
			v.Parent() == c.pkg.Types.Scope() {
			return storeGlobal
		}
		return storeLocal
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := c.pkg.Info.Uses[id].(*types.PkgName); isPkg {
				return storeGlobal
			}
		}
		return storeField
	case *ast.IndexExpr:
		return c.storeTarget(x.X)
	case *ast.StarExpr:
		return c.storeTarget(x.X)
	default:
		return storeLocal
	}
}

// checkGrantRetention flags uses of a bound grants slice after a later
// Allocate or Reset call on the same allocator. For each use, the
// governing binding is the latest one before the use; an invalidating
// call strictly between them makes the use stale.
func (c *checker) checkGrantRetention(fs *[]Finding, fd *ast.FuncDecl, bindings []grantBinding) {
	if len(bindings) == 0 {
		return
	}
	// Invalidation points: Allocate/Reset calls grouped by receiver key.
	type invalidation struct {
		pos  token.Pos
		what string
	}
	invals := make(map[string][]invalidation)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := stripParens(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "Allocate" && name != "Reset" {
			return true
		}
		if name == "Allocate" && !c.isGrantCall(call) {
			return true
		}
		if name == "Reset" && !c.isAllocatorReset(call, sel) {
			return true
		}
		if key := c.receiverKey(call); key != "" {
			invals[key] = append(invals[key], invalidation{pos: call.Pos(), what: name})
		}
		return true
	})
	if len(invals) == 0 {
		return
	}
	// Bare identifiers on the left of assignments are rebindings, not
	// uses of the previous (possibly invalidated) value.
	rebinds := make(map[*ast.Ident]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := stripParens(lhs).(*ast.Ident); ok {
					rebinds[id] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || rebinds[id] {
			return true
		}
		obj := c.pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		// Governing binding: the latest binding of obj before this use —
		// it carries the allocator the use must be checked against.
		var govern *grantBinding
		for i := range bindings {
			b := &bindings[i]
			if b.obj == obj && b.pos < id.Pos() && (govern == nil || b.pos > govern.pos) {
				govern = b
			}
		}
		if govern == nil || govern.allocKey == "" {
			return true
		}
		for _, inv := range invals[govern.allocKey] {
			if inv.pos > govern.pos && inv.pos < id.Pos() {
				c.report(fs, id.Pos(), "escape/retain",
					"%s uses grants bound at line %d after a later %s call on the same allocator (line %d); the backing array was invalidated — consume or copy grants before re-allocating",
					fd.Name.Name, c.mod.Fset.Position(govern.pos).Line, inv.what,
					c.mod.Fset.Position(inv.pos).Line)
				return true
			}
		}
		return true
	})
}

// isAllocatorReset reports whether call is Reset() on a value whose type
// implements (or is) an alloc-package Allocator.
func (c *checker) isAllocatorReset(call *ast.CallExpr, sel *ast.SelectorExpr) bool {
	if len(call.Args) != 0 {
		return false
	}
	tv, ok := c.pkg.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	// The receiver qualifies when its method set has both Reset() and an
	// Allocate returning a grants slice.
	obj, _, _ := types.LookupFieldOrMethod(t, true, c.pkg.Types, "Allocate")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	return isGrantSlice(sig.Results().At(0).Type())
}

// receiverKey renders the receiver chain of a method call as a stable
// key identifying the allocator value: "r.alloc" becomes the root
// variable's object identity plus the field path. An empty key means the
// receiver is not a simple variable/field chain (e.g. a call result) and
// retention cannot be matched.
func (c *checker) receiverKey(call *ast.CallExpr) string {
	sel, ok := stripParens(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	var parts []string
	e := sel.X
	for {
		switch x := stripParens(e).(type) {
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := c.pkg.Info.Uses[x]
			if obj == nil {
				obj = c.pkg.Info.Defs[x]
			}
			if obj == nil {
				return ""
			}
			key := obj.Name() + "@" + c.mod.Fset.Position(obj.Pos()).String()
			for i := len(parts) - 1; i >= 0; i-- {
				key += "." + parts[i]
			}
			return key
		default:
			return ""
		}
	}
}
