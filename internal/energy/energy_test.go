package energy

import (
	"testing"

	"vix/internal/stats"
)

// snapshotFor synthesises activity counters for a mesh at a given load:
// per flit, hops+1 buffer writes/reads and crossbar traversals, hops link
// traversals.
func snapshotFor(flits int64, avgHops float64, cycles int64) stats.Snapshot {
	perFlitStops := avgHops + 1
	return stats.Snapshot{
		Cycles:         cycles,
		FlitsEjected:   flits,
		BufferWrites:   int64(float64(flits) * perFlitStops),
		BufferReads:    int64(float64(flits) * perFlitStops),
		XbarTraversals: int64(float64(flits) * perFlitStops),
		LinkTraversals: int64(float64(flits) * avgHops),
	}
}

func meshNetwork(k int) Network {
	return Network{Routers: 64, XbarIn: k * 5, XbarOut: 5, K: k, FlitBits: 128}
}

// Figure 11's headline: at the paper's operating point (0.1
// packets/cycle/node, 4-flit packets, 8x8 mesh) VIX increases total
// energy per bit by about 4% (the paper reports 4%).
func TestVIXEnergyOverheadNearFourPercent(t *testing.T) {
	// 0.1 packets/node/cycle * 64 nodes * 4 flits = 25.6 flits/cycle;
	// over 10000 cycles: 256000 flits at 5.33 average hops.
	s := snapshotFor(256000, 5.33, 10000)
	p := DefaultParams()
	base, err := PerBit(p, s, meshNetwork(1))
	if err != nil {
		t.Fatal(err)
	}
	vix, err := PerBit(p, s, meshNetwork(2))
	if err != nil {
		t.Fatal(err)
	}
	ratio := vix.Total / base.Total
	if ratio < 1.02 || ratio > 1.07 {
		t.Fatalf("VIX/base energy ratio = %.4f, paper reports ~1.04", ratio)
	}
	// The increase must come primarily from the switch.
	if vix.Switch <= base.Switch {
		t.Fatal("VIX switch energy did not increase")
	}
	if vix.Link != base.Link || vix.Buffer != base.Buffer {
		t.Fatal("link/buffer energy should not change with VIX at equal activity")
	}
}

// Switch energy scales 1.5x for the mesh VIX crossbar (15 port units vs
// 10).
func TestSwitchEnergyScaling(t *testing.T) {
	s := snapshotFor(1000, 5.33, 100)
	p := DefaultParams()
	base, _ := PerBit(p, s, meshNetwork(1))
	vix, _ := PerBit(p, s, meshNetwork(2))
	if ratio := vix.Switch / base.Switch; ratio < 1.49 || ratio > 1.51 {
		t.Fatalf("switch energy ratio %.3f, want 1.5", ratio)
	}
}

// Component shares at the calibration point are plausible NoC shares:
// link largest, then buffer, clock, leakage, switch smallest.
func TestComponentShares(t *testing.T) {
	s := snapshotFor(256000, 5.33, 10000)
	b, err := PerBit(DefaultParams(), s, meshNetwork(1))
	if err != nil {
		t.Fatal(err)
	}
	if b.Total <= 0 {
		t.Fatal("non-positive total")
	}
	share := func(x float64) float64 { return x / b.Total }
	if share(b.Link) < 0.25 || share(b.Link) > 0.50 {
		t.Errorf("link share %.2f out of plausible range", share(b.Link))
	}
	if share(b.Buffer) < 0.20 || share(b.Buffer) > 0.40 {
		t.Errorf("buffer share %.2f out of plausible range", share(b.Buffer))
	}
	if share(b.Switch) < 0.04 || share(b.Switch) > 0.15 {
		t.Errorf("switch share %.2f out of plausible range", share(b.Switch))
	}
	sum := b.Buffer + b.Switch + b.Link + b.Clock + b.Leakage
	if diff := sum - b.Total; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("components sum %.6f != total %.6f", sum, b.Total)
	}
}

// Lower utilisation raises energy per bit (fixed clock/leakage amortised
// over fewer bits).
func TestEnergyPerBitRisesAtLowLoad(t *testing.T) {
	p := DefaultParams()
	busy, _ := PerBit(p, snapshotFor(256000, 5.33, 10000), meshNetwork(1))
	idle, _ := PerBit(p, snapshotFor(25600, 5.33, 10000), meshNetwork(1))
	if idle.Total <= busy.Total {
		t.Fatalf("energy/bit at low load %.3f not above high load %.3f", idle.Total, busy.Total)
	}
}

func TestPerBitErrors(t *testing.T) {
	p := DefaultParams()
	if _, err := PerBit(p, stats.Snapshot{}, meshNetwork(1)); err == nil {
		t.Error("empty snapshot accepted")
	}
	s := snapshotFor(100, 5, 10)
	if _, err := PerBit(p, s, Network{Routers: 0, FlitBits: 128}); err == nil {
		t.Error("zero routers accepted")
	}
	if _, err := PerBit(p, s, Network{Routers: 64, FlitBits: 0}); err == nil {
		t.Error("zero flit bits accepted")
	}
}
