// Package plot renders simple ASCII line charts for terminal output, so
// the experiment CLIs can show Figure 8-style curves without any plotting
// dependency. Charts are deliberately minimal: scaled scatter of each
// series with distinct markers, axes with numeric extents, and a legend.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labelled curve.
type Series struct {
	Label string
	X, Y  []float64
}

// markers assigns each series a distinct glyph.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the series into a width x height character canvas framed
// by axes. Points outside the finite data range are skipped; NaN and Inf
// values are ignored. It returns the multi-line chart string.
func Render(title string, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if i >= len(s.Y) || !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if minX > maxX || minY > maxY {
		return title + "\n(no finite data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	canvas := make([][]byte, height)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if i >= len(s.Y) || !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := height - 1 - int(math.Round((s.Y[i]-minY)/(maxY-minY)*float64(height-1)))
			canvas[row][col] = m
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	yLo, yHi := formatTick(minY), formatTick(maxY)
	pad := len(yHi)
	if len(yLo) > pad {
		pad = len(yLo)
	}
	for r, line := range canvas {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", pad, yHi)
		case height - 1:
			label = fmt.Sprintf("%*s", pad, yLo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	xLo, xHi := formatTick(minX), formatTick(maxX)
	gap := width - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", pad), xLo, strings.Repeat(" ", gap), xHi)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Label)
	}
	return b.String()
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// formatTick renders an axis extent compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
