package vix_test

import (
	"testing"

	"vix"
)

// The public facade supports the full quickstart flow.
func TestPublicAPISimulation(t *testing.T) {
	topo := vix.NewMeshTopology(4, 4)
	n, err := vix.NewNetwork(vix.NetworkConfig{
		Topology: topo,
		Router: vix.RouterConfig{
			Ports: topo.Radix, VCs: 6, VirtualInputs: 2, BufDepth: 5,
			AllocKind: vix.AllocSeparableIF, Policy: vix.PolicyBalanced,
		},
		Pattern:       vix.NewUniformTraffic(topo.NumNodes),
		InjectionRate: 0.05,
		PacketSize:    4,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Warmup(500)
	s := n.Measure(1500)
	if s.ThroughputFlits <= 0 || s.AvgLatency <= 0 {
		t.Fatalf("simulation produced no traffic: %+v", s)
	}
}

func TestPublicTopologyConstructors(t *testing.T) {
	cases := []struct {
		topo  *vix.Topology
		radix int
	}{
		{vix.NewMeshTopology(8, 8), 5},
		{vix.NewCMeshTopology(4, 4, 4), 8},
		{vix.NewFBflyTopology(4, 4, 4), 10},
	}
	for _, c := range cases {
		if c.topo.Radix != c.radix {
			t.Errorf("%s radix = %d, want %d", c.topo.Name, c.topo.Radix, c.radix)
		}
		if c.topo.NumNodes != 64 {
			t.Errorf("%s nodes = %d, want 64", c.topo.Name, c.topo.NumNodes)
		}
	}
}

func TestPublicTrafficConstructors(t *testing.T) {
	rng := vix.NewRNG(1)
	pats := []vix.TrafficPattern{
		vix.NewUniformTraffic(64),
		vix.NewTransposeTraffic(8, 8),
		vix.NewBitComplementTraffic(64),
		vix.NewBitReverseTraffic(64),
		vix.NewTornadoTraffic(8, 8),
		vix.NewHotspotTraffic(64, []int{0}, 0.2),
	}
	for _, p := range pats {
		for src := 0; src < 64; src += 13 {
			d := p.Dest(src, rng)
			if d == src || d < 0 || d >= 64 {
				t.Errorf("%s: bad destination %d from %d", p.Name(), d, src)
			}
		}
	}
	if _, err := vix.NewTrafficPattern("uniform", 8, 8); err != nil {
		t.Errorf("NewTrafficPattern failed: %v", err)
	}
	if _, err := vix.NewTrafficPattern("bogus", 8, 8); err == nil {
		t.Error("NewTrafficPattern accepted unknown name")
	}
}

// A custom allocator registered through the facade is usable by name and
// its grants satisfy the validation contract.
func TestPublicCustomAllocator(t *testing.T) {
	kind := vix.AllocatorKind("test-greedy")
	err := vix.RegisterAllocator(kind, func(cfg vix.AllocatorConfig) (vix.Allocator, error) {
		return &greedy{cfg: cfg}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vix.RegisterAllocator(kind, nil); err == nil {
		t.Error("nil factory accepted")
	}
	if err := vix.RegisterAllocator(vix.AllocSeparableIF, func(cfg vix.AllocatorConfig) (vix.Allocator, error) { return nil, nil }); err == nil {
		t.Error("built-in override accepted")
	}

	topo := vix.NewMeshTopology(4, 4)
	n, err := vix.NewNetwork(vix.NetworkConfig{
		Topology: topo,
		Router: vix.RouterConfig{
			Ports: topo.Radix, VCs: 4, VirtualInputs: 1, BufDepth: 5,
			AllocKind: kind, Policy: vix.PolicyMaxFree,
		},
		Pattern:       vix.NewUniformTraffic(topo.NumNodes),
		InjectionRate: 0.03,
		PacketSize:    2,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Warmup(400)
	if s := n.Measure(1200); s.FlitsEjected == 0 {
		t.Fatal("custom allocator moved no traffic")
	}
}

// greedy is a deliberately simple first-come allocator used to exercise
// the registration path.
type greedy struct{ cfg vix.AllocatorConfig }

func (g *greedy) Name() string { return "test-greedy" }
func (g *greedy) Reset()       {}
func (g *greedy) Allocate(rs *vix.RequestSet) []vix.SwitchGrant {
	rowUsed := map[int]bool{}
	outUsed := map[int]bool{}
	var grants []vix.SwitchGrant
	for i, r := range rs.Requests {
		row := g.cfg.Row(r.Port, r.VC)
		if rowUsed[row] || outUsed[r.OutPort] {
			continue
		}
		rowUsed[row] = true
		outUsed[r.OutPort] = true
		grants = append(grants, vix.SwitchGrant{Req: i, OutPort: r.OutPort, Row: row})
	}
	return grants
}

func TestPublicTimingAndEnergy(t *testing.T) {
	if len(vix.Table1()) != 6 || len(vix.Table3()) != 3 {
		t.Fatal("table shapes wrong through facade")
	}
	if vix.SADelay(5, 6, 1) >= vix.SADelay(10, 6, 1) {
		t.Error("SA delay not increasing in radix")
	}
	if vix.XbarDelay(10, 5) <= vix.XbarDelay(5, 5) {
		t.Error("crossbar delay not increasing with virtual inputs")
	}
	if vix.RouterCycleTime(5, 6) < vix.SADelay(5, 6, 1) {
		t.Error("cycle time below SA delay")
	}
	if vix.VADelay(5, 6) <= 0 {
		t.Error("non-positive VA delay")
	}
	if _, err := vix.EnergyPerBit(vix.DefaultEnergyParams(), vix.Snapshot{}, vix.EnergyNetwork{}); err == nil {
		t.Error("energy model accepted empty snapshot")
	}
}

func TestPublicBenchmarkSubstrate(t *testing.T) {
	if got := len(vix.BenchmarkCatalog()); got != 35 {
		t.Errorf("catalog size %d, want 35", got)
	}
	mixes := vix.BenchmarkMixes()
	if len(mixes) != 8 {
		t.Fatalf("mix count %d, want 8", len(mixes))
	}
	apps, err := mixes[0].Assign(64)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := vix.NewManycore(vix.DefaultManycoreConfig(), apps)
	if err != nil {
		t.Fatal(err)
	}
	topo := vix.NewMeshTopology(8, 8)
	n, err := vix.NewNetwork(vix.NetworkConfig{
		Topology: topo,
		Router: vix.RouterConfig{
			Ports: topo.Radix, VCs: 6, VirtualInputs: 2, BufDepth: 5,
			AllocKind: vix.AllocSeparableIF, Policy: vix.PolicyBalanced,
		},
		Workload: sys,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(800)
	total := 0.0
	for _, ipc := range sys.IPC(800) {
		total += ipc
	}
	if total <= 0 {
		t.Fatal("manycore system retired nothing through the facade")
	}
}

func TestPublicRouterBench(t *testing.T) {
	r, err := vix.RunRouterBench(vix.RouterBenchConfig{
		Radix: 5, VCs: 6, VirtualInputs: 2,
		AllocKind: vix.AllocSeparableIF, PacketSize: 1, Seed: 1,
	}, 200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.FlitsPerCycle <= 0 || r.Efficiency > 1 {
		t.Fatalf("router bench result out of range: %+v", r)
	}
}

func TestPublicDORHops(t *testing.T) {
	topo := vix.NewMeshTopology(8, 8)
	if got := vix.DORHops(topo, 0, 63); got != 14 {
		t.Errorf("corner-to-corner hops = %d, want 14", got)
	}
	if got := vix.DORHops(topo, 5, 5); got != 0 {
		t.Errorf("self hops = %d, want 0", got)
	}
}

func TestPublicAblationsAndSaturation(t *testing.T) {
	p := vix.DefaultExperimentParams()
	p.Warmup, p.Measure = 300, 800

	rows, err := vix.AblateVirtualInputs(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || rows[0].K != 1 {
		t.Fatalf("k sweep wrong: %+v", rows)
	}

	topo := vix.NewMeshTopology(4, 4)
	res, err := vix.FindSaturation(topo, "VIX", vix.AllocSeparableIF, 2, p, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate <= 0 {
		t.Fatalf("saturation rate %v", res.Rate)
	}
}

func TestPublicExperimentConfig(t *testing.T) {
	e := vix.DefaultExperiment()
	e.VirtualInputs = 2
	e.Allocator = string(vix.AllocISLIP)
	cfg, err := e.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := vix.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Warmup(200)
	if s := n.Measure(500); s.FlitsEjected == 0 {
		t.Fatal("experiment config produced no traffic")
	}
	if _, err := vix.LoadExperiment("/does/not/exist.json"); err == nil {
		t.Fatal("missing experiment file accepted")
	}
}

func TestPublicPartitionConstants(t *testing.T) {
	cfg := vix.AllocatorConfig{Ports: 5, VCs: 6, VirtualInputs: 2, Partition: vix.PartitionInterleaved}
	if cfg.Subgroup(1) != 1 {
		t.Fatal("interleaved partition not honoured through facade")
	}
	cfg.Partition = vix.PartitionContiguous
	if cfg.Subgroup(1) != 0 {
		t.Fatal("contiguous partition not honoured through facade")
	}
}

// Exercise the one-line experiment wrappers end-to-end at minimal scale
// so the facade surface stays wired to the harness.
func TestPublicFigureWrappers(t *testing.T) {
	p := vix.DefaultExperimentParams()
	p.Warmup, p.Measure = 150, 400

	if rows, err := vix.Figure7(p); err != nil || len(rows) != 15 {
		t.Fatalf("Figure7: %v (%d rows)", err, len(rows))
	}
	if pts, err := vix.Figure8(p, []float64{0.02}); err != nil || len(pts) != 8 {
		t.Fatalf("Figure8: %v (%d points)", err, len(pts))
	}
	if rows, err := vix.Figure9(p); err != nil || len(rows) != 4 {
		t.Fatalf("Figure9: %v (%d rows)", err, len(rows))
	}
	if rows, err := vix.Figure10(p); err != nil || len(rows) != 5 {
		t.Fatalf("Figure10: %v (%d rows)", err, len(rows))
	}
	if rows, err := vix.Figure11(p); err != nil || len(rows) != 2 {
		t.Fatalf("Figure11: %v (%d rows)", err, len(rows))
	}
	if rows, err := vix.Figure12(p); err != nil || len(rows) != 18 {
		t.Fatalf("Figure12: %v (%d rows)", err, len(rows))
	}
	if rows, err := vix.Table4(p); err != nil || len(rows) != 8 {
		t.Fatalf("Table4: %v (%d rows)", err, len(rows))
	}
	if rows, err := vix.AblatePolicies(p, []string{"uniform"}); err != nil || len(rows) != 3 {
		t.Fatalf("AblatePolicies: %v (%d rows)", err, len(rows))
	}
	if rows, err := vix.AblatePartition(p); err != nil || len(rows) != 6 {
		t.Fatalf("AblatePartition: %v (%d rows)", err, len(rows))
	}
	if rows, err := vix.AblatePipeline(p, 0.03); err != nil || len(rows) != 4 {
		t.Fatalf("AblatePipeline: %v (%d rows)", err, len(rows))
	}
	if rows, err := vix.AblateSpeculation(p, 0.03); err != nil || len(rows) != 4 {
		t.Fatalf("AblateSpeculation: %v (%d rows)", err, len(rows))
	}
	if rows, err := vix.AblateAllocators(p); err != nil || len(rows) != 8 {
		t.Fatalf("AblateAllocators: %v (%d rows)", err, len(rows))
	}
}

func TestPublicRadixScalingAndReplication(t *testing.T) {
	rows := vix.RadixScaling([]int{5, 10, 16}, 6)
	if len(rows) != 3 || !rows[0].Feasible || rows[2].Feasible {
		t.Fatalf("RadixScaling shape wrong: %+v", rows)
	}
	if f := vix.VIXFeasibilityFrontier(6); f != 10 {
		t.Fatalf("frontier = %d, want 10", f)
	}
	p := vix.DefaultExperimentParams()
	p.Warmup, p.Measure = 150, 400
	topo := vix.NewMeshTopology(4, 4)
	rep, err := vix.ReplicateSaturation(topo, "IF", vix.AllocSeparableIF, 1, p, []uint64{1, 2})
	if err != nil || rep.Seeds != 2 {
		t.Fatalf("ReplicateSaturation: %v %+v", err, rep)
	}
}
