// Command leaky constructs a network and drops the handle without
// Close, leaking parked pool goroutines when Workers > 1.
package main

import "fix/internal/network"

func main() {
	n, err := network.New(4)
	if err != nil {
		return
	}
	n.Step()
}
