// Command sweep runs a grid of (scheme, injection rate) simulations and
// emits one CSV row per point — the raw data behind Figure 8-style plots,
// ready for any plotting tool.
//
// Schemes are comma-separated allocator:k pairs, e.g.
//
//	sweep -schemes if:1,wavefront:1,ap:1,if:2 -rates 0.02,0.04,0.06,0.08
//
// The grid fans out across -parallel workers through internal/harness;
// the CSV is byte-identical whatever the worker count, because rows are
// merged in grid order and every point owns a sub-seed derived from its
// coordinates rather than from execution order. With -resume, completed
// points are checkpointed to a JSONL manifest and a rerun splices them
// in instead of recomputing.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"vix/internal/alloc"
	"vix/internal/config"
	"vix/internal/harness"
	"vix/internal/network"
	"vix/internal/sim"
)

// disableFlitPool is a test hook: the pooled-vs-fresh determinism test
// reruns the sweep with flit recycling off and asserts byte-identical CSV.
var disableFlitPool bool

// disableActivityGate is the same kind of hook for the activity-gated
// tick: the gated-vs-dense determinism test reruns the sweep on the
// dense loop and asserts byte-identical CSV.
var disableActivityGate bool

// scheme is one allocator:k coordinate of the grid.
type scheme struct {
	alloc string
	k     int
}

// sweepHeader is the CSV schema, stable across harness options.
var sweepHeader = []string{"allocator", "k", "offered_rate", "avg_latency", "p50_latency", "p99_latency", "throughput_flits", "throughput_packets", "fairness"}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		configPath = flag.String("config", "", "JSON experiment file used as the base configuration")
		topoName   = flag.String("topo", "", "override the base topology: mesh, torus, cmesh, or fbfly")
		schemesStr = flag.String("schemes", "if:1,wavefront:1,ap:1,if:2", "comma-separated allocator:k pairs")
		ratesStr   = flag.String("rates", "0.01,0.03,0.05,0.07,0.09", "comma-separated injection rates (packets/cycle/node)")
		saturate   = flag.Bool("sat", true, "append a saturation point per scheme")
		out        = flag.String("o", "", "output file (default stdout)")
		parallel   = flag.Int("parallel", 0, "worker count (default GOMAXPROCS)")
		workers    = flag.Int("workers", 1, "parallel-tick workers per simulation (1 serial, <0 GOMAXPROCS); output is byte-identical for any value")
		resume     = flag.String("resume", "", "JSONL manifest: checkpoint completed points and skip them on rerun")
		verbose    = flag.Bool("v", false, "log per-point telemetry (wall time, cycles/sec) to stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the sweep to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	base := config.Default()
	if *configPath != "" {
		var err error
		if base, err = config.Load(*configPath); err != nil {
			log.Fatal(err)
		}
	}
	if *topoName != "" {
		base.Topology = *topoName
		if err := base.Validate(); err != nil {
			log.Fatal(err)
		}
	}
	schemes, err := parseSchemes(*schemesStr)
	if err != nil {
		log.Fatal(err)
	}
	rates, err := parseRates(*ratesStr)
	if err != nil {
		log.Fatal(err)
	}

	var w io.Writer = os.Stdout
	var f *os.File
	if *out != "" {
		if f, err = os.Create(*out); err != nil {
			log.Fatal(err)
		}
		w = f
	}
	opt := harness.Options{Parallel: *parallel, Manifest: *resume}
	if *verbose {
		opt.OnDone = func(r harness.Result) {
			if r.Cached {
				log.Printf("%s: cached (manifest)", r.Name)
				return
			}
			log.Printf("%s: %v (%.0f cycles/sec)", r.Name, r.Telemetry.Duration().Round(time.Millisecond), r.Telemetry.CyclesPerSec)
		}
	}
	err = sweep(context.Background(), base, schemes, rates, *saturate, *workers, opt, w)
	// Every exit path closes and checks the output file: an error after
	// partial rows must not leave a silently truncated artifact behind.
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		log.Fatal(err)
	}
}

// sweep builds the grid, runs it through the harness, and renders the
// merged results as CSV. The writer is flushed and checked before
// returning on every path.
func sweep(ctx context.Context, base config.Experiment, schemes []scheme, rates []float64, saturate bool, tickWorkers int, opt harness.Options, w io.Writer) error {
	jobs := buildJobs(base, schemes, rates, saturate, tickWorkers)
	results, err := harness.Run(ctx, jobs, opt)
	if err != nil {
		return err
	}
	rows, err := harness.DecodeAll[[]string](results)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(sweepHeader); err != nil {
		return err
	}
	for _, rec := range rows {
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// buildJobs expands the (scheme, rate) grid into harness jobs. Each
// job's spec is the fully resolved config.Experiment — including the
// sub-seed derived from the base seed and the point's coordinates — so
// the manifest invalidates exactly when the point's physics change.
// tickWorkers sets each simulation's parallel-tick width; it is a
// wall-clock knob with byte-identical output, so it deliberately stays
// out of the spec and never invalidates a manifest.
func buildJobs(base config.Experiment, schemes []scheme, rates []float64, saturate bool, tickWorkers int) []harness.Job {
	var jobs []harness.Job
	point := func(sc scheme, rate float64, max bool) harness.Job {
		e := base
		e.Allocator = sc.alloc
		e.VirtualInputs = sc.k
		e.Policy = "" // re-derive from k
		e.InjectionRate = rate
		e.MaxInjection = max
		offered := offeredLabel(rate, max)
		e.Seed = sim.DeriveSeed(base.Seed, "sweep", sc.alloc, strconv.Itoa(sc.k), offered)
		name := fmt.Sprintf("sweep/%s:%d/%s", sc.alloc, sc.k, offered)
		return harness.Job{
			Name:   name,
			Spec:   e,
			Cycles: int64(e.Warmup + e.Measure),
			Run: func(context.Context) (any, error) {
				cfg, err := e.Build()
				if err != nil {
					return nil, err
				}
				cfg.DisableFlitPool = disableFlitPool
				cfg.DisableActivityGate = disableActivityGate
				cfg.Workers = tickWorkers
				n, err := network.New(cfg)
				if err != nil {
					return nil, err
				}
				defer n.Close()
				n.Warmup(e.Warmup)
				s := n.Measure(e.Measure)
				return []string{
					sc.alloc, strconv.Itoa(sc.k), offered,
					fmt.Sprintf("%.3f", s.AvgLatency),
					strconv.FormatInt(s.P50Latency, 10),
					strconv.FormatInt(s.P99Latency, 10),
					fmt.Sprintf("%.5f", s.ThroughputFlits),
					fmt.Sprintf("%.5f", s.ThroughputPackets),
					fmt.Sprintf("%.3f", s.FairnessRatio),
				}, nil
			},
		}
	}
	for _, sc := range schemes {
		for _, rate := range rates {
			jobs = append(jobs, point(sc, rate, false))
		}
		if saturate {
			jobs = append(jobs, point(sc, 0, true))
		}
	}
	return jobs
}

// offeredLabel formats the offered-load column: "saturation" for
// max-injection points.
func offeredLabel(rate float64, max bool) string {
	if max {
		return "saturation"
	}
	return fmt.Sprintf("%g", rate)
}

// parseSchemes parses comma-separated allocator:k pairs, rejecting
// unknown allocators and impossible crossbar geometry up front — the
// same checks config.Experiment.Validate applies to a spec file —
// so a typo fails before any point simulates.
func parseSchemes(s string) ([]scheme, error) {
	var schemes []scheme
	for _, part := range strings.Split(s, ",") {
		name, kStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad scheme %q: want allocator:k", part)
		}
		k, err := strconv.Atoi(kStr)
		if err != nil {
			return nil, fmt.Errorf("bad virtual-input count in %q: %v", part, err)
		}
		if k < 1 {
			return nil, fmt.Errorf("bad scheme %q: virtual-input count must be at least 1", part)
		}
		if !alloc.Known(alloc.Kind(name)) {
			return nil, fmt.Errorf("bad scheme %q: unknown allocator %q (want one of %v)", part, name, alloc.Kinds())
		}
		schemes = append(schemes, scheme{alloc: name, k: k})
	}
	return schemes, nil
}

// parseRates parses comma-separated injection rates, bounds-checked the
// way config.Experiment.Validate bounds injection_rate.
func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, r := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(r), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %v", r, err)
		}
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("bad rate %q: injection rate is packets/cycle/node in [0, 1]", r)
		}
		rates = append(rates, v)
	}
	return rates, nil
}
