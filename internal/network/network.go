// Package network assembles routers, links, and network interfaces into a
// cycle-accurate network-on-chip simulation matching the paper's
// methodology: three-stage routers with lookahead routing, wormhole
// switching, virtual-channel flow control, credit-based backpressure,
// finite input buffering, and statistical traffic injection.
package network

import (
	"errors"
	"fmt"
	"math/bits"

	"vix/internal/alloc"
	"vix/internal/router"
	"vix/internal/routing"
	"vix/internal/sim"
	"vix/internal/stats"
	"vix/internal/topology"
	"vix/internal/traffic"
)

// PacketSpec describes one packet a workload wants to send.
type PacketSpec struct {
	Dst  int
	Size int
	// Tag is an opaque workload identifier carried to Delivered.
	Tag uint64
}

// Delivery describes a completed packet for workload callbacks.
type Delivery struct {
	Src, Dst    int
	Tag         uint64
	CreateCycle int64
	EjectCycle  int64
	Hops        int
}

// Workload drives packet generation. The statistical workload of the
// paper's Section 4 is the default; the trace-driven manycore of Section
// 4.7 plugs in its own implementation.
type Workload interface {
	// Generate is invoked once per node per cycle and returns the
	// packets to enqueue at that node's source queue.
	Generate(node int, cycle int64, rng *sim.RNG) []PacketSpec
	// Delivered is invoked when a packet's tail flit ejects.
	Delivered(d Delivery)
}

// Ticker is an optional Workload extension: Tick runs once per cycle,
// after link deliveries (and hence all Delivered callbacks for the cycle)
// and before any Generate call, letting stateful workloads such as the
// manycore model advance cores and caches with a consistent view.
type Ticker interface {
	Tick(cycle int64)
}

// NodeActivity is an optional Workload extension the activity-gated tick
// consults: NodeActive reports whether Generate(node, cycle, rng) could
// do anything this cycle. Returning false is a promise that the Generate
// call would return no packets, consume no randomness, and have no side
// effects, so the gated tick skips it without changing behaviour. The
// statistical traffic process has no such hint — it consumes one RNG
// draw per node per cycle, so generation stays dense without a Workload
// — but trace-driven workloads like the manycore system implement it as
// a queue-empty test, which is where large mostly-idle networks win.
type NodeActivity interface {
	NodeActive(node int, cycle int64) bool
}

// Config describes one network simulation.
type Config struct {
	Topology *topology.Topology
	Router   router.Config
	Pattern  traffic.Pattern

	// Workload overrides the statistical traffic process built from
	// Pattern/InjectionRate/MaxInjection when non-nil.
	Workload Workload

	// InjectionRate is the offered load in packets/cycle/node. When
	// MaxInjection is set the rate is ignored and every source keeps a
	// packet backlog, measuring saturation throughput.
	InjectionRate float64
	MaxInjection  bool

	// PacketSize is the flits per packet (the paper uses 4: 512-bit
	// packets over a 128-bit datapath; the packet-chaining study uses 1).
	PacketSize int

	Seed uint64

	// OnEject, when non-nil, observes every flit as it leaves the
	// network (after statistics are updated). Tests use it to check
	// ordering invariants. The flit is recycled through the network's
	// free-list pool as soon as the callback returns, so the callback
	// must not retain the pointer; copy any fields it needs.
	OnEject func(f *router.Flit)

	// DisableFlitPool turns off flit recycling so every flit is freshly
	// allocated, as before the free-list pool existed. It is a test hook:
	// the determinism regression test runs pooled and fresh simulations
	// side by side and asserts identical output.
	DisableFlitPool bool

	// FlitArenaCapacity pre-sizes the flit arena's slab to at least this
	// many slots (0 selects the minimum batch). Slot assignment is never
	// observable, so pre-sizing only avoids mid-run slab growth; the
	// arena-growth regression test runs grown and pre-sized simulations
	// side by side and asserts identical output.
	FlitArenaCapacity int

	// DisableActivityGate turns off the activity-gated tick and runs the
	// classic dense loops that visit every router and NI each cycle. The
	// gated tick is byte-identical to the dense one by construction (see
	// DESIGN.md section 15); this escape hatch keeps the dense path
	// testable, and the gated-vs-dense lockstep tests run both side by
	// side and assert identical snapshots and ejection sequences.
	DisableActivityGate bool

	// HopDelay is the cycles from a switch-allocation win at one router
	// to eligibility at the next (SA + switch traversal + link
	// traversal = 3 for the paper's three-stage pipeline). CreditDelay
	// is the credit return latency. Zero values select the defaults.
	HopDelay    int
	CreditDelay int

	// DeadlockCycles is the forward-progress watchdog: if flits are in
	// flight but none ejects for this many consecutive cycles, Step
	// panics with a diagnostic (a correct DOR configuration can never
	// trip it). Zero selects the default; negative disables the check.
	DeadlockCycles int

	// Workers is the number of workers the per-cycle router tick fans
	// out across. 0 or 1 runs the classic serial loop; N > 1 ticks
	// routers on N workers (the stepping goroutine plus up to N-1 pooled
	// goroutines); negative selects GOMAXPROCS. Statistics and ejection
	// order are byte-identical for every value: within a cycle routers
	// interact only through the delayed link/credit/ejection wheels, so
	// router ticks are data-independent, and all cross-router effects
	// are merged in router-index order on the stepping goroutine (see
	// parallel.go). Traffic generation and injection always stay on the
	// stepping goroutine, which owns the RNG streams. A network with
	// Workers > 1 parks background goroutines between cycles; call Close
	// to release them when the instance is done.
	Workers int
}

// Defaults for the three-stage pipeline of Figure 6(b).
const (
	DefaultHopDelay    = 3
	DefaultCreditDelay = 2
	DefaultPacketSize  = 4
	// DefaultDeadlockCycles bounds how long the network may hold flits
	// without ejecting any before the watchdog trips. Saturated meshes
	// eject every few cycles, so this is far outside normal behaviour.
	DefaultDeadlockCycles = 20000
)

func (c *Config) setDefaults() {
	if c.HopDelay == 0 {
		c.HopDelay = DefaultHopDelay
	}
	if c.CreditDelay == 0 {
		c.CreditDelay = DefaultCreditDelay
	}
	if c.PacketSize == 0 {
		c.PacketSize = DefaultPacketSize
	}
	if c.DeadlockCycles == 0 {
		c.DeadlockCycles = DefaultDeadlockCycles
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Topology == nil {
		return errors.New("network: Topology is required")
	}
	if c.Router.Ports != c.Topology.Radix {
		return fmt.Errorf("network: router has %d ports but topology radix is %d", c.Router.Ports, c.Topology.Radix)
	}
	if c.PacketSize < 0 {
		return fmt.Errorf("network: negative packet size %d", c.PacketSize)
	}
	if c.Workload == nil {
		if c.Pattern == nil {
			return errors.New("network: Pattern is required without a Workload")
		}
		if c.InjectionRate < 0 {
			return fmt.Errorf("network: negative injection rate %v", c.InjectionRate)
		}
		if !c.MaxInjection && c.InjectionRate == 0 {
			return errors.New("network: zero injection rate without MaxInjection")
		}
	}
	return c.Router.Validate()
}

// flitDelivery and creditDelivery are in-flight events on links. Flits
// travel as arena indices; the pointer is resolved only at delivery.
type flitDelivery struct {
	router, port int
	vc           int
	flit         router.FlitID
}

type creditDelivery struct {
	router, outPort, vc int
}

// queuedPacket is one not-yet-injected packet in an NI source queue:
// everything inject needs to materialise the packet's flits one per
// cycle. Queued packets hold no arena slots, so the live flit
// population — and with it the slab high-water mark — is bounded by the
// network's buffering, not by source backlog: a saturated run's queues
// grow by 40 bytes per packet of descriptor, never by flits.
type queuedPacket struct {
	id          uint64
	dst         int
	tag         uint64
	size        int
	createCycle int64
}

// ni is the network interface of one terminal node: an unbounded source
// queue feeding the node's local input port at one flit per cycle. The
// queue is a deque over a reused backing array: popping advances head
// instead of reslicing from the front, so sustained backlog does not leak
// an ever-growing prefix of consumed slots.
type ni struct {
	node  int
	rng   *sim.RNG
	queue []queuedPacket
	head  int // index of the front packet within queue
	seq   int // flits of the front packet already injected
	flits int // queued flits not yet injected
	curVC int
}

// pending returns the number of queued flits.
func (q *ni) pending() int { return q.flits }

// backlog returns the number of queued packets.
func (q *ni) backlog() int { return len(q.queue) - q.head }

// front returns the next packet to inject flits of; q must be non-empty.
func (q *ni) front() *queuedPacket { return &q.queue[q.head] }

// push appends a packet, compacting consumed front slots first when the
// backing array is full so append never grows it unnecessarily.
func (q *ni) push(p queuedPacket) {
	if q.head > 0 && len(q.queue) == cap(q.queue) {
		n := copy(q.queue, q.queue[q.head:])
		q.queue = q.queue[:n]
		q.head = 0
	}
	q.queue = append(q.queue, p)
	q.flits += p.size
}

// popFlit consumes one flit of the front packet (of the given size),
// retiring the packet when its tail goes. Consumed slots hold no
// pointers; compaction in push reclaims them.
func (q *ni) popFlit(size int) {
	q.flits--
	q.seq++
	if q.seq == size {
		q.seq = 0
		q.head++
		if q.head == len(q.queue) {
			q.queue = q.queue[:0]
			q.head = 0
		}
	}
}

// Network is a running simulation instance.
type Network struct {
	cfg   Config
	topo  *topology.Topology
	route routing.Func

	routers []*router.Router
	nis     []*ni

	cycle        int64
	nextPacketID uint64

	qlen   int
	flitQ  [][]flitDelivery
	credQ  [][]creditDelivery
	ejectQ [][]router.FlitID

	col *stats.Collector

	// flits is the network's flit arena: every live flit occupies one slot
	// of its contiguous slab, named by FlitID everywhere in the hot path.
	// The free-index stack replaces the old pointer pool; its high-water
	// mark is bounded by the flits live at once (buffers, links, and the
	// small NI backlogs), so the steady state allocates nothing.
	flits *router.FlitArena

	inFlight int64 // flits inside routers or on links (not source queues)

	lastEjectCycle int64 // watchdog: last cycle any flit ejected

	// Activity-gate state (nil when Config.DisableActivityGate): packed
	// activity words for routers (buffered flits, or a delivery, credit,
	// or injection this cycle) and for NIs with queued flits, plus the
	// cycle each router last ticked so reactivation can fast-forward the
	// skipped idle span (Router.SkipIdle). The invariant every activation
	// source upholds: any state change that can make a router do work
	// next cycle sets its bit before the router pass runs.
	actR     sim.Bitset
	actNI    sim.Bitset
	lastTick []int64
	nodeAct  NodeActivity // non-nil when the workload provides the hint

	// routerTicks counts Router.Tick calls actually executed, the work
	// the gate exists to avoid; tests and benchmarks compare it against
	// routers x cycles to prove idle routers really were skipped.
	routerTicks int64

	// Parallel tick state (nil/empty when Workers <= 1): the shard pool,
	// the block partition of routers, and the phase-A function value,
	// built once so the per-cycle fan-out allocates nothing. With the
	// activity gate on, act replaces shards: the pool fans out over the
	// cycle's worklist of active routers instead of the full range.
	pool    *sim.Pool
	shards  []tickShard
	shardFn func(int)
	act     activeScratch
}

// New builds a network simulation from cfg.
func New(cfg Config) (*Network, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo := cfg.Topology
	n := &Network{
		cfg:   cfg,
		topo:  topo,
		route: routing.DOR(topo),
		col:   stats.NewCollector(topo.NumNodes),
	}
	n.qlen = cfg.HopDelay
	if cfg.CreditDelay > n.qlen {
		n.qlen = cfg.CreditDelay
	}
	n.qlen++
	n.flitQ = make([][]flitDelivery, n.qlen)
	n.credQ = make([][]creditDelivery, n.qlen)
	n.ejectQ = make([][]router.FlitID, n.qlen)

	n.flits = router.NewFlitArena(cfg.FlitArenaCapacity, cfg.DisableFlitPool)
	arena := router.NewArena(topo.NumRouters, cfg.Router, n.flits)
	root := sim.NewRNG(cfg.Seed)
	n.routers = make([]*router.Router, topo.NumRouters)
	vcRange := func(r int) router.VCRangeFunc { return nil }
	if topo.Kind == topology.KindTorus {
		if (topo.W >= 3 || topo.H >= 3) && cfg.Router.VCs < 2 {
			return nil, fmt.Errorf("network: torus %dx%d needs at least 2 VCs for the dateline classes, got %d",
				topo.W, topo.H, cfg.Router.VCs)
		}
		vcRange = n.torusVCRangeFunc
	}
	for r := 0; r < topo.NumRouters; r++ {
		ports := make([]router.PortInfo, topo.Radix)
		for p, c := range topo.Conn[r] {
			ports[p] = router.PortInfo{Kind: c.Kind, Dim: c.Dim}
		}
		a, err := alloc.New(cfg.Router.AllocKind, cfg.Router.Alloc())
		if err != nil {
			return nil, err
		}
		n.routers[r] = router.New(r, cfg.Router, ports, a, n.nextDimFunc(r), vcRange(r), arena)
	}
	n.nis = make([]*ni, topo.NumNodes)
	for node := 0; node < topo.NumNodes; node++ {
		n.nis[node] = &ni{node: node, rng: root.Fork(uint64(node)), curVC: -1}
	}
	if !cfg.DisableActivityGate {
		n.actR = sim.NewBitset(topo.NumRouters)
		n.actNI = sim.NewBitset(topo.NumNodes)
		n.lastTick = make([]int64, topo.NumRouters)
		for i := range n.lastTick {
			n.lastTick[i] = -1
		}
		if na, ok := cfg.Workload.(NodeActivity); ok {
			n.nodeAct = na
		}
	}
	n.initParallel()
	return n, nil
}

// torusVCRangeFunc returns the dateline VC restriction for router r on a
// torus: packets still headed for their ring's wrap edge may only take
// the lower half of the downstream VCs (class 0), packets past it — or
// never crossing — the upper half (class 1). Splitting every output
// port's VC set into the two dateline classes cuts the wraparound
// channel-dependency cycles, keeping minimal routing deadlock-free (see
// routing.TorusVCClass for the argument).
func (n *Network) torusVCRangeFunc(r int) router.VCRangeFunc {
	vcs := n.cfg.Router.VCs
	half := vcs / 2
	return func(outPort, dst int) (int, int) {
		switch routing.TorusVCClass(n.topo, r, outPort, dst) {
		case 0:
			return 0, half
		case 1:
			return half, vcs
		default:
			return 0, vcs
		}
	}
}

// nextDimFunc returns the lookahead dimension classifier for router r:
// the dimension class of the port the packet will request at the router
// reached through outPort.
func (n *Network) nextDimFunc(r int) router.NextDimFunc {
	return func(outPort, dst int) topology.Dim {
		c := n.topo.Conn[r][outPort]
		if c.Kind != topology.Link {
			return topology.DimLocal
		}
		peer := c.PeerRouter
		p := n.route(n.topo, peer, dst)
		return n.topo.Conn[peer][p].Dim
	}
}

// Cycle returns the current simulation cycle.
func (n *Network) Cycle() int64 { return n.cycle }

// Collector returns the live statistics collector.
func (n *Network) Collector() *stats.Collector { return n.col }

// InFlight returns the number of flits inside the network (router buffers
// and links), excluding source queues.
func (n *Network) InFlight() int64 { return n.inFlight }

// QueuedAtSources returns the flits waiting in NI source queues.
func (n *Network) QueuedAtSources() int64 {
	var q int64
	for _, nif := range n.nis {
		q += int64(nif.pending())
	}
	return q
}

// Step advances the simulation one cycle.
//
// With the activity gate on (the default), the per-cycle loops over all
// routers and NIs are replaced by walks over packed activity bitsets,
// visiting the same indices the dense loops would — in the same
// ascending order, which is what keeps RNG streams, statistics, and CSV
// output byte-identical (DESIGN.md section 15). Every delivery, credit,
// and injection marks its destination router's bit before the router
// pass runs; a router whose Tick reports quiescence has its bit cleared
// and is fast-forwarded with SkipIdle when it next reactivates.
//
//vixlint:hot
func (n *Network) Step() {
	slot := int(n.cycle % int64(n.qlen))
	gate := n.actR != nil

	// Deliver link events scheduled for this cycle.
	for _, d := range n.flitQ[slot] {
		n.routers[d.router].DeliverFlit(d.port, d.vc, d.flit)
		n.col.BufferWrite()
		if gate {
			n.actR.Set(d.router)
		}
	}
	n.flitQ[slot] = n.flitQ[slot][:0]
	for _, d := range n.credQ[slot] {
		rt := n.routers[d.router]
		rt.DeliverCredit(d.outPort, d.vc)
		// A credit is applied eagerly above; it only creates work — and
		// so only needs to wake the router — if flits are buffered. An
		// empty router's tick is the empty tick SkipIdle replays.
		if gate && rt.Busy() {
			n.actR.Set(d.router)
		}
	}
	n.credQ[slot] = n.credQ[slot][:0]
	for _, id := range n.ejectQ[slot] {
		n.eject(id)
	}
	n.ejectQ[slot] = n.ejectQ[slot][:0]

	// Workload state machines advance once all deliveries are visible.
	if t, ok := n.cfg.Workload.(Ticker); ok {
		t.Tick(n.cycle)
	}

	// Traffic generation and injection. The dense path interleaves
	// generate and inject per node; the gated path generates first (for
	// all nodes, or only workload-active ones under the NodeActivity
	// hint) and then injects only from NIs with queued flits. The split
	// is behaviour-preserving: generation touches only per-NI state, the
	// shared packet-ID counter, and the flit pool — all in the same
	// ascending node order either way — and injection at one node never
	// observes another node's injection (distinct local ports).
	switch {
	case !gate:
		for _, nif := range n.nis {
			n.generate(nif)
			n.inject(nif)
		}
	case n.nodeAct == nil:
		for _, nif := range n.nis {
			n.generate(nif)
		}
		n.injectActive()
	default:
		for _, nif := range n.nis {
			if n.nodeAct.NodeActive(nif.node, n.cycle) {
				n.generate(nif)
			}
		}
		n.injectActive()
	}

	// Router pipelines: dense serial loop, dense sharded tick, or the
	// gated serial/worklist variants — byte-identical by construction.
	switch {
	case gate && n.pool != nil:
		n.tickActiveParallel()
	case gate:
		n.tickActiveSerial()
	case n.pool != nil:
		n.tickRoutersParallel()
		n.routerTicks += int64(len(n.routers))
	default:
		for r, rt := range n.routers {
			ems, credits, _ := rt.Tick()
			for _, e := range ems {
				n.forward(r, e)
			}
			for _, cm := range credits {
				n.scheduleCredit(r, cm)
			}
		}
		n.routerTicks += int64(len(n.routers))
	}

	n.col.Tick()
	if n.cfg.DeadlockCycles > 0 && n.inFlight > 0 &&
		n.cycle-n.lastEjectCycle > int64(n.cfg.DeadlockCycles) {
		panic(fmt.Sprintf(
			"network: no flit ejected for %d cycles with %d flits in flight at cycle %d — deadlock or livelock",
			n.cfg.DeadlockCycles, n.inFlight, n.cycle))
	}
	n.cycle++
}

// injectActive drains one flit from every NI with queued flits, walking
// the NI activity words in ascending node order — the same order the
// dense loop calls inject.
func (n *Network) injectActive() {
	for wi, w := range n.actNI {
		for ; w != 0; w &= w - 1 {
			n.inject(n.nis[wi<<6+bits.TrailingZeros64(w)])
		}
	}
}

// tickActiveSerial ticks this cycle's active routers in ascending index
// order, fast-forwarding each across the idle span since it last ticked
// and clearing the bits of routers that quiesced. Activations during the
// walk only target future cycles (the delayed wheels), so iterating
// copied words is exact.
func (n *Network) tickActiveSerial() {
	for wi, w := range n.actR {
		for ; w != 0; w &= w - 1 {
			r := wi<<6 + bits.TrailingZeros64(w)
			rt := n.routers[r]
			if skip := n.cycle - n.lastTick[r] - 1; skip > 0 {
				rt.SkipIdle(int(skip))
			}
			n.lastTick[r] = n.cycle
			n.routerTicks++
			ems, credits, quiesced := rt.Tick()
			for _, e := range ems {
				n.forward(r, e)
			}
			for _, cm := range credits {
				n.scheduleCredit(r, cm)
			}
			if quiesced {
				n.actR.Clear(r)
			}
		}
	}
}

// forward routes an emission from router r onto its link or to ejection.
func (n *Network) forward(r int, e router.Emission) {
	n.col.BufferRead()
	n.col.XbarTraversal()
	conn := n.topo.Conn[r][e.OutPort]
	arrive := int((n.cycle + int64(n.cfg.HopDelay)) % int64(n.qlen))
	switch conn.Kind {
	case topology.Link:
		n.col.LinkTraversal()
		f := n.flits.At(e.Flit)
		f.Route = n.route(n.topo, conn.PeerRouter, f.Dst)
		n.flitQ[arrive] = append(n.flitQ[arrive], flitDelivery{
			router: conn.PeerRouter, port: conn.PeerPort, vc: f.VC, flit: e.Flit,
		})
	case topology.Local:
		n.ejectQ[arrive] = append(n.ejectQ[arrive], e.Flit)
	default:
		panic(fmt.Sprintf("network: emission through unused port %d of router %d", e.OutPort, r))
	}
}

// scheduleCredit returns a freed credit to the upstream router after the
// credit delay.
func (n *Network) scheduleCredit(r int, cm router.CreditMsg) {
	conn := n.topo.Conn[r][cm.Port]
	upSlot := int((n.cycle + int64(n.cfg.CreditDelay)) % int64(n.qlen))
	n.credQ[upSlot] = append(n.credQ[upSlot], creditDelivery{
		router: conn.PeerRouter, outPort: conn.PeerPort, vc: cm.VC,
	})
}

// eject retires a flit at its destination and updates statistics. The
// pointer is resolved once here — OnEject keeps its *Flit signature —
// and the slot returns to the arena's free stack afterwards.
func (n *Network) eject(id router.FlitID) {
	f := n.flits.At(id)
	f.EjectCycle = n.cycle
	n.inFlight--
	n.lastEjectCycle = n.cycle
	n.col.FlitEjected(f.Src)
	if f.Type.IsTail() {
		n.col.PacketEjected(n.cycle-f.CreateCycle, f.Hops)
		if n.cfg.Workload != nil {
			n.cfg.Workload.Delivered(Delivery{
				Src: f.Src, Dst: f.Dst, Tag: f.Tag,
				CreateCycle: f.CreateCycle, EjectCycle: n.cycle, Hops: f.Hops,
			})
		}
	}
	if n.cfg.OnEject != nil {
		n.cfg.OnEject(f)
	}
	n.flits.Free(id)
}

// Routers exposes the router instances; tests use it to check credit and
// buffer invariants.
func (n *Network) Routers() []*router.Router { return n.routers }

// generate enqueues new packets at nif according to the workload or the
// statistical traffic process.
func (n *Network) generate(nif *ni) {
	if n.cfg.Workload != nil {
		for _, spec := range n.cfg.Workload.Generate(nif.node, n.cycle, nif.rng) {
			n.enqueuePacket(nif, spec)
		}
		return
	}
	if n.cfg.MaxInjection {
		for nif.backlog() < 2 {
			n.enqueuePacket(nif, PacketSpec{
				Dst:  n.cfg.Pattern.Dest(nif.node, nif.rng),
				Size: n.cfg.PacketSize,
			})
		}
		return
	}
	if nif.rng.Bernoulli(n.cfg.InjectionRate) {
		n.enqueuePacket(nif, PacketSpec{
			Dst:  n.cfg.Pattern.Dest(nif.node, nif.rng),
			Size: n.cfg.PacketSize,
		})
	}
}

func (n *Network) enqueuePacket(nif *ni, spec PacketSpec) {
	id := n.nextPacketID
	n.nextPacketID++
	size := spec.Size
	if size <= 0 {
		size = n.cfg.PacketSize
	}
	if size <= 0 {
		panic("network: packet size must be positive")
	}
	nif.push(queuedPacket{
		id:          id,
		dst:         spec.Dst,
		tag:         spec.Tag,
		size:        size,
		createCycle: n.cycle,
	})
	if n.actNI != nil {
		n.actNI.Set(nif.node)
	}
}

// inject moves at most one flit from nif's source queue into the local
// input port of its router, choosing an injection VC for head flits with
// the same sub-group policy the routers use.
func (n *Network) inject(nif *ni) {
	if nif.pending() == 0 {
		return
	}
	p := nif.front()
	r := n.topo.NodeRouter[nif.node]
	port := n.topo.NodePort[nif.node]
	rt := n.routers[r]
	ft := router.PacketFlitType(nif.seq, p.size)
	route := n.route(n.topo, r, p.dst)

	if ft.IsHead() {
		if nif.curVC >= 0 {
			panic("network: head flit while previous packet still streaming")
		}
		vc := n.chooseInjectionVC(rt, r, port, route)
		if vc < 0 {
			return // no space at the local port this cycle
		}
		nif.curVC = vc
	}
	if rt.BufferSpace(port, nif.curVC) == 0 {
		return
	}
	// The flit is materialised only now that it is certain to enter the
	// network, so source backlog never pins arena slots.
	fid := n.flits.Alloc()
	f := n.flits.At(fid)
	f.PacketID = p.id
	f.Type = ft
	f.Src = nif.node
	f.Dst = p.dst
	f.Tag = p.tag
	f.Seq = nif.seq
	f.PacketSize = p.size
	f.CreateCycle = p.createCycle
	f.Route = route
	f.VC = -1
	rt.DeliverFlit(port, nif.curVC, fid)
	n.col.BufferWrite()
	n.inFlight++
	nif.popFlit(p.size)
	if n.actR != nil {
		n.actR.Set(r)
		if nif.pending() == 0 {
			n.actNI.Clear(nif.node)
		}
	}
	if ft.IsHead() {
		f.InjectCycle = n.cycle
		n.col.PacketInjected(f.PacketSize)
	}
	if ft.IsTail() {
		nif.curVC = -1
	}
}

// chooseInjectionVC picks the local-port VC a new packet starts in:
// prefer the sub-group matching the packet's first route dimension (so
// VIX virtual inputs at the injection router see diverse requests), then
// the VC with the most space. Returns -1 if nothing has space.
func (n *Network) chooseInjectionVC(rt *router.Router, r, port, route int) int {
	acfg := n.cfg.Router.Alloc()
	dim := n.topo.Conn[r][route].Dim
	prefGroup := 0
	if acfg.VirtualInputs > 1 && dim != topology.DimX {
		prefGroup = acfg.VirtualInputs - 1
	}
	best, bestSpace := -1, 0
	bestPref := false
	for vc := 0; vc < n.cfg.Router.VCs; vc++ {
		// Any VC with space is eligible: the NI streams packets strictly
		// sequentially, so a new packet queued behind the previous tail
		// in the same VC preserves wormhole FIFO order.
		space := rt.BufferSpace(port, vc)
		if space == 0 {
			continue
		}
		pref := acfg.Subgroup(vc) == prefGroup
		if best < 0 || (pref && !bestPref) || (pref == bestPref && space > bestSpace) {
			best, bestSpace, bestPref = vc, space, pref
		}
	}
	return best
}

// Run advances the simulation the given number of cycles.
func (n *Network) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		n.Step()
	}
}

// Warmup runs the given cycles and then clears statistics.
func (n *Network) Warmup(cycles int) {
	n.Run(cycles)
	n.col.Reset()
}

// Measure runs the given cycles and returns the window's snapshot.
func (n *Network) Measure(cycles int) stats.Snapshot {
	n.Run(cycles)
	return n.col.Snapshot()
}

// RouterTicks returns the number of Router.Tick calls executed so far.
// With the activity gate on this is the work actually done; the dense
// loop always reports routers x cycles.
func (n *Network) RouterTicks() int64 { return n.routerTicks }
