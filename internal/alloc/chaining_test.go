package alloc

import (
	"testing"

	"vix/internal/sim"
)

// A connection granted last cycle must be preserved this cycle when the
// same input port requests the same output again (SameInput, anyVC).
func TestChainingPreservesConnections(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 4, VirtualInputs: 1}
	pc := NewPacketChaining(cfg)

	// Cycle 1: ports 0 and 1 both want output 2; exactly one wins.
	rs := &RequestSet{Config: cfg, Requests: []Request{
		{Port: 0, VC: 0, OutPort: 2},
		{Port: 1, VC: 0, OutPort: 2},
	}}
	g1 := pc.Allocate(rs)
	if len(g1) != 1 {
		t.Fatalf("cycle 1 granted %d, want 1", len(g1))
	}
	winner := g1[0].Request(rs).Port

	// Cycle 2: same requests; the previous winner must keep the output.
	g2 := pc.Allocate(rs)
	if len(g2) != 1 || g2[0].Request(rs).Port != winner {
		t.Fatalf("cycle 2 did not preserve connection: %+v (prev winner port %d)", g2, winner)
	}
}

// Chaining is anyVC: a different VC of the same input port chains onto
// the held connection.
func TestChainingAnyVC(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 4, VirtualInputs: 1}
	pc := NewPacketChaining(cfg)

	g1 := pc.Allocate(&RequestSet{Config: cfg, Requests: []Request{
		{Port: 3, VC: 0, OutPort: 1},
	}})
	if len(g1) != 1 {
		t.Fatalf("setup grant failed: %v", g1)
	}

	// Next cycle the same port requests output 1 from VC 2, while port 4
	// also wants output 1. The chain must win.
	rs2 := &RequestSet{Config: cfg, Requests: []Request{
		{Port: 3, VC: 2, OutPort: 1},
		{Port: 4, VC: 0, OutPort: 1},
	}}
	g2 := pc.Allocate(rs2)
	found := false
	for _, g := range g2 {
		if g.OutPort == 1 {
			if p := g.Request(rs2).Port; p != 3 {
				t.Fatalf("output 1 granted to port %d, want chained port 3", p)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("output 1 not granted at all")
	}
}

// A broken chain (no request for the held output) frees the output for
// other ports.
func TestChainingReleasesWhenUnrequested(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 4, VirtualInputs: 1}
	pc := NewPacketChaining(cfg)
	pc.Allocate(&RequestSet{Config: cfg, Requests: []Request{
		{Port: 0, VC: 0, OutPort: 2},
	}})
	rs := &RequestSet{Config: cfg, Requests: []Request{
		{Port: 1, VC: 0, OutPort: 2},
	}}
	g := pc.Allocate(rs)
	if len(g) != 1 || g[0].Request(rs).Port != 1 {
		t.Fatalf("released output not granted to new requestor: %+v", g)
	}
}

// Under sustained uniform single-flit traffic, packet chaining must beat
// plain separable IF (the premise of Figure 10), and both must stay valid.
func TestChainingBeatsIFOnPersistentTraffic(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 1}
	ifAlloc := NewSeparableIF(cfg)
	pc := NewPacketChaining(cfg)
	rngA, rngB := sim.NewRNG(21), sim.NewRNG(21)

	// Persistent traffic: each VC holds a multi-cycle stream to one
	// output, re-randomised occasionally — the regime chaining exploits.
	persistent := func(rng *sim.RNG, dest [][]int) *RequestSet {
		rs := &RequestSet{Config: cfg}
		for p := 0; p < cfg.Ports; p++ {
			for v := 0; v < cfg.VCs; v++ {
				if rng.Bernoulli(0.05) {
					dest[p][v] = rng.Intn(cfg.Ports)
				}
				rs.Requests = append(rs.Requests, Request{Port: p, VC: v, OutPort: dest[p][v]})
			}
		}
		return rs
	}
	mkDest := func(rng *sim.RNG) [][]int {
		d := make([][]int, cfg.Ports)
		for p := range d {
			d[p] = make([]int, cfg.VCs)
			for v := range d[p] {
				d[p][v] = rng.Intn(cfg.Ports)
			}
		}
		return d
	}
	destA, destB := mkDest(rngA), mkDest(rngB)
	var totIF, totPC int
	for i := 0; i < 3000; i++ {
		rsA := persistent(rngA, destA)
		totIF += len(ifAlloc.Allocate(rsA))
		rsB := persistent(rngB, destB)
		g := pc.Allocate(rsB)
		if err := Validate(rsB, g); err != nil {
			t.Fatal(err)
		}
		totPC += len(g)
	}
	if totPC <= totIF {
		t.Fatalf("packet chaining (%d) did not beat IF (%d) on persistent traffic", totPC, totIF)
	}
}
