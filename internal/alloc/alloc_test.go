package alloc

import (
	"testing"
	"testing/quick"

	"vix/internal/sim"
)

// randomRequestSet builds a request set where each (port, vc) offers a
// request with probability p for a uniformly random output port.
func randomRequestSet(rng *sim.RNG, cfg Config, p float64) *RequestSet {
	rs := &RequestSet{Config: cfg}
	for port := 0; port < cfg.Ports; port++ {
		for vc := 0; vc < cfg.VCs; vc++ {
			if rng.Bernoulli(p) {
				rs.Requests = append(rs.Requests, Request{
					Port: port, VC: vc, OutPort: rng.Intn(cfg.Ports),
				})
			}
		}
	}
	return rs
}

// allConfigs returns the crossbar geometries exercised by the paper:
// baseline, 1:2 VIX, and ideal VIX, at the three evaluated radices.
func allConfigs() []Config {
	var cfgs []Config
	for _, ports := range []int{5, 8, 10} {
		for _, vcs := range []int{4, 6} {
			for _, k := range []int{1, 2, vcs} {
				cfgs = append(cfgs, Config{Ports: ports, VCs: vcs, VirtualInputs: k})
			}
		}
	}
	return cfgs
}

func newAllocatorsFor(cfg Config) map[Kind]Allocator {
	m := map[Kind]Allocator{
		KindSeparableIF:    NewSeparableIF(cfg),
		KindWavefront:      NewWavefront(cfg),
		KindAugmentingPath: NewAugmentingPath(cfg),
		KindPacketChaining: NewPacketChaining(cfg),
	}
	if cfg.VirtualInputs == cfg.VCs {
		m[KindIdeal] = NewIdeal(cfg)
	}
	return m
}

// Property: every allocator produces a legal grant set on arbitrary
// request sets, across all crossbar geometries, over many cycles of
// evolving arbiter state.
func TestAllAllocatorsProduceValidGrants(t *testing.T) {
	rng := sim.NewRNG(101)
	for _, cfg := range allConfigs() {
		for kind, a := range newAllocatorsFor(cfg) {
			for cycle := 0; cycle < 200; cycle++ {
				rs := randomRequestSet(rng, cfg, 0.5)
				grants := a.Allocate(rs)
				if err := Validate(rs, grants); err != nil {
					t.Fatalf("%s on %+v cycle %d: %v", kind, cfg, cycle, err)
				}
			}
		}
	}
}

// Property (quick): separable IF grant sets are valid for fuzzed request
// patterns encoded from raw quick-generated values.
func TestSeparableQuickValidity(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 2}
	a := NewSeparableIF(cfg)
	prop := func(seed uint64, density uint8) bool {
		rng := sim.NewRNG(seed)
		p := float64(density%100) / 100
		rs := randomRequestSet(rng, cfg, p)
		return Validate(rs, a.Allocate(rs)) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyRequestSet(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 2}
	for kind, a := range newAllocatorsFor(cfg) {
		rs := &RequestSet{Config: cfg}
		if got := a.Allocate(rs); len(got) != 0 {
			t.Errorf("%s: empty request set produced %d grants", kind, len(got))
		}
	}
}

// With a single request, every allocator must grant it.
func TestSingleRequestAlwaysGranted(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 2}
	for kind, a := range newAllocatorsFor(cfg) {
		rs := &RequestSet{Config: cfg, Requests: []Request{{Port: 2, VC: 4, OutPort: 3}}}
		grants := a.Allocate(rs)
		if len(grants) != 1 {
			t.Errorf("%s: single request produced %d grants", kind, len(grants))
			continue
		}
		g := grants[0]
		if g.Req != 0 || g.OutPort != 3 {
			t.Errorf("%s: wrong grant %+v", kind, g)
		}
	}
}

// bruteForceMaxMatching computes the maximum matching size between rows
// and outputs by exhaustive search (small instances only).
func bruteForceMaxMatching(cfg Config, rs *RequestSet) int {
	edges := make(map[int]map[int]bool)
	for _, r := range rs.Requests {
		row := cfg.Row(r.Port, r.VC)
		if edges[row] == nil {
			edges[row] = make(map[int]bool)
		}
		edges[row][r.OutPort] = true
	}
	rows := make([]int, 0, len(edges))
	for row := range edges {
		rows = append(rows, row)
	}
	usedOut := make(map[int]bool)
	var solve func(i int) int
	solve = func(i int) int {
		if i == len(rows) {
			return 0
		}
		best := solve(i + 1) // skip this row
		for out := range edges[rows[i]] {
			if usedOut[out] {
				continue
			}
			usedOut[out] = true
			if v := 1 + solve(i+1); v > best {
				best = v
			}
			usedOut[out] = false
		}
		return best
	}
	return solve(0)
}

// AP must achieve the maximum matching size on the row-level request
// graph, every cycle.
func TestAugmentingPathIsMaximum(t *testing.T) {
	rng := sim.NewRNG(7)
	for _, cfg := range []Config{
		{Ports: 4, VCs: 4, VirtualInputs: 1},
		{Ports: 5, VCs: 6, VirtualInputs: 2},
	} {
		a := NewAugmentingPath(cfg)
		for i := 0; i < 150; i++ {
			rs := randomRequestSet(rng, cfg, 0.4)
			grants := a.Allocate(rs)
			want := bruteForceMaxMatching(cfg, rs)
			if len(grants) != want {
				t.Fatalf("%+v: AP matched %d, maximum is %d", cfg, len(grants), want)
			}
		}
	}
}

// Wavefront must produce a maximal matching: no request can be added to
// the grant set without conflicting.
func TestWavefrontIsMaximal(t *testing.T) {
	rng := sim.NewRNG(8)
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 1}
	w := NewWavefront(cfg)
	for i := 0; i < 300; i++ {
		rs := randomRequestSet(rng, cfg, 0.4)
		grants := w.Allocate(rs)
		rowUsed := make(map[int]bool)
		outUsed := make(map[int]bool)
		for _, g := range grants {
			rowUsed[g.Row] = true
			outUsed[g.OutPort] = true
		}
		for _, r := range rs.Requests {
			if !rowUsed[cfg.Row(r.Port, r.VC)] && !outUsed[r.OutPort] {
				t.Fatalf("cycle %d: wavefront grant set not maximal: request %+v addable", i, r)
			}
		}
	}
}

// Statistical ordering of matching efficiency over random traffic:
// ideal >= AP >= WF >= IF (baseline geometry for the last three).
func TestAllocatorEfficiencyOrdering(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 1}
	idealCfg := Config{Ports: 5, VCs: 6, VirtualInputs: 6}
	ifAlloc := NewSeparableIF(cfg)
	wf := NewWavefront(cfg)
	ap := NewAugmentingPath(cfg)
	ideal := NewIdeal(idealCfg)

	rngs := [4]*sim.RNG{sim.NewRNG(9), sim.NewRNG(9), sim.NewRNG(9), sim.NewRNG(9)}
	var totIF, totWF, totAP, totIdeal int
	for i := 0; i < 2000; i++ {
		totIF += len(ifAlloc.Allocate(randomRequestSet(rngs[0], cfg, 0.5)))
		totWF += len(wf.Allocate(randomRequestSet(rngs[1], cfg, 0.5)))
		totAP += len(ap.Allocate(randomRequestSet(rngs[2], cfg, 0.5)))
		totIdeal += len(ideal.Allocate(randomRequestSet(rngs[3], idealCfg, 0.5)))
	}
	if !(totIdeal >= totAP && totAP >= totWF && totWF >= totIF) {
		t.Fatalf("efficiency ordering violated: ideal=%d ap=%d wf=%d if=%d", totIdeal, totAP, totWF, totIF)
	}
	if totAP <= totIF {
		t.Fatalf("AP (%d) should beat IF (%d) on random traffic", totAP, totIF)
	}
}

// VIX (separable IF with k=2) must outperform baseline IF on identical
// random traffic — the headline claim at allocator level.
func TestVIXBeatsBaselineSeparable(t *testing.T) {
	base := Config{Ports: 5, VCs: 6, VirtualInputs: 1}
	vixc := Config{Ports: 5, VCs: 6, VirtualInputs: 2}
	ifAlloc := NewSeparableIF(base)
	vix := NewSeparableIF(vixc)
	rngA, rngB := sim.NewRNG(10), sim.NewRNG(10)
	var totIF, totVIX int
	for i := 0; i < 2000; i++ {
		totIF += len(ifAlloc.Allocate(randomRequestSet(rngA, base, 0.5)))
		totVIX += len(vix.Allocate(randomRequestSet(rngB, vixc, 0.5)))
	}
	if float64(totVIX) < 1.05*float64(totIF) {
		t.Fatalf("VIX=%d not at least 5%% over IF=%d on random traffic", totVIX, totIF)
	}
}

// Allocators are deterministic: two instances fed identical request
// streams produce identical grants.
func TestAllocatorDeterminism(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 2}
	for _, kind := range []Kind{KindSeparableIF, KindWavefront, KindAugmentingPath, KindPacketChaining} {
		a := MustNew(kind, cfg)
		b := MustNew(kind, cfg)
		rngA, rngB := sim.NewRNG(12), sim.NewRNG(12)
		for i := 0; i < 100; i++ {
			rsA := randomRequestSet(rngA, cfg, 0.5)
			rsB := randomRequestSet(rngB, cfg, 0.5)
			ga, gb := a.Allocate(rsA), b.Allocate(rsB)
			if len(ga) != len(gb) {
				t.Fatalf("%s: cycle %d grant counts differ: %d vs %d", kind, i, len(ga), len(gb))
			}
			for j := range ga {
				if ga[j] != gb[j] {
					t.Fatalf("%s: cycle %d grant %d differs: %+v vs %+v", kind, i, j, ga[j], gb[j])
				}
			}
		}
	}
}

// Reset restores initial behaviour.
func TestAllocatorReset(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 2}
	rng := sim.NewRNG(13)
	warm := make([]*RequestSet, 50)
	for i := range warm {
		warm[i] = randomRequestSet(rng, cfg, 0.5)
	}
	probe := randomRequestSet(rng, cfg, 0.6)
	for kind, a := range newAllocatorsFor(cfg) {
		fresh := MustNew(kind, cfg)
		want := fresh.Allocate(probe)
		for _, rs := range warm {
			a.Allocate(rs)
		}
		a.Reset()
		got := a.Allocate(probe)
		if len(got) != len(want) {
			t.Errorf("%s: after Reset grants=%d, fresh grants=%d", kind, len(got), len(want))
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s: after Reset grant %d = %+v, fresh = %+v", kind, i, got[i], want[i])
			}
		}
	}
}

func TestValidateRejectsIllegalGrants(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 1}
	rs := &RequestSet{Config: cfg, Requests: []Request{
		{Port: 0, VC: 0, OutPort: 1},
		{Port: 0, VC: 1, OutPort: 2},
		{Port: 1, VC: 0, OutPort: 1},
	}}
	cases := []struct {
		name   string
		grants []Grant
	}{
		{"phantom grant", []Grant{{Req: 9, OutPort: 3, Row: 3}}},
		{"negative request index", []Grant{{Req: -1, OutPort: 1, Row: 0}}},
		{"wrong row", []Grant{{Req: 0, OutPort: 1, Row: 4}}},
		{"duplicate row", []Grant{
			{Req: 0, OutPort: 1, Row: 0},
			{Req: 1, OutPort: 2, Row: 0},
		}},
		{"duplicate output", []Grant{
			{Req: 0, OutPort: 1, Row: 0},
			{Req: 2, OutPort: 1, Row: 1},
		}},
	}
	for _, c := range cases {
		if Validate(rs, c.grants) == nil {
			t.Errorf("%s: Validate accepted illegal grants", c.name)
		}
	}
	mismatched := []Grant{
		{Req: 0, OutPort: 1, Row: 0},
		// Request 2 asked for output 1, not 2.
		{Req: 2, OutPort: 2, Row: 1},
	}
	if Validate(rs, mismatched) == nil {
		t.Error("Validate accepted grant with mismatched output")
	}
}

func TestConfigGeometry(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 2}
	if cfg.Rows() != 10 {
		t.Errorf("Rows() = %d, want 10", cfg.Rows())
	}
	if cfg.GroupSize() != 3 {
		t.Errorf("GroupSize() = %d, want 3", cfg.GroupSize())
	}
	for vc, wantGroup := range []int{0, 0, 0, 1, 1, 1} {
		if g := cfg.Subgroup(vc); g != wantGroup {
			t.Errorf("Subgroup(%d) = %d, want %d", vc, g, wantGroup)
		}
	}
	for vc, wantSlot := range []int{0, 1, 2, 0, 1, 2} {
		if s := cfg.Slot(vc); s != wantSlot {
			t.Errorf("Slot(%d) = %d, want %d", vc, s, wantSlot)
		}
	}
	if r := cfg.Row(3, 4); r != 3*2+1 {
		t.Errorf("Row(3,4) = %d, want 7", r)
	}

	// Uneven partition: 5 VCs over 2 virtual inputs -> groups of 3 and 2.
	odd := Config{Ports: 4, VCs: 5, VirtualInputs: 2}
	if odd.GroupSize() != 3 {
		t.Errorf("odd GroupSize() = %d, want 3", odd.GroupSize())
	}
	for vc, wantGroup := range []int{0, 0, 0, 1, 1} {
		if g := odd.Subgroup(vc); g != wantGroup {
			t.Errorf("odd Subgroup(%d) = %d, want %d", vc, g, wantGroup)
		}
	}

	// Per-VC rows.
	ideal := Config{Ports: 5, VCs: 6, VirtualInputs: 6}
	if ideal.GroupSize() != 1 {
		t.Errorf("ideal GroupSize() = %d, want 1", ideal.GroupSize())
	}
	for vc := 0; vc < 6; vc++ {
		if ideal.Subgroup(vc) != vc {
			t.Errorf("ideal Subgroup(%d) = %d", vc, ideal.Subgroup(vc))
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Ports: 0, VCs: 6, VirtualInputs: 1},
		{Ports: 5, VCs: 0, VirtualInputs: 1},
		{Ports: 5, VCs: 6, VirtualInputs: 0},
		{Ports: 5, VCs: 2, VirtualInputs: 3},
	}
	for _, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("Validate accepted invalid config %+v", cfg)
		}
	}
	if err := (Config{Ports: 5, VCs: 6, VirtualInputs: 2}).Validate(); err != nil {
		t.Errorf("Validate rejected valid config: %v", err)
	}
}

func TestRegistry(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 2}
	for _, kind := range []Kind{KindSeparableIF, KindWavefront, KindAugmentingPath, KindPacketChaining} {
		a, err := New(kind, cfg)
		if err != nil {
			t.Errorf("New(%s) failed: %v", kind, err)
			continue
		}
		if a.Name() == "" {
			t.Errorf("New(%s) has empty name", kind)
		}
	}
	if _, err := New(KindIdeal, cfg); err == nil {
		t.Error("New(ideal) accepted VirtualInputs != VCs")
	}
	if _, err := New(KindIdeal, Config{Ports: 5, VCs: 6, VirtualInputs: 6}); err != nil {
		t.Errorf("New(ideal) rejected per-VC geometry: %v", err)
	}
	if _, err := New("bogus", cfg); err == nil {
		t.Error("New accepted unknown kind")
	}
	if _, err := New(KindSeparableIF, Config{}); err == nil {
		t.Error("New accepted zero config")
	}
	if got := len(Kinds()); got != 8 {
		t.Errorf("Kinds() lists %d kinds, want 8", got)
	}
}

func TestInterleavedPartitionGeometry(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 2, Partition: Interleaved}
	for vc, wantGroup := range []int{0, 1, 0, 1, 0, 1} {
		if g := cfg.Subgroup(vc); g != wantGroup {
			t.Errorf("interleaved Subgroup(%d) = %d, want %d", vc, g, wantGroup)
		}
	}
	for vc, wantSlot := range []int{0, 0, 1, 1, 2, 2} {
		if s := cfg.Slot(vc); s != wantSlot {
			t.Errorf("interleaved Slot(%d) = %d, want %d", vc, s, wantSlot)
		}
	}
	// Uneven interleave: 5 VCs over 2 groups.
	odd := Config{Ports: 4, VCs: 5, VirtualInputs: 2, Partition: Interleaved}
	for vc := 0; vc < 5; vc++ {
		if s := odd.Slot(vc); s < 0 || s >= odd.GroupSize() {
			t.Errorf("interleaved odd Slot(%d) = %d outside [0,%d)", vc, s, odd.GroupSize())
		}
	}
}

// (Subgroup, Slot) is injective under both partitions: no two VCs of a
// port share an arbiter request line.
func TestPartitionInjective(t *testing.T) {
	for _, part := range []Partition{Contiguous, Interleaved} {
		for _, vcs := range []int{2, 3, 4, 5, 6, 8} {
			for k := 1; k <= vcs; k++ {
				cfg := Config{Ports: 4, VCs: vcs, VirtualInputs: k, Partition: part}
				seen := map[[2]int]int{}
				for vc := 0; vc < vcs; vc++ {
					key := [2]int{cfg.Subgroup(vc), cfg.Slot(vc)}
					if prev, dup := seen[key]; dup {
						t.Fatalf("partition %d v=%d k=%d: VCs %d and %d share line %v", part, vcs, k, prev, vc, key)
					}
					seen[key] = vc
					if g := cfg.Subgroup(vc); g < 0 || g >= k {
						t.Fatalf("Subgroup(%d) = %d outside [0,%d)", vc, g, k)
					}
				}
			}
		}
	}
}

// All allocators stay valid with the interleaved partition.
func TestAllocatorsValidWithInterleaved(t *testing.T) {
	rng := sim.NewRNG(55)
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 2, Partition: Interleaved}
	for kind, a := range newAllocatorsFor(cfg) {
		for cycle := 0; cycle < 150; cycle++ {
			rs := randomRequestSet(rng, cfg, 0.5)
			if err := Validate(rs, a.Allocate(rs)); err != nil {
				t.Fatalf("%s interleaved: %v", kind, err)
			}
		}
	}
}

// Property (quick): wavefront and maximum-matching grant sets are valid
// for fuzzed request patterns and densities.
func TestWavefrontQuickValidity(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 2}
	w := NewWavefront(cfg)
	prop := func(seed uint64, density uint8) bool {
		rng := sim.NewRNG(seed)
		rs := randomRequestSet(rng, cfg, float64(density%100)/100)
		return Validate(rs, w.Allocate(rs)) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAugmentingPathQuickValidity(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 2}
	a := NewAugmentingPath(cfg)
	prop := func(seed uint64, density uint8) bool {
		rng := sim.NewRNG(seed)
		rs := randomRequestSet(rng, cfg, float64(density%100)/100)
		return Validate(rs, a.Allocate(rs)) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (quick): the age-aware allocator is valid under fuzzed ages.
func TestAgeQuickValidity(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 2}
	a := NewSeparableAge(cfg)
	prop := func(seed uint64, density, ageSpread uint8) bool {
		rng := sim.NewRNG(seed)
		rs := randomRequestSet(rng, cfg, float64(density%100)/100)
		spread := int(ageSpread)%50 + 1
		for i := range rs.Requests {
			rs.Requests[i].Age = rng.Intn(spread)
		}
		return Validate(rs, a.Allocate(rs)) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
