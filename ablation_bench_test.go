package vix

// Ablation benchmarks for the design choices DESIGN.md calls out, plus
// microbenchmarks of the allocators and the router pipeline (the hot
// loops of the simulator).

import (
	"testing"

	"vix/internal/alloc"
	"vix/internal/experiments"
	"vix/internal/router"
	"vix/internal/sim"
	"vix/internal/topology"
)

// BenchmarkAblationPolicies measures the Section 2.3 VC-assignment
// policies under uniform and adversarial traffic on a saturated VIX mesh.
func BenchmarkAblationPolicies(b *testing.B) {
	p := benchParams()
	p.Warmup, p.Measure = 500, 1500
	var rows []experiments.PolicyAblationRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = experiments.AblatePolicies(p, []string{"uniform", "bitcomp"}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logRows(b, func() {
		for _, r := range rows {
			b.Logf("%-8s %-9s %.4f flits/cycle/node", r.Pattern, r.Policy, r.Throughput)
		}
	})
	var blind, aware float64
	for _, r := range rows {
		if r.Pattern == "bitcomp" {
			switch r.Policy {
			case router.PolicyMaxFree:
				blind = r.Throughput
			case router.PolicyBalanced:
				aware = r.Throughput
			}
		}
	}
	b.ReportMetric(aware/blind, "balancedVsMaxfree@bitcomp")
}

// BenchmarkAblationPartition compares contiguous and interleaved VC
// sub-group partitions.
func BenchmarkAblationPartition(b *testing.B) {
	p := benchParams()
	p.Warmup, p.Measure = 500, 1500
	var rows []experiments.PartitionAblationRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = experiments.AblatePartition(p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logRows(b, func() {
		for _, r := range rows {
			name := "contiguous"
			if r.Partition == alloc.Interleaved {
				name = "interleaved"
			}
			b.Logf("%-10s %-11s %.4f flits/cycle/node", r.Topology, name, r.Throughput)
		}
	})
}

// BenchmarkAblationPipeline compares the 3-stage (Figure 6b) and 5-stage
// (Figure 6a) pipelines.
func BenchmarkAblationPipeline(b *testing.B) {
	p := benchParams()
	p.Warmup, p.Measure = 500, 1500
	var rows []experiments.PipelineAblationRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = experiments.AblatePipeline(p, 0.05); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logRows(b, func() {
		for _, r := range rows {
			b.Logf("%-4s hop=%d latency %.2f  saturation %.4f", r.Scheme, r.HopDelay, r.AvgLatency, r.Throughput)
		}
	})
}

// BenchmarkAblationVirtualInputSweep sweeps k on the mesh — the
// fine-grained version of Figure 12 locating the diminishing returns the
// paper's "two virtual inputs is close to ideal" claim rests on.
func BenchmarkAblationVirtualInputSweep(b *testing.B) {
	p := benchParams()
	p.Warmup, p.Measure = 500, 1500
	var rows []experiments.KSweepRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = experiments.AblateVirtualInputs(p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logRows(b, func() {
		for _, r := range rows {
			b.Logf("k=%d %.4f flits/cycle/node", r.K, r.Throughput)
		}
	})
	gain2 := rows[1].Throughput - rows[0].Throughput
	gainIdeal := rows[len(rows)-1].Throughput - rows[0].Throughput
	b.ReportMetric(gain2/gainIdeal, "k2shareOfIdealGain")
}

// BenchmarkAblationAllocators races the extended allocator set,
// including iSLIP and SPAROFLO.
func BenchmarkAblationAllocators(b *testing.B) {
	p := benchParams()
	p.Warmup, p.Measure = 500, 1500
	var rows []experiments.AllocAblationRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = experiments.AblateAllocators(p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logRows(b, func() {
		for _, r := range rows {
			b.Logf("%-9s %.4f flits/cycle/node", r.Scheme, r.Throughput)
		}
	})
}

// --- microbenchmarks ---

// benchAllocate measures one allocator's Allocate cost on a dense
// radix-5 request set.
func benchAllocate(b *testing.B, kind alloc.Kind, k int) {
	cfg := alloc.Config{Ports: 5, VCs: 6, VirtualInputs: k}
	a, err := alloc.New(kind, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(1)
	rs := &alloc.RequestSet{Config: cfg}
	for port := 0; port < cfg.Ports; port++ {
		for vc := 0; vc < cfg.VCs; vc++ {
			rs.Requests = append(rs.Requests, alloc.Request{
				Port: port, VC: vc, OutPort: rng.Intn(cfg.Ports),
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Allocate(rs)
	}
}

func BenchmarkAllocateSeparableIF(b *testing.B)    { benchAllocate(b, alloc.KindSeparableIF, 1) }
func BenchmarkAllocateVIX(b *testing.B)            { benchAllocate(b, alloc.KindSeparableIF, 2) }
func BenchmarkAllocateWavefront(b *testing.B)      { benchAllocate(b, alloc.KindWavefront, 1) }
func BenchmarkAllocateAugmentingPath(b *testing.B) { benchAllocate(b, alloc.KindAugmentingPath, 1) }
func BenchmarkAllocatePacketChaining(b *testing.B) { benchAllocate(b, alloc.KindPacketChaining, 1) }
func BenchmarkAllocateISLIP(b *testing.B)          { benchAllocate(b, alloc.KindISLIP, 1) }
func BenchmarkAllocateSparoflo(b *testing.B)       { benchAllocate(b, alloc.KindSparoflo, 1) }
func BenchmarkAllocateIdeal(b *testing.B)          { benchAllocate(b, alloc.KindIdeal, 6) }

// BenchmarkNetworkStep measures whole-network simulation speed: one
// cycle of a saturated 64-node VIX mesh (the simulator's hot loop).
func BenchmarkNetworkStep(b *testing.B) {
	topo := topology.NewMesh(8, 8)
	n, err := NewNetwork(NetworkConfig{
		Topology: topo,
		Router: RouterConfig{
			Ports: topo.Radix, VCs: 6, VirtualInputs: 2, BufDepth: 5,
			AllocKind: AllocSeparableIF, Policy: PolicyBalanced,
		},
		Pattern:      NewUniformTraffic(topo.NumNodes),
		MaxInjection: true,
		PacketSize:   4,
		Seed:         1,
	})
	if err != nil {
		b.Fatal(err)
	}
	n.Run(1000) // reach steady state before timing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
	b.StopTimer()
	s := n.Collector().Snapshot()
	if s.FlitsEjected == 0 {
		b.Fatal("no traffic during benchmark")
	}
}
