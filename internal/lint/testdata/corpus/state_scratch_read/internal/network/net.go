package network

// Network carries three scratch-classified fields: tmp is consumed
// before it is rebuilt (through a helper, so the finding renders the
// call path), buf's early read is waived with a justification, and
// tmp2's waiver is missing its justification.
type Network struct {
	tmp  []int
	buf  []int
	tmp2 []int
}

// Step advances one cycle.
func (n *Network) Step() {
	hold := n.drain()
	//vixlint:state buf carries only capacity across cycles, never data
	if len(n.buf) > 0 {
		n.buf = n.buf[:0]
	}
	//vixlint:state
	hold += len(n.tmp2)
	n.tmp = n.tmp[:0]
	n.tmp2 = n.tmp2[:0]
	n.buf = append(n.buf, hold)
}

// drain consumes tmp before Step rebuilds it — the seeded violation.
func (n *Network) drain() int {
	if len(n.tmp) == 0 {
		return 0
	}
	return n.tmp[0]
}

// park is never reached by Step; the waiver below suppresses nothing
// and must be reported stale.
func (n *Network) park() int {
	//vixlint:state stale justification on a line with no finding
	return cap(n.buf)
}
