// Command ablation runs the design-choice studies that complement the
// paper's headline experiments: VC-assignment policy under adversarial
// traffic (Section 2.3), VC-to-sub-group partition, router pipeline
// depth, a fine-grained virtual-input sweep, and the extended allocator
// set (including iSLIP and SPAROFLO from the paper's citations and
// related work). Each study's grid fans out across -parallel workers
// via internal/harness; -resume checkpoints completed points so an
// interrupted study reruns only what is missing.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"vix/internal/alloc"
	"vix/internal/experiments"
	"vix/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablation: ")
	var (
		warmup   = flag.Int("warmup", 1500, "warmup cycles")
		measure  = flag.Int("measure", 5000, "measurement cycles")
		seed     = flag.Uint64("seed", 1, "random seed")
		study    = flag.String("study", "all", "which study: policies, partition, pipeline, speculation, ksweep, allocators, or all")
		parallel = flag.Int("parallel", 0, "worker count (default GOMAXPROCS)")
		workers  = flag.Int("workers", 1, "parallel-tick workers per simulation (1 serial, <0 GOMAXPROCS); output is byte-identical for any value")
		resume   = flag.String("resume", "", "JSONL manifest: checkpoint completed points and skip them on rerun")
		verbose  = flag.Bool("v", false, "log per-point telemetry (wall time, cycles/sec) to stderr")
	)
	flag.Parse()

	p := experiments.DefaultParams()
	p.Warmup, p.Measure, p.Seed = *warmup, *measure, *seed
	p.TickWorkers = *workers
	ctx := context.Background()
	opt := harness.Options{Parallel: *parallel, Manifest: *resume}
	if *verbose {
		opt.OnDone = func(r harness.Result) {
			if r.Cached {
				log.Printf("%s: cached (manifest)", r.Name)
				return
			}
			log.Printf("%s: %v (%.0f cycles/sec)", r.Name, r.Telemetry.Duration().Round(time.Millisecond), r.Telemetry.CyclesPerSec)
		}
	}

	run := func(name string, fn func() error) {
		if *study != "all" && *study != name {
			return
		}
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println()
	}

	run("policies", func() error {
		rows, err := experiments.AblatePoliciesOpt(ctx, p, nil, opt)
		if err != nil {
			return err
		}
		fmt.Println("VC-assignment policy (Section 2.3) on a saturated 8x8 VIX mesh:")
		w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
		fmt.Fprintln(w, "pattern\tpolicy\tthroughput (flits/cyc/node)")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%.4f\n", r.Pattern, r.Policy, r.Throughput)
		}
		return w.Flush()
	})

	run("partition", func() error {
		rows, err := experiments.AblatePartitionOpt(ctx, p, opt)
		if err != nil {
			return err
		}
		fmt.Println("VC-to-sub-group partition on saturated VIX networks:")
		w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
		fmt.Fprintln(w, "topology\tpartition\tthroughput")
		for _, r := range rows {
			name := "contiguous"
			if r.Partition == alloc.Interleaved {
				name = "interleaved"
			}
			fmt.Fprintf(w, "%s\t%s\t%.4f\n", r.Topology, name, r.Throughput)
		}
		return w.Flush()
	})

	run("pipeline", func() error {
		rows, err := experiments.AblatePipelineOpt(ctx, p, 0.05, opt)
		if err != nil {
			return err
		}
		fmt.Println("Pipeline depth (Figure 6a vs 6b), 8x8 mesh:")
		w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
		fmt.Fprintln(w, "scheme\thop delay\tlatency @0.05\tsaturation throughput")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%.2f\t%.4f\n", r.Scheme, r.HopDelay, r.AvgLatency, r.Throughput)
		}
		return w.Flush()
	})

	run("speculation", func() error {
		rows, err := experiments.AblateSpeculationOpt(ctx, p, 0.05, opt)
		if err != nil {
			return err
		}
		fmt.Println("Speculative vs non-speculative switch allocation, 8x8 mesh:")
		w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
		fmt.Fprintln(w, "scheme\tmode\tlatency @0.05\tsaturation throughput")
		for _, r := range rows {
			mode := "speculative"
			if r.NonSpeculative {
				mode = "non-speculative"
			}
			fmt.Fprintf(w, "%s\t%s\t%.2f\t%.4f\n", r.Scheme, mode, r.AvgLatency, r.Throughput)
		}
		return w.Flush()
	})

	run("ksweep", func() error {
		rows, err := experiments.AblateVirtualInputsOpt(ctx, p, opt)
		if err != nil {
			return err
		}
		fmt.Println("Virtual-input sweep (8x8 mesh, 6 VCs, saturation):")
		w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
		fmt.Fprintln(w, "k\tthroughput\tvs k=1")
		base := rows[0].Throughput
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%.4f\t%+.1f%%\n", r.K, r.Throughput, 100*(r.Throughput/base-1))
		}
		return w.Flush()
	})

	run("allocators", func() error {
		rows, err := experiments.AblateAllocatorsOpt(ctx, p, opt)
		if err != nil {
			return err
		}
		fmt.Println("Extended allocator set (8x8 mesh, saturation):")
		w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
		fmt.Fprintln(w, "scheme\tthroughput\tvs IF")
		var base float64
		for _, r := range rows {
			if r.Scheme == "IF" {
				base = r.Throughput
			}
			fmt.Fprintf(w, "%s\t%.4f\t%+.1f%%\n", r.Scheme, r.Throughput, 100*(r.Throughput/base-1))
		}
		return w.Flush()
	})
}
