package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"vix/internal/sim"
)

// This file is the analysis engine: module-wide state construction, the
// bounded worker pool that fans per-package passes out, and the cached
// entry point cmd/vixlint uses.
//
// Analysis runs in two phases. The source phase is single-threaded: it
// builds one checker per package, runs the determinism family (whose
// site checks double as taint-source collection), then builds the call
// graph and propagates taint. The package phase runs everything else —
// hygiene, contracts, scratch, escape, exhaustiveness, reach, waiver
// hygiene — on a worker pool, one package per job. Workers only read
// the shared module, graph and taint tables (all frozen after the
// source phase) and each package's checker is handed to exactly one
// worker, so the phase needs no locking. Results land in per-package
// slots and are merged in canonical package order, then sorted, so the
// output is byte-identical regardless of worker scheduling.

// Analysis is the module-wide analysis state: parsed packages, the call
// graph, propagated determinism taint, and one checker per package.
// Construct it with NewAnalysis; all state is read-only afterwards.
type Analysis struct {
	mod      *Module
	graph    *callGraph
	taint    *taintResult
	writes   *writeAnalysis
	checkers map[string]*checker
	// shardFindings holds the parallel/sharedwrite and parallel/phase
	// findings keyed by the Do-site package, computed in the source
	// phase (the pass spans packages and marks waiver usage).
	shardFindings map[string][]Finding
}

// NewAnalysis runs the single-threaded source phase over mod: direct
// determinism findings, taint-source collection, call-graph
// construction, and taint propagation.
func NewAnalysis(mod *Module) *Analysis {
	a := &Analysis{mod: mod, checkers: make(map[string]*checker)}
	var sources []taintSource
	for _, pkg := range mod.Packages() {
		c := newChecker(mod, pkg)
		a.checkers[pkg.Path] = c
		if !isInternal(pkg.Path) {
			continue
		}
		c.early = c.determinism()
		c.eachFunc(func(_ *ast.File, fd *ast.FuncDecl) {
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				sources = append(sources, c.collectTaintSources(fn, fd)...)
			}
		})
	}
	a.graph = buildCallGraph(mod)
	a.taint = propagateTaint(a.graph, sources)
	a.writes = computeWriteEffects(mod, a.graph)
	a.shardFindings = analyzeShardOwnership(a)
	return a
}

// checkPackage runs the package-phase analyzers for one package and
// returns its findings (including the source-phase determinism findings
// held by the checker). Exactly one goroutine calls this per package.
func (a *Analysis) checkPackage(path string) []Finding {
	c := a.checkers[path]
	if c == nil {
		return nil
	}
	fs := append([]Finding(nil), c.early...)
	if isInternal(c.pkg.Path) {
		fs = append(fs, c.hygiene()...)
		fs = append(fs, c.reach(a)...)
		fs = append(fs, c.exhaustive()...)
	}
	if isCmdPath(c.pkg.Path) {
		fs = append(fs, c.closeHygiene()...)
	}
	if isAllocPackage(c.pkg) {
		fs = append(fs, c.contracts()...)
		fs = append(fs, c.scratch()...)
	}
	if !isAllocPath(c.pkg.Path) {
		// The alloc registries implement Allocate; binding its result to
		// scratch fields there is the contract, not a violation.
		fs = append(fs, c.escape()...)
	}
	fs = append(fs, c.mutations()...)
	fs = append(fs, c.directiveFindings()...)
	fs = append(fs, a.shardFindings[path]...)
	// Last: every waiver-consulting pass for this package has run, so
	// usage tracking for the stale-waiver sweep is complete.
	fs = append(fs, c.waiverFindings()...)
	return fs
}

// run checks the given packages on a pool of workers and returns one
// findings slice per path, index-aligned with paths.
func (a *Analysis) run(paths []string, workers int) [][]Finding {
	if workers < 1 {
		workers = 1
	}
	if workers > len(paths) {
		workers = len(paths)
	}
	results := make([][]Finding, len(paths))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// Goroutines are legal here: internal/lint is on the
		// ConcurrencyAllowlist because findings land in per-index slots
		// and are sorted before reporting, so worker scheduling cannot
		// reach the output.
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = a.checkPackage(paths[i])
			}
		}()
	}
	for i := range paths {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// Callees returns the display names of the functions the call graph
// resolves as direct callees of the named function ("F" or "Recv.M") in
// pkgPath. It exists for tests that pin the graph's resolution quality.
func (a *Analysis) Callees(pkgPath, name string) []string {
	node := a.graph.lookupFunc(pkgPath, name)
	if node == nil {
		return nil
	}
	out := make([]string, 0, len(node.callees))
	for _, callee := range node.callees {
		out = append(out, funcDisplay(callee))
	}
	return out
}

// PoolJobs returns the display names of every sim.Pool job the shard-
// ownership pass resolved, sorted. It exists for tests that pin job
// detection on the real tree (the method-value shardFn and the harness
// job literal must both resolve).
func (a *Analysis) PoolJobs() []string {
	var out []string
	for _, job := range findPoolJobs(a) {
		out = append(out, job.display())
	}
	sort.Strings(out)
	return out
}

// FuncWrites returns the rendered write effects of the named function
// ("F" or "Recv.M") in pkgPath, sorted. It exists for tests that pin
// the write-effect summaries the parallel rules judge.
func (a *Analysis) FuncWrites(pkgPath, name string) []string {
	node := a.graph.lookupFunc(pkgPath, name)
	if node == nil {
		return nil
	}
	fx := a.writes.sums[node.fn]
	if fx == nil {
		return nil
	}
	var out []string
	for _, k := range sim.SortedKeys(fx.writes) {
		out = append(out, effectDisplay(node.fn, fx.writes[k]))
	}
	sort.Strings(out)
	return out
}

// Reaches reports whether the named function can transitively reach a
// determinism source of the given kind ("time", "rand", "goroutine",
// "maprange"). A source inside the function itself counts.
func (a *Analysis) Reaches(pkgPath, name, kind string) bool {
	node := a.graph.lookupFunc(pkgPath, name)
	if node == nil {
		return false
	}
	_, ok := a.taint.reach[node.fn][kind]
	return ok
}

// CheckModule runs every analyzer family over an already-loaded module,
// returning findings sorted by file, line and rule.
func CheckModule(mod *Module) []Finding {
	a := NewAnalysis(mod)
	paths := pkgPaths(mod)
	var fs []Finding
	for _, r := range a.run(paths, defaultWorkers()) {
		fs = append(fs, r...)
	}
	sortFindings(fs)
	return fs
}

// pkgPaths lists the module's package paths in canonical order.
func pkgPaths(mod *Module) []string {
	pkgs := mod.Packages()
	paths := make([]string, len(pkgs))
	for i, pkg := range pkgs {
		paths[i] = pkg.Path
	}
	return paths
}

// defaultWorkers sizes the pool when the caller does not.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// sortFindings orders findings by file, line, rule, then message.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// Options configures CheckWithOptions.
type Options struct {
	// Workers bounds concurrent package checks; 0 means GOMAXPROCS.
	Workers int
	// Cache reuses cached findings for packages whose content-hash key
	// (own files plus transitive module dependencies) is unchanged.
	Cache bool
	// CacheDir overrides the cache location; default <root>/.vixlint.
	CacheDir string
}

// Stats reports how much work a CheckWithOptions call performed.
type Stats struct {
	// Packages is the number of module packages discovered.
	Packages int
	// Cached is how many packages were served from the finding cache.
	Cached int
	// Analyzed is how many packages were type-checked and analyzed this
	// run. On a fully warm cache it is zero and the module is never
	// type-checked at all.
	Analyzed int
	// Workers is the pool size used.
	Workers int
}

// CheckWithOptions is the engine entry point behind cmd/vixlint: it
// loads and checks the module at root, optionally consulting the
// finding cache so unchanged packages are not re-analyzed.
func CheckWithOptions(root string, opts Options) ([]Finding, Stats, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	stats := Stats{Workers: workers}
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, stats, err
	}
	if !opts.Cache {
		mod, err := Load(absRoot)
		if err != nil {
			return nil, stats, err
		}
		a := NewAnalysis(mod)
		paths := pkgPaths(mod)
		stats.Packages, stats.Analyzed = len(paths), len(paths)
		var fs []Finding
		for _, r := range a.run(paths, workers) {
			fs = append(fs, r...)
		}
		sortFindings(fs)
		return fs, stats, nil
	}

	cacheDir := opts.CacheDir
	if cacheDir == "" {
		cacheDir = filepath.Join(absRoot, cacheDirName)
	}
	idx, err := indexModule(absRoot)
	if err != nil {
		return nil, stats, err
	}
	stats.Packages = len(idx.packages)
	var fs []Finding
	var misses []string
	for _, p := range idx.packages {
		if entry, ok := loadCacheEntry(cacheDir, p); ok {
			fs = append(fs, entry.resolve(absRoot)...)
			stats.Cached++
		} else {
			misses = append(misses, p.path)
		}
	}
	if len(misses) > 0 {
		// At least one package changed: load and run the source phase on
		// the whole module (inter-procedural passes need every body), but
		// run the package phase only on the misses.
		mod, err := Load(absRoot)
		if err != nil {
			return nil, stats, err
		}
		a := NewAnalysis(mod)
		stats.Analyzed = len(misses)
		for i, r := range a.run(misses, workers) {
			fs = append(fs, r...)
			p := idx.byPath[misses[i]]
			pkg := mod.Pkgs[misses[i]]
			// Packages with type errors are analyzed best-effort every
			// run rather than cached.
			if p != nil && pkg != nil && len(pkg.TypeErrs) == 0 {
				storeCacheEntry(cacheDir, absRoot, p, r)
			}
		}
	}
	sortFindings(fs)
	return fs, stats, nil
}
