package lint

import (
	"strings"

	"vix/internal/sim"
)

// This file is the single parser for vixlint's comment directives. Every
// pass that consumes a //vixlint: comment — waiver collection (lint.go),
// hot markers (escapegate.go), state waivers (stategraph.go) — goes
// through classifyDirective, so a typo like //vixlint:orderedjunk or
// //vixlint:sate cannot silently parse as (or silently fail to be) the
// waiver it meant to carry. Unrecognised directives are reported by rule
// directive/unknown instead of being ignored.

// directivePrefix introduces every vixlint comment directive.
const directivePrefix = "//vixlint:"

// knownDirectives is the closed set of directive names. The value is a
// one-line description used in the directive/unknown message.
var knownDirectives = map[string]string{
	"ordered": "waives determinism findings",
	"alloc":   "waives contracts/scratch",
	"shared":  "waives parallel/sharedwrite and parallel/phase",
	"hot":     "marks an escape-gate hot function",
	"state":   "waives state/scratch-read and state/frozen-write",
}

// classifyDirective parses a comment's text as a vixlint directive. ok
// is false when the comment does not start with the //vixlint: prefix
// at all. When ok is true, name is the recognised directive ("ordered",
// "hot", ...) and rest is the trimmed argument text; a comment that
// carries the prefix but not a known, whitespace-delimited name returns
// name == "" with the offending token in rest — the caller reports it
// (rule directive/unknown) rather than accepting it silently.
func classifyDirective(text string) (name, rest string, ok bool) {
	after, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		return "", "", false
	}
	// The name runs to the first space or tab. Anything glued onto a
	// known name (//vixlint:orderedjunk) is a distinct, unknown name.
	name = after
	if i := strings.IndexAny(after, " \t"); i >= 0 {
		name, rest = after[:i], strings.TrimSpace(after[i+1:])
	}
	if _, known := knownDirectives[name]; !known {
		return "", name, true
	}
	return name, rest, true
}

// knownDirectiveList renders the closed set for error messages, sorted.
func knownDirectiveList() string {
	var names []string
	for _, name := range sim.SortedKeys(knownDirectives) {
		names = append(names, directivePrefix+name)
	}
	return strings.Join(names, ", ")
}

// directiveFindings reports every //vixlint: comment in the package that
// does not parse as a known directive (rule directive/unknown). A typoed
// directive is worse than a missing one: the author believes a waiver or
// marker is in force when nothing is.
func (c *checker) directiveFindings() []Finding {
	var fs []Finding
	for _, file := range c.pkg.Files {
		for _, cg := range file.Comments {
			for _, cm := range cg.List {
				name, rest, ok := classifyDirective(cm.Text)
				if !ok || name != "" {
					continue
				}
				c.report(&fs, cm.Pos(), "directive/unknown",
					"unrecognised vixlint directive %q; known directives are %s — a typo here leaves the author believing a waiver or marker is in force when nothing is",
					directivePrefix+rest, knownDirectiveList())
			}
		}
	}
	return fs
}
