// Package clock seeds determinism/reach violations: an unexported
// wall-clock read that exported functions and methods reach through
// calls.
package clock

import "time"

// stamp is the violation site. It is unexported, so the direct rule
// fires here and determinism/reach fires at the exported callers.
func stamp() int64 { return time.Now().UnixNano() }

// Stamp reaches the wall clock one call deep.
func Stamp() int64 { return stamp() }

// Ticker is dispatched through an interface from the drive package.
type Ticker struct{}

// Tick reaches the wall clock through a method.
func (Ticker) Tick() int64 { return stamp() }

// clean reads the clock behind a justified waiver, so no taint leaves it.
func clean() int64 {
	return time.Now().Unix() //vixlint:ordered fixture: a waived site must not taint callers
}

// Clean calls only the waived site and must stay unreported.
func Clean() int64 { return clean() }
