package experiments

import (
	"fmt"

	"vix/internal/manycore"
	"vix/internal/network"
	"vix/internal/topology"
	"vix/internal/trace"
)

// Table4Row is one multiprogrammed workload's result.
type Table4Row struct {
	Mix     string
	AvgMPKI float64
	// Speedup is the measured weighted speedup of VIX over baseline IF
	// (mean of per-core IPC ratios), Table 4's last column.
	Speedup float64
	// IPCBase and IPCVIX are chip-aggregate IPC under each scheme.
	IPCBase, IPCVIX float64
	// MemLatBase and MemLatVIX are the average memory-transaction
	// latencies (cycles) under each scheme: the mechanism behind the
	// speedup.
	MemLatBase, MemLatVIX float64
	// PaperMPKI and PaperSpeedup are the published values.
	PaperMPKI, PaperSpeedup float64
}

// RunMix simulates one Table 4 workload on the 8x8 mesh under the given
// scheme and returns per-core IPC over the measurement window.
func RunMix(mix trace.Mix, s Scheme, p Params, mc manycore.Config) ([]float64, error) {
	ipcs, _, err := RunMixDetailed(mix, s, p, mc)
	return ipcs, err
}

// RunMixDetailed additionally returns the average memory-transaction
// latency over the measurement window.
func RunMixDetailed(mix trace.Mix, s Scheme, p Params, mc manycore.Config) ([]float64, float64, error) {
	topo := topology.NewMesh(8, 8)
	apps, err := mix.Assign(topo.NumNodes)
	if err != nil {
		return nil, 0, err
	}
	mc.Seed = p.Seed
	sys, err := manycore.New(mc, apps)
	if err != nil {
		return nil, 0, err
	}
	cfg := buildConfig(topo, s, p, 0, false)
	cfg.Workload = sys
	n, err := network.New(cfg)
	if err != nil {
		return nil, 0, fmt.Errorf("experiments: %s on %s: %w", s.Label, mix.Name, err)
	}
	n.Run(p.Warmup)
	sys.ResetRetired()
	n.Run(p.Measure)
	return sys.IPC(int64(p.Measure)), sys.AvgMemLatency(), nil
}

// Table4 reproduces the application-level study: every mix is run under
// baseline IF and VIX, and the weighted speedup is reported alongside the
// mix's average MPKI.
func Table4(p Params) ([]Table4Row, error) {
	schemes := NetworkSchemes()
	ifScheme, vixScheme := schemes[0], schemes[3]
	mc := manycore.DefaultConfig()
	var rows []Table4Row
	for _, mix := range trace.Mixes() {
		base, baseLat, err := RunMixDetailed(mix, ifScheme, p, mc)
		if err != nil {
			return nil, err
		}
		vix, vixLat, err := RunMixDetailed(mix, vixScheme, p, mc)
		if err != nil {
			return nil, err
		}
		var ratioSum, baseSum, vixSum float64
		for i := range base {
			baseSum += base[i]
			vixSum += vix[i]
			if base[i] > 0 {
				ratioSum += vix[i] / base[i]
			} else {
				ratioSum++
			}
		}
		mpki, err := mix.AvgMPKI()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table4Row{
			Mix:          mix.Name,
			AvgMPKI:      mpki,
			Speedup:      ratioSum / float64(len(base)),
			IPCBase:      baseSum,
			IPCVIX:       vixSum,
			MemLatBase:   baseLat,
			MemLatVIX:    vixLat,
			PaperMPKI:    mix.PaperMPKI,
			PaperSpeedup: mix.PaperSpeedup,
		})
	}
	return rows, nil
}
