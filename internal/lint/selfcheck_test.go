package lint_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vix/internal/lint"
)

// repoRoot locates the module root above this package's directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test's working directory")
		}
		dir = parent
	}
}

// TestRepoIsLintClean runs every vixlint analyzer over the repository's
// own source, so `go test ./...` — the tier-1 gate — fails the moment a
// change reintroduces wall-clock reads, global randomness, order-leaking
// map iteration, allocator-contract violations, or library-code printing.
// This is the same analysis `make lint` (cmd/vixlint) runs.
func TestRepoIsLintClean(t *testing.T) {
	findings, err := lint.Check(repoRoot(t))
	if err != nil {
		t.Fatalf("lint.Check: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("fix the findings or, for provably order-independent map iteration, add a justified //vixlint:ordered waiver (see package lint docs)")
	}
}

// TestConcurrencyAllowlistIsPinned makes growing the concurrency
// allowlist a reviewed act: the packages where goroutines are legal are
// exactly internal/harness (the orchestration layer), internal/lint
// (whose engine fans per-package analysis out on a worker pool and
// sorts findings before reporting), internal/sim (home of the shared
// bounded worker pool both of the above run on), internal/network
// (whose parallel tick shards routers across that pool and merges in
// router-index order, keeping output byte-identical for any worker
// count), and internal/service (the vixd serving layer, whose runner
// goroutines execute cases through the harness over the content-
// addressed store and whose result streams are emitted in case order,
// so scheduling cannot reach results). Anyone adding a package here
// must also update this test — and justify why the new package's
// concurrency cannot leak scheduling into results.
func TestConcurrencyAllowlistIsPinned(t *testing.T) {
	want := map[string]bool{
		"internal/harness": true,
		"internal/lint":    true,
		"internal/sim":     true,
		"internal/network": true,
		"internal/service": true,
	}
	if len(lint.ConcurrencyAllowlist) != len(want) {
		t.Fatalf("ConcurrencyAllowlist = %v, want exactly %v", lint.ConcurrencyAllowlist, want)
	}
	for pkg := range want {
		if !lint.ConcurrencyAllowlist[pkg] {
			t.Errorf("ConcurrencyAllowlist missing %q", pkg)
		}
	}
}

// TestHarnessIsTheOnlyConcurrentPackage walks the repo's own ASTs and
// asserts go statements appear only in the allowlisted packages and
// nowhere else in internal/, the structural property the allowlist
// exists to protect. Since the shared worker pool moved into
// internal/sim, that is where the spawns must actually live: harness
// and network stay on the allowlist because they drive the pool, but
// they are expected to contain no go statements of their own. (The
// goroutine rule itself is exercised on synthetic modules in
// lint_test.go; this covers the real tree.)
func TestHarnessIsTheOnlyConcurrentPackage(t *testing.T) {
	mod, err := lint.Load(repoRoot(t))
	if err != nil {
		t.Fatalf("lint.Load: %v", err)
	}
	allowed := map[string]bool{
		"vix/internal/harness": true,
		"vix/internal/lint":    true,
		"vix/internal/sim":     true,
		"vix/internal/network": true,
		// The vixd service spawns its runner pool directly (it is an
		// orchestration layer like the harness, but its workers live for
		// the server, not one grid), so its go statements are legal.
		"vix/internal/service": true,
	}
	sawPoolGoroutine := false
	for _, pkg := range mod.Packages() {
		pkg := pkg
		if !strings.Contains(pkg.Path, "/internal/") {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				if _, ok := n.(*ast.GoStmt); !ok {
					return true
				}
				switch {
				case pkg.Path == "vix/internal/sim":
					sawPoolGoroutine = true
				case pkg.Path == "vix/internal/harness" || pkg.Path == "vix/internal/network":
					t.Errorf("%s: go statement at %s; harness and network must spawn through sim.Pool, not directly",
						pkg.Path, mod.Fset.Position(n.Pos()))
				case !allowed[pkg.Path]:
					t.Errorf("%s: go statement outside the allowlisted packages at %s",
						pkg.Path, mod.Fset.Position(n.Pos()))
				}
				return true
			})
		}
	}
	if !sawPoolGoroutine {
		t.Error("internal/sim no longer spawns goroutines; if the worker pool moved, move the allowlist with it")
	}
}

// TestCallGraphResolvesInterfaceDispatch pins the call graph's
// resolution quality on the real tree: Router.Tick calls Allocate
// through the alloc.Allocator interface, and class-hierarchy analysis
// must resolve that edge to the concrete allocator implementations.
func TestCallGraphResolvesInterfaceDispatch(t *testing.T) {
	mod, err := lint.Load(repoRoot(t))
	if err != nil {
		t.Fatalf("lint.Load: %v", err)
	}
	a := lint.NewAnalysis(mod)
	callees := a.Callees("vix/internal/router", "Router.Tick")
	if len(callees) == 0 {
		t.Fatal("no callees resolved for router.(*Router).Tick")
	}
	var allocates int
	for _, name := range callees {
		if strings.HasSuffix(name, ".Allocate") {
			allocates++
		}
	}
	if allocates < 2 {
		t.Errorf("Router.Tick resolved %d Allocate implementations (callees: %v); interface dispatch should reach every registered allocator",
			allocates, callees)
	}
	for _, kind := range []string{"time", "rand", "goroutine", "maprange"} {
		if a.Reaches("vix/internal/router", "Router.Tick", kind) {
			t.Errorf("Router.Tick transitively reaches a %s determinism source; the cycle loop must stay clean", kind)
		}
	}
}

// TestRepoTypeChecks asserts the analysis ran with full type information:
// analyzer fallbacks exist for broken code, but the repo itself must
// type-check cleanly or rules like determinism/maprange lose their teeth.
func TestRepoTypeChecks(t *testing.T) {
	mod, err := lint.Load(repoRoot(t))
	if err != nil {
		t.Fatalf("lint.Load: %v", err)
	}
	if len(mod.Pkgs) < 20 {
		t.Errorf("loaded only %d packages; expected the full module (loader discovery broke?)", len(mod.Pkgs))
	}
	for _, pkg := range mod.Packages() {
		for _, e := range pkg.TypeErrs {
			t.Errorf("%s: type error: %v", pkg.Path, e)
		}
	}
}

// TestRepoStateGraphIsClean runs the state-graph gate over the
// repository's own source against the committed manifest, so plain
// `go test ./...` — the tier-1 gate — fails the moment a new mutable
// field reaches the simulation state graph without a classification,
// a scratch field starts carrying cross-cycle state, or a config field
// is written mid-run. This is the same analysis `make lint`
// (cmd/vixlint -state) runs; regenerate and audit the manifest with
// `go run ./cmd/vixlint -state -update-state ./...`.
func TestRepoStateGraphIsClean(t *testing.T) {
	findings, stats, err := lint.CheckState(repoRoot(t), lint.StateOptions{
		CacheDir: t.TempDir(), // never mutate the checkout's warm-skip state
	})
	if err != nil {
		t.Fatalf("lint.CheckState: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("classify new fields in .vixlint/stategraph.golden (or fix the access order); `go run ./cmd/vixlint -state -update-state ./...` infers a starting class")
	}
	if stats.Roots < 6 || stats.Fields < 100 || stats.Entries < 5 {
		t.Errorf("stats = %+v; the state walk lost most of the tree (roots >= 6, fields >= 100, entries >= 5 expected)", stats)
	}
}

// TestStateGraphRootsArePinned makes growing the state-root table a
// reviewed act, like the concurrency allowlist: the structs anchoring
// the snapshot inventory are exactly the network (plus its NI), the
// router, the stats collector, the RNG stream, and every allocator
// implementation. Anyone adding a subsystem that owns mutable
// simulation state must extend StateGraphRoots, update this test, and
// justify the root in its Why field.
func TestStateGraphRootsArePinned(t *testing.T) {
	want := []struct{ pkg, typ, iface string }{
		{"network", "Network", ""},
		{"network", "ni", ""},
		{"router", "Router", ""},
		{"stats", "Collector", ""},
		{"sim", "RNG", ""},
		{"alloc", "", "Allocator"},
	}
	if len(lint.StateGraphRoots) != len(want) {
		t.Fatalf("StateGraphRoots has %d entries, want %d: %v", len(lint.StateGraphRoots), len(want), lint.StateGraphRoots)
	}
	for i, w := range want {
		r := lint.StateGraphRoots[i]
		if r.Pkg != w.pkg || r.Type != w.typ || r.Iface != w.iface {
			t.Errorf("StateGraphRoots[%d] = {%s %s %s}, want {%s %s %s}", i, r.Pkg, r.Type, r.Iface, w.pkg, w.typ, w.iface)
		}
		if strings.TrimSpace(r.Why) == "" {
			t.Errorf("StateGraphRoots[%d] (%s.%s%s) has no justification", i, r.Pkg, r.Type, r.Iface)
		}
	}
}

// TestShardOwnershipRootsArePinned makes growing the write-ownership
// table a reviewed act, exactly like the concurrency allowlist: the
// packages whose pool jobs may write anything at all are internal/network
// (shard and router blocks, partitioned by index) and internal/harness
// (per-job result slots and mutex-guarded bookkeeping). Anyone adding a
// root must update this test and justify the confinement in the entry's
// Why field.
func TestShardOwnershipRootsArePinned(t *testing.T) {
	want := map[string][]string{
		"internal/network": {"(*Network).shards", "(*Network).routers", "(*Network).act", "(*Network).lastTick", "(*Network).flits"},
		"internal/harness": {"captured results", "captured st", "captured jobErrs"},
	}
	if len(lint.ShardOwnershipRoots) != len(want) {
		t.Fatalf("ShardOwnershipRoots covers %d packages, want %d: %v",
			len(lint.ShardOwnershipRoots), len(want), lint.ShardOwnershipRoots)
	}
	for pkg, roots := range want {
		got := lint.ShardOwnershipRoots[pkg]
		if len(got) != len(roots) {
			t.Errorf("ShardOwnershipRoots[%q] = %v, want roots %v", pkg, got, roots)
			continue
		}
		for i, r := range roots {
			if got[i].Root != r {
				t.Errorf("ShardOwnershipRoots[%q][%d].Root = %q, want %q", pkg, i, got[i].Root, r)
			}
			if strings.TrimSpace(got[i].Why) == "" {
				t.Errorf("ShardOwnershipRoots[%q][%d] (%s) has no justification", pkg, i, r)
			}
		}
	}
}

// TestPoolJobsResolveOnRealTree pins job detection where it matters:
// the write-effect rules only guard what they can find, so every real
// Pool.Do site — the network's method-value shard and worklist jobs and
// the harness's job literal — must resolve.
func TestPoolJobsResolveOnRealTree(t *testing.T) {
	mod, err := lint.Load(repoRoot(t))
	if err != nil {
		t.Fatalf("lint.Load: %v", err)
	}
	a := lint.NewAnalysis(mod)
	jobs := a.PoolJobs()
	want := []string{"func literal in harness.Run", "network.(*Network).runShard", "network.(*Network).runActive"}
	for _, w := range want {
		found := false
		for _, j := range jobs {
			if j == w {
				found = true
			}
		}
		if !found {
			t.Errorf("pool job %q did not resolve (resolved: %v); the parallel rules are blind to it", w, jobs)
		}
	}

	// The tick jobs' write summaries must stay inside the owned roots,
	// and must actually flow through the cone (an empty summary would
	// mean the analysis lost the writes, not that the code is clean).
	owned := map[string][]string{
		"Network.runShard":  {"(*Network).shards", "(*Network).routers"},
		"Network.runActive": {"(*Network).act", "(*Network).routers", "(*Network).lastTick"},
	}
	for job, roots := range owned {
		writes := a.FuncWrites("vix/internal/network", job)
		if len(writes) == 0 {
			t.Fatalf("%s has an empty write summary; the write-effect analysis lost its cone", job)
		}
		for _, w := range writes {
			ok := false
			for _, root := range roots {
				if strings.HasPrefix(w, root) {
					ok = true
				}
			}
			if !ok {
				t.Errorf("%s writes %s, outside the declared shard-owned roots; either a race crept in or ShardOwnershipRoots is stale", job, w)
			}
		}
	}
}
