package timing

// RadixScalingRow evaluates VIX timing feasibility at one router radix:
// Section 2.4 observes that the crossbar slack shrinks as radix grows and
// that "VIX architecture may not scale to very high radices unless
// innovative high-radix switch architectures are utilized". This study
// locates that frontier with the calibrated models.
type RadixScalingRow struct {
	Radix int
	// Cycle is the router cycle time (max of VA and SA).
	Cycle float64
	// XbarBase and XbarVIX are the P x P and 2P x P crossbar delays.
	XbarBase, XbarVIX float64
	// SlackBase and SlackVIX are Cycle - Xbar: positive means the
	// crossbar fits the allocation-stage-limited cycle.
	SlackBase, SlackVIX float64
	// Feasible reports whether the VIX crossbar still fits.
	Feasible bool
}

// RadixScaling sweeps router radices with the given VCs per port and
// k = 2 virtual inputs, returning one row per radix.
func RadixScaling(radices []int, vcs int) []RadixScalingRow {
	rows := make([]RadixScalingRow, 0, len(radices))
	for _, p := range radices {
		cycle := CycleTime(p, vcs)
		xb := XbarDelay(p, p)
		xv := XbarDelay(2*p, p)
		rows = append(rows, RadixScalingRow{
			Radix:     p,
			Cycle:     cycle,
			XbarBase:  xb,
			XbarVIX:   xv,
			SlackBase: cycle - xb,
			SlackVIX:  cycle - xv,
			Feasible:  xv <= cycle,
		})
	}
	return rows
}

// VIXFeasibilityFrontier returns the largest radix (scanning 2..64) at
// which the 2P x P VIX crossbar still fits within the router cycle, with
// the given VCs per port.
func VIXFeasibilityFrontier(vcs int) int {
	last := 0
	for p := 2; p <= 64; p++ {
		if XbarDelay(2*p, p) <= CycleTime(p, vcs) {
			last = p
		}
	}
	return last
}
