package router

import (
	"fmt"
	"strings"

	"vix/internal/alloc"
	"vix/internal/topology"
)

// Config holds the per-router microarchitecture parameters of the paper's
// methodology (Section 3): buffering of v VCs per port with a fixed
// buffer depth, a crossbar with k virtual inputs per port, a switch
// allocation scheme, and an output-VC assignment policy.
type Config struct {
	Ports         int             // router radix P
	VCs           int             // virtual channels per input port
	VirtualInputs int             // crossbar virtual inputs per port (1 = baseline, 2 = VIX)
	BufDepth      int             // flit buffers per VC
	AllocKind     alloc.Kind      // switch allocation scheme
	Policy        PolicyKind      // output-VC assignment policy
	Partition     alloc.Partition // VC-to-sub-group mapping (default contiguous)

	// NonSpeculative disables speculative switch allocation: a head flit
	// that wins VC allocation this cycle may only compete in switch
	// allocation from the next cycle. The default (false) models the
	// paper's optimised pipeline (Figure 6b, citing Peh & Dally), where
	// heads speculatively bid for the switch in parallel with VA.
	NonSpeculative bool
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.BufDepth <= 0 {
		return fmt.Errorf("router: BufDepth must be positive, got %d", c.BufDepth)
	}
	if c.Policy == "" {
		return fmt.Errorf("router: Policy must be set")
	}
	return c.Alloc().Validate()
}

// Alloc returns the allocator geometry implied by the config.
func (c Config) Alloc() alloc.Config {
	return alloc.Config{Ports: c.Ports, VCs: c.VCs, VirtualInputs: c.VirtualInputs, Partition: c.Partition}
}

// PortInfo describes one (bidirectional) router port's wiring class and
// dimension, taken from the topology.
type PortInfo struct {
	Kind topology.PortKind
	Dim  topology.Dim
}

// Emission is a flit leaving through an output port this cycle; the
// network layer schedules its arrival downstream (or its ejection) after
// switch and link traversal.
type Emission struct {
	OutPort int
	Flit    *Flit
}

// CreditMsg is a credit freed by a flit departing input (Port, VC),
// to be returned to the upstream router.
type CreditMsg struct {
	Port, VC int
}

// NextDimFunc returns the dimension class of the output port a packet
// destined to dst will request at the downstream router reached through
// outPort (lookahead information for the Section 2.3 policies).
type NextDimFunc func(outPort, dst int) topology.Dim

// inputVC is the state of one virtual channel at one input port.
type inputVC struct {
	buf      []*Flit
	ovcValid bool
	ovc      int // allocated downstream VC for the current packet
	outPort  int // route of the current packet
	// wait counts consecutive cycles the front flit has requested the
	// switch without winning; age-aware allocators consume it.
	wait int
}

// outputPort tracks the downstream buffer state for one output port.
type outputPort struct {
	info    PortInfo
	credits []int  // per downstream VC
	busy    []bool // downstream VC held by one of this router's input VCs
}

// Router is a cycle-accurate virtual-channel router.
type Router struct {
	id      int
	cfg     Config
	acfg    alloc.Config
	alloc   alloc.Allocator
	nextDim NextDimFunc

	in  [][]*inputVC // [port][vc]
	out []*outputPort

	// occ counts buffered flits across all input VCs, maintained
	// incrementally (DeliverFlit adds, grant departures subtract) so the
	// activity-gated tick can test quiescence in O(1).
	occ int

	vaOffset int // rotating VC-allocation priority

	// justAllocated marks input VCs whose output VC was granted in the
	// current Tick; with NonSpeculative set they sit out this cycle's
	// switch allocation.
	justAllocated []bool

	// scratch
	reqs        alloc.RequestSet
	busyInGroup []int
	freeScratch []bool
	ems         []Emission
	creds       []CreditMsg
}

// New builds a router. ports describes the wiring class of each port
// (symmetric in/out). The allocator must match cfg.Alloc() geometry.
func New(id int, cfg Config, ports []PortInfo, allocator alloc.Allocator, nextDim NextDimFunc) *Router {
	if err := cfg.Validate(); err != nil {
		panic("router: invalid config: " + strings.TrimPrefix(err.Error(), "router: "))
	}
	if len(ports) != cfg.Ports {
		panic(fmt.Sprintf("router: %d port infos for %d ports", len(ports), cfg.Ports))
	}
	r := &Router{
		id:            id,
		cfg:           cfg,
		acfg:          cfg.Alloc(),
		alloc:         allocator,
		nextDim:       nextDim,
		justAllocated: make([]bool, cfg.Ports*cfg.VCs),
		busyInGroup:   make([]int, cfg.VirtualInputs),
		freeScratch:   make([]bool, cfg.VCs),
		ems:           make([]Emission, 0, cfg.Ports),
		creds:         make([]CreditMsg, 0, cfg.Ports),
	}
	r.reqs.Config = r.acfg
	r.in = make([][]*inputVC, cfg.Ports)
	r.out = make([]*outputPort, cfg.Ports)
	for p := 0; p < cfg.Ports; p++ {
		r.in[p] = make([]*inputVC, cfg.VCs)
		for v := 0; v < cfg.VCs; v++ {
			r.in[p][v] = &inputVC{buf: make([]*Flit, 0, cfg.BufDepth)}
		}
		op := &outputPort{
			info:    ports[p],
			credits: make([]int, cfg.VCs),
			busy:    make([]bool, cfg.VCs),
		}
		for v := range op.credits {
			op.credits[v] = cfg.BufDepth
		}
		r.out[p] = op
	}
	return r
}

// ID returns the router's index in its network.
func (r *Router) ID() int { return r.id }

// Config returns the router's configuration.
func (r *Router) Config() Config { return r.cfg }

// DeliverFlit places an arriving flit into input (port, vc). The caller
// must have set the flit's Route for this router. It panics on buffer
// overflow, which would indicate a flow-control bug.
func (r *Router) DeliverFlit(port, vc int, f *Flit) {
	ivc := r.in[port][vc]
	if len(ivc.buf) >= r.cfg.BufDepth {
		panic(fmt.Sprintf("router %d: buffer overflow at port %d vc %d", r.id, port, vc))
	}
	if f.Route < 0 || f.Route >= r.cfg.Ports {
		panic(fmt.Sprintf("router %d: flit delivered with invalid route %d", r.id, f.Route))
	}
	f.VC = vc
	ivc.buf = append(ivc.buf, f)
	r.occ++
}

// DeliverCredit returns one credit for downstream VC vc of outPort.
func (r *Router) DeliverCredit(outPort, vc int) {
	op := r.out[outPort]
	if op.credits[vc] >= r.cfg.BufDepth {
		panic(fmt.Sprintf("router %d: credit overflow at port %d vc %d", r.id, outPort, vc))
	}
	op.credits[vc]++
}

// Busy reports whether the router holds any buffered flits. An idle
// router's Tick is exactly the empty tick SkipIdle replays — no
// emissions, no credits, no requests to the allocator — so the network's
// activity gate only needs to wake a router on a credit when Busy is
// true: credits are applied eagerly above, and a credit at an empty
// router cannot create work until a flit arrives (which sets the bit).
func (r *Router) Busy() bool { return r.occ > 0 }

// BufferSpace returns the free flit slots of input (port, vc); the
// network interface uses it to gate injection at local ports.
func (r *Router) BufferSpace(port, vc int) int {
	return r.cfg.BufDepth - len(r.in[port][vc].buf)
}

// Occupancy returns the number of buffered flits across all input VCs.
// It recounts rather than trusting the incremental counter; tests use
// the pair to cross-check each other.
func (r *Router) Occupancy() int {
	n := 0
	for _, port := range r.in {
		for _, ivc := range port {
			n += len(ivc.buf)
		}
	}
	if n != r.occ {
		panic(fmt.Sprintf("router %d: occupancy counter %d but %d flits buffered", r.id, r.occ, n))
	}
	return n
}

// Credits exposes the credit count for (outPort, vc); used by tests.
func (r *Router) Credits(outPort, vc int) int { return r.out[outPort].credits[vc] }

// Tick advances the router one cycle: VC allocation, then switch
// allocation, then switch traversal of the winners. It returns the flits
// leaving through output ports, the credits freed at input ports, and
// whether the router quiesced — no flits remain buffered, so until the
// next delivery every further tick would be the idle no-op SkipIdle can
// replay. The activity-gated network tick clears a quiesced router's
// activity bit and stops ticking it.
//
// Both returned slices are router-owned scratch, valid only until the
// next Tick call; callers must consume (or copy) them within the cycle.
//
//vixlint:hot
func (r *Router) Tick() (ems []Emission, credits []CreditMsg, quiesced bool) {
	r.ems = r.ems[:0]
	r.creds = r.creds[:0]
	if r.cfg.NonSpeculative {
		for i := range r.justAllocated {
			r.justAllocated[i] = false
		}
	}
	r.allocateVCs()
	grants := r.alloc.Allocate(r.buildRequests())
	for _, g := range grants {
		ivc := r.in[g.Port][g.VC]
		ivc.wait = 0
		f := ivc.buf[0]
		ivc.buf = ivc.buf[:copy(ivc.buf, ivc.buf[1:])]
		r.occ--
		op := r.out[g.OutPort]
		if op.info.Kind == topology.Link {
			op.credits[ivc.ovc]--
			if op.credits[ivc.ovc] < 0 {
				panic(fmt.Sprintf("router %d: credit underflow at port %d vc %d", r.id, g.OutPort, ivc.ovc))
			}
			f.Hops++
			if f.Type.IsTail() {
				op.busy[ivc.ovc] = false
			}
		}
		f.VC = ivc.ovc
		if f.Type.IsTail() {
			ivc.ovcValid = false
		}
		r.ems = append(r.ems, Emission{OutPort: g.OutPort, Flit: f})
		if r.out[g.Port].info.Kind == topology.Link {
			r.creds = append(r.creds, CreditMsg{Port: g.Port, VC: g.VC})
		}
	}
	return r.ems, r.creds, r.occ == 0
}

// SkipIdle fast-forwards the router across cycles consecutive ticks
// during which it held no buffered flits. An idle Tick emits nothing and
// frees no credits; its only persistent effects are the VC-allocation
// priority rotation, the clearing of the NonSpeculative just-allocated
// marks, and whatever the allocator does with an empty request set —
// which built-in allocators compress to O(1) via alloc.IdleSkipper. A
// custom allocator without SkipIdle gets the literal empty Allocate
// calls, so gated and dense runs stay byte-identical for any allocator.
//
// The caller asserts the router was empty for the skipped span; current
// buffer contents are irrelevant (the activity-gated tick calls SkipIdle
// at reactivation, after the cycle's deliveries have already landed) —
// an idle tick's effects touch nothing the buffers feed.
func (r *Router) SkipIdle(cycles int) {
	r.vaOffset += cycles
	if r.cfg.NonSpeculative {
		for i := range r.justAllocated {
			r.justAllocated[i] = false
		}
	}
	if s, ok := r.alloc.(alloc.IdleSkipper); ok {
		s.SkipIdle(cycles)
		return
	}
	r.reqs.Requests = r.reqs.Requests[:0]
	for i := 0; i < cycles; i++ {
		r.alloc.Allocate(&r.reqs)
	}
}

// allocateVCs performs the VC allocation stage: head flits at the front
// of their buffers acquire an output VC at the downstream router. Input
// VCs are visited in a rotating order for long-run fairness.
func (r *Router) allocateVCs() {
	total := r.cfg.Ports * r.cfg.VCs
	for i := 0; i < total; i++ {
		idx := (r.vaOffset + i) % total
		port, vc := idx/r.cfg.VCs, idx%r.cfg.VCs
		ivc := r.in[port][vc]
		if len(ivc.buf) == 0 || ivc.ovcValid {
			continue
		}
		f := ivc.buf[0]
		if !f.Type.IsHead() {
			// A body flit without a valid output VC cannot occur: the VC
			// is held from head grant to tail departure.
			panic(fmt.Sprintf("router %d: body flit at front of unallocated VC", r.id))
		}
		out := f.Route
		op := r.out[out]
		if op.info.Kind == topology.Local {
			// Ejection needs no downstream VC: the sink absorbs at link
			// bandwidth, serialised per output port by switch allocation.
			ivc.ovcValid, ivc.ovc, ivc.outPort = true, 0, out
			r.justAllocated[idx] = true
			continue
		}
		v := r.chooseOVC(op, f.Dst, out)
		if v < 0 {
			continue // all suitable downstream VCs busy; retry next cycle
		}
		ivc.ovcValid, ivc.ovc, ivc.outPort = true, v, out
		op.busy[v] = true
		r.justAllocated[idx] = true
	}
	r.vaOffset++
}

// chooseOVC applies the configured Section 2.3 policy.
func (r *Router) chooseOVC(op *outputPort, dst, out int) int {
	for g := range r.busyInGroup {
		r.busyInGroup[g] = 0
	}
	groupSize := r.acfg.GroupSize()
	anyFree := false
	for v := 0; v < r.cfg.VCs; v++ {
		r.freeScratch[v] = !op.busy[v]
		if op.busy[v] {
			r.busyInGroup[r.acfg.Subgroup(v)]++
		} else {
			anyFree = true
		}
	}
	if !anyFree {
		return -1
	}
	ctx := vaContext{
		free:        r.freeScratch,
		credits:     op.credits,
		busyInGroup: r.busyInGroup,
		nextDim:     r.nextDim(out, dst),
		groups:      r.cfg.VirtualInputs,
		groupSize:   groupSize,
	}
	return r.cfg.Policy.choose(&ctx)
}

// buildRequests assembles this cycle's switch-allocation request set:
// every input VC whose front flit has an output VC and a downstream
// credit requests its packet's output port.
func (r *Router) buildRequests() *alloc.RequestSet {
	r.reqs.Requests = r.reqs.Requests[:0]
	for port := 0; port < r.cfg.Ports; port++ {
		for vc := 0; vc < r.cfg.VCs; vc++ {
			ivc := r.in[port][vc]
			if len(ivc.buf) == 0 || !ivc.ovcValid {
				continue
			}
			if r.cfg.NonSpeculative && r.justAllocated[port*r.cfg.VCs+vc] {
				continue // VA and SA may not overlap in the same cycle
			}
			op := r.out[ivc.outPort]
			if op.info.Kind == topology.Link && op.credits[ivc.ovc] == 0 {
				continue
			}
			r.reqs.Requests = append(r.reqs.Requests, alloc.Request{
				Port: port, VC: vc, OutPort: ivc.outPort, Age: ivc.wait,
			})
			ivc.wait++
		}
	}
	return &r.reqs
}
