package routing

import (
	"testing"

	"vix/internal/topology"
)

// torusDist is the reference minimal hop count on a torus: per-dimension
// shorter-way ring distance, summed.
func torusDist(t *topology.Topology, src, dst int) int {
	sx, sy := t.RouterXY(t.NodeRouter[src])
	dx, dy := t.RouterXY(t.NodeRouter[dst])
	return ringDist(sx, dx, t.W) + ringDist(sy, dy, t.H)
}

func ringDist(a, b, k int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if wrap := k - d; wrap < d {
		return wrap
	}
	return d
}

// Torus DOR converges everywhere and is minimal: hop count equals the
// shorter-way ring distance in each dimension, on even and odd radii.
func TestTorusDORMinimal(t *testing.T) {
	for _, topo := range []*topology.Topology{
		topology.NewTorus(4, 4),
		topology.NewTorus(5, 3),
	} {
		route := DOR(topo)
		for src := 0; src < topo.NumNodes; src++ {
			for dst := 0; dst < topo.NumNodes; dst++ {
				want := torusDist(topo, src, dst)
				if got := Hops(topo, route, src, dst); got != want {
					t.Fatalf("%s hops %d->%d = %d, want %d", topo.Name, src, dst, got, want)
				}
			}
		}
	}
}

// On a 2x2 torus no ring reaches the wrap threshold, so torus DOR's
// tie-break must reproduce mesh DOR port-for-port at every router.
func TestTorusDORCoincidesWithMeshAt2x2(t *testing.T) {
	mesh := topology.NewMesh(2, 2)
	torus := topology.NewTorus(2, 2)
	meshRoute := DOR(mesh)
	torusRoute := DOR(torus)
	for r := 0; r < mesh.NumRouters; r++ {
		for dst := 0; dst < mesh.NumNodes; dst++ {
			mp := meshRoute(mesh, r, dst)
			tp := torusRoute(torus, r, dst)
			if mp != tp {
				t.Fatalf("router %d -> node %d: torus port %d, mesh port %d", r, dst, tp, mp)
			}
		}
	}
}

// TestTorusVCClassMonotone walks every DOR path and checks the dateline
// invariants that make the scheme deadlock-free: within each dimension
// the class never goes 1 -> 0, the hop that traverses a wrap link is
// always class 1, and rings too short to wrap never get a class at all.
func TestTorusVCClassMonotone(t *testing.T) {
	for _, topo := range []*topology.Topology{
		topology.NewTorus(4, 4),
		topology.NewTorus(5, 3),
	} {
		route := DOR(topo)
		for src := 0; src < topo.NumNodes; src++ {
			for dst := 0; dst < topo.NumNodes; dst++ {
				r := topo.NodeRouter[src]
				// prevClass[axis 0=X, 1=Y]; -1 means not entered yet.
				prevClass := [2]int{-1, -1}
				for steps := 0; r != topo.NodeRouter[dst]; steps++ {
					if steps > topo.NumRouters {
						t.Fatalf("%s: %d->%d did not converge", topo.Name, src, dst)
					}
					p := route(topo, r, dst)
					class := TorusVCClass(topo, r, p, dst)
					axis, k := 0, topo.W
					if p == topo.NorthPort() || p == topo.SouthPort() {
						axis, k = 1, topo.H
					}
					if k < 3 {
						if class != -1 {
							t.Fatalf("%s: ring of %d got class %d on hop %d->%d (dst %d)", topo.Name, k, class, r, p, dst)
						}
					} else {
						if class != 0 && class != 1 {
							t.Fatalf("%s: hop %d port %d (dst %d) class %d, want 0 or 1", topo.Name, r, p, dst, class)
						}
						if prevClass[axis] == 1 && class == 0 {
							t.Fatalf("%s: class fell 1->0 in axis %d on path %d->%d at router %d", topo.Name, axis, src, dst, r)
						}
						prevClass[axis] = class
					}
					x, y := topo.RouterXY(r)
					next := topo.Conn[r][p].PeerRouter
					nx, ny := topo.RouterXY(next)
					wrap := (axis == 0 && ringDist(x, nx, 1<<30) > 1) || (axis == 1 && ringDist(y, ny, 1<<30) > 1)
					if wrap && class != 1 {
						t.Fatalf("%s: wrap hop %d->%d (dst %d) got class %d, want 1", topo.Name, r, next, dst, class)
					}
					r = next
				}
			}
		}
	}
}

// TestTorusVCClassNonLinkPorts pins the escape hatch: local (ejection)
// ports are not ring channels and must report class -1.
func TestTorusVCClassNonLinkPorts(t *testing.T) {
	topo := topology.NewTorus(4, 4)
	for r := 0; r < topo.NumRouters; r++ {
		for p := 0; p < topo.Radix; p++ {
			if topo.Conn[r][p].Kind == topology.Link {
				continue
			}
			if class := TorusVCClass(topo, r, p, 0); class != -1 {
				t.Fatalf("non-link port %d at router %d got class %d, want -1", p, r, class)
			}
		}
	}
}

// TestTorusRoutesConverge extends the convergence sweep to tori,
// including an asymmetric odd-by-even one.
func TestTorusRoutesConverge(t *testing.T) {
	for _, topo := range []*topology.Topology{
		topology.NewTorus(4, 4),
		topology.NewTorus(5, 4),
		topology.NewTorus(3, 3),
	} {
		t.Run(topo.Name, func(t *testing.T) {
			route := DOR(topo)
			for src := 0; src < topo.NumNodes; src++ {
				for dst := 0; dst < topo.NumNodes; dst++ {
					r := topo.NodeRouter[src]
					steps := 0
					for r != topo.NodeRouter[dst] {
						p := route(topo, r, dst)
						c := topo.Conn[r][p]
						if c.Kind != topology.Link {
							t.Fatalf("router %d -> node %d chose unwired port %d", r, dst, p)
						}
						r = c.PeerRouter
						if steps++; steps > topo.NumRouters {
							t.Fatalf("route %d -> %d did not converge", src, dst)
						}
					}
					p := route(topo, r, dst)
					if c := topo.Conn[r][p]; c.Kind != topology.Local || c.Node != dst {
						t.Fatalf("at dst router %d, port %d is %+v, want local port of node %d", r, p, c, dst)
					}
				}
			}
		})
	}
}
