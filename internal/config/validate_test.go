package config

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestValidateAcceptsDefaults: the documented default experiment and the
// zero value (all defaults) must both validate.
func TestValidateAcceptsDefaults(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
	if err := (Experiment{}).Validate(); err != nil {
		t.Fatalf("zero experiment invalid: %v", err)
	}
}

// TestValidateAcceptsEverythingBuildAccepts sweeps the enum fields
// through their legal values: Validate must never reject a spec Build
// can resolve.
func TestValidateAcceptsEverythingBuildAccepts(t *testing.T) {
	for _, topo := range []string{"", "mesh", "cmesh", "fbfly"} {
		for _, allocName := range []string{"", "if", "wavefront", "ap", "pc", "ideal", "islip", "sparoflo", "if-age"} {
			e := Default()
			e.Topology = topo
			e.Allocator = allocName
			if err := e.Validate(); err != nil {
				t.Errorf("topology=%q allocator=%q rejected: %v", topo, allocName, err)
				continue
			}
			if _, err := e.Build(); err != nil {
				t.Errorf("topology=%q allocator=%q validated but Build failed: %v", topo, allocName, err)
			}
		}
	}
}

// TestValidateFieldPaths pins the structured error contract: every bad
// field is reported, under its JSON path, in one pass.
func TestValidateFieldPaths(t *testing.T) {
	e := Default()
	e.Topology = "hypercube"
	e.Allocator = "magic"
	e.Policy = "psychic"
	e.Partition = "diagonal"
	e.Pattern = "stampede"
	e.InjectionRate = 1.5
	e.VCs = -1
	e.Warmup = -10

	err := e.Validate()
	if err == nil {
		t.Fatal("invalid experiment validated")
	}
	var ve ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("error is %T, want ValidationError", err)
	}
	want := []string{"topology", "vcs", "allocator", "policy", "partition", "pattern", "injection_rate", "warmup"}
	if len(ve) != len(want) {
		t.Fatalf("got %d field errors %v, want %d", len(ve), ve, len(want))
	}
	for i, f := range want {
		if ve[i].Field != f {
			t.Errorf("field error %d names %q, want %q (errors: %v)", i, ve[i].Field, f, ve)
		}
		if ve[i].Msg == "" {
			t.Errorf("field error %d (%s) has no message", i, f)
		}
	}
	if !strings.Contains(err.Error(), "injection_rate") {
		t.Errorf("flattened message %q does not name the field", err)
	}
}

// TestValidateCrossbarGeometry: virtual inputs cannot exceed VCs, with
// the documented defaults applied before the comparison.
func TestValidateCrossbarGeometry(t *testing.T) {
	e := Default()
	e.VCs = 4
	e.VirtualInputs = 6
	err := e.Validate()
	if err == nil {
		t.Fatal("k > vcs validated")
	}
	var ve ValidationError
	if !errors.As(err, &ve) || len(ve) != 1 || ve[0].Field != "virtual_inputs" {
		t.Fatalf("error = %v, want single virtual_inputs finding", err)
	}
	// k=8 over the default 6 VCs must also be caught (vcs field absent).
	e = Experiment{VirtualInputs: 8}
	if e.Validate() == nil {
		t.Fatal("k=8 over defaulted 6 VCs validated")
	}
}

// TestLoadValidates: a well-formed JSON file with a semantically invalid
// spec is rejected at load time with the field named.
func TestLoadValidates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.json")
	if err := os.WriteFile(path, []byte(`{"allocator": "magic"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if err == nil {
		t.Fatal("Load accepted an unknown allocator")
	}
	if !strings.Contains(err.Error(), "allocator") {
		t.Fatalf("Load error %q does not name the bad field", err)
	}
}
