// Custom allocator: the router accepts any switch allocator implementing
// the vix.Allocator interface. This example implements an output-first
// separable allocator — the mirror image of the built-in input-first
// scheme: each output port first picks one requesting VC, then each
// crossbar row picks among the outputs that chose it — registers it under
// a new kind, and races it against the built-ins on a saturated mesh.
package main

import (
	"fmt"
	"log"

	"vix"
)

// outputFirst is a separable output-first allocator. Phase one: every
// output port selects one requesting (row, VC) by rotating priority.
// Phase two: every crossbar row selects one of the outputs that picked
// it. Like input-first separable allocation it needs no iteration, and
// it suffers the mirrored coordination problem: two outputs may pick the
// same row and one loses.
type outputFirst struct {
	cfg    vix.AllocatorConfig
	outPtr []int // rotating priority per output port over rows
	rowPtr []int // rotating priority per row over outputs
}

func newOutputFirst(cfg vix.AllocatorConfig) (vix.Allocator, error) {
	return &outputFirst{
		cfg:    cfg,
		outPtr: make([]int, cfg.Ports),
		rowPtr: make([]int, cfg.Rows()),
	}, nil
}

func (o *outputFirst) Name() string { return "output-first" }

func (o *outputFirst) Reset() {
	for i := range o.outPtr {
		o.outPtr[i] = 0
	}
	for i := range o.rowPtr {
		o.rowPtr[i] = 0
	}
}

func (o *outputFirst) Allocate(rs *vix.RequestSet) []vix.SwitchGrant {
	rows := o.cfg.Rows()
	// Request indices keyed by (row, outPort); keep the first VC per cell
	// and let the row rotate across cells over time.
	byCell := make(map[[2]int]int, len(rs.Requests))
	rowReq := make([][]bool, rows)
	for i := range rowReq {
		rowReq[i] = make([]bool, o.cfg.Ports)
	}
	for i, r := range rs.Requests {
		row := o.cfg.Row(r.Port, r.VC)
		key := [2]int{row, r.OutPort}
		if _, ok := byCell[key]; !ok {
			byCell[key] = i
		}
		rowReq[row][r.OutPort] = true
	}

	// Phase one: each output picks a row.
	pick := make([]int, o.cfg.Ports) // chosen row per output, -1 if none
	for out := range pick {
		pick[out] = -1
		for i := 0; i < rows; i++ {
			row := (o.outPtr[out] + i) % rows
			if rowReq[row][out] {
				pick[out] = row
				break
			}
		}
	}

	// Phase two: each row accepts one of the outputs that picked it.
	var grants []vix.SwitchGrant
	for row := 0; row < rows; row++ {
		accepted := -1
		for i := 0; i < o.cfg.Ports; i++ {
			out := (o.rowPtr[row] + i) % o.cfg.Ports
			if pick[out] == row {
				accepted = out
				break
			}
		}
		if accepted < 0 {
			continue
		}
		grants = append(grants, vix.SwitchGrant{
			Req: byCell[[2]int{row, accepted}], OutPort: accepted, Row: row,
		})
		o.rowPtr[row] = (accepted + 1) % o.cfg.Ports
		o.outPtr[accepted] = (row + 1) % rows
	}
	return grants
}

func saturation(kind vix.AllocatorKind, k int) vix.Snapshot {
	topo := vix.NewMeshTopology(8, 8)
	policy := vix.PolicyMaxFree
	if k > 1 {
		policy = vix.PolicyBalanced
	}
	n, err := vix.NewNetwork(vix.NetworkConfig{
		Topology: topo,
		Router: vix.RouterConfig{
			Ports: topo.Radix, VCs: 6, VirtualInputs: k, BufDepth: 5,
			AllocKind: kind, Policy: policy,
		},
		Pattern:      vix.NewUniformTraffic(topo.NumNodes),
		MaxInjection: true,
		PacketSize:   4,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	n.Warmup(1500)
	return n.Measure(5000)
}

func main() {
	const kindOutputFirst = vix.AllocatorKind("output-first")
	if err := vix.RegisterAllocator(kindOutputFirst, newOutputFirst); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Saturated 8x8 mesh, 6 VCs, 4-flit packets")
	for _, c := range []struct {
		label string
		kind  vix.AllocatorKind
		k     int
	}{
		{"input-first (built-in)", vix.AllocSeparableIF, 1},
		{"output-first (custom)", kindOutputFirst, 1},
		{"output-first + VIX", kindOutputFirst, 2},
		{"input-first + VIX", vix.AllocSeparableIF, 2},
	} {
		s := saturation(c.kind, c.k)
		fmt.Printf("%-24s %.4f flits/cycle/node, %.1f cycles avg latency\n",
			c.label, s.ThroughputFlits, s.AvgLatency)
	}
	fmt.Println("\nVIX composes with any separable allocator: both input-first and the")
	fmt.Println("custom output-first scheme gain throughput from the wider crossbar.")
}
