// Command chaining regenerates Figure 10: network throughput of packet
// chaining (SameInput/anyVC) against IF, WF, AP, and VIX on an 8x8 mesh
// with single-flit packets at maximum injection — the regime where
// chaining shines, and where VIX still wins (paper: PC +9%, VIX +16%).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"vix/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaining: ")
	var (
		warmup  = flag.Int("warmup", 2000, "warmup cycles")
		measure = flag.Int("measure", 10000, "measurement cycles")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	p := experiments.DefaultParams()
	p.Warmup, p.Measure, p.Seed = *warmup, *measure, *seed
	rows, err := experiments.Figure10(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 10: packet chaining comparison (8x8 mesh, single-flit packets, max injection)")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\tthroughput (flits/cyc/node)\tvs IF")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.4f\t%+.1f%%\n", r.Scheme, r.Throughput, 100*(r.GainOverIF-1))
	}
	w.Flush()
	fmt.Println("\nPaper reports: PC +9%, VIX +16% over IF.")
}
