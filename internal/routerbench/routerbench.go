// Package routerbench implements the single-router switch-allocation
// efficiency testbench of the paper's Section 4.2 (Figure 7): a router
// studied in isolation, with packets injected at maximum rate into every
// VC of every port, free of network-level effects, VC allocation, and
// flow control. The achieved flit rate measures pure allocation
// efficiency; a radix-P router can move at most P flits per cycle.
package routerbench

import (
	"fmt"

	"vix/internal/alloc"
	"vix/internal/sim"
)

// Config describes one testbench run.
type Config struct {
	// Radix is the router's port count (5 for mesh, 8 for CMesh, 10 for
	// FBfly in the paper).
	Radix int
	// VCs per input port (6 in the paper's Figure 7).
	VCs int
	// VirtualInputs per port: 1 baseline, 2 VIX, VCs ideal VIX.
	VirtualInputs int
	// AllocKind selects the allocation scheme.
	AllocKind alloc.Kind
	// PacketSize in flits; a packet holds its output port for all its
	// flits. 1 isolates per-cycle allocation decisions.
	PacketSize int
	// HotspotFraction skews the output-port distribution: this fraction
	// of packets targets output 0 and the rest are uniform. Zero keeps
	// the Figure 7 uniform-output workload.
	HotspotFraction float64
	Seed            uint64
}

// Result summarises a run.
type Result struct {
	Config        Config
	Cycles        int
	Flits         int64
	FlitsPerCycle float64
	// Efficiency is FlitsPerCycle normalised to the radix (the maximum
	// possible flits per cycle).
	Efficiency float64
}

// vcState is one always-backlogged virtual channel.
type vcState struct {
	outPort   int
	remaining int
}

// Bench is a reusable single-router testbench instance.
type Bench struct {
	cfg   Config
	acfg  alloc.Config
	alloc alloc.Allocator
	rng   *sim.RNG
	vcs   [][]*vcState
	reqs  alloc.RequestSet
}

// New builds a testbench. It returns an error for invalid configurations.
func New(cfg Config) (*Bench, error) {
	if cfg.PacketSize <= 0 {
		return nil, fmt.Errorf("routerbench: packet size must be positive, got %d", cfg.PacketSize)
	}
	acfg := alloc.Config{Ports: cfg.Radix, VCs: cfg.VCs, VirtualInputs: cfg.VirtualInputs}
	a, err := alloc.New(cfg.AllocKind, acfg)
	if err != nil {
		return nil, err
	}
	b := &Bench{cfg: cfg, acfg: acfg, alloc: a, rng: sim.NewRNG(cfg.Seed)}
	b.reqs.Config = acfg
	b.vcs = make([][]*vcState, cfg.Radix)
	for p := range b.vcs {
		b.vcs[p] = make([]*vcState, cfg.VCs)
		for v := range b.vcs[p] {
			b.vcs[p][v] = &vcState{}
			b.refill(b.vcs[p][v])
		}
	}
	return b, nil
}

// refill starts a fresh packet in the VC: a random output port held for
// PacketSize flits (maximum injection rate). The default distribution is
// uniform; HotspotFraction concentrates load on output 0.
func (b *Bench) refill(vc *vcState) {
	if b.cfg.HotspotFraction > 0 && b.rng.Bernoulli(b.cfg.HotspotFraction) {
		vc.outPort = 0
	} else {
		vc.outPort = b.rng.Intn(b.cfg.Radix)
	}
	vc.remaining = b.cfg.PacketSize
}

// Step advances one cycle and returns the number of flits transferred.
func (b *Bench) Step() int {
	b.reqs.Requests = b.reqs.Requests[:0]
	for p := 0; p < b.cfg.Radix; p++ {
		for v := 0; v < b.cfg.VCs; v++ {
			b.reqs.Requests = append(b.reqs.Requests, alloc.Request{
				Port: p, VC: v, OutPort: b.vcs[p][v].outPort,
			})
		}
	}
	grants := b.alloc.Allocate(&b.reqs)
	for _, g := range grants {
		req := g.Request(&b.reqs)
		vc := b.vcs[req.Port][req.VC]
		vc.remaining--
		if vc.remaining == 0 {
			b.refill(vc)
		}
	}
	return len(grants)
}

// Run executes warmup then measure cycles and returns the measured rate.
func Run(cfg Config, warmup, measure int) (Result, error) {
	b, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < warmup; i++ {
		b.Step()
	}
	var flits int64
	for i := 0; i < measure; i++ {
		flits += int64(b.Step())
	}
	r := Result{Config: cfg, Cycles: measure, Flits: flits}
	r.FlitsPerCycle = float64(flits) / float64(measure)
	r.Efficiency = r.FlitsPerCycle / float64(cfg.Radix)
	return r, nil
}

// Scheme is one curve of Figure 7.
type Scheme struct {
	Label         string
	AllocKind     alloc.Kind
	VirtualInputs int // 0 means "use VCs" (per-VC rows)
}

// Figure7Schemes returns the five allocation schemes of Figure 7 in
// presentation order: IF, WF, AP, VIX, and ideal.
func Figure7Schemes() []Scheme {
	return []Scheme{
		{Label: "IF", AllocKind: alloc.KindSeparableIF, VirtualInputs: 1},
		{Label: "WF", AllocKind: alloc.KindWavefront, VirtualInputs: 1},
		{Label: "AP", AllocKind: alloc.KindAugmentingPath, VirtualInputs: 1},
		{Label: "VIX", AllocKind: alloc.KindSeparableIF, VirtualInputs: 2},
		{Label: "Ideal", AllocKind: alloc.KindIdeal, VirtualInputs: 0},
	}
}

// Figure7 runs the full Figure 7 sweep: each scheme at each radix, with
// the paper's 6 VCs per port. It returns results[radixIdx][schemeIdx].
func Figure7(radices []int, vcs, packetSize, warmup, measure int, seed uint64) ([][]Result, error) {
	out := make([][]Result, len(radices))
	for i, radix := range radices {
		out[i] = make([]Result, 0, 5)
		for _, s := range Figure7Schemes() {
			k := s.VirtualInputs
			if k == 0 {
				k = vcs
			}
			cfg := Config{
				Radix: radix, VCs: vcs, VirtualInputs: k,
				AllocKind: s.AllocKind, PacketSize: packetSize, Seed: seed,
			}
			r, err := Run(cfg, warmup, measure)
			if err != nil {
				return nil, err
			}
			out[i] = append(out[i], r)
		}
	}
	return out, nil
}
