package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vix/internal/lint"
)

// checkModule writes a synthetic module into a temp dir and lints it.
// Keys of files are slash-separated paths relative to the module root.
func checkModule(t *testing.T, files map[string]string) []lint.Finding {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module example.com/m\n\ngo 1.22\n"
	for path, src := range files {
		abs := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(abs), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(abs, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	findings, err := lint.Check(root)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return findings
}

// want asserts that exactly one finding matches rule at the given
// file:line, returning it.
func want(t *testing.T, findings []lint.Finding, rule, file string, line int) {
	t.Helper()
	n := 0
	for _, f := range findings {
		if f.Rule == rule && strings.HasSuffix(f.Pos.Filename, file) && f.Pos.Line == line {
			n++
		}
	}
	if n != 1 {
		t.Errorf("want exactly one %s at %s:%d, got %d\nall findings:\n%s",
			rule, file, line, n, render(findings))
	}
}

// wantNone asserts no finding of the given rule exists.
func wantNone(t *testing.T, findings []lint.Finding, rule string) {
	t.Helper()
	for _, f := range findings {
		if f.Rule == rule {
			t.Errorf("unexpected %s finding: %s", rule, f)
		}
	}
}

func render(findings []lint.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		b.WriteString("  " + f.String() + "\n")
	}
	if b.Len() == 0 {
		return "  (none)\n"
	}
	return b.String()
}

func count(findings []lint.Finding, rule string) int {
	n := 0
	for _, f := range findings {
		if f.Rule == rule {
			n++
		}
	}
	return n
}

func TestDeterminismFamily(t *testing.T) {
	findings := checkModule(t, map[string]string{
		"internal/clocky/clocky.go": `package clocky

import (
	"math/rand"
	"time"
)

var total int

func Stamp() int64 {
	return time.Now().UnixNano()
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0)
}

func Draw() int {
	return rand.Int()
}

func Spawn() {
	go Draw()
}

func SumCounts(m map[string]int) {
	for _, v := range m {
		total += v
	}
}

func ReadOnly(m map[string]int) int {
	best := 0
	for _, v := range m {
		local := v * v
		_ = local
	}
	return best
}
`,
	})
	const f = "clocky.go"
	want(t, findings, "determinism/rand", f, 4)
	want(t, findings, "determinism/time", f, 11)
	want(t, findings, "determinism/time", f, 15)
	want(t, findings, "determinism/goroutine", f, 23)
	want(t, findings, "determinism/maprange", f, 27)
	if got := count(findings, "determinism/maprange"); got != 1 {
		t.Errorf("maprange findings = %d, want 1 (ReadOnly's loop only writes locals)\n%s", got, render(findings))
	}
}

func TestDeterminismWaivers(t *testing.T) {
	findings := checkModule(t, map[string]string{
		"internal/waved/waved.go": `package waved

var sum int

func Justified(m map[string]int) {
	for _, v := range m { //vixlint:ordered addition over ints is order-independent
		sum += v
	}
}

func Unjustified(m map[string]int) {
	//vixlint:ordered
	for _, v := range m {
		sum += v
	}
}

func NotWaived(m map[string]int) {
	for _, v := range m {
		sum += v
	}
}
`,
	})
	const f = "waved.go"
	// The justified waiver suppresses its loop; the bare one suppresses
	// too but is itself flagged for the missing justification.
	want(t, findings, "determinism/waiver", f, 12)
	want(t, findings, "determinism/maprange", f, 19)
	if got := count(findings, "determinism/maprange"); got != 1 {
		t.Errorf("maprange findings = %d, want only NotWaived's\n%s", got, render(findings))
	}
}

// TestConcurrencyAllowlist covers both sides of the goroutine rule: go
// statements are legal in the allowlisted orchestration packages
// (internal/harness among them) and nowhere else — not in simulation
// packages like internal/alloc, and not in a package merely named
// harness at another path. Every other determinism rule still binds
// inside the allowlisted packages.
func TestConcurrencyAllowlist(t *testing.T) {
	findings := checkModule(t, map[string]string{
		"internal/harness/pool.go": `package harness

import "time"

func FanOut(fns []func()) {
	done := make(chan struct{})
	for _, fn := range fns {
		fn := fn
		go func() {
			fn()
			done <- struct{}{}
		}()
	}
	for range fns {
		<-done
	}
}

func Stamp() int64 {
	return time.Now().UnixNano()
}
`,
		"internal/alloc/pool.go": `package alloc

func Sneaky(fn func()) {
	go fn()
}
`,
		"internal/nested/harness/pool.go": `package harness

func AlsoSneaky(fn func()) {
	go fn()
}
`,
	})
	wantNone(t, findings, "determinism/rand")
	if got := count(findings, "determinism/goroutine"); got != 2 {
		t.Errorf("goroutine findings = %d, want 2 (alloc and nested/harness only)\n%s", got, render(findings))
	}
	want(t, findings, "determinism/goroutine", "alloc/pool.go", 4)
	want(t, findings, "determinism/goroutine", "nested/harness/pool.go", 4)
	// The allowlist covers goroutines only: wall-clock reads in the
	// harness still need an explicit, justified waiver.
	want(t, findings, "determinism/time", "internal/harness/pool.go", 20)
}

func TestDeterminismSkipsCmdAndRoot(t *testing.T) {
	src := `package main

import "time"

func main() {
	_ = time.Now()
}
`
	findings := checkModule(t, map[string]string{
		"cmd/tool/main.go": src,
	})
	wantNone(t, findings, "determinism/time")
}

func TestHygieneFamily(t *testing.T) {
	findings := checkModule(t, map[string]string{
		"internal/noisy/noisy.go": `package noisy

import (
	"errors"
	"fmt"
	"os"
)

func Talk() {
	fmt.Println("hello")
	fmt.Fprintf(os.Stdout, "hi\n")
	println("debug")
}

func Blow() {
	panic(errors.New("boom"))
}

func BlowAnonymous() {
	panic("something went wrong")
}

func BlowProperly(n int) {
	if n < 0 {
		panic("noisy: n must be non-negative")
	}
	panic(fmt.Sprintf("noisy %d: unreachable", n))
}

func BlowConcat(err error) {
	panic("noisy: wrapped: " + err.Error())
}
`,
	})
	const f = "noisy.go"
	want(t, findings, "hygiene/print", f, 10) // fmt.Println
	want(t, findings, "hygiene/print", f, 11) // os.Stdout
	want(t, findings, "hygiene/print", f, 12) // builtin println
	want(t, findings, "hygiene/panic", f, 16) // panic(err)
	want(t, findings, "hygiene/panic", f, 20) // missing package prefix
	if got := count(findings, "hygiene/panic"); got != 2 {
		t.Errorf("hygiene/panic findings = %d, want 2 (prefixed panics are fine)\n%s", got, render(findings))
	}
}

func TestHygieneAllowsPrintingInCmd(t *testing.T) {
	findings := checkModule(t, map[string]string{
		"cmd/tool/main.go": `package main

import "fmt"

func main() {
	fmt.Println("tables go to stdout")
	panic("whatever")
}
`,
	})
	wantNone(t, findings, "hygiene/print")
	wantNone(t, findings, "hygiene/panic")
}

// allocRegistry is a minimal registry package exercising every contracts
// rule: KindUnlisted is missing from Kinds() and New, Mangler's Name
// disagrees with its Kind, and Mangler.Allocate mutates the request set.
const allocRegistry = `package alloc

type Kind string

const (
	KindGood     Kind = "good"
	KindUnlisted Kind = "unlisted"
	KindMangler  Kind = "mangler"
)

func Kinds() []Kind { return []Kind{KindGood, KindMangler} }

type Config struct{}

type Request struct{ Age int }

type RequestSet struct {
	Config   Config
	Requests []Request
}

type Grant struct{}

type Allocator interface {
	Name() string
	Allocate(rs *RequestSet) []Grant
	Reset()
}

func New(kind Kind, cfg Config) (Allocator, error) {
	switch kind {
	case KindGood:
		return NewGood(cfg), nil
	case KindMangler:
		return NewMangler(cfg), nil
	}
	return nil, nil
}

type Good struct{}

func NewGood(Config) *Good                    { return &Good{} }
func (g *Good) Name() string                  { return "good" }
func (g *Good) Allocate(rs *RequestSet) []Grant {
	for i := range rs.Requests {
		_ = rs.Requests[i].Age
	}
	return nil
}
func (g *Good) Reset() {}

type Mangler struct{}

func NewMangler(Config) *Mangler { return &Mangler{} }
func (m *Mangler) Name() string  { return "prankster" }
func (m *Mangler) Allocate(rs *RequestSet) []Grant {
	rs.Requests = append(rs.Requests, Request{})
	return nil
}
func (m *Mangler) Reset() {}
`

func TestContractsFamily(t *testing.T) {
	findings := checkModule(t, map[string]string{
		"internal/alloc/alloc.go": allocRegistry,
	})
	const f = "alloc.go"
	// KindUnlisted: absent from Kinds() and from New's switch.
	if got := count(findings, "contracts/registry"); got != 2 {
		t.Errorf("contracts/registry findings = %d, want 2\n%s", got, render(findings))
	}
	want(t, findings, "contracts/name", f, 55)   // Mangler.Name returns "prankster", Kind is "mangler"
	want(t, findings, "contracts/mutate", f, 57) // append to rs.Requests
	// Good is fully conformant: reading rs.Requests must not be flagged.
	for _, fd := range findings {
		if fd.Rule == "contracts/mutate" && fd.Pos.Line < 50 {
			t.Errorf("read-only Allocate flagged: %s", fd)
		}
	}
}

func TestContractsMutateOtherForms(t *testing.T) {
	findings := checkModule(t, map[string]string{
		"internal/alloc/alloc.go": `package alloc

type Request struct{ Age int }

type RequestSet struct{ Requests []Request }

func Scribble(rs *RequestSet) {
	rs.Requests[0].Age = 7
}

func Shrink(rs *RequestSet) {
	rs.Requests = rs.Requests[:0]
}

func Sort(rs *RequestSet) {
	sortRequests(rs.Requests)
}

func sortRequests([]Request) {}
`,
		"internal/user/user.go": `package user

import (
	"sort"

	"example.com/m/internal/alloc"
)

func Reorder(rs *alloc.RequestSet) {
	sort.Slice(rs.Requests, func(i, j int) bool { return rs.Requests[i].Age < rs.Requests[j].Age })
}

func Inspect(rs *alloc.RequestSet) int {
	return len(rs.Requests)
}
`,
	})
	want(t, findings, "contracts/mutate", "alloc.go", 8)  // element write
	want(t, findings, "contracts/mutate", "alloc.go", 12) // reslice
	want(t, findings, "contracts/mutate", "user.go", 10)  // sort.Slice in another package
	if got := count(findings, "contracts/mutate"); got != 3 {
		t.Errorf("contracts/mutate findings = %d, want 3 (Inspect and sortRequests are clean)\n%s", got, render(findings))
	}
}

func TestCleanModuleHasNoFindings(t *testing.T) {
	findings := checkModule(t, map[string]string{
		"internal/calm/calm.go": `package calm

import "fmt"

// Describe formats n without touching any forbidden API.
func Describe(n int) (string, error) {
	if n < 0 {
		return "", fmt.Errorf("calm: negative %d", n)
	}
	return fmt.Sprintf("n=%d", n), nil
}
`,
	})
	if len(findings) != 0 {
		t.Errorf("clean module produced findings:\n%s", render(findings))
	}
}

func TestFindingString(t *testing.T) {
	findings := checkModule(t, map[string]string{
		"internal/p/p.go": "package p\n\nimport \"time\"\n\nvar T = time.Now\n",
	})
	if len(findings) == 0 {
		t.Fatal("expected a finding for the time.Now reference")
	}
	s := findings[0].String()
	if !strings.Contains(s, "p.go:5: determinism/time:") {
		t.Errorf("String() = %q, want file:line: rule: message shape", s)
	}
}

// allocScratchModule exercises contracts/scratch: Greedy makes a fresh
// grants slice per Allocate call, Scratchy reuses a constructor-built
// buffer, Waived allocates per call behind a justified waiver, and Bare
// carries a waiver with no justification.
const allocScratchModule = `package alloc

type Config struct{}

type Request struct{ Age int }

type RequestSet struct {
	Config   Config
	Requests []Request
}

type Grant struct{}

type Allocator interface {
	Name() string
	Allocate(rs *RequestSet) []Grant
	Reset()
}

type Greedy struct{}

func (g *Greedy) Name() string { return "greedy" }
func (g *Greedy) Allocate(rs *RequestSet) []Grant {
	grants := make([]Grant, 0, 4)
	return grants
}
func (g *Greedy) Reset() {}

type Scratchy struct{ grants []Grant }

func NewScratchy(Config) *Scratchy { return &Scratchy{grants: make([]Grant, 0, 4)} }
func (s *Scratchy) Name() string   { return "scratchy" }
func (s *Scratchy) Allocate(rs *RequestSet) []Grant {
	s.grants = s.grants[:0]
	marks := make([]bool, 4)
	_ = marks
	return s.grants
}
func (s *Scratchy) Reset() {}

type Waived struct{}

func (w *Waived) Name() string { return "waived" }
func (w *Waived) Allocate(rs *RequestSet) []Grant {
	//vixlint:alloc diagnostic allocator, never on the cycle loop's hot path
	return make([]Grant, 0)
}
func (w *Waived) Reset() {}

type Bare struct{}

func (b *Bare) Name() string { return "bare" }
func (b *Bare) Allocate(rs *RequestSet) []Grant {
	//vixlint:alloc
	return make([]Grant, 0)
}
func (b *Bare) Reset() {}
`

func TestContractsScratch(t *testing.T) {
	findings := checkModule(t, map[string]string{
		"internal/alloc/alloc.go": allocScratchModule,
	})
	const f = "alloc.go"
	want(t, findings, "contracts/scratch", f, 24) // Greedy: make([]Grant, ...) per call
	want(t, findings, "contracts/waiver", f, 54)  // Bare: waiver without justification
	if got := count(findings, "contracts/scratch"); got != 1 {
		t.Errorf("contracts/scratch findings = %d, want 1 (Scratchy reuses scratch and only allocates marks; Waived and Bare are waived)\n%s",
			got, render(findings))
	}
}

// TestContractsScratchOutsideAllocPackage: the rule is scoped to alloc
// registry packages; an Allocate method elsewhere may build slices as it
// pleases.
func TestContractsScratchOutsideAllocPackage(t *testing.T) {
	findings := checkModule(t, map[string]string{
		"internal/alloc/alloc.go": `package alloc

type Config struct{}

type Request struct{ Age int }

type RequestSet struct {
	Config   Config
	Requests []Request
}

type Grant struct{}
`,
		"internal/custom/custom.go": `package custom

import "example.com/m/internal/alloc"

type Mine struct{}

func (m *Mine) Allocate(rs *alloc.RequestSet) []alloc.Grant {
	return make([]alloc.Grant, 0)
}
`,
	})
	wantNone(t, findings, "contracts/scratch")
}
