package router

import (
	"testing"

	"vix/internal/topology"
)

// ctx6x2 builds a vaContext for 6 VCs in 2 sub-groups of 3.
func ctx6x2(free []bool, credits []int32, busyInGroup []int, dim topology.Dim) *vaContext {
	return &vaContext{
		free: free, credits: credits, busyInGroup: busyInGroup,
		nextDim: dim, groups: 2, groupSize: 3,
	}
}

func TestMaxFreePicksMostCredits(t *testing.T) {
	ctx := ctx6x2(
		[]bool{true, true, true, true, true, true},
		[]int32{1, 4, 2, 5, 0, 3},
		[]int{0, 0}, topology.DimX,
	)
	if got := PolicyMaxFree.choose(ctx); got != 3 {
		t.Fatalf("maxfree chose %d, want 3 (5 credits)", got)
	}
}

func TestMaxFreeSkipsBusy(t *testing.T) {
	ctx := ctx6x2(
		[]bool{false, true, false, false, true, false},
		[]int32{9, 1, 9, 9, 2, 9},
		[]int{2, 2}, topology.DimY,
	)
	if got := PolicyMaxFree.choose(ctx); got != 4 {
		t.Fatalf("maxfree chose %d, want 4", got)
	}
}

func TestMaxFreeNoFreeVC(t *testing.T) {
	ctx := ctx6x2(
		[]bool{false, false, false, false, false, false},
		[]int32{0, 0, 0, 0, 0, 0},
		[]int{3, 3}, topology.DimX,
	)
	if got := PolicyMaxFree.choose(ctx); got != -1 {
		t.Fatalf("choose on all-busy = %d, want -1", got)
	}
}

// Dimension policy: X-bound continuations go to sub-group 0, Y-bound and
// ejecting to the last sub-group.
func TestDimensionGroupPreference(t *testing.T) {
	free := []bool{true, true, true, true, true, true}
	creds := []int32{3, 3, 3, 3, 3, 3}
	ctx := ctx6x2(free, creds, []int{0, 0}, topology.DimX)
	if got := PolicyDimension.choose(ctx); got > 2 {
		t.Fatalf("X continuation assigned VC %d outside sub-group 0", got)
	}
	ctx = ctx6x2(free, creds, []int{0, 0}, topology.DimY)
	if got := PolicyDimension.choose(ctx); got < 3 {
		t.Fatalf("Y continuation assigned VC %d outside sub-group 1", got)
	}
	ctx = ctx6x2(free, creds, []int{0, 0}, topology.DimLocal)
	if got := PolicyDimension.choose(ctx); got < 3 {
		t.Fatalf("ejecting packet assigned VC %d outside sub-group 1", got)
	}
}

// Dimension policy falls back to the other sub-group when the preferred
// one is fully busy.
func TestDimensionFallback(t *testing.T) {
	ctx := ctx6x2(
		[]bool{false, false, false, true, true, true},
		[]int32{0, 0, 0, 2, 5, 1},
		[]int{3, 0}, topology.DimX,
	)
	if got := PolicyDimension.choose(ctx); got != 4 {
		t.Fatalf("fallback chose %d, want 4 (most credits in other group)", got)
	}
}

// Balanced policy overrides the dimension preference when the preferred
// sub-group is more heavily occupied, keeping both virtual inputs fed.
func TestBalancedSteersToLighterGroup(t *testing.T) {
	// X-bound packet prefers group 0, but group 0 has 2 busy VCs while
	// group 1 has none: balanced steers to group 1.
	ctx := ctx6x2(
		[]bool{false, false, true, true, true, true},
		[]int32{0, 0, 4, 3, 3, 3},
		[]int{2, 0}, topology.DimX,
	)
	if got := PolicyBalanced.choose(ctx); got < 3 {
		t.Fatalf("balanced chose %d in overloaded group 0", got)
	}
	// Equal occupancy: keep the dimension preference.
	ctx = ctx6x2(
		[]bool{true, true, true, true, true, true},
		[]int32{3, 3, 3, 3, 3, 3},
		[]int{1, 1}, topology.DimX,
	)
	if got := PolicyBalanced.choose(ctx); got > 2 {
		t.Fatalf("balanced abandoned dimension preference without load imbalance: %d", got)
	}
}

// With a single sub-group (k=1) all policies behave like maxfree.
func TestPoliciesDegenerateAtKOne(t *testing.T) {
	ctx := &vaContext{
		free:        []bool{true, false, true, true},
		credits:     []int32{1, 9, 7, 2},
		busyInGroup: []int{1},
		nextDim:     topology.DimY,
		groups:      1,
		groupSize:   4,
	}
	for _, p := range []PolicyKind{PolicyMaxFree, PolicyDimension, PolicyBalanced} {
		if got := p.choose(ctx); got != 2 {
			t.Errorf("%s chose %d at k=1, want 2", p, got)
		}
	}
}

func TestUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown policy did not panic")
		}
	}()
	PolicyKind("bogus").choose(ctx6x2(
		[]bool{true, true, true, true, true, true},
		[]int32{1, 1, 1, 1, 1, 1},
		[]int{0, 0}, topology.DimX,
	))
}
