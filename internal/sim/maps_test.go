package sim

import (
	"reflect"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	if got, want := SortedKeys(m), []string{"a", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Errorf("SortedKeys = %v, want %v", got, want)
	}
	ints := map[int]struct{}{9: {}, -3: {}, 4: {}}
	if got, want := SortedKeys(ints), []int{-3, 4, 9}; !reflect.DeepEqual(got, want) {
		t.Errorf("SortedKeys = %v, want %v", got, want)
	}
	if got := SortedKeys(map[uint64]bool(nil)); len(got) != 0 {
		t.Errorf("SortedKeys(nil) = %v, want empty", got)
	}
}

func TestSortedKeysIsDeterministic(t *testing.T) {
	m := make(map[int]int)
	for i := 0; i < 1000; i++ {
		m[i*7919%1000] = i
	}
	first := SortedKeys(m)
	for run := 0; run < 10; run++ {
		if !reflect.DeepEqual(SortedKeys(m), first) {
			t.Fatal("SortedKeys order varied between calls")
		}
	}
	if len(first) != 1000 || first[0] != 0 || first[999] != 999 {
		t.Fatalf("unexpected key set: len=%d first=%d last=%d", len(first), first[0], first[len(first)-1])
	}
}
