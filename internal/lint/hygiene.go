package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// printFuncs are the fmt functions that write to standard output.
var printFuncs = map[string]bool{"Print": true, "Printf": true, "Println": true}

// hygiene runs the hygiene family over an internal package: library code
// must not write to the process's terminal, and panics must identify the
// package that raised them.
func (c *checker) hygiene() []Finding {
	var fs []Finding
	for _, file := range c.pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				c.checkPrint(&fs, file, n)
			case *ast.CallExpr:
				c.checkPanic(&fs, n)
				c.checkBuiltinPrint(&fs, n)
			}
			return true
		})
	}
	return fs
}

// checkPrint flags fmt.Print* calls and any reference to os.Stdout /
// os.Stderr in library code.
func (c *checker) checkPrint(fs *[]Finding, file *ast.File, sel *ast.SelectorExpr) {
	name := sel.Sel.Name
	switch obj := c.pkg.Info.Uses[sel.Sel].(type) {
	case *types.Func:
		if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" && printFuncs[name] {
			c.report(fs, sel.Pos(), "hygiene/print",
				"fmt.%s in library code: return values or accept an io.Writer; only cmd/ and examples/ print", name)
		}
		return
	case *types.Var:
		if obj.Pkg() != nil && obj.Pkg().Path() == "os" && (name == "Stdout" || name == "Stderr") {
			c.report(fs, sel.Pos(), "hygiene/print",
				"os.%s in library code: accept an io.Writer; only cmd/ and examples/ own the process streams", name)
		}
		return
	}
	// AST fallback when type information is missing.
	if printFuncs[name] && selectsPackage(c.pkg, file, sel, "fmt") {
		c.report(fs, sel.Pos(), "hygiene/print",
			"fmt.%s in library code: return values or accept an io.Writer; only cmd/ and examples/ print", name)
	}
	if (name == "Stdout" || name == "Stderr") && selectsPackage(c.pkg, file, sel, "os") {
		c.report(fs, sel.Pos(), "hygiene/print",
			"os.%s in library code: accept an io.Writer; only cmd/ and examples/ own the process streams", name)
	}
}

// checkBuiltinPrint flags the print/println builtins, which write to
// stderr and are debug leftovers by definition.
func (c *checker) checkBuiltinPrint(fs *[]Finding, call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || (id.Name != "print" && id.Name != "println") {
		return
	}
	if _, isBuiltin := c.pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	c.report(fs, call.Pos(), "hygiene/print", "builtin %s: debug output does not ship", id.Name)
}

// checkPanic flags panics whose message cannot be traced to a package: a
// panic argument must lead with a constant string prefixed by the package
// name (e.g. "alloc: ..." or "router %d: ..."), directly or as the
// format of an fmt.Sprintf/Errorf wrapper. panic(err) and other opaque
// values strip the crash of its origin.
func (c *checker) checkPanic(fs *[]Finding, call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" || len(call.Args) != 1 {
		return
	}
	if _, isBuiltin := c.pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	msg, ok := c.messagePrefix(call.Args[0])
	if !ok {
		c.report(fs, call.Pos(), "hygiene/panic",
			"bare panic: the argument must carry a constant %q-prefixed message naming the failed invariant", c.pkg.Name+": ")
		return
	}
	if !strings.HasPrefix(msg, c.pkg.Name+":") && !strings.HasPrefix(msg, c.pkg.Name+" ") {
		c.report(fs, call.Pos(), "hygiene/panic",
			"panic message %q does not identify its package; prefix it with %q", msg, c.pkg.Name+": ")
	}
}

// closeHygiene runs over cmd/ packages only: a binary that constructs
// a network.Network must Close it in the same function (rule
// hygiene/close). With Config.Workers > 1 the network parks pool
// goroutines between cycles; a binary that drops the handle leaks them
// for the process lifetime, and whether Workers exceeds 1 is usually a
// flag decision the linter cannot see — so every construction pays the
// one-line defer (a no-op for serial networks).
func (c *checker) closeHygiene() []Finding {
	var fs []Finding
	c.eachFunc(func(_ *ast.File, fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
				return true
			}
			call, ok := stripParens(as.Rhs[0]).(*ast.CallExpr)
			if !ok || !constructsNetwork(c.pkg, call) {
				return true
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			v, ok := c.pkg.Info.Defs[id].(*types.Var)
			if !ok {
				v, ok = c.pkg.Info.Uses[id].(*types.Var)
			}
			if !ok {
				return true
			}
			if returnedFrom(c.pkg, fd.Body, v) {
				// Ownership moves to the caller, whose own binding of the
				// returned *Network is matched by constructsNetwork.
				return true
			}
			if !closedWithin(c.pkg, fd.Body, v) {
				c.report(&fs, as.Pos(), "hygiene/close",
					"network %s is never Closed in this function: a Workers>1 network parks pool goroutines between cycles; add `defer %s.Close()` after the error check (a no-op when serial)",
					id.Name, id.Name)
			}
			return true
		})
	})
	return fs
}

// constructsNetwork reports whether call's (first) result is a
// *network.Network. Matching on the result type rather than the callee
// name covers helpers that build and return a network: their caller
// owns the handle.
func constructsNetwork(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(0).Type()
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Network" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "network"
}

// returnedFrom reports whether v is handed out through any return
// statement in body.
func returnedFrom(pkg *Package, body *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if id, ok := stripParens(r).(*ast.Ident); ok && pkg.Info.Uses[id] == v {
				found = true
			}
		}
		return true
	})
	return found
}

// closedWithin reports whether body contains any v.Close() call,
// deferred or direct (defers inside nested literals count: the rule
// wants an owner, not a particular statement shape).
func closedWithin(pkg *Package, body *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := stripParens(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		if id, ok := stripParens(sel.X).(*ast.Ident); ok && pkg.Info.Uses[id] == v {
			found = true
		}
		return true
	})
	return found
}

// messagePrefix extracts the leading constant string of a panic argument:
// the literal itself, the leftmost operand of a string concatenation, or
// the format argument of an fmt.Sprintf / fmt.Errorf call.
func (c *checker) messagePrefix(e ast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.BinaryExpr:
			e = x.X
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok || len(x.Args) == 0 {
				return "", false
			}
			fn, ok := c.pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" ||
				(fn.Name() != "Sprintf" && fn.Name() != "Sprint" && fn.Name() != "Errorf") {
				return "", false
			}
			e = x.Args[0]
		default:
			tv, ok := c.pkg.Info.Types[e]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return "", false
			}
			return constant.StringVal(tv.Value), true
		}
	}
}
