package alloc

import "vix/internal/arb"

// SeparableAge is the separable input-first allocator with oldest-first
// prioritisation — the SPAROFLO-style optimisation the paper's related
// work says "can be easily integrated with VIX". In both phases, the
// request (or candidate) with the largest Age wins; the rotating arbiter
// breaks ties so fairness is preserved when ages are equal.
//
// Oldest-first arbitration bounds worst-case waiting and improves the
// tail of the latency distribution, at the hardware cost of age counters
// and comparators; the ablation benchmarks quantify the trade on top of
// both the baseline and the VIX crossbar.
type SeparableAge struct {
	cfg        Config
	inputArbs  []arb.Arbiter
	outputArbs []arb.Arbiter
}

// NewSeparableAge returns an oldest-first separable allocator for cfg.
// It panics if cfg is invalid.
func NewSeparableAge(cfg Config) *SeparableAge {
	mustValidate(cfg)
	s := &SeparableAge{cfg: cfg}
	s.inputArbs = make([]arb.Arbiter, cfg.Rows())
	for i := range s.inputArbs {
		s.inputArbs[i] = arb.NewRoundRobin(cfg.GroupSize())
	}
	s.outputArbs = make([]arb.Arbiter, cfg.Ports)
	for i := range s.outputArbs {
		s.outputArbs[i] = arb.NewRoundRobin(cfg.Rows())
	}
	return s
}

// Name implements Allocator.
func (s *SeparableAge) Name() string { return "if-age" }

// Reset implements Allocator.
func (s *SeparableAge) Reset() {
	for _, a := range s.inputArbs {
		a.Reset()
	}
	for _, a := range s.outputArbs {
		a.Reset()
	}
}

// Allocate implements Allocator.
func (s *SeparableAge) Allocate(rs *RequestSet) []Grant {
	rows := rowRequests(rs)

	// Phase one: per crossbar row, the oldest request wins; the rotating
	// arbiter decides among equally old ones.
	candidate := make([]int, s.cfg.Rows())
	for row := range candidate {
		candidate[row] = s.pickOldest(rs, rows[row], s.inputArbs[row], func(idx int) int {
			return s.cfg.Slot(rs.Requests[idx].VC)
		})
	}

	// Phase two: per output port, the oldest candidate wins.
	grants := make([]Grant, 0, s.cfg.Ports)
	for out := 0; out < s.cfg.Ports; out++ {
		var contenders []int
		for row, idx := range candidate {
			if idx >= 0 && rs.Requests[idx].OutPort == out {
				contenders = append(contenders, row)
			}
		}
		if len(contenders) == 0 {
			continue
		}
		rowIdxOf := func(i int) int { return candidate[contenders[i]] }
		best := 0
		for i := 1; i < len(contenders); i++ {
			if rs.Requests[rowIdxOf(i)].Age > rs.Requests[rowIdxOf(best)].Age {
				best = i
			}
		}
		// Tie-break equally old contenders with the output's rotating
		// arbiter for long-run fairness.
		ties := make([]bool, s.cfg.Rows())
		anyTie := false
		for i := range contenders {
			if rs.Requests[rowIdxOf(i)].Age == rs.Requests[rowIdxOf(best)].Age {
				ties[contenders[i]] = true
				anyTie = true
			}
		}
		row := contenders[best]
		if anyTie {
			row = s.outputArbs[out].Arbitrate(ties)
		}
		req := rs.Requests[candidate[row]]
		grants = append(grants, Grant{Port: req.Port, VC: req.VC, OutPort: out, Row: row})
		s.outputArbs[out].Ack(row)
		s.inputArbs[row].Ack(s.cfg.Slot(req.VC))
	}
	return grants
}

// pickOldest returns the request index with the greatest age among idxs,
// using the arbiter to break ties by slot; -1 if idxs is empty.
func (s *SeparableAge) pickOldest(rs *RequestSet, idxs []int, a arb.Arbiter, slotOf func(int) int) int {
	if len(idxs) == 0 {
		return -1
	}
	best := idxs[0]
	for _, idx := range idxs[1:] {
		if rs.Requests[idx].Age > rs.Requests[best].Age {
			best = idx
		}
	}
	ties := make([]bool, a.Size())
	slotToIdx := make([]int, a.Size())
	for i := range slotToIdx {
		slotToIdx[i] = -1
	}
	count := 0
	for _, idx := range idxs {
		if rs.Requests[idx].Age == rs.Requests[best].Age {
			slot := slotOf(idx)
			if slotToIdx[slot] < 0 {
				ties[slot] = true
				slotToIdx[slot] = idx
				count++
			}
		}
	}
	if count <= 1 {
		return best
	}
	return slotToIdx[a.Arbitrate(ties)]
}
