// Package router implements the cycle-accurate virtual-channel router
// model of the paper's methodology: a three-stage pipeline (lookahead
// route computation overlapped with VC and switch allocation, then switch
// traversal, then link traversal), wormhole switching, credit-based
// virtual-channel flow control, and a pluggable switch allocator driving
// either the conventional P x P crossbar or the paper's kP x P virtual
// input crossbar.
package router

import "fmt"

// FlitType distinguishes the positions of a flit within its packet.
type FlitType uint8

// Flit positions. A single-flit packet is HeadTail.
const (
	Head FlitType = iota
	Body
	Tail
	HeadTail
)

// IsHead reports whether the flit opens a packet (Head or HeadTail).
func (ft FlitType) IsHead() bool { return ft == Head || ft == HeadTail }

// IsTail reports whether the flit closes a packet (Tail or HeadTail).
func (ft FlitType) IsTail() bool { return ft == Tail || ft == HeadTail }

func (ft FlitType) String() string {
	switch ft {
	case Head:
		return "head"
	case Body:
		return "body"
	case Tail:
		return "tail"
	case HeadTail:
		return "headtail"
	default:
		return fmt.Sprintf("flittype(%d)", uint8(ft))
	}
}

// Flit is the unit of flow control. Flits of one packet follow the same
// path and VC sequence (wormhole switching).
type Flit struct {
	PacketID uint64
	Type     FlitType
	Src, Dst int // terminal node ids
	// Tag is an opaque workload identifier (e.g. the memory transaction
	// a trace-driven packet belongs to).
	Tag uint64
	// Seq is the flit's index within its packet; PacketSize the total.
	Seq, PacketSize int

	// Route is the output port at the router currently buffering the
	// flit, computed at arrival (lookahead route computation keeps this
	// off the critical path; the model computes it on delivery).
	Route int

	// VC is the virtual channel the flit occupies at the current router;
	// rewritten to the allocated output VC on switch traversal.
	VC int

	// CreateCycle is when the packet was generated at the source
	// (including source-queue time in latency), InjectCycle when its head
	// entered the network, EjectCycle when this flit left at the
	// destination.
	CreateCycle, InjectCycle, EjectCycle int64

	// Hops counts router-to-router link traversals.
	Hops int
}

// PacketFlitType returns the FlitType of the i-th flit of a size-flit
// packet: HeadTail for single-flit packets, else Head, Body..., Tail.
func PacketFlitType(i, size int) FlitType {
	switch {
	case size == 1:
		return HeadTail
	case i == 0:
		return Head
	case i == size-1:
		return Tail
	default:
		return Body
	}
}

// FlitID addresses a flit within its network's FlitArena. All hot-path
// structures — VC buffer rings, link and ejection events, NI source
// queues — carry these dense indices instead of *Flit pointers: the whole
// flit population lives in one contiguous slab, so a tick walks linear
// memory, and an index (unlike a pointer) survives slab growth and is a
// checkpoint-friendly stable name for the flit.
type FlitID int32

// NoFlit is the sentinel for "no flit" in FlitID-valued slots.
const NoFlit FlitID = -1

// flitArenaMinBatch is the smallest slab extension; growth otherwise
// doubles the slab so a run reaches its high-water mark in O(log n)
// allocations and the steady state allocates nothing.
const flitArenaMinBatch = 256

// FlitArena owns every flit of one network in a single contiguous slab.
// The free list is a LIFO index stack: Alloc pops (growing the slab in
// batches when empty), Free pushes. Identifiers are never compared or
// ordered by the simulation — which slot a flit happens to occupy has no
// observable effect — so slab growth mid-run cannot perturb statistics
// or RNG streams.
type FlitArena struct {
	slab []Flit
	free []FlitID
	// noReuse turns Free into a no-op so every Alloc returns a
	// never-used slot (Config.DisableFlitPool): the arena equivalent of
	// allocating each flit fresh, for determinism regression tests.
	noReuse bool
}

// NewFlitArena returns an arena with at least capacity free slots.
func NewFlitArena(capacity int, noReuse bool) *FlitArena {
	a := &FlitArena{noReuse: noReuse}
	if capacity < flitArenaMinBatch {
		capacity = flitArenaMinBatch
	}
	a.grow(capacity)
	return a
}

// grow extends the slab by batch slots and stacks them as free. New ids
// are pushed in ascending order, so they are handed out descending —
// matching the LIFO discipline of the old pointer free list.
func (a *FlitArena) grow(batch int) {
	base := len(a.slab)
	a.slab = append(a.slab, make([]Flit, batch)...)
	for i := 0; i < batch; i++ {
		a.free = append(a.free, FlitID(base+i))
	}
}

// At resolves id to the flit it names. The pointer is stable for the
// arena's lifetime EXCEPT across Alloc, which may grow the slab; callers
// must not hold it across an Alloc call.
func (a *FlitArena) At(id FlitID) *Flit { return &a.slab[id] }

// Alloc returns the id of a zeroed flit, growing the slab if no free
// slot remains.
func (a *FlitArena) Alloc() FlitID {
	if len(a.free) == 0 {
		batch := len(a.slab)
		if batch < flitArenaMinBatch {
			batch = flitArenaMinBatch
		}
		a.grow(batch)
	}
	id := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	a.slab[id] = Flit{}
	return id
}

// Free returns id's slot to the free stack (a no-op under noReuse).
func (a *FlitArena) Free(id FlitID) {
	if !a.noReuse {
		a.free = append(a.free, id)
	}
}

// Cap returns the slab capacity in flits; tests use it to detect growth.
func (a *FlitArena) Cap() int { return len(a.slab) }

// Live returns the number of allocated (not free) slots.
func (a *FlitArena) Live() int { return len(a.slab) - len(a.free) }

// NewPacket builds the flit sequence for one packet of size flits.
func NewPacket(id uint64, src, dst, size int, createCycle int64) []*Flit {
	if size <= 0 {
		panic("router: packet size must be positive")
	}
	flits := make([]*Flit, size)
	for i := range flits {
		ft := PacketFlitType(i, size)
		flits[i] = &Flit{
			PacketID:    id,
			Type:        ft,
			Src:         src,
			Dst:         dst,
			Seq:         i,
			PacketSize:  size,
			CreateCycle: createCycle,
			Route:       -1,
			VC:          -1,
		}
	}
	return flits
}
