package experiments

import (
	"context"
	"fmt"
	"strconv"

	"vix/internal/alloc"
	"vix/internal/harness"
	"vix/internal/router"
	"vix/internal/topology"
	"vix/internal/traffic"
)

// The ablation studies isolate the design choices DESIGN.md calls out:
// the Section 2.3 VC-assignment policy, the VC-to-sub-group partition,
// the pipeline depth, the number of virtual inputs, and the choice of
// allocation scheme (including iSLIP and SPAROFLO from the paper's
// citations and related work).
//
// Every study builds its point set as a GridPoint slice and runs it
// through the harness, so each has a serial entry (the historical
// signature) and an Opt entry taking a context and harness.Options for
// parallel, resumable execution.

// PolicyAblationRow is the saturation throughput of one (pattern,
// policy) pair on the VIX mesh.
type PolicyAblationRow struct {
	Pattern    string
	Policy     router.PolicyKind
	Throughput float64
}

// AblatePolicies measures the Section 2.3 VC-assignment policies on a
// saturated 8x8 VIX mesh across traffic patterns, including the
// adversarial ones the paper's Section 2.3 targets.
func AblatePolicies(p Params, patterns []string) ([]PolicyAblationRow, error) {
	return AblatePoliciesOpt(context.Background(), p, patterns, harness.Serial())
}

// AblatePoliciesOpt is the harness-backed form of AblatePolicies.
func AblatePoliciesOpt(ctx context.Context, p Params, patterns []string, opt harness.Options) ([]PolicyAblationRow, error) {
	if patterns == nil {
		patterns = []string{"uniform", "transpose", "tornado", "bitcomp"}
	}
	topo := topology.NewMesh(8, 8)
	var pts []GridPoint
	var rows []PolicyAblationRow
	for _, name := range patterns {
		pat, err := traffic.New(name, 8, 8)
		if err != nil {
			return nil, err
		}
		for _, pol := range []router.PolicyKind{router.PolicyMaxFree, router.PolicyDimension, router.PolicyBalanced} {
			cfg := buildConfig(topo, Scheme{Label: "VIX", Kind: alloc.KindSeparableIF, K: 2, Policy: pol}, p, 0, true)
			cfg.Pattern = pat
			pts = append(pts, GridPoint{
				Labels: []string{"ablate", "policies", name, string(pol)},
				Config: cfg, Warmup: p.Warmup, Measure: p.Measure,
			})
			rows = append(rows, PolicyAblationRow{Pattern: name, Policy: pol})
		}
	}
	snaps, err := RunGrid(ctx, p.Seed, pts, opt)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].Throughput = snaps[i].ThroughputFlits
	}
	return rows, nil
}

// PartitionAblationRow compares VC partitions for one topology.
type PartitionAblationRow struct {
	Topology   string
	Partition  alloc.Partition
	Throughput float64
}

// AblatePartition compares the paper's contiguous VC sub-grouping with
// an interleaved assignment on saturated VIX networks.
func AblatePartition(p Params) ([]PartitionAblationRow, error) {
	return AblatePartitionOpt(context.Background(), p, harness.Serial())
}

// AblatePartitionOpt is the harness-backed form of AblatePartition.
func AblatePartitionOpt(ctx context.Context, p Params, opt harness.Options) ([]PartitionAblationRow, error) {
	var pts []GridPoint
	var rows []PartitionAblationRow
	for _, topo := range Topologies() {
		for _, part := range []alloc.Partition{alloc.Contiguous, alloc.Interleaved} {
			cfg := buildConfig(topo, Scheme{Label: "VIX", Kind: alloc.KindSeparableIF, K: 2, Policy: router.PolicyBalanced}, p, 0, true)
			cfg.Router.Partition = part
			pts = append(pts, GridPoint{
				Labels: []string{"ablate", "partition", topo.Name, strconv.Itoa(int(part))},
				Config: cfg, Warmup: p.Warmup, Measure: p.Measure,
			})
			rows = append(rows, PartitionAblationRow{Topology: topo.Name, Partition: part})
		}
	}
	snaps, err := RunGrid(ctx, p.Seed, pts, opt)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].Throughput = snaps[i].ThroughputFlits
	}
	return rows, nil
}

// PipelineAblationRow compares router pipeline depths.
type PipelineAblationRow struct {
	Scheme     string
	HopDelay   int
	AvgLatency float64 // at the probe rate
	Throughput float64 // at saturation
}

// AblatePipeline compares the paper's optimised 3-stage pipeline (Figure
// 6b) against the conventional 5-stage pipeline (Figure 6a) for baseline
// and VIX: latency at a moderate load and saturation throughput.
func AblatePipeline(p Params, probeRate float64) ([]PipelineAblationRow, error) {
	return AblatePipelineOpt(context.Background(), p, probeRate, harness.Serial())
}

// AblatePipelineOpt is the harness-backed form of AblatePipeline. Each
// row needs two simulations (probe-rate latency and saturation
// throughput), so the grid interleaves probe and saturation points.
func AblatePipelineOpt(ctx context.Context, p Params, probeRate float64, opt harness.Options) ([]PipelineAblationRow, error) {
	topo := topology.NewMesh(8, 8)
	schemes := []Scheme{NetworkSchemes()[0], NetworkSchemes()[3]}
	var pts []GridPoint
	var rows []PipelineAblationRow
	for _, s := range schemes {
		for _, hop := range []int{3, 5} {
			probe := buildConfig(topo, s, p, probeRate, false)
			probe.HopDelay = hop
			sat := buildConfig(topo, s, p, 0, true)
			sat.HopDelay = hop
			pts = append(pts,
				GridPoint{
					Labels: []string{"ablate", "pipeline", s.Label, strconv.Itoa(hop), rateLabel(probeRate, false)},
					Config: probe, Warmup: p.Warmup, Measure: p.Measure,
				},
				GridPoint{
					Labels: []string{"ablate", "pipeline", s.Label, strconv.Itoa(hop), rateLabel(0, true)},
					Config: sat, Warmup: p.Warmup, Measure: p.Measure,
				})
			rows = append(rows, PipelineAblationRow{Scheme: s.Label, HopDelay: hop})
		}
	}
	snaps, err := RunGrid(ctx, p.Seed, pts, opt)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].AvgLatency = snaps[2*i].AvgLatency
		rows[i].Throughput = snaps[2*i+1].ThroughputFlits
	}
	return rows, nil
}

// SpeculationAblationRow compares speculative and non-speculative switch
// allocation.
type SpeculationAblationRow struct {
	Scheme         string
	NonSpeculative bool
	AvgLatency     float64 // at the probe rate
	Throughput     float64 // at saturation
}

// AblateSpeculation compares the Figure 6b speculative pipeline (heads
// bid for the switch in the same cycle they win a VC) against a
// non-speculative variant that serialises VA before SA, for baseline and
// VIX on the mesh.
func AblateSpeculation(p Params, probeRate float64) ([]SpeculationAblationRow, error) {
	return AblateSpeculationOpt(context.Background(), p, probeRate, harness.Serial())
}

// AblateSpeculationOpt is the harness-backed form of AblateSpeculation.
func AblateSpeculationOpt(ctx context.Context, p Params, probeRate float64, opt harness.Options) ([]SpeculationAblationRow, error) {
	topo := topology.NewMesh(8, 8)
	schemes := []Scheme{NetworkSchemes()[0], NetworkSchemes()[3]}
	var pts []GridPoint
	var rows []SpeculationAblationRow
	for _, s := range schemes {
		for _, nonSpec := range []bool{false, true} {
			probe := buildConfig(topo, s, p, probeRate, false)
			probe.Router.NonSpeculative = nonSpec
			sat := buildConfig(topo, s, p, 0, true)
			sat.Router.NonSpeculative = nonSpec
			mode := "spec"
			if nonSpec {
				mode = "nonspec"
			}
			pts = append(pts,
				GridPoint{
					Labels: []string{"ablate", "speculation", s.Label, mode, rateLabel(probeRate, false)},
					Config: probe, Warmup: p.Warmup, Measure: p.Measure,
				},
				GridPoint{
					Labels: []string{"ablate", "speculation", s.Label, mode, rateLabel(0, true)},
					Config: sat, Warmup: p.Warmup, Measure: p.Measure,
				})
			rows = append(rows, SpeculationAblationRow{Scheme: s.Label, NonSpeculative: nonSpec})
		}
	}
	snaps, err := RunGrid(ctx, p.Seed, pts, opt)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].AvgLatency = snaps[2*i].AvgLatency
		rows[i].Throughput = snaps[2*i+1].ThroughputFlits
	}
	return rows, nil
}

// KSweepRow is the saturation throughput at one virtual-input count.
type KSweepRow struct {
	K          int
	Throughput float64
}

// AblateVirtualInputs sweeps the virtual-input factor k from 1 to VCs on
// the mesh — a finer-grained version of Figure 12 that locates where the
// returns diminish.
func AblateVirtualInputs(p Params) ([]KSweepRow, error) {
	return AblateVirtualInputsOpt(context.Background(), p, harness.Serial())
}

// AblateVirtualInputsOpt is the harness-backed form of
// AblateVirtualInputs.
func AblateVirtualInputsOpt(ctx context.Context, p Params, opt harness.Options) ([]KSweepRow, error) {
	topo := topology.NewMesh(8, 8)
	var pts []GridPoint
	var rows []KSweepRow
	for k := 1; k <= p.VCs; k++ {
		if p.VCs%k != 0 && k != p.VCs {
			continue // only even partitions keep sub-groups comparable
		}
		s := Scheme{Label: fmt.Sprintf("k=%d", k), Kind: alloc.KindSeparableIF, K: k, Policy: router12Policy(k)}
		pts = append(pts, GridPoint{
			Labels: []string{"ablate", "ksweep", strconv.Itoa(k)},
			Config: buildConfig(topo, s, p, 0, true),
			Warmup: p.Warmup, Measure: p.Measure,
		})
		rows = append(rows, KSweepRow{K: k})
	}
	snaps, err := RunGrid(ctx, p.Seed, pts, opt)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].Throughput = snaps[i].ThroughputFlits
	}
	return rows, nil
}

// AllocAblationRow is the saturation throughput of one allocation scheme
// from the extended set.
type AllocAblationRow struct {
	Scheme     string
	Throughput float64
}

// AblateAllocators races the full allocator set — including iSLIP (the
// iterative allocator the paper cites) and SPAROFLO (related work) — on
// a saturated mesh.
func AblateAllocators(p Params) ([]AllocAblationRow, error) {
	return AblateAllocatorsOpt(context.Background(), p, harness.Serial())
}

// AblateAllocatorsOpt is the harness-backed form of AblateAllocators.
func AblateAllocatorsOpt(ctx context.Context, p Params, opt harness.Options) ([]AllocAblationRow, error) {
	topo := topology.NewMesh(8, 8)
	schemes := []Scheme{
		{Label: "IF", Kind: alloc.KindSeparableIF, K: 1, Policy: router.PolicyMaxFree},
		{Label: "iSLIP-2", Kind: alloc.KindISLIP, K: 1, Policy: router.PolicyMaxFree},
		{Label: "SPAROFLO", Kind: alloc.KindSparoflo, K: 1, Policy: router.PolicyMaxFree},
		{Label: "WF", Kind: alloc.KindWavefront, K: 1, Policy: router.PolicyMaxFree},
		{Label: "AP", Kind: alloc.KindAugmentingPath, K: 1, Policy: router.PolicyMaxFree},
		{Label: "VIX", Kind: alloc.KindSeparableIF, K: 2, Policy: router.PolicyBalanced},
		{Label: "VIX-WF", Kind: alloc.KindWavefront, K: 2, Policy: router.PolicyBalanced},
		{Label: "VIX-age", Kind: alloc.KindSeparableAge, K: 2, Policy: router.PolicyBalanced},
	}
	var pts []GridPoint
	var rows []AllocAblationRow
	for _, s := range schemes {
		pts = append(pts, GridPoint{
			Labels: []string{"ablate", "allocators", s.Label},
			Config: buildConfig(topo, s, p, 0, true),
			Warmup: p.Warmup, Measure: p.Measure,
		})
		rows = append(rows, AllocAblationRow{Scheme: s.Label})
	}
	snaps, err := RunGrid(ctx, p.Seed, pts, opt)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].Throughput = snaps[i].ThroughputFlits
	}
	return rows, nil
}
