package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// entry is one checkpointed job: a single JSON line of the manifest.
type entry struct {
	ID        string          `json:"id"`
	Name      string          `json:"name"`
	Value     json.RawMessage `json:"value"`
	Telemetry Telemetry       `json:"telemetry"`
}

// jobID content-hashes a job's name and spec into its manifest key. The
// spec's canonical JSON encoding is hashed (encoding/json serialises
// struct fields in declaration order and map keys sorted, so equal specs
// always hash equally).
func jobID(job Job) (string, error) {
	spec, err := json.Marshal(job.Spec)
	if err != nil {
		return "", fmt.Errorf("harness: job %s: spec not serialisable: %w", job.Name, err)
	}
	h := sha256.New()
	h.Write([]byte(job.Name))
	h.Write([]byte{0})
	h.Write(spec)
	return hex.EncodeToString(h.Sum(nil)[:12]), nil
}

// manifest is the JSONL checkpoint: completed entries loaded at open,
// new entries appended (one fsync-free write per line) as jobs finish.
type manifest struct {
	mu      sync.Mutex
	f       *os.File
	entries map[string]entry
}

// openManifest loads an existing checkpoint (tolerating a torn final
// line from a killed run) and opens it for appending. A missing file is
// an empty manifest, so first runs and resumed runs share one code path.
func openManifest(path string) (*manifest, error) {
	m := &manifest{entries: make(map[string]entry)}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("harness: reading manifest: %w", err)
	}
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		var e entry
		// A line that does not parse, or parses without an ID, is a
		// torn tail write from an interrupted run: ignore it and the
		// job will simply be re-run.
		if err := json.Unmarshal(line, &e); err != nil || e.ID == "" {
			continue
		}
		m.entries[e.ID] = e
	}
	m.f, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: opening manifest: %w", err)
	}
	return m, nil
}

// lookup returns the checkpointed entry for a job ID, if any.
func (m *manifest) lookup(id string) (entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[id]
	return e, ok
}

// append checkpoints one completed job. Each entry is a single Write of
// one full line, so a kill can tear at most the final line — which
// openManifest discards on resume.
func (m *manifest) append(e entry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("harness: encoding manifest entry %s: %w", e.Name, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("harness: writing manifest entry %s: %w", e.Name, err)
	}
	m.entries[e.ID] = e
	return nil
}

// close releases the manifest file handle.
func (m *manifest) close() error {
	if m.f == nil {
		return nil
	}
	return m.f.Close()
}
