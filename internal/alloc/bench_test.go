package alloc_test

import (
	"testing"

	"vix/internal/alloc"
	"vix/internal/sim"
)

// benchAllocate drives one allocator kind with a pre-generated rotation of
// saturated request sets. Every Allocator keeps its working buffers as
// construction-time scratch, so a warmed-up allocator must report
// 0 allocs/op here; the allocation counter is the regression gate.
func benchAllocate(b *testing.B, kind alloc.Kind) {
	cfg := alloc.Config{Ports: 5, VCs: 6, VirtualInputs: 2}
	switch kind {
	case alloc.KindIdeal:
		cfg.VirtualInputs = cfg.VCs
	case alloc.KindSparoflo:
		cfg.VirtualInputs = 1
	}
	a, err := alloc.New(kind, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(1)
	sets := make([]alloc.RequestSet, 64)
	for i := range sets {
		sets[i] = randomRequestSet(cfg, rng)
	}
	for i := range sets {
		a.Allocate(&sets[i]) // warm the scratch to its high-water mark
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Allocate(&sets[i%len(sets)])
	}
}

func BenchmarkAllocateIF(b *testing.B)        { benchAllocate(b, alloc.KindSeparableIF) }
func BenchmarkAllocateWavefront(b *testing.B) { benchAllocate(b, alloc.KindWavefront) }
func BenchmarkAllocateAP(b *testing.B)        { benchAllocate(b, alloc.KindAugmentingPath) }
func BenchmarkAllocatePC(b *testing.B)        { benchAllocate(b, alloc.KindPacketChaining) }
func BenchmarkAllocateIdeal(b *testing.B)     { benchAllocate(b, alloc.KindIdeal) }
func BenchmarkAllocateISLIP(b *testing.B)     { benchAllocate(b, alloc.KindISLIP) }
func BenchmarkAllocateSparoflo(b *testing.B)  { benchAllocate(b, alloc.KindSparoflo) }
func BenchmarkAllocateIFAge(b *testing.B)     { benchAllocate(b, alloc.KindSeparableAge) }

// TestAllocateZeroAllocsSteadyState asserts the scratch contract at the
// allocator layer: after one warming call, Allocate performs no heap
// allocations for any registered kind.
func TestAllocateZeroAllocsSteadyState(t *testing.T) {
	for _, kind := range alloc.Kinds() {
		cfg := alloc.Config{Ports: 5, VCs: 6, VirtualInputs: 2}
		switch kind {
		case alloc.KindIdeal:
			cfg.VirtualInputs = cfg.VCs
		case alloc.KindSparoflo:
			cfg.VirtualInputs = 1
		}
		a, err := alloc.New(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(7)
		sets := make([]alloc.RequestSet, 16)
		for i := range sets {
			sets[i] = randomRequestSet(cfg, rng)
		}
		for i := range sets {
			a.Allocate(&sets[i])
		}
		i := 0
		avg := testing.AllocsPerRun(100, func() {
			a.Allocate(&sets[i%len(sets)])
			i++
		})
		if avg != 0 {
			t.Errorf("%q: Allocate allocates %v times per call in steady state; want 0", kind, avg)
		}
	}
}
