package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// printFuncs are the fmt functions that write to standard output.
var printFuncs = map[string]bool{"Print": true, "Printf": true, "Println": true}

// hygiene runs the hygiene family over an internal package: library code
// must not write to the process's terminal, and panics must identify the
// package that raised them.
func (c *checker) hygiene() []Finding {
	var fs []Finding
	for _, file := range c.pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				c.checkPrint(&fs, file, n)
			case *ast.CallExpr:
				c.checkPanic(&fs, n)
				c.checkBuiltinPrint(&fs, n)
			}
			return true
		})
	}
	return fs
}

// checkPrint flags fmt.Print* calls and any reference to os.Stdout /
// os.Stderr in library code.
func (c *checker) checkPrint(fs *[]Finding, file *ast.File, sel *ast.SelectorExpr) {
	name := sel.Sel.Name
	switch obj := c.pkg.Info.Uses[sel.Sel].(type) {
	case *types.Func:
		if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" && printFuncs[name] {
			c.report(fs, sel.Pos(), "hygiene/print",
				"fmt.%s in library code: return values or accept an io.Writer; only cmd/ and examples/ print", name)
		}
		return
	case *types.Var:
		if obj.Pkg() != nil && obj.Pkg().Path() == "os" && (name == "Stdout" || name == "Stderr") {
			c.report(fs, sel.Pos(), "hygiene/print",
				"os.%s in library code: accept an io.Writer; only cmd/ and examples/ own the process streams", name)
		}
		return
	}
	// AST fallback when type information is missing.
	if printFuncs[name] && selectsPackage(c.pkg, file, sel, "fmt") {
		c.report(fs, sel.Pos(), "hygiene/print",
			"fmt.%s in library code: return values or accept an io.Writer; only cmd/ and examples/ print", name)
	}
	if (name == "Stdout" || name == "Stderr") && selectsPackage(c.pkg, file, sel, "os") {
		c.report(fs, sel.Pos(), "hygiene/print",
			"os.%s in library code: accept an io.Writer; only cmd/ and examples/ own the process streams", name)
	}
}

// checkBuiltinPrint flags the print/println builtins, which write to
// stderr and are debug leftovers by definition.
func (c *checker) checkBuiltinPrint(fs *[]Finding, call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || (id.Name != "print" && id.Name != "println") {
		return
	}
	if _, isBuiltin := c.pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	c.report(fs, call.Pos(), "hygiene/print", "builtin %s: debug output does not ship", id.Name)
}

// checkPanic flags panics whose message cannot be traced to a package: a
// panic argument must lead with a constant string prefixed by the package
// name (e.g. "alloc: ..." or "router %d: ..."), directly or as the
// format of an fmt.Sprintf/Errorf wrapper. panic(err) and other opaque
// values strip the crash of its origin.
func (c *checker) checkPanic(fs *[]Finding, call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" || len(call.Args) != 1 {
		return
	}
	if _, isBuiltin := c.pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	msg, ok := c.messagePrefix(call.Args[0])
	if !ok {
		c.report(fs, call.Pos(), "hygiene/panic",
			"bare panic: the argument must carry a constant %q-prefixed message naming the failed invariant", c.pkg.Name+": ")
		return
	}
	if !strings.HasPrefix(msg, c.pkg.Name+":") && !strings.HasPrefix(msg, c.pkg.Name+" ") {
		c.report(fs, call.Pos(), "hygiene/panic",
			"panic message %q does not identify its package; prefix it with %q", msg, c.pkg.Name+": ")
	}
}

// messagePrefix extracts the leading constant string of a panic argument:
// the literal itself, the leftmost operand of a string concatenation, or
// the format argument of an fmt.Sprintf / fmt.Errorf call.
func (c *checker) messagePrefix(e ast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.BinaryExpr:
			e = x.X
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok || len(x.Args) == 0 {
				return "", false
			}
			fn, ok := c.pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" ||
				(fn.Name() != "Sprintf" && fn.Name() != "Sprint" && fn.Name() != "Errorf") {
				return "", false
			}
			e = x.Args[0]
		default:
			tv, ok := c.pkg.Info.Types[e]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return "", false
			}
			return constant.StringVal(tv.Value), true
		}
	}
}
