package trace

import (
	"math"
	"testing"

	"vix/internal/sim"
)

func TestCatalogHas35Benchmarks(t *testing.T) {
	cat := Catalog()
	if len(cat) != 35 {
		t.Fatalf("catalog has %d benchmarks, paper studies 35", len(cat))
	}
	seen := map[string]bool{}
	for _, a := range cat {
		if seen[a.Name] {
			t.Fatalf("duplicate benchmark %q", a.Name)
		}
		seen[a.Name] = true
		if a.L1MPKI < 0 || a.L2MPKI < 0 {
			t.Fatalf("%s has negative MPKI", a.Name)
		}
		if a.L2MPKI > a.L1MPKI {
			t.Fatalf("%s: L2 misses exceed L1 misses", a.Name)
		}
	}
	// The four commercial workloads must be present.
	for _, name := range []string{"sap", "tpcw", "sjbb", "sjas"} {
		if !seen[name] {
			t.Errorf("commercial workload %q missing", name)
		}
	}
}

// Every Table 4 mix must have 6 unique apps, 64 total instances, and an
// average MPKI matching the paper's published value within 1%.
func TestMixesMatchTable4(t *testing.T) {
	mixes := Mixes()
	if len(mixes) != 8 {
		t.Fatalf("%d mixes, want 8", len(mixes))
	}
	for _, m := range mixes {
		if len(m.Entries) != 6 {
			t.Errorf("%s has %d apps, want 6", m.Name, len(m.Entries))
		}
		if m.Cores() != 64 {
			t.Errorf("%s has %d instances, want 64", m.Name, m.Cores())
		}
		seen := map[string]bool{}
		for _, e := range m.Entries {
			if seen[e.App] {
				t.Errorf("%s lists %q twice", m.Name, e.App)
			}
			seen[e.App] = true
			if e.Instances != 10 && e.Instances != 11 {
				t.Errorf("%s: %q has %d instances, paper uses 10 or 11", m.Name, e.App, e.Instances)
			}
		}
		avg, err := m.AvgMPKI()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(avg-m.PaperMPKI)/m.PaperMPKI > 0.01 {
			t.Errorf("%s avg MPKI %.2f, paper %.1f", m.Name, avg, m.PaperMPKI)
		}
	}
	// Paper speedups are monotone-ish in MPKI: first below last.
	if mixes[0].PaperSpeedup >= mixes[7].PaperSpeedup {
		t.Error("published speedups not increasing from Mix1 to Mix8")
	}
}

func TestAssign(t *testing.T) {
	m := Mixes()[0]
	apps, err := m.Assign(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 64 {
		t.Fatalf("assigned %d cores", len(apps))
	}
	counts := map[string]int{}
	for _, a := range apps {
		counts[a.Name]++
	}
	for _, e := range m.Entries {
		if counts[e.App] != e.Instances {
			t.Errorf("%s: app %q assigned %d times, want %d", m.Name, e.App, counts[e.App], e.Instances)
		}
	}
	// Round-robin interleaving: the first six cores run six distinct apps.
	first := map[string]bool{}
	for _, a := range apps[:6] {
		first[a.Name] = true
	}
	if len(first) != 6 {
		t.Errorf("first six cores run %d distinct apps, want 6", len(first))
	}
	if _, err := m.Assign(63); err == nil {
		t.Error("Assign with wrong core count accepted")
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if a.MPKI() < 50 {
		t.Errorf("mcf MPKI %.1f suspiciously low", a.MPKI())
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// The generator's long-run miss rate matches the app's L1 MPKI and the
// L2 miss fraction matches L2MPKI/L1MPKI.
func TestGeneratorRates(t *testing.T) {
	a, _ := ByName("milc")
	g := NewGenerator(a, sim.NewRNG(1))
	var instr float64
	misses, l2 := 0, 0
	for instr < 5e6 {
		gap, isL2 := g.NextMiss()
		instr += gap
		misses++
		if isL2 {
			l2++
		}
	}
	gotMPKI := float64(misses) / instr * 1000
	if math.Abs(gotMPKI-a.L1MPKI)/a.L1MPKI > 0.03 {
		t.Errorf("generated L1 MPKI %.2f, want %.2f", gotMPKI, a.L1MPKI)
	}
	gotFrac := float64(l2) / float64(misses)
	wantFrac := a.L2MPKI / a.L1MPKI
	if math.Abs(gotFrac-wantFrac) > 0.02 {
		t.Errorf("L2 miss fraction %.3f, want %.3f", gotFrac, wantFrac)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, _ := ByName("mcf")
	g1 := NewGenerator(a, sim.NewRNG(7))
	g2 := NewGenerator(a, sim.NewRNG(7))
	for i := 0; i < 1000; i++ {
		gap1, l21 := g1.NextMiss()
		gap2, l22 := g2.NextMiss()
		if gap1 != gap2 || l21 != l22 {
			t.Fatalf("generators diverged at miss %d", i)
		}
	}
}

func TestGeneratorNeverReturnsSubUnitGap(t *testing.T) {
	a, _ := ByName("mcf") // highest MPKI stresses the floor
	g := NewGenerator(a, sim.NewRNG(3))
	for i := 0; i < 10000; i++ {
		gap, _ := g.NextMiss()
		if gap < 1 {
			t.Fatalf("gap %v below one instruction", gap)
		}
	}
}

func TestZeroMPKIApp(t *testing.T) {
	g := NewGenerator(App{Name: "idle"}, sim.NewRNG(1))
	gap, l2 := g.NextMiss()
	if gap < 1e7 || l2 {
		t.Fatalf("zero-MPKI app produced miss activity: gap=%v l2=%v", gap, l2)
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != 35 {
		t.Fatalf("Names() has %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
}
