// Package grid seeds a cross-shard write reachable only through
// interface dispatch: the job calls Cell.Put, and the Tally
// implementation writes a package global.
package grid

import "fix/internal/sim"

// Sink is the shared state no pool job may write.
var Sink int

// Cell is the dispatch interface between the job and the write.
type Cell interface{ Put(v int) }

// Tally implements Cell with the racing write.
type Tally struct{}

// Put writes the package global.
func (Tally) Put(v int) { Sink = v }

// cells holds the dispatch targets.
var cells = []Cell{Tally{}}

// step is the pool job; nothing in its own body writes shared state.
func step(i int) {
	cells[i%len(cells)].Put(i)
}

// Run fans the tick out.
func Run(p *sim.Pool) {
	p.Do(len(cells), step)
}
