module vix

go 1.24
