package alloc

import (
	"math/bits"

	"vix/internal/arb"
)

// Wavefront implements the wavefront allocator of Tamir and Chi. It sweeps
// priority diagonals across the row x output request matrix, granting
// every conflict-free (row, output) pair it encounters; cells on the same
// diagonal never share a row or a column, so the sweep is conflict-free by
// construction. The starting diagonal rotates every invocation so that all
// request positions receive top priority equally often.
//
// Wavefront achieves a maximal (not maximum) matching: no grant can be
// added without removing another, which is why its allocation efficiency
// exceeds a single-iteration separable allocator. The paper's Table 3
// prices this at 39% higher delay than the separable allocator; the
// timing model in internal/timing reproduces that trade-off.
//
// The matrix generalises to rectangular kP x P crossbars so a wavefront
// allocator can also drive a VIX datapath, although the paper evaluates
// wavefront only on the baseline crossbar.
type Wavefront struct {
	cfg  Config
	prio int // rotating priority diagonal

	vcPick []arb.Arbiter // per row: picks among sub-group VCs requesting the granted output

	// scratch
	cell      [][]int // cell[row][out] = request index representative, -1 if none
	cellDirty bitset  // flattened (row, out) cells holding a request index
	rowBusy   []bool
	outBusy   []bool
	cellReqs  cellScratch
	slots     vcPickScratch
	grants    []Grant
}

// NewWavefront returns a wavefront allocator for cfg. It panics if cfg is
// invalid.
func NewWavefront(cfg Config) *Wavefront {
	mustValidate(cfg)
	w := &Wavefront{
		cfg:      cfg,
		rowBusy:  make([]bool, cfg.Rows()),
		outBusy:  make([]bool, cfg.Ports),
		cellReqs: newCellScratch(cfg),
		slots:    newVCPickScratch(cfg),
		grants:   make([]Grant, 0, cfg.Ports),
	}
	w.cell = make([][]int, cfg.Rows())
	for i := range w.cell {
		w.cell[i] = make([]int, cfg.Ports)
		for j := range w.cell[i] {
			w.cell[i][j] = -1
		}
	}
	w.cellDirty = newBitset(cfg.Rows() * cfg.Ports)
	w.vcPick = make([]arb.Arbiter, cfg.Rows())
	for i := range w.vcPick {
		w.vcPick[i] = arb.NewRoundRobin(cfg.GroupSize())
	}
	return w
}

// Name implements Allocator.
func (w *Wavefront) Name() string { return "wavefront" }

// Reset implements Allocator.
func (w *Wavefront) Reset() {
	w.prio = 0
	for _, a := range w.vcPick {
		a.Reset()
	}
}

// Allocate implements Allocator. The returned slice is scratch, valid
// until the next Allocate or Reset call.
//
//vixlint:hot
func (w *Wavefront) Allocate(rs *RequestSet) []Grant {
	rows, outs := w.cfg.Rows(), w.cfg.Ports
	// Reset only the cells the previous cycle populated; every other cell
	// already holds -1 (set at construction, restored here each cycle),
	// so the clear costs O(previous requests), not O(rows x outs).
	for wi, word := range w.cellDirty {
		if word == 0 {
			continue
		}
		for ; word != 0; word &= word - 1 {
			c := wi<<6 + bits.TrailingZeros64(word)
			w.cell[c/outs][c%outs] = -1
		}
		w.cellDirty[wi] = 0
	}
	for i := 0; i < rows; i++ {
		w.rowBusy[i] = false
	}
	for j := 0; j < outs; j++ {
		w.outBusy[j] = false
	}

	// Populate the request matrix. When several VCs of one row request the
	// same output, the row's VC arbiter chooses among them below; the cell
	// scratch records all of them per (row, out) pair.
	w.cellReqs.clear()
	for idx, r := range rs.Requests {
		row := w.cfg.Row(r.Port, r.VC)
		w.cellReqs.add(row, r.OutPort, idx)
		w.cell[row][r.OutPort] = idx
		w.cellDirty.set(row*outs + r.OutPort)
	}

	n := rows
	if outs > n {
		n = outs
	}
	w.grants = w.grants[:0]
	for d := 0; d < n; d++ {
		diag := (w.prio + d) % n
		for i := 0; i < rows; i++ {
			j := diag - i
			for j < 0 {
				j += n
			}
			j %= n
			if j >= outs || w.cell[i][j] < 0 || w.rowBusy[i] || w.outBusy[j] {
				continue
			}
			idx := w.slots.pick(w.cfg, rs, w.cellReqs.at(i, j), w.vcPick[i])
			w.grants = append(w.grants, Grant{Req: idx, OutPort: j, Row: i})
			w.rowBusy[i] = true
			w.outBusy[j] = true
		}
	}
	w.prio = (w.prio + 1) % n
	return w.grants
}
