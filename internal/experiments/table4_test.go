package experiments

import (
	"testing"

	"vix/internal/manycore"
	"vix/internal/trace"
)

// Table 4's qualitative shape on shortened windows: VIX never slows a
// mix down meaningfully, speeds up the most memory-intensive mix the
// most, and the measured average MPKI column matches the paper.
func TestTable4Shape(t *testing.T) {
	p := DefaultParams()
	p.Warmup = 800
	p.Measure = 3000
	rows, err := Table4(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("Table4 has %d rows, want 8", len(rows))
	}
	var maxSpeedup float64
	for _, r := range rows {
		if r.Speedup < 0.985 {
			t.Errorf("%s: VIX slowed the system down: %.3f", r.Mix, r.Speedup)
		}
		if r.Speedup > maxSpeedup {
			maxSpeedup = r.Speedup
		}
		if r.IPCBase <= 0 || r.IPCVIX <= 0 {
			t.Errorf("%s: non-positive IPC (%.1f, %.1f)", r.Mix, r.IPCBase, r.IPCVIX)
		}
		// Measured MPKI column is the catalog value, which is calibrated
		// to the paper within ~1%.
		if diff := r.AvgMPKI - r.PaperMPKI; diff > 1 || diff < -1 {
			t.Errorf("%s: avg MPKI %.1f vs paper %.1f", r.Mix, r.AvgMPKI, r.PaperMPKI)
		}
	}
	if maxSpeedup < 1.02 {
		t.Errorf("no mix gained at least 2%%: max speedup %.3f", maxSpeedup)
	}
	// The most memory-intensive mixes benefit more than the least.
	loGain := rows[0].Speedup // Mix1, 15 MPKI
	hiGain := rows[7].Speedup // Mix8, 67 MPKI
	if hiGain <= loGain {
		t.Errorf("Mix8 speedup %.3f not above Mix1 %.3f", hiGain, loGain)
	}
}

// RunMix is usable directly for a single mix and scheme.
func TestRunMixDirect(t *testing.T) {
	p := DefaultParams()
	p.Warmup = 300
	p.Measure = 1000
	ipcs, err := RunMix(trace.Mixes()[0], NetworkSchemes()[0], p, manycore.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ipcs) != 64 {
		t.Fatalf("RunMix returned %d cores", len(ipcs))
	}
	for i, v := range ipcs {
		if v <= 0 || v > 2.0001 {
			t.Fatalf("core %d IPC %v out of (0, 2]", i, v)
		}
	}
}
