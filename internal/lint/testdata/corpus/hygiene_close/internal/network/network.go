// Package network mirrors the real constructor shape for the corpus:
// a Network handle whose parallel form parks goroutines until Close.
package network

// Network is the handle cmd/ binaries must Close.
type Network struct{ w int }

// New constructs a network.
func New(w int) (*Network, error) { return &Network{w: w}, nil }

// Step ticks once.
func (n *Network) Step() {}

// Close releases pool goroutines.
func (n *Network) Close() {}
