// Package use seeds escape/retain violations: grants used after a later
// Allocate or Reset on the same allocator, plus the clean re-binding and
// two-allocator patterns.
package use

import "fix/alloc"

// Stale uses g after a second Allocate on the same allocator.
func Stale(a *alloc.A) int {
	g := a.Allocate()
	h := a.Allocate()
	return len(g) + len(h)
}

// AfterReset uses g after Reset invalidates it.
func AfterReset(a *alloc.A) int {
	g := a.Allocate()
	a.Reset()
	return len(g)
}

// Rebind re-binds g before the final use: the second binding governs,
// so nothing is reported.
func Rebind(a *alloc.A) int {
	first := len(a.Allocate())
	g := a.Allocate()
	total := first + len(g)
	g = a.Allocate()
	return total + len(g)
}

// Two allocators do not invalidate each other's grants.
func Two(a, b *alloc.A) int {
	g := a.Allocate()
	h := b.Allocate()
	return len(g) + len(h)
}
