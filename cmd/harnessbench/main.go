// Command harnessbench measures the experiment harness's wall-clock
// throughput: it runs the same simulation grid serially and with a full
// worker pool, then emits a JSON record (BENCH_harness.json) with wall
// times, aggregate cycles/sec, and the speedup — the seed of the repo's
// performance trajectory. The merged results of the two runs are also
// compared, re-asserting the byte-identical-across-workers guarantee on
// every benchmark run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"vix/internal/experiments"
	"vix/internal/harness"
)

// report is the BENCH_harness.json schema.
type report struct {
	Grid           string  `json:"grid"`
	Jobs           int     `json:"jobs"`
	CyclesPerJob   int64   `json:"cycles_per_job"`
	CPUs           int     `json:"cpus"`
	Workers        int     `json:"workers"`
	SerialNanos    int64   `json:"serial_wall_ns"`
	ParallelNanos  int64   `json:"parallel_wall_ns"`
	Speedup        float64 `json:"speedup"`
	SerialCycSec   float64 `json:"serial_cycles_per_sec"`
	ParallelCycSec float64 `json:"parallel_cycles_per_sec"`
	Identical      bool    `json:"merged_output_identical"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("harnessbench: ")
	var (
		out     = flag.String("o", "BENCH_harness.json", "output file (\"-\" for stdout)")
		warmup  = flag.Int("warmup", 1000, "warmup cycles per point")
		measure = flag.Int("measure", 3000, "measurement cycles per point")
		workers = flag.Int("parallel", 0, "parallel worker count (default GOMAXPROCS)")
	)
	flag.Parse()

	p := experiments.DefaultParams()
	p.Warmup, p.Measure = *warmup, *measure
	rates := []float64{0.02, 0.04, 0.06, 0.08}
	grid := experiments.Figure8Grid(p, rates)

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	serialOut, serialNs, err := timedRun(p, grid, 1)
	if err != nil {
		log.Fatal(err)
	}
	parallelOut, parallelNs, err := timedRun(p, grid, *workers)
	if err != nil {
		log.Fatal(err)
	}

	totalCycles := int64(len(grid)) * int64(p.Warmup+p.Measure)
	r := report{
		Grid:           fmt.Sprintf("fig8: %d schemes x (%d rates + saturation), 8x8 mesh", len(experiments.NetworkSchemes()), len(rates)),
		Jobs:           len(grid),
		CyclesPerJob:   int64(p.Warmup + p.Measure),
		CPUs:           runtime.NumCPU(),
		Workers:        *workers,
		SerialNanos:    serialNs,
		ParallelNanos:  parallelNs,
		Speedup:        float64(serialNs) / float64(parallelNs),
		SerialCycSec:   float64(totalCycles) / (float64(serialNs) / 1e9),
		ParallelCycSec: float64(totalCycles) / (float64(parallelNs) / 1e9),
		Identical:      bytes.Equal(serialOut, parallelOut),
	}
	if !r.Identical {
		log.Fatal("merged output differs between serial and parallel runs — determinism regression")
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("%d jobs: serial %v, parallel(%d) %v, speedup %.2fx on %d CPU(s)",
		r.Jobs, time.Duration(serialNs).Round(time.Millisecond),
		r.Workers, time.Duration(parallelNs).Round(time.Millisecond), r.Speedup, r.CPUs)
}

// timedRun executes the grid with the given worker count and returns the
// merged results as canonical bytes plus the wall time.
func timedRun(p experiments.Params, grid []experiments.GridPoint, workers int) ([]byte, int64, error) {
	start := time.Now()
	snaps, err := experiments.RunGrid(context.Background(), p.Seed, grid, harness.Options{Parallel: workers})
	if err != nil {
		return nil, 0, err
	}
	elapsed := time.Since(start)
	data, err := json.Marshal(snaps)
	if err != nil {
		return nil, 0, err
	}
	return data, elapsed.Nanoseconds(), nil
}
