// Command vixsim runs one network-on-chip simulation with a fully
// configurable topology, switch allocator, crossbar geometry, traffic
// pattern, and load, and prints the measured latency, throughput, and
// fairness.
//
// Examples:
//
//	vixsim -topo mesh -alloc if -k 2 -rate 0.08
//	vixsim -topo fbfly -alloc wavefront -pattern transpose -max
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"vix/internal/config"
	"vix/internal/network"
)

// flagForField maps a spec's JSON field path to the CLI flag that sets
// it, so validation errors point at what the user actually typed.
func flagForField(field string) string {
	switch field {
	case "topology":
		return "topo"
	case "allocator":
		return "alloc"
	case "virtual_inputs":
		return "k"
	case "buf_depth":
		return "depth"
	case "injection_rate":
		return "rate"
	case "packet_size":
		return "pkt"
	default:
		return field
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("vixsim: ")

	var (
		configPath = flag.String("config", "", "JSON experiment file (overrides the other flags)")
		topoName   = flag.String("topo", "mesh", "topology: mesh, torus, cmesh, or fbfly")
		allocStr   = flag.String("alloc", "if", "allocator: if, wavefront, ap, pc, ideal, islip, or sparoflo")
		k          = flag.Int("k", 1, "virtual inputs per port (1 = baseline, 2 = VIX)")
		vcs        = flag.Int("vcs", 6, "virtual channels per port")
		depth      = flag.Int("depth", 5, "buffer depth per VC in flits")
		policy     = flag.String("policy", "", "VC assignment policy: maxfree, dimension, balanced (default: balanced when k > 1)")
		partition  = flag.String("partition", "contiguous", "VC sub-group partition: contiguous or interleaved")
		pattern    = flag.String("pattern", "uniform", "traffic: uniform, transpose, bitcomp, bitrev, tornado, hotspot")
		rate       = flag.Float64("rate", 0.05, "injection rate in packets/cycle/node")
		maxInj     = flag.Bool("max", false, "saturate every source (ignore -rate)")
		pktSize    = flag.Int("pkt", 4, "packet size in flits")
		warmup     = flag.Int("warmup", 2000, "warmup cycles")
		measure    = flag.Int("measure", 6000, "measurement cycles")
		seed       = flag.Uint64("seed", 1, "random seed")
		workers    = flag.Int("workers", 1, "parallel-tick workers (1 serial, <0 GOMAXPROCS); output is byte-identical for any value")
	)
	flag.Parse()

	exp := config.Default()
	if *configPath != "" {
		var err error
		if exp, err = config.Load(*configPath); err != nil {
			log.Fatal(err)
		}
	} else {
		exp.Topology = *topoName
		exp.Allocator = *allocStr
		exp.VirtualInputs = *k
		exp.VCs = *vcs
		exp.BufDepth = *depth
		exp.Policy = *policy
		exp.Partition = *partition
		exp.Pattern = *pattern
		exp.InjectionRate = *rate
		exp.MaxInjection = *maxInj
		exp.PacketSize = *pktSize
		exp.Warmup = *warmup
		exp.Measure = *measure
		exp.Seed = *seed
	}

	// Validate before building: the structured errors name each bad
	// field by its JSON path, one line per problem.
	if err := exp.Validate(); err != nil {
		var ve config.ValidationError
		if errors.As(err, &ve) {
			for _, fe := range ve {
				log.Printf("invalid -%s value: %s", flagForField(fe.Field), fe.Msg)
			}
			os.Exit(2)
		}
		log.Fatal(err)
	}

	cfg, err := exp.Build()
	if err != nil {
		log.Fatal(err)
	}
	cfg.Workers = *workers
	n, err := network.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer n.Close()
	n.Warmup(exp.Warmup)
	s := n.Measure(exp.Measure)

	topo := cfg.Topology
	fmt.Printf("topology            %s (radix %d, %d routers, %d nodes)\n", topo.Name, topo.Radix, topo.NumRouters, topo.NumNodes)
	fmt.Printf("allocator           %s (k=%d, %d VCs x %d flits, policy %s, %s partition)\n",
		cfg.Router.AllocKind, cfg.Router.VirtualInputs, cfg.Router.VCs, cfg.Router.BufDepth, cfg.Router.Policy, exp.PartitionName())
	if exp.MaxInjection {
		fmt.Printf("offered load        saturated (%d-flit packets, %s)\n", exp.PacketSize, cfg.Pattern.Name())
	} else {
		fmt.Printf("offered load        %.4f packets/cycle/node (%d-flit packets, %s)\n", exp.InjectionRate, exp.PacketSize, cfg.Pattern.Name())
	}
	fmt.Printf("measured            %d cycles after %d warmup\n", exp.Measure, exp.Warmup)
	fmt.Printf("avg packet latency  %.2f cycles (p50 %d, p99 %d, max %d)\n", s.AvgLatency, s.P50Latency, s.P99Latency, s.MaxLatency)
	fmt.Printf("throughput          %.4f flits/cycle/node (%.4f packets/cycle/node)\n", s.ThroughputFlits, s.ThroughputPackets)
	fmt.Printf("avg hops            %.2f\n", s.AvgHops)
	fmt.Printf("fairness (max/min)  %.2f\n", s.FairnessRatio)
	fmt.Printf("packets             %d injected, %d delivered\n", s.PacketsInjected, s.PacketsEjected)
	os.Exit(0)
}
