package stats

import (
	"math"
	"testing"
)

func TestEmptySnapshot(t *testing.T) {
	c := NewCollector(4)
	s := c.Snapshot()
	if s.AvgLatency != 0 || s.ThroughputFlits != 0 || s.FairnessRatio != 1 {
		t.Fatalf("empty snapshot not neutral: %+v", s)
	}
}

func TestThroughputAccounting(t *testing.T) {
	c := NewCollector(2)
	for i := 0; i < 100; i++ {
		c.Tick()
	}
	for i := 0; i < 40; i++ {
		c.FlitEjected(i % 2)
	}
	s := c.Snapshot()
	if want := 40.0 / (100 * 2); s.ThroughputFlits != want {
		t.Fatalf("throughput = %v, want %v", s.ThroughputFlits, want)
	}
	if s.FlitsEjected != 40 {
		t.Fatalf("flits ejected = %d", s.FlitsEjected)
	}
}

func TestLatencyStats(t *testing.T) {
	c := NewCollector(1)
	c.PacketEjected(10, 2)
	c.PacketEjected(30, 4)
	s := c.Snapshot()
	if s.AvgLatency != 20 {
		t.Fatalf("avg latency = %v, want 20", s.AvgLatency)
	}
	if s.MaxLatency != 30 {
		t.Fatalf("max latency = %v, want 30", s.MaxLatency)
	}
	if s.AvgHops != 3 {
		t.Fatalf("avg hops = %v, want 3", s.AvgHops)
	}
}

func TestFairnessRatio(t *testing.T) {
	c := NewCollector(3)
	c.Tick()
	for i := 0; i < 6; i++ {
		c.FlitEjected(0)
	}
	for i := 0; i < 2; i++ {
		c.FlitEjected(1)
	}
	for i := 0; i < 3; i++ {
		c.FlitEjected(2)
	}
	if got := c.Snapshot().FairnessRatio; got != 3 {
		t.Fatalf("fairness = %v, want 3 (6/2)", got)
	}
}

func TestFairnessStarvationIsInf(t *testing.T) {
	c := NewCollector(2)
	c.Tick()
	c.FlitEjected(0)
	if got := c.Snapshot().FairnessRatio; !math.IsInf(got, 1) {
		t.Fatalf("starved node fairness = %v, want +Inf", got)
	}
}

func TestResetClears(t *testing.T) {
	c := NewCollector(2)
	c.Tick()
	c.PacketInjected(4)
	c.FlitEjected(0)
	c.PacketEjected(12, 3)
	c.BufferRead()
	c.BufferWrite()
	c.XbarTraversal()
	c.LinkTraversal()
	c.Reset()
	s := c.Snapshot()
	if s.Cycles != 0 || s.FlitsEjected != 0 || s.PacketsInjected != 0 ||
		s.AvgLatency != 0 || s.BufferReads != 0 || s.LinkTraversals != 0 {
		t.Fatalf("Reset left state behind: %+v", s)
	}
	if s.Nodes != 2 {
		t.Fatalf("Reset lost node count: %d", s.Nodes)
	}
}

func TestActivityCounters(t *testing.T) {
	c := NewCollector(1)
	for i := 0; i < 5; i++ {
		c.BufferRead()
		c.BufferWrite()
	}
	for i := 0; i < 3; i++ {
		c.XbarTraversal()
	}
	c.LinkTraversal()
	s := c.Snapshot()
	if s.BufferReads != 5 || s.BufferWrites != 5 || s.XbarTraversals != 3 || s.LinkTraversals != 1 {
		t.Fatalf("activity counters wrong: %+v", s)
	}
}

func TestOutOfRangeSourceIgnored(t *testing.T) {
	c := NewCollector(2)
	c.Tick()
	c.FlitEjected(-1)
	c.FlitEjected(99)
	c.FlitEjected(0)
	c.FlitEjected(1)
	if got := c.Snapshot().FairnessRatio; got != 1 {
		t.Fatalf("fairness = %v, want 1", got)
	}
	if got := c.Snapshot().FlitsEjected; got != 4 {
		t.Fatalf("flits = %d, want 4 (totals still count)", got)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	c := NewCollector(1)
	for i := int64(1); i <= 100; i++ {
		c.PacketEjected(i, 1)
	}
	s := c.Snapshot()
	if s.P50Latency != 50 {
		t.Errorf("P50 = %d, want 50", s.P50Latency)
	}
	if s.P90Latency != 90 {
		t.Errorf("P90 = %d, want 90", s.P90Latency)
	}
	if s.P99Latency != 99 {
		t.Errorf("P99 = %d, want 99", s.P99Latency)
	}
	if s.P50Latency > s.P90Latency || s.P90Latency > s.P99Latency || s.P99Latency > s.MaxLatency {
		t.Errorf("percentiles not ordered: %+v", s)
	}
}

func TestPercentileSinglePacket(t *testing.T) {
	c := NewCollector(1)
	c.PacketEjected(42, 3)
	s := c.Snapshot()
	if s.P50Latency != 42 || s.P99Latency != 42 {
		t.Errorf("single-sample percentiles wrong: %+v", s)
	}
}

func TestPercentileUnorderedInput(t *testing.T) {
	c := NewCollector(1)
	for _, v := range []int64{90, 10, 50, 30, 70} {
		c.PacketEjected(v, 1)
	}
	s := c.Snapshot()
	if s.P50Latency != 50 {
		t.Errorf("P50 of {10..90} = %d, want 50", s.P50Latency)
	}
}

// TestMergeDeltaMatchesDirectCalls pins the contract the parallel tick
// relies on: folding per-shard Deltas into a collector yields exactly the
// counters direct calls would have produced, in any merge order.
func TestMergeDeltaMatchesDirectCalls(t *testing.T) {
	direct := NewCollector(4)
	for i := 0; i < 3; i++ {
		direct.BufferRead()
		direct.XbarTraversal()
	}
	direct.BufferWrite()
	direct.LinkTraversal()
	direct.LinkTraversal()

	merged := NewCollector(4)
	deltas := []Delta{
		{BufferReads: 1, XbarTraversals: 2, LinkTraversals: 2},
		{BufferReads: 2, BufferWrites: 1, XbarTraversals: 1},
	}
	// Reverse order on purpose: integer merges are order-independent.
	for i := len(deltas) - 1; i >= 0; i-- {
		merged.Merge(deltas[i])
	}
	d, m := direct.Snapshot(), merged.Snapshot()
	if d.BufferReads != m.BufferReads || d.BufferWrites != m.BufferWrites ||
		d.XbarTraversals != m.XbarTraversals || d.LinkTraversals != m.LinkTraversals {
		t.Fatalf("merged %+v, direct %+v", m, d)
	}
}
