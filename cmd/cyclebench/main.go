// Command cyclebench measures the serial cycle loop's raw throughput:
// cycles/sec of Network.Step on a saturated 8x8 VIX mesh — the inner loop
// every sweep, ablation, and Table 4 run is built from. It also reports
// heap allocations per cycle (runtime.MemStats deltas), the number the
// zero-allocation steady-state work drives to ~0.
//
// The emitted BENCH_cycle.json records a before-vs-after pair: the
// baseline cycles/sec is taken from -baseline, or, when the output file
// already exists, carried over from its baseline_cycles_per_sec field, so
// `make bench-json` refreshes the measurement while preserving the
// pre-optimization reference point.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"vix/internal/alloc"
	"vix/internal/network"
	"vix/internal/router"
	"vix/internal/stats"
	"vix/internal/topology"
	"vix/internal/traffic"
)

// report is the BENCH_cycle.json schema.
type report struct {
	Workload         string  `json:"workload"`
	WarmupCycles     int     `json:"warmup_cycles"`
	MeasureCycles    int     `json:"measure_cycles"`
	CPUs             int     `json:"cpus"`
	BaselineCycSec   float64 `json:"baseline_cycles_per_sec"`
	CycSec           float64 `json:"cycles_per_sec"`
	Speedup          float64 `json:"speedup"`
	MallocsPerCycle  float64 `json:"mallocs_per_cycle"`
	AllocBytesPerCyc float64 `json:"alloc_bytes_per_cycle"`

	Parallel *parallelReport `json:"parallel,omitempty"`
}

// parallelReport records the sharded-tick section: the same 16x16
// workload stepped serially and with -workers shards, the byte-identity
// verdict, and whether the speedup gate applied on this host.
type parallelReport struct {
	Workload       string  `json:"workload"`
	Workers        int     `json:"workers"`
	WarmupCycles   int     `json:"warmup_cycles"`
	MeasureCycles  int     `json:"measure_cycles"`
	SerialCycSec   float64 `json:"serial_cycles_per_sec"`
	ParallelCycSec float64 `json:"parallel_cycles_per_sec"`
	Speedup        float64 `json:"speedup"`
	StatsIdentical bool    `json:"stats_identical"`
	// GateEnforced reports whether the >= 1.8x speedup gate applied:
	// it needs at least 4 CPUs and at least 4 effective workers.
	GateEnforced bool `json:"gate_enforced"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cyclebench: ")
	var (
		out         = flag.String("o", "BENCH_cycle.json", "output file (\"-\" for stdout)")
		warmup      = flag.Int("warmup", 3000, "warmup cycles (also grows pools/scratch to steady state)")
		measure     = flag.Int("measure", 20000, "measurement cycles")
		baseline    = flag.Float64("baseline", 0, "pre-change cycles/sec reference (0: carry over from existing output file)")
		workers     = flag.Int("workers", -1, "parallel-tick workers for the 16x16 section (<0 GOMAXPROCS)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the measurement window to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile taken after the measurement to this file")
		requireGate = flag.Bool("require-gate", false, "fail unless the parallel speedup gate actually applied (CI multicore job: a host too small to enforce it must not pass silently)")
	)
	flag.Parse()

	const workload = "8x8 mesh, if:2 (VIX), 6 VCs, uniform random, max injection, seed 1"
	topo := topology.NewMesh(8, 8)
	cfg := network.Config{
		Topology: topo,
		Router: router.Config{
			Ports: topo.Radix, VCs: 6, VirtualInputs: 2, BufDepth: 5,
			AllocKind: alloc.KindSeparableIF, Policy: router.PolicyBalanced,
		},
		Pattern:      traffic.NewUniform(topo.NumNodes),
		MaxInjection: true,
		Seed:         1,
	}
	n, err := network.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer n.Close()
	n.Run(*warmup)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	n.Run(*measure)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}

	r := report{
		Workload:         workload,
		WarmupCycles:     *warmup,
		MeasureCycles:    *measure,
		CPUs:             runtime.NumCPU(),
		CycSec:           float64(*measure) / elapsed.Seconds(),
		MallocsPerCycle:  float64(after.Mallocs-before.Mallocs) / float64(*measure),
		AllocBytesPerCyc: float64(after.TotalAlloc-before.TotalAlloc) / float64(*measure),
	}
	r.BaselineCycSec = resolveBaseline(*baseline, *out, r.CycSec)
	r.Speedup = r.CycSec / r.BaselineCycSec
	r.Parallel = benchParallel(*workers, *warmup, *measure/4)

	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("%d cycles in %v: %.0f cycles/sec (baseline %.0f, speedup %.2fx), %.1f mallocs/cycle",
		*measure, elapsed.Round(time.Millisecond), r.CycSec, r.BaselineCycSec, r.Speedup, r.MallocsPerCycle)
	if p := r.Parallel; p != nil {
		log.Printf("parallel: %d workers on %s: %.0f -> %.0f cycles/sec (%.2fx, gate %v)",
			p.Workers, p.Workload, p.SerialCycSec, p.ParallelCycSec, p.Speedup, p.GateEnforced)
		if *requireGate && !p.GateEnforced {
			log.Fatalf("-require-gate: speedup gate did not apply (%d CPUs, %d effective workers; need >= 4 of each)",
				runtime.NumCPU(), p.Workers)
		}
	}
}

// benchParallel times the 16x16 saturated VIX mesh serially and with the
// sharded tick, verifies the two produce identical statistics, and
// enforces the parallel speedup gate on hosts with enough CPUs. A worker
// request that resolves to 1 (e.g. GOMAXPROCS on a single-CPU machine)
// still records the section, with the pool bypassed and speedup ~1.
func benchParallel(workers, warmup, measure int) *parallelReport {
	const workload = "16x16 mesh, if:2 (VIX), 6 VCs, uniform random, max injection, seed 1"
	topo := topology.NewMesh(16, 16)
	build := func(w int) *network.Network {
		n, err := network.New(network.Config{
			Topology: topo,
			Router: router.Config{
				Ports: topo.Radix, VCs: 6, VirtualInputs: 2, BufDepth: 5,
				AllocKind: alloc.KindSeparableIF, Policy: router.PolicyBalanced,
			},
			Pattern:      traffic.NewUniform(topo.NumNodes),
			MaxInjection: true,
			Seed:         1,
			Workers:      w,
		})
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	run := func(w int) (float64, stats.Snapshot, int) {
		n := build(w)
		defer n.Close()
		n.Warmup(warmup)
		start := time.Now()
		s := n.Measure(measure)
		return float64(measure) / time.Since(start).Seconds(), s, n.Workers()
	}

	serialCycSec, serialSnap, _ := run(1)
	parallelCycSec, parallelSnap, eff := run(workers)
	p := &parallelReport{
		Workload:       workload,
		Workers:        eff,
		WarmupCycles:   warmup,
		MeasureCycles:  measure,
		SerialCycSec:   serialCycSec,
		ParallelCycSec: parallelCycSec,
		Speedup:        parallelCycSec / serialCycSec,
		StatsIdentical: serialSnap == parallelSnap,
		GateEnforced:   runtime.NumCPU() >= 4 && eff >= 4,
	}
	if !p.StatsIdentical {
		log.Fatalf("parallel tick diverged: workers=%d stats differ from serial\nserial:   %+v\nparallel: %+v",
			p.Workers, serialSnap, parallelSnap)
	}
	if p.GateEnforced && p.Speedup < 1.8 {
		log.Fatalf("parallel speedup gate failed: %.2fx with %d workers on %d CPUs (want >= 1.8x)",
			p.Speedup, p.Workers, runtime.NumCPU())
	}
	return p
}

// resolveBaseline picks the before-change reference: an explicit flag
// wins; otherwise the existing output file's baseline is carried over;
// a fresh file starts with the current measurement (speedup 1.0).
func resolveBaseline(flagVal float64, out string, measured float64) float64 {
	if flagVal > 0 {
		return flagVal
	}
	if out != "-" {
		if data, err := os.ReadFile(out); err == nil {
			var prev report
			if json.Unmarshal(data, &prev) == nil && prev.BaselineCycSec > 0 {
				return prev.BaselineCycSec
			}
		}
	}
	return measured
}
