package alloc

import (
	"testing"

	"vix/internal/sim"
)

func TestISLIPValidGrants(t *testing.T) {
	rng := sim.NewRNG(31)
	for _, cfg := range allConfigs() {
		for _, iters := range []int{1, 2, 4} {
			s := NewISLIP(cfg, iters)
			for cycle := 0; cycle < 150; cycle++ {
				rs := randomRequestSet(rng, cfg, 0.5)
				if err := Validate(rs, s.Allocate(rs)); err != nil {
					t.Fatalf("islip(%d) on %+v: %v", iters, cfg, err)
				}
			}
		}
	}
}

// More iterations never hurt average matching size, and multi-iteration
// iSLIP beats single-pass separable IF on random traffic.
func TestISLIPIterationsImproveMatching(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 1}
	totals := map[int]int{}
	for _, iters := range []int{1, 2, 4} {
		s := NewISLIP(cfg, iters)
		rng := sim.NewRNG(32)
		for cycle := 0; cycle < 2000; cycle++ {
			totals[iters] += len(s.Allocate(randomRequestSet(rng, cfg, 0.5)))
		}
	}
	if !(totals[4] >= totals[2] && totals[2] >= totals[1]) {
		t.Fatalf("iteration scaling broken: %v", totals)
	}

	ifAlloc := NewSeparableIF(cfg)
	rng := sim.NewRNG(32)
	totIF := 0
	for cycle := 0; cycle < 2000; cycle++ {
		totIF += len(ifAlloc.Allocate(randomRequestSet(rng, cfg, 0.5)))
	}
	if totals[2] <= totIF {
		t.Fatalf("2-iteration iSLIP (%d) did not beat single-pass IF (%d)", totals[2], totIF)
	}
}

// With enough iterations iSLIP converges to a maximal matching: nothing
// can be added to its grant set.
func TestISLIPConvergesToMaximal(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 1}
	s := NewISLIP(cfg, cfg.Ports) // P iterations guarantee convergence
	rng := sim.NewRNG(33)
	for cycle := 0; cycle < 300; cycle++ {
		rs := randomRequestSet(rng, cfg, 0.4)
		grants := s.Allocate(rs)
		rowUsed := map[int]bool{}
		outUsed := map[int]bool{}
		for _, g := range grants {
			rowUsed[g.Row] = true
			outUsed[g.OutPort] = true
		}
		for _, r := range rs.Requests {
			if !rowUsed[cfg.Row(r.Port, r.VC)] && !outUsed[r.OutPort] {
				t.Fatalf("cycle %d: converged iSLIP not maximal: %+v addable", cycle, r)
			}
		}
	}
}

func TestISLIPIterationClampAndAccessor(t *testing.T) {
	s := NewISLIP(Config{Ports: 4, VCs: 4, VirtualInputs: 1}, 0)
	if s.Iterations() != 1 {
		t.Fatalf("iterations = %d, want clamped 1", s.Iterations())
	}
}

func TestSparofloValidGrants(t *testing.T) {
	rng := sim.NewRNG(41)
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 1}
	s := NewSparoflo(cfg)
	for cycle := 0; cycle < 400; cycle++ {
		rs := randomRequestSet(rng, cfg, 0.5)
		if err := Validate(rs, s.Allocate(rs)); err != nil {
			t.Fatal(err)
		}
	}
}

// The paper's related-work ordering: SPAROFLO improves on IF by exposing
// more requests, but VIX beats it because SPAROFLO's conflicts surface
// after output arbitration (no virtual inputs to cash in the extra
// grants).
func TestSparofloBetweenIFAndVIX(t *testing.T) {
	base := Config{Ports: 5, VCs: 6, VirtualInputs: 1}
	vixc := Config{Ports: 5, VCs: 6, VirtualInputs: 2}
	ifAlloc := NewSeparableIF(base)
	sp := NewSparoflo(base)
	vix := NewSeparableIF(vixc)
	rngs := [3]*sim.RNG{sim.NewRNG(42), sim.NewRNG(42), sim.NewRNG(42)}
	var totIF, totSP, totVIX int
	for cycle := 0; cycle < 3000; cycle++ {
		totIF += len(ifAlloc.Allocate(randomRequestSet(rngs[0], base, 0.5)))
		totSP += len(sp.Allocate(randomRequestSet(rngs[1], base, 0.5)))
		totVIX += len(vix.Allocate(randomRequestSet(rngs[2], vixc, 0.5)))
	}
	if totSP <= totIF {
		t.Fatalf("SPAROFLO (%d) did not beat IF (%d)", totSP, totIF)
	}
	if totVIX <= totSP {
		t.Fatalf("VIX (%d) did not beat SPAROFLO (%d)", totVIX, totSP)
	}
}

// One grant per physical input port: SPAROFLO's defining constraint.
func TestSparofloSingleGrantPerPort(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 1}
	s := NewSparoflo(cfg)
	rs := &RequestSet{Config: cfg, Requests: []Request{
		{Port: 2, VC: 0, OutPort: 0},
		{Port: 2, VC: 1, OutPort: 1},
		{Port: 2, VC: 2, OutPort: 3},
	}}
	for i := 0; i < 10; i++ {
		if got := len(s.Allocate(rs)); got != 1 {
			t.Fatalf("sparoflo granted %d flits from one port", got)
		}
	}
}

func TestRegistryNewKinds(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 6, VirtualInputs: 1}
	for _, kind := range []Kind{KindISLIP, KindSparoflo} {
		a, err := New(kind, cfg)
		if err != nil {
			t.Fatalf("New(%s): %v", kind, err)
		}
		if a.Name() == "" {
			t.Fatalf("New(%s) has empty name", kind)
		}
	}
	if _, err := New(KindSparoflo, Config{Ports: 5, VCs: 6, VirtualInputs: 2}); err == nil {
		t.Error("sparoflo accepted virtual inputs")
	}
	if got := len(Kinds()); got != 8 {
		t.Errorf("Kinds() = %d entries, want 8", got)
	}
}
