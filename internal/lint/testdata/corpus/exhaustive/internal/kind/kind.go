// Package kind seeds an exhaustive/switch violation: a switch over a
// module enum that silently drops a variant, next to the two accepted
// shapes (explicit default, full coverage).
package kind

// Kind enumerates the fixture's variants.
type Kind int

// The declared variants.
const (
	A Kind = iota
	B
	C
)

// Score misses C and has no default: flagged.
func Score(k Kind) int {
	switch k {
	case A:
		return 1
	case B:
		return 2
	}
	return 0
}

// Defaulted handles unknown variants explicitly: clean.
func Defaulted(k Kind) int {
	switch k {
	case A:
		return 1
	default:
		return 0
	}
}

// Full covers every variant: clean.
func Full(k Kind) int {
	switch k {
	case A, B:
		return 1
	case C:
		return 2
	}
	return 0
}

// Named switches over a plain string, not a module enum: out of scope.
func Named(s string) int {
	switch s {
	case "a":
		return 1
	}
	return 0
}
