// Command delaymodel regenerates Tables 1 and 3: router pipeline stage
// delays (VA, SA, crossbar) for the three topologies with and without
// VIX, and the delay comparison of switch allocation schemes, from the
// 45 nm-calibrated timing models.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"vix/internal/timing"
)

func main() {
	scaling := flag.Bool("scaling", false, "also print the high-radix VIX feasibility study")
	flag.Parse()

	fmt.Println("Table 1: router pipeline stage delays (45 nm calibrated model)")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Design\tRadix\tXbar size\tVA delay\tSA delay\tXbar delay\tXbar slack vs VA")
	for _, r := range timing.Table1() {
		fmt.Fprintf(w, "%s\t%d\t%d x %d\t%.0f ps\t%.0f ps\t%.0f ps\t%.0f ps\n",
			r.Design, r.Radix, r.XbarIn, r.XbarOut, r.VA, r.SA, r.Xbar, r.VA-r.Xbar)
	}
	w.Flush()

	fmt.Println()
	fmt.Println("Table 3: delay of switch allocation schemes (radix-5 mesh, 6 VCs)")
	fmt.Println()
	w = tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Scheme\tDelay")
	for _, r := range timing.Table3() {
		if r.Feasible {
			fmt.Fprintf(w, "%s\t%.0f ps\n", r.Scheme, r.Delay)
		} else {
			fmt.Fprintf(w, "%s\tInfeasible (model estimate %.0f ps)\n", r.Scheme, r.Delay)
		}
	}
	w.Flush()

	sep := timing.SADelay(5, 6, 1)
	wf := timing.WavefrontDelay(5, 1)
	fmt.Printf("\nWavefront is %.0f%% slower than the separable allocator (paper: 39%%).\n", 100*(wf/sep-1))
	fmt.Printf("Mesh VIX crossbar uses %.0f%% of the cycle time (paper: within 70%%).\n",
		100*timing.XbarDelay(10, 5)/timing.CycleTime(5, 6))

	if *scaling {
		fmt.Println()
		fmt.Println("High-radix VIX feasibility (Section 2.4 scaling discussion, 6 VCs):")
		w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
		fmt.Fprintln(w, "radix\tcycle\txbar PxP\txbar 2PxP\tVIX slack\tfeasible")
		for _, r := range timing.RadixScaling([]int{4, 5, 8, 10, 12, 16, 20, 24, 32}, 6) {
			fmt.Fprintf(w, "%d\t%.0f ps\t%.0f ps\t%.0f ps\t%+.0f ps\t%v\n",
				r.Radix, r.Cycle, r.XbarBase, r.XbarVIX, r.SlackVIX, r.Feasible)
		}
		w.Flush()
		fmt.Printf("\nVIX feasibility frontier: radix %d at 6 VCs per port.\n", timing.VIXFeasibilityFrontier(6))
	}
}
