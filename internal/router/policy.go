package router

import (
	"fmt"

	"vix/internal/topology"
)

// PolicyKind selects the output-VC assignment policy used at VC
// allocation time (Section 2.3 of the paper).
type PolicyKind string

// Output-VC assignment policies.
const (
	// PolicyMaxFree is the baseline: assign the free output VC with the
	// most free flit buffers (credits).
	PolicyMaxFree PolicyKind = "maxfree"
	// PolicyDimension assigns packets to the VC sub-group matching the
	// dimension of the output port they will request at the downstream
	// router, so requests for different output ports tend to arrive on
	// different virtual inputs.
	PolicyDimension PolicyKind = "dimension"
	// PolicyBalanced is PolicyDimension with load balancing: when the
	// preferred sub-group is heavily occupied relative to the other, the
	// packet is steered to the lighter sub-group so every virtual input
	// keeps requests to offer. This is the paper's full Section 2.3
	// policy and the default for VIX configurations.
	PolicyBalanced PolicyKind = "balanced"
)

// vaContext carries the information a policy may consult when choosing an
// output VC for a packet leaving through outPort.
type vaContext struct {
	// free[v] reports whether downstream VC v is unallocated.
	free []bool
	// credits[v] is the current credit count of downstream VC v (a view
	// into the router's arena segment).
	credits []int32
	// busyInGroup[g] counts allocated (busy) VCs in sub-group g.
	busyInGroup []int
	// nextDim is the dimension class of the output port the packet will
	// request at the downstream router (lookahead), or DimLocal when the
	// downstream hop ejects.
	nextDim topology.Dim
	// groups is the number of VC sub-groups (the crossbar's virtual
	// input factor k) and groupSize the VCs per sub-group.
	groups, groupSize int
}

// choose returns the selected downstream VC, or -1 if no free VC exists.
func (p PolicyKind) choose(ctx *vaContext) int {
	switch p {
	case PolicyMaxFree:
		return bestIn(ctx, 0, len(ctx.free))
	case PolicyDimension:
		g := preferredGroup(ctx)
		if v := bestInGroup(ctx, g); v >= 0 {
			return v
		}
		return bestIn(ctx, 0, len(ctx.free))
	case PolicyBalanced:
		g := preferredGroup(ctx)
		// Load balance: if the preferred sub-group already has strictly
		// more busy VCs than the least-loaded sub-group, steer there so
		// all virtual inputs keep requests.
		min, argmin := ctx.busyInGroup[g], g
		for i, b := range ctx.busyInGroup {
			if b < min {
				min, argmin = b, i
			}
		}
		if ctx.busyInGroup[g] > min {
			g = argmin
		}
		if v := bestInGroup(ctx, g); v >= 0 {
			return v
		}
		return bestIn(ctx, 0, len(ctx.free))
	default:
		panic(fmt.Sprintf("router: unknown VC policy %q", p))
	}
}

// preferredGroup maps the downstream direction onto a sub-group: X-dim
// continuations to group 0, Y-dim and ejection to the last group. With
// k = 1 everything maps to group 0 and the policy degenerates to maxfree.
func preferredGroup(ctx *vaContext) int {
	if ctx.groups == 1 {
		return 0
	}
	switch ctx.nextDim {
	case topology.DimX:
		return 0
	default:
		return ctx.groups - 1
	}
}

// bestInGroup returns the free VC with most credits within sub-group g,
// or -1.
func bestInGroup(ctx *vaContext, g int) int {
	lo := g * ctx.groupSize
	hi := lo + ctx.groupSize
	if hi > len(ctx.free) {
		hi = len(ctx.free)
	}
	return bestIn(ctx, lo, hi)
}

// bestIn returns the free VC with the most credits in [lo, hi), or -1.
func bestIn(ctx *vaContext, lo, hi int) int {
	best, bestCred := -1, int32(-1)
	for v := lo; v < hi; v++ {
		if ctx.free[v] && ctx.credits[v] > bestCred {
			best, bestCred = v, ctx.credits[v]
		}
	}
	return best
}
