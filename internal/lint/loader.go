package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vix/internal/sim"
)

// Package is one parsed, type-checked package of the module under
// analysis. Test files (*_test.go) are excluded: the lint rules govern
// library and command code, and tests legitimately print, panic, and
// iterate maps.
type Package struct {
	// Path is the package's import path, e.g. "vix/internal/alloc".
	Path string
	// Dir is the absolute directory holding the package's sources.
	Dir string
	// Name is the package name from the package clauses.
	Name string
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object. It is non-nil even when
	// type checking reported errors (checking continues past soft errors).
	Types *types.Package
	// Info holds the type-checker's findings for the package's files.
	Info *types.Info
	// TypeErrs records type-checking errors. Analyzers degrade to
	// AST-only heuristics for expressions with missing type information.
	TypeErrs []error
}

// Module is a loaded Go module: every non-test package under the module
// root, parsed into one shared FileSet and type-checked in dependency
// order.
type Module struct {
	// Root is the absolute path of the module root (the go.mod directory).
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset positions every file in the module and, transitively, every
	// dependency type-checked from source.
	Fset *token.FileSet
	// Pkgs maps import path to package.
	Pkgs map[string]*Package
}

// Packages returns the module's packages sorted by import path, so that
// analysis order (and therefore finding order) is deterministic.
func (m *Module) Packages() []*Package {
	paths := sim.SortedKeys(m.Pkgs)
	pkgs := make([]*Package, len(paths))
	for i, path := range paths {
		pkgs[i] = m.Pkgs[path]
	}
	return pkgs
}

// sharedFset positions every file the process parses or type-checks, and
// sharedSource resolves non-module imports by type-checking them from
// GOROOT source (no pre-compiled export data is required). Both are
// process-global so the source importer's package cache — the expensive
// part is the standard library — is reused across Load calls.
var (
	sharedFset   = token.NewFileSet()
	sharedSource = importer.ForCompiler(sharedFset, "source", nil)
)

// Load parses and type-checks every non-test package under root, which
// must be a module root (contain go.mod). Standard-library dependencies
// are type-checked from GOROOT source via go/importer's source importer,
// so no pre-compiled export data is required.
func Load(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := &Module{
		Root: root,
		Path: modPath,
		Fset: sharedFset,
		Pkgs: make(map[string]*Package),
	}
	if err := mod.discover(); err != nil {
		return nil, err
	}
	ld := &loader{
		mod:      mod,
		source:   sharedSource,
		checking: make(map[string]bool),
	}
	for _, pkg := range mod.Packages() {
		if _, err := ld.check(pkg); err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", pkg.Path, err)
		}
	}
	return mod, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %v (is the argument a module root?)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(strings.Trim(rest, `"`)), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// discover walks the module tree and parses every package directory.
func (m *Module) discover() error {
	return filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		return m.parseDir(path)
	})
}

// parseDir parses the non-test Go files of one directory into a Package,
// if the directory contains any.
func (m *Module) parseDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files []*ast.File
	var pkgName string
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
		pkgName = f.Name.Name
	}
	if len(files) == 0 {
		return nil
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return err
	}
	importPath := m.Path
	if rel != "." {
		importPath = m.Path + "/" + filepath.ToSlash(rel)
	}
	m.Pkgs[importPath] = &Package{Path: importPath, Dir: dir, Name: pkgName, Files: files}
	return nil
}

// loader resolves imports during type checking: module-local packages come
// from the parsed module (checked recursively, memoized), everything else
// falls back to the source importer, which type-checks the standard
// library from GOROOT source.
type loader struct {
	mod      *Module
	source   types.Importer
	checking map[string]bool
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.mod.Pkgs[path]; ok {
		return l.check(pkg)
	}
	if from, ok := l.source.(types.ImporterFrom); ok {
		return from.ImportFrom(path, l.mod.Root, 0)
	}
	return l.source.Import(path)
}

// check type-checks pkg (once) and returns its types.Package.
func (l *loader) check(pkg *Package) (*types.Package, error) {
	if pkg.Types != nil {
		return pkg.Types, nil
	}
	if l.checking[pkg.Path] {
		return nil, fmt.Errorf("import cycle through %s", pkg.Path)
	}
	l.checking[pkg.Path] = true
	defer delete(l.checking, pkg.Path)

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		// Record soft errors and keep checking: analyzers fall back to
		// AST heuristics where type information is missing, so a partial
		// result is more useful than none.
		Error: func(err error) { pkg.TypeErrs = append(pkg.TypeErrs, err) },
	}
	tpkg, err := conf.Check(pkg.Path, l.mod.Fset, pkg.Files, pkg.Info)
	if tpkg == nil {
		return nil, err
	}
	pkg.Types = tpkg
	return tpkg, nil
}
