package arb

import (
	"testing"
	"testing/quick"

	"vix/internal/sim"
)

// arbiters under test, constructed fresh for each subtest.
func newArbiters(n int) map[string]Arbiter {
	return map[string]Arbiter{
		"roundrobin": NewRoundRobin(n),
		"matrix":     NewMatrix(n),
	}
}

func TestArbitrateNoRequests(t *testing.T) {
	for name, a := range newArbiters(4) {
		if got := a.Arbitrate(make([]bool, 4)); got != -1 {
			t.Errorf("%s: empty requests returned %d, want -1", name, got)
		}
	}
}

func TestArbitrateSingleRequest(t *testing.T) {
	for name, a := range newArbiters(5) {
		for i := 0; i < 5; i++ {
			req := make([]bool, 5)
			req[i] = true
			if got := a.Arbitrate(req); got != i {
				t.Errorf("%s: single request at %d granted %d", name, i, got)
			}
		}
	}
}

// Property: the winner always has its request asserted.
func TestWinnerAlwaysRequested(t *testing.T) {
	rng := sim.NewRNG(1)
	for name, a := range newArbiters(8) {
		prop := func(bits uint8) bool {
			req := make([]bool, 8)
			any := false
			for i := range req {
				req[i] = bits&(1<<i) != 0
				any = any || req[i]
			}
			w := a.Arbitrate(req)
			if !any {
				return w == -1
			}
			if w < 0 || w >= 8 || !req[w] {
				return false
			}
			if rng.Bernoulli(0.5) {
				a.Ack(w)
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: Arbitrate is pure — calling it twice with the same requests
// returns the same winner.
func TestArbitrateIsStateless(t *testing.T) {
	for name, a := range newArbiters(6) {
		prop := func(bits uint8) bool {
			req := make([]bool, 6)
			for i := range req {
				req[i] = bits&(1<<i) != 0
			}
			return a.Arbitrate(req) == a.Arbitrate(req)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Under persistent full contention a round-robin arbiter serves requestors
// in strict rotation.
func TestRoundRobinRotation(t *testing.T) {
	a := NewRoundRobin(4)
	req := []bool{true, true, true, true}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i, w := range want {
		got := a.Arbitrate(req)
		if got != w {
			t.Fatalf("grant %d: got %d, want %d", i, got, w)
		}
		a.Ack(got)
	}
}

// If the winning request is not acknowledged, the same requestor must win
// again (iSLIP pointer semantics).
func TestRoundRobinPointerHeldWithoutAck(t *testing.T) {
	a := NewRoundRobin(4)
	req := []bool{false, true, true, false}
	first := a.Arbitrate(req)
	second := a.Arbitrate(req)
	if first != second {
		t.Fatalf("winner changed without Ack: %d then %d", first, second)
	}
}

func TestRoundRobinSkipsNonRequestors(t *testing.T) {
	a := NewRoundRobin(5)
	a.Ack(1) // priority now at 2
	req := []bool{true, false, false, false, true}
	if got := a.Arbitrate(req); got != 4 {
		t.Fatalf("got %d, want 4 (first requestor at/after pointer 2)", got)
	}
}

// Fairness: under full contention over n*k grants every requestor receives
// exactly k grants.
func TestFairnessUnderFullContention(t *testing.T) {
	const n, rounds = 6, 10
	for name, a := range newArbiters(n) {
		req := make([]bool, n)
		for i := range req {
			req[i] = true
		}
		counts := make([]int, n)
		for i := 0; i < n*rounds; i++ {
			w := a.Arbitrate(req)
			counts[w]++
			a.Ack(w)
		}
		for i, c := range counts {
			if c != rounds {
				t.Errorf("%s: requestor %d granted %d times, want %d", name, i, c, rounds)
			}
		}
	}
}

// Matrix arbiter: after a grant, the winner loses to every other requestor.
func TestMatrixLeastRecentlyGranted(t *testing.T) {
	a := NewMatrix(3)
	req := []bool{true, true, true}
	w0 := a.Arbitrate(req)
	a.Ack(w0)
	w1 := a.Arbitrate(req)
	if w1 == w0 {
		t.Fatal("matrix arbiter granted same requestor twice under contention")
	}
	a.Ack(w1)
	w2 := a.Arbitrate(req)
	if w2 == w0 || w2 == w1 {
		t.Fatal("matrix arbiter did not serve all three before repeating")
	}
}

// Matrix arbiter fairness property: between two consecutive grants to
// requestor i, no other persistent requestor is granted twice.
func TestMatrixStrongFairness(t *testing.T) {
	const n = 5
	a := NewMatrix(n)
	req := make([]bool, n)
	for i := range req {
		req[i] = true
	}
	lastGrant := make([]int, n)
	for i := range lastGrant {
		lastGrant[i] = -1
	}
	for step := 0; step < 200; step++ {
		w := a.Arbitrate(req)
		if lastGrant[w] >= 0 {
			gap := step - lastGrant[w]
			if gap > n {
				t.Fatalf("requestor %d waited %d steps between grants", w, gap)
			}
		}
		lastGrant[w] = step
		a.Ack(w)
	}
}

func TestResetRestoresInitialBehaviour(t *testing.T) {
	for name, a := range newArbiters(4) {
		req := []bool{true, true, true, true}
		first := a.Arbitrate(req)
		a.Ack(first)
		a.Ack(a.Arbitrate(req))
		a.Reset()
		if got := a.Arbitrate(req); got != first {
			t.Errorf("%s: after Reset first winner = %d, want %d", name, got, first)
		}
	}
}

func TestSizeAccessor(t *testing.T) {
	for name, a := range newArbiters(7) {
		if a.Size() != 7 {
			t.Errorf("%s: Size() = %d, want 7", name, a.Size())
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){ // each must panic
		func() { NewRoundRobin(0) },
		func() { NewMatrix(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor with invalid size did not panic")
				}
			}()
			f()
		}()
	}
}

func TestMismatchedRequestVectorPanics(t *testing.T) {
	for name, a := range newArbiters(4) {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: size mismatch did not panic", name)
				}
			}()
			a.Arbitrate(make([]bool, 3))
		}()
	}
}
