// Command vixd serves the simulator over HTTP: a hive-style
// suite/case/result API backed by a content-addressed result store, so
// identical experiment specs — from any client, across restarts — are
// answered without simulating.
//
//	vixd -addr :8080 -store results.jsonl
//
//	# One-shot grid: create a closed suite and stream its results.
//	curl -s -X POST localhost:8080/suites -d '{
//	  "cases": [{"spec": {"allocator": "if", "virtual_inputs": 2, "injection_rate": 0.05}}],
//	  "close": true}'
//	curl -sN localhost:8080/suites/s1/results
//
// SIGTERM/SIGINT drain gracefully: in-flight and queued cases run to
// completion, open result streams finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vix/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vixd: ")
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		storePath  = flag.String("store", "", "JSONL result-store file shared across restarts (default: in-memory)")
		runners    = flag.Int("runners", 0, "concurrently executing cases (default GOMAXPROCS)")
		workers    = flag.Int("workers", 1, "parallel-tick workers per simulation (1 serial, <0 GOMAXPROCS); results are byte-identical for any value")
		quotaRate  = flag.Float64("quota-rate", 0, "per-client admission rate in cases/second (0 = no quotas)")
		quotaBurst = flag.Float64("quota-burst", 0, "per-client admission burst (default: quota-rate)")
		verbose    = flag.Bool("v", false, "log per-case execution and cache provenance")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "vixd: ", 0)
	if !*verbose {
		logger = nil
	}
	svc, err := service.New(service.Config{
		StorePath:  *storePath,
		Runners:    *runners,
		Workers:    *workers,
		QuotaRate:  *quotaRate,
		QuotaBurst: *quotaBurst,
		// The service itself never reads the wall clock (vixlint's
		// determinism pass covers internal/); the quota clock is injected
		// here, at the edge.
		Now: func() int64 { return time.Now().UnixNano() },
		Log: logger,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (store %q)", *addr, *storePath)

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Drain. Service close and HTTP shutdown must overlap: Shutdown
	// waits for open result streams, and a stream over a never-closed
	// suite only terminates once the service marks itself draining and
	// runs the case queue dry.
	log.Printf("signal received; draining")
	closed := make(chan error, 1)
	go func() { closed <- svc.Close() }()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	if err := <-closed; err != nil {
		log.Fatal(err)
	}
	log.Printf("drained cleanly")
}
