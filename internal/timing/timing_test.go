package timing

import (
	"math"
	"testing"
)

// within reports whether got is within tol (fractional) of want.
func within(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*want
}

// The calibrated model must reproduce every published number of Table 1
// within 2%.
func TestTable1MatchesPaper(t *testing.T) {
	paper := []struct {
		design       string
		va, sa, xbar float64
	}{
		{"Mesh", 300, 280, 167},
		{"Mesh with VIX", 300, 290, 205},
		{"CMesh", 340, 315, 205},
		{"CMesh with VIX", 340, 330, 289},
		{"FBfly", 360, 340, 238},
		{"FBfly with VIX", 360, 345, 359},
	}
	rows := Table1()
	if len(rows) != len(paper) {
		t.Fatalf("Table1 has %d rows, want %d", len(rows), len(paper))
	}
	for i, p := range paper {
		r := rows[i]
		if r.Design != p.design {
			t.Errorf("row %d design %q, want %q", i, r.Design, p.design)
		}
		if !within(r.VA, p.va, 0.02) {
			t.Errorf("%s: VA %.1f ps, paper %.0f ps", p.design, r.VA, p.va)
		}
		if !within(r.SA, p.sa, 0.02) {
			t.Errorf("%s: SA %.1f ps, paper %.0f ps", p.design, r.SA, p.sa)
		}
		if !within(r.Xbar, p.xbar, 0.02) {
			t.Errorf("%s: Xbar %.1f ps, paper %.0f ps", p.design, r.Xbar, p.xbar)
		}
	}
}

// The crossbar must have slack in every design: its delay stays below the
// VA stage (the paper's feasibility argument for VIX).
func TestCrossbarNeverCritical(t *testing.T) {
	for _, r := range Table1() {
		if r.Xbar >= r.VA {
			t.Errorf("%s: crossbar %.1f ps >= VA %.1f ps", r.Design, r.Xbar, r.VA)
		}
	}
}

// Mesh crossbar with VIX stays within 70% of the cycle time (Section 2.4:
// "while still remaining within 70% of the router's cycle time").
func TestMeshVIXCrossbarSlack(t *testing.T) {
	cycle := CycleTime(5, 6)
	xbar := XbarDelay(10, 5)
	if ratio := xbar / cycle; ratio > 0.70 {
		t.Fatalf("mesh VIX crossbar at %.0f%% of cycle time, paper says within 70%%", ratio*100)
	}
}

// Crossbar delay growth quoted in Section 2.4: +22% for mesh, +50% for
// flattened butterfly.
func TestCrossbarGrowthRatios(t *testing.T) {
	mesh := XbarDelay(10, 5) / XbarDelay(5, 5)
	if mesh < 1.15 || mesh > 1.30 {
		t.Errorf("mesh crossbar growth %.2fx, paper ~1.22x", mesh)
	}
	fbfly := XbarDelay(20, 10) / XbarDelay(10, 10)
	if fbfly < 1.40 || fbfly > 1.60 {
		t.Errorf("fbfly crossbar growth %.2fx, paper ~1.50x", fbfly)
	}
}

// Table 3: wavefront is about 39% slower than separable, and AP is
// infeasible.
func TestTable3(t *testing.T) {
	rows := Table3()
	if len(rows) != 3 {
		t.Fatalf("Table3 has %d rows", len(rows))
	}
	sep, wf, ap := rows[0], rows[1], rows[2]
	if !within(sep.Delay, 280, 0.02) {
		t.Errorf("separable %.1f ps, paper 280 ps", sep.Delay)
	}
	if !within(wf.Delay, 390, 0.02) {
		t.Errorf("wavefront %.1f ps, paper 390 ps", wf.Delay)
	}
	if ratio := wf.Delay / sep.Delay; ratio < 1.35 || ratio > 1.43 {
		t.Errorf("WF/separable ratio %.3f, paper 1.39", ratio)
	}
	if !sep.Feasible || !wf.Feasible {
		t.Error("separable and wavefront must be feasible")
	}
	if ap.Feasible {
		t.Error("augmented path must be infeasible (Table 3)")
	}
	if ap.Delay <= CycleTime(5, 6) {
		t.Errorf("AP delay estimate %.0f ps not above cycle time", ap.Delay)
	}
}

// VA is independent of VIX; SA grows only mildly with VIX (about +10 ps
// for the mesh), which is the feasibility argument of Section 2.4.
func TestVIXDelayImpact(t *testing.T) {
	if VADelay(5, 6) != VADelay(5, 6) {
		t.Fatal("VA delay must not depend on k")
	}
	delta := SADelay(5, 6, 2) - SADelay(5, 6, 1)
	if delta < 0 || delta > 20 {
		t.Errorf("mesh SA delta with VIX = %.1f ps, paper ~10 ps", delta)
	}
}

// Monotonicity properties of the models.
func TestDelayMonotonicity(t *testing.T) {
	for p := 3; p < 16; p++ {
		if VADelay(p+1, 6) <= VADelay(p, 6) {
			t.Fatalf("VA not increasing in radix at %d", p)
		}
		if SADelay(p+1, 6, 1) <= SADelay(p, 6, 1) {
			t.Fatalf("SA not increasing in radix at %d", p)
		}
		if XbarDelay(p+1, p+1) <= XbarDelay(p, p) {
			t.Fatalf("Xbar not increasing in size at %d", p)
		}
		if WavefrontDelay(p+1, 1) <= WavefrontDelay(p, 1) {
			t.Fatalf("WF not increasing in radix at %d", p)
		}
	}
}

// Higher radix shrinks the crossbar slack (Section 2.4: VIX "may not
// scale to very high radices").
func TestSlackShrinksWithRadix(t *testing.T) {
	slack := func(p int) float64 { return VADelay(p, 6) - XbarDelay(2*p, p) }
	if !(slack(5) > slack(8) && slack(8) > slack(10)) {
		t.Fatalf("slack not shrinking: %v %v %v", slack(5), slack(8), slack(10))
	}
}

// Section 2.4's scaling claim: VIX is feasible at the paper's radices
// (5, 8, 10) but the slack shrinks monotonically and eventually runs
// out at high radix.
func TestRadixScaling(t *testing.T) {
	rows := RadixScaling([]int{5, 8, 10, 16, 24, 32}, 6)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows[:3] {
		if !r.Feasible {
			t.Errorf("radix %d: VIX should be feasible (paper evaluates it)", r.Radix)
		}
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].SlackVIX >= rows[i-1].SlackVIX {
			t.Errorf("VIX slack not shrinking: radix %d slack %.1f >= radix %d slack %.1f",
				rows[i].Radix, rows[i].SlackVIX, rows[i-1].Radix, rows[i-1].SlackVIX)
		}
	}
	if last := rows[len(rows)-1]; last.Feasible {
		t.Errorf("radix %d VIX still feasible: the frontier should fall below 32", last.Radix)
	}
}

func TestVIXFeasibilityFrontier(t *testing.T) {
	frontier := VIXFeasibilityFrontier(6)
	// The paper's highest evaluated radix (10) sits at the boundary:
	// FBfly VIX crossbar lands essentially exactly on the VA delay.
	if frontier < 10 || frontier > 16 {
		t.Fatalf("frontier = %d, expected just past the paper's radix-10 boundary", frontier)
	}
	// More VCs per port slow the allocators and buy crossbar slack.
	if VIXFeasibilityFrontier(8) < frontier {
		t.Error("more VCs should not shrink the feasibility frontier")
	}
}
